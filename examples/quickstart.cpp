/**
 * @file
 * Quickstart: build the paper's validation topology (CPU - MemBus -
 * root complex =x4= switch =x1= IDE disk), boot it (PCI enumeration
 * + driver probe), run a small dd transfer, and print what happened.
 *
 *   $ ./quickstart
 */

#include <cstdio>
#include <iostream>

#include "topo/storage_system.hh"

using namespace pciesim;

int
main()
{
    // 1. Describe the system. SystemConfig defaults reproduce the
    //    paper's validation configuration (Gen 2, RC/switch latency
    //    150 ns, 16-packet port buffers, 4-entry replay buffers).
    SystemConfig config;

    // 2. Instantiate and wire every component.
    Simulation sim;
    StorageSystem system(sim, config);

    // 3. Boot: depth-first PCI enumeration assigns bus numbers,
    //    sizes BARs, programs bridge windows; the IDE driver probes.
    system.boot();

    std::printf("\n-- enumeration result --\n");
    for (const auto &fn : system.kernel().enumerate().functions) {
        std::printf("  %s  %04x:%04x  %s\n", fn.bdf.toString().c_str(),
                    fn.vendorId, fn.deviceId,
                    fn.isBridge ? "bridge" : "endpoint");
    }

    // 4. Run dd: read one 4 MB block from the disk with direct I/O.
    DdWorkloadParams dd;
    dd.blockBytes = 4ULL << 20;
    double gbps = system.runDd(dd);

    std::printf("\n-- dd result --\n");
    std::printf("  transferred: %llu bytes\n",
                static_cast<unsigned long long>(
                    system.disk().bytesTransferred()));
    std::printf("  reported throughput: %.3f Gbps\n", gbps);
    std::printf("  (a Gen 2 x1 link carries a 64 B TLP in 168 ns "
                "=> %.2f Gbps device ceiling)\n",
                64.0 * 8 / 168.0);

    // 5. Every component exposes statistics.
    std::printf("\n-- selected statistics --\n");
    auto &reg = sim.statsRegistry();
    for (const char *name :
         {"system.downLink.up.txTlps", "system.downLink.up.txDllps",
          "system.switch.fwdUpRequests", "system.rc.fwdUpRequests",
          "system.dram.writes", "system.kernel.mmioOps"}) {
        std::printf("  %-32s %llu\n", name,
                    static_cast<unsigned long long>(
                        reg.counterValue(name)));
    }
    return 0;
}
