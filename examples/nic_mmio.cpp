/**
 * @file
 * Device-register access scenario (the Table II experiment): a NIC
 * on a root port, an e1000e-style driver probing it through the
 * configuration and MMIO paths, and a kernel-module-style probe
 * timing 4-byte register reads while the root complex latency
 * sweeps.
 *
 *   $ ./nic_mmio
 */

#include <cstdio>

#include "topo/nic_system.hh"

using namespace pciesim;

int
main()
{
    setInformEnabled(false);

    std::printf("-- e1000e probe walk (paper Sec. IV) --\n");
    {
        Simulation sim;
        NicSystem system(sim, NicSystemConfig{});
        system.boot();
        E1000eDriver &drv = system.driver();
        std::printf("  MSI-X enable hard-wired zero : %s\n",
                    drv.sawMsixDisabled() ? "yes" : "no");
        std::printf("  MSI enable hard-wired zero   : %s\n",
                    drv.sawMsiDisabled() ? "yes" : "no");
        std::printf("  -> legacy INTx handler       : %s\n",
                    drv.usingLegacyIrq() ? "registered" : "NO");
        std::printf("  link up                      : %s\n",
                    drv.linkUp() ? "yes" : "no");
        std::printf("  MAC from EEPROM              : "
                    "%02llx:%02llx:%02llx:%02llx:%02llx:%02llx\n",
                    static_cast<unsigned long long>(
                        drv.macAddress() & 0xff),
                    static_cast<unsigned long long>(
                        (drv.macAddress() >> 8) & 0xff),
                    static_cast<unsigned long long>(
                        (drv.macAddress() >> 16) & 0xff),
                    static_cast<unsigned long long>(
                        (drv.macAddress() >> 24) & 0xff),
                    static_cast<unsigned long long>(
                        (drv.macAddress() >> 32) & 0xff),
                    static_cast<unsigned long long>(
                        (drv.macAddress() >> 40) & 0xff));
        std::printf("  BAR0 (128 KB MMIO)           : 0x%llx\n",
                    static_cast<unsigned long long>(
                        system.nicMmioBase()));
    }

    std::printf("\n-- MMIO read latency vs root complex latency "
                "(Table II) --\n");
    std::printf("  %-22s %s\n", "rc latency", "4B MMIO read");
    for (unsigned rc : {50u, 75u, 100u, 125u, 150u}) {
        Simulation sim;
        NicSystemConfig cfg;
        cfg.base.rcLatency = nanoseconds(rc);
        NicSystem system(sim, cfg);
        Tick t = system.measureMmioReadLatency(100);
        std::printf("  %3u ns %22.0f ns\n", rc, ticksToNs(t));
    }
    return 0;
}
