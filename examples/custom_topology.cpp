/**
 * @file
 * Future-system exploration scenario: hand-built topology with two
 * NICs on separate root ports exchanging traffic over an Ethernet
 * wire, demonstrating (1) assembling a custom fabric from the
 * library's components and (2) concurrent DMA streams through the
 * root complex.
 *
 *   $ ./custom_topology
 */

#include <cstdio>

#include "topo/nic_system.hh"

using namespace pciesim;

int
main()
{
    setInformEnabled(false);

    NicSystemConfig cfg;
    cfg.twoNics = true;
    cfg.nicLinkWidth = 1;
    cfg.wire.rateGbps = 10.0; // make PCIe, not the wire, matter

    Simulation sim;
    NicSystem system(sim, cfg);
    system.boot();

    // NIC1 reflects: count received frames.
    unsigned received = 0;
    std::uint64_t bytes = 0;
    system.driver(1).setOnReceive([&](unsigned len) {
        ++received;
        bytes += len;
    });

    // Stream frames from NIC0: each is a descriptor fetch, a
    // payload DMA read, a wire crossing, then a payload DMA write
    // + descriptor writeback on the receive side - all across the
    // PCI-Express fabric.
    const unsigned kFrames = 32;
    const unsigned kLen = 1500;
    unsigned completed = 0;
    Tick start = sim.curTick();
    for (unsigned i = 0; i < kFrames; ++i)
        system.driver(0).sendFrame(kLen, [&] { ++completed; });
    sim.run();
    Tick elapsed = sim.curTick() - start;

    std::printf("two NICs across the root complex, Gen2 x1 links\n");
    std::printf("  frames sent/completed : %u / %u\n", kFrames,
                completed);
    std::printf("  frames received at far NIC : %u (%llu bytes)\n",
                received, static_cast<unsigned long long>(bytes));
    std::printf("  elapsed : %.2f us -> goodput %.3f Gbps\n",
                ticksToNs(elapsed) / 1000.0,
                static_cast<double>(bytes) * 8.0 /
                    ticksToSeconds(elapsed) / 1e9);

    auto &reg = sim.statsRegistry();
    std::printf("  nic0 link up-TLPs : %llu, nic1 link down-TLPs : "
                "%llu\n",
                static_cast<unsigned long long>(reg.counterValue(
                    "system.nicLink0.down.txTlps")),
                static_cast<unsigned long long>(reg.counterValue(
                    "system.nicLink1.up.txTlps")));
    std::printf("  interrupts dispatched : %llu\n",
                static_cast<unsigned long long>(
                    system.kernel().mmioOps()));
    return 0;
}
