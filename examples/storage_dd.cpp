/**
 * @file
 * Storage exploration scenario: run dd over a configurable
 * PCI-Express fabric from the command line - the workflow the
 * paper's evaluation uses for Fig. 9.
 *
 *   $ ./storage_dd [--width N] [--gen N] [--switch-ns N]
 *                  [--rc-ns N] [--replay N] [--portbuf N]
 *                  [--block-mb N]
 *
 * e.g. reproduce one Fig. 9(b) point:   ./storage_dd --width 8
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "topo/storage_system.hh"

using namespace pciesim;

namespace
{

long
argValue(int argc, char **argv, const char *flag, long fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return std::atol(argv[i + 1]);
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    SystemConfig config;
    unsigned width = static_cast<unsigned>(
        argValue(argc, argv, "--width", 1));
    config.upstreamLinkWidth = width == 1 ? 4 : width;
    config.downstreamLinkWidth = width;
    switch (argValue(argc, argv, "--gen", 2)) {
      case 1: config.gen = PcieGen::Gen1; break;
      case 3: config.gen = PcieGen::Gen3; break;
      default: config.gen = PcieGen::Gen2; break;
    }
    config.switchLatency = nanoseconds(
        argValue(argc, argv, "--switch-ns", 150));
    config.rcLatency = nanoseconds(
        argValue(argc, argv, "--rc-ns", 150));
    config.replayBufferSize = static_cast<std::size_t>(
        argValue(argc, argv, "--replay", 4));
    config.portBufferSize = static_cast<std::size_t>(
        argValue(argc, argv, "--portbuf", 16));

    DdWorkloadParams dd;
    dd.blockBytes = static_cast<std::uint64_t>(
                        argValue(argc, argv, "--block-mb", 4)) << 20;

    Simulation sim;
    StorageSystem system(sim, config);
    double gbps = system.runDd(dd);

    std::printf("config: gen%u, rc->switch x%u, switch->disk x%u, "
                "switch %llu ns, rc %llu ns, replay %zu, portbuf "
                "%zu\n",
                static_cast<unsigned>(config.gen),
                config.upstreamLinkWidth, config.downstreamLinkWidth,
                static_cast<unsigned long long>(
                    config.switchLatency / tickPerNs),
                static_cast<unsigned long long>(
                    config.rcLatency / tickPerNs),
                config.replayBufferSize, config.portBufferSize);
    std::printf("dd: %llu MB block -> %.3f Gbps\n",
                static_cast<unsigned long long>(dd.blockBytes >> 20),
                gbps);
    std::printf("disk uplink: replay fraction %.1f%%, timeouts "
                "%llu\n",
                system.diskUplinkReplayFraction() * 100.0,
                static_cast<unsigned long long>(
                    system.diskUplinkTimeouts()));

    double device_gbps =
        static_cast<double>(system.disk().bytesTransferred()) * 8.0 /
        ticksToSeconds(system.disk().activeTransferTicks()) / 1e9;
    std::printf("device-level throughput (no OS overhead): %.3f "
                "Gbps\n", device_gbps);
    return 0;
}
