/**
 * @file
 * Extension: future-system exploration across PCI-Express
 * generations, the direction the paper's title promises. Runs the
 * validation topology's dd workload over Gen 1/2/3 at several
 * widths, showing where the interconnect stops being the
 * bottleneck.
 */

#include "bench_common.hh"

using namespace bench;

static const char *
genLabel(PcieGen gen)
{
    switch (gen) {
      case PcieGen::Gen1:
        return "Gen1";
      case PcieGen::Gen2:
        return "Gen2";
      default:
        return "Gen3";
    }
}

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    JsonEmitter json("gensweep", args.json);
    std::uint64_t block = args.scale == Scale::Smoke ? (1 << 20)
                                                     : (4 << 20);

    if (!args.json) {
        std::printf("=== Extension: dd throughput (Gbps) across "
                    "generations and widths (%s blocks) ===\n",
                    blockLabel(block).c_str());
        std::printf("%-6s %10s %10s %10s\n", "width", "Gen1", "Gen2",
                    "Gen3");
    }

    for (unsigned width : {1u, 2u, 4u}) {
        if (!args.json)
            std::printf("x%-5u", width);
        for (PcieGen gen :
             {PcieGen::Gen1, PcieGen::Gen2, PcieGen::Gen3}) {
            SystemConfig cfg;
            cfg.gen = gen;
            cfg.upstreamLinkWidth = width == 1 ? 4 : width;
            cfg.downstreamLinkWidth = width;
            DdResult r = runDd(cfg, block);
            if (!args.json)
                std::printf(" %10.3f", r.gbps);
            json.record(std::string(genLabel(gen)) + "/x" +
                            std::to_string(width),
                        r);
        }
        if (!args.json)
            std::printf("\n");
    }
    if (!args.json) {
        std::printf("expected shape: throughput follows the per-lane "
                    "rate (2.5/5/8 GT/s) and the\nencoding change "
                    "(8b/10b -> 128b/130b) until the DMA drain rate "
                    "dominates\n");
    }
    return 0;
}
