/**
 * @file
 * Extension: future-system exploration across PCI-Express
 * generations, the direction the paper's title promises. Runs the
 * validation topology's dd workload over Gen 1/2/3 at several
 * widths, showing where the interconnect stops being the
 * bottleneck.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    (void)argc;
    (void)argv;

    std::printf("=== Extension: dd throughput (Gbps) across "
                "generations and widths (4MB blocks) ===\n");
    std::printf("%-6s %10s %10s %10s\n", "width", "Gen1", "Gen2",
                "Gen3");

    for (unsigned width : {1u, 2u, 4u}) {
        std::printf("x%-5u", width);
        for (PcieGen gen :
             {PcieGen::Gen1, PcieGen::Gen2, PcieGen::Gen3}) {
            SystemConfig cfg;
            cfg.gen = gen;
            cfg.upstreamLinkWidth = width == 1 ? 4 : width;
            cfg.downstreamLinkWidth = width;
            DdResult r = runDd(cfg, 4 << 20);
            std::printf(" %10.3f", r.gbps);
        }
        std::printf("\n");
    }
    std::printf("expected shape: throughput follows the per-lane "
                "rate (2.5/5/8 GT/s) and the\nencoding change "
                "(8b/10b -> 128b/130b) until the DMA drain rate "
                "dominates\n");
    return 0;
}
