# Parallel determinism gate: the same seeded bench run with
# --threads 1 and --threads 4 must emit byte-identical JSON — both
# the bench records on stdout and the exported stats.json. This is
# the non-negotiable contract of the quantum-synchronized engine
# (DESIGN.md Sec. 10): the event order is a pure function of
# simulated history, never of the wall-clock interleaving of the
# workers. --no-timing zeroes the wall-clock-derived fields;
# --profile holds the profiler's exact per-event counts to the same
# standard. Configurations that cannot be partitioned (faults, NAK)
# fall back to the single-queue path on both sides, so the gate
# also pins down that the fallback is taken identically.
#
# Invoked by ctest as:
#   cmake -DBENCH_BIN=<bench> -DOUT_A=<file> -DOUT_B=<file> \
#         -P bench_determinism_parallel.cmake

if(NOT BENCH_BIN OR NOT OUT_A OR NOT OUT_B)
    message(FATAL_ERROR
        "bench_determinism_parallel.cmake needs BENCH_BIN, OUT_A "
        "and OUT_B")
endif()

set(threads_a 1)
set(threads_b 4)
foreach(pair "${OUT_A};${threads_a}" "${OUT_B};${threads_b}")
    list(GET pair 0 out)
    list(GET pair 1 nthreads)
    execute_process(
        COMMAND "${BENCH_BIN}" --smoke --json --no-timing --profile
            "--threads" "${nthreads}"
            "--stats-json=${out}.stats.json"
        OUTPUT_FILE "${out}"
        RESULT_VARIABLE bench_rv
    )
    if(NOT bench_rv EQUAL 0)
        message(FATAL_ERROR
            "${BENCH_BIN} --threads ${nthreads} exited with "
            "${bench_rv}")
    endif()
endforeach()

foreach(suffix "" ".stats.json")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_A}${suffix}" "${OUT_B}${suffix}"
        RESULT_VARIABLE cmp_rv
    )
    if(NOT cmp_rv EQUAL 0)
        message(FATAL_ERROR
            "${BENCH_BIN} diverges across thread counts: "
            "--threads 1 and --threads 4 produced different JSON "
            "(${OUT_A}${suffix} vs ${OUT_B}${suffix})")
    endif()
endforeach()
