# Determinism gate for a bench binary: two back-to-back runs with
# the same arguments must emit byte-identical JSON — both the bench
# records on stdout and the exported stats.json. Wall-clock and
# rate fields would break this, so the bench is run with
# --no-timing, which zeroes them (the simulated results are what
# must match); --profile is on so the profiler's exact event counts
# are held to the same standard.
#
# Invoked by ctest as:
#   cmake -DBENCH_BIN=<bench> -DOUT_A=<file> -DOUT_B=<file> \
#         -P bench_determinism.cmake

if(NOT BENCH_BIN OR NOT OUT_A OR NOT OUT_B)
    message(FATAL_ERROR
        "bench_determinism.cmake needs BENCH_BIN, OUT_A and OUT_B")
endif()

foreach(out "${OUT_A}" "${OUT_B}")
    execute_process(
        COMMAND "${BENCH_BIN}" --smoke --json --no-timing --profile
            "--stats-json=${out}.stats.json"
        OUTPUT_FILE "${out}"
        RESULT_VARIABLE bench_rv
    )
    if(NOT bench_rv EQUAL 0)
        message(FATAL_ERROR
            "${BENCH_BIN} --smoke --json --no-timing exited with ${bench_rv}")
    endif()
endforeach()

foreach(suffix "" ".stats.json")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_A}${suffix}" "${OUT_B}${suffix}"
        RESULT_VARIABLE cmp_rv
    )
    if(NOT cmp_rv EQUAL 0)
        message(FATAL_ERROR
            "${BENCH_BIN} is nondeterministic: two identical runs "
            "produced different JSON "
            "(${OUT_A}${suffix} vs ${OUT_B}${suffix})")
    endif()
endforeach()
