/**
 * @file
 * Simulator-kernel performance bench: measures the discrete-event
 * core itself rather than a modelled quantity. Three workloads:
 *
 *   churn    - event-queue ops/sec under heavy schedule/reschedule/
 *              deschedule churn, the access pattern of the link
 *              layer's ACK and replay timers (the worst case for a
 *              lazily-descheduled heap, the best case for the
 *              indexed heap).
 *   linkpair - TLPs/sec through a root-port -> switch -> disk link
 *              pair running dd (allocation-heavy: every TLP is a
 *              pooled Packet).
 *   dd       - end-to-end dd wall-clock on the validation topology.
 *   threads  - a 1/2/4/8-thread sweep of the 16-generator
 *              multi-device topology under parallel execution
 *              (DESIGN.md Sec. 10), reporting events/sec and the
 *              speedup over the sweep's own 1-thread run.
 *
 * With --json, each workload emits one record; collecting stdout
 * into BENCH_kernel.json is the perf-trajectory convention:
 *
 *   ./bench_kernel --json > BENCH_kernel.json
 */

#include <cstdio>

#include "bench_common.hh"
#include "topo/multi_device_system.hh"

using namespace bench;

namespace
{

/** Result of one kernel workload. */
struct KernelResult
{
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
    double ops_per_sec = 0.0;
};

/**
 * Timer churn: K periodic events; each firing reschedules a
 * neighbour's pending timer (the ACK-coalescing pattern) and every
 * fourth firing cancels and re-arms another (the replay-timer
 * pattern). All queue mutations an interface performs per TLP are
 * represented, and the same-tick FIFO rule is exercised by the
 * identical periods.
 */
KernelResult
runChurn(std::uint64_t target_ops)
{
    constexpr std::size_t numTimers = 512;
    constexpr Tick period = 100;

    EventQueue q;
    std::vector<std::unique_ptr<EventFunctionWrapper>> timers;
    std::uint64_t ops = 0;

    timers.reserve(numTimers);
    for (std::size_t i = 0; i < numTimers; ++i) {
        timers.push_back(std::make_unique<EventFunctionWrapper>(
            [&q, &timers, &ops, i] {
                Event *self = timers[i].get();
                Event *neighbour = timers[(i + 1) % numTimers].get();
                Event *victim = timers[(i + 7) % numTimers].get();
                // Push the neighbour's deadline out (ACK pattern).
                if (neighbour->scheduled()) {
                    q.reschedule(neighbour, q.curTick() + period);
                    ++ops;
                }
                // Cancel + re-arm a timer (replay pattern).
                if (i % 4 == 0 && victim->scheduled()) {
                    q.deschedule(victim);
                    q.schedule(victim, q.curTick() + period / 2);
                    ops += 2;
                }
                // Periodic self-rearm.
                q.schedule(self, q.curTick() + period);
                ++ops;
            },
            "churn.timer"));
    }

    WallTimer timer;
    for (std::size_t i = 0; i < numTimers; ++i)
        q.schedule(timers[i].get(), period + (i % 16));
    while (q.numProcessed() < target_ops && !q.empty())
        q.step();
    // Drain without firing so the wrappers can be destroyed.
    for (auto &t : timers) {
        if (t->scheduled())
            q.deschedule(t.get());
    }

    KernelResult r;
    r.wall_ms = timer.elapsedMs();
    double secs = r.wall_ms / 1e3;
    if (secs > 0.0) {
        r.events_per_sec =
            static_cast<double>(q.numProcessed()) / secs;
        r.ops_per_sec =
            static_cast<double>(ops + q.numProcessed()) / secs;
    }
    return r;
}

/**
 * One run of the parallel-sweep topology: 16 x1 generators behind a
 * switch with an x16 upstream link. The 2 us propagation delay
 * gives the engine a wide synchronization quantum, and the inflated
 * replay-timeout scale plus immediate ACKs keep the (fault-free)
 * replay timers from ever firing spuriously at that flight time.
 * The replay buffer and port buffers are sized for the resulting
 * bandwidth-delay product (~8 TLPs in flight per direction at a
 * 4 us round trip): the default 4-entry replay buffer would window-
 * stall every sender at ~10% of line rate and push ACK queueing
 * past even the scaled timeout.
 */
struct MdevResult
{
    DdResult dd;
    ParallelTelemetry par;
};

MdevResult
runMdev(unsigned threads, unsigned bursts)
{
    MultiDeviceConfig cfg;
    cfg.base.threads = threads;
    cfg.base.upstreamLinkWidth = 16;
    cfg.base.linkPropagation = microseconds(2);
    cfg.base.replayTimeoutScale = 100.0;
    cfg.base.ackImmediate = true;
    cfg.base.replayBufferSize = 32;
    cfg.base.portBufferSize = 64;
    cfg.numDevices = 16;
    cfg.deviceLinkWidth = 1;

    Simulation sim;
    MultiDeviceSystem system(sim, cfg);
    MdevResult r;
    WallTimer timer;
    r.dd.gbps = system.runConcurrentWrites(16, bursts, 4096);
    r.dd.wall_ms = timer.elapsedMs();
    r.dd.eventsProcessed = sim.eventsProcessed();
    if (r.dd.wall_ms > 0.0) {
        r.dd.events_per_sec =
            static_cast<double>(r.dd.eventsProcessed) /
            (r.dd.wall_ms / 1e3);
    }
    // Read inside this scope: the engine (and its flight recorder)
    // lives on the local Simulation.
    r.par = readParallelTelemetry(sim);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    JsonEmitter json("kernel", args.json);

    std::uint64_t churn_ops =
        args.scale == Scale::Smoke ? 100'000 : 20'000'000;
    std::uint64_t dd_bytes = args.scale == Scale::Smoke
        ? (1ull << 20)
        : (16ull << 20);

    if (!args.json)
        std::printf("=== Kernel: event-core performance ===\n");

    KernelResult churn = runChurn(churn_ops);
    if (!args.json) {
        std::printf("%-10s %12.1f M events/s %10.1f M ops/s "
                    "%10.1f ms\n",
                    "churn", churn.events_per_sec / 1e6,
                    churn.ops_per_sec / 1e6, churn.wall_ms);
    }
    json.record("churn", {{"events_per_sec", churn.events_per_sec},
                          {"ops_per_sec", churn.ops_per_sec},
                          {"wall_ms", churn.wall_ms}});

    DdResult link = runDd(SystemConfig{}, dd_bytes);
    double tlps_per_sec = link.wall_ms > 0.0
        ? static_cast<double>(link.txTlps) / (link.wall_ms / 1e3)
        : 0.0;
    if (!args.json) {
        std::printf("%-10s %12.1f K TLPs/s   %10.1f M events/s "
                    "%8.1f ms\n",
                    "linkpair", tlps_per_sec / 1e3,
                    link.events_per_sec / 1e6, link.wall_ms);
    }
    json.record("linkpair",
                {{"tlps_per_sec", tlps_per_sec},
                 {"events_per_sec", link.events_per_sec},
                 {"wall_ms", link.wall_ms}});

    DdResult dd = runDd(SystemConfig{}, dd_bytes);
    if (!args.json) {
        std::printf("%-10s %12.3f Gbps       %10.1f M events/s "
                    "%8.1f ms\n",
                    ("dd" + blockLabel(dd_bytes)).c_str(), dd.gbps,
                    dd.events_per_sec / 1e6, dd.wall_ms);
    }
    json.record("dd" + blockLabel(dd_bytes), dd);

    unsigned bursts = args.scale == Scale::Smoke ? 4 : 48;
    double base_wall = 0.0;
    for (unsigned t : {1u, 2u, 4u, 8u}) {
        MdevResult mdev = runMdev(t, bursts);
        if (t == 1)
            base_wall = mdev.dd.wall_ms;
        double speedup = mdev.dd.wall_ms > 0.0
            ? base_wall / mdev.dd.wall_ms
            : 0.0;
        char label[32];
        std::snprintf(label, sizeof(label), "mdev16/t%u", t);
        if (!args.json) {
            std::printf("%-10s %12.1f M events/s %10.2fx vs 1t "
                        "%8.1f ms\n",
                        label, mdev.dd.events_per_sec / 1e6, speedup,
                        mdev.dd.wall_ms);
        }
        json.record(label,
                    {{"threads", static_cast<double>(t)},
                     {"gbps", mdev.dd.gbps},
                     {"events_per_sec", mdev.dd.events_per_sec},
                     {"speedup_vs_1t", speedup},
                     {"wall_ms", mdev.dd.wall_ms},
                     {"domains", mdev.par.domains},
                     {"windows", mdev.par.windows},
                     {"sync_fraction", mdev.par.syncFraction},
                     {"load_imbalance", mdev.par.loadImbalance},
                     {"mailbox_ops", mdev.par.mailboxOps}});
    }

    return 0;
}
