/**
 * @file
 * Extension: fabric sharing. N DMA-writing devices behind one
 * switch share a Gen 2 x4 upstream link; sweep the number of
 * concurrently active devices and report aggregate goodput - the
 * "processor simultaneously communicating with multiple devices"
 * scenario from the paper's introduction, now measurable with the
 * detailed interconnect model.
 */

#include <cstdio>

#include "bench_common.hh"
#include "topo/multi_device_system.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    JsonEmitter json("contention", args.json);
    // Bursts per device; the sharing dynamics settle quickly, so
    // the smoke run uses a handful.
    unsigned bursts = args.scale == Scale::Smoke ? 16 : 256;

    if (!args.json) {
        std::printf("=== Extension: multi-device contention on a "
                    "shared x4 upstream link ===\n");
        std::printf("%-18s %12s %14s\n", "active devices",
                    "aggregate", "per-device");
    }

    for (unsigned active : {1u, 2u, 3u, 4u}) {
        Simulation sim;
        MultiDeviceConfig cfg;
        cfg.numDevices = 4;
        cfg.deviceLinkWidth = 1;
        cfg.base.upstreamLinkWidth = 4;
        MultiDeviceSystem system(sim, cfg);
        WallTimer timer;
        double gbps = system.runConcurrentWrites(active, bursts, 4096);
        double wall_ms = timer.elapsedMs();
        if (!args.json) {
            std::printf("%-18u %9.3f Gb %11.3f Gb\n", active, gbps,
                        gbps / active);
        }
        double eps = wall_ms > 0.0
            ? static_cast<double>(sim.eventq().numProcessed()) /
                  (wall_ms / 1e3)
            : 0.0;
        json.record("active" + std::to_string(active),
                    {{"gbps", gbps},
                     {"wall_ms", wall_ms},
                     {"events_per_sec", eps}});
    }
    if (!args.json) {
        std::printf("expected shape: aggregate scales with device "
                    "count until the shared x4 upstream\nlink / DMA "
                    "drain saturates, then per-device bandwidth "
                    "falls\n");
    }
    return 0;
}
