/**
 * @file
 * Extension: fabric sharing. N DMA-writing devices behind one
 * switch share a Gen 2 x4 upstream link; sweep the number of
 * concurrently active devices and report aggregate goodput - the
 * "processor simultaneously communicating with multiple devices"
 * scenario from the paper's introduction, now measurable with the
 * detailed interconnect model.
 */

#include <cstdio>

#include "topo/multi_device_system.hh"

using namespace pciesim;

int
main()
{
    setInformEnabled(false);

    std::printf("=== Extension: multi-device contention on a shared "
                "x4 upstream link ===\n");
    std::printf("%-18s %12s %14s\n", "active devices",
                "aggregate", "per-device");

    for (unsigned active : {1u, 2u, 3u, 4u}) {
        Simulation sim;
        MultiDeviceConfig cfg;
        cfg.numDevices = 4;
        cfg.deviceLinkWidth = 1;
        cfg.base.upstreamLinkWidth = 4;
        MultiDeviceSystem system(sim, cfg);
        double gbps = system.runConcurrentWrites(active, 256, 4096);
        std::printf("%-18u %9.3f Gb %11.3f Gb\n", active, gbps,
                    gbps / active);
    }
    std::printf("expected shape: aggregate scales with device count "
                "until the shared x4 upstream\nlink / DMA drain "
                "saturates, then per-device bandwidth falls\n");
    return 0;
}
