/**
 * @file
 * Figure 9(d): dd throughput on an all-x8 Gen 2 fabric with replay
 * buffer 4 while the switch/root port buffer size sweeps
 * 16/20/24/28.
 *
 * Paper shape: a large jump from 16 to 20 as most overruns
 * disappear, then saturation; timeouts 27% -> 20% -> 0%.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    auto blocks = blockSizes(args.scale);
    JsonEmitter json("fig9d", args.json);

    if (!args.json) {
        std::printf("=== Fig 9(d): dd throughput (Gbps), x8, port "
                    "buffer sweep ===\n");
        std::printf("%-8s", "portbuf");
        for (auto b : blocks)
            std::printf(" %10s", blockLabel(b).c_str());
        std::printf(" %12s\n", "timeout-frac");
    }

    for (std::size_t buf : {16u, 20u, 24u, 28u}) {
        if (!args.json)
            std::printf("%-8zu", buf);
        double timeout_frac = 0.0;
        for (auto b : blocks) {
            SystemConfig cfg;
            cfg.upstreamLinkWidth = 8;
            cfg.downstreamLinkWidth = 8;
            cfg.portBufferSize = buf;
            DdResult r = runDd(cfg, b);
            if (!args.json)
                std::printf(" %10.3f", r.gbps);
            json.record("pb" + std::to_string(buf) + "/" +
                            blockLabel(b),
                        r);
            timeout_frac = r.timeoutFraction;
        }
        if (!args.json)
            std::printf(" %11.2f%%\n", timeout_frac * 100.0);
    }
    if (!args.json) {
        std::printf("paper shape: big jump 16->20, then saturation; "
                    "timeouts fall to zero\n");
    }
    return 0;
}
