/**
 * @file
 * Table II: root complex latency vs 4-byte MMIO read access time.
 *
 * A NIC sits directly on a root port; a kernel-module-style probe
 * times back-to-back 4 B reads of a NIC register while the root
 * complex latency sweeps 50..150 ns (paper Sec. VI-B).
 */

#include <cstdio>

#include "bench_common.hh"
#include "topo/nic_system.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    JsonEmitter json("table2", args.json);
    // MMIO probe iterations; the latency is deterministic, so the
    // smoke run only needs a handful.
    unsigned iters = args.scale == Scale::Smoke ? 8 : 200;

    if (!args.json) {
        std::printf("=== Table II: root complex latency vs MMIO read "
                    "access time ===\n");
        std::printf("%-28s", "root complex latency (ns)");
    }
    static const unsigned rc_lat[] = {50, 75, 100, 125, 150};
    if (!args.json) {
        for (unsigned rc : rc_lat)
            std::printf(" %6u", rc);
        std::printf("\n");

        // Paper-reported values for comparison.
        std::printf("%-28s", "paper MMIO read (ns)");
        static const unsigned paper[] = {318, 358, 398, 438, 517};
        for (unsigned v : paper)
            std::printf(" %6u", v);
        std::printf("\n");

        std::printf("%-28s", "measured MMIO read (ns)");
    }
    for (unsigned rc : rc_lat) {
        Simulation sim;
        NicSystemConfig cfg;
        cfg.base.rcLatency = nanoseconds(rc);
        applyObservability(args, cfg.base);
        NicSystem system(sim, cfg);
        WallTimer timer;
        Tick t = system.measureMmioReadLatency(iters);
        double wall_ms = timer.elapsedMs();
        if (!args.json)
            std::printf(" %6.0f", ticksToNs(t));
        double eps = wall_ms > 0.0
            ? static_cast<double>(sim.eventq().numProcessed()) /
                  (wall_ms / 1e3)
            : 0.0;
        const stats::Histogram *lat =
            sim.statsRegistry().histogram("system.kernel.mmioLatency");
        double p50 = 0.0, p95 = 0.0, p99 = 0.0;
        if (lat != nullptr && lat->samples() > 0) {
            p50 = ticksToNs(lat->quantile(0.50));
            p95 = ticksToNs(lat->quantile(0.95));
            p99 = ticksToNs(lat->quantile(0.99));
        }
        json.record("rc" + std::to_string(rc) + "ns",
                    {{"mmio_read_ns", ticksToNs(t)},
                     {"wall_ms", wall_ms},
                     {"events_per_sec", eps},
                     {"lat_p50_ns", p50},
                     {"lat_p95_ns", p95},
                     {"lat_p99_ns", p99}});
    }
    if (!args.json) {
        std::printf("\n");
        std::printf("paper shape: monotonic, ~40 ns per 25 ns RC "
                    "step (request and response both cross the "
                    "RC)\n");
    }
    return 0;
}
