/**
 * @file
 * Table II: root complex latency vs 4-byte MMIO read access time.
 *
 * A NIC sits directly on a root port; a kernel-module-style probe
 * times back-to-back 4 B reads of a NIC register while the root
 * complex latency sweeps 50..150 ns (paper Sec. VI-B).
 */

#include <cstdio>

#include "topo/nic_system.hh"

using namespace pciesim;

int
main()
{
    setInformEnabled(false);
    std::printf("=== Table II: root complex latency vs MMIO read "
                "access time ===\n");
    std::printf("%-28s", "root complex latency (ns)");
    static const unsigned rc_lat[] = {50, 75, 100, 125, 150};
    for (unsigned rc : rc_lat)
        std::printf(" %6u", rc);
    std::printf("\n");

    // Paper-reported values for comparison.
    std::printf("%-28s", "paper MMIO read (ns)");
    static const unsigned paper[] = {318, 358, 398, 438, 517};
    for (unsigned v : paper)
        std::printf(" %6u", v);
    std::printf("\n");

    std::printf("%-28s", "measured MMIO read (ns)");
    for (unsigned rc : rc_lat) {
        Simulation sim;
        NicSystemConfig cfg;
        cfg.base.rcLatency = nanoseconds(rc);
        NicSystem system(sim, cfg);
        Tick t = system.measureMmioReadLatency(200);
        std::printf(" %6.0f", ticksToNs(t));
    }
    std::printf("\n");
    std::printf("paper shape: monotonic, ~40 ns per 25 ns RC step "
                "(request and response both cross the RC)\n");
    return 0;
}
