/**
 * @file
 * Shared harness for the figure/table benches: runs dd on the
 * paper's validation topology and collects the quantities Fig. 9
 * reports (throughput, replay fraction, timeout rate), plus the
 * simulator-performance quantities (wall clock, events/sec) the
 * perf trajectory tracks.
 *
 * Block sizes default to 1/32 of the paper's 64-512 MB sweep so
 * every bench finishes in seconds; pass --paper-scale for the full
 * sizes (the dynamics are steady-state within a few MB, so the
 * shapes are identical; only the fixed per-invocation overhead
 * amortizes differently, and that effect keeps its direction).
 * --smoke shrinks to one tiny block for CI, and --json switches
 * every bench to machine-readable one-object-per-line output
 * suitable for BENCH_*.json trajectory files.
 */

#ifndef PCIESIM_BENCH_BENCH_COMMON_HH
#define PCIESIM_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/parallel.hh"
#include "sim/profiler.hh"
#include "sim/trace.hh"
#include "topo/storage_system.hh"

namespace bench
{

using namespace pciesim;

/** Workload scale selected on the command line. */
enum class Scale
{
    Smoke,   ///< One tiny block; CI smoke tests.
    Default, ///< 1/32 of the paper sweep; seconds per bench.
    Paper,   ///< The paper's 64-512 MB sweep.
};

/** Parsed common command-line arguments. */
struct BenchArgs
{
    Scale scale = Scale::Default;
    /** Emit one JSON object per line instead of tables. */
    bool json = false;
    /** Zero every wall-clock-derived field (--no-timing) so two
     *  identical runs emit byte-identical output (determinism CI). */
    bool noTiming = false;
    /** Worker threads for parallel execution (--threads N); 0
     *  keeps the single-queue core (DESIGN.md Sec. 10). */
    unsigned threads = 0;
    /** @{ Observability (DESIGN.md Sec. 8). */
    /** Chrome trace-event output path (--trace-out=trace.json). */
    std::string traceOut;
    /** Trace flags to enable (--trace-flags=Link,Dma). */
    std::string traceFlags;
    /** Stats-sampler period in ns (--stats-sample-ns=1000). */
    std::uint64_t statsSampleNs = 0;
    /** Dump/reset stats-epoch period in ns (--stats-dump-ns=...). */
    std::uint64_t statsDumpNs = 0;
    /** stats.json destination (--stats-json=...); each dd run
     *  overwrites it, so the file holds the last run's registry. */
    std::string statsJsonOut;
    /** Host-side event profiler on/off (--profile). */
    bool profile = false;
    /** @} */
};

/**
 * The process-wide copy of the parsed arguments; runDd reads the
 * observability knobs from here so every bench gets --trace-* and
 * --stats-sample-ns without per-bench plumbing.
 */
inline BenchArgs &
globalArgs()
{
    static BenchArgs args;
    return args;
}

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--paper-scale") == 0)
            args.scale = Scale::Paper;
        else if (std::strcmp(arg, "--smoke") == 0)
            args.scale = Scale::Smoke;
        else if (std::strcmp(arg, "--json") == 0)
            args.json = true;
        else if (std::strcmp(arg, "--no-timing") == 0)
            args.noTiming = true;
        else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc)
            args.threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (std::strncmp(arg, "--threads=", 10) == 0)
            args.threads = static_cast<unsigned>(
                std::strtoul(arg + 10, nullptr, 10));
        else if (std::strncmp(arg, "--trace-out=", 12) == 0)
            args.traceOut = arg + 12;
        else if (std::strncmp(arg, "--trace-flags=", 14) == 0)
            args.traceFlags = arg + 14;
        else if (std::strncmp(arg, "--stats-sample-ns=", 18) == 0)
            args.statsSampleNs = std::strtoull(arg + 18, nullptr, 10);
        else if (std::strncmp(arg, "--stats-dump-ns=", 16) == 0)
            args.statsDumpNs = std::strtoull(arg + 16, nullptr, 10);
        else if (std::strncmp(arg, "--stats-json=", 13) == 0)
            args.statsJsonOut = arg + 13;
        else if (std::strcmp(arg, "--profile") == 0)
            args.profile = true;
    }
    // The Chrome sink needs its closing bracket even when the bench
    // exits through a fatal() path.
    std::atexit([] { trace::closeSinks(); });
    if (args.profile)
        prof::setEnabled(true);
    // Counts stay exact; only wall-time estimates are noisy, so
    // --no-timing keeps profiled records byte-deterministic too.
    prof::setReportTimes(!args.noTiming);
    globalArgs() = args;
    return args;
}

/** Copy the parsed observability and threading knobs into a system
 *  config. */
inline void
applyObservability(const BenchArgs &args, SystemConfig &config)
{
    config.traceOut = args.traceOut;
    config.traceFlags = args.traceFlags;
    config.statsSampleInterval = nanoseconds(args.statsSampleNs);
    config.statsDumpInterval = nanoseconds(args.statsDumpNs);
    config.statsJsonOut = args.statsJsonOut;
    config.threads = args.threads;
}

/**
 * Parallel-engine telemetry snapshot of one run (DESIGN.md §14).
 * All zeros when the run stayed single-queue (no engine) or the
 * build has PCIESIM_PROFILING=0; every field except syncFraction
 * is a pure function of simulated history, and syncFraction reads
 * 0 under --no-timing — so records stay byte-deterministic.
 */
struct ParallelTelemetry
{
    double domains = 0.0;
    double windows = 0.0;
    double syncFraction = 0.0;
    double loadImbalance = 0.0;
    double mailboxOps = 0.0;
};

inline ParallelTelemetry
readParallelTelemetry(Simulation &sim)
{
    ParallelTelemetry t;
    ParallelEngine *eng = sim.engine();
    if (eng == nullptr)
        return t;
    t.domains = static_cast<double>(eng->numDomains());
    t.windows = static_cast<double>(eng->windowsSynced());
    t.syncFraction = eng->syncOverheadFraction();
    t.loadImbalance = eng->loadImbalance();
    for (unsigned d = 0; d < eng->numDomains(); ++d)
        t.mailboxOps += static_cast<double>(eng->mailboxSent(d));
    return t;
}

/** Result of one dd run. */
struct DdResult
{
    double gbps = 0.0;
    /** Replayed / transmitted TLPs, upstream direction, both
     *  links (the paper's "replay percentage"). */
    double replayFraction = 0.0;
    /** Replay-timer timeouts as a fraction of transmitted TLPs. */
    double timeoutFraction = 0.0;
    std::uint64_t timeouts = 0;
    /** TLPs transmitted on both links' device-side interfaces. */
    std::uint64_t txTlps = 0;
    /** @{ Simulator performance for the run. */
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
    std::uint64_t eventsProcessed = 0;
    /** @} */
    /** @{ DMA request-to-response latency percentiles (ns). */
    double latP50Ns = 0.0;
    double latP95Ns = 0.0;
    double latP99Ns = 0.0;
    /** @} */
};

/** Block sizes in bytes for the sweep. */
inline std::vector<std::uint64_t>
blockSizes(Scale scale)
{
    std::vector<std::uint64_t> mb;
    switch (scale) {
      case Scale::Smoke:
        mb = {1};
        break;
      case Scale::Default:
        mb = {2, 4, 8, 16};
        break;
      case Scale::Paper:
        mb = {64, 128, 256, 512};
        break;
    }
    std::vector<std::uint64_t> out;
    for (auto m : mb)
        out.push_back(m << 20);
    return out;
}

inline std::string
blockLabel(std::uint64_t bytes)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lluMB",
                  static_cast<unsigned long long>(bytes >> 20));
    return buf;
}

/** JSON string escaping for the (plain ASCII) labels benches use. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/**
 * Extra JSON fields for a bench record while the profiler is on:
 * exact event attribution counts plus the top hot spots, compact
 * (single-line) so the one-object-per-line convention holds. Empty
 * when profiling is off, which keeps unprofiled records (and the
 * determinism goldens) byte-identical to previous releases.
 */
inline std::string
profilerRecordFields(std::size_t top_n = 8)
{
    if (!prof::enabled())
        return "";
    std::ostringstream os;
    os << ", \"events_profiled\": " << prof::totalEvents()
       << ", \"events_attributed\": " << prof::attributedEvents()
       << ", \"profiler\": [";
    std::size_t shown = 0;
    for (const prof::HotSpot &h : prof::hotSpots()) {
        if (shown == top_n)
            break;
        char est[32];
        std::snprintf(est, sizeof(est), "%.3f", h.estMs());
        os << (shown++ ? ", " : "") << "{\"name\": \""
           << jsonEscape(h.name) << "\", \"count\": " << h.count
           << ", \"estMs\": " << est << "}";
    }
    os << "]";
    return os.str();
}

/**
 * Emits one JSON object per line:
 *
 *   {"bench": "fig9b", "config": "x8/16MB", "gbps": ..,
 *    "replayFraction": .., "timeoutFraction": .., "wall_ms": ..,
 *    "events_per_sec": ..}
 *
 * Collecting a bench's --json stdout into BENCH_<name>.json is the
 * perf-trajectory recording convention (see DESIGN.md).
 */
class JsonEmitter
{
  public:
    JsonEmitter(std::string bench, bool enabled)
        : bench_(std::move(bench)), enabled_(enabled)
    {}

    bool enabled() const { return enabled_; }

    /** Record a dd-style result. */
    void
    record(const std::string &config, const DdResult &r)
    {
        if (!enabled_)
            return;
        std::printf("{\"bench\": \"%s\", \"config\": \"%s\", "
                    "\"gbps\": %.6f, \"replayFraction\": %.6f, "
                    "\"timeoutFraction\": %.6f, \"wall_ms\": %.3f, "
                    "\"events_per_sec\": %.0f, "
                    "\"lat_p50_ns\": %.3f, \"lat_p95_ns\": %.3f, "
                    "\"lat_p99_ns\": %.3f%s}\n",
                    jsonEscape(bench_).c_str(),
                    jsonEscape(config).c_str(), r.gbps,
                    r.replayFraction, r.timeoutFraction, r.wall_ms,
                    r.events_per_sec, r.latP50Ns, r.latP95Ns,
                    r.latP99Ns, profilerRecordFields().c_str());
    }

    /** Record arbitrary numeric fields (non-dd benches). */
    void
    record(const std::string &config,
           std::initializer_list<std::pair<const char *, double>>
               fields)
    {
        if (!enabled_)
            return;
        std::printf("{\"bench\": \"%s\", \"config\": \"%s\"",
                    jsonEscape(bench_).c_str(),
                    jsonEscape(config).c_str());
        for (const auto &[key, value] : fields)
            std::printf(", \"%s\": %.6f", key, value);
        std::printf("%s}\n", profilerRecordFields().c_str());
    }

  private:
    std::string bench_;
    bool enabled_;
};

/** Wall-clock stopwatch for simulator-performance measurement.
 *  Reads as zero under --no-timing, which zeroes every derived
 *  rate field and makes bench output run-to-run byte-identical. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedMs() const
    {
        if (globalArgs().noTiming)
            return 0.0;
        auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double, std::milli>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Run dd once on the validation topology. */
inline DdResult
runDd(SystemConfig config, std::uint64_t block_bytes)
{
    applyObservability(globalArgs(), config);
    // Each run's record attributes that run only.
    prof::reset();
    Simulation sim;
    StorageSystem system(sim, config);
    DdWorkloadParams dd;
    dd.blockBytes = block_bytes;

    DdResult r;
    WallTimer timer;
    r.gbps = system.runDd(dd);
    r.wall_ms = timer.elapsedMs();
    r.eventsProcessed = sim.eventsProcessed();
    if (r.wall_ms > 0.0) {
        r.events_per_sec = static_cast<double>(r.eventsProcessed) /
                           (r.wall_ms / 1e3);
    }

    auto &reg = sim.statsRegistry();
    r.txTlps = reg.counterValue("system.downLink.down.txTlps") +
               reg.counterValue("system.upLink.down.txTlps");
    r.timeouts = reg.counterValue("system.downLink.down.timeouts") +
                 reg.counterValue("system.upLink.down.timeouts");
    // Stats v2: the fractions are dump-time formulas the topology
    // registers, evaluated with the exact arithmetic this harness
    // used to inline (so old bench tables reproduce bit-for-bit).
    r.replayFraction = reg.formulaValue("system.replayFraction");
    r.timeoutFraction = reg.formulaValue("system.timeoutFraction");
    const stats::Histogram *lat =
        reg.histogram("system.disk.dma.e2eLatency");
    if (lat != nullptr && lat->samples() > 0) {
        r.latP50Ns = ticksToNs(lat->quantile(0.50));
        r.latP95Ns = ticksToNs(lat->quantile(0.95));
        r.latP99Ns = ticksToNs(lat->quantile(0.99));
    }
    return r;
}

} // namespace bench

#endif // PCIESIM_BENCH_BENCH_COMMON_HH
