/**
 * @file
 * Shared harness for the figure/table benches: runs dd on the
 * paper's validation topology and collects the quantities Fig. 9
 * reports (throughput, replay fraction, timeout rate).
 *
 * Block sizes default to 1/32 of the paper's 64-512 MB sweep so
 * every bench finishes in seconds; pass --paper-scale for the full
 * sizes (the dynamics are steady-state within a few MB, so the
 * shapes are identical; only the fixed per-invocation overhead
 * amortizes differently, and that effect keeps its direction).
 */

#ifndef PCIESIM_BENCH_BENCH_COMMON_HH
#define PCIESIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "topo/storage_system.hh"

namespace bench
{

using namespace pciesim;

/** Result of one dd run. */
struct DdResult
{
    double gbps = 0.0;
    /** Replayed / transmitted TLPs, upstream direction, both
     *  links (the paper's "replay percentage"). */
    double replayFraction = 0.0;
    /** Replay-timer timeouts as a fraction of transmitted TLPs. */
    double timeoutFraction = 0.0;
    std::uint64_t timeouts = 0;
};

/** Block sizes in bytes for the sweep. */
inline std::vector<std::uint64_t>
blockSizes(bool paper_scale)
{
    std::vector<std::uint64_t> mb =
        paper_scale ? std::vector<std::uint64_t>{64, 128, 256, 512}
                    : std::vector<std::uint64_t>{2, 4, 8, 16};
    std::vector<std::uint64_t> out;
    for (auto m : mb)
        out.push_back(m << 20);
    return out;
}

inline const char *
blockLabel(std::uint64_t bytes)
{
    static char buf[32];
    std::snprintf(buf, sizeof(buf), "%lluMB",
                  static_cast<unsigned long long>(bytes >> 20));
    return buf;
}

inline bool
paperScale(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paper-scale") == 0)
            return true;
    }
    return false;
}

/** Run dd once on the validation topology. */
inline DdResult
runDd(const SystemConfig &config, std::uint64_t block_bytes)
{
    Simulation sim;
    StorageSystem system(sim, config);
    DdWorkloadParams dd;
    dd.blockBytes = block_bytes;

    DdResult r;
    r.gbps = system.runDd(dd);

    auto &reg = sim.statsRegistry();
    std::uint64_t tx =
        reg.counterValue("system.downLink.down.txTlps") +
        reg.counterValue("system.upLink.down.txTlps");
    std::uint64_t replays =
        reg.counterValue("system.downLink.down.replayedTlps") +
        reg.counterValue("system.upLink.down.replayedTlps");
    r.timeouts = reg.counterValue("system.downLink.down.timeouts") +
                 reg.counterValue("system.upLink.down.timeouts");
    if (tx != 0) {
        r.replayFraction = static_cast<double>(replays) /
                           static_cast<double>(tx);
        r.timeoutFraction = static_cast<double>(r.timeouts) /
                            static_cast<double>(tx);
    }
    return r;
}

} // namespace bench

#endif // PCIESIM_BENCH_BENCH_COMMON_HH
