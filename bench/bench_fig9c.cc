/**
 * @file
 * Figure 9(c): dd throughput on an all-x8 Gen 2 fabric while the
 * replay buffer size sweeps 1..4.
 *
 * Paper shape: sizes 1-2 beat 3-4 (source throttling avoids the
 * buffer overruns); timeout rates ~0% / 6% / 27% / 27%.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    auto blocks = blockSizes(args.scale);
    JsonEmitter json("fig9c", args.json);

    if (!args.json) {
        std::printf("=== Fig 9(c): dd throughput (Gbps), x8, replay "
                    "buffer sweep ===\n");
        std::printf("%-8s", "replay");
        for (auto b : blocks)
            std::printf(" %10s", blockLabel(b).c_str());
        std::printf(" %12s\n", "timeout-frac");
    }

    for (std::size_t replay : {1u, 2u, 3u, 4u}) {
        if (!args.json)
            std::printf("%-8zu", replay);
        double timeout_frac = 0.0;
        for (auto b : blocks) {
            SystemConfig cfg;
            cfg.upstreamLinkWidth = 8;
            cfg.downstreamLinkWidth = 8;
            cfg.replayBufferSize = replay;
            DdResult r = runDd(cfg, b);
            if (!args.json)
                std::printf(" %10.3f", r.gbps);
            json.record("rb" + std::to_string(replay) + "/" +
                            blockLabel(b),
                        r);
            timeout_frac = r.timeoutFraction;
        }
        if (!args.json)
            std::printf(" %11.2f%%\n", timeout_frac * 100.0);
    }
    if (!args.json) {
        std::printf("paper shape: replay 1-2 beat 3-4; timeouts "
                    "0%% / 6%% / ~27%% / ~27%%\n");
    }
    return 0;
}
