# Profiler attribution gate: a profiled bench_kernel run must
# attribute at least 90% of serviced events to a named event type
# (an unnamed event would show up as lost attribution). The records
# must also still parse as line-oriented JSON.
#
# Invoked by ctest as:
#   cmake -DBENCH_BIN=<bench_kernel> -DVALIDATOR=<json_validate>
#         -DOUT=<scratch file> -P profiler_gate.cmake

foreach(var BENCH_BIN VALIDATOR OUT)
    if(NOT ${var})
        message(FATAL_ERROR "profiler_gate.cmake needs ${var}")
    endif()
endforeach()

execute_process(
    COMMAND "${BENCH_BIN}" --smoke --json --profile --no-timing
    OUTPUT_FILE "${OUT}"
    RESULT_VARIABLE rv
)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "${BENCH_BIN} --profile exited with ${rv}")
endif()

execute_process(
    COMMAND "${VALIDATOR}" "${OUT}"
    RESULT_VARIABLE rv
)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "profiled --json output failed validation")
endif()

file(READ "${OUT}" text)
string(REGEX MATCHALL
    "\"events_profiled\": [0-9]+, \"events_attributed\": [0-9]+"
    pairs "${text}")
if(NOT pairs)
    message(FATAL_ERROR
        "no profiler fields in ${OUT}; --profile had no effect")
endif()

foreach(pair ${pairs})
    string(REGEX MATCH "\"events_profiled\": ([0-9]+)" _ "${pair}")
    set(profiled "${CMAKE_MATCH_1}")
    string(REGEX MATCH "\"events_attributed\": ([0-9]+)" _ "${pair}")
    set(attributed "${CMAKE_MATCH_1}")
    if(profiled EQUAL 0)
        message(FATAL_ERROR "a profiled record serviced no events")
    endif()
    math(EXPR lhs "${attributed} * 10")
    math(EXPR rhs "${profiled} * 9")
    if(lhs LESS rhs)
        message(FATAL_ERROR
            "profiler attributed only ${attributed} of ${profiled} "
            "events (< 90%)")
    endif()
endforeach()
message(STATUS "profiler attribution >= 90% on ${OUT}")
