/**
 * @file
 * Goodput vs bit error rate: the storage dd workload on lossy
 * links. Every TLP/DLLP draws an LCRC-failure probability from the
 * configured BER and its wire size; corrupted packets are discarded
 * at the receiver and recovered by the NAK protocol (DESIGN.md
 * Sec. 7). The sweep shows goodput degrading gracefully as the BER
 * rises while the error counters (LCRC failures, NAKs, retrains)
 * account for every lost packet.
 *
 * Completion timeouts are armed so that even a pathological
 * configuration terminates with counted errors instead of hanging.
 */

#include "bench_common.hh"

using namespace bench;

namespace
{

/** One dd run on lossy links plus its error accounting. */
struct FaultResult
{
    DdResult dd;
    LinkErrorStats links;
    std::uint64_t completionTimeouts = 0;
};

FaultResult
runFaultDd(double ber, std::uint64_t seed, std::uint64_t block_bytes)
{
    Simulation sim;
    SystemConfig cfg;
    cfg.linkBitErrorRate = ber;
    cfg.faultSeed = seed;
    cfg.completionTimeout = milliseconds(1);
    applyObservability(globalArgs(), cfg);
    StorageSystem system(sim, cfg);

    DdWorkloadParams dd;
    dd.blockBytes = block_bytes;

    FaultResult r;
    WallTimer timer;
    r.dd.gbps = system.runDd(dd);
    r.dd.wall_ms = timer.elapsedMs();
    r.dd.eventsProcessed = sim.eventq().numProcessed();
    if (r.dd.wall_ms > 0.0) {
        r.dd.events_per_sec =
            static_cast<double>(r.dd.eventsProcessed) /
            (r.dd.wall_ms / 1e3);
    }
    for (PcieLink *link : system.links())
        r.links += link->errorStats();
    r.completionTimeouts = system.kernel().completionTimeouts() +
                           system.disk().dmaCompletionTimeouts();
    const stats::Histogram *lat =
        sim.statsRegistry().histogram("system.disk.dma.e2eLatency");
    if (lat != nullptr && lat->samples() > 0) {
        r.dd.latP50Ns = ticksToNs(lat->quantile(0.50));
        r.dd.latP95Ns = ticksToNs(lat->quantile(0.95));
        r.dd.latP99Ns = ticksToNs(lat->quantile(0.99));
    }
    return r;
}

std::vector<double>
berSweep(Scale scale)
{
    if (scale == Scale::Smoke)
        return {0.0, 1e-7};
    return {0.0, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5};
}

std::string
berLabel(double ber)
{
    if (ber == 0.0)
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", ber);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    std::uint64_t block = args.scale == Scale::Smoke
                              ? (1ULL << 20)
                              : args.scale == Scale::Paper
                                    ? (64ULL << 20)
                                    : (8ULL << 20);
    JsonEmitter json("faults", args.json);

    if (!args.json) {
        std::printf("=== Faults: dd goodput (Gbps) vs bit error "
                    "rate, %s block ===\n",
                    blockLabel(block).c_str());
        std::printf("%-8s %10s %10s %8s %8s %8s %8s\n", "BER",
                    "gbps", "crcTlp", "naks", "replays", "retrain",
                    "cplTo");
    }

    for (double ber : berSweep(args.scale)) {
        FaultResult r = runFaultDd(ber, 1, block);
        if (!args.json) {
            std::printf("%-8s %10.3f %10llu %8llu %8llu %8llu "
                        "%8llu\n",
                        berLabel(ber).c_str(), r.dd.gbps,
                        static_cast<unsigned long long>(
                            r.links.crcErrorsTlp),
                        static_cast<unsigned long long>(
                            r.links.naksSent),
                        static_cast<unsigned long long>(
                            r.links.replayedTlps),
                        static_cast<unsigned long long>(
                            r.links.retrains),
                        static_cast<unsigned long long>(
                            r.completionTimeouts));
        }
        json.record(
            "ber" + berLabel(ber) + "/" + blockLabel(block),
            {{"gbps", r.dd.gbps},
             {"crcErrorsTlp",
              static_cast<double>(r.links.crcErrorsTlp)},
             {"crcErrorsDllp",
              static_cast<double>(r.links.crcErrorsDllp)},
             {"naksSent", static_cast<double>(r.links.naksSent)},
             {"replayedTlps",
              static_cast<double>(r.links.replayedTlps)},
             {"timeouts", static_cast<double>(r.links.timeouts)},
             {"retrains", static_cast<double>(r.links.retrains)},
             {"completionTimeouts",
              static_cast<double>(r.completionTimeouts)},
             {"wall_ms", r.dd.wall_ms},
             {"events_per_sec", r.dd.events_per_sec},
             {"lat_p50_ns", r.dd.latP50Ns},
             {"lat_p95_ns", r.dd.latP95Ns},
             {"lat_p99_ns", r.dd.latP99Ns}});
    }
    if (!args.json) {
        std::printf("expected shape: goodput flat through ~1e-8, "
                    "graceful degradation above; every LCRC error "
                    "accounted by a NAK or replay\n");
    }
    return 0;
}
