/**
 * @file
 * Strict JSON validator for the bench_smoke tests. The default
 * (line-oriented) mode requires every non-empty line of the input
 * to parse as one JSON object — the bench --json record convention.
 * With --whole, the entire file must parse as a single JSON value —
 * the stats.json convention. Exits 0 on success, 1 with a
 * diagnostic otherwise.
 *
 * A real recursive-descent parser (not a regex) so the smoke tests
 * genuinely prove that "--json output parses": a bench emitting
 * NaN, a bare trailing comma, or an unescaped quote fails here.
 */

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace
{

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    /** Parse one complete JSON value spanning the whole input. */
    bool
    parse(std::string &error)
    {
        pos_ = 0;
        if (!parseValue(error))
            return false;
        skipSpace();
        if (pos_ != text_.size()) {
            error = "trailing characters at offset " +
                    std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    bool
    fail(std::string &error, const std::string &what)
    {
        error = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(std::string &error)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail(error, "unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(error);
        if (c == '[')
            return parseArray(error);
        if (c == '"')
            return parseString(error);
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(error);
        if (parseLiteral("true") || parseLiteral("false") ||
            parseLiteral("null"))
            return true;
        return fail(error, "unexpected character");
    }

    bool
    parseLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    bool
    parseObject(std::string &error)
    {
        ++pos_; // '{'
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail(error, "expected object key");
            if (!parseString(error))
                return false;
            if (!consume(':'))
                return fail(error, "expected ':'");
            if (!parseValue(error))
                return false;
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail(error, "expected ',' or '}'");
        }
    }

    bool
    parseArray(std::string &error)
    {
        ++pos_; // '['
        if (consume(']'))
            return true;
        while (true) {
            if (!parseValue(error))
                return false;
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail(error, "expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &error)
    {
        ++pos_; // '"'
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            return fail(error, "bad \\u escape");
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return fail(error, "bad escape");
                }
            }
            ++pos_;
        }
        return fail(error, "unterminated string");
    }

    bool
    parseNumber(std::string &error)
    {
        std::size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail(error, "bad number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail(error, "bad fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail(error, "bad exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        return pos_ > start;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool whole = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--whole")
            whole = true;
        else if (path == nullptr)
            path = argv[i];
        else
            path = ""; // too many positionals
    }
    if (path == nullptr || *path == '\0') {
        std::fprintf(stderr,
                     "usage: json_validate [--whole] <file>\n");
        return 2;
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "json_validate: cannot open %s\n",
                     path);
        return 2;
    }

    if (whole) {
        std::ostringstream ss;
        ss << in.rdbuf();
        std::string text = ss.str();
        std::string error;
        JsonParser parser(text);
        if (!parser.parse(error)) {
            std::fprintf(stderr, "json_validate: %s: %s\n", path,
                         error.c_str());
            return 1;
        }
        std::printf("json_validate: whole-file document ok\n");
        return 0;
    }

    std::string line;
    std::size_t lineno = 0;
    std::size_t objects = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        std::string error;
        JsonParser parser(line);
        if (!parser.parse(error)) {
            std::fprintf(stderr,
                         "json_validate: %s:%zu: %s\n  %s\n",
                         path, lineno, error.c_str(),
                         line.c_str());
            return 1;
        }
        ++objects;
    }
    if (objects == 0) {
        std::fprintf(stderr, "json_validate: %s: no JSON records\n",
                     path);
        return 1;
    }
    std::printf("json_validate: %zu records ok\n", objects);
    return 0;
}
