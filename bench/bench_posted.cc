/**
 * @file
 * Extension ablation: posted vs non-posted DMA writes.
 *
 * The paper notes (Sec. VI-B) that its model does not support
 * posted writes - "once a sector is transmitted by the IDE disk
 * over the link, responses for all gem5 write packets need to be
 * obtained before the next sector can be transmitted. This is
 * unlike the physical PCI-Express protocol where write TLPs do not
 * need a response" - and names this as a source of its bandwidth
 * underestimate. This bench implements that missing feature and
 * quantifies the gap.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    auto blocks = blockSizes(args.scale);
    JsonEmitter json("posted", args.json);

    if (!args.json) {
        std::printf("=== Extension: posted vs non-posted DMA writes "
                    "(Gbps) ===\n");
        std::printf("%-26s", "config");
        for (auto b : blocks)
            std::printf(" %10s", blockLabel(b).c_str());
        std::printf("\n");
    }

    for (unsigned width : {1u, 4u}) {
        for (bool posted : {false, true}) {
            if (!args.json) {
                std::printf("x%u %-23s", width,
                            posted ? "posted (real PCIe)"
                                   : "non-posted (paper)");
            }
            for (auto b : blocks) {
                SystemConfig cfg;
                cfg.upstreamLinkWidth = width == 1 ? 4 : width;
                cfg.downstreamLinkWidth = width;
                cfg.disk.postedWrites = posted;
                DdResult r = runDd(cfg, b);
                if (!args.json)
                    std::printf(" %10.3f", r.gbps);
                json.record("x" + std::to_string(width) +
                                (posted ? "/posted/" : "/nonposted/") +
                                blockLabel(b),
                            r);
            }
            if (!args.json)
                std::printf("\n");
        }
    }
    if (!args.json) {
        std::printf("posted writes remove the per-chunk response "
                    "barrier and the response stream;\nthe paper "
                    "predicts its non-posted model underestimates "
                    "bandwidth - confirmed above\n");
    }
    return 0;
}
