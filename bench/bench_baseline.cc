/**
 * @file
 * Ablation: the paper's implicit baseline (mainline gem5's
 * crossbar-only off-chip attachment, Sec. I/III) against the
 * detailed PCI-Express model. Quantifies how much I/O throughput
 * the stock model overestimates by ignoring link serialization and
 * the data link layer.
 */

#include "bench_common.hh"
#include "topo/baseline_system.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    bool paper = paperScale(argc, argv);
    auto blocks = blockSizes(paper);

    std::printf("=== Ablation: stock-gem5 crossbar baseline vs PCIe "
                "model (Gbps) ===\n");
    std::printf("%-22s", "config");
    for (auto b : blocks)
        std::printf(" %10s", blockLabel(b));
    std::printf("\n");

    std::printf("%-22s", "baseline (crossbar)");
    std::vector<double> base;
    for (auto b : blocks) {
        Simulation sim;
        BaselineSystem system(sim, SystemConfig{});
        DdWorkloadParams dd;
        dd.blockBytes = b;
        base.push_back(system.runDd(dd));
        std::printf(" %10.3f", base.back());
    }
    std::printf("\n");

    std::printf("%-22s", "pcie model (x1 Gen2)");
    std::vector<double> pcie;
    for (auto b : blocks) {
        DdResult r = runDd(SystemConfig{}, b);
        pcie.push_back(r.gbps);
        std::printf(" %10.3f", r.gbps);
    }
    std::printf("\n");

    std::printf("%-22s", "overestimate");
    for (std::size_t i = 0; i < blocks.size(); ++i)
        std::printf(" %9.2fx", base[i] / pcie[i]);
    std::printf("\n");
    std::printf("the baseline has no Gen2 x1 serialization "
                "bottleneck, so it overestimates I/O throughput\n");
    return 0;
}
