/**
 * @file
 * Ablation: the paper's implicit baseline (mainline gem5's
 * crossbar-only off-chip attachment, Sec. I/III) against the
 * detailed PCI-Express model. Quantifies how much I/O throughput
 * the stock model overestimates by ignoring link serialization and
 * the data link layer.
 */

#include "bench_common.hh"
#include "topo/baseline_system.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    auto blocks = blockSizes(args.scale);
    JsonEmitter json("baseline", args.json);

    if (!args.json) {
        std::printf("=== Ablation: stock-gem5 crossbar baseline vs "
                    "PCIe model (Gbps) ===\n");
        std::printf("%-22s", "config");
        for (auto b : blocks)
            std::printf(" %10s", blockLabel(b).c_str());
        std::printf("\n");

        std::printf("%-22s", "baseline (crossbar)");
    }
    std::vector<double> base;
    for (auto b : blocks) {
        Simulation sim;
        BaselineSystem system(sim, SystemConfig{});
        DdWorkloadParams dd;
        dd.blockBytes = b;
        WallTimer timer;
        base.push_back(system.runDd(dd));
        double wall_ms = timer.elapsedMs();
        if (!args.json)
            std::printf(" %10.3f", base.back());
        double eps = wall_ms > 0.0
            ? static_cast<double>(sim.eventq().numProcessed()) /
                  (wall_ms / 1e3)
            : 0.0;
        json.record("crossbar/" + blockLabel(b),
                    {{"gbps", base.back()},
                     {"wall_ms", wall_ms},
                     {"events_per_sec", eps}});
    }
    if (!args.json) {
        std::printf("\n");
        std::printf("%-22s", "pcie model (x1 Gen2)");
    }
    std::vector<double> pcie;
    for (auto b : blocks) {
        DdResult r = runDd(SystemConfig{}, b);
        pcie.push_back(r.gbps);
        if (!args.json)
            std::printf(" %10.3f", r.gbps);
        json.record("pcie/" + blockLabel(b), r);
    }
    if (!args.json) {
        std::printf("\n");
        std::printf("%-22s", "overestimate");
        for (std::size_t i = 0; i < blocks.size(); ++i)
            std::printf(" %9.2fx", base[i] / pcie[i]);
        std::printf("\n");
        std::printf("the baseline has no Gen2 x1 serialization "
                    "bottleneck, so it overestimates I/O "
                    "throughput\n");
    }
    return 0;
}
