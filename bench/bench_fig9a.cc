/**
 * @file
 * Figure 9(a): dd throughput vs block size, physical system vs the
 * gem5 PCIe model with switch latency 50/100/150 ns.
 *
 * Topology (paper Sec. VI-A): root port --Gen2 x4-- switch
 * --Gen2 x1-- IDE disk; root complex latency fixed at 150 ns; port
 * buffers 16 packets; replay buffers 4.
 *
 * The "phys" row reproduces the paper's physical reference (Xeon +
 * Intel p3700 behind a PCH x1 slot, effective ceiling 4 Gbps after
 * 8b/10b); the values are the paper-reported measurements and are
 * printed for comparison, not re-measured.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    auto blocks = blockSizes(args.scale);
    JsonEmitter json("fig9a", args.json);

    if (!args.json) {
        std::printf("=== Fig 9(a): dd throughput (Gbps), switch "
                    "latency sweep, Gen2 x4/x1 ===\n");
        std::printf("%-10s", "config");
        for (auto b : blocks)
            std::printf(" %10s", blockLabel(b).c_str());
        std::printf("\n");

        // Paper-reported physical reference (approximate read-off of
        // the phys series; the PCH x1 slot caps at 4 Gbps effective).
        static const double phys[4] = {3.20, 3.35, 3.45, 3.50};
        std::printf("%-10s", "phys*");
        for (std::size_t i = 0; i < blocks.size() && i < 4; ++i)
            std::printf(" %10.3f", phys[i]);
        std::printf("\n");
    }

    for (unsigned latency_ns : {50u, 100u, 150u}) {
        if (!args.json)
            std::printf("L%-9u", latency_ns);
        for (auto b : blocks) {
            SystemConfig cfg;
            cfg.switchLatency = nanoseconds(latency_ns);
            DdResult r = runDd(cfg, b);
            if (!args.json)
                std::printf(" %10.3f", r.gbps);
            json.record("L" + std::to_string(latency_ns) + "/" +
                            blockLabel(b),
                        r);
        }
        if (!args.json)
            std::printf("\n");
    }
    if (!args.json) {
        std::printf("* phys = paper-reported reference "
                    "(not simulated)\n");
        std::printf("paper shape: gem5 within 80-90%% of phys; "
                    "150->50ns gains ~80 Mbps (~3%%)\n");
    }
    return 0;
}
