/**
 * @file
 * Microbenchmarks (google-benchmark):
 *
 *  - Table I / Sec. VI-B device-level check: simulated goodput of a
 *    saturated Gen 2 link at each width (the x1 value is the
 *    paper's 3.07 Gbps device-level number).
 *  - Simulator-engineering numbers: event queue throughput, link
 *    packet cost, crossbar packet cost, enumeration cost.
 */

#include <benchmark/benchmark.h>

#include "mem/simple_memory.hh"
#include "mem/xbar.hh"
#include "pcie/pcie_link.hh"
#include "topo/storage_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

/** A slave port that accepts and responds to everything. */
class SinkPort : public SlavePort
{
  public:
    explicit SinkPort(const std::string &name, AddrRangeList ranges)
        : SlavePort(name), ranges_(std::move(ranges))
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        ++received;
        if (pkt->needsResponse()) {
            pkt->makeResponse();
            (void)sendTimingResp(pkt);
        }
        return true;
    }

    void recvRespRetry() override {}

    AddrRangeList getAddrRanges() const override { return ranges_; }

    std::uint64_t received = 0;

  private:
    AddrRangeList ranges_;
};

/** A master port driving a link at full rate. */
class PumpPort : public MasterPort
{
  public:
    using MasterPort::MasterPort;

    bool
    recvTimingResp(PacketPtr) override
    {
        return true;
    }

    void
    recvReqRetry() override
    {
        wantSend = true;
    }

    bool wantSend = false;
};

} // namespace

/** Event queue schedule/fire throughput. */
static void
BM_EventQueue(benchmark::State &state)
{
    EventQueue q;
    EventFunctionWrapper ev([] {}, "bench");
    Tick t = 1;
    for (auto _ : state) {
        q.schedule(&ev, t);
        q.step();
        ++t;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue);

/**
 * Device-level goodput of a saturated Gen 2 link (simulated time):
 * 64 B write TLPs pumped as fast as the data link layer accepts.
 * Reported counter "simGbps" is the simulated goodput; at x1 it is
 * the paper's ~3.05 Gbps device-level figure.
 */
static void
BM_LinkGoodput(benchmark::State &state)
{
    unsigned width = static_cast<unsigned>(state.range(0));
    double sim_gbps = 0.0;
    std::uint64_t packets = 0;
    for (auto _ : state) {
        Simulation sim;
        PcieLinkParams params;
        params.width = width;
        params.replayBufferSize = 64; // never the bottleneck
        params.ackImmediate = true;
        PcieLink link(sim, "link", params);
        PumpPort pump("pump");
        SinkPort sink("sink", {AddrRange{0, 1ULL << 40}});
        SinkPort dma_sink("dmaSink", {AddrRange{0, 1ULL << 40}});
        PumpPort dma_pump("dmaPump");
        pump.bind(link.upSlave());
        link.upMaster().bind(dma_sink);
        link.downMaster().bind(sink);
        dma_pump.bind(link.downSlave());
        sim.initialize();

        const unsigned total = 4096;
        unsigned sent = 0;
        // Drive: push whenever the link frees capacity.
        while (sink.received < total) {
            while (sent < total &&
                   pump.sendTimingReq(Packet::makeRequest(
                       MemCmd::PostedWriteReq,
                       static_cast<Addr>(sent) * 64, 64))) {
                ++sent;
            }
            if (!sim.eventq().step())
                break;
        }
        sim_gbps = static_cast<double>(total) * 64 * 8 /
                   ticksToSeconds(sim.curTick()) / 1e9;
        packets += total;
    }
    state.counters["simGbps"] = sim_gbps;
    state.SetItemsProcessed(static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_LinkGoodput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/** Crossbar packet forwarding cost (host time). */
static void
BM_XBarForward(benchmark::State &state)
{
    Simulation sim;
    XBar xbar(sim, "xbar");
    PumpPort cpu("cpu");
    SinkPort dev("dev", {AddrRange{0, 1ULL << 32}});
    cpu.bind(xbar.addSlavePort("s"));
    xbar.addMasterPort("m").bind(dev);
    sim.initialize();

    Addr a = 0;
    for (auto _ : state) {
        if (!cpu.sendTimingReq(
                Packet::makeRequest(MemCmd::WriteReq, a, 64))) {
            state.PauseTiming();
            sim.run();
            state.ResumeTiming();
        }
        a += 64;
        sim.eventq().step();
        sim.eventq().step();
    }
    sim.run();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XBarForward);

/** Full enumeration of the validation topology (host time). */
static void
BM_Enumeration(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        StorageSystem system(sim, SystemConfig{});
        system.boot();
        benchmark::DoNotOptimize(
            system.kernel().enumerate().functions.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Enumeration);

int
main(int argc, char **argv)
{
    setInformEnabled(false); // boot chatter would swamp the tables
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
