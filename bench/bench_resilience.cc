/**
 * @file
 * Error containment and recovery (DESIGN.md §12): how much goodput
 * the dd workload retains when the fabric is degrading around
 * faults instead of merely replaying through them.
 *
 * Part 1 sweeps BER x degradation threshold: above the threshold
 * the link steps its operating point down (Gen first, then width)
 * and the retained goodput shows the grace of the ladder versus
 * livelocking in replay.
 *
 * Part 2 sweeps the surprise hot-unplug ordinal: the disk vanishes
 * mid-DMA at the Nth 4 KB chunk, the fatal error rides AER to the
 * root, the switch contains the port, the kernel FLRs the returned
 * device, and the driver re-issues the lost command. Goodput
 * retained > 0 and recoveries > 0 prove end-to-end forward
 * progress.
 */

#include "bench_common.hh"

using namespace bench;

namespace
{

/** One resilient dd run and its error/recovery accounting. */
struct ResilienceResult
{
    DdResult dd;
    LinkErrorStats links;
    std::uint64_t unplugs = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t lostRequests = 0;
    std::uint64_t functionResets = 0;
    std::uint64_t fatalMsgs = 0;
    double recoveryP50Us = 0.0;
    double recoveryP99Us = 0.0;
};

ResilienceResult
runResilientDd(const SystemConfig &cfg, std::uint64_t block_bytes)
{
    Simulation sim;
    StorageSystem system(sim, cfg);

    DdWorkloadParams dd;
    dd.blockBytes = block_bytes;

    ResilienceResult r;
    WallTimer timer;
    r.dd.gbps = system.runDd(dd);
    r.dd.wall_ms = timer.elapsedMs();
    r.dd.eventsProcessed = sim.eventq().numProcessed();
    if (r.dd.wall_ms > 0.0) {
        r.dd.events_per_sec =
            static_cast<double>(r.dd.eventsProcessed) /
            (r.dd.wall_ms / 1e3);
    }
    for (PcieLink *link : system.links())
        r.links += link->errorStats();
    r.unplugs = system.disk().unplugs();
    if (system.aerHandler() != nullptr) {
        r.functionResets = system.aerHandler()->functionResets();
        r.fatalMsgs =
            system.aerHandler()->errorsSeen(ErrSeverity::Fatal);
    }
    r.recoveries = system.ideDriver().recoveries();
    r.lostRequests = system.ideDriver().lostRequests();
    const stats::Histogram &rec = system.ideDriver().recoveryLatency();
    if (rec.samples() > 0) {
        r.recoveryP50Us = ticksToNs(rec.quantile(0.50)) / 1e3;
        r.recoveryP99Us = ticksToNs(rec.quantile(0.99)) / 1e3;
    }
    const stats::Histogram *lat =
        sim.statsRegistry().histogram("system.disk.dma.e2eLatency");
    if (lat != nullptr && lat->samples() > 0) {
        r.dd.latP50Ns = ticksToNs(lat->quantile(0.50));
        r.dd.latP95Ns = ticksToNs(lat->quantile(0.95));
        r.dd.latP99Ns = ticksToNs(lat->quantile(0.99));
    }
    return r;
}

std::string
berLabel(double ber)
{
    if (ber == 0.0)
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", ber);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    std::uint64_t block = args.scale == Scale::Smoke
                              ? (1ULL << 20)
                              : args.scale == Scale::Paper
                                    ? (32ULL << 20)
                                    : (8ULL << 20);
    JsonEmitter json("resilience", args.json);

    // Fault-free reference for "goodput retained".
    SystemConfig base;
    applyObservability(args, base);
    ResilienceResult ref = runResilientDd(base, block);

    //
    // Part 1: BER x degradation threshold.
    //
    std::vector<double> bers = args.scale == Scale::Smoke
                                   ? std::vector<double>{1e-5}
                                   : std::vector<double>{1e-7, 1e-6,
                                                         1e-5};
    std::vector<unsigned> thresholds =
        args.scale == Scale::Smoke ? std::vector<unsigned>{0, 8}
                                   : std::vector<unsigned>{0, 4, 16};

    if (!args.json) {
        std::printf("=== Resilience part 1: degradation ladder, %s "
                    "block (fault-free: %.3f Gbps) ===\n",
                    blockLabel(block).c_str(), ref.dd.gbps);
        std::printf("%-8s %-7s %10s %9s %8s %8s %8s %10s\n", "BER",
                    "thresh", "gbps", "retained", "degrade", "upconf",
                    "retrain", "p99_ns");
    }
    for (double ber : bers) {
        for (unsigned thresh : thresholds) {
            SystemConfig cfg;
            cfg.linkBitErrorRate = ber;
            cfg.faultSeed = 1;
            cfg.completionTimeout = milliseconds(1);
            cfg.degradeThreshold = thresh;
            cfg.degradeWindow = microseconds(100);
            cfg.upconfigureDelay = milliseconds(1);
            applyObservability(args, cfg);
            ResilienceResult r = runResilientDd(cfg, block);
            double retained =
                ref.dd.gbps > 0.0 ? r.dd.gbps / ref.dd.gbps : 0.0;
            if (!args.json) {
                std::printf(
                    "%-8s %-7u %10.3f %8.1f%% %8llu %8llu %8llu "
                    "%10.0f\n",
                    berLabel(ber).c_str(), thresh, r.dd.gbps,
                    retained * 100.0,
                    static_cast<unsigned long long>(
                        r.links.degradations),
                    static_cast<unsigned long long>(
                        r.links.upconfigures),
                    static_cast<unsigned long long>(
                        r.links.retrains),
                    r.dd.latP99Ns);
            }
            json.record(
                "degrade/ber" + berLabel(ber) + "/thresh" +
                    std::to_string(thresh),
                {{"gbps", r.dd.gbps},
                 {"goodput_retained", retained},
                 {"degradations",
                  static_cast<double>(r.links.degradations)},
                 {"upconfigures",
                  static_cast<double>(r.links.upconfigures)},
                 {"retrains", static_cast<double>(r.links.retrains)},
                 {"crcErrorsTlp",
                  static_cast<double>(r.links.crcErrorsTlp)},
                 {"lat_p50_ns", r.dd.latP50Ns},
                 {"lat_p99_ns", r.dd.latP99Ns},
                 {"wall_ms", r.dd.wall_ms},
                 {"events_per_sec", r.dd.events_per_sec}});
        }
    }

    //
    // Part 2: surprise hot-unplug at the Nth chunk.
    //
    std::vector<std::uint64_t> ordinals =
        args.scale == Scale::Smoke
            ? std::vector<std::uint64_t>{8}
            : std::vector<std::uint64_t>{1, 64, 512};

    if (!args.json) {
        std::printf("\n=== Resilience part 2: surprise hot-unplug "
                    "mid-DMA, %s block ===\n",
                    blockLabel(block).c_str());
        std::printf("%-8s %10s %9s %8s %8s %8s %10s %10s\n", "chunk",
                    "gbps", "retained", "recover", "lost", "flr",
                    "recP50us", "recP99us");
    }
    for (std::uint64_t ordinal : ordinals) {
        SystemConfig cfg;
        cfg.aerEnabled = true;
        cfg.unplugAtChunk = ordinal;
        applyObservability(args, cfg);
        ResilienceResult r = runResilientDd(cfg, block);
        double retained =
            ref.dd.gbps > 0.0 ? r.dd.gbps / ref.dd.gbps : 0.0;
        if (!args.json) {
            std::printf(
                "%-8llu %10.3f %8.1f%% %8llu %8llu %8llu %10.1f "
                "%10.1f\n",
                static_cast<unsigned long long>(ordinal), r.dd.gbps,
                retained * 100.0,
                static_cast<unsigned long long>(r.recoveries),
                static_cast<unsigned long long>(r.lostRequests),
                static_cast<unsigned long long>(r.functionResets),
                r.recoveryP50Us, r.recoveryP99Us);
        }
        json.record(
            "unplug/chunk" + std::to_string(ordinal),
            {{"gbps", r.dd.gbps},
             {"goodput_retained", retained},
             {"unplugs", static_cast<double>(r.unplugs)},
             {"recoveries", static_cast<double>(r.recoveries)},
             {"lost_requests", static_cast<double>(r.lostRequests)},
             {"function_resets",
              static_cast<double>(r.functionResets)},
             {"fatal_msgs", static_cast<double>(r.fatalMsgs)},
             {"recovery_p50_us", r.recoveryP50Us},
             {"recovery_p99_us", r.recoveryP99Us},
             {"wall_ms", r.dd.wall_ms},
             {"events_per_sec", r.dd.events_per_sec}});
    }
    if (!args.json) {
        std::printf("expected shape: with a threshold the ladder "
                    "trades peak bandwidth for a calmer link (fewer "
                    "LCRC errors and NAK storms per byte) and "
                    "bounds the livelock risk at extreme BER; every "
                    "unplug row shows recoveries > 0 and retained "
                    "goodput > 0\n");
    }
    return 0;
}
