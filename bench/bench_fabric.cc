/**
 * @file
 * Large-topology scaling bench for the declarative fabric builder
 * (DESIGN.md Sec. 13): sweeps endpoint count x switch-tree depth,
 * building each fabric from a generated FabricDesc, and reports
 * construction cost, enumeration cost, simulation rate, and memory
 * per endpoint. The 1024-endpoint points sit beyond the 255-bus
 * enumeration ceiling and exercise the "enumerate": false direct
 * drive path; the small points enumerate the whole tree first.
 *
 * With --topology=FILE the bench instead loads a JSON topology
 * (under examples/topologies/) and runs its natural workload:
 * dd when the fabric has a disk, direct DMA writes when it has
 * traffic generators, a bare boot otherwise.
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "topo/fabric_builder.hh"

namespace
{

using namespace bench;
using namespace pciesim;

/** Resident set size in kB (0 when unavailable or --no-timing). */
double
rssKb()
{
    if (globalArgs().noTiming)
        return 0.0;
    double kb = 0.0;
#ifdef __linux__
    if (std::FILE *f = std::fopen("/proc/self/status", "r")) {
        char line[256];
        while (std::fgets(line, sizeof(line), f)) {
            if (std::sscanf(line, "VmRSS: %lf kB", &kb) == 1)
                break;
        }
        std::fclose(f);
    }
#endif
    return kb;
}

/** One generated sweep shape. */
struct Shape
{
    unsigned endpoints;
    unsigned depth;
};

/**
 * Build a balanced tree description: @p depth levels of switches
 * with a uniform fan chosen so the leaf level holds
 * @p endpoints traffic generators (each fan capped at 32, the
 * one-bus device-slot limit).
 */
FabricDesc
makeSweepDesc(const Shape &shape, const SystemConfig &config)
{
    FabricDesc desc;
    desc.source = "<sweep>";
    desc.config = config;
    desc.gen.postedWrites = true;

    // Uniform fan (capped at the switch's 16 downstream ports):
    // the smallest f with f^(depth+1) >= endpoints (depth switch
    // levels plus the endpoint level), then widened until the top
    // level fits the root complex's 8 root ports.
    auto topCount = [&shape](unsigned f) {
        unsigned c = (shape.endpoints + f - 1) / f;
        for (unsigned l = 1; l < shape.depth; ++l)
            c = (c + f - 1) / f;
        return c;
    };
    unsigned fan = 1;
    while (fan < 16) {
        double total = std::pow(static_cast<double>(fan),
                                static_cast<double>(shape.depth + 1));
        if (total >= static_cast<double>(shape.endpoints))
            break;
        ++fan;
    }
    while (fan < 16 && topCount(fan) > 8)
        ++fan;

    // Per-level switch population, leaves up: enough switches to
    // hold the level below.
    std::vector<unsigned> counts(shape.depth);
    counts[shape.depth - 1] =
        (shape.endpoints + fan - 1) / fan;
    for (int l = static_cast<int>(shape.depth) - 2; l >= 0; --l)
        counts[l] = (counts[l + 1] + fan - 1) / fan;

    // Switch levels, parents first; round-robin parent assignment
    // mirrors the builder's own count expansion.
    unsigned prev_count = 0;
    std::string prev_prefix;
    for (unsigned level = 0; level < shape.depth; ++level) {
        unsigned count = counts[level];
        std::string prefix = "sw" + std::to_string(level) + "_";
        for (unsigned i = 0; i < count; ++i) {
            FabricNodeDesc sw;
            sw.name = prefix + std::to_string(i);
            sw.kind = "switch";
            sw.ports = fan;
            if (level > 0) {
                sw.parent =
                    prev_prefix + std::to_string(i % prev_count);
            }
            desc.nodes.push_back(sw);
        }
        prev_count = count;
        prev_prefix = prefix;
    }

    for (unsigned i = 0; i < shape.endpoints; ++i) {
        FabricNodeDesc gen;
        gen.name = "tgen" + std::to_string(i);
        gen.kind = "traffic_gen";
        gen.parent = prev_prefix + std::to_string(i % prev_count);
        desc.nodes.push_back(gen);
    }

    // Enumerability: every bridge consumes one bus (root ports,
    // switch upstreams, every downstream port).
    unsigned switches = 0;
    unsigned root_children = 0;
    for (const FabricNodeDesc &n : desc.nodes) {
        if (n.kind == "switch") {
            ++switches;
            if (n.parent == "rc")
                ++root_children;
        }
    }
    unsigned buses = std::max(3u, root_children) +
                     switches * (1 + fan);
    desc.enumerate = buses <= 255;
    return desc;
}

/** Run one fabric and emit its record. */
void
runFabric(JsonEmitter &json, const std::string &label,
          const FabricDesc &desc, std::uint32_t bursts,
          std::uint32_t burst_bytes)
{
    prof::reset();
    Simulation sim;
    WallTimer build_timer;
    Fabric fabric(sim, desc);
    double build_ms = build_timer.elapsedMs();

    double enum_ms = 0.0;
    if (desc.enumerate && !fabric.numNics()) {
        WallTimer enum_timer;
        fabric.boot();
        enum_ms = enum_timer.elapsedMs();
    }

    WallTimer run_timer;
    double gbps = 0.0;
    if (fabric.numTrafficGens() > 0) {
        gbps = fabric.runDirectWrites(bursts, burst_bytes);
    } else if (fabric.numDisks() > 0) {
        DdWorkloadParams dd;
        dd.blockBytes = 1 << 20;
        gbps = fabric.runDd(dd);
    } else {
        fabric.boot();
    }
    double wall_ms = run_timer.elapsedMs();
    // Direct-drive runs bypass Fabric::runDd, which is where the
    // registry export normally happens; honor --stats-json here so
    // the determinism gates can diff the full registry.
    if (!globalArgs().statsJsonOut.empty() &&
        fabric.numDisks() == 0) {
        fabric.exportStatsJson(globalArgs().statsJsonOut);
    }

    unsigned endpoints = fabric.numTrafficGens() +
                         fabric.numDisks() + fabric.numNics();
    double events =
        static_cast<double>(sim.eventsProcessed());
    double eps = wall_ms > 0.0 ? events / (wall_ms / 1e3) : 0.0;
    double rss_per_ep =
        endpoints > 0 ? rssKb() / endpoints : rssKb();

    // Partition summary (DESIGN.md §14): how buildPcie() cut the
    // fabric, and what the engine's flight recorder saw. All
    // fields are zero for a single-queue run.
    ParallelTelemetry pt = readParallelTelemetry(sim);
    double quantum_ns = 0.0;
    double ep_per_domain = 0.0;
    if (ParallelEngine *eng = sim.engine()) {
        quantum_ns = ticksToNs(eng->quantum());
        // Domain 0 is the host; endpoints live in the cut domains.
        if (eng->numDomains() > 1) {
            ep_per_domain =
                static_cast<double>(endpoints) /
                static_cast<double>(eng->numDomains() - 1);
        }
    }

    if (json.enabled()) {
        json.record(label,
                    {{"endpoints", static_cast<double>(endpoints)},
                     {"switches",
                      static_cast<double>(fabric.numSwitches())},
                     {"links", static_cast<double>(
                                   fabric.links().size())},
                     {"enumerated",
                      desc.enumerate ? 1.0 : 0.0},
                     {"build_ms", build_ms},
                     {"enum_ms", enum_ms},
                     {"sim_ticks", static_cast<double>(
                                       sim.curTick())},
                     {"events", events},
                     {"events_per_sec", eps},
                     {"rss_kb_per_endpoint", rss_per_ep},
                     {"gbps", gbps},
                     {"threads", static_cast<double>(
                                     globalArgs().threads)},
                     {"domains", pt.domains},
                     {"endpoints_per_domain", ep_per_domain},
                     {"lookahead_ns", quantum_ns},
                     {"windows", pt.windows},
                     {"sync_fraction", pt.syncFraction},
                     {"load_imbalance", pt.loadImbalance},
                     {"mailbox_ops", pt.mailboxOps}});
    } else {
        std::printf("%-12s %5u ep %3u sw %5zu links %s "
                    "build %7.2f ms enum %7.2f ms "
                    "%10.0f ev/s %8.1f kB/ep %7.3f Gbps\n",
                    label.c_str(), endpoints,
                    fabric.numSwitches(), fabric.links().size(),
                    desc.enumerate ? "enum  " : "direct",
                    build_ms, enum_ms, eps, rss_per_ep, gbps);
        if (pt.domains > 0.0) {
            char sync[32] = "";
            if (pt.syncFraction > 0.0) {
                std::snprintf(sync, sizeof(sync), ", sync frac %.3f",
                              pt.syncFraction);
            }
            std::printf("  partition: %.0f domains, %.2f ep/domain, "
                        "lookahead %.0f ns, %.0f windows, "
                        "imbalance %.2f, %.0f mailbox ops%s\n",
                        pt.domains, ep_per_domain, quantum_ns,
                        pt.windows, pt.loadImbalance, pt.mailboxOps,
                        sync);
        } else if (globalArgs().threads >= 1) {
            std::printf("  partition: single-queue (partitioning "
                        "unavailable for this configuration)\n");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    JsonEmitter json("fabric", args.json);

    std::string topology;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--topology=", 11) == 0)
            topology = argv[i] + 11;
    }

    if (!topology.empty()) {
        FabricDesc desc = loadFabricDesc(topology);
        applyObservability(args, desc.config);
        runFabric(json, topology, desc, 8, 16384);
        return 0;
    }

    SystemConfig config;
    config.gen = PcieGen::Gen3;
    // Coarse lookahead (cf. parallel_determinism_test): the sweep
    // partitions into up to ~1100 link domains, and the default
    // 5 ns propagation would make the synchronization quantum so
    // fine that a partitioned run steps millions of windows. A
    // 500 ns wire with a generous replay timeout keeps --threads N
    // steppable without changing what the sweep measures.
    config.linkPropagation = nanoseconds(500);
    config.replayTimeoutScale = 100.0;
    applyObservability(args, config);

    // 8 root ports x 16-port switches cap depth 1 at 128
    // endpoints; the 256- and 1024-endpoint points need a second
    // switch level.
    std::vector<Shape> shapes;
    std::uint32_t bursts = 4;
    if (args.scale == Scale::Smoke) {
        shapes = {{8, 1}, {1024, 2}};
        bursts = 2;
    } else {
        shapes = {{8, 1},  {64, 1},  {64, 2},
                  {256, 2}, {1024, 2}};
        if (args.scale == Scale::Paper)
            shapes.push_back({1024, 3});
    }

    if (!args.json) {
        std::printf("fabric scaling sweep (endpoints x switch "
                    "depth)\n");
    }
    for (const Shape &s : shapes) {
        std::string label = std::to_string(s.endpoints) + "ep/d" +
                            std::to_string(s.depth);
        runFabric(json, label, makeSweepDesc(s, config), bursts,
                  4096);
    }
    return 0;
}
