# Smoke test for a bench binary: run it with tiny sizes in --json
# mode and validate that every output line parses as JSON. Keeps the
# bench binaries and their --json contract from rotting.
#
# Invoked by ctest as:
#   cmake -DBENCH_BIN=<bench> -DVALIDATOR=<json_validate> \
#         -DOUT=<scratch file> -P bench_smoke.cmake

if(NOT BENCH_BIN OR NOT VALIDATOR OR NOT OUT)
    message(FATAL_ERROR "bench_smoke.cmake needs BENCH_BIN, VALIDATOR and OUT")
endif()

execute_process(
    COMMAND "${BENCH_BIN}" --smoke --json
    OUTPUT_FILE "${OUT}"
    RESULT_VARIABLE bench_rv
)
if(NOT bench_rv EQUAL 0)
    message(FATAL_ERROR "${BENCH_BIN} --smoke --json exited with ${bench_rv}")
endif()

execute_process(
    COMMAND "${VALIDATOR}" "${OUT}"
    RESULT_VARIABLE validate_rv
)
if(NOT validate_rv EQUAL 0)
    message(FATAL_ERROR "${BENCH_BIN} --json output failed JSON validation")
endif()
