# End-to-end smoke of the stats.json / pciesim-report pipeline:
#
#   1. a dd bench exports stats.json (profiled, timing zeroed)
#   2. the export parses as one whole-file JSON document
#   3. `pciesim-report diff` of identical dumps exits 0
#   4. an injected counter regression makes the diff exit nonzero
#   5. `pciesim-report top` renders the embedded profiler section
#   6. `pciesim-report trajectory` renders the bench records and
#      the checked-in BENCH_*.json history (TRAJ, plus the
#      optional TRAJ2 — the fabric sweep trajectory)
#   7. `pciesim-report scaling` renders the thread-sweep records
#      embedded in the checked-in trajectories
#
# Invoked by ctest as:
#   cmake -DBENCH_BIN=<bench> -DREPORT_BIN=<pciesim-report>
#         -DVALIDATOR=<json_validate> -DWORK=<scratch prefix>
#         -DTRAJ=<checked-in BENCH_*.json>
#         [-DTRAJ2=<second BENCH_*.json>] -P report_smoke.cmake

foreach(var BENCH_BIN REPORT_BIN VALIDATOR WORK TRAJ)
    if(NOT ${var})
        message(FATAL_ERROR "report_smoke.cmake needs ${var}")
    endif()
endforeach()

execute_process(
    COMMAND "${BENCH_BIN}" --smoke --json --no-timing --profile
        "--stats-json=${WORK}_a.json"
    OUTPUT_FILE "${WORK}_bench.json"
    RESULT_VARIABLE rv
)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "${BENCH_BIN} exited with ${rv}")
endif()

execute_process(
    COMMAND "${VALIDATOR}" --whole "${WORK}_a.json"
    RESULT_VARIABLE rv
)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "stats.json failed whole-document "
        "JSON validation")
endif()

execute_process(
    COMMAND "${REPORT_BIN}" diff "${WORK}_a.json" "${WORK}_a.json"
    RESULT_VARIABLE rv
    OUTPUT_QUIET
)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR
        "pciesim-report diff of identical dumps exited ${rv}")
endif()

# Inject a regression: multiply system.disk.dmaBytes by ~10.
file(READ "${WORK}_a.json" dump)
string(REGEX REPLACE
    "(\"name\": \"system.disk.dmaBytes\"[^}]*\"value\": )([0-9]+)"
    "\\1\\20" dump_regressed "${dump}")
if(dump_regressed STREQUAL dump)
    message(FATAL_ERROR
        "could not inject a regression into ${WORK}_a.json")
endif()
file(WRITE "${WORK}_b.json" "${dump_regressed}")

execute_process(
    COMMAND "${REPORT_BIN}" diff "${WORK}_a.json" "${WORK}_b.json"
    RESULT_VARIABLE rv
    OUTPUT_QUIET
)
if(NOT rv EQUAL 1)
    message(FATAL_ERROR
        "pciesim-report diff missed an injected regression "
        "(exit ${rv}, want 1)")
endif()

execute_process(
    COMMAND "${REPORT_BIN}" top "${WORK}_a.json"
    RESULT_VARIABLE rv
    OUTPUT_QUIET
)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR
        "pciesim-report top exited ${rv} on a profiled dump")
endif()

set(trajs "${TRAJ}")
if(TRAJ2)
    list(APPEND trajs "${TRAJ2}")
endif()
execute_process(
    COMMAND "${REPORT_BIN}" trajectory "${WORK}_bench.json" ${trajs}
    RESULT_VARIABLE rv
    OUTPUT_QUIET
)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "pciesim-report trajectory exited ${rv}")
endif()

# The checked-in trajectories carry --threads sweep records; the
# scaling view must render them (exit 0 requires at least one
# record with a threads >= 1 field).
execute_process(
    COMMAND "${REPORT_BIN}" scaling ${trajs}
    RESULT_VARIABLE rv
    OUTPUT_QUIET
)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "pciesim-report scaling exited ${rv}")
endif()
