/**
 * @file
 * Figure 9(b): dd throughput vs block size for Gen 2 link widths
 * x1/x2/x4/x8 (all links in the fabric widened together).
 *
 * Paper shape: x1 -> x2 gives ~1.67x; x2 -> x4 a smaller increase;
 * x4 -> x8 a throughput DROP, with ~27% of transmitted packets
 * experiencing replay at x8 and almost zero at x2/x4.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    BenchArgs args = parseArgs(argc, argv);
    auto blocks = blockSizes(args.scale);
    JsonEmitter json("fig9b", args.json);

    if (!args.json) {
        std::printf("=== Fig 9(b): dd throughput (Gbps), link width "
                    "sweep, Gen2 ===\n");
        std::printf("%-6s", "width");
        for (auto b : blocks)
            std::printf(" %10s", blockLabel(b).c_str());
        std::printf(" %12s\n", "replay-frac");
    }

    double prev = 0.0;
    for (unsigned width : {1u, 2u, 4u, 8u}) {
        if (!args.json)
            std::printf("x%-5u", width);
        double last = 0.0;
        double replay = 0.0;
        for (auto b : blocks) {
            SystemConfig cfg;
            cfg.upstreamLinkWidth = width;
            cfg.downstreamLinkWidth = width;
            DdResult r = runDd(cfg, b);
            if (!args.json)
                std::printf(" %10.3f", r.gbps);
            json.record("x" + std::to_string(width) + "/" +
                            blockLabel(b),
                        r);
            last = r.gbps;
            replay = r.replayFraction;
        }
        if (!args.json) {
            std::printf(" %11.1f%%", replay * 100.0);
            if (prev != 0.0)
                std::printf("   (%.2fx)", last / prev);
            std::printf("\n");
        }
        prev = last;
    }
    if (!args.json) {
        std::printf("paper shape: x1->x2 = 1.67x, smaller x2->x4 "
                    "gain, x4->x8 DROP with ~27%% replay\n");
    }
    return 0;
}
