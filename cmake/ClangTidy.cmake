# The run-tidy target: clang-tidy over every src/ translation unit
# using the exported compile database (.clang-tidy at the repo root
# holds the check configuration).
#
# clang-tidy is optional tooling, not a build dependency: when the
# binary is absent the target degrades to a no-op that reports the
# skip and exits 0, so scripts/check.sh works on minimal containers.

find_program(PCIESIM_CLANG_TIDY
    NAMES clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17
          clang-tidy-16 clang-tidy-15 clang-tidy-14
    DOC "clang-tidy executable for the run-tidy target")

if(PCIESIM_CLANG_TIDY)
    file(GLOB_RECURSE PCIESIM_TIDY_SOURCES
        CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/src/*.cc)
    add_custom_target(run-tidy
        COMMAND ${PCIESIM_CLANG_TIDY}
            -p ${CMAKE_BINARY_DIR}
            --quiet
            --warnings-as-errors=*
            ${PCIESIM_TIDY_SOURCES}
        WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
        COMMENT "clang-tidy over src/ (config: .clang-tidy)"
        VERBATIM)
else()
    add_custom_target(run-tidy
        COMMAND ${CMAKE_COMMAND} -E echo
            "run-tidy: clang-tidy not found in PATH, skipping"
        COMMENT "clang-tidy unavailable"
        VERBATIM)
endif()
