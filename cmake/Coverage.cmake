# Coverage instrumentation + report target (coverage preset).
#
# With PCIESIM_COVERAGE=ON every target is built with --coverage
# (gcov notes + counters). The `coverage-report` target runs gcovr
# when it is installed, and otherwise prints the manual gcov
# incantation — the build itself never depends on gcovr.

if(NOT PCIESIM_COVERAGE)
    return()
endif()

add_compile_options(--coverage -O0 -g)
add_link_options(--coverage)

find_program(GCOVR_EXECUTABLE gcovr)
find_program(LLVM_COV_EXECUTABLE llvm-cov)

if(GCOVR_EXECUTABLE)
    add_custom_target(coverage-report
        COMMAND ${GCOVR_EXECUTABLE}
            --root ${CMAKE_SOURCE_DIR}
            --filter ${CMAKE_SOURCE_DIR}/src
            --print-summary
            --html-details
                ${CMAKE_BINARY_DIR}/coverage/index.html
            ${CMAKE_BINARY_DIR}
        WORKING_DIRECTORY ${CMAKE_BINARY_DIR}
        COMMENT "Generating coverage report (gcovr)"
        VERBATIM)
elseif(LLVM_COV_EXECUTABLE)
    add_custom_target(coverage-report
        COMMAND sh -c
            "find . -name '*.gcda' -exec ${LLVM_COV_EXECUTABLE} gcov -p {} +"
        WORKING_DIRECTORY ${CMAKE_BINARY_DIR}
        COMMENT "Generating coverage report (llvm-cov gcov)"
        VERBATIM)
else()
    add_custom_target(coverage-report
        COMMAND ${CMAKE_COMMAND} -E echo
            "no gcovr/llvm-cov found; run gcov by hand on the"
            " .gcda files under ${CMAKE_BINARY_DIR}"
        VERBATIM)
endif()
