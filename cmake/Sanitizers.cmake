# Sanitizer wiring for the asan-ubsan and tsan presets.
#
# PCIESIM_SANITIZE is a comma-separated -fsanitize= argument:
#   -DPCIESIM_SANITIZE=address,undefined   (the asan-ubsan preset)
#   -DPCIESIM_SANITIZE=thread              (the tsan preset)
#
# Findings are fatal (-fno-sanitize-recover=all) so a sanitized
# ctest run fails loudly instead of scrolling diagnostics past.
# Frame pointers are kept for readable sanitizer stack traces.

set(PCIESIM_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers to build with (e.g. address,undefined)")

if(PCIESIM_SANITIZE)
    message(STATUS "Building with -fsanitize=${PCIESIM_SANITIZE}")
    add_compile_options(
        -fsanitize=${PCIESIM_SANITIZE}
        -fno-sanitize-recover=all
        -fno-omit-frame-pointer)
    add_link_options(-fsanitize=${PCIESIM_SANITIZE})
endif()
