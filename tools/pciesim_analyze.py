#!/usr/bin/env python3
"""Semantic static analyzer for the pciesim tree.

Where tools/gem5_lint.py checks *style*, this tool checks the
*contracts* the simulator's architecture rests on (DESIGN.md Sec. 11)
in three passes:

  layering       the #include graph must respect the declared layer
                 order (sim <- mem <- pci <- pcie <- dev <- os <-
                 topo <- bench/tools) and contain no include cycles.
                 `--dot FILE` writes the observed layer graph as DOT.

  determinism    model code under src/ must not read wall clocks,
                 use unseeded randomness, iterate unordered
                 containers on any path that feeds a stats dump /
                 trace sink / JSON emitter, or order data by raw
                 pointer values.  All of these make output depend on
                 host state and break the byte-identical 1-vs-N
                 parallel determinism gates.

  domain safety  under the parallel engine (DESIGN.md Sec. 10) a
                 SimObject may only schedule onto its own home
                 queue; cross-domain event traffic goes through the
                 PcieLink mailbox.  File-scope mutable state in src/
                 must be synchronized or declared single-threaded.

Rule ids:

  layering               upward or sideways #include between layers
  include-cycle          cycle in the file-level include graph
  topo-dev-include       src/topo/ file other than the fabric
                         builder's registration surface including a
                         dev/ header; topologies are declarative
                         descriptions, only the builder names models
  wall-clock             std::chrono clocks, time(), gettimeofday()
  unseeded-rng           rand()/srand(), std::random_device, or a
                         std <random> engine with no Rng-derived seed
  unordered-emit         unordered container iterated inside a
                         function reachable from an emit entry point
  pointer-order          ordered container keyed by a pointer type
  cross-domain-schedule  ->schedule()/->deschedule() on a queue that
                         is not the caller's own home queue
  shared-state           mutable file-scope/static state without
                         atomics, a lock, or an annotation
  bad-suppression        ignore[...] pragma with no reason string

Escape hatches (shared grammar with gem5-lint, see
pciesim_common.py; the reason string is mandatory):

  // pciesim-analyze: ignore[rule-id]: <why this is safe>
  // pciesim-analyze: single-threaded: <why> (shared-state only)
  // pciesim-analyze: ignore-file   (first 10 lines) skip the file

A `--baseline findings.json` file tolerates pre-existing findings
per (file, rule) with a count, so a legacy tree can be ratcheted
down instead of blocking; baseline entries that no longer fire
print a "stale baseline" warning so the file shrinks over time.

Usage: pciesim_analyze.py [--tree ROOT | PATH ...] [--dot FILE]
                          [--baseline FILE] [--quiet]
Exits 0 when clean, 1 when any finding survives, 2 on usage error.
"""

import argparse
import json
import re
import sys
from pathlib import Path

from pciesim_common import Finding, PragmaSet, iter_files, \
    strip_comments

PRAGMA_TAG = "pciesim-analyze"
SINGLE_THREADED = PRAGMA_TAG + ": single-threaded"

# ---------------------------------------------------------------
# Layer contract.  A layer may include itself and anything listed;
# the list is the transitive closure of the architecture diagram in
# DESIGN.md Sec. 11.  bench/, tools/, tests/ and examples/ sit above
# topo and may include any src layer.
# ---------------------------------------------------------------

LAYER_ORDER = ["sim", "mem", "pci", "pcie", "dev", "os", "topo"]

ALLOWED_INCLUDES = {}
for _i, _layer in enumerate(LAYER_ORDER):
    ALLOWED_INCLUDES[_layer] = set(LAYER_ORDER[:_i + 1])

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# ---------------------------------------------------------------
# Determinism patterns.
# ---------------------------------------------------------------

WALL_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\btime\s*\(\s*(?:NULL|nullptr|0|&|\))"
    r"|\bclock\s*\(\s*\)")

RNG_CALL_RE = re.compile(
    r"\b(?:rand|srand|rand_r|drand48|random)\s*\("
    r"|std::random_device")

RNG_ENGINE_RE = re.compile(
    r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+|"
    r"default_random_engine|knuth_b)\b")

RNG_SEEDED_RE = re.compile(r"[Rr]ng|[Ss]eed")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;(){]*>\s*"
    r"&?\s*([A-Za-z_]\w*)\s*[;{=(,)]")

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;:()]*:\s*([^)]+)\)")

POINTER_KEY_RE = re.compile(
    r"(?<!unordered_)\b(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^<>]*>)?\s*\*")

# Function names that write simulator output: stats dumps, trace
# sinks, JSON emitters, report tables.  These seed the emit taint.
EMIT_NAME_RE = re.compile(
    r"^(?:dump|emit|flush|print|report|serialize)"
    r"|json|sink", re.IGNORECASE)

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CALL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "alignof", "decltype", "static_assert", "assert", "defined",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
}

# ---------------------------------------------------------------
# Domain-safety patterns.
# ---------------------------------------------------------------

SCHEDULE_RE = re.compile(
    r"([A-Za-z_]\w*(?:\(\))?(?:(?:->|\.)[A-Za-z_]\w*(?:\(\))?)*)"
    r"\s*->\s*((?:de|re)?schedule)\s*\(")

# Receivers that are by construction the caller's own home queue.
OWN_QUEUE_RECEIVERS = {"homeQueue_", "eventq()", "this"}

# Files implementing the sanctioned cross-domain machinery: the
# parallel engine itself, the PcieLink mailbox paths, and the AER
# error-message reporter (which posts ERR_* delivery to the root
# complex's home queue by design — DESIGN.md §12).
CROSS_DOMAIN_FILES = ("sim/parallel.cc", "pcie/pcie_link.cc",
                      "pcie/err_reporter.cc")

STATIC_DECL_RE = re.compile(
    r"^\s*static\s+(?!constexpr\b|const\b|class\b|struct\b|enum\b)"
    r"(?:[\w:]+(?:\s*<[^;{}]*>)?(?:\s*[*&])*\s+)+"
    r"\*?\s*([A-Za-z_]\w*)\s*(?:[;={(]|\[)")

SYNC_TYPE_RE = re.compile(
    r"std::\s*(?:mutex|recursive_mutex|shared_mutex|once_flag|"
    r"atomic|condition_variable)")

LOCK_RE = re.compile(r"\b(?:lock_guard|scoped_lock|unique_lock|"
                     r"shared_lock)\b")


def layer_of(path):
    """Return (layer, relpath-within-src) for a file under a src/
    directory, or (None, None) for bench/tools/tests files, which
    are unconstrained by the layer contract."""
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == "src" and i + 2 < len(parts) + 1:
            rest = parts[i + 1:]
            if len(rest) >= 2:
                return rest[0], "/".join(rest)
    return None, None


class FileInfo:
    """Parsed per-file facts shared by the passes."""

    def __init__(self, path):
        self.path = path
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.pragmas = PragmaSet(PRAGMA_TAG, self.lines)
        self.code = strip_comments(self.lines)
        self.layer, self.src_rel = layer_of(path)
        self.includes = []          # (lineno, target-string)
        for i, line in enumerate(self.code, start=1):
            m = INCLUDE_RE.match(line)
            if m:
                self.includes.append((i, m.group(1)))


# ---------------------------------------------------------------
# Pass A: layering + include cycles + DOT dump.
# ---------------------------------------------------------------

def check_layering(info, report):
    if info.layer is None:
        return
    allowed = ALLOWED_INCLUDES.get(info.layer)
    if allowed is None:
        return                      # unknown dir under src/: skip
    for lineno, target in info.includes:
        tparts = target.split("/")
        tlayer = tparts[0] if len(tparts) > 1 else info.layer
        if tlayer not in ALLOWED_INCLUDES:
            continue                # not a layer-qualified include
        if tlayer not in allowed:
            report(info, lineno, "layering",
                   "layer '%s' must not include layer '%s' "
                   "(order: %s)"
                   % (info.layer, tlayer,
                      " <- ".join(LAYER_ORDER)))


# The builder's registration surface: the only topo files allowed
# to name concrete device models. Everything else under src/topo/
# (topology wrappers, future shapes) must stay declarative and go
# through FabricDesc/FabricNodeDesc instead.
TOPO_DEV_ALLOWED = {
    "topo/fabric_builder.hh",
    "topo/fabric_builder.cc",
    "topo/system_config.hh",
}


def check_topo_dev(info, report):
    """Downward dev/ includes are legal layering-wise, but in topo
    they re-open the door the declarative builder closed: a wrapper
    that wires device objects by hand can drift from the JSON path
    it is supposed to mirror."""
    if info.layer != "topo" or info.src_rel in TOPO_DEV_ALLOWED:
        return
    for lineno, target in info.includes:
        if target.split("/")[0] == "dev":
            report(info, lineno, "topo-dev-include",
                   "topo file includes '%s'; device models are "
                   "reachable only through the fabric builder's "
                   "registration surface (%s)"
                   % (target, ", ".join(sorted(TOPO_DEV_ALLOWED))))


def resolve_include(info, target, by_rel):
    """Map an include string to a FileInfo in the analyzed set."""
    if "/" in target:
        return by_rel.get(target)
    if info.src_rel is None:
        return None
    samedir = str(Path(info.src_rel).parent / target)
    return by_rel.get(samedir.replace("\\", "/"))


def check_cycles(infos, report):
    """DFS over the file-level include graph; report each cycle
    once, on its lexicographically first member."""
    by_rel = {i.src_rel: i for i in infos if i.src_rel}
    graph = {}
    for info in infos:
        if not info.src_rel:
            continue
        edges = []
        for _, target in info.includes:
            dep = resolve_include(info, target, by_rel)
            if dep is not None and dep.src_rel != info.src_rel:
                edges.append(dep.src_rel)
        graph[info.src_rel] = edges

    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    stack = []
    cycles = []

    def dfs(n):
        color[n] = GREY
        stack.append(n)
        for dep in graph.get(n, ()):
            if color.get(dep, BLACK) == WHITE:
                dfs(dep)
            elif color.get(dep) == GREY:
                cyc = stack[stack.index(dep):] + [dep]
                cycles.append(cyc)
        stack.pop()
        color[n] = BLACK

    for n in sorted(graph):
        if color[n] == WHITE:
            dfs(n)

    seen = set()
    for cyc in cycles:
        key = frozenset(cyc)
        if key in seen:
            continue
        seen.add(key)
        first = min(cyc[:-1])
        info = by_rel[first]
        report(info, 1, "include-cycle",
               "include cycle: %s" % " -> ".join(cyc))


def write_dot(infos, out_path):
    """Write the observed layer-level include graph as DOT, for the
    docs (checked in as docs/layers.dot)."""
    edges = set()
    layers = set()
    for info in infos:
        if info.layer is None:
            continue
        layers.add(info.layer)
        for _, target in info.includes:
            tparts = target.split("/")
            tlayer = tparts[0] if len(tparts) > 1 else info.layer
            if tlayer in ALLOWED_INCLUDES and tlayer != info.layer:
                edges.add((info.layer, tlayer))
                layers.add(tlayer)
    lines = [
        "// Layer-level #include graph of src/, generated by",
        "//   tools/pciesim_analyze.py --tree src --dot ...",
        "// An edge A -> B means files in layer A include layer B.",
        "digraph pciesim_layers {",
        "    rankdir=BT;",
        "    node [shape=box, fontname=\"monospace\"];",
    ]
    for layer in LAYER_ORDER:
        if layer in layers:
            lines.append("    \"%s\";" % layer)
    for a, b in sorted(edges):
        lines.append("    \"%s\" -> \"%s\";" % (a, b))
    lines.append("}")
    Path(out_path).write_text("\n".join(lines) + "\n",
                              encoding="utf-8")


# ---------------------------------------------------------------
# Pass B: determinism.
# ---------------------------------------------------------------

def check_determinism_lines(info, report):
    if info.layer is None:
        return                      # model-code rules: src/ only
    for i, line in enumerate(info.code, start=1):
        if WALL_CLOCK_RE.search(line):
            report(info, i, "wall-clock",
                   "wall-clock read in model code; simulated time "
                   "must come from curTick()")
        if RNG_CALL_RE.search(line):
            report(info, i, "unseeded-rng",
                   "unseeded/libc randomness; use the seeded "
                   "sim/rng.hh Rng")
        elif RNG_ENGINE_RE.search(line) and \
                not RNG_SEEDED_RE.search(line):
            report(info, i, "unseeded-rng",
                   "std <random> engine constructed without an "
                   "Rng-derived seed")
        if POINTER_KEY_RE.search(line):
            report(info, i, "pointer-order",
                   "ordered container keyed by a pointer; "
                   "iteration order follows the allocator, not "
                   "the simulation")


def parse_functions(info):
    """Lexically split a file into (name, start, end, body-lines)
    top-level function extents.  Handles the repo's two definition
    styles: .cc definitions with the declarator at column 0 under
    its return type, and indented inline methods in class bodies.
    Nested braces (lambdas, scopes) stay inside the enclosing
    function."""
    sig_re = re.compile(
        r"(~?[A-Za-z_]\w*)\s*\([^;{}]*(?:\)[\s\w:]*)?$")
    funcs = []
    depth_at_open = None
    cur = None
    depth = 0
    pending_sig = None
    for i, line in enumerate(info.code, start=1):
        stripped = line.strip()
        if cur is None and depth_at_open is None:
            if "{" not in line:
                # Remember a potential signature; `{` may come on
                # the next line (gem5 style).
                seg = stripped.rstrip()
                if seg.endswith(")") or seg.endswith("const") \
                        or seg.endswith("noexcept") \
                        or seg.endswith("override"):
                    m = sig_re.search(seg)
                    if m and m.group(1) not in CALL_KEYWORDS:
                        pending_sig = (m.group(1), i)
                    else:
                        pending_sig = None
                elif seg and not seg.endswith(","):
                    pending_sig = None
        for ch in line:
            if ch == "{":
                if cur is None:
                    name = None
                    start = i
                    before = line[:line.index("{")].strip()
                    if before:
                        m = sig_re.search(before)
                        if m and m.group(1) not in CALL_KEYWORDS:
                            name = m.group(1)
                    elif pending_sig:
                        name, start = pending_sig
                    if name:
                        cur = [name, start, None]
                        depth_at_open = depth
                depth += 1
            elif ch == "}":
                depth -= 1
                if cur is not None and depth == depth_at_open:
                    cur[2] = i
                    funcs.append(tuple(cur))
                    cur = None
                    depth_at_open = None
        if "{" in line or stripped.endswith(";"):
            pending_sig = None
    return funcs


def check_unordered_emit(info, report):
    if info.layer is None:
        return
    unordered = set()
    for line in info.code:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered.add(m.group(1))
    funcs = parse_functions(info)
    if not funcs:
        return

    def body(f):
        return info.code[f[1] - 1:f[2]]

    calls = {}
    for f in funcs:
        callees = set()
        for line in body(f):
            for m in CALL_RE.finditer(line):
                if m.group(1) not in CALL_KEYWORDS:
                    callees.add(m.group(1))
        calls[f] = callees

    tainted = {f for f in funcs if EMIT_NAME_RE.search(f[0])}
    by_name = {}
    for f in funcs:
        by_name.setdefault(f[0], []).append(f)
    frontier = list(tainted)
    while frontier:
        f = frontier.pop()
        for callee in calls[f]:
            for g in by_name.get(callee, ()):
                if g not in tainted:
                    tainted.add(g)
                    frontier.append(g)

    for f in sorted(tainted, key=lambda f: f[1]):
        for off, line in enumerate(body(f)):
            m = RANGE_FOR_RE.search(line)
            if not m:
                continue
            expr = m.group(1)
            words = set(re.findall(r"[A-Za-z_]\w*", expr))
            hit = sorted(words & unordered)
            if not hit and "unordered" not in expr:
                continue
            report(info, f[1] + off, "unordered-emit",
                   "iteration over unordered container '%s' in "
                   "'%s', which is reachable from an emit entry "
                   "point; unordered iteration order may leak "
                   "into dumps" % (hit[0] if hit else "?", f[0]))


# ---------------------------------------------------------------
# Pass C: domain safety.
# ---------------------------------------------------------------

def check_cross_domain(info, report):
    if info.layer is None:
        return
    if info.src_rel and info.src_rel.endswith(CROSS_DOMAIN_FILES):
        return
    for i, line in enumerate(info.code, start=1):
        for m in SCHEDULE_RE.finditer(line):
            receiver = m.group(1)
            if receiver in OWN_QUEUE_RECEIVERS:
                continue
            report(info, i, "cross-domain-schedule",
                   "'%s->%s(' schedules through '%s', which is "
                   "not the caller's home queue; cross-domain "
                   "events must go through the PcieLink mailbox"
                   % (receiver, m.group(2), receiver))


def annotated_single_threaded(info, lineno):
    """The annotation may trail the declaration or sit in the
    contiguous comment block directly above it."""
    if SINGLE_THREADED in info.lines[lineno - 1]:
        return True
    j = lineno - 1
    while j >= 1 and info.lines[j - 1].strip().startswith("//"):
        if SINGLE_THREADED in info.lines[j - 1]:
            return True
        j -= 1
    return False


def check_shared_state(info, report):
    if info.layer is None or info.path.suffix not in (".cc", ".cpp"):
        return
    for i, line in enumerate(info.code, start=1):
        if "thread_local" in line or "static_assert" in line:
            continue
        m = STATIC_DECL_RE.match(line)
        if not m:
            continue
        if SYNC_TYPE_RE.search(line):
            continue                # the guard object itself
        # A static whose use is bracketed by a lock on the very
        # next lines counts as guarded.
        window = info.code[i:i + 3]
        if any(LOCK_RE.search(w) for w in window):
            continue
        if annotated_single_threaded(info, i):
            continue
        report(info, i, "shared-state",
               "mutable static '%s' is shared across parallel "
               "workers; use std::atomic, guard it with a lock, "
               "or annotate '// %s: <why>'"
               % (m.group(1), SINGLE_THREADED))


# ---------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------

def analyze(paths):
    """Run all passes; returns (findings, infos)."""
    findings = []
    infos = []
    for path in iter_files(paths):
        info = FileInfo(path)
        if info.pragmas.skip_file:
            continue
        infos.append(info)

    def report(info, lineno, rule, message):
        if info.pragmas.line_off(lineno):
            return
        if info.pragmas.rule_ignored(lineno, rule):
            return
        findings.append(Finding(info.path, lineno, rule, message))

    for info in infos:
        for lineno, rule in info.pragmas.bad_suppressions:
            findings.append(Finding(
                info.path, lineno, "bad-suppression",
                "ignore[%s] pragma without a reason string; write "
                "'// %s: ignore[%s]: <why this is safe>'"
                % (rule, PRAGMA_TAG, rule)))
        check_layering(info, report)
        check_topo_dev(info, report)
        check_determinism_lines(info, report)
        check_unordered_emit(info, report)
        check_cross_domain(info, report)
        check_shared_state(info, report)
    check_cycles(infos, report)

    findings.sort(key=lambda f: (str(f.path), f.line, f.check))
    return findings, infos


def apply_baseline(findings, baseline_path):
    """Subtract baselined findings; return (kept, stale) where
    stale lists (file, rule, allowed, seen) for ratcheting."""
    data = json.loads(Path(baseline_path).read_text())
    allowance = {}
    for entry in data.get("findings", []):
        key = (entry["file"], entry["rule"])
        allowance[key] = allowance.get(key, 0) + \
            int(entry.get("count", 1))
    seen = {}
    kept = []
    for f in findings:
        key = (norm_key(f.path), f.check)
        seen[key] = seen.get(key, 0) + 1
        if seen.get(key, 0) <= allowance.get(key, 0):
            continue
        kept.append(f)
    stale = []
    for key, allowed in sorted(allowance.items()):
        if seen.get(key, 0) < allowed:
            stale.append((key[0], key[1], allowed,
                          seen.get(key, 0)))
    return kept, stale


def norm_key(path):
    """Baseline file keys: path from the last src/ component when
    present, else the plain path, so baselines survive both
    `--tree src` and absolute-path invocations."""
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "src":
            return "/".join(parts[i:])
    return "/".join(parts)


def main(argv):
    parser = argparse.ArgumentParser(
        description="semantic static analyzer for the pciesim tree "
                    "(layering, determinism, domain safety)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze")
    parser.add_argument("--tree", metavar="ROOT",
                        help="analyze the whole tree rooted at ROOT")
    parser.add_argument("--dot", metavar="FILE",
                        help="write the layer include graph as DOT")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON of tolerated pre-existing "
                             "findings (ratchet)")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    args = parser.parse_args(argv)

    paths = list(args.paths)
    if args.tree:
        paths.append(args.tree)
    if not paths:
        parser.error("no paths given (use --tree ROOT or PATH ...)")

    try:
        findings, infos = analyze(paths)
    except FileNotFoundError as e:
        print("pciesim_analyze: no such path: %s" % e,
              file=sys.stderr)
        return 2

    if args.dot:
        write_dot(infos, args.dot)

    if args.baseline:
        try:
            findings, stale = apply_baseline(findings,
                                             args.baseline)
        except (OSError, ValueError, KeyError) as e:
            print("pciesim_analyze: bad baseline: %s" % e,
                  file=sys.stderr)
            return 2
        for file, rule, allowed, seen in stale:
            print("pciesim_analyze: stale baseline entry: "
                  "%s [%s] allows %d finding(s) but only %d "
                  "fire(s); ratchet the baseline down"
                  % (file, rule, allowed, seen), file=sys.stderr)

    if not args.quiet:
        for f in findings:
            print(f)
    print("pciesim_analyze: %d file(s), %d finding(s)"
          % (len(infos), len(findings)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
