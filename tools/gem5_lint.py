#!/usr/bin/env python3
"""gem5-style linter for the pciesim tree.

Enforces the subset of the gem5 style guide this repo follows:

  line-length    no line over 79 columns
  header-guard   .hh guards named PCIESIM_<PATH>_HH (path relative
                 to src/ for src headers, to the repo root otherwise)
  include-order  the leading include block of each file: a .cc's own
                 header first, then <>-style includes before ""-style
                 includes, each contiguous group internally sorted
  naming         ClassName for classes/structs/enums (CamelCase, no
                 underscores); no m_-prefixed members (this repo uses
                 trailingUnderscore_ members and local_variable locals)
  doxygen-class  every public class/struct defined at namespace scope
                 in a header carries a /** ... */ Doxygen comment

Escape hatches:

  // gem5-lint: ignore        suppress findings on this line
  // gem5-lint: off|on        suppress findings in a region
  // gem5-lint: ignore-file   (in the first 10 lines) skip the file

Usage: gem5_lint.py [--quiet] PATH [PATH ...]
Exits 0 when clean, 1 when any finding survives, 2 on usage error.
"""

import argparse
import re
import sys
from pathlib import Path

from pciesim_common import Finding, PragmaSet, iter_files

MAX_COLUMNS = 79
PRAGMA_TAG = "gem5-lint"

CLASS_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(class|struct|enum(?:\s+class)?)\s+"
    r"(?:alignas\([^)]*\)\s*)?([A-Za-z_]\w*)"
)
CAMEL_RE = re.compile(r"^[A-Z][A-Za-z0-9]*$")
M_PREFIX_RE = re.compile(r"\bm_[a-z]\w*")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^>"]+)[>"]')


def active_lines(lines, pragmas=None):
    """Yield (lineno, line) pairs honouring the off/on/ignore
    pragmas (parsed via pciesim_common.PragmaSet)."""
    if pragmas is None:
        pragmas = PragmaSet(PRAGMA_TAG, lines)
    for i, line in enumerate(lines, start=1):
        if not pragmas.line_off(i):
            yield i, line


def check_line_lengths(path, lines, findings):
    for i, line in active_lines(lines):
        if len(line.rstrip("\n")) > MAX_COLUMNS:
            findings.append(Finding(
                path, i, "line-length",
                "line is %d columns; limit is %d"
                % (len(line.rstrip("\n")), MAX_COLUMNS)))


def expected_guard(path, repo_root):
    """PCIESIM_<PATH>_HH: path sans src/ prefix and extension."""
    rel = path.resolve().relative_to(repo_root)
    parts = list(rel.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    parts[-1] = Path(parts[-1]).stem
    return "PCIESIM_" + "_".join(
        re.sub(r"[^A-Za-z0-9]", "_", p).upper() for p in parts) + "_HH"


def check_header_guard(path, lines, repo_root, findings):
    if path.suffix not in (".hh", ".h"):
        return
    want = expected_guard(path, repo_root)
    directives = [(i, l.strip()) for i, l in active_lines(lines)
                  if l.lstrip().startswith("#")]
    if len(directives) < 2:
        findings.append(Finding(path, 1, "header-guard",
                                "missing header guard %s" % want))
        return
    (i_ifndef, ifndef), (i_define, define) = directives[0], directives[1]
    m1 = re.match(r"#\s*ifndef\s+(\S+)", ifndef)
    m2 = re.match(r"#\s*define\s+(\S+)", define)
    if not m1 or not m2:
        findings.append(Finding(
            path, i_ifndef, "header-guard",
            "first directives must be '#ifndef %s' / '#define'" % want))
        return
    if m1.group(1) != want:
        findings.append(Finding(
            path, i_ifndef, "header-guard",
            "guard is %s, expected %s" % (m1.group(1), want)))
    elif m2.group(1) != want:
        findings.append(Finding(
            path, i_define, "header-guard",
            "#define %s does not match guard %s"
            % (m2.group(1), want)))
    last = next((x for x in reversed(list(active_lines(lines)))
                 if x[1].strip()), None)
    if last and not re.match(r"#\s*endif\b", last[1].strip()):
        findings.append(Finding(
            path, last[0], "header-guard",
            "file must end with '#endif // %s'" % want))


def leading_includes(lines):
    """Collect the file's leading include block as (lineno, style,
    target, raw) tuples, grouped into blank-line-separated runs.

    Scanning starts after any initial comment and header guard and
    stops at the first line of real code (or conditional
    compilation), so sanitizer/feature-gated includes deeper in the
    file are exempt.
    """
    runs = []
    run = []
    in_block_comment = False
    seen_any = False
    for i, raw in enumerate(lines, start=1):
        line = raw.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block_comment = True
            continue
        if not line or line.startswith("//"):
            if run:
                runs.append(run)
                run = []
            continue
        m = INCLUDE_RE.match(raw)
        if m:
            run.append((i, m.group(1), m.group(2), raw))
            seen_any = True
            continue
        if re.match(r"#\s*(ifndef|define)\b", line) and not seen_any:
            continue
        break
    if run:
        runs.append(run)
    return runs


def check_include_order(path, lines, findings):
    runs = leading_includes(lines)
    if not runs:
        return

    flat = [inc for run in runs for inc in run]
    start = 0

    # A .cc file's first include must be its own header when a
    # sibling header of the same stem exists.
    if path.suffix in (".cc", ".cpp"):
        own = path.with_suffix(".hh")
        if own.exists():
            first = flat[0]
            target_stem = Path(first[2]).stem
            if first[1] != '"' or target_stem != path.stem:
                findings.append(Finding(
                    path, first[0], "include-order",
                    "first include must be the file's own header "
                    "\"%s\"" % own.name))
            else:
                # The primary header is its own group; drop it from
                # style/order consideration.
                if runs[0][0] is first:
                    if len(runs[0]) == 1:
                        runs = runs[1:]
                    else:
                        runs[0] = runs[0][1:]

    # Within each run: homogeneous style and sorted order. Across
    # runs: all <> runs before any "" run.
    seen_quote_run = False
    for run in runs:
        styles = {inc[1] for inc in run}
        if len(styles) > 1:
            findings.append(Finding(
                path, run[0][0], "include-order",
                "mixed <> and \"\" includes in one block; separate "
                "with a blank line"))
        targets = [inc[2] for inc in run]
        if targets != sorted(targets):
            findings.append(Finding(
                path, run[0][0], "include-order",
                "includes not alphabetically sorted within block"))
        if styles == {"<"}:
            if seen_quote_run:
                findings.append(Finding(
                    path, run[0][0], "include-order",
                    "<> system includes must precede \"\" project "
                    "includes"))
        elif styles == {'"'}:
            seen_quote_run = True


def check_naming(path, lines, findings):
    for i, line in active_lines(lines):
        m = CLASS_RE.match(line)
        if m:
            kind, name = m.group(1), m.group(2)
            # Skip macro-ish or documentation matches.
            if not CAMEL_RE.match(name):
                findings.append(Finding(
                    path, i, "naming",
                    "%s '%s' must be CamelCase (ClassName)"
                    % (kind.split()[0], name)))
        stripped = re.sub(r"//.*$", "", line)
        mp = M_PREFIX_RE.search(stripped)
        if mp and '"' not in stripped:
            findings.append(Finding(
                path, i, "naming",
                "'%s': members use a trailing underscore "
                "(memberVariable_), not an m_ prefix" % mp.group(0)))


def check_doxygen_class(path, lines, findings):
    """Namespace-scope classes/structs in headers need /** docs."""
    if path.suffix not in (".hh", ".h"):
        return
    for i, line in active_lines(lines):
        m = re.match(r"^(class|struct)\s+([A-Za-z_]\w*)", line)
        if not m:
            continue
        # Forward declarations are exempt.
        stripped = line.strip()
        if stripped.endswith(";") and "{" not in stripped:
            continue
        # Walk back over blank lines and template<> headers to find
        # the documentation block terminator.
        j = i - 2
        while j >= 0 and (not lines[j].strip() or
                          lines[j].strip().startswith("template")):
            j -= 1
        prev = lines[j].strip() if j >= 0 else ""
        if not (prev.endswith("*/") or prev.startswith("///")):
            findings.append(Finding(
                path, i, "doxygen-class",
                "public %s '%s' needs a /** ... */ Doxygen comment"
                % (m.group(1), m.group(2))))


def lint_file(path, repo_root):
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    if PragmaSet(PRAGMA_TAG, lines).skip_file:
        return []
    findings = []
    check_line_lengths(path, lines, findings)
    check_header_guard(path, lines, repo_root, findings)
    check_include_order(path, lines, findings)
    check_naming(path, lines, findings)
    check_doxygen_class(path, lines, findings)
    return findings


def main(argv):
    parser = argparse.ArgumentParser(
        description="gem5-style linter for the pciesim tree")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent

    all_findings = []
    nfiles = 0
    try:
        for f in iter_files(args.paths):
            nfiles += 1
            all_findings.extend(lint_file(f, repo_root))
    except FileNotFoundError as e:
        print("gem5_lint: no such path: %s" % e, file=sys.stderr)
        return 2

    if not args.quiet:
        for finding in all_findings:
            print(finding)
    print("gem5_lint: %d file(s), %d finding(s)"
          % (nfiles, len(all_findings)))
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
