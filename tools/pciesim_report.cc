/**
 * @file
 * Offline reporting CLI over the simulator's machine-readable
 * artefacts (DESIGN.md Sec. 9):
 *
 *   pciesim-report diff A.json B.json [--threshold=0.05] [--all]
 *       Compare two pciesim-stats dumps stat by stat. Relative
 *       changes above the threshold are flagged and make the exit
 *       status nonzero, so CI can gate on "this change moved the
 *       stats". Identical dumps exit 0.
 *
 *   pciesim-report top stats.json [--top=N]
 *       Print the host-side profiler hot-spot table embedded in a
 *       stats.json dump (present when the run had --profile).
 *
 *   pciesim-report trajectory BENCH_*.json... [--field=NAME]
 *       Render one-object-per-line bench records (the perf
 *       trajectory convention) as an aligned table.
 *
 *   pciesim-report scaling BENCH_*.json...
 *       Tabulate a --threads sweep (events/sec, speedup, sync
 *       fraction per thread count) and diagnose where lost
 *       speedup went (DESIGN.md Sec. 14).
 *
 *   pciesim-report imbalance stats.json [--top=N]
 *       Rank the hottest and most starved link domains from the
 *       system.parallel.* flight-recorder block of a stats dump.
 *
 * Self-contained: a small recursive-descent JSON reader, no
 * dependency on the simulator library, so the tool keeps working on
 * dumps from any build (or from a wholly different machine).
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace
{

//
// Minimal JSON document model + parser.
//

struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> arr;
    /** Insertion-ordered; stats dumps are name-sorted already. */
    std::vector<std::pair<std::string, Value>> obj;

    const Value *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }

    double
    numberOr(const std::string &key, double fallback) const
    {
        const Value *v = find(key);
        return (v && v->type == Type::Number) ? v->number : fallback;
    }

    std::string
    stringOr(const std::string &key,
             const std::string &fallback) const
    {
        const Value *v = find(key);
        return (v && v->type == Type::String) ? v->str : fallback;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(Value &out, std::string &error)
    {
        pos_ = 0;
        if (!parseValue(out, error))
            return false;
        skipSpace();
        if (pos_ != text_.size()) {
            error = "trailing characters at offset " +
                    std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    bool
    fail(std::string &error, const std::string &what)
    {
        error = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseLiteral(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    bool
    parseValue(Value &out, std::string &error)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail(error, "unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out, error);
        if (c == '[')
            return parseArray(out, error);
        if (c == '"') {
            out.type = Value::Type::String;
            return parseString(out.str, error);
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out, error);
        if (parseLiteral("true")) {
            out.type = Value::Type::Bool;
            out.boolean = true;
            return true;
        }
        if (parseLiteral("false")) {
            out.type = Value::Type::Bool;
            out.boolean = false;
            return true;
        }
        if (parseLiteral("null")) {
            out.type = Value::Type::Null;
            return true;
        }
        return fail(error, "unexpected character");
    }

    bool
    parseObject(Value &out, std::string &error)
    {
        out.type = Value::Type::Object;
        ++pos_; // '{'
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail(error, "expected object key");
            std::string key;
            if (!parseString(key, error))
                return false;
            if (!consume(':'))
                return fail(error, "expected ':'");
            Value v;
            if (!parseValue(v, error))
                return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail(error, "expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out, std::string &error)
    {
        out.type = Value::Type::Array;
        ++pos_; // '['
        if (consume(']'))
            return true;
        while (true) {
            Value v;
            if (!parseValue(v, error))
                return false;
            out.arr.push_back(std::move(v));
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail(error, "expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out, std::string &error)
    {
        ++pos_; // '"'
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_]))) {
                            return fail(error, "bad \\u escape");
                        }
                        code = code * 16 +
                               static_cast<unsigned>(std::stoul(
                                   std::string(1, text_[pos_]),
                                   nullptr, 16));
                    }
                    // Sim output is ASCII; fold to '?' otherwise.
                    out += code < 0x80 ? static_cast<char>(code)
                                       : '?';
                    break;
                  }
                  default:
                    return fail(error, "bad escape");
                }
                ++pos_;
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail(error, "unterminated string");
    }

    bool
    parseNumber(Value &out, std::string &error)
    {
        std::size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t before = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            return pos_ > before;
        };
        if (!digits())
            return fail(error, "bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return fail(error, "bad fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return fail(error, "bad exponent");
        }
        out.type = Value::Type::Number;
        out.number =
            std::strtod(text_.substr(start, pos_ - start).c_str(),
                        nullptr);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "pciesim-report: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
loadStatsDump(const std::string &path, Value &out)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    std::string error;
    Parser parser(text);
    if (!parser.parse(out, error)) {
        std::fprintf(stderr, "pciesim-report: %s: %s\n",
                     path.c_str(), error.c_str());
        return false;
    }
    if (out.stringOr("schema", "") != "pciesim-stats") {
        std::fprintf(stderr,
                     "pciesim-report: %s: not a pciesim-stats "
                     "dump (schema mismatch)\n",
                     path.c_str());
        return false;
    }
    return true;
}

//
// diff
//

/**
 * Reduce one stat record to the single number the diff compares:
 * the value for counters/scalars/formulas, the total for vectors,
 * and the mean for distributions/histograms.
 */
double
headline(const Value &stat)
{
    const std::string type = stat.stringOr("type", "");
    if (type == "vector")
        return stat.numberOr("total", 0.0);
    if (type == "distribution" || type == "histogram")
        return stat.numberOr("mean", 0.0);
    return stat.numberOr("value", 0.0);
}

/** Relative change from @p a to @p b; infinity when only one side
 *  is zero (a stat appearing or vanishing entirely). */
double
relDelta(double a, double b)
{
    if (a == b)
        return 0.0;
    if (a == 0.0)
        return HUGE_VAL;
    return (b - a) / std::fabs(a);
}

int
cmdDiff(const std::vector<std::string> &args)
{
    double threshold = 0.05;
    bool show_all = false;
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (a.rfind("--threshold=", 0) == 0)
            threshold = std::strtod(a.c_str() + 12, nullptr);
        else if (a == "--all")
            show_all = true;
        else
            paths.push_back(a);
    }
    if (paths.size() != 2) {
        std::fprintf(stderr, "usage: pciesim-report diff A.json "
                             "B.json [--threshold=F] [--all]\n");
        return 2;
    }

    Value a, b;
    if (!loadStatsDump(paths[0], a) || !loadStatsDump(paths[1], b))
        return 2;

    std::map<std::string, double> va, vb;
    auto collect = [](const Value &dump,
                      std::map<std::string, double> &out) {
        const Value *stats = dump.find("stats");
        if (!stats)
            return;
        for (const Value &s : stats->arr)
            out[s.stringOr("name", "?")] = headline(s);
    };
    collect(a, va);
    collect(b, vb);

    struct Row
    {
        std::string name;
        double a, b, rel;
        bool flagged;
    };
    std::vector<Row> rows;
    std::set<std::string> names;
    for (const auto &[n, v] : va)
        names.insert(n);
    for (const auto &[n, v] : vb)
        names.insert(n);

    int flagged = 0;
    for (const std::string &n : names) {
        auto ia = va.find(n);
        auto ib = vb.find(n);
        if (ia == va.end() || ib == vb.end()) {
            std::printf("! %-52s %s\n", n.c_str(),
                        ia == va.end() ? "only in B" : "only in A");
            ++flagged;
            continue;
        }
        double rel = relDelta(ia->second, ib->second);
        bool flag = std::fabs(rel) > threshold;
        if (flag)
            ++flagged;
        if (flag || show_all)
            rows.push_back({n, ia->second, ib->second, rel, flag});
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &x, const Row &y) {
                  if (std::fabs(x.rel) != std::fabs(y.rel))
                      return std::fabs(x.rel) > std::fabs(y.rel);
                  return x.name < y.name;
              });
    for (const Row &r : rows) {
        char pct[32];
        if (std::isinf(r.rel))
            std::snprintf(pct, sizeof(pct), "new/gone");
        else
            std::snprintf(pct, sizeof(pct), "%+8.2f%%",
                          r.rel * 100.0);
        std::printf("%c %-52s %14g -> %14g  %s\n",
                    r.flagged ? '!' : ' ', r.name.c_str(), r.a, r.b,
                    pct);
    }
    std::printf("%d of %zu stats changed by more than %.1f%%\n",
                flagged, names.size(), threshold * 100.0);
    return flagged ? 1 : 0;
}

//
// top
//

int
cmdTop(const std::vector<std::string> &args)
{
    std::size_t top_n = 10;
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (a.rfind("--top=", 0) == 0)
            top_n = std::strtoul(a.c_str() + 6, nullptr, 10);
        else
            paths.push_back(a);
    }
    if (paths.size() != 1) {
        std::fprintf(stderr, "usage: pciesim-report top "
                             "stats.json [--top=N]\n");
        return 2;
    }

    Value dump;
    if (!loadStatsDump(paths[0], dump))
        return 2;
    const Value *prof = dump.find("profiler");
    if (!prof || prof->type != Value::Type::Array) {
        std::fprintf(stderr,
                     "pciesim-report: %s has no profiler section "
                     "(run with profiling enabled)\n",
                     paths[0].c_str());
        return 1;
    }

    std::printf("%4s %12s %12s %10s  %s\n", "#", "events", "est_ms",
                "avg_ns", "event");
    std::size_t rank = 0;
    double total_ms = 0.0;
    for (const Value &spot : prof->arr) {
        double count = spot.numberOr("count", 0.0);
        double est_ms = spot.numberOr("estMs", 0.0);
        total_ms += est_ms;
        if (rank >= top_n)
            continue;
        ++rank;
        double avg_ns =
            count > 0.0 ? est_ms * 1e6 / count : 0.0;
        std::printf("%4zu %12.0f %12.3f %10.1f  %s\n", rank, count,
                    est_ms, avg_ns,
                    spot.stringOr("name", "?").c_str());
    }
    std::printf("%zu event types, %.3f ms attributed\n",
                prof->arr.size(), total_ms);
    return 0;
}

//
// trajectory
//

int
cmdTrajectory(const std::vector<std::string> &args)
{
    std::string only_field;
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (a.rfind("--field=", 0) == 0)
            only_field = a.substr(8);
        else
            paths.push_back(a);
    }
    if (paths.empty()) {
        std::fprintf(stderr, "usage: pciesim-report trajectory "
                             "BENCH_*.json... [--field=NAME]\n");
        return 2;
    }

    int status = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr,
                         "pciesim-report: cannot open %s\n",
                         path.c_str());
            status = 2;
            continue;
        }
        std::printf("== %s ==\n", path.c_str());
        std::string line;
        std::size_t records = 0;
        // Thread-sweep records (bench_kernel mdev16/tN) summarize
        // into one scaling line after the per-record rows.
        std::vector<std::pair<double, double>> sweep;
        while (std::getline(in, line)) {
            if (line.find_first_not_of(" \t\r") ==
                std::string::npos)
                continue;
            Value rec;
            std::string error;
            Parser parser(line);
            if (!parser.parse(rec, error)) {
                std::fprintf(stderr,
                             "pciesim-report: %s: %s\n",
                             path.c_str(), error.c_str());
                status = 2;
                break;
            }
            ++records;
            const Value *thr = rec.find("threads");
            const Value *spd = rec.find("speedup_vs_1t");
            if (thr != nullptr && spd != nullptr &&
                thr->type == Value::Type::Number &&
                spd->type == Value::Type::Number)
                sweep.emplace_back(thr->number, spd->number);
            std::printf("%-10s %-12s",
                        rec.stringOr("bench", "?").c_str(),
                        rec.stringOr("config", "?").c_str());
            for (const auto &[key, v] : rec.obj) {
                if (v.type != Value::Type::Number)
                    continue;
                if (!only_field.empty() && key != only_field)
                    continue;
                std::printf("  %s=%g", key.c_str(), v.number);
            }
            std::printf("\n");
        }
        if (!sweep.empty() &&
            (only_field.empty() || only_field == "speedup_vs_1t")) {
            std::printf("parallel scaling:");
            for (const auto &[threads, speedup] : sweep)
                std::printf("  %gt=%.2fx", threads, speedup);
            std::printf("\n");
        }
        if (records == 0) {
            std::fprintf(stderr,
                         "pciesim-report: %s: no records\n",
                         path.c_str());
            status = status ? status : 1;
        }
    }
    return status;
}

//
// scaling
//

/** Strip a "/t<N>" thread-count suffix so a sweep's records group
 *  under one configuration name. */
std::string
sweepKey(const std::string &config)
{
    std::size_t slash = config.rfind("/t");
    if (slash == std::string::npos)
        return config;
    std::size_t digits = slash + 2;
    if (digits >= config.size())
        return config;
    for (std::size_t i = digits; i < config.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(config[i])))
            return config;
    }
    return config.substr(0, slash);
}

int
cmdScaling(const std::vector<std::string> &args)
{
    std::vector<std::string> paths;
    for (const std::string &a : args)
        paths.push_back(a);
    if (paths.empty()) {
        std::fprintf(stderr, "usage: pciesim-report scaling "
                             "BENCH_*.json...\n");
        return 2;
    }

    struct Point
    {
        double threads;
        double eps;       //!< events per second
        double sync;      //!< sync overhead fraction (-1: absent)
        double imbalance; //!< load imbalance (-1: absent)
    };
    // Group (bench, config-without-/tN) -> thread sweep points,
    // in file order.
    std::vector<std::pair<std::string, std::vector<Point>>> groups;
    int status = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr,
                         "pciesim-report: cannot open %s\n",
                         path.c_str());
            status = 2;
            continue;
        }
        std::string line;
        while (std::getline(in, line)) {
            if (line.find_first_not_of(" \t\r") ==
                std::string::npos)
                continue;
            Value rec;
            std::string error;
            Parser parser(line);
            if (!parser.parse(rec, error)) {
                std::fprintf(stderr, "pciesim-report: %s: %s\n",
                             path.c_str(), error.c_str());
                status = 2;
                break;
            }
            const Value *thr = rec.find("threads");
            if (thr == nullptr || thr->type != Value::Type::Number)
                continue; // not a thread-sweep record
            if (thr->number < 1.0)
                continue; // single-queue run, not part of a sweep
            std::string key = rec.stringOr("bench", "?") + " " +
                              sweepKey(rec.stringOr("config", "?"));
            Point p;
            p.threads = thr->number;
            p.eps = rec.numberOr("events_per_sec", 0.0);
            p.sync = rec.numberOr("sync_fraction", -1.0);
            p.imbalance = rec.numberOr("load_imbalance", -1.0);
            auto it = std::find_if(
                groups.begin(), groups.end(),
                [&](const auto &g) { return g.first == key; });
            if (it == groups.end()) {
                groups.push_back({key, {}});
                it = groups.end() - 1;
            }
            it->second.push_back(p);
        }
    }
    if (groups.empty()) {
        std::fprintf(stderr,
                     "pciesim-report: no thread-sweep records "
                     "(need a 'threads' field; run the bench with "
                     "--json across --threads values)\n");
        return status ? status : 1;
    }

    for (auto &[key, pts] : groups) {
        std::sort(pts.begin(), pts.end(),
                  [](const Point &a, const Point &b) {
                      return a.threads < b.threads;
                  });
        double base = 0.0;
        for (const Point &p : pts)
            if (p.threads == 1.0)
                base = p.eps;
        if (base == 0.0 && !pts.empty())
            base = pts.front().eps;
        std::printf("== %s ==\n", key.c_str());
        std::printf("%8s %14s %9s %11s %10s %11s\n", "threads",
                    "events/sec", "speedup", "efficiency",
                    "sync_frac", "imbalance");
        double worst_sync = -1.0;
        for (const Point &p : pts) {
            double speedup = base > 0.0 ? p.eps / base : 0.0;
            double eff =
                p.threads > 0.0 ? speedup / p.threads : 0.0;
            char sync[16] = "-";
            if (p.sync >= 0.0) {
                std::snprintf(sync, sizeof(sync), "%.3f", p.sync);
                worst_sync = std::max(worst_sync, p.sync);
            }
            char imb[16] = "-";
            if (p.imbalance >= 0.0)
                std::snprintf(imb, sizeof(imb), "%.2f",
                              p.imbalance);
            std::printf("%8g %14.3g %8.2fx %10.1f%% %10s %11s\n",
                        p.threads, p.eps, speedup, eff * 100.0,
                        sync, imb);
        }
        // One-line diagnosis: where did the lost speedup go?
        const Point &last = pts.back();
        double speedup = base > 0.0 ? last.eps / base : 0.0;
        double eff = last.threads > 0.0 ? speedup / last.threads
                                        : 0.0;
        if (pts.size() < 2) {
            std::printf("verdict: single point; rerun across "
                        "--threads values for a sweep\n");
        } else if (eff >= 0.7) {
            std::printf("verdict: scaling healthy "
                        "(%.0f%% efficient at %g threads)\n",
                        eff * 100.0, last.threads);
        } else if (worst_sync >= 0.3) {
            std::printf("verdict: synchronization-bound (%.0f%% of "
                        "wall time at barriers); grow the quantum "
                        "or fuse chatty domains\n",
                        worst_sync * 100.0);
        } else if (last.imbalance >= 2.0) {
            std::printf("verdict: load-imbalanced (hottest domain "
                        "%.1fx the mean); see pciesim-report "
                        "imbalance for the partition map\n",
                        last.imbalance);
        } else {
            std::printf("verdict: %.0f%% efficient at %g threads; "
                        "check imbalance and sync_frac with "
                        "--profile telemetry\n",
                        eff * 100.0, last.threads);
        }
    }
    return status;
}

//
// imbalance
//

/** Find one stat record by name in a stats dump; null if absent. */
const Value *
findStat(const Value &dump, const std::string &name)
{
    const Value *stats = dump.find("stats");
    if (!stats)
        return nullptr;
    for (const Value &s : stats->arr)
        if (s.stringOr("name", "") == name)
            return &s;
    return nullptr;
}

double
statValue(const Value &dump, const std::string &name)
{
    const Value *s = findStat(dump, name);
    return s ? headline(*s) : 0.0;
}

int
cmdImbalance(const std::vector<std::string> &args)
{
    std::size_t top_n = 5;
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (a.rfind("--top=", 0) == 0)
            top_n = std::strtoul(a.c_str() + 6, nullptr, 10);
        else
            paths.push_back(a);
    }
    if (paths.size() != 1) {
        std::fprintf(stderr, "usage: pciesim-report imbalance "
                             "stats.json [--top=N]\n");
        return 2;
    }

    Value dump;
    if (!loadStatsDump(paths[0], dump))
        return 2;
    const Value *events =
        findStat(dump, "system.parallel.domainEvents");
    if (events == nullptr) {
        std::fprintf(stderr,
                     "pciesim-report: %s has no parallel telemetry "
                     "(system.parallel.*); run with --threads >= 1 "
                     "on a partitionable fabric, in a profiling "
                     "build\n",
                     paths[0].c_str());
        return 1;
    }

    // Pull the per-domain vectors apart; they share subname order.
    const Value *subnames = events->find("subnames");
    const Value *values = events->find("values");
    if (subnames == nullptr || values == nullptr ||
        subnames->arr.size() != values->arr.size()) {
        std::fprintf(stderr,
                     "pciesim-report: %s: malformed domainEvents "
                     "vector\n",
                     paths[0].c_str());
        return 2;
    }
    auto vecValues = [&](const char *name) {
        std::vector<double> out(values->arr.size(), 0.0);
        const Value *s = findStat(dump, name);
        const Value *v = s ? s->find("values") : nullptr;
        if (v == nullptr || v->arr.size() != out.size())
            return out;
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = v->arr[i].number;
        return out;
    };
    std::vector<double> ev(values->arr.size());
    for (std::size_t i = 0; i < ev.size(); ++i)
        ev[i] = values->arr[i].number;
    std::vector<double> active =
        vecValues("system.parallel.domainActiveWindows");
    std::vector<double> stalls =
        vecValues("system.parallel.domainStallWindows");
    std::vector<double> sent =
        vecValues("system.parallel.mailboxSent");
    std::vector<double> recv =
        vecValues("system.parallel.mailboxReceived");

    double total = 0.0;
    for (double e : ev)
        total += e;
    const double mean =
        ev.empty() ? 0.0 : total / static_cast<double>(ev.size());
    std::printf("domains: %zu   windows: %g   events: %g   "
                "quantum: %g ticks\n",
                ev.size(), statValue(dump, "system.parallel.windows"),
                total,
                statValue(dump, "system.parallel.quantumTicks"));
    std::printf("load imbalance (max/mean events): %.2f   "
                "mailbox ops/window: %.3f\n",
                statValue(dump, "system.parallel.loadImbalance"),
                statValue(dump,
                          "system.parallel.mailboxIntensity"));
    double sync =
        statValue(dump, "system.parallel.syncOverheadFraction");
    if (sync > 0.0)
        std::printf("sync overhead fraction: %.3f\n", sync);

    std::vector<std::size_t> order(ev.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    auto row = [&](std::size_t i) {
        std::printf("  %-20s %12.0f %7.1f%% %9.0f %9.0f %9.0f "
                    "%9.0f\n",
                    subnames->arr[i].str.c_str(), ev[i],
                    total > 0.0 ? ev[i] / total * 100.0 : 0.0,
                    active[i], stalls[i], sent[i], recv[i]);
    };
    std::printf("hottest domains (of mean %.0f events):\n", mean);
    std::printf("  %-20s %12s %8s %9s %9s %9s %9s\n", "domain",
                "events", "share", "active", "stalled", "mailTx",
                "mailRx");
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (ev[a] != ev[b])
                      return ev[a] > ev[b];
                  return a < b;
              });
    for (std::size_t i = 0; i < order.size() && i < top_n; ++i)
        row(order[i]);

    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (stalls[a] != stalls[b])
                      return stalls[a] > stalls[b];
                  return a < b;
              });
    if (!order.empty() && stalls[order[0]] > 0.0) {
        std::printf("most starved (lookahead-limited windows):\n");
        for (std::size_t i = 0; i < order.size() && i < top_n; ++i) {
            if (stalls[order[i]] == 0.0)
                break;
            row(order[i]);
        }
    }
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: pciesim-report <command> [args]\n"
        "  diff A.json B.json [--threshold=F] [--all]\n"
        "      compare two stats.json dumps; nonzero exit when any\n"
        "      stat moved more than the threshold (default 0.05)\n"
        "  top stats.json [--top=N]\n"
        "      print the embedded profiler hot-spot table\n"
        "  trajectory BENCH_*.json... [--field=NAME]\n"
        "      render one-object-per-line bench records\n"
        "  scaling BENCH_*.json...\n"
        "      tabulate a --threads sweep (events/sec, speedup,\n"
        "      sync fraction) and diagnose lost parallel speedup\n"
        "  imbalance stats.json [--top=N]\n"
        "      rank the hottest / most starved link domains from\n"
        "      the system.parallel.* telemetry in a stats dump\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "diff")
        return cmdDiff(args);
    if (cmd == "top")
        return cmdTop(args);
    if (cmd == "trajectory")
        return cmdTrajectory(args);
    if (cmd == "scaling")
        return cmdScaling(args);
    if (cmd == "imbalance")
        return cmdImbalance(args);
    return usage();
}
