/**
 * @file
 * Offline reporting CLI over the simulator's machine-readable
 * artefacts (DESIGN.md Sec. 9):
 *
 *   pciesim-report diff A.json B.json [--threshold=0.05] [--all]
 *       Compare two pciesim-stats dumps stat by stat. Relative
 *       changes above the threshold are flagged and make the exit
 *       status nonzero, so CI can gate on "this change moved the
 *       stats". Identical dumps exit 0.
 *
 *   pciesim-report top stats.json [--top=N]
 *       Print the host-side profiler hot-spot table embedded in a
 *       stats.json dump (present when the run had --profile).
 *
 *   pciesim-report trajectory BENCH_*.json... [--field=NAME]
 *       Render one-object-per-line bench records (the perf
 *       trajectory convention) as an aligned table.
 *
 * Self-contained: a small recursive-descent JSON reader, no
 * dependency on the simulator library, so the tool keeps working on
 * dumps from any build (or from a wholly different machine).
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace
{

//
// Minimal JSON document model + parser.
//

struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> arr;
    /** Insertion-ordered; stats dumps are name-sorted already. */
    std::vector<std::pair<std::string, Value>> obj;

    const Value *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }

    double
    numberOr(const std::string &key, double fallback) const
    {
        const Value *v = find(key);
        return (v && v->type == Type::Number) ? v->number : fallback;
    }

    std::string
    stringOr(const std::string &key,
             const std::string &fallback) const
    {
        const Value *v = find(key);
        return (v && v->type == Type::String) ? v->str : fallback;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(Value &out, std::string &error)
    {
        pos_ = 0;
        if (!parseValue(out, error))
            return false;
        skipSpace();
        if (pos_ != text_.size()) {
            error = "trailing characters at offset " +
                    std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    bool
    fail(std::string &error, const std::string &what)
    {
        error = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseLiteral(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    bool
    parseValue(Value &out, std::string &error)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail(error, "unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out, error);
        if (c == '[')
            return parseArray(out, error);
        if (c == '"') {
            out.type = Value::Type::String;
            return parseString(out.str, error);
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out, error);
        if (parseLiteral("true")) {
            out.type = Value::Type::Bool;
            out.boolean = true;
            return true;
        }
        if (parseLiteral("false")) {
            out.type = Value::Type::Bool;
            out.boolean = false;
            return true;
        }
        if (parseLiteral("null")) {
            out.type = Value::Type::Null;
            return true;
        }
        return fail(error, "unexpected character");
    }

    bool
    parseObject(Value &out, std::string &error)
    {
        out.type = Value::Type::Object;
        ++pos_; // '{'
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail(error, "expected object key");
            std::string key;
            if (!parseString(key, error))
                return false;
            if (!consume(':'))
                return fail(error, "expected ':'");
            Value v;
            if (!parseValue(v, error))
                return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail(error, "expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out, std::string &error)
    {
        out.type = Value::Type::Array;
        ++pos_; // '['
        if (consume(']'))
            return true;
        while (true) {
            Value v;
            if (!parseValue(v, error))
                return false;
            out.arr.push_back(std::move(v));
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail(error, "expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out, std::string &error)
    {
        ++pos_; // '"'
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_]))) {
                            return fail(error, "bad \\u escape");
                        }
                        code = code * 16 +
                               static_cast<unsigned>(std::stoul(
                                   std::string(1, text_[pos_]),
                                   nullptr, 16));
                    }
                    // Sim output is ASCII; fold to '?' otherwise.
                    out += code < 0x80 ? static_cast<char>(code)
                                       : '?';
                    break;
                  }
                  default:
                    return fail(error, "bad escape");
                }
                ++pos_;
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail(error, "unterminated string");
    }

    bool
    parseNumber(Value &out, std::string &error)
    {
        std::size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t before = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            return pos_ > before;
        };
        if (!digits())
            return fail(error, "bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return fail(error, "bad fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return fail(error, "bad exponent");
        }
        out.type = Value::Type::Number;
        out.number =
            std::strtod(text_.substr(start, pos_ - start).c_str(),
                        nullptr);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "pciesim-report: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
loadStatsDump(const std::string &path, Value &out)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    std::string error;
    Parser parser(text);
    if (!parser.parse(out, error)) {
        std::fprintf(stderr, "pciesim-report: %s: %s\n",
                     path.c_str(), error.c_str());
        return false;
    }
    if (out.stringOr("schema", "") != "pciesim-stats") {
        std::fprintf(stderr,
                     "pciesim-report: %s: not a pciesim-stats "
                     "dump (schema mismatch)\n",
                     path.c_str());
        return false;
    }
    return true;
}

//
// diff
//

/**
 * Reduce one stat record to the single number the diff compares:
 * the value for counters/scalars/formulas, the total for vectors,
 * and the mean for distributions/histograms.
 */
double
headline(const Value &stat)
{
    const std::string type = stat.stringOr("type", "");
    if (type == "vector")
        return stat.numberOr("total", 0.0);
    if (type == "distribution" || type == "histogram")
        return stat.numberOr("mean", 0.0);
    return stat.numberOr("value", 0.0);
}

/** Relative change from @p a to @p b; infinity when only one side
 *  is zero (a stat appearing or vanishing entirely). */
double
relDelta(double a, double b)
{
    if (a == b)
        return 0.0;
    if (a == 0.0)
        return HUGE_VAL;
    return (b - a) / std::fabs(a);
}

int
cmdDiff(const std::vector<std::string> &args)
{
    double threshold = 0.05;
    bool show_all = false;
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (a.rfind("--threshold=", 0) == 0)
            threshold = std::strtod(a.c_str() + 12, nullptr);
        else if (a == "--all")
            show_all = true;
        else
            paths.push_back(a);
    }
    if (paths.size() != 2) {
        std::fprintf(stderr, "usage: pciesim-report diff A.json "
                             "B.json [--threshold=F] [--all]\n");
        return 2;
    }

    Value a, b;
    if (!loadStatsDump(paths[0], a) || !loadStatsDump(paths[1], b))
        return 2;

    std::map<std::string, double> va, vb;
    auto collect = [](const Value &dump,
                      std::map<std::string, double> &out) {
        const Value *stats = dump.find("stats");
        if (!stats)
            return;
        for (const Value &s : stats->arr)
            out[s.stringOr("name", "?")] = headline(s);
    };
    collect(a, va);
    collect(b, vb);

    struct Row
    {
        std::string name;
        double a, b, rel;
        bool flagged;
    };
    std::vector<Row> rows;
    std::set<std::string> names;
    for (const auto &[n, v] : va)
        names.insert(n);
    for (const auto &[n, v] : vb)
        names.insert(n);

    int flagged = 0;
    for (const std::string &n : names) {
        auto ia = va.find(n);
        auto ib = vb.find(n);
        if (ia == va.end() || ib == vb.end()) {
            std::printf("! %-52s %s\n", n.c_str(),
                        ia == va.end() ? "only in B" : "only in A");
            ++flagged;
            continue;
        }
        double rel = relDelta(ia->second, ib->second);
        bool flag = std::fabs(rel) > threshold;
        if (flag)
            ++flagged;
        if (flag || show_all)
            rows.push_back({n, ia->second, ib->second, rel, flag});
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &x, const Row &y) {
                  if (std::fabs(x.rel) != std::fabs(y.rel))
                      return std::fabs(x.rel) > std::fabs(y.rel);
                  return x.name < y.name;
              });
    for (const Row &r : rows) {
        char pct[32];
        if (std::isinf(r.rel))
            std::snprintf(pct, sizeof(pct), "new/gone");
        else
            std::snprintf(pct, sizeof(pct), "%+8.2f%%",
                          r.rel * 100.0);
        std::printf("%c %-52s %14g -> %14g  %s\n",
                    r.flagged ? '!' : ' ', r.name.c_str(), r.a, r.b,
                    pct);
    }
    std::printf("%d of %zu stats changed by more than %.1f%%\n",
                flagged, names.size(), threshold * 100.0);
    return flagged ? 1 : 0;
}

//
// top
//

int
cmdTop(const std::vector<std::string> &args)
{
    std::size_t top_n = 10;
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (a.rfind("--top=", 0) == 0)
            top_n = std::strtoul(a.c_str() + 6, nullptr, 10);
        else
            paths.push_back(a);
    }
    if (paths.size() != 1) {
        std::fprintf(stderr, "usage: pciesim-report top "
                             "stats.json [--top=N]\n");
        return 2;
    }

    Value dump;
    if (!loadStatsDump(paths[0], dump))
        return 2;
    const Value *prof = dump.find("profiler");
    if (!prof || prof->type != Value::Type::Array) {
        std::fprintf(stderr,
                     "pciesim-report: %s has no profiler section "
                     "(run with profiling enabled)\n",
                     paths[0].c_str());
        return 1;
    }

    std::printf("%4s %12s %12s %10s  %s\n", "#", "events", "est_ms",
                "avg_ns", "event");
    std::size_t rank = 0;
    double total_ms = 0.0;
    for (const Value &spot : prof->arr) {
        double count = spot.numberOr("count", 0.0);
        double est_ms = spot.numberOr("estMs", 0.0);
        total_ms += est_ms;
        if (rank >= top_n)
            continue;
        ++rank;
        double avg_ns =
            count > 0.0 ? est_ms * 1e6 / count : 0.0;
        std::printf("%4zu %12.0f %12.3f %10.1f  %s\n", rank, count,
                    est_ms, avg_ns,
                    spot.stringOr("name", "?").c_str());
    }
    std::printf("%zu event types, %.3f ms attributed\n",
                prof->arr.size(), total_ms);
    return 0;
}

//
// trajectory
//

int
cmdTrajectory(const std::vector<std::string> &args)
{
    std::string only_field;
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (a.rfind("--field=", 0) == 0)
            only_field = a.substr(8);
        else
            paths.push_back(a);
    }
    if (paths.empty()) {
        std::fprintf(stderr, "usage: pciesim-report trajectory "
                             "BENCH_*.json... [--field=NAME]\n");
        return 2;
    }

    int status = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr,
                         "pciesim-report: cannot open %s\n",
                         path.c_str());
            status = 2;
            continue;
        }
        std::printf("== %s ==\n", path.c_str());
        std::string line;
        std::size_t records = 0;
        // Thread-sweep records (bench_kernel mdev16/tN) summarize
        // into one scaling line after the per-record rows.
        std::vector<std::pair<double, double>> sweep;
        while (std::getline(in, line)) {
            if (line.find_first_not_of(" \t\r") ==
                std::string::npos)
                continue;
            Value rec;
            std::string error;
            Parser parser(line);
            if (!parser.parse(rec, error)) {
                std::fprintf(stderr,
                             "pciesim-report: %s: %s\n",
                             path.c_str(), error.c_str());
                status = 2;
                break;
            }
            ++records;
            const Value *thr = rec.find("threads");
            const Value *spd = rec.find("speedup_vs_1t");
            if (thr != nullptr && spd != nullptr &&
                thr->type == Value::Type::Number &&
                spd->type == Value::Type::Number)
                sweep.emplace_back(thr->number, spd->number);
            std::printf("%-10s %-12s",
                        rec.stringOr("bench", "?").c_str(),
                        rec.stringOr("config", "?").c_str());
            for (const auto &[key, v] : rec.obj) {
                if (v.type != Value::Type::Number)
                    continue;
                if (!only_field.empty() && key != only_field)
                    continue;
                std::printf("  %s=%g", key.c_str(), v.number);
            }
            std::printf("\n");
        }
        if (!sweep.empty() &&
            (only_field.empty() || only_field == "speedup_vs_1t")) {
            std::printf("parallel scaling:");
            for (const auto &[threads, speedup] : sweep)
                std::printf("  %gt=%.2fx", threads, speedup);
            std::printf("\n");
        }
        if (records == 0) {
            std::fprintf(stderr,
                         "pciesim-report: %s: no records\n",
                         path.c_str());
            status = status ? status : 1;
        }
    }
    return status;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: pciesim-report <command> [args]\n"
        "  diff A.json B.json [--threshold=F] [--all]\n"
        "      compare two stats.json dumps; nonzero exit when any\n"
        "      stat moved more than the threshold (default 0.05)\n"
        "  top stats.json [--top=N]\n"
        "      print the embedded profiler hot-spot table\n"
        "  trajectory BENCH_*.json... [--field=NAME]\n"
        "      render one-object-per-line bench records\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "diff")
        return cmdDiff(args);
    if (cmd == "top")
        return cmdTop(args);
    if (cmd == "trajectory")
        return cmdTrajectory(args);
    return usage();
}
