#!/usr/bin/env python3
"""Golden-file test driver for tools/pciesim_analyze.py.

Each directory under tests/analyze_fixtures/ is one case: a
miniature src/ tree seeded with (at most) one rule violation, the
analyzer's expected stdout in expected.txt, optionally a
baseline.json to pass via --baseline and an expected_stderr.txt
(exact match) for ratchet warnings.

The expected exit code is derived from the golden itself: 1 when
expected.txt contains finding lines, 0 when only the summary line.

Usage: analyze_fixtures_test.py [CASE ...]   (default: all cases)
Exits 0 when every case matches, 1 otherwise.
"""

import re
import subprocess
import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TOOLS_DIR.parent
FIXTURES = REPO_ROOT / "tests" / "analyze_fixtures"
FINDING_RE = re.compile(r"^\S+:\d+: \[[a-z-]+\]")


def run_case(case):
    cmd = [sys.executable, str(TOOLS_DIR / "pciesim_analyze.py"),
           "--tree", "src"]
    if (case / "baseline.json").exists():
        cmd += ["--baseline", "baseline.json"]
    proc = subprocess.run(cmd, cwd=case, capture_output=True,
                          text=True)

    errors = []
    expected = (case / "expected.txt").read_text()
    want_rc = 1 if any(FINDING_RE.match(l)
                       for l in expected.splitlines()) else 0
    if proc.stdout != expected:
        errors.append("stdout mismatch:\n--- expected ---\n%s"
                      "--- actual ---\n%s" % (expected, proc.stdout))
    if proc.returncode != want_rc:
        errors.append("exit code %d, expected %d"
                      % (proc.returncode, want_rc))
    stderr_golden = case / "expected_stderr.txt"
    if stderr_golden.exists():
        want_err = stderr_golden.read_text()
        if proc.stderr != want_err:
            errors.append("stderr mismatch:\n--- expected ---\n%s"
                          "--- actual ---\n%s"
                          % (want_err, proc.stderr))
    return errors


def main(argv):
    if argv:
        cases = [FIXTURES / name for name in argv]
    else:
        cases = sorted(p for p in FIXTURES.iterdir() if p.is_dir())
    if not cases:
        print("analyze_fixtures_test: no cases found under %s"
              % FIXTURES, file=sys.stderr)
        return 1

    failed = 0
    for case in cases:
        if not (case / "expected.txt").exists():
            print("FAIL %s: no expected.txt" % case.name)
            failed += 1
            continue
        errors = run_case(case)
        if errors:
            failed += 1
            print("FAIL %s" % case.name)
            for e in errors:
                print("  " + e.replace("\n", "\n  "))
        else:
            print("ok   %s" % case.name)
    print("analyze_fixtures_test: %d case(s), %d failure(s)"
          % (len(cases), failed))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
