"""Shared infrastructure for the pciesim source-checking tools.

Both tools/gem5_lint.py (style) and tools/pciesim_analyze.py
(semantics) walk the same C++ tree and honour per-line / per-file
pragmas.  Keeping the walking and pragma grammar here means the two
tools cannot drift on extension lists, exclusion rules, or
suppression syntax.

Pragma grammar (each tool has its own TAG, e.g. "gem5-lint" or
"pciesim-analyze"):

  // TAG: ignore               suppress all findings on this line
  // TAG: ignore[rule]: why    suppress one rule; reason mandatory
  // TAG: off / on             suppress findings in a region
  // TAG: ignore-file          (first 10 lines) skip the whole file

A standalone `ignore[rule]` comment line (nothing but the pragma on
it) applies to the **next** source line, so suppressions fit the
79-column limit.
"""

import re
from pathlib import Path

# Every extension either tool treats as C++ source.
EXTENSIONS = (".cc", ".hh", ".cpp", ".h")

# Directories never walked by either tool: build trees and the
# analyzer's own intentionally-violating fixture corpus.
SKIP_DIR_PATTERNS = ("build", "analyze_fixtures")


class Finding:
    """One tool finding at a file:line location."""

    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.check,
                                   self.message)


def skip_dir(path):
    """True when a directory must not be walked (build trees,
    fixture corpora)."""
    name = Path(path).name
    return any(name.startswith(pat) for pat in SKIP_DIR_PATTERNS)


def iter_files(paths, extensions=EXTENSIONS):
    """Expand files/directories into checkable source files,
    skipping build trees and fixture corpora during directory
    walks (explicitly named files are always yielded)."""
    for path in paths:
        p = Path(path)
        if p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix not in extensions or not f.is_file():
                    continue
                rel = f.relative_to(p)
                if any(skip_dir(part) for part in rel.parts[:-1]):
                    continue
                yield f
        elif p.is_file():
            yield p
        else:
            raise FileNotFoundError(path)


class PragmaSet:
    """Parsed suppression pragmas of one file for one tool TAG.

    Exposes:
      skip_file            ignore-file seen in the first 10 lines
      line_off(i)          line i is inside an off/on region or
                           carries a bare `ignore`
      rule_ignores         {lineno: (rule, reason, pragma_lineno)}
                           per-rule suppressions, already resolved
                           to the line they apply to (standalone
                           pragma comments bind to the next line)
      bad_suppressions     [(lineno, rule)] ignore[rule] pragmas
                           with no reason string
    """

    def __init__(self, tag, lines):
        self.tag = tag
        bare_ignore = tag + ": ignore"
        pragma_off = tag + ": off"
        pragma_on = tag + ": on"
        ignore_file = tag + ": ignore-file"
        rule_re = re.compile(
            re.escape(tag) + r":\s*ignore\[([a-z0-9-]+)\]"
            r"(?::\s*(\S.*))?")

        self.skip_file = any(ignore_file in l for l in lines[:10])
        self.rule_ignores = {}
        self.bad_suppressions = []
        self._off_lines = set()
        self._bare_ignored = set()

        on = True
        for i, line in enumerate(lines, start=1):
            if pragma_off in line:
                on = False
                self._off_lines.add(i)
                continue
            if pragma_on in line:
                on = True
                self._off_lines.add(i)
                continue
            if not on:
                self._off_lines.add(i)
                continue
            m = rule_re.search(line)
            if m:
                rule, reason = m.group(1), m.group(2)
                if not reason or not reason.strip():
                    self.bad_suppressions.append((i, rule))
                    continue
                # A pragma alone on its line binds to the next
                # source line (skipping continuation comment
                # lines, so reasons may wrap within 79 columns);
                # trailing pragmas bind to their own line.
                target = i
                if line.strip().startswith("//"):
                    target = i + 1
                    while target <= len(lines) and \
                            lines[target - 1].strip() \
                            .startswith("//"):
                        target += 1
                self.rule_ignores[target] = (rule, reason.strip(), i)
                continue
            if bare_ignore in line and "ignore-file" not in line \
                    and "ignore[" not in line:
                self._bare_ignored.add(i)

    def line_off(self, lineno):
        """True when all findings on this line are suppressed."""
        return lineno in self._off_lines or \
            lineno in self._bare_ignored

    def rule_ignored(self, lineno, rule):
        """True when `rule` is suppressed on this line by an
        ignore[rule] pragma (with its mandatory reason)."""
        entry = self.rule_ignores.get(lineno)
        return entry is not None and entry[0] == rule


def strip_comments(lines):
    """Return the lines with //- and /* */-comment text blanked
    (string literals are left alone; the tools' patterns do not
    occur inside the repo's string constants).  Line count and
    column positions of surviving code are preserved."""
    out = []
    in_block = False
    for raw in lines:
        res = []
        i = 0
        n = len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end == -1:
                    res.append(" " * (n - i))
                    i = n
                else:
                    res.append(" " * (end + 2 - i))
                    i = end + 2
                    in_block = False
                continue
            start_line = raw.find("//", i)
            start_block = raw.find("/*", i)
            if start_line != -1 and (start_block == -1 or
                                     start_line < start_block):
                res.append(raw[i:start_line])
                res.append(" " * (n - start_line))
                i = n
            elif start_block != -1:
                res.append(raw[i:start_block])
                i = start_block + 2
                res.append("  ")
                in_block = True
            else:
                res.append(raw[i:])
                i = n
        out.append("".join(res))
    return out
