/**
 * @file
 * e1000e driver model (paper Sec. IV): its module device table
 * matches device ID 0x10d3, and probe() performs the same
 * configuration sequence as the real driver - walk the capability
 * chain, attempt MSI/MSI-X (finding them disabled, fall back to a
 * legacy interrupt handler), map BAR0, reset the MAC, read the MAC
 * address from the EEPROM, and set up TX/RX descriptor rings.
 */

#ifndef PCIESIM_OS_E1000E_DRIVER_HH
#define PCIESIM_OS_E1000E_DRIVER_HH

#include <functional>

#include "dev/nic_8254x.hh"
#include "os/aer_handler.hh"
#include "os/kernel.hh"

namespace pciesim
{

/** Configuration for an E1000eDriver. */
struct E1000eDriverParams
{
    unsigned txRingSize = 64;
    unsigned rxRingSize = 64;
    unsigned rxBufferSize = 2048;
    /** Try to enable MSI before falling back to INTx (succeeds
     *  only on devices built with NicParams::allowMsi). */
    bool preferMsi = true;
    /** MSI target window base (the interrupt controller's). */
    Addr msiAddress = 0x10000000;
    /** Register recovery stats (AER-enabled topologies only). */
    bool trackRecovery = false;
};

/**
 * The driver. Also an AerRecoveryClient: after a surprise removal
 * and function reset it reinitialises the MAC (the same sequence as
 * probe) and retransmits the frames whose completions were lost.
 */
class E1000eDriver : public Driver, public AerRecoveryClient
{
  public:
    explicit E1000eDriver(const E1000eDriverParams &params = {})
        : params_(params)
    {}

    std::vector<MatchEntry>
    moduleDeviceTable() const override
    {
        return {{0x8086, 0x10d3}};
    }

    void probe(Kernel &kernel, const EnumeratedFunction &fn) override;

    /** Bound as soon as probe() starts (the MMIO sequence is
     *  asynchronous but the device is claimed immediately). */
    bool bound() const override { return bound_; }

    /** @{ State observable after probe. */
    bool probed() const { return probed_; }
    bool usingLegacyIrq() const { return usingLegacyIrq_; }
    bool usingMsi() const { return usingMsi_; }
    bool sawMsiDisabled() const { return sawMsiDisabled_; }
    bool sawMsixDisabled() const { return sawMsixDisabled_; }
    std::uint64_t macAddress() const { return mac_; }
    bool linkUp() const { return linkUp_; }
    /** @} */

    /** Fires when probe configuration completes (rings enabled). */
    void
    setOnReady(std::function<void()> cb)
    {
        onReady_ = std::move(cb);
    }

    /** Transmit a frame of @p len bytes; @p done fires when the
     *  TX-done interrupt for it has been handled. */
    void sendFrame(unsigned len, std::function<void()> done);

    /** Install a callback fired per received frame (length). */
    void
    setOnReceive(std::function<void(unsigned)> cb)
    {
        onReceive_ = std::move(cb);
    }

    std::uint64_t framesSent() const { return framesSent_; }
    std::uint64_t framesReceived() const { return framesReceived_; }

    /** @{ AerRecoveryClient. */
    void surpriseRemove(Bdf bdf) override;
    void resumeAfterReset(Bdf bdf) override;
    /** @} */

    /** @{ Recovery introspection (tests/benches). */
    std::uint64_t recoveries() const { return recoveries_.value(); }
    std::uint64_t lostRequests() const
    {
        return lostRequests_.value();
    }
    /** @} */

  private:
    void configureMac();
    void handleIrq();
    void replenishRx();

    E1000eDriverParams params_;
    Kernel *kernel_ = nullptr;
    bool bound_ = false;
    bool probed_ = false;
    bool usingLegacyIrq_ = false;
    bool usingMsi_ = false;
    bool sawMsiDisabled_ = false;
    bool sawMsixDisabled_ = false;
    bool linkUp_ = false;
    std::uint64_t mac_ = 0;

    Addr mmioBase_ = 0;
    unsigned irqLine_ = 0;
    Bdf bdf_{};

    Addr txRing_ = 0;
    Addr rxRing_ = 0;
    Addr txBuf_ = 0;
    Addr rxBufs_ = 0;
    unsigned txTail_ = 0;
    unsigned rxTail_ = 0;
    unsigned txHeadSw_ = 0; //!< oldest un-reclaimed TX descriptor
    unsigned rxHeadSw_ = 0; //!< next RX descriptor to check

    std::deque<std::function<void()>> txDone_;
    /** Lengths of the frames behind txDone_, for retransmission
     *  after a surprise removal. */
    std::deque<unsigned> txLens_;
    /** Device surprise-removed; cleared by resumeAfterReset. */
    bool removed_ = false;
    std::function<void(unsigned)> onReceive_;
    std::function<void()> onReady_;

    std::uint64_t framesSent_ = 0;
    std::uint64_t framesReceived_ = 0;

    /** @{ Registered only when trackRecovery. */
    stats::Counter recoveries_;
    stats::Counter lostRequests_;
    /** @} */
};

} // namespace pciesim

#endif // PCIESIM_OS_E1000E_DRIVER_HH
