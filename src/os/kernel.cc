#include "kernel.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace pciesim
{

class Kernel::CpuPort : public MasterPort
{
  public:
    CpuPort(Kernel &kernel, const std::string &name)
        : MasterPort(name), kernel_(kernel)
    {}

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        return kernel_.recvMmioResp(pkt);
    }

    void
    recvReqRetry() override
    {
        if (kernel_.mmioWaitingRetry_) {
            kernel_.mmioWaitingRetry_ = false;
            kernel_.issueNextMmio();
        }
    }

  private:
    Kernel &kernel_;
};

Kernel::Kernel(Simulation &sim, const std::string &name, PciHost &host,
               IntController &gic, SimpleMemory &dram,
               const KernelParams &params)
    : SimObject(sim, name), params_(params), host_(host), gic_(gic),
      dram_(dram),
      mmioIssueEvent_(this, name + ".mmioIssueEvent"),
      mmioTimeoutEvent_(this, name + ".mmioTimeoutEvent"),
      dmaBrk_(params.dmaRegionBase)
{
    cpuPort_ = std::make_unique<CpuPort>(*this, name + ".cpuPort");
}

Kernel::~Kernel() = default;

MasterPort &
Kernel::cpuPort()
{
    return *cpuPort_;
}

void
Kernel::init()
{
    using stats::Unit;
    statsRegistry().add(name() + ".mmioOps", &mmioOps_,
                        "timed MMIO operations completed",
                        Unit::Count);
    statsRegistry().add(name() + ".irqsHandled", &irqsHandled_,
                        "interrupt handlers run", Unit::Count);
    statsRegistry().add(name() + ".completionTimeouts",
                        &completionTimeouts_,
                        "MMIO operations failed by completion "
                        "timeout", Unit::Count);
    // Gated on the knob so fault-free dumps stay bit-identical.
    if (params_.completionTimeout > 0) {
        statsRegistry().add(name() + ".abortedReads", &abortedReads_,
                            "MMIO reads aborted with all-ones by "
                            "the completion timeout", Unit::Count);
    }
    statsRegistry().add(name() + ".mmioLatency", &mmioLatency_,
                        "MMIO issue-to-completion latency (ticks)",
                        Unit::Tick);
    fatalIf(!cpuPort_->isBound(),
            "kernel '", name(), "' CPU port unbound");
}

void
Kernel::mmioRead(Addr addr, unsigned size,
                 std::function<void(std::uint64_t)> done)
{
    MmioOp op;
    op.isRead = true;
    op.addr = addr;
    op.size = size;
    op.onRead = std::move(done);
    mmioQueue_.push_back(std::move(op));
    if (!mmioInFlight_ && !mmioIssueEvent_.scheduled())
        schedule(mmioIssueEvent_, params_.mmioIssueLatency);
}

void
Kernel::mmioWrite(Addr addr, unsigned size, std::uint64_t value,
                  std::function<void()> done)
{
    MmioOp op;
    op.isRead = false;
    op.addr = addr;
    op.size = size;
    op.value = value;
    op.onWrite = std::move(done);
    mmioQueue_.push_back(std::move(op));
    if (!mmioInFlight_ && !mmioIssueEvent_.scheduled())
        schedule(mmioIssueEvent_, params_.mmioIssueLatency);
}

void
Kernel::issueNextMmio()
{
    if (mmioInFlight_ || mmioQueue_.empty())
        return;

    const MmioOp &op = mmioQueue_.front();
    if (!mmioPkt_) {
        MemCmd cmd = op.isRead ? MemCmd::ReadReq : MemCmd::WriteReq;
        mmioPkt_ = Packet::makeRequest(cmd, op.addr, op.size);
        mmioPkt_->setCreationTick(curTick());
        if (!op.isRead) {
            switch (op.size) {
              case 1:
                mmioPkt_->set<std::uint8_t>(op.value & 0xff);
                break;
              case 2:
                mmioPkt_->set<std::uint16_t>(op.value & 0xffff);
                break;
              case 4:
                mmioPkt_->set<std::uint32_t>(op.value & 0xffffffff);
                break;
              case 8:
                mmioPkt_->set<std::uint64_t>(op.value);
                break;
              default:
                panic("unsupported MMIO size ", op.size);
            }
        }
    }

    if (!cpuPort_->sendTimingReq(mmioPkt_)) {
        mmioWaitingRetry_ = true;
        return;
    }
    mmioInFlight_ = true;
    TRACE_SPAN_BEGIN(trace::Flag::Mmio, curTick(), name(),
                     op.isRead ? "mmio read @" : "mmio write @",
                     op.addr);
    if (params_.completionTimeout > 0 &&
        !mmioTimeoutEvent_.scheduled()) {
        schedule(mmioTimeoutEvent_, params_.completionTimeout);
    }
}

bool
Kernel::recvMmioResp(const PacketPtr &pkt)
{
    if (pkt != mmioPkt_) {
        // With a completion timeout armed, a completion may arrive
        // after its op was already failed and retired: drop it.
        panicIf(params_.completionTimeout == 0,
                "kernel got unexpected MMIO response ",
                pkt->toString());
        return true;
    }
    panicIf(!mmioInFlight_,
            "kernel got unexpected MMIO response ", pkt->toString());
    if (mmioTimeoutEvent_.scheduled())
        eventq().deschedule(&mmioTimeoutEvent_);
    MmioOp op = std::move(mmioQueue_.front());
    mmioQueue_.pop_front();
    mmioInFlight_ = false;
    mmioLatency_.sample(curTick() - pkt->creationTick());
    TRACE_SPAN_END(trace::Flag::Mmio, curTick(), name());
    mmioPkt_.reset();
    ++mmioOps_;

    if (op.isRead) {
        std::uint64_t v = 0;
        if (pkt->hasData()) {
            switch (op.size) {
              case 1: v = pkt->get<std::uint8_t>(); break;
              case 2: v = pkt->get<std::uint16_t>(); break;
              case 4: v = pkt->get<std::uint32_t>(); break;
              case 8: v = pkt->get<std::uint64_t>(); break;
              default: break;
            }
        }
        if (op.onRead)
            op.onRead(v);
    } else if (op.onWrite) {
        op.onWrite();
    }

    if (!mmioQueue_.empty() && !mmioInFlight_ &&
        !mmioIssueEvent_.scheduled()) {
        schedule(mmioIssueEvent_, params_.mmioIssueLatency);
    }
    return true;
}

void
Kernel::mmioTimeoutFired()
{
    if (!mmioInFlight_)
        return;
    ++completionTimeouts_;
    TRACE_SPAN_END(trace::Flag::Mmio, curTick(), name());
    TRACE_MSG(trace::Flag::Mmio, curTick(), name(),
              "MMIO completion timeout; returning all-ones");
    inform("kernel: MMIO ", mmioQueue_.front().isRead ? "read"
                                                      : "write",
           " to ", mmioQueue_.front().addr,
           " timed out; completing with all-ones");

    MmioOp op = std::move(mmioQueue_.front());
    mmioQueue_.pop_front();
    mmioInFlight_ = false;
    // Dropping the packet reference unmatches any late completion;
    // recvMmioResp discards it on arrival.
    mmioPkt_.reset();

    if (mmioTimeoutHook_)
        mmioTimeoutHook_(op.isRead);
    if (op.isRead) {
        ++abortedReads_;
        // Distinct instant so aborted loads are attributable in the
        // Perfetto timeline, separate from the generic timeout note.
        TRACE_MSG(trace::Flag::Mmio, curTick(), name(),
                  "aborted read @", op.addr, " (all-ones)");
        if (op.onRead)
            op.onRead(~0ULL);
    } else if (op.onWrite) {
        op.onWrite();
    }

    if (!mmioQueue_.empty() && !mmioIssueEvent_.scheduled())
        schedule(mmioIssueEvent_, params_.mmioIssueLatency);
}

std::uint32_t
Kernel::configRead(Bdf bdf, unsigned offset, unsigned size)
{
    return host_.configRead(bdf, offset, size);
}

void
Kernel::configWrite(Bdf bdf, unsigned offset, unsigned size,
                    std::uint32_t value)
{
    host_.configWrite(bdf, offset, size, value);
}

void
Kernel::memWriteBlob(Addr addr, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i)
        dram_.writeByte(addr + i, bytes[i]);
}

void
Kernel::memReadBlob(Addr addr, void *data, std::size_t len)
{
    auto *bytes = static_cast<std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i)
        bytes[i] = dram_.readByte(addr + i);
}

Addr
Kernel::allocDma(std::uint64_t size, std::uint64_t align)
{
    Addr base = (dmaBrk_ + align - 1) & ~(align - 1);
    fatalIf(base + size > params_.dmaRegionEnd,
            "kernel DMA region exhausted");
    dmaBrk_ = base + size;
    return base;
}

const Enumerator::Result &
Kernel::enumerate()
{
    if (!enumerated_) {
        Enumerator enumerator(host_);
        enumResult_ = enumerator.enumerate();
        enumerated_ = true;
        inform("kernel: enumerated ", enumResult_.functions.size(),
               " PCI functions on ", enumResult_.numBuses, " buses");
    }
    return enumResult_;
}

void
Kernel::registerDriver(Driver &driver)
{
    drivers_.push_back(&driver);
}

void
Kernel::probeDrivers()
{
    const auto &result = enumerate();
    for (const auto &fn : result.functions) {
        for (Driver *driver : drivers_) {
            if (driver->bound())
                continue;
            bool matched = false;
            for (const auto &m : driver->moduleDeviceTable()) {
                if (m.vendorId == fn.vendorId &&
                    m.deviceId == fn.deviceId) {
                    matched = true;
                    break;
                }
            }
            if (matched) {
                driver->probe(*this, fn);
                break; // the function is claimed
            }
        }
    }
}

void
Kernel::registerIrqHandler(unsigned line, std::function<void()> fn)
{
    gic_.registerHandler(line, [this, fn = std::move(fn)] {
        ++irqsHandled_;
        fn();
    });
}

void
Kernel::defer(Tick delay, std::function<void()> fn)
{
    auto *ev = new OneShotEvent(std::move(fn));
    eventq().schedule(ev, curTick() + delay);
}

} // namespace pciesim
