/**
 * @file
 * Kernel-side AER service: the software half of the error
 * containment pipeline (DESIGN.md §12). The platform raises a
 * dedicated interrupt line when the root complex latches an error
 * message; this handler runs as kernel software — it reads the root
 * error status block through real configuration cycles, logs and
 * clears it, and for FATAL errors drives the recovery sequence:
 * notify drivers of the surprise removal, poll for the device to
 * return, reset the function, release the fabric containment, and
 * let the drivers resume their workloads.
 */

#ifndef PCIESIM_OS_AER_HANDLER_HH
#define PCIESIM_OS_AER_HANDLER_HH

#include <functional>
#include <vector>

#include "os/kernel.hh"
#include "pci/aer.hh"

namespace pciesim
{

/**
 * A driver that can survive a surprise removal of its device.
 * surpriseRemove() is called when the kernel learns of the removal
 * (the in-flight request is lost); resumeAfterReset() after the
 * function has been reset and the fabric path re-opened.
 */
class AerRecoveryClient
{
  public:
    virtual ~AerRecoveryClient() = default;
    virtual void surpriseRemove(Bdf bdf) = 0;
    virtual void resumeAfterReset(Bdf bdf) = 0;
};

/** Configuration for an AerHandler. */
struct AerHandlerParams
{
    /** Platform interrupt line the root error block asserts. Kept
     *  below the enumerator's INTx range (first_irq = 32). */
    unsigned irqLine = 30;
    /** IRQ entry to root-status read (handler prologue). */
    Tick handlerDelay = nanoseconds(800);
    /** Fatal receipt to first reset attempt (driver teardown,
     *  pciehp coordination). */
    Tick resetDelay = microseconds(10);
    /** Presence re-poll period while the slot reads all-ones. */
    Tick pollDelay = microseconds(10);
    /** Give up recovery after this many presence polls. */
    unsigned maxPolls = 1000;
};

/**
 * The kernel's AER interrupt handler and recovery engine.
 * Construct only on AER-enabled configurations: its stats are
 * registered in the kernel's registry at construction.
 */
class AerHandler
{
  public:
    AerHandler(Kernel &kernel, Bdf root_bdf,
               const AerHandlerParams &params = {});

    /** Register a driver to coordinate recovery with. */
    void addClient(AerRecoveryClient *client);

    /** Deassert the platform AER line (wired by the builder). */
    void setIrqAck(std::function<void()> ack)
    {
        irqAck_ = std::move(ack);
    }

    /** Re-open the fabric path to @p bdf after its reset (wired by
     *  the builder to the switch containment release). */
    void setReleaseHook(std::function<void(Bdf)> hook)
    {
        releaseHook_ = std::move(hook);
    }

    /** @{ Introspection for tests/benches. */
    std::uint64_t irqsServiced() const { return aerIrqs_.value(); }
    std::uint64_t functionResets() const
    {
        return funcResets_.value();
    }
    std::uint64_t errorsSeen(ErrSeverity sev) const
    {
        return errsSeen_[static_cast<std::size_t>(sev)].value();
    }
    /** @} */

  private:
    void handleIrq();
    void serviceRootStatus();
    void resetFunction(Bdf victim, unsigned polls);

    Kernel &kernel_;
    Bdf rootBdf_;
    AerHandlerParams params_;
    std::function<void()> irqAck_;
    std::function<void(Bdf)> releaseHook_;
    std::vector<AerRecoveryClient *> clients_;
    /** Masks re-entry while the (deferred) service is running. */
    bool inProgress_ = false;

    stats::Counter aerIrqs_;
    stats::Vector errsSeen_;
    stats::Counter funcResets_;
};

} // namespace pciesim

#endif // PCIESIM_OS_AER_HANDLER_HH
