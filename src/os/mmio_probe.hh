/**
 * @file
 * The Table II kernel module: times 4-byte MMIO reads of a NIC
 * register ("We create a kernel module and measure the time taken
 * to access a location in the NIC memory space", paper Sec. VI-B).
 */

#ifndef PCIESIM_OS_MMIO_PROBE_HH
#define PCIESIM_OS_MMIO_PROBE_HH

#include <functional>
#include <vector>

#include "os/kernel.hh"

namespace pciesim
{

/**
 * Issues N back-to-back 4-byte MMIO reads and records the latency
 * of each (request issue to response delivery, the device-register
 * load latency a kernel module observes).
 */
class MmioProbe
{
  public:
    MmioProbe(Kernel &kernel, Addr target) :
        kernel_(kernel), target_(target)
    {}

    /** Run @p iterations reads; @p done fires after the last. */
    void run(unsigned iterations, std::function<void()> done);

    /** Mean read latency in ticks. */
    Tick meanLatency() const;

    const std::vector<Tick> &samples() const { return samples_; }

  private:
    void issueOne();

    Kernel &kernel_;
    Addr target_;
    unsigned remaining_ = 0;
    Tick issueTick_ = 0;
    std::vector<Tick> samples_;
    std::function<void()> onDone_;
};

} // namespace pciesim

#endif // PCIESIM_OS_MMIO_PROBE_HH
