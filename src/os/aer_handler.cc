#include "aer_handler.hh"

#include "pci/config_regs.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace pciesim
{

namespace
{

Bdf
decodeSourceId(std::uint16_t id)
{
    Bdf bdf;
    bdf.bus = static_cast<std::uint8_t>(id >> 8);
    bdf.dev = static_cast<std::uint8_t>((id >> 3) & 0x1f);
    bdf.fn = static_cast<std::uint8_t>(id & 0x7);
    return bdf;
}

} // namespace

AerHandler::AerHandler(Kernel &kernel, Bdf root_bdf,
                       const AerHandlerParams &params)
    : kernel_(kernel), rootBdf_(root_bdf), params_(params)
{
    errsSeen_.init(3);
    errsSeen_.subname(0, "cor");
    errsSeen_.subname(1, "nonfatal");
    errsSeen_.subname(2, "fatal");
    auto &reg = kernel_.statsRegistry();
    reg.add("system.aerHandler.irqs", &aerIrqs_,
            "AER interrupts serviced");
    reg.add("system.aerHandler.errsSeen", &errsSeen_,
            "root-latched errors the kernel observed, by severity");
    reg.add("system.aerHandler.funcResets", &funcResets_,
            "function-level resets performed during recovery");
    kernel_.registerIrqHandler(params_.irqLine,
                               [this] { handleIrq(); });
}

void
AerHandler::addClient(AerRecoveryClient *client)
{
    clients_.push_back(client);
}

void
AerHandler::handleIrq()
{
    if (inProgress_)
        return;
    inProgress_ = true;
    ++aerIrqs_;
    kernel_.defer(params_.handlerDelay,
                  [this] { serviceRootStatus(); });
}

void
AerHandler::serviceRootStatus()
{
    // Read and W1C-clear the root error status block through
    // configuration cycles, as aer_irq()/aer_isr() do.
    const unsigned base = cfg::extendedCapBase;
    std::uint32_t status =
        kernel_.configRead(rootBdf_, base + cfg::aerRootErrStatus, 4);
    std::uint32_t source =
        kernel_.configRead(rootBdf_, base + cfg::aerErrSourceId, 4);
    kernel_.configWrite(rootBdf_, base + cfg::aerRootErrStatus, 4,
                        status);
    if (irqAck_)
        irqAck_();
    inProgress_ = false;

    const bool cor = status & cfg::aerRootCorReceived;
    const bool nonfatal = status & cfg::aerRootNonFatalReceived;
    const bool fatal = status & cfg::aerRootFatalReceived;
    if (cor)
        ++errsSeen_[0];
    if (nonfatal)
        ++errsSeen_[1];
    if (fatal)
        ++errsSeen_[2];

    if (cor) {
        // Log-and-clear: correctable errors were already handled by
        // hardware; software just clears the source's status.
        Bdf src = decodeSourceId(source & 0xffff);
        std::uint32_t dev_status = kernel_.configRead(
            src, base + cfg::aerCorrStatus, 4);
        kernel_.configWrite(src, base + cfg::aerCorrStatus, 4,
                            dev_status);
    }
    if (nonfatal || fatal) {
        Bdf victim = decodeSourceId((source >> 16) & 0xffff);
        std::uint32_t unc_status = kernel_.configRead(
            victim, base + cfg::aerUncorrStatus, 4);
        inform("aer: ", fatal ? "FATAL" : "non-fatal",
               " error from ", victim.toString(),
               ", uncorrectable status 0x", std::hex, unc_status,
               std::dec);
        TRACE_MSG(trace::Flag::Rc, kernel_.curTick(),
                  "system.aerHandler", fatal ? "fatal" : "nonfatal",
                  " error from ", victim.toString());
        if (!fatal) {
            // Non-fatal: clear the status and carry on; the
            // requester already degraded the failed op locally.
            kernel_.configWrite(victim, base + cfg::aerUncorrStatus,
                                4, unc_status);
            return;
        }
        // Fatal: the link below the victim is down. Tear the
        // drivers' in-flight work down now, then reset once the
        // device answers configuration cycles again.
        for (AerRecoveryClient *c : clients_)
            c->surpriseRemove(victim);
        kernel_.defer(params_.resetDelay, [this, victim] {
            resetFunction(victim, 0);
        });
    }
}

void
AerHandler::resetFunction(Bdf victim, unsigned polls)
{
    std::uint32_t vendor =
        kernel_.configRead(victim, cfg::vendorId, 2);
    if (vendor == 0xffff) {
        if (polls >= params_.maxPolls) {
            warn("aer: giving up recovery of ", victim.toString(),
                 " after ", polls, " presence polls");
            return;
        }
        kernel_.defer(params_.pollDelay, [this, victim, polls] {
            resetFunction(victim, polls + 1);
        });
        return;
    }

    // pci_save_state / FLR / pci_restore_state: preserve the
    // command enables across the reset so the function keeps
    // decoding its BARs and mastering the bus.
    std::uint32_t command =
        kernel_.configRead(victim, cfg::command, 2);
    PciFunction *fn = kernel_.pciHost().lookup(victim);
    panicIf(fn == nullptr, "aer: reset target ", victim.toString(),
            " is not in the PCI registry");
    fn->functionLevelReset();
    kernel_.configWrite(victim, cfg::command, 2, command);
    ++funcResets_;
    inform("aer: reset ", victim.toString(), " after ", polls,
           " presence polls; resuming drivers");

    if (releaseHook_)
        releaseHook_(victim);
    for (AerRecoveryClient *c : clients_)
        c->resumeAfterReset(victim);
}

} // namespace pciesim
