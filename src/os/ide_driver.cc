#include "ide_driver.hh"

#include "sim/logging.hh"

namespace pciesim
{

void
IdeDriver::probe(Kernel &kernel, const EnumeratedFunction &fn)
{
    kernel_ = &kernel;
    panicIf(fn.bars.size() <= ide::barBmdma ||
            fn.bars[ide::barCmd].empty() ||
            fn.bars[ide::barBmdma].empty(),
            "IDE probe: device is missing its I/O BARs");
    cmdBase_ = fn.bars[ide::barCmd].start();
    ctrlBase_ = fn.bars[ide::barCtrl].start();
    bmBase_ = fn.bars[ide::barBmdma].start();
    irqLine_ = fn.irqLine;
    bdf_ = fn.bdf;

    // One single-entry PRD table, reused for every command.
    prdAddr_ = kernel.allocDma(8, 8);

    if (params_.trackRecovery) {
        auto &reg = kernel.statsRegistry();
        reg.add("system.ideDriver.recoveries", &recoveries_,
                "commands reissued after a surprise removal");
        reg.add("system.ideDriver.lostRequests", &lostRequests_,
                "in-flight commands lost to surprise removals");
        reg.add("system.ideDriver.recoveryLatency",
                &recoveryLatency_,
                "surprise-removal to command-reissue latency "
                "(ticks)", stats::Unit::Tick);
    }

    kernel.registerIrqHandler(irqLine_, [this] { handleIrq(); });
    probed_ = true;
    inform("ide: probed disk at ", fn.bdf.toString(), ", cmd=0x",
           std::hex, cmdBase_, " bmdma=0x", bmBase_, std::dec,
           " irq=", irqLine_);
}

void
IdeDriver::read(Addr buf_addr, std::uint64_t bytes,
                std::function<void()> done)
{
    panicIf(!probed_, "IDE read before probe");
    panicIf(busy_, "IDE driver supports one request at a time");
    panicIf(bytes == 0 || bytes % ide::sectorSize != 0,
            "IDE read length must be a sector multiple");

    busy_ = true;
    bufAddr_ = buf_addr;
    bytesLeft_ = bytes;
    nextLba_ = 0;
    onDone_ = std::move(done);
    issueCommand();
}

void
IdeDriver::issueCommand()
{
    // A single PRD entry addresses at most 64 KB, so commands are
    // capped at 128 sectors (the classic IDE DMA limit).
    std::uint64_t cmd_bytes = std::min<std::uint64_t>(
        bytesLeft_, 128ULL * ide::sectorSize);
    unsigned sectors =
        static_cast<unsigned>(cmd_bytes / ide::sectorSize);
    ++commandsIssued_;

    // Snapshot the command so it can be reissued if the device
    // surprise-vanishes while it is in flight.
    curCmdBuf_ = bufAddr_;
    curCmdBytes_ = cmd_bytes;
    curCmdLba_ = nextLba_;

    // Build the single PRD entry covering this command's buffer
    // (functional write: the table lives in kernel DMA memory and
    // the disk fetches it over the interconnect).
    std::uint64_t prd =
        (bufAddr_ & 0xffffffffULL) |
        (static_cast<std::uint64_t>(cmd_bytes & 0xffff) << 32) |
        (0x8000ULL << 48); // end-of-table flag
    kernel_->memWrite<std::uint64_t>(prdAddr_, prd);

    Kernel &k = *kernel_;
    // Program the BMDMA PRD pointer, the taskfile, the command, and
    // finally start the engine - the same MMIO sequence the real
    // driver performs.
    k.mmioWrite(bmBase_ + ide::regBmPrdAddr, 4, prdAddr_, [] {});
    k.mmioWrite(cmdBase_ + ide::regSectorCount, 1, sectors & 0xff,
                [] {});
    k.mmioWrite(cmdBase_ + ide::regLbaLow, 1, nextLba_ & 0xff, [] {});
    k.mmioWrite(cmdBase_ + ide::regLbaMid, 1, (nextLba_ >> 8) & 0xff,
                [] {});
    k.mmioWrite(cmdBase_ + ide::regLbaHigh, 1,
                (nextLba_ >> 16) & 0xff, [] {});
    k.mmioWrite(cmdBase_ + ide::regCommand, 1, ide::cmdReadDma, [] {});
    k.mmioWrite(bmBase_ + ide::regBmCommand, 1,
                ide::bmStart | ide::bmWriteToMemory, [] {});

    bufAddr_ += cmd_bytes;
    bytesLeft_ -= cmd_bytes;
    nextLba_ += sectors;
}

void
IdeDriver::surpriseRemove(Bdf bdf)
{
    if (bdf != bdf_ || removed_)
        return;
    removed_ = true;
    removedAt_ = kernel_->curTick();
    if (busy_)
        ++lostRequests_;
    // Any half-run ISR is moot: the device that would have cleared
    // the interrupt condition no longer exists.
    irqInProgress_ = false;
    inform("ide: disk ", bdf.toString(), " surprise-removed with ",
           busy_ ? "a command" : "no command", " in flight");
}

void
IdeDriver::resumeAfterReset(Bdf bdf)
{
    if (bdf != bdf_ || !removed_)
        return;
    removed_ = false;
    if (!busy_)
        return;
    // Rewind to the lost command and reissue it; the reset device
    // is reprogrammed from scratch by the normal issue sequence.
    bufAddr_ = curCmdBuf_;
    bytesLeft_ += curCmdBytes_;
    nextLba_ = curCmdLba_;
    ++recoveries_;
    recoveryLatency_.sample(kernel_->curTick() - removedAt_);
    inform("ide: resuming after reset of ", bdf.toString(),
           ", reissuing lba=", curCmdLba_);
    issueCommand();
}

void
IdeDriver::handleIrq()
{
    if (irqInProgress_ || removed_)
        return;
    irqInProgress_ = true;

    // Interrupt service: read BMDMA status, clear it, read the
    // drive status register (which deasserts INTx).
    Kernel &k = *kernel_;
    k.mmioRead(bmBase_ + ide::regBmStatus, 1, [this,
                                               &k](std::uint64_t v) {
        if ((v & 0xff) == 0xff) {
            // All-ones: the device is gone (or the read aborted).
            irqInProgress_ = false;
            return;
        }
        if (!(v & ide::bmStatusIntr)) {
            irqInProgress_ = false;
            return; // spurious / shared line
        }
        k.mmioWrite(bmBase_ + ide::regBmStatus, 1, ide::bmStatusIntr,
                    [] {});
        k.mmioWrite(bmBase_ + ide::regBmCommand, 1, 0, [] {});
        k.mmioRead(cmdBase_ + ide::regCommand, 1,
                   [this](std::uint64_t) {
            // Block-layer completion and queue restart time.
            kernel_->defer(params_.perCommandOverhead, [this] {
                if (removed_)
                    return; // recovery owns the state machine now
                irqInProgress_ = false;
                if (bytesLeft_ > 0) {
                    issueCommand();
                } else {
                    busy_ = false;
                    if (onDone_) {
                        auto cb = std::move(onDone_);
                        onDone_ = nullptr;
                        cb();
                    }
                }
            });
        });
    });
}

} // namespace pciesim
