#include "mmio_probe.hh"

#include "sim/logging.hh"

namespace pciesim
{

void
MmioProbe::run(unsigned iterations, std::function<void()> done)
{
    panicIf(iterations == 0, "probe needs at least one iteration");
    remaining_ = iterations;
    samples_.clear();
    samples_.reserve(iterations);
    onDone_ = std::move(done);
    issueOne();
}

void
MmioProbe::issueOne()
{
    issueTick_ = kernel_.curTick();
    kernel_.mmioRead(target_, 4, [this](std::uint64_t) {
        samples_.push_back(kernel_.curTick() - issueTick_);
        if (--remaining_ > 0) {
            issueOne();
        } else if (onDone_) {
            auto cb = std::move(onDone_);
            onDone_ = nullptr;
            cb();
        }
    });
}

Tick
MmioProbe::meanLatency() const
{
    panicIf(samples_.empty(), "no probe samples recorded");
    Tick sum = 0;
    for (Tick t : samples_)
        sum += t;
    return sum / samples_.size();
}

} // namespace pciesim
