#include "dd_workload.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace
{
// The dd process has no SimObject of its own; it traces on a
// fixed track name.
const std::string ddTrack = "dd";
} // namespace

namespace pciesim
{

DdWorkload::DdWorkload(Kernel &kernel, IdeDriver &driver,
                       const DdWorkloadParams &params)
    : kernel_(kernel), driver_(driver), params_(params),
      statPrefix_(kernel.name() + ".dd")
{
    panicIf(params_.blockBytes == 0, "dd needs a nonzero block size");
    panicIf(params_.count == 0, "dd needs count >= 1");

    auto &reg = kernel_.statsRegistry();
    using stats::Unit;
    bytesStat_ = [this] {
        return static_cast<double>(bytesTransferred());
    };
    reg.add(statPrefix_ + ".bytesTransferred", &bytesStat_,
            "payload bytes read by dd", Unit::Byte);
    blocksStat_ = [this] { return static_cast<double>(blocksDone_); };
    reg.add(statPrefix_ + ".blocksDone", &blocksStat_,
            "dd blocks completed", Unit::Count);
    goodputStat_ = [this] {
        return finished_ ? throughputGbps() * 1e9 : 0.0;
    };
    reg.add(statPrefix_ + ".goodput", &goodputStat_,
            "application-level dd throughput", Unit::BitPerSecond);
}

DdWorkload::~DdWorkload()
{
    auto &reg = kernel_.statsRegistry();
    reg.remove(statPrefix_ + ".bytesTransferred");
    reg.remove(statPrefix_ + ".blocksDone");
    reg.remove(statPrefix_ + ".goodput");
}

void
DdWorkload::run(std::function<void()> done)
{
    onDone_ = std::move(done);
    startTick_ = kernel_.curTick();
    blocksDone_ = 0;
    finished_ = false;

    // Direct I/O: a single aligned buffer reused for every block.
    // (Reads land in it and are discarded, of=/dev/null.)
    if (bufAddr_ == 0)
        bufAddr_ = kernel_.allocDma(params_.blockBytes, 4096);

    TRACE_SPAN_BEGIN(trace::Flag::Workload, startTick_, ddTrack,
                     "dd ", params_.count, "x", params_.blockBytes,
                     "B");
    kernel_.defer(params_.invocationOverhead, [this] { nextBlock(); });
}

void
DdWorkload::nextBlock()
{
    kernel_.defer(params_.perBlockOverhead, [this] {
        TRACE_SPAN_BEGIN(trace::Flag::Workload, kernel_.curTick(),
                         ddTrack, "block ", blocksDone_);
        driver_.read(bufAddr_, params_.blockBytes, [this] {
            ++blocksDone_;
            TRACE_SPAN_END(trace::Flag::Workload, kernel_.curTick(),
                           ddTrack);
            if (blocksDone_ < params_.count) {
                nextBlock();
            } else {
                endTick_ = kernel_.curTick();
                finished_ = true;
                TRACE_SPAN_END(trace::Flag::Workload, endTick_,
                               ddTrack);
                if (onDone_) {
                    auto cb = std::move(onDone_);
                    onDone_ = nullptr;
                    cb();
                }
            }
        });
    });
}

double
DdWorkload::throughputGbps() const
{
    panicIf(!finished_, "dd throughput queried before completion");
    double bits = static_cast<double>(bytesTransferred()) * 8.0;
    double secs = ticksToSeconds(elapsed());
    return bits / secs / 1e9;
}

} // namespace pciesim
