/**
 * @file
 * The dd benchmark model (paper Sec. VI-A): reads a single block of
 * configurable size from the storage device with direct I/O and
 * reports throughput. Per-invocation overhead models the process
 * setup / syscall / direct-I/O path the paper identifies as the gap
 * between device-level and application-level throughput.
 */

#ifndef PCIESIM_OS_DD_WORKLOAD_HH
#define PCIESIM_OS_DD_WORKLOAD_HH

#include <functional>
#include <string>

#include "os/ide_driver.hh"
#include "os/kernel.hh"

namespace pciesim
{

/** Configuration for a DdWorkload. */
struct DdWorkloadParams
{
    /** Bytes per block (the paper sweeps 64 MB to 512 MB). */
    std::uint64_t blockBytes = 64ULL << 20;
    /** Blocks to transfer (the paper uses a single block). */
    unsigned count = 1;
    /** Fixed per-invocation overhead (process start, open, direct
     *  I/O setup). */
    Tick invocationOverhead = microseconds(200);
    /** Per-block syscall + user/kernel crossing overhead. */
    Tick perBlockOverhead = microseconds(30);
};

/**
 * dd if=/dev/disk of=/dev/null bs=<blockBytes> count=<count>
 * iflag=direct, as a state machine over the IDE driver.
 */
class DdWorkload
{
  public:
    DdWorkload(Kernel &kernel, IdeDriver &driver,
               const DdWorkloadParams &params = {});

    /**
     * Unregisters this workload's stats: unlike the SimObjects it
     * drives, a workload is a stack-local that dies before the
     * simulation's registry, so it must not leave dangling entries
     * behind (stats::Registry::remove).
     */
    ~DdWorkload();

    /** Start the run; @p done fires when dd would print its
     *  summary line. */
    void run(std::function<void()> done);

    bool finished() const { return finished_; }

    /** Reported throughput in Gbit/s (what dd prints). */
    double throughputGbps() const;

    /** Total wall-clock ticks of the run. */
    Tick elapsed() const { return endTick_ - startTick_; }

    std::uint64_t bytesTransferred() const
    {
        return params_.blockBytes * blocksDone_;
    }

  private:
    void nextBlock();

    Kernel &kernel_;
    IdeDriver &driver_;
    DdWorkloadParams params_;
    /** Stat-name prefix ("<kernel>.dd"); keys removal in the dtor. */
    std::string statPrefix_;
    /** @{ Dump-time stats (stats v2); all guard !finished_ as 0. */
    stats::Formula bytesStat_;
    stats::Formula blocksStat_;
    stats::Formula goodputStat_;
    /** @} */

    Addr bufAddr_ = 0;
    unsigned blocksDone_ = 0;
    bool finished_ = false;
    Tick startTick_ = 0;
    Tick endTick_ = 0;
    std::function<void()> onDone_;
};

} // namespace pciesim

#endif // PCIESIM_OS_DD_WORKLOAD_HH
