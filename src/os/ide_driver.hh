/**
 * @file
 * IDE bus-master DMA driver model: programs the disk's taskfile and
 * BMDMA registers over timed MMIO, builds PRD entries in kernel DMA
 * memory, and completes commands from the legacy interrupt handler.
 * Large requests are split into maximum-size (256-sector) commands,
 * as the block layer does.
 */

#ifndef PCIESIM_OS_IDE_DRIVER_HH
#define PCIESIM_OS_IDE_DRIVER_HH

#include <functional>

#include "dev/ide_disk.hh"
#include "os/kernel.hh"

namespace pciesim
{

/** Configuration for an IdeDriver. */
struct IdeDriverParams
{
    /** Software time from completion interrupt to the next command
     *  being programmed (IRQ exit, block layer, queue restart). */
    Tick perCommandOverhead = nanoseconds(600);
};

/**
 * The driver. Register it with the kernel before probeDrivers().
 */
class IdeDriver : public Driver
{
  public:
    explicit IdeDriver(const IdeDriverParams &params = {})
        : params_(params)
    {}

    std::vector<MatchEntry>
    moduleDeviceTable() const override
    {
        return {{0x8086, 0x7111}};
    }

    void probe(Kernel &kernel, const EnumeratedFunction &fn) override;

    bool bound() const override { return probed_; }

    bool probed() const { return probed_; }

    /**
     * Read @p bytes from the disk (LBA 0 upward) into the DMA
     * buffer at @p buf_addr; @p done fires when the final command's
     * completion interrupt has been handled.
     */
    void read(Addr buf_addr, std::uint64_t bytes,
              std::function<void()> done);

    /** Number of DMA commands issued so far. */
    std::uint64_t commandsIssued() const { return commandsIssued_; }

  private:
    void issueCommand();
    void handleIrq();

    IdeDriverParams params_;
    Kernel *kernel_ = nullptr;
    bool probed_ = false;

    /** Resources discovered at probe time. */
    Addr cmdBase_ = 0;   //!< BAR0 (I/O)
    Addr ctrlBase_ = 0;  //!< BAR1 (I/O)
    Addr bmBase_ = 0;    //!< BAR4 (I/O)
    unsigned irqLine_ = 0;
    Addr prdAddr_ = 0;

    /** In-flight request state. */
    bool busy_ = false;
    /** ISR in progress: masks re-dispatch of the level-triggered
     *  line while the (asynchronous) MMIO chain of the handler is
     *  still clearing the interrupt condition. */
    bool irqInProgress_ = false;
    Addr bufAddr_ = 0;
    std::uint64_t bytesLeft_ = 0;
    std::uint32_t nextLba_ = 0;
    std::function<void()> onDone_;
    std::uint64_t commandsIssued_ = 0;
};

} // namespace pciesim

#endif // PCIESIM_OS_IDE_DRIVER_HH
