/**
 * @file
 * IDE bus-master DMA driver model: programs the disk's taskfile and
 * BMDMA registers over timed MMIO, builds PRD entries in kernel DMA
 * memory, and completes commands from the legacy interrupt handler.
 * Large requests are split into maximum-size (256-sector) commands,
 * as the block layer does.
 */

#ifndef PCIESIM_OS_IDE_DRIVER_HH
#define PCIESIM_OS_IDE_DRIVER_HH

#include <functional>

#include "dev/ide_disk.hh"
#include "os/aer_handler.hh"
#include "os/kernel.hh"

namespace pciesim
{

/** Configuration for an IdeDriver. */
struct IdeDriverParams
{
    /** Software time from completion interrupt to the next command
     *  being programmed (IRQ exit, block layer, queue restart). */
    Tick perCommandOverhead = nanoseconds(600);
    /**
     * Register the recovery stats (recoveries / lostRequests /
     * recoveryLatency). Set by AER-enabled topologies only, so
     * fault-free stats dumps stay bit-identical.
     */
    bool trackRecovery = false;
};

/**
 * The driver. Register it with the kernel before probeDrivers().
 * Also an AerRecoveryClient: on a surprise removal it loses the
 * in-flight command, and after the function reset it reprograms the
 * device and reissues that command, so the workload makes forward
 * progress across the fault (DESIGN.md §12).
 */
class IdeDriver : public Driver, public AerRecoveryClient
{
  public:
    explicit IdeDriver(const IdeDriverParams &params = {})
        : params_(params)
    {}

    std::vector<MatchEntry>
    moduleDeviceTable() const override
    {
        return {{0x8086, 0x7111}};
    }

    void probe(Kernel &kernel, const EnumeratedFunction &fn) override;

    bool bound() const override { return probed_; }

    bool probed() const { return probed_; }

    /**
     * Read @p bytes from the disk (LBA 0 upward) into the DMA
     * buffer at @p buf_addr; @p done fires when the final command's
     * completion interrupt has been handled.
     */
    void read(Addr buf_addr, std::uint64_t bytes,
              std::function<void()> done);

    /** Number of DMA commands issued so far. */
    std::uint64_t commandsIssued() const { return commandsIssued_; }

    /** @{ AerRecoveryClient. */
    void surpriseRemove(Bdf bdf) override;
    void resumeAfterReset(Bdf bdf) override;
    /** @} */

    /** @{ Recovery introspection (tests/benches). */
    std::uint64_t recoveries() const { return recoveries_.value(); }
    std::uint64_t lostRequests() const
    {
        return lostRequests_.value();
    }
    const stats::Histogram &recoveryLatency() const
    {
        return recoveryLatency_;
    }
    /** @} */

  private:
    void issueCommand();
    void handleIrq();

    IdeDriverParams params_;
    Kernel *kernel_ = nullptr;
    bool probed_ = false;
    Bdf bdf_{};

    /** Resources discovered at probe time. */
    Addr cmdBase_ = 0;   //!< BAR0 (I/O)
    Addr ctrlBase_ = 0;  //!< BAR1 (I/O)
    Addr bmBase_ = 0;    //!< BAR4 (I/O)
    unsigned irqLine_ = 0;
    Addr prdAddr_ = 0;

    /** In-flight request state. */
    bool busy_ = false;
    /** ISR in progress: masks re-dispatch of the level-triggered
     *  line while the (asynchronous) MMIO chain of the handler is
     *  still clearing the interrupt condition. */
    bool irqInProgress_ = false;
    Addr bufAddr_ = 0;
    std::uint64_t bytesLeft_ = 0;
    std::uint32_t nextLba_ = 0;
    std::function<void()> onDone_;
    std::uint64_t commandsIssued_ = 0;

    /** @{ In-flight command snapshot, for reissue after a surprise
     *  removal (captured by issueCommand before it advances). */
    Addr curCmdBuf_ = 0;
    std::uint64_t curCmdBytes_ = 0;
    std::uint32_t curCmdLba_ = 0;
    /** @} */
    /** Device surprise-removed; cleared by resumeAfterReset. */
    bool removed_ = false;
    Tick removedAt_ = 0;

    /** @{ Registered only when IdeDriverParams::trackRecovery. */
    stats::Counter recoveries_;
    stats::Counter lostRequests_;
    stats::Histogram recoveryLatency_;
    /** @} */
};

} // namespace pciesim

#endif // PCIESIM_OS_IDE_DRIVER_HH
