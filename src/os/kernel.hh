/**
 * @file
 * The kernel model: stands in for the Linux kernel the paper boots
 * in gem5. It owns the CPU-side master port for timed MMIO, runs
 * the PCI enumeration software, matches drivers through their
 * module device tables (paper Sec. IV), dispatches legacy
 * interrupts, and provides functional DRAM access plus a DMA-region
 * allocator for driver data structures (descriptor rings, PRDs).
 *
 * Software execution time is modelled explicitly: every MMIO access
 * carries a configurable issue latency, and drivers insert defer()
 * delays for their code paths. These latencies are the calibrated
 * stand-in for the paper's "OS overheads for setting up the
 * transfer" (Sec. VI-B).
 */

#ifndef PCIESIM_OS_KERNEL_HH
#define PCIESIM_OS_KERNEL_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "dev/int_controller.hh"
#include "mem/port.hh"
#include "mem/simple_memory.hh"
#include "pci/enumerator.hh"
#include "pci/pci_host.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

class Kernel;

/**
 * A device driver: advertises the vendor/device IDs it supports and
 * is probed for each matching enumerated function.
 */
class Driver
{
  public:
    struct MatchEntry
    {
        std::uint16_t vendorId;
        std::uint16_t deviceId;
    };

    virtual ~Driver() = default;

    /** The module device table (paper Sec. IV). */
    virtual std::vector<MatchEntry> moduleDeviceTable() const = 0;

    /** Called for each enumerated function that matches. */
    virtual void probe(Kernel &kernel,
                       const EnumeratedFunction &fn) = 0;

    /**
     * Whether this driver instance is already bound to a device.
     * One instance drives one device; register one instance per
     * expected device.
     */
    virtual bool bound() const = 0;
};

/** Configuration for a Kernel. */
struct KernelParams
{
    /** Software overhead per MMIO access (driver instructions,
     *  uncached-load issue). */
    Tick mmioIssueLatency = nanoseconds(40);
    /** Base of the DMA region handed to drivers. The region must
     *  hold the largest dd block (the paper sweeps up to 512 MB),
     *  so it spans 1 GB; the backing store is sparse, so unused
     *  space costs nothing. */
    Addr dmaRegionBase = 0x80100000ULL;
    Addr dmaRegionEnd = 0xC0100000ULL;
    /**
     * Completion timeout for the kernel's non-posted MMIO requests
     * (spec: requesters time out completions in the 50 us - 50 ms
     * range). 0 disables; then a dead endpoint hangs the MMIO
     * queue, as before. On timeout the op completes with all-ones
     * data (the abort pattern a real root complex returns) and the
     * late completion, if it ever arrives, is dropped.
     */
    Tick completionTimeout = 0;
};

/**
 * The kernel.
 */
class Kernel : public SimObject
{
  public:
    Kernel(Simulation &sim, const std::string &name, PciHost &host,
           IntController &gic, SimpleMemory &dram,
           const KernelParams &params = {});
    ~Kernel() override;

    /** CPU-side port; bind to a MemBus slave port. */
    MasterPort &cpuPort();

    void init() override;

    /** @{ Timed MMIO, one access outstanding at a time (uncached,
     *     strongly ordered, as device registers are mapped). */
    void mmioRead(Addr addr, unsigned size,
                  std::function<void(std::uint64_t)> done);
    void mmioWrite(Addr addr, unsigned size, std::uint64_t value,
                   std::function<void()> done);
    /** @} */

    /** @{ Functional configuration access (ECAM through PciHost). */
    std::uint32_t configRead(Bdf bdf, unsigned offset, unsigned size);
    void configWrite(Bdf bdf, unsigned offset, unsigned size,
                     std::uint32_t value);
    /** @} */

    /** @{ Functional DRAM access for driver data structures. */
    void memWriteBlob(Addr addr, const void *data, std::size_t len);
    void memReadBlob(Addr addr, void *data, std::size_t len);
    template <typename T>
    void
    memWrite(Addr addr, T v)
    {
        memWriteBlob(addr, &v, sizeof(T));
    }
    template <typename T>
    T
    memRead(Addr addr)
    {
        T v{};
        memReadBlob(addr, &v, sizeof(T));
        return v;
    }
    /** @} */

    /** Allocate DMA-able memory for rings / buffers / PRDs. */
    Addr allocDma(std::uint64_t size, std::uint64_t align = 64);

    /** Allocate an MSI vector number (distinct from INTx lines). */
    unsigned
    allocMsiVector()
    {
        return nextMsiVector_++;
    }

    /** Run the enumeration software; idempotent. */
    const Enumerator::Result &enumerate();

    /** Register a driver before calling probeDrivers(). */
    void registerDriver(Driver &driver);

    /** Probe all registered drivers against the enumeration. */
    void probeDrivers();

    /** Install a handler for a legacy interrupt line. */
    void registerIrqHandler(unsigned line, std::function<void()> fn);

    /** Run @p fn after @p delay (models software execution time). */
    void defer(Tick delay, std::function<void()> fn);

    /**
     * Platform hook fired when an MMIO operation is failed by the
     * completion timer (wired by AER-enabled topologies toward the
     * root port's error latch).
     */
    void
    setMmioTimeoutHook(std::function<void(bool is_read)> hook)
    {
        mmioTimeoutHook_ = std::move(hook);
    }

    PciHost &pciHost() { return host_; }
    SimpleMemory &dram() { return dram_; }

    /** Number of timed MMIO operations completed. */
    std::uint64_t mmioOps() const { return mmioOps_.value(); }

    /** Number of MMIO operations failed by the completion timer. */
    std::uint64_t
    completionTimeouts() const
    {
        return completionTimeouts_.value();
    }

    /** Timed-out MMIO *reads*, i.e. loads that returned the
     *  all-ones abort pattern to software. */
    std::uint64_t
    abortedReads() const
    {
        return abortedReads_.value();
    }

    /** MMIO issue-to-completion latency histogram (ticks). */
    const stats::Histogram &mmioLatency() const
    {
        return mmioLatency_;
    }

  private:
    class CpuPort;

    struct MmioOp
    {
        bool isRead;
        Addr addr;
        unsigned size;
        std::uint64_t value;
        std::function<void(std::uint64_t)> onRead;
        std::function<void()> onWrite;
    };

    void issueNextMmio();
    bool recvMmioResp(const PacketPtr &pkt);
    void mmioTimeoutFired();

    KernelParams params_;
    PciHost &host_;
    IntController &gic_;
    SimpleMemory &dram_;

    std::unique_ptr<CpuPort> cpuPort_;
    std::function<void(bool)> mmioTimeoutHook_;
    std::deque<MmioOp> mmioQueue_;
    bool mmioInFlight_ = false;
    bool mmioWaitingRetry_ = false;
    PacketPtr mmioPkt_;
    MemberEventWrapper<Kernel, &Kernel::issueNextMmio> mmioIssueEvent_;
    MemberEventWrapper<Kernel,
                       &Kernel::mmioTimeoutFired> mmioTimeoutEvent_;

    Addr dmaBrk_;
    unsigned nextMsiVector_ = 64;
    bool enumerated_ = false;
    Enumerator::Result enumResult_;
    std::vector<Driver *> drivers_;

    stats::Counter mmioOps_;
    stats::Counter irqsHandled_;
    stats::Counter completionTimeouts_;
    /** Registered only when a completion timeout is armed. */
    stats::Counter abortedReads_;
    stats::Histogram mmioLatency_;
};

} // namespace pciesim

#endif // PCIESIM_OS_KERNEL_HH
