#include "e1000e_driver.hh"

#include "pci/capability.hh"
#include "pci/config_regs.hh"
#include "sim/logging.hh"

namespace pciesim
{

void
E1000eDriver::probe(Kernel &kernel, const EnumeratedFunction &fn)
{
    kernel_ = &kernel;
    bound_ = true;
    panicIf(fn.bars.empty() || fn.bars[0].empty(),
            "e1000e probe: BAR0 was not assigned");
    mmioBase_ = fn.bars[0].start();
    irqLine_ = fn.irqLine;
    bdf_ = fn.bdf;

    if (params_.trackRecovery) {
        auto &reg = kernel.statsRegistry();
        reg.add("system.e1000eDriver.recoveries", &recoveries_,
                "frames retransmitted after a surprise removal");
        reg.add("system.e1000eDriver.lostRequests", &lostRequests_,
                "in-flight frames lost to surprise removals");
    }

    // Interrupt setup, the way pci_enable_msix()/pci_enable_msi()
    // behave: write the enable bit, read it back; the device
    // hard-wires it to zero (paper Sec. IV), so fall back to INTx.
    PciFunction *dev = kernel.pciHost().lookup(fn.bdf);
    panicIf(dev == nullptr, "e1000e probe: function vanished");

    unsigned msix = CapabilityWalker::find(dev->config(),
                                           cfg::capIdMsix);
    if (msix != 0) {
        std::uint32_t ctrl = kernel.configRead(fn.bdf, msix + 2, 2);
        kernel.configWrite(fn.bdf, msix + 2, 2, ctrl | 0x8000);
        std::uint32_t rb = kernel.configRead(fn.bdf, msix + 2, 2);
        sawMsixDisabled_ = (rb & 0x8000) == 0;
    }
    unsigned msi = CapabilityWalker::find(dev->config(),
                                          cfg::capIdMsi);
    if (msi != 0) {
        std::uint32_t ctrl = kernel.configRead(fn.bdf, msi + 2, 2);
        kernel.configWrite(fn.bdf, msi + 2, 2, ctrl | 0x0001);
        std::uint32_t rb = kernel.configRead(fn.bdf, msi + 2, 2);
        sawMsiDisabled_ = (rb & 0x0001) == 0;
    }

    if (params_.preferMsi && msi != 0 && !sawMsiDisabled_) {
        // MSI available: program the message address and data, and
        // take completions as in-band message TLPs.
        unsigned vector = kernel.allocMsiVector();
        kernel.configWrite(fn.bdf, msi + 4, 4,
                           params_.msiAddress & 0xffffffff);
        kernel.configWrite(fn.bdf, msi + 8, 4,
                           params_.msiAddress >> 32);
        kernel.configWrite(fn.bdf, msi + 12, 2, vector);
        usingMsi_ = true;
        usingLegacyIrq_ = false;
        kernel.registerIrqHandler(vector, [this] { handleIrq(); });
    } else {
        if (msi != 0 && !sawMsiDisabled_) {
            // Tested writable but INTx preferred: disable again.
            std::uint32_t ctrl =
                kernel.configRead(fn.bdf, msi + 2, 2);
            kernel.configWrite(fn.bdf, msi + 2, 2, ctrl & ~0x0001u);
        }
        usingLegacyIrq_ = sawMsiDisabled_ && sawMsixDisabled_;
        kernel.registerIrqHandler(irqLine_, [this] { handleIrq(); });
    }

    // Allocate rings and buffers in DMA memory.
    txRing_ = kernel.allocDma(params_.txRingSize * nicreg::descSize,
                              128);
    rxRing_ = kernel.allocDma(params_.rxRingSize * nicreg::descSize,
                              128);
    txBuf_ = kernel.allocDma(16384, 64);
    rxBufs_ = kernel.allocDma(
        static_cast<std::uint64_t>(params_.rxRingSize) *
            params_.rxBufferSize, 64);

    configureMac();
}

void
E1000eDriver::configureMac()
{
    Kernel &k = *kernel_;
    // Reset the MAC and wait for the reset bit to clear.
    k.mmioWrite(mmioBase_ + nicreg::ctrl, 4, nicreg::ctrlRst, [] {});
    k.mmioRead(mmioBase_ + nicreg::ctrl, 4, [this,
                                             &k](std::uint64_t) {
        // Read the MAC address from the EEPROM (3 words).
        auto read_word = [this, &k](unsigned addr,
                                    std::function<void(std::uint16_t)>
                                        cb) {
            k.mmioWrite(mmioBase_ + nicreg::eerd, 4,
                        nicreg::eerdStart | (addr << 8), [] {});
            k.mmioRead(mmioBase_ + nicreg::eerd, 4,
                       [cb](std::uint64_t v) {
                cb(static_cast<std::uint16_t>(v >> 16));
            });
        };
        read_word(0, [this, read_word](std::uint16_t w0) {
            mac_ = w0;
            read_word(1, [this, read_word](std::uint16_t w1) {
                mac_ |= static_cast<std::uint64_t>(w1) << 16;
                read_word(2, [this](std::uint16_t w2) {
                    mac_ |= static_cast<std::uint64_t>(w2) << 32;

                    Kernel &k = *kernel_;
                    // Check link state, program rings, enable.
                    k.mmioRead(mmioBase_ + nicreg::status, 4,
                               [this](std::uint64_t s) {
                        linkUp_ = (s & nicreg::statusLu) != 0;
                    });
                    k.mmioWrite(mmioBase_ + nicreg::tdbal, 4,
                                txRing_ & 0xffffffff, [] {});
                    k.mmioWrite(mmioBase_ + nicreg::tdbah, 4,
                                txRing_ >> 32, [] {});
                    k.mmioWrite(mmioBase_ + nicreg::tdlen, 4,
                                params_.txRingSize * nicreg::descSize,
                                [] {});
                    k.mmioWrite(mmioBase_ + nicreg::tdh, 4, 0, [] {});
                    k.mmioWrite(mmioBase_ + nicreg::tdt, 4, 0, [] {});
                    k.mmioWrite(mmioBase_ + nicreg::rdbal, 4,
                                rxRing_ & 0xffffffff, [] {});
                    k.mmioWrite(mmioBase_ + nicreg::rdbah, 4,
                                rxRing_ >> 32, [] {});
                    k.mmioWrite(mmioBase_ + nicreg::rdlen, 4,
                                params_.rxRingSize * nicreg::descSize,
                                [] {});
                    k.mmioWrite(mmioBase_ + nicreg::rdh, 4, 0, [] {});

                    replenishRx();

                    k.mmioWrite(mmioBase_ + nicreg::ims, 4,
                                nicreg::icrTxdw | nicreg::icrRxt0,
                                [] {});
                    k.mmioWrite(mmioBase_ + nicreg::tctl, 4,
                                nicreg::ctlEn, [] {});
                    k.mmioWrite(mmioBase_ + nicreg::rctl, 4,
                                nicreg::ctlEn, [this] {
                        probed_ = true;
                        inform("e1000e: probe complete, legacy irq ",
                               irqLine_);
                        if (onReady_) {
                            auto cb = std::move(onReady_);
                            onReady_ = nullptr;
                            cb();
                        }
                    });
                });
            });
        });
    });
}

void
E1000eDriver::replenishRx()
{
    // Fill every RX descriptor but one (head == tail means empty),
    // writing the buffer addresses functionally into the ring.
    Kernel &k = *kernel_;
    unsigned fill = params_.rxRingSize - 1;
    for (unsigned i = 0; i < fill; ++i) {
        Addr desc = rxRing_ + static_cast<Addr>(i) * nicreg::descSize;
        std::uint64_t buf =
            rxBufs_ + static_cast<Addr>(i) * params_.rxBufferSize;
        k.memWrite<std::uint64_t>(desc, buf);
        k.memWrite<std::uint64_t>(desc + 8, 0);
    }
    rxTail_ = fill;
    k.mmioWrite(mmioBase_ + nicreg::rdt, 4, rxTail_, [] {});
}

void
E1000eDriver::sendFrame(unsigned len, std::function<void()> done)
{
    panicIf(!probed_, "e1000e send before probe completed");
    Kernel &k = *kernel_;

    // Build a legacy TX descriptor at the tail (functional ring
    // write), then ring the doorbell with a timed MMIO write.
    Addr desc = txRing_ + static_cast<Addr>(txTail_) *
                              nicreg::descSize;
    std::uint64_t d0 = txBuf_;
    std::uint64_t d1 =
        static_cast<std::uint64_t>(len & 0xffff) |
        (static_cast<std::uint64_t>(nicreg::txCmdEop |
                                    nicreg::txCmdRs) << 24);
    k.memWrite<std::uint64_t>(desc, d0);
    k.memWrite<std::uint64_t>(desc + 8, d1);

    txTail_ = (txTail_ + 1) % params_.txRingSize;
    txDone_.push_back(std::move(done));
    txLens_.push_back(len);
    ++framesSent_;
    k.mmioWrite(mmioBase_ + nicreg::tdt, 4, txTail_, [] {});
}

void
E1000eDriver::surpriseRemove(Bdf bdf)
{
    if (bdf != bdf_ || removed_)
        return;
    removed_ = true;
    lostRequests_ += static_cast<std::uint64_t>(txDone_.size());
    inform("e1000e: NIC ", bdf.toString(), " surprise-removed with ",
           txDone_.size(), " frames in flight");
}

void
E1000eDriver::resumeAfterReset(Bdf bdf)
{
    if (bdf != bdf_ || !removed_)
        return;
    removed_ = false;

    // The reset device comes back with empty rings: rewind the
    // software indices, reinitialise the MAC (the same sequence as
    // probe; onReady_ is already spent so it will not re-fire), and
    // retransmit the frames whose completions were lost.
    std::deque<std::function<void()>> pending_done;
    std::deque<unsigned> pending_lens;
    pending_done.swap(txDone_);
    pending_lens.swap(txLens_);
    txTail_ = 0;
    txHeadSw_ = 0;
    rxTail_ = 0;
    rxHeadSw_ = 0;

    recoveries_ += static_cast<std::uint64_t>(pending_done.size());
    inform("e1000e: resuming after reset of ", bdf.toString(),
           ", retransmitting ", pending_done.size(), " frames");

    setOnReady([this, pending_done = std::move(pending_done),
                pending_lens = std::move(pending_lens)]() mutable {
        while (!pending_done.empty()) {
            sendFrame(pending_lens.front(),
                      std::move(pending_done.front()));
            pending_lens.pop_front();
            pending_done.pop_front();
        }
    });
    configureMac();
}

void
E1000eDriver::handleIrq()
{
    if (removed_)
        return;
    Kernel &k = *kernel_;
    // Read ICR (clears causes and deasserts INTx).
    k.mmioRead(mmioBase_ + nicreg::icr, 4, [this,
                                            &k](std::uint64_t icr) {
        if (icr & nicreg::icrTxdw) {
            // Reclaim completed TX descriptors by their DD bits.
            while (!txDone_.empty()) {
                Addr desc = txRing_ + static_cast<Addr>(txHeadSw_) *
                                          nicreg::descSize;
                std::uint8_t sta =
                    kernel_->memRead<std::uint8_t>(desc + 12);
                if (!(sta & nicreg::staDd))
                    break;
                kernel_->memWrite<std::uint8_t>(desc + 12, 0);
                txHeadSw_ = (txHeadSw_ + 1) % params_.txRingSize;
                auto cb = std::move(txDone_.front());
                txDone_.pop_front();
                txLens_.pop_front();
                if (cb)
                    cb();
            }
        }
        if (icr & nicreg::icrRxt0) {
            // Harvest received frames by their DD status bits.
            while (true) {
                Addr desc = rxRing_ + static_cast<Addr>(rxHeadSw_) *
                                          nicreg::descSize;
                std::uint8_t sta =
                    kernel_->memRead<std::uint8_t>(desc + 12);
                if (!(sta & nicreg::staDd))
                    break;
                std::uint16_t len =
                    kernel_->memRead<std::uint16_t>(desc + 8);
                kernel_->memWrite<std::uint8_t>(desc + 12, 0);
                rxHeadSw_ = (rxHeadSw_ + 1) % params_.rxRingSize;
                ++framesReceived_;
                if (onReceive_)
                    onReceive_(len);
            }
            // Return the harvested descriptors to the hardware.
            unsigned new_tail =
                (rxHeadSw_ + params_.rxRingSize - 1) %
                params_.rxRingSize;
            if (new_tail != rxTail_) {
                rxTail_ = new_tail;
                k.mmioWrite(mmioBase_ + nicreg::rdt, 4, rxTail_,
                            [] {});
            }
        }
    });
}

} // namespace pciesim
