/**
 * @file
 * Minimal hot-path hooks for parallel execution (DESIGN.md §10).
 *
 * This header exists so performance-critical headers (packet.hh,
 * simulation.hh) can test whether the parallel engine is running
 * without pulling in the engine itself. The contract:
 *
 *  - par::engineActive is written by ParallelEngine only on the
 *    main thread, strictly before worker threads are spawned and
 *    strictly after they are joined. Thread creation/join provides
 *    the happens-before edge, so workers read a stable value and a
 *    plain bool is race-free.
 *  - With no engine (every legacy single-queue run) the flag is
 *    permanently false and each guarded path costs one predictable
 *    branch — the same budget as the tracing and profiler gates.
 */

#ifndef PCIESIM_SIM_PARALLEL_MODE_HH
#define PCIESIM_SIM_PARALLEL_MODE_HH

#include <cstdint>

namespace pciesim
{
class EventQueue;
} // namespace pciesim

namespace pciesim::par
{

/** True only while ParallelEngine::run() is executing windows. */
extern bool engineActive;

/** The event queue of the domain this thread is executing, or null
 *  outside a worker's window (set by the engine; thread local). */
EventQueue *currentQueue();

/**
 * Deterministic packet id in parallel mode: the domain id in the
 * top bits over a per-domain serial. Ids depend on which domain
 * allocates, never on thread interleaving, so any thread count
 * produces the same ids (they differ from the single-queue global
 * numbering; ids appear only in toString() and trace labels).
 */
std::uint64_t domainPacketId();

} // namespace pciesim::par

#endif // PCIESIM_SIM_PARALLEL_MODE_HH
