/**
 * @file
 * Top-level simulation context: owns the event queue, the stats
 * registry, and the list of simulation objects.
 */

#ifndef PCIESIM_SIM_SIMULATION_HH
#define PCIESIM_SIM_SIMULATION_HH

#include <memory>
#include <string>
#include <vector>

#include "event_queue.hh"
#include "stats.hh"
#include "ticks.hh"

namespace pciesim
{

class SimObject;

/**
 * A complete simulation instance.
 *
 * Components are constructed against a Simulation, wired together
 * through their ports, and then driven by run()/runFor(). Simulation
 * does not own SimObjects by default (they are usually members of a
 * System struct); own() can adopt heap-allocated helpers.
 */
class Simulation
{
  public:
    Simulation();
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &eventq() { return eventq_; }
    const EventQueue &eventq() const { return eventq_; }
    stats::Registry &statsRegistry() { return stats_; }

    Tick curTick() const { return eventq_.curTick(); }

    /** Called by the SimObject constructor. */
    void registerObject(SimObject *obj);

    /** Adopt ownership of a heap-allocated object. */
    template <typename T>
    T *
    own(std::unique_ptr<T> obj)
    {
        T *raw = obj.get();
        owned_.emplace_back(std::move(obj));
        return raw;
    }

    /** Run init()/startup() phases once; implied by run(). */
    void initialize();

    /** Run until the event queue drains or @p max_tick passes. */
    Tick run(Tick max_tick = maxTick);

    /** Run for a further @p duration ticks. */
    Tick runFor(Tick duration);

  private:
    EventQueue eventq_;
    stats::Registry stats_;
    std::vector<SimObject *> objects_;
    std::vector<std::unique_ptr<SimObject>> owned_;
    bool initialized_ = false;
};

} // namespace pciesim

#endif // PCIESIM_SIM_SIMULATION_HH
