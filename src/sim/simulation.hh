/**
 * @file
 * Top-level simulation context: owns the event queue(s), the stats
 * registry, and the list of simulation objects.
 */

#ifndef PCIESIM_SIM_SIMULATION_HH
#define PCIESIM_SIM_SIMULATION_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "event_queue.hh"
#include "parallel_mode.hh"
#include "stats.hh"
#include "ticks.hh"

namespace pciesim
{

class ParallelEngine;
class SimObject;

/**
 * A complete simulation instance.
 *
 * Components are constructed against a Simulation, wired together
 * through their ports, and then driven by run()/runFor(). Simulation
 * does not own SimObjects by default (they are usually members of a
 * System struct); own() can adopt heap-allocated helpers.
 *
 * Parallel mode (DESIGN.md §10): a topology may partition itself
 * into link domains at build time — addDomain() creates one event
 * queue per extra domain and DomainScope binds the objects
 * constructed inside it to that domain's queue. setupParallel()
 * then attaches a quantum-synchronized engine; run() drives all
 * domains through it. With no extra domains (the default, and the
 * --threads 1 collapse) everything below is byte-for-byte the
 * original single-queue behavior.
 */
class Simulation
{
  public:
    Simulation();
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** The default (domain 0) event queue. */
    EventQueue &eventq() { return eventq_; }
    const EventQueue &eventq() const { return eventq_; }
    stats::Registry &statsRegistry() { return stats_; }

    /**
     * Current simulated time. Inside a parallel window this is the
     * executing domain's local tick; outside any window all queues
     * agree (the engine clamps them together at the end of every
     * run), so domain 0 speaks for the simulation.
     */
    Tick
    curTick() const
    {
        if (par::engineActive) [[unlikely]] {
            if (const EventQueue *q = par::currentQueue())
                return q->curTick();
        }
        return eventq_.curTick();
    }

    /** Called by the SimObject constructor. */
    void registerObject(SimObject *obj);

    /** Adopt ownership of a heap-allocated object. */
    template <typename T>
    T *
    own(std::unique_ptr<T> obj)
    {
        T *raw = obj.get();
        owned_.emplace_back(std::move(obj));
        return raw;
    }

    /** @{
     * Domain partitioning (build time, before initialize()).
     */

    /**
     * Create a new link domain with its own event queue and return
     * its id. The first call also flips domain 0's queue to keyed
     * tiebreak mode so same-tick ordering is thread-count
     * independent across the whole fabric. @p label names the
     * domain in telemetry output (stats Vector subnames, Perfetto
     * tracks, pciesim-report imbalance); empty keeps the default
     * "domain<id>".
     */
    unsigned addDomain(const std::string &label = "");

    /** Telemetry label of domain @p d ("host" for domain 0 unless
     *  overridden). */
    const std::string &domainLabel(unsigned d) const;

    /** Number of domains (1 == unpartitioned legacy simulation). */
    unsigned numDomains() const
    {
        return 1 + static_cast<unsigned>(extraQueues_.size());
    }

    /** The event queue of domain @p d. */
    EventQueue &domainQueue(unsigned d);

    /** Domain that newly constructed SimObjects bind to. */
    unsigned buildDomain() const { return buildDomain_; }

    /**
     * RAII guard binding SimObjects constructed in its scope to a
     * given domain. Wrapping an existing construction statement in
     * a scope for domain 0 is a strict no-op, so topologies can
     * partition without reordering construction (stats registration
     * order, and with it stats.json, stays identical).
     */
    class DomainScope
    {
      public:
        DomainScope(Simulation &sim, unsigned domain)
            : sim_(sim), prev_(sim.buildDomain_)
        {
            sim.buildDomain_ = domain;
        }

        ~DomainScope() { sim_.buildDomain_ = prev_; }

        DomainScope(const DomainScope &) = delete;
        DomainScope &operator=(const DomainScope &) = delete;

      private:
        Simulation &sim_;
        unsigned prev_;
    };

    /**
     * Attach the parallel engine: @p threads workers advancing all
     * domains in windows of @p quantum ticks (the minimum
     * cross-domain link flight latency). Requires >= 2 domains.
     * Also registers the engine's per-domain telemetry block
     * ("system.parallel.*", DESIGN.md §14) with the stats registry,
     * using the labels given to addDomain().
     */
    void setupParallel(unsigned threads, Tick quantum);

    /** The attached engine, or null (legacy single-queue run). */
    ParallelEngine *engine() { return engine_.get(); }

    /**
     * Run @p fn at tick @p when on domain @p d's queue. From a
     * foreign domain mid-window this is mailboxed through the
     * engine ((when - now) must be >= the quantum); otherwise it
     * schedules directly. Used for cross-domain side effects that
     * are not packets (e.g. INTx wire-or toward the host GIC).
     */
    void callAt(unsigned d, Tick when, std::function<void()> fn);

    /** Total events processed across every domain queue. */
    std::uint64_t eventsProcessed() const;
    /** @} */

    /** Run init()/startup() phases once; implied by run(). */
    void initialize();

    /** Run until the event queue drains or @p max_tick passes. */
    Tick run(Tick max_tick = maxTick);

    /** Run for a further @p duration ticks. */
    Tick runFor(Tick duration);

  private:
    EventQueue eventq_;
    std::vector<std::unique_ptr<EventQueue>> extraQueues_;
    /** Index == domain id; [0] defaults to "host". */
    std::vector<std::string> domainLabels_;
    std::unique_ptr<ParallelEngine> engine_;
    unsigned buildDomain_ = 0;
    stats::Registry stats_;
    std::vector<SimObject *> objects_;
    std::vector<std::unique_ptr<SimObject>> owned_;
    bool initialized_ = false;
};

} // namespace pciesim

#endif // PCIESIM_SIM_SIMULATION_HH
