#include "profiler.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <map>
#include <unordered_map>

#include "event.hh"
#include "logging.hh"

namespace pciesim::prof
{

bool enabledFlag = false;

namespace
{

/** Per-name accumulator, keyed by interned name pointer. */
struct Rec
{
    std::uint64_t count = 0;
    std::uint64_t sampled = 0;
    std::uint64_t sampledNs = 0;
};

struct State
{
    std::unordered_map<const char *, Rec> recs;
    std::uint64_t samplePeriod = 64;
    std::uint64_t total = 0;
    bool reportTimes = true;
};

// Immortal, like the trace sink registry: events may still be
// profiled from atexit-ordered teardown paths.
State &
state()
{
    // pciesim-analyze: single-threaded: configured before the
    // parallel engine starts; workers use their own domain State.
    static State *s = new State;
    return *s;
}

// One accumulator per link domain in parallel runs; the engine
// binds a domain's State to its worker thread for the duration of
// that domain's window, keeping profileProcess() lock-free.
std::vector<State *> &
domainStates()
{
    // pciesim-analyze: single-threaded: grown by
    // configureDomains() before workers start, read-only after.
    static auto *v = new std::vector<State *>;
    return *v;
}

thread_local State *tlsState = nullptr;

/** Run @p fn over the base state and every domain state. */
template <typename Fn>
void
forEachState(Fn fn)
{
    fn(state());
    for (State *s : domainStates())
        fn(*s);
}

/** Merge the pointer-keyed recs by name content, hottest first. */
std::vector<HotSpot>
mergedSpots()
{
    std::map<std::string, HotSpot> byName;
    forEachState([&](const State &st) {
        // pciesim-analyze: ignore[unordered-emit]: merged into the
        // ordered std::map above before anything is emitted.
        for (const auto &[name, r] : st.recs) {
            HotSpot &h = byName[name ? name : ""];
            h.name = name ? name : "";
            h.count += r.count;
            h.sampled += r.sampled;
            h.sampledNs += state().reportTimes ? r.sampledNs : 0;
        }
    });
    std::vector<HotSpot> out;
    out.reserve(byName.size());
    for (auto &[name, h] : byName) {
        (void)name;
        out.push_back(std::move(h));
    }
    std::sort(out.begin(), out.end(),
              [](const HotSpot &a, const HotSpot &b) {
                  if (a.estMs() != b.estMs())
                      return a.estMs() > b.estMs();
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.name < b.name;
              });
    return out;
}

} // namespace

double
HotSpot::estMs() const
{
    if (sampled == 0)
        return 0.0;
    double scale = static_cast<double>(count) /
                   static_cast<double>(sampled);
    return static_cast<double>(sampledNs) * scale / 1e6;
}

double
HotSpot::avgNs() const
{
    if (sampled == 0)
        return 0.0;
    return static_cast<double>(sampledNs) /
           static_cast<double>(sampled);
}

void
setEnabled(bool on)
{
    if (on && !compiledIn) {
        warn("profiler: this build was compiled with "
             "PCIESIM_PROFILING=0; profiling stays disabled");
        return;
    }
    enabledFlag = on;
}

void
setSamplePeriod(std::uint64_t period)
{
    fatalIf(period == 0, "profiler sample period must be >= 1");
    forEachState([&](State &st) { st.samplePeriod = period; });
}

void
setReportTimes(bool on)
{
    forEachState([&](State &st) { st.reportTimes = on; });
}

bool
reportTimes()
{
    return state().reportTimes;
}

void
reset()
{
    forEachState([](State &st) {
        st.recs.clear();
        st.total = 0;
    });
}

std::uint64_t
totalEvents()
{
    std::uint64_t n = 0;
    forEachState([&](const State &st) { n += st.total; });
    return n;
}

std::uint64_t
attributedEvents()
{
    std::uint64_t n = 0;
    forEachState([&](const State &st) {
        // pciesim-analyze: ignore[unordered-emit]: commutative sum;
        // the result is independent of iteration order.
        for (const auto &[name, r] : st.recs) {
            if (name != nullptr && *name != '\0')
                n += r.count;
        }
    });
    return n;
}

void
configureDomains(unsigned n)
{
    auto &doms = domainStates();
    while (doms.size() < n) {
        State *s = new State;
        s->samplePeriod = state().samplePeriod;
        s->reportTimes = state().reportTimes;
        doms.push_back(s);
    }
}

void
enterDomain(unsigned d)
{
    tlsState = domainStates()[d];
}

void
leaveDomain()
{
    tlsState = nullptr;
}

std::vector<HotSpot>
hotSpots()
{
    return mergedSpots();
}

std::vector<HotSpot>
byOwner()
{
    std::map<std::string, HotSpot> owners;
    for (const HotSpot &h : mergedSpots()) {
        std::size_t dot = h.name.rfind('.');
        std::string owner =
            dot == std::string::npos ? h.name : h.name.substr(0, dot);
        HotSpot &o = owners[owner];
        o.name = owner;
        o.count += h.count;
        o.sampled += h.sampled;
        o.sampledNs += h.sampledNs;
    }
    std::vector<HotSpot> out;
    out.reserve(owners.size());
    for (auto &[name, h] : owners) {
        (void)name;
        out.push_back(std::move(h));
    }
    std::sort(out.begin(), out.end(),
              [](const HotSpot &a, const HotSpot &b) {
                  if (a.estMs() != b.estMs())
                      return a.estMs() > b.estMs();
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.name < b.name;
              });
    return out;
}

void
dumpTable(std::ostream &os, std::size_t top_n)
{
    std::vector<HotSpot> spots = mergedSpots();
    os << "---------- Profiler: top event types by host time "
          "----------\n";
    os << std::right << std::setw(4) << "rank" << std::setw(12)
       << "events" << std::setw(12) << "est_ms" << std::setw(10)
       << "avg_ns" << "  name\n";
    std::size_t shown = 0;
    for (const HotSpot &h : spots) {
        if (shown++ == top_n)
            break;
        os << std::right << std::setw(4) << shown << std::setw(12)
           << h.count << std::setw(12) << std::fixed
           << std::setprecision(3) << h.estMs() << std::setw(10)
           << std::setprecision(1) << h.avgNs() << "  " << h.name
           << "\n";
        os.unsetf(std::ios::fixed);
    }
    std::uint64_t total = totalEvents();
    double attributed =
        total ? 100.0 * static_cast<double>(attributedEvents()) /
                    static_cast<double>(total)
              : 0.0;
    os << " events profiled: " << total << " across " << spots.size()
       << " event types (" << std::fixed << std::setprecision(1)
       << attributed << "% attributed)\n";
    os.unsetf(std::ios::fixed);
}

void
writeJson(std::ostream &os, std::size_t top_n)
{
    std::vector<HotSpot> spots = mergedSpots();
    os << "[";
    std::size_t shown = 0;
    for (const HotSpot &h : spots) {
        if (shown == top_n)
            break;
        os << (shown++ ? ",\n    " : "\n    ");
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", h.estMs());
        os << "{\"name\": \"" << h.name << "\", \"count\": "
           << h.count << ", \"sampled\": " << h.sampled
           << ", \"estMs\": " << buf << "}";
    }
    os << (shown ? "\n  ]" : "]");
}

void
profileProcess(Event *event)
{
    // pciesim-analyze: ignore[wall-clock]: sanctioned 1-in-N host
    // time subsample; it never feeds simulated time, and stats
    // dumps zero it under setReportTimes(false) so the
    // determinism gates stay byte-identical.
    using Clock = std::chrono::steady_clock;
    State &st = tlsState ? *tlsState : state();
    const char *name = event->name();

    // Decide 1-in-N timing from the pre-increment count, but defer
    // the map update until after process(): a nested run() (or any
    // reentrant profiling) could rehash the table under a held
    // reference.
    auto it = st.recs.find(name);
    std::uint64_t cnt = it == st.recs.end() ? 0 : it->second.count;
    bool timed = cnt % st.samplePeriod == 0;

    std::uint64_t ns = 0;
    if (timed) {
        Clock::time_point t0 = Clock::now();
        event->process();
        ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
    } else {
        event->process();
    }

    Rec &r = st.recs[name];
    ++r.count;
    ++st.total;
    if (timed) {
        ++r.sampled;
        r.sampledNs += ns;
    }
}

} // namespace pciesim::prof
