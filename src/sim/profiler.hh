/**
 * @file
 * Host-side event profiler: where does the *simulator* spend wall
 * time?
 *
 * PR 4's tracing answers "where do simulated packets go"; this layer
 * answers the complementary question for the host, in the spirit of
 * MGSim's built-in per-component profiling. EventQueue::step()
 * attributes every serviced event to its interned name (and, by the
 * "owner.event" naming convention, to its owning SimObject), counting
 * all of them and timing a deterministic 1-in-N subsample with
 * steady_clock to bound overhead. Total per-name host time is then
 * estimated by scaling the sampled time by count/sampled.
 *
 * Like tracing, the whole layer compiles out of the hot path under
 * PCIESIM_PROFILING=0 (the notrace preset); with it compiled in but
 * disabled, the cost is a single predictable branch per event.
 *
 * Counts are exact and deterministic; only the nanosecond fields are
 * wall-clock noisy. Consumers that need byte-stable output (the
 * determinism ctests) zero the time fields via setReportTimes(false).
 */

#ifndef PCIESIM_SIM_PROFILER_HH
#define PCIESIM_SIM_PROFILER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

// Compile-time master switch mirroring PCIESIM_TRACING: 0 removes
// the EventQueue::step() hook (CMake option PCIESIM_PROFILING).
#ifndef PCIESIM_PROFILING
#define PCIESIM_PROFILING 1
#endif

namespace pciesim
{
class Event;
} // namespace pciesim

namespace pciesim::prof
{

/** Whether this build carries the profiler hook at all. */
inline constexpr bool compiledIn = PCIESIM_PROFILING != 0;

/**
 * The hot-path gate, read directly by EventQueue::step(). Never
 * true in builds without the hook; set through setEnabled().
 */
extern bool enabledFlag;

/** Aggregated host-time attribution for one event name. */
struct HotSpot
{
    std::string name;        ///< interned event name ("owner.event")
    std::uint64_t count;     ///< exact number of invocations
    std::uint64_t sampled;   ///< invocations actually timed
    std::uint64_t sampledNs; ///< wall ns across timed invocations

    /** Estimated total host ms: sampled time scaled to all calls. */
    double estMs() const;

    /** Estimated mean host ns per invocation. */
    double avgNs() const;
};

/**
 * Enable or disable profiling. Enabling in a build compiled with
 * PCIESIM_PROFILING=0 warns and stays disabled.
 */
void setEnabled(bool on);

inline bool enabled() { return enabledFlag; }

/** Time one in @p period invocations per event name (default 64). */
void setSamplePeriod(std::uint64_t period);

/**
 * Whether reports include wall-time estimates. Off zeroes every
 * time field (counts stay exact) so output is byte-deterministic —
 * used by the bench harness under --no-timing.
 */
void setReportTimes(bool on);
bool reportTimes();

/** Forget all accumulated attribution. */
void reset();

/** Total events profiled since the last reset(). */
std::uint64_t totalEvents();

/** Events attributed to a non-empty event name. */
std::uint64_t attributedEvents();

/**
 * Per-name attribution merged across translation units (names are
 * compared by content, not pointer), sorted hottest first: by
 * estimated time, then count, then name — which degrades to a
 * deterministic count ordering when times are suppressed.
 */
std::vector<HotSpot> hotSpots();

/** hotSpots() re-aggregated by owner (the name up to the last '.'). */
std::vector<HotSpot> byOwner();

/** Human-readable top-N table (events and owners). */
void dumpTable(std::ostream &os, std::size_t top_n = 10);

/**
 * The top-N hot spots as one JSON array value (no trailing
 * newline), for embedding under a "profiler" key in stats.json and
 * bench records.
 */
void writeJson(std::ostream &os, std::size_t top_n);

/**
 * Service @p event under the profiler: count it, time it if its
 * name's 1-in-N sampler fires, then run process(). Called from
 * EventQueue::step() only while enabledFlag is set.
 */
void profileProcess(Event *event);

/** @{
 * Shard-awareness for parallel runs (DESIGN.md §10): the engine
 * gives every domain its own accumulator and binds it to the
 * worker's thread while that domain's window runs, so the hot path
 * stays lock-free. All reporting entry points above aggregate the
 * base accumulator plus every domain, merged by name content —
 * counts are exact and thread-count independent. Note the per-name
 * 1-in-N *timing subsample* is taken per domain, so sampled/estMs
 * may differ from an unpartitioned run (counts never do).
 */

/** Ensure @p n per-domain accumulators exist (engine start). */
void configureDomains(unsigned n);

/** Bind domain @p d's accumulator to this thread. */
void enterDomain(unsigned d);

/** Unbind this thread's accumulator. */
void leaveDomain();
/** @} */

} // namespace pciesim::prof

#endif // PCIESIM_SIM_PROFILER_HH
