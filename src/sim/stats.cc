#include "stats.hh"

#include <algorithm>
#include <iomanip>

#include "logging.hh"

namespace pciesim::stats
{

void
Distribution::init(double min, double max, std::size_t buckets)
{
    panicIf(buckets == 0, "distribution needs at least one bucket");
    panicIf(max <= min, "distribution max must exceed min");
    bucketMin_ = min;
    bucketMax_ = max;
    buckets_.assign(buckets, 0);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (samples_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    samples_ += count;
    sum_ += v * static_cast<double>(count);

    if (!buckets_.empty()) {
        double span = bucketMax_ - bucketMin_;
        double pos = (v - bucketMin_) / span *
                     static_cast<double>(buckets_.size());
        auto idx = static_cast<std::ptrdiff_t>(pos);
        idx = std::clamp<std::ptrdiff_t>(
            idx, 0, static_cast<std::ptrdiff_t>(buckets_.size()) - 1);
        buckets_[static_cast<std::size_t>(idx)] += count;
    }
}

double
Distribution::mean() const
{
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

namespace
{

unsigned
log2Floor(std::uint64_t v)
{
#if defined(__GNUC__)
    return 63u - static_cast<unsigned>(__builtin_clzll(v));
#else
    unsigned e = 0;
    while (v >>= 1)
        ++e;
    return e;
#endif
}

} // namespace

std::size_t
Histogram::bucketIndex(std::uint64_t v)
{
    if (v < (1ull << subBucketBits_))
        return static_cast<std::size_t>(v);
    unsigned exp = log2Floor(v);
    std::uint64_t sub = (v >> (exp - subBucketBits_)) &
                        ((1ull << subBucketBits_) - 1);
    return ((exp - subBucketBits_ + 1u) << subBucketBits_) +
           static_cast<std::size_t>(sub);
}

std::uint64_t
Histogram::bucketMidpoint(std::size_t idx)
{
    if (idx < (1u << subBucketBits_))
        return idx;
    unsigned block = static_cast<unsigned>(idx >> subBucketBits_);
    std::uint64_t sub = idx & ((1u << subBucketBits_) - 1);
    unsigned exp = block + subBucketBits_ - 1;
    std::uint64_t width = 1ull << (exp - subBucketBits_);
    std::uint64_t low = (1ull << exp) + sub * width;
    return low + (width >> 1);
}

void
Histogram::sample(std::uint64_t v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (samples_ == 0 || v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
    samples_ += count;
    sum_ += v * count;
    buckets_[bucketIndex(v)] += count;
}

double
Histogram::mean() const
{
    return samples_ ? static_cast<double>(sum_) /
                          static_cast<double>(samples_)
                    : 0.0;
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (samples_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(samples_ - 1));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (cum > target) {
            std::uint64_t mid = bucketMidpoint(i);
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

void
Histogram::reset()
{
    buckets_.fill(0);
    samples_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

void
Registry::add(const std::string &name, Counter *stat,
              const std::string &desc)
{
    panicIf(entries_.count(name) != 0, "duplicate stat '", name, "'");
    entries_[name] = Entry{stat, nullptr, nullptr, nullptr, desc};
}

void
Registry::add(const std::string &name, Scalar *stat,
              const std::string &desc)
{
    panicIf(entries_.count(name) != 0, "duplicate stat '", name, "'");
    entries_[name] = Entry{nullptr, stat, nullptr, nullptr, desc};
}

void
Registry::add(const std::string &name, Distribution *stat,
              const std::string &desc)
{
    panicIf(entries_.count(name) != 0, "duplicate stat '", name, "'");
    entries_[name] = Entry{nullptr, nullptr, stat, nullptr, desc};
}

void
Registry::add(const std::string &name, Histogram *stat,
              const std::string &desc)
{
    panicIf(entries_.count(name) != 0, "duplicate stat '", name, "'");
    entries_[name] = Entry{nullptr, nullptr, nullptr, stat, desc};
}

std::uint64_t
Registry::counterValue(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.counter == nullptr)
        return 0;
    return it->second.counter->value();
}

double
Registry::scalarValue(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.scalar == nullptr)
        return 0.0;
    return it->second.scalar->value();
}

const Histogram *
Registry::histogram(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        return nullptr;
    return it->second.hist;
}

bool
Registry::has(const std::string &name) const
{
    return entries_.count(name) != 0;
}

void
Registry::dump(std::ostream &os) const
{
    for (const auto &[name, e] : entries_) {
        os << std::left << std::setw(56) << name << " ";
        if (e.counter) {
            os << e.counter->value();
        } else if (e.scalar) {
            os << e.scalar->value();
        } else if (e.dist) {
            os << "samples=" << e.dist->samples()
               << " mean=" << e.dist->mean()
               << " min=" << e.dist->min()
               << " max=" << e.dist->max();
        } else if (e.hist) {
            os << "samples=" << e.hist->samples()
               << " mean=" << e.hist->mean()
               << " p50=" << e.hist->quantile(0.50)
               << " p95=" << e.hist->quantile(0.95)
               << " p99=" << e.hist->quantile(0.99)
               << " min=" << e.hist->min()
               << " max=" << e.hist->max();
        }
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
}

void
Registry::resetAll()
{
    for (auto &[name, e] : entries_) {
        (void)name;
        if (e.counter)
            e.counter->reset();
        else if (e.scalar)
            e.scalar->reset();
        else if (e.dist)
            e.dist->reset();
        else if (e.hist)
            e.hist->reset();
    }
}

} // namespace pciesim::stats
