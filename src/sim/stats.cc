#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <locale>
#include <sstream>

#include "invariant.hh"
#include "logging.hh"
#include "profiler.hh"

namespace pciesim::stats
{

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::None: return "";
      case Unit::Count: return "count";
      case Unit::Tick: return "tick";
      case Unit::Nanosecond: return "ns";
      case Unit::Second: return "s";
      case Unit::Byte: return "byte";
      case Unit::Bit: return "bit";
      case Unit::BytePerSecond: return "byte/s";
      case Unit::BitPerSecond: return "bit/s";
      case Unit::Ratio: return "ratio";
      case Unit::Percent: return "percent";
    }
    return "";
}

void
Vector::init(std::size_t n)
{
    elems_.assign(n, Counter{});
    subnames_.assign(n, std::string{});
}

void
Vector::subname(std::size_t i, const std::string &name)
{
    subnames_.at(i) = name;
}

const std::string &
Vector::subnameOf(std::size_t i) const
{
    return subnames_.at(i);
}

std::uint64_t
Vector::total() const
{
    std::uint64_t sum = 0;
    for (const Counter &c : elems_)
        sum += c.value();
    return sum;
}

void
Vector::reset()
{
    for (Counter &c : elems_)
        c.reset();
}

void
Distribution::init(double min, double max, std::size_t buckets)
{
    panicIf(buckets == 0, "distribution needs at least one bucket");
    panicIf(max <= min, "distribution max must exceed min");
    bucketMin_ = min;
    bucketMax_ = max;
    buckets_.assign(buckets, 0);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (samples_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    samples_ += count;
    sum_ += v * static_cast<double>(count);

    if (!buckets_.empty()) {
        double span = bucketMax_ - bucketMin_;
        double pos = (v - bucketMin_) / span *
                     static_cast<double>(buckets_.size());
        auto idx = static_cast<std::ptrdiff_t>(pos);
        idx = std::clamp<std::ptrdiff_t>(
            idx, 0, static_cast<std::ptrdiff_t>(buckets_.size()) - 1);
        buckets_[static_cast<std::size_t>(idx)] += count;
    }
}

double
Distribution::mean() const
{
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

namespace
{

unsigned
log2Floor(std::uint64_t v)
{
#if defined(__GNUC__)
    return 63u - static_cast<unsigned>(__builtin_clzll(v));
#else
    unsigned e = 0;
    while (v >>= 1)
        ++e;
    return e;
#endif
}

} // namespace

std::size_t
Histogram::bucketIndex(std::uint64_t v)
{
    if (v < (1ull << subBucketBits_))
        return static_cast<std::size_t>(v);
    unsigned exp = log2Floor(v);
    std::uint64_t sub = (v >> (exp - subBucketBits_)) &
                        ((1ull << subBucketBits_) - 1);
    return ((exp - subBucketBits_ + 1u) << subBucketBits_) +
           static_cast<std::size_t>(sub);
}

std::uint64_t
Histogram::bucketMidpoint(std::size_t idx)
{
    if (idx < (1u << subBucketBits_))
        return idx;
    unsigned block = static_cast<unsigned>(idx >> subBucketBits_);
    std::uint64_t sub = idx & ((1u << subBucketBits_) - 1);
    unsigned exp = block + subBucketBits_ - 1;
    std::uint64_t width = 1ull << (exp - subBucketBits_);
    std::uint64_t low = (1ull << exp) + sub * width;
    return low + (width >> 1);
}

void
Histogram::sample(std::uint64_t v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (samples_ == 0 || v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
    samples_ += count;
    sum_ += v * count;
    buckets_[bucketIndex(v)] += count;
}

double
Histogram::mean() const
{
    return samples_ ? static_cast<double>(sum_) /
                          static_cast<double>(samples_)
                    : 0.0;
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (samples_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(samples_ - 1));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (cum > target) {
            std::uint64_t mid = bucketMidpoint(i);
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

void
Histogram::reset()
{
    buckets_.fill(0);
    samples_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

void
Registry::checkNew(const std::string &name) const
{
    panicIf(entries_.count(name) != 0, "duplicate stat '", name, "'");
}

void
Registry::add(const std::string &name, Counter *stat,
              const std::string &desc, Unit unit)
{
    checkNew(name);
    Entry e;
    e.counter = stat;
    e.desc = desc;
    e.unit = unit;
    entries_[name] = e;
}

void
Registry::add(const std::string &name, Scalar *stat,
              const std::string &desc, Unit unit)
{
    checkNew(name);
    Entry e;
    e.scalar = stat;
    e.desc = desc;
    e.unit = unit;
    entries_[name] = e;
}

void
Registry::add(const std::string &name, Distribution *stat,
              const std::string &desc, Unit unit)
{
    checkNew(name);
    Entry e;
    e.dist = stat;
    e.desc = desc;
    e.unit = unit;
    entries_[name] = e;
}

void
Registry::add(const std::string &name, Histogram *stat,
              const std::string &desc, Unit unit)
{
    checkNew(name);
    Entry e;
    e.hist = stat;
    e.desc = desc;
    e.unit = unit;
    entries_[name] = e;
}

void
Registry::add(const std::string &name, Vector *stat,
              const std::string &desc, Unit unit)
{
    checkNew(name);
    Entry e;
    e.vec = stat;
    e.desc = desc;
    e.unit = unit;
    entries_[name] = e;
}

void
Registry::add(const std::string &name, Formula *stat,
              const std::string &desc, Unit unit)
{
    checkNew(name);
    Entry e;
    e.formula = stat;
    e.desc = desc;
    e.unit = unit;
    entries_[name] = e;
}

bool
Registry::remove(const std::string &name)
{
    return entries_.erase(name) != 0;
}

void
Registry::noteMiss(const std::string &name, const char *kind) const
{
    PCIESIM_AUDIT(false, "stat lookup miss: no ", kind, " named '",
                  name, "'");
    if (warnedMisses_.insert(name).second) {
        warn("stat lookup miss: no ", kind, " named '", name,
             "' (returning 0)");
    }
}

std::uint64_t
Registry::counterValue(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.counter == nullptr) {
        noteMiss(name, "counter");
        return 0;
    }
    return it->second.counter->value();
}

double
Registry::scalarValue(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.scalar == nullptr) {
        noteMiss(name, "scalar");
        return 0.0;
    }
    return it->second.scalar->value();
}

double
Registry::formulaValue(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.formula == nullptr) {
        noteMiss(name, "formula");
        return 0.0;
    }
    return it->second.formula->value();
}

std::optional<std::uint64_t>
Registry::tryCounter(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.counter == nullptr)
        return std::nullopt;
    return it->second.counter->value();
}

std::optional<double>
Registry::tryScalar(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.scalar == nullptr)
        return std::nullopt;
    return it->second.scalar->value();
}

const Histogram *
Registry::histogram(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        return nullptr;
    return it->second.hist;
}

const Vector *
Registry::vector(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        return nullptr;
    return it->second.vec;
}

bool
Registry::has(const std::string &name) const
{
    return entries_.count(name) != 0;
}

namespace
{

/** "portN" fallback for unnamed vector elements. */
std::string
elementLabel(const Vector &v, std::size_t i)
{
    const std::string &sub = v.subnameOf(i);
    if (!sub.empty())
        return sub;
    return std::to_string(i);
}

void
writeUnitSuffix(std::ostream &os, Unit unit)
{
    if (unit != Unit::None)
        os << " (" << unitName(unit) << ")";
}

void
writeDescSuffix(std::ostream &os, const std::string &desc)
{
    if (!desc.empty())
        os << "  # " << desc;
    os << "\n";
}

/** JSON-escape the simulator's stat names and descriptions. */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Finite, locale-independent JSON number (NaN/inf become 0). */
void
writeJsonDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    std::ostringstream tmp;
    tmp.imbue(std::locale::classic());
    tmp << std::setprecision(12) << v;
    os << tmp.str();
}

} // namespace

void
Registry::dump(std::ostream &os) const
{
    for (const auto &[name, e] : entries_) {
        if (e.vec) {
            for (std::size_t i = 0; i < e.vec->size(); ++i) {
                os << std::left << std::setw(56)
                   << (name + "." + elementLabel(*e.vec, i)) << " "
                   << (*e.vec)[i].value();
                writeUnitSuffix(os, e.unit);
                writeDescSuffix(os, e.desc);
            }
            os << std::left << std::setw(56) << (name + ".total")
               << " " << e.vec->total();
            writeUnitSuffix(os, e.unit);
            writeDescSuffix(os, e.desc);
            continue;
        }
        os << std::left << std::setw(56) << name << " ";
        if (e.counter) {
            os << e.counter->value();
        } else if (e.scalar) {
            os << e.scalar->value();
        } else if (e.formula) {
            os << e.formula->value();
        } else if (e.dist) {
            os << "samples=" << e.dist->samples()
               << " mean=" << e.dist->mean()
               << " min=" << e.dist->min()
               << " max=" << e.dist->max();
        } else if (e.hist) {
            os << "samples=" << e.hist->samples()
               << " mean=" << e.hist->mean()
               << " p50=" << e.hist->quantile(0.50)
               << " p95=" << e.hist->quantile(0.95)
               << " p99=" << e.hist->quantile(0.99)
               << " min=" << e.hist->min()
               << " max=" << e.hist->max();
        }
        writeUnitSuffix(os, e.unit);
        writeDescSuffix(os, e.desc);
    }
}

void
Registry::dumpJson(std::ostream &os, std::uint64_t cur_tick,
                   unsigned epoch) const
{
    os << "{\n"
       << "  \"schema\": \"pciesim-stats\",\n"
       << "  \"version\": 1,\n"
       << "  \"curTick\": " << cur_tick << ",\n"
       << "  \"epoch\": " << epoch << ",\n"
       << "  \"stats\": [";
    bool first = true;
    for (const auto &[name, e] : entries_) {
        os << (first ? "\n" : ",\n") << "    {\"name\": ";
        first = false;
        writeJsonString(os, name);
        os << ", \"type\": \"";
        if (e.counter)
            os << "counter";
        else if (e.scalar)
            os << "scalar";
        else if (e.formula)
            os << "formula";
        else if (e.vec)
            os << "vector";
        else if (e.dist)
            os << "distribution";
        else if (e.hist)
            os << "histogram";
        os << "\", \"unit\": \"" << unitName(e.unit)
           << "\", \"desc\": ";
        writeJsonString(os, e.desc);
        if (e.counter) {
            os << ", \"value\": " << e.counter->value();
        } else if (e.scalar) {
            os << ", \"value\": ";
            writeJsonDouble(os, e.scalar->value());
        } else if (e.formula) {
            os << ", \"value\": ";
            writeJsonDouble(os, e.formula->value());
        } else if (e.vec) {
            os << ", \"subnames\": [";
            for (std::size_t i = 0; i < e.vec->size(); ++i) {
                os << (i ? ", " : "");
                writeJsonString(os, elementLabel(*e.vec, i));
            }
            os << "], \"values\": [";
            for (std::size_t i = 0; i < e.vec->size(); ++i)
                os << (i ? ", " : "") << (*e.vec)[i].value();
            os << "], \"total\": " << e.vec->total();
        } else if (e.dist) {
            os << ", \"samples\": " << e.dist->samples()
               << ", \"mean\": ";
            writeJsonDouble(os, e.dist->mean());
            os << ", \"min\": ";
            writeJsonDouble(os, e.dist->min());
            os << ", \"max\": ";
            writeJsonDouble(os, e.dist->max());
        } else if (e.hist) {
            os << ", \"samples\": " << e.hist->samples()
               << ", \"mean\": ";
            writeJsonDouble(os, e.hist->mean());
            os << ", \"min\": " << e.hist->min()
               << ", \"max\": " << e.hist->max()
               << ", \"p50\": " << e.hist->quantile(0.50)
               << ", \"p95\": " << e.hist->quantile(0.95)
               << ", \"p99\": " << e.hist->quantile(0.99);
        }
        os << "}";
    }
    os << "\n  ]";
    if (prof::enabled()) {
        os << ",\n  \"profiler\": ";
        prof::writeJson(os, 16);
    }
    os << "\n}\n";
}

void
Registry::resetAll()
{
    for (auto &[name, e] : entries_) {
        (void)name;
        if (e.counter)
            e.counter->reset();
        else if (e.scalar)
            e.scalar->reset();
        else if (e.dist)
            e.dist->reset();
        else if (e.hist)
            e.hist->reset();
        else if (e.vec)
            e.vec->reset();
        // Formulas are derived; they reset with their inputs.
    }
}

} // namespace pciesim::stats
