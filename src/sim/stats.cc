#include "stats.hh"

#include <algorithm>
#include <iomanip>

#include "logging.hh"

namespace pciesim::stats
{

void
Distribution::init(double min, double max, std::size_t buckets)
{
    panicIf(buckets == 0, "distribution needs at least one bucket");
    panicIf(max <= min, "distribution max must exceed min");
    bucketMin_ = min;
    bucketMax_ = max;
    buckets_.assign(buckets, 0);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (samples_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    samples_ += count;
    sum_ += v * static_cast<double>(count);

    if (!buckets_.empty()) {
        double span = bucketMax_ - bucketMin_;
        double pos = (v - bucketMin_) / span *
                     static_cast<double>(buckets_.size());
        auto idx = static_cast<std::ptrdiff_t>(pos);
        idx = std::clamp<std::ptrdiff_t>(
            idx, 0, static_cast<std::ptrdiff_t>(buckets_.size()) - 1);
        buckets_[static_cast<std::size_t>(idx)] += count;
    }
}

double
Distribution::mean() const
{
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
Registry::add(const std::string &name, Counter *stat,
              const std::string &desc)
{
    panicIf(entries_.count(name) != 0, "duplicate stat '", name, "'");
    entries_[name] = Entry{stat, nullptr, nullptr, desc};
}

void
Registry::add(const std::string &name, Scalar *stat,
              const std::string &desc)
{
    panicIf(entries_.count(name) != 0, "duplicate stat '", name, "'");
    entries_[name] = Entry{nullptr, stat, nullptr, desc};
}

void
Registry::add(const std::string &name, Distribution *stat,
              const std::string &desc)
{
    panicIf(entries_.count(name) != 0, "duplicate stat '", name, "'");
    entries_[name] = Entry{nullptr, nullptr, stat, desc};
}

std::uint64_t
Registry::counterValue(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.counter == nullptr)
        return 0;
    return it->second.counter->value();
}

double
Registry::scalarValue(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.scalar == nullptr)
        return 0.0;
    return it->second.scalar->value();
}

bool
Registry::has(const std::string &name) const
{
    return entries_.count(name) != 0;
}

void
Registry::dump(std::ostream &os) const
{
    for (const auto &[name, e] : entries_) {
        os << std::left << std::setw(56) << name << " ";
        if (e.counter) {
            os << e.counter->value();
        } else if (e.scalar) {
            os << e.scalar->value();
        } else if (e.dist) {
            os << "samples=" << e.dist->samples()
               << " mean=" << e.dist->mean()
               << " min=" << e.dist->min()
               << " max=" << e.dist->max();
        }
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
}

void
Registry::resetAll()
{
    for (auto &[name, e] : entries_) {
        (void)name;
        if (e.counter)
            e.counter->reset();
        else if (e.scalar)
            e.scalar->reset();
        else if (e.dist)
            e.dist->reset();
    }
}

} // namespace pciesim::stats
