/**
 * @file
 * Event base classes for the discrete-event kernel.
 *
 * An Event is owned by the component that declares it (usually as a
 * data member) and can be in the event queue at most once. The queue
 * never owns events. Components with hot timers bind them with
 * MemberEventWrapper (a bare object pointer, no allocation);
 * EventFunctionWrapper binds an arbitrary callable for everything
 * else.
 *
 * Events are intrusive: the queue stores each event's heap slot in
 * the event itself (heapIndex_), which makes deschedule/reschedule
 * true O(log n) sift operations with no stale heap entries. Event
 * names are lazy interned C strings so an idle event carries no
 * std::string storage.
 */

#ifndef PCIESIM_SIM_EVENT_HH
#define PCIESIM_SIM_EVENT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "ticks.hh"

namespace pciesim
{

class EventQueue;

/**
 * Intern a dynamically built event name, returning a stable C
 * string that lives for the process. Names are built once per event
 * (at component construction), so the intern table stays small.
 */
const char *internEventName(const std::string &name);

/**
 * An occurrence scheduled to happen at a particular tick.
 *
 * Events scheduled for the same tick fire in scheduling order
 * (FIFO), which keeps simulations deterministic.
 */
class Event
{
  public:
    /**
     * @param name Diagnostic name, shown in panics and traces.
     * The const char* overload must be a string with static storage
     * duration (literals); dynamically built names go through the
     * interning overload.
     */
    explicit Event(const char *name = "anon.event") : name_(name) {}
    explicit Event(const std::string &name)
        : name_(internEventName(name))
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the event queue when the event fires. */
    virtual void process() = 0;

    /** Whether the event is currently in an event queue. */
    bool scheduled() const { return heapIndex_ != invalidHeapIndex; }

    /** Tick the event will fire at; only valid when scheduled(). */
    Tick when() const { return when_; }

    const char *name() const { return name_; }

  private:
    friend class EventQueue;

    static constexpr std::size_t invalidHeapIndex =
        ~static_cast<std::size_t>(0);

    const char *name_;
    Tick when_ = 0;
    /** Slot in the owning queue's heap array; invalid when idle. */
    std::size_t heapIndex_ = invalidHeapIndex;
};

/** An event that runs a bound callable when it fires. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         const char *name = "anon.wrapped.event")
        : Event(name), callback_(std::move(callback))
    {}

    EventFunctionWrapper(std::function<void()> callback,
                         const std::string &name)
        : Event(name), callback_(std::move(callback))
    {}

    void process() override { callback_(); }

  private:
    std::function<void()> callback_;
};

/**
 * A self-deleting, heap-allocated one-shot event.
 *
 * Most events are member-owned and recur; a OneShotEvent carries a
 * single deferred callable across domains (Simulation::callAt) and
 * frees itself after firing. It must be scheduled exactly once and
 * never descheduled.
 */
class OneShotEvent : public Event
{
  public:
    explicit OneShotEvent(std::function<void()> fn)
        : Event("oneshot.event"), fn_(std::move(fn))
    {}

    void
    process() override
    {
        // Run after delete: the callable may outlive this event's
        // storage (e.g. re-enter the queue and allocate).
        auto fn = std::move(fn_);
        delete this;
        fn();
    }

  private:
    std::function<void()> fn_;
};

/**
 * An event that calls a member function on its owning object.
 *
 * Unlike EventFunctionWrapper this stores only a bare object
 * pointer: no heap-backed std::function, no capture storage, and
 * the call devirtualizes to a direct member call. Hot timers (link
 * TX/RX, replay and ACK timers, packet queues, DMA issue) use this.
 *
 *     MemberEventWrapper<LinkInterface,
 *                        &LinkInterface::tryTransmit> txEvent_;
 */
template <typename T, void (T::*Fn)()>
class MemberEventWrapper : public Event
{
  public:
    explicit MemberEventWrapper(T *obj,
                                const char *name = "anon.member.event")
        : Event(name), obj_(obj)
    {}

    MemberEventWrapper(T *obj, const std::string &name)
        : Event(name), obj_(obj)
    {}

    void process() override { (obj_->*Fn)(); }

  private:
    T *obj_;
};

} // namespace pciesim

#endif // PCIESIM_SIM_EVENT_HH
