/**
 * @file
 * Event base classes for the discrete-event kernel.
 *
 * An Event is owned by the component that declares it (usually as a
 * data member) and can be in the event queue at most once. The queue
 * never owns events. EventFunctionWrapper binds an arbitrary callable,
 * which is how nearly all components express their timed behaviour.
 */

#ifndef PCIESIM_SIM_EVENT_HH
#define PCIESIM_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "ticks.hh"

namespace pciesim
{

class EventQueue;

/**
 * An occurrence scheduled to happen at a particular tick.
 *
 * Events scheduled for the same tick fire in scheduling order
 * (FIFO), which keeps simulations deterministic.
 */
class Event
{
  public:
    /**
     * @param name Diagnostic name, shown in panics and traces.
     */
    explicit Event(std::string name = "anon.event")
        : name_(std::move(name))
    {}

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the event queue when the event fires. */
    virtual void process() = 0;

    /** Whether the event is currently in an event queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick the event will fire at; only valid when scheduled(). */
    Tick when() const { return when_; }

    const std::string &name() const { return name_; }

  private:
    friend class EventQueue;

    std::string name_;
    Tick when_ = 0;
    bool scheduled_ = false;
    /** Bumped on every (re)schedule so stale heap entries are
     *  recognisable; see EventQueue. */
    std::uint64_t generation_ = 0;
};

/** An event that runs a bound callable when it fires. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name = "anon.wrapped.event")
        : Event(std::move(name)), callback_(std::move(callback))
    {}

    void process() override { callback_(); }

  private:
    std::function<void()> callback_;
};

} // namespace pciesim

#endif // PCIESIM_SIM_EVENT_HH
