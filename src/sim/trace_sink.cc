#include "trace_sink.hh"

#include <cstdio>

#include "logging.hh"

namespace pciesim::trace
{

Sink::~Sink() = default;

TextSink::TextSink(std::ostream &os) : os_(&os) {}

TextSink::TextSink(const std::string &path)
    : owned_(path), os_(&owned_)
{
    fatalIf(!owned_.is_open(), "cannot open trace file '", path,
            "'");
}

void
TextSink::line(Tick tick, const std::string &track,
               const std::string &text)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%12llu",
                  static_cast<unsigned long long>(tick));
    *os_ << buf << ": " << track << ": " << text << "\n";
}

void
TextSink::message(Tick tick, const std::string &track,
                  const char *cat, const std::string &text)
{
    line(tick, track, std::string(cat) + ": " + text);
}

void
TextSink::begin(Tick tick, const std::string &track,
                const char *cat, const std::string &name)
{
    line(tick, track, std::string(cat) + ": begin " + name);
}

void
TextSink::end(Tick tick, const std::string &track, const char *cat)
{
    line(tick, track, std::string(cat) + ": end");
}

void
TextSink::complete(Tick start, Tick duration,
                   const std::string &track, const char *cat,
                   const std::string &name)
{
    line(start, track,
         std::string(cat) + ": " + name + " (dur=" +
             std::to_string(duration) + ")");
}

void
TextSink::counter(Tick tick, const std::string &track,
                  const char *cat, const std::string &series,
                  double value)
{
    (void)cat;
    line(tick, track, series + " = " + std::to_string(value));
}

void
TextSink::flush()
{
    os_->flush();
}

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : os_(path)
{
    fatalIf(!os_.is_open(), "cannot open trace file '", path, "'");
    os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink()
{
    close();
}

std::string
ChromeTraceSink::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
ChromeTraceSink::tsField(Tick tick)
{
    // Chrome timestamps are microseconds; ticks are picoseconds.
    // Six decimals keep exact picosecond resolution.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(tick / 1000000),
                  static_cast<unsigned long long>(tick % 1000000));
    return buf;
}

void
ChromeTraceSink::emit(const std::string &json)
{
    if (closed_)
        return;
    if (eventsWritten_ > 0)
        os_ << ",";
    os_ << "\n" << json;
    ++eventsWritten_;
}

int
ChromeTraceSink::tidFor(const std::string &track)
{
    auto it = tids_.find(track);
    if (it != tids_.end())
        return it->second;
    int tid = nextTid_++;
    tids_.emplace(track, tid);
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
         "\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":\"" + escape(track) + "\"}}");
    return tid;
}

void
ChromeTraceSink::message(Tick tick, const std::string &track,
                         const char *cat, const std::string &text)
{
    int tid = tidFor(track);
    emit("{\"name\":\"" + escape(text) + "\",\"cat\":\"" +
         std::string(cat) + "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
         tsField(tick) + ",\"pid\":0,\"tid\":" +
         std::to_string(tid) + "}");
}

void
ChromeTraceSink::begin(Tick tick, const std::string &track,
                       const char *cat, const std::string &name)
{
    int tid = tidFor(track);
    emit("{\"name\":\"" + escape(name) + "\",\"cat\":\"" +
         std::string(cat) + "\",\"ph\":\"B\",\"ts\":" +
         tsField(tick) + ",\"pid\":0,\"tid\":" +
         std::to_string(tid) + "}");
}

void
ChromeTraceSink::end(Tick tick, const std::string &track,
                     const char *cat)
{
    int tid = tidFor(track);
    emit("{\"cat\":\"" + std::string(cat) +
         "\",\"ph\":\"E\",\"ts\":" + tsField(tick) +
         ",\"pid\":0,\"tid\":" + std::to_string(tid) + "}");
}

void
ChromeTraceSink::complete(Tick start, Tick duration,
                          const std::string &track,
                          const char *cat, const std::string &name)
{
    int tid = tidFor(track);
    emit("{\"name\":\"" + escape(name) + "\",\"cat\":\"" +
         std::string(cat) + "\",\"ph\":\"X\",\"ts\":" +
         tsField(start) + ",\"dur\":" + tsField(duration) +
         ",\"pid\":0,\"tid\":" + std::to_string(tid) + "}");
}

void
ChromeTraceSink::counter(Tick tick, const std::string &track,
                         const char *cat, const std::string &series,
                         double value)
{
    int tid = tidFor(track);
    char val[48];
    std::snprintf(val, sizeof(val), "%.9g", value);
    emit("{\"name\":\"" + escape(series) + "\",\"cat\":\"" +
         std::string(cat) + "\",\"ph\":\"C\",\"ts\":" +
         tsField(tick) + ",\"pid\":0,\"tid\":" +
         std::to_string(tid) + ",\"args\":{\"value\":" +
         std::string(val) + "}}");
}

void
ChromeTraceSink::flush()
{
    os_.flush();
}

void
ChromeTraceSink::close()
{
    if (closed_)
        return;
    os_ << "\n]}\n";
    os_.flush();
    closed_ = true;
}

} // namespace pciesim::trace
