/**
 * @file
 * A small seeded pseudo-random number generator for per-object use:
 * splitmix64 expands the seed into the 256-bit state of an
 * xoshiro256** engine. No global state, trivially copyable, and the
 * stream depends only on the seed, so fault-injection runs are
 * bit-reproducible across machines and standard libraries (unlike
 * std::uniform_real_distribution, whose output is
 * implementation-defined).
 */

#ifndef PCIESIM_SIM_RNG_HH
#define PCIESIM_SIM_RNG_HH

#include <cstdint>

namespace pciesim
{

/**
 * Seeded xoshiro256** PRNG with splitmix64 state expansion.
 */
class Rng
{
  public:
    /** @param seed Any value, including 0, yields a valid stream. */
    explicit Rng(std::uint64_t seed)
    {
        // splitmix64: guarantees a non-degenerate xoshiro state
        // even for seeds like 0 or small integers.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly distributed bits (xoshiro256**). */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1) with 53 bits of randomness. */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** One Bernoulli trial with success probability @p p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace pciesim

#endif // PCIESIM_SIM_RNG_HH
