/**
 * @file
 * The central event queue driving the simulation.
 */

#ifndef PCIESIM_SIM_EVENT_QUEUE_HH
#define PCIESIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "event.hh"
#include "invariant.hh"
#include "ticks.hh"

namespace pciesim
{

/**
 * An indexed d-ary (4-ary) min-heap event queue with deterministic
 * same-tick ordering.
 *
 * Each event carries its heap slot (Event::heapIndex_), so
 * deschedule and reschedule are true O(log n) sift operations on
 * the live entry: no stale heap entries, no skim pass on pop, and
 * no unbounded heap growth under heavy retry/replay-timer churn.
 * The heap stores the (when, order) sort key by value next to the
 * event pointer, so sift comparisons stay within the contiguous
 * slot array instead of chasing Event pointers. A 4-ary layout
 * halves the tree depth of a binary heap and keeps the child scan
 * inside two cache lines of slots.
 *
 * Ordering: earliest tick first; events at the same tick fire in
 * scheduling order (a monotone order counter assigned on every
 * schedule/reschedule), which keeps simulations deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p event to fire at absolute tick @p when.
     * It is a panic to schedule in the past or to schedule an
     * already-scheduled event (use reschedule()).
     */
    void schedule(Event *event, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *event);

    /**
     * Move a scheduled (or unscheduled) event to tick @p when.
     * A single in-place sift: the event keeps one heap slot and
     * the live-event count is unchanged (no deschedule+schedule
     * double accounting).
     */
    void reschedule(Event *event, Tick when);

    /** Whether any live events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of live (scheduled) events == heap occupancy. */
    std::size_t size() const { return heap_.size(); }

    /**
     * Run until the queue is empty or @p maxTick is passed.
     * @return the tick of the last processed event.
     */
    Tick run(Tick max_tick = maxTick);

    /**
     * Process a single event if one exists at or before @p maxTick.
     * @return true if an event was processed.
     */
    bool step(Tick max_tick = maxTick);

    /** Tick of the next live event, or maxTick when empty. */
    Tick nextTick() const
    {
        return heap_.empty() ? maxTick : heap_[0].when;
    }

    /** Total number of events processed so far. */
    std::uint64_t numProcessed() const { return numProcessed_; }

    /**
     * Full structural audit (audit builds; otherwise a no-op):
     * every slot's event points back at its slot, carries the same
     * tick as its by-value sort key, and satisfies d-ary heap order
     * against its parent. O(n); called every auditPeriod mutations
     * and directly by tests.
     */
    void auditHeap() const;

  private:
    /** Heap arity; 4 empirically beats 2 for slot heaps. */
    static constexpr std::size_t arity = 4;

    /** One heap entry: the sort key by value plus the event. */
    struct Slot
    {
        Tick when;
        std::uint64_t order;
        Event *event;
    };

    static bool
    before(const Slot &a, const Slot &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.order < b.order;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    /** Re-establish heap order for slot @p i in either direction. */
    void siftAny(std::size_t i);
    /** Detach the event at slot @p i, refilling from the back. */
    void removeAt(std::size_t i);

    /** Audit builds: run auditHeap() every auditPeriod mutations. */
    void
    maybeAuditHeap()
    {
        PCIESIM_AUDIT_ONLY(
            if ((++auditCounter_ % auditPeriod) == 0)
                auditHeap();
        )
    }

    /** Mutations between full heap audits (audits are O(n)). */
    PCIESIM_AUDIT_ONLY(static constexpr std::uint64_t auditPeriod = 64;)

    std::vector<Slot> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextOrder_ = 0;
    std::uint64_t numProcessed_ = 0;
    PCIESIM_AUDIT_ONLY(std::uint64_t auditCounter_ = 0;)
};

} // namespace pciesim

#endif // PCIESIM_SIM_EVENT_QUEUE_HH
