/**
 * @file
 * The central event queue driving the simulation.
 */

#ifndef PCIESIM_SIM_EVENT_QUEUE_HH
#define PCIESIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "event.hh"
#include "ticks.hh"

namespace pciesim
{

/**
 * A min-heap event queue with deterministic same-tick ordering.
 *
 * Descheduling is lazy: the heap entry is left in place and
 * recognised as stale by a per-event generation counter when popped.
 * This keeps schedule/deschedule O(log n) without heap surgery.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p event to fire at absolute tick @p when.
     * It is a panic to schedule in the past or to schedule an
     * already-scheduled event (use reschedule()).
     */
    void schedule(Event *event, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *event);

    /** Move a scheduled (or unscheduled) event to tick @p when. */
    void reschedule(Event *event, Tick when);

    /** Whether any live events remain. */
    bool empty() const { return numLive_ == 0; }

    /** Number of live (scheduled) events. */
    std::size_t size() const { return numLive_; }

    /**
     * Run until the queue is empty or @p maxTick is passed.
     * @return the tick of the last processed event.
     */
    Tick run(Tick max_tick = maxTick);

    /**
     * Process a single event if one exists at or before @p maxTick.
     * @return true if an event was processed.
     */
    bool step(Tick max_tick = maxTick);

    /** Tick of the next live event, or maxTick when empty. */
    Tick nextTick() const;

    /** Total number of events processed so far. */
    std::uint64_t numProcessed() const { return numProcessed_; }

  private:
    struct HeapEntry
    {
        Tick when;
        std::uint64_t order;
        std::uint64_t generation;
        Event *event;

        bool
        operator>(const HeapEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return order > o.order;
        }
    };

    /** Pop stale (descheduled/rescheduled) entries off the top. */
    void skim() const;

    bool isStale(const HeapEntry &e) const;

    mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                std::greater<HeapEntry>> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextOrder_ = 0;
    std::uint64_t numProcessed_ = 0;
    std::size_t numLive_ = 0;
};

} // namespace pciesim

#endif // PCIESIM_SIM_EVENT_QUEUE_HH
