/**
 * @file
 * The central event queue driving the simulation.
 */

#ifndef PCIESIM_SIM_EVENT_QUEUE_HH
#define PCIESIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "event.hh"
#include "invariant.hh"
#include "ticks.hh"

namespace pciesim
{

/**
 * An indexed d-ary (4-ary) min-heap event queue with deterministic
 * same-tick ordering.
 *
 * Each event carries its heap slot (Event::heapIndex_), so
 * deschedule and reschedule are true O(log n) sift operations on
 * the live entry: no stale heap entries, no skim pass on pop, and
 * no unbounded heap growth under heavy retry/replay-timer churn.
 * The heap stores the (when, order, tie) sort key by value next to the
 * event pointer, so sift comparisons stay within the contiguous
 * slot array instead of chasing Event pointers. A 4-ary layout
 * halves the tree depth of a binary heap and keeps the child scan
 * inside two cache lines of slots.
 *
 * Ordering: earliest tick first; events at the same tick fire in
 * scheduling order (a monotone order counter assigned on every
 * schedule/reschedule), which keeps simulations deterministic.
 *
 * Parallel mode (DESIGN.md §10): when a simulation is partitioned
 * into link domains, each domain's queue runs in keyed mode
 * (configureParallelKeys). The same-tick tiebreak then becomes the
 * composite key (scheduling tick, scheduling domain, per-domain
 * serial) instead of a global counter, so the relative order of
 * any two events is a pure function of the simulated history — no
 * matter which worker thread ran which domain, and identical for 1
 * and N threads. Cross-domain arrivals enter through the keyed
 * entry points (scheduleKeyed and friends) carrying the key
 * computed at post time on the sending domain.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p event to fire at absolute tick @p when.
     * It is a panic to schedule in the past or to schedule an
     * already-scheduled event (use reschedule()).
     */
    void schedule(Event *event, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *event);

    /**
     * Move a scheduled (or unscheduled) event to tick @p when.
     * A single in-place sift: the event keeps one heap slot and
     * the live-event count is unchanged (no deschedule+schedule
     * double accounting).
     */
    void reschedule(Event *event, Tick when);

    /** Whether any live events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of live (scheduled) events == heap occupancy. */
    std::size_t size() const { return heap_.size(); }

    /**
     * Run until the queue is empty or @p maxTick is passed.
     * @return the tick of the last processed event.
     */
    Tick run(Tick max_tick = maxTick);

    /**
     * Process a single event if one exists at or before @p maxTick.
     * @return true if an event was processed.
     */
    bool step(Tick max_tick = maxTick);

    /** Tick of the next live event, or maxTick when empty. */
    Tick nextTick() const
    {
        return heap_.empty() ? maxTick : heap_[0].when;
    }

    /** Total number of events processed so far. */
    std::uint64_t numProcessed() const { return numProcessed_; }

    /** @{
     * Parallel-execution hooks (sim/parallel.hh; DESIGN.md §10).
     * A queue in keyed mode derives same-tick tiebreaks from
     * (scheduling tick, domain, per-domain serial) so heap order is
     * independent of worker-thread interleaving.
     */

    /** Switch this queue to keyed mode as domain @p domain_id. */
    void
    configureParallelKeys(unsigned domain_id)
    {
        parallelKeys_ = true;
        domainId_ = domain_id;
        tieBase_ = static_cast<std::uint64_t>(domain_id) << 48;
    }

    unsigned domainId() const { return domainId_; }

    /** The next tiebreak value for a schedule issued by this
     *  domain; the engine consumes these for mailboxed posts so
     *  local and cross-domain schedules share one serial stream. */
    std::uint64_t nextTie() { return tieBase_ | tieSeq_++; }

    /** Schedule with an explicit key computed on the sending
     *  domain (mailbox apply path). */
    void scheduleKeyed(Event *event, Tick when, Tick key_order,
                       std::uint64_t key_tie);

    /**
     * Keyed schedule-if-earlier: schedule when idle, pull in when
     * @p when precedes the pending occurrence, no-op otherwise.
     * Matches the wire's "schedule delivery for the head arrival"
     * idiom under monotone per-wire arrival times.
     */
    void scheduleEarliestKeyed(Event *event, Tick when,
                               Tick key_order, std::uint64_t key_tie);

    /**
     * Run every event strictly inside the window, i.e. with tick
     * <= @p horizon, without advancing curTick_ to the horizon
     * afterwards (the engine owns end-of-run clamping).
     * @return the number of events executed, the engine's
     *         per-domain telemetry unit (DESIGN.md §14) — a pure
     *         function of simulated history, so thread-count
     *         independent.
     */
    std::uint64_t
    runWindow(Tick horizon)
    {
        const std::uint64_t before = numProcessed_;
        while (step(horizon)) {
        }
        return numProcessed_ - before;
    }

    /** Clamp curTick_ forward to @p t (end of a parallel run). */
    void
    advanceTo(Tick t)
    {
        PCIESIM_AUDIT(nextTick() > t,
                      "advanceTo(", t, ") would skip a pending "
                      "event at ", nextTick());
        if (curTick_ < t)
            curTick_ = t;
    }

    /** Per-domain serial for deterministic packet ids. */
    std::uint64_t takeDomainSerial() { return domainSerial_++; }
    /** @} */

    /**
     * Full structural audit (audit builds; otherwise a no-op):
     * every slot's event points back at its slot, carries the same
     * tick as its by-value sort key, and satisfies d-ary heap order
     * against its parent. O(n); called every auditPeriod mutations
     * and directly by tests.
     */
    void auditHeap() const;

  private:
    /** Heap arity; 4 empirically beats 2 for slot heaps. */
    static constexpr std::size_t arity = 4;

    /** One heap entry: the sort key by value plus the event.
     *  32 bytes, so the 4-ary child scan still spans at most two
     *  cache lines of slots. Legacy mode uses (when, order) with
     *  tie = 0; keyed mode uses (when, scheduling tick, domain |
     *  serial). */
    struct Slot
    {
        Tick when;
        std::uint64_t order;
        std::uint64_t tie;
        Event *event;
    };

    static bool
    before(const Slot &a, const Slot &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.order != b.order)
            return a.order < b.order;
        return a.tie < b.tie;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    /** Re-establish heap order for slot @p i in either direction. */
    void siftAny(std::size_t i);
    /** Detach the event at slot @p i, refilling from the back. */
    void removeAt(std::size_t i);

    /** Audit builds: run auditHeap() every auditPeriod mutations. */
    void
    maybeAuditHeap()
    {
        PCIESIM_AUDIT_ONLY(
            if ((++auditCounter_ % auditPeriod) == 0)
                auditHeap();
        )
    }

    /** Mutations between full heap audits (audits are O(n)). */
    PCIESIM_AUDIT_ONLY(static constexpr std::uint64_t auditPeriod = 64;)

    std::vector<Slot> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextOrder_ = 0;
    std::uint64_t numProcessed_ = 0;

    /** Keyed (parallel) tiebreak state; see configureParallelKeys. */
    bool parallelKeys_ = false;
    unsigned domainId_ = 0;
    std::uint64_t tieBase_ = 0;
    std::uint64_t tieSeq_ = 0;
    std::uint64_t domainSerial_ = 0;
    PCIESIM_AUDIT_ONLY(std::uint64_t auditCounter_ = 0;)
};

} // namespace pciesim

#endif // PCIESIM_SIM_EVENT_QUEUE_HH
