#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace pciesim
{

namespace
{

bool loggingThrows = false;
bool informEnabled = true;

} // namespace

void
setLoggingThrows(bool throws)
{
    loggingThrows = throws;
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

namespace logging_detail
{

void
panicImpl(const std::string &msg)
{
    if (loggingThrows)
        throw PanicError("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    if (loggingThrows)
        throw FatalError("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (informEnabled)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace logging_detail

} // namespace pciesim
