#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace pciesim
{

namespace
{

bool loggingThrows = false;
bool informEnabled = true;

// Immortal (like the trace sink registry): crash hooks may fire
// from teardown paths after static destruction has begun.
std::vector<std::function<void()>> &
crashHooks()
{
    // pciesim-analyze: single-threaded: hooks are registered at
    // sink-setup time, before any worker thread exists; the crash
    // path only reads.
    static auto *hooks = new std::vector<std::function<void()>>;
    return *hooks;
}

/** Run the hooks at most once; a hook that panics cannot recurse. */
void
runCrashHooks()
{
    // pciesim-analyze: ignore[shared-state]: terminal crash path;
    // a racing second panic at worst re-runs idempotent hooks.
    static bool ran = false;
    if (ran)
        return;
    ran = true;
    for (const auto &hook : crashHooks())
        hook();
}

} // namespace

void
registerCrashHook(std::function<void()> hook)
{
    crashHooks().push_back(std::move(hook));
}

void
setLoggingThrows(bool throws)
{
    loggingThrows = throws;
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

namespace logging_detail
{

void
panicImpl(const std::string &msg)
{
    if (loggingThrows)
        throw PanicError("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    runCrashHooks();
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    if (loggingThrows)
        throw FatalError("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    runCrashHooks();
    // Terminal path by design: fatal() must not return.
    std::exit(1); // NOLINT(concurrency-mt-unsafe)
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (informEnabled)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace logging_detail

} // namespace pciesim
