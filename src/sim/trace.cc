#include "trace.hh"

#include <algorithm>
#include <array>
#include <iostream>
#include <utility>
#include <vector>

namespace pciesim::trace
{

std::uint32_t enabledMask = 0;
bool sinksActive = false;

namespace
{

constexpr std::array<const char *, numFlags> flagNames = {
    "Link",   "Replay", "Retrain",  "Tlp",      "Dma",   "Mmio",
    "Switch", "Rc",     "Workload", "Stats",    "Parallel",
};

struct Sinks
{
    std::unique_ptr<TextSink> text;
    std::unique_ptr<ChromeTraceSink> chrome;
};

Sinks &
sinks()
{
    // Intentionally immortal: benches close sinks from an atexit
    // handler, which would otherwise race static destruction.
    // pciesim-analyze: single-threaded: sinks are opened/closed
    // between runs only; workers append to per-domain buffers.
    static Sinks *s = new Sinks;
    return *s;
}

void
refreshActive()
{
    sinksActive = sinks().text != nullptr ||
                  sinks().chrome != nullptr;
}

/**
 * Arrange (once) for open sinks to be flushed and closed from the
 * logging fatal path, so a Chrome trace from a run that died in
 * panic()/fatal() still carries its closing bracket and parses.
 */
void
registerCrashClose()
{
    // pciesim-analyze: single-threaded: only called from sink
    // setup on the main thread.
    static bool registered = false;
    if (registered)
        return;
    registered = true;
    registerCrashHook([] { closeSinks(); });
}

} // namespace

const char *
flagName(Flag f)
{
    auto i = static_cast<std::size_t>(f);
    panicIf(i >= numFlags, "bad trace flag ", i);
    return flagNames[i];
}

std::uint32_t
parseFlags(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok == "All" || tok == "all") {
            mask |= (1u << numFlags) - 1u;
            continue;
        }
        bool found = false;
        for (std::size_t i = 0; i < numFlags; ++i) {
            if (tok == flagNames[i]) {
                mask |= 1u << i;
                found = true;
                break;
            }
        }
        fatalIf(!found, "unknown trace flag '", tok,
                "' (try: Link,Replay,Retrain,Tlp,Dma,Mmio,Switch,"
                "Rc,Workload,Stats,Parallel,All)");
    }
    return mask;
}

void
setEnabledFlags(std::uint32_t mask)
{
    enabledMask = mask;
}

void
setEnabledFlags(const std::string &spec)
{
    enabledMask = parseFlags(spec);
}

void
openTextSink(const std::string &path)
{
    if (path == "-" || path.empty())
        sinks().text = std::make_unique<TextSink>(std::cout);
    else
        sinks().text = std::make_unique<TextSink>(path);
    refreshActive();
    registerCrashClose();
}

void
openChromeSink(const std::string &path)
{
    sinks().chrome = std::make_unique<ChromeTraceSink>(path);
    refreshActive();
    registerCrashClose();
}

ChromeTraceSink *
chromeSink()
{
    return sinks().chrome.get();
}

void
closeSinks()
{
    if (sinks().text)
        sinks().text->flush();
    if (sinks().chrome)
        sinks().chrome->close();
    sinks().text.reset();
    sinks().chrome.reset();
    refreshActive();
}

void
applyConfig(const std::string &flags_spec,
            const std::string &chrome_path)
{
    if (!chrome_path.empty() && sinks().chrome == nullptr)
        openChromeSink(chrome_path);
    if (!flags_spec.empty())
        setEnabledFlags(flags_spec);
    else if (sinksActive && enabledMask == 0)
        enabledMask = (1u << numFlags) - 1u;
}

namespace
{

template <typename Fn>
void
forEachSink(Fn &&fn)
{
    if (sinks().text)
        fn(*sinks().text);
    if (sinks().chrome)
        fn(*sinks().chrome);
}

/** One buffered record from a domain's window (parallel runs). */
struct BufRec
{
    enum : std::uint8_t
    {
        kindMessage,
        kindBegin,
        kindEnd,
        kindComplete,
        kindCounter,
    };

    std::uint8_t kind;
    Flag flag;
    Tick tick;
    Tick dur;
    std::uint64_t seq;
    std::string track;
    std::string text; ///< message text / span name / counter series
    double value;
};

/** Per-domain buffer; written only by the domain's worker. */
struct DomainBuf
{
    std::vector<BufRec> recs;
    std::uint64_t seq = 0;
};

std::vector<DomainBuf> &
domainBufs()
{
    // pciesim-analyze: single-threaded: sized by the engine before
    // workers start; each worker only touches its own DomainBuf.
    static auto *v = new std::vector<DomainBuf>;
    return *v;
}

thread_local DomainBuf *tlsBuf = nullptr;

void
emitRec(const BufRec &r)
{
    forEachSink([&](Sink &s) {
        const char *flag = flagName(r.flag);
        switch (r.kind) {
          case BufRec::kindMessage:
            s.message(r.tick, r.track, flag, r.text);
            break;
          case BufRec::kindBegin:
            s.begin(r.tick, r.track, flag, r.text);
            break;
          case BufRec::kindEnd:
            s.end(r.tick, r.track, flag);
            break;
          case BufRec::kindComplete:
            s.complete(r.tick, r.dur, r.track, flag, r.text);
            break;
          case BufRec::kindCounter:
            s.counter(r.tick, r.track, flag, r.text, r.value);
            break;
          default:
            break;
        }
    });
}

void
buffer(BufRec r)
{
    r.seq = tlsBuf->seq++;
    tlsBuf->recs.push_back(std::move(r));
}

} // namespace

bool
beginParallel(unsigned n)
{
    if (!sinksActive)
        return false;
    domainBufs().resize(n);
    return true;
}

void
enterDomain(unsigned d)
{
    tlsBuf = &domainBufs()[d];
}

void
leaveDomain()
{
    tlsBuf = nullptr;
}

void
flushParallel()
{
    auto &bufs = domainBufs();
    std::vector<std::pair<const BufRec *, unsigned>> merged;
    std::size_t total = 0;
    for (const DomainBuf &b : bufs)
        total += b.recs.size();
    if (total == 0)
        return;
    merged.reserve(total);
    for (unsigned d = 0; d < bufs.size(); ++d) {
        for (const BufRec &r : bufs[d].recs)
            merged.emplace_back(&r, d);
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto &a, const auto &b) {
                  if (a.first->tick != b.first->tick)
                      return a.first->tick < b.first->tick;
                  if (a.second != b.second)
                      return a.second < b.second;
                  return a.first->seq < b.first->seq;
              });
    for (const auto &[rec, d] : merged) {
        (void)d;
        emitRec(*rec);
    }
    for (DomainBuf &b : bufs)
        b.recs.clear();
}

void
endParallel()
{
    flushParallel();
}

void
emitMessage(Flag f, Tick tick, const std::string &track,
            const std::string &text)
{
    if (tlsBuf) {
        buffer({BufRec::kindMessage, f, tick, 0, 0, track, text, 0});
        return;
    }
    forEachSink([&](Sink &s) {
        s.message(tick, track, flagName(f), text);
    });
}

void
emitBegin(Flag f, Tick tick, const std::string &track,
          const std::string &name)
{
    if (tlsBuf) {
        buffer({BufRec::kindBegin, f, tick, 0, 0, track, name, 0});
        return;
    }
    forEachSink([&](Sink &s) {
        s.begin(tick, track, flagName(f), name);
    });
}

void
emitEnd(Flag f, Tick tick, const std::string &track)
{
    if (tlsBuf) {
        buffer({BufRec::kindEnd, f, tick, 0, 0, track, "", 0});
        return;
    }
    forEachSink([&](Sink &s) { s.end(tick, track, flagName(f)); });
}

void
emitComplete(Flag f, Tick start, Tick duration,
             const std::string &track, const std::string &name)
{
    if (tlsBuf) {
        buffer({BufRec::kindComplete, f, start, duration, 0, track,
                name, 0});
        return;
    }
    forEachSink([&](Sink &s) {
        s.complete(start, duration, track, flagName(f), name);
    });
}

void
emitCounter(Flag f, Tick tick, const std::string &track,
            const std::string &series, double value)
{
    if (tlsBuf) {
        buffer({BufRec::kindCounter, f, tick, 0, 0, track, series,
                value});
        return;
    }
    forEachSink([&](Sink &s) {
        s.counter(tick, track, flagName(f), series, value);
    });
}

} // namespace pciesim::trace
