#include "parallel.hh"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

#include "event.hh"
#include "invariant.hh"
#include "logging.hh"
#include "profiler.hh"
#include "trace.hh"

namespace pciesim
{

namespace par
{

bool engineActive = false;
ParallelEngine *activeEngine = nullptr;

namespace
{
thread_local EventQueue *tlsQueue = nullptr;
} // namespace

EventQueue *
currentQueue()
{
    return tlsQueue;
}

std::uint64_t
domainPacketId()
{
    EventQueue *q = tlsQueue;
    return (static_cast<std::uint64_t>(q->domainId()) << 48) |
           q->takeDomainSerial();
}

} // namespace par

ParallelEngine::ParallelEngine(std::vector<EventQueue *> queues,
                               Tick quantum, unsigned threads)
    : queues_(std::move(queues)),
      quantum_(quantum),
      threads_(std::min<unsigned>(std::max(threads, 1u),
                                  queues_.size())),
      mail_(queues_.size() * queues_.size())
{
    panicIf(quantum_ == 0, "parallel engine needs a nonzero quantum");
    panicIf(queues_.size() < 2,
            "parallel engine needs at least two domains");
}

std::vector<ParallelEngine::Op> &
ParallelEngine::outbox(EventQueue &dst)
{
    EventQueue *src = par::currentQueue();
    panicIf(src == nullptr,
            "cross-domain post from outside a worker window");
    return mail_[src->domainId() * queues_.size() + dst.domainId()];
}

void
ParallelEngine::postSchedule(EventQueue &dst, Event &event, Tick when)
{
    EventQueue *src = par::currentQueue();
    outbox(dst).push_back({Op::Kind::schedule, &event, when,
                           src->curTick(), src->nextTie(), nullptr});
}

void
ParallelEngine::postScheduleEarliest(EventQueue &dst, Event &event,
                                     Tick when, Tick key_order,
                                     std::uint64_t key_tie)
{
    outbox(dst).push_back({Op::Kind::scheduleEarliest, &event, when,
                           key_order, key_tie, nullptr});
}

void
ParallelEngine::postDeschedule(EventQueue &dst, Event &event)
{
    outbox(dst).push_back({Op::Kind::deschedule, &event, 0, 0, 0,
                           nullptr});
}

void
ParallelEngine::postCall(EventQueue &dst, Tick when,
                         std::function<void()> fn)
{
    EventQueue *src = par::currentQueue();
    outbox(dst).push_back({Op::Kind::call, nullptr, when,
                           src->curTick(), src->nextTie(),
                           std::move(fn)});
}

void
ParallelEngine::applyMailboxes()
{
    const std::size_t n = queues_.size();
    for (std::size_t dst = 0; dst < n; ++dst) {
        EventQueue &q = *queues_[dst];
        for (std::size_t src = 0; src < n; ++src) {
            auto &box = mail_[src * n + dst];
            for (Op &op : box) {
                if (op.kind == Op::Kind::deschedule) {
                    // Tolerant: the event may have fired (or been
                    // pulled earlier and fired) since the post.
                    if (op.event->scheduled())
                        q.deschedule(op.event);
                    continue;
                }
                // The conservative guarantee: anything posted
                // during the window that just completed lands at
                // or beyond its end (post tick + quantum >= end).
                PCIESIM_AUDIT(op.when >= windowEnd_,
                              "cross-domain event lands at ", op.when,
                              " inside the window ending at ",
                              windowEnd_,
                              " (link latency below the quantum?)");
                switch (op.kind) {
                  case Op::Kind::schedule:
                    q.scheduleKeyed(op.event, op.when, op.keyOrder,
                                    op.keyTie);
                    break;
                  case Op::Kind::scheduleEarliest:
                    q.scheduleEarliestKeyed(op.event, op.when,
                                            op.keyOrder, op.keyTie);
                    break;
                  case Op::Kind::call:
                    q.scheduleKeyed(new OneShotEvent(std::move(op.fn)),
                                    op.when, op.keyOrder, op.keyTie);
                    break;
                  default:
                    break;
                }
            }
            box.clear();
        }
    }
}

void
ParallelEngine::computeWindow(Tick max_tick)
{
    Tick global_min = maxTick;
    for (EventQueue *q : queues_)
        global_min = std::min(global_min, q->nextTick());
    if (global_min == maxTick || global_min > max_tick) {
        stop_.store(true, std::memory_order_relaxed);
        return;
    }
    Tick end = global_min + quantum_;
    if (end < global_min)
        end = maxTick; // saturate on overflow
    if (max_tick != maxTick && end > max_tick + 1)
        end = max_tick + 1;
    windowEnd_ = end;
}

void
ParallelEngine::enterDomain(unsigned d)
{
    par::tlsQueue = queues_[d];
#if PCIESIM_PROFILING
    prof::enterDomain(d);
#endif
#if PCIESIM_TRACING
    if (tracing_)
        trace::enterDomain(d);
#endif
}

void
ParallelEngine::leaveDomain()
{
    par::tlsQueue = nullptr;
#if PCIESIM_PROFILING
    prof::leaveDomain();
#endif
#if PCIESIM_TRACING
    if (tracing_)
        trace::leaveDomain();
#endif
}

Tick
ParallelEngine::run(Tick max_tick)
{
    const unsigned nq = queues_.size();

#if PCIESIM_PROFILING
    prof::configureDomains(nq);
#endif
#if PCIESIM_TRACING
    tracing_ = trace::beginParallel(nq);
#endif
    par::engineActive = true;
    par::activeEngine = this;

    stop_.store(false, std::memory_order_relaxed);
    computeWindow(max_tick);

    auto on_completion = [this, max_tick]() noexcept {
#if PCIESIM_TRACING
        if (tracing_)
            trace::flushParallel();
#endif
        applyMailboxes();
        computeWindow(max_tick);
    };

    if (threads_ == 1) {
        // Serial fast path: same window loop, same domain order,
        // same keyed heap — so the output matches any thread count
        // — but with no barrier and no thread spawn. This is what
        // keeps the one-thread engine within a few percent of the
        // legacy single-queue run.
        while (!stop_.load(std::memory_order_relaxed)) {
            const Tick horizon = windowEnd_ - 1;
            for (unsigned d = 0; d < nq; ++d) {
                enterDomain(d);
                queues_[d]->runWindow(horizon);
                leaveDomain();
            }
            on_completion();
        }
    } else {
        std::barrier barrier(threads_, on_completion);

        auto work = [&](unsigned w) {
            while (!stop_.load(std::memory_order_relaxed)) {
                const Tick horizon = windowEnd_ - 1;
                for (unsigned d = w; d < nq; d += threads_) {
                    enterDomain(d);
                    queues_[d]->runWindow(horizon);
                    leaveDomain();
                }
                barrier.arrive_and_wait();
            }
        };

        std::vector<std::thread> workers;
        workers.reserve(threads_ - 1);
        for (unsigned w = 1; w < threads_; ++w)
            workers.emplace_back(work, w);
        work(0);
        for (std::thread &t : workers)
            t.join();
    }

    par::activeEngine = nullptr;
    par::engineActive = false;
#if PCIESIM_TRACING
    if (tracing_)
        trace::endParallel();
#endif

    Tick result = 0;
    for (EventQueue *q : queues_)
        result = std::max(result, q->curTick());
    if (max_tick != maxTick)
        result = max_tick; // mirror EventQueue::run()'s horizon rule
    // Clamp every domain to the common end time so single-threaded
    // phases between runs see one consistent clock. Run-to-drain
    // only stops with every queue empty and a bounded run only with
    // every next event past the horizon, so nothing is skipped.
    for (EventQueue *q : queues_)
        q->advanceTo(result);
    return result;
}

} // namespace pciesim
