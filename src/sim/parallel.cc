#include "parallel.hh"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>
#include <utility>

#include "event.hh"
#include "invariant.hh"
#include "logging.hh"
#include "profiler.hh"
#include "trace.hh"

namespace pciesim
{

namespace par
{

bool engineActive = false;
ParallelEngine *activeEngine = nullptr;

namespace
{
thread_local EventQueue *tlsQueue = nullptr;
} // namespace

EventQueue *
currentQueue()
{
    return tlsQueue;
}

std::uint64_t
domainPacketId()
{
    EventQueue *q = tlsQueue;
    return (static_cast<std::uint64_t>(q->domainId()) << 48) |
           q->takeDomainSerial();
}

} // namespace par

ParallelEngine::ParallelEngine(std::vector<EventQueue *> queues,
                               Tick quantum, unsigned threads)
    : queues_(std::move(queues)),
      quantum_(quantum),
      threads_(std::min<unsigned>(std::max(threads, 1u),
                                  queues_.size())),
      mail_(queues_.size() * queues_.size())
{
    panicIf(quantum_ == 0, "parallel engine needs a nonzero quantum");
    panicIf(queues_.size() < 2,
            "parallel engine needs at least two domains");

    if constexpr (prof::compiledIn) {
        const std::size_t n = queues_.size();
        labels_.reserve(n);
        for (std::size_t d = 0; d < n; ++d)
            labels_.push_back("domain" + std::to_string(d));
        domainEvents_.init(n);
        domainActiveWindows_.init(n);
        domainStallWindows_.init(n);
        mailboxSent_.init(n);
        mailboxReceived_.init(n);
        windowsRun_.assign(n, 0);
        execSampled_.assign(n, 0);
        execNs_.assign(n, 0);
        barrierSeen_.assign(threads_, 0);
        barrierSampled_.assign(threads_, 0);
        barrierNs_.assign(threads_, 0);
        pairOps_.assign(n * n, 0);
    }
}

std::vector<ParallelEngine::Op> &
ParallelEngine::outbox(EventQueue &dst)
{
    EventQueue *src = par::currentQueue();
    panicIf(src == nullptr,
            "cross-domain post from outside a worker window");
    return mail_[src->domainId() * queues_.size() + dst.domainId()];
}

void
ParallelEngine::postSchedule(EventQueue &dst, Event &event, Tick when)
{
    EventQueue *src = par::currentQueue();
    outbox(dst).push_back({Op::Kind::schedule, &event, when,
                           src->curTick(), src->nextTie(), nullptr});
}

void
ParallelEngine::postScheduleEarliest(EventQueue &dst, Event &event,
                                     Tick when, Tick key_order,
                                     std::uint64_t key_tie)
{
    outbox(dst).push_back({Op::Kind::scheduleEarliest, &event, when,
                           key_order, key_tie, nullptr});
}

void
ParallelEngine::postDeschedule(EventQueue &dst, Event &event)
{
    outbox(dst).push_back({Op::Kind::deschedule, &event, 0, 0, 0,
                           nullptr});
}

void
ParallelEngine::postCall(EventQueue &dst, Tick when,
                         std::function<void()> fn)
{
    EventQueue *src = par::currentQueue();
    outbox(dst).push_back({Op::Kind::call, nullptr, when,
                           src->curTick(), src->nextTie(),
                           std::move(fn)});
}

void
ParallelEngine::applyMailboxes()
{
    const std::size_t n = queues_.size();
    for (std::size_t dst = 0; dst < n; ++dst) {
        EventQueue &q = *queues_[dst];
        for (std::size_t src = 0; src < n; ++src) {
            auto &box = mail_[src * n + dst];
#if PCIESIM_PROFILING
            // Mailbox telemetry rides the drain the barrier already
            // pays for: one size() per non-empty box, nothing on
            // the per-post hot path. Deterministic (simulated
            // history only), so safe in 1-vs-N byte-identical dumps.
            if (!box.empty()) {
                const std::uint64_t ops = box.size();
                mailboxSent_[src] += ops;
                mailboxReceived_[dst] += ops;
                pairOps_[src * n + dst] += ops;
            }
#endif
            for (Op &op : box) {
                if (op.kind == Op::Kind::deschedule) {
                    // Tolerant: the event may have fired (or been
                    // pulled earlier and fired) since the post.
                    if (op.event->scheduled())
                        q.deschedule(op.event);
                    continue;
                }
                // The conservative guarantee: anything posted
                // during the window that just completed lands at
                // or beyond its end (post tick + quantum >= end).
                PCIESIM_AUDIT(op.when >= windowEnd_,
                              "cross-domain event lands at ", op.when,
                              " inside the window ending at ",
                              windowEnd_,
                              " (link latency below the quantum?)");
                switch (op.kind) {
                  case Op::Kind::schedule:
                    q.scheduleKeyed(op.event, op.when, op.keyOrder,
                                    op.keyTie);
                    break;
                  case Op::Kind::scheduleEarliest:
                    q.scheduleEarliestKeyed(op.event, op.when,
                                            op.keyOrder, op.keyTie);
                    break;
                  case Op::Kind::call:
                    q.scheduleKeyed(new OneShotEvent(std::move(op.fn)),
                                    op.when, op.keyOrder, op.keyTie);
                    break;
                  default:
                    break;
                }
            }
            box.clear();
        }
    }
}

void
ParallelEngine::computeWindow(Tick max_tick)
{
    Tick global_min = maxTick;
    for (EventQueue *q : queues_)
        global_min = std::min(global_min, q->nextTick());
    if (global_min == maxTick || global_min > max_tick) {
        stop_.store(true, std::memory_order_relaxed);
        return;
    }
    Tick end = global_min + quantum_;
    if (end < global_min)
        end = maxTick; // saturate on overflow
    if (max_tick != maxTick && end > max_tick + 1)
        end = max_tick + 1;
    windowStart_ = global_min;
    windowEnd_ = end;
}

void
ParallelEngine::enterDomain(unsigned d)
{
    par::tlsQueue = queues_[d];
#if PCIESIM_PROFILING
    prof::enterDomain(d);
#endif
#if PCIESIM_TRACING
    if (tracing_)
        trace::enterDomain(d);
#endif
}

void
ParallelEngine::leaveDomain()
{
    par::tlsQueue = nullptr;
#if PCIESIM_PROFILING
    prof::leaveDomain();
#endif
#if PCIESIM_TRACING
    if (tracing_)
        trace::leaveDomain();
#endif
}

void
ParallelEngine::runDomainWindow(unsigned d, Tick horizon)
{
    enterDomain(d);
#if PCIESIM_PROFILING
    // pciesim-analyze: ignore[wall-clock]: sanctioned 1-in-N host
    // time subsample (DESIGN.md §14); sampled only when the
    // profiler is on (--profile) and times are reported, exactly
    // like prof's estMs — so unprofiled (and --no-timing) dumps
    // never see a wall-derived value.
    using clock = std::chrono::steady_clock;
    const bool timed =
        prof::enabled() && prof::reportTimes() &&
        (windowsRun_[d] & (wallSamplePeriod - 1)) == 0;
    ++windowsRun_[d];
    clock::time_point t0;
    if (timed) [[unlikely]]
        t0 = clock::now();
    const std::uint64_t executed = queues_[d]->runWindow(horizon);
    if (timed) [[unlikely]] {
        execNs_[d] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock::now() - t0)
                .count());
        ++execSampled_[d];
    }
    if (executed > 0) {
        domainEvents_[d] += executed;
        ++domainActiveWindows_[d];
#if PCIESIM_TRACING
        // One X span per active window on the domain's track —
        // buffered through the per-domain merge, so the trace stays
        // thread-count independent.
        if (tracing_ && d < trackNames_.size()) {
            TRACE_COMPLETE(trace::Flag::Parallel, windowStart_,
                           windowEnd_ - windowStart_, trackNames_[d],
                           "events=", executed);
        }
#endif
    } else if (!queues_[d]->empty()) {
        // Pending work beyond the horizon and nothing executable:
        // the domain is lookahead-limited this window.
        ++domainStallWindows_[d];
    }
#else
    queues_[d]->runWindow(horizon);
#endif
    leaveDomain();
}

Tick
ParallelEngine::run(Tick max_tick)
{
    const unsigned nq = queues_.size();

#if PCIESIM_PROFILING
    prof::configureDomains(nq);
#endif
#if PCIESIM_TRACING
    tracing_ = trace::beginParallel(nq);
    if (tracing_ && trace::enabled(trace::Flag::Parallel) &&
        trackNames_.empty()) {
        trackNames_.reserve(nq);
        for (unsigned d = 0; d < nq; ++d) {
            trackNames_.push_back(
                "system.parallel." +
                (d < labels_.size() ? labels_[d]
                                    : "domain" + std::to_string(d)));
        }
    }
#endif
    par::engineActive = true;
    par::activeEngine = this;

    stop_.store(false, std::memory_order_relaxed);
    computeWindow(max_tick);

    auto on_completion = [this, max_tick]() noexcept {
#if PCIESIM_TRACING
        if (tracing_) {
            trace::flushParallel();
            // Barrier B/E span on the engine track: one span per
            // window, its end marking the barrier that closed it.
            if (!trackNames_.empty() && windowEnd_ > windowStart_) {
                trace::emitBegin(trace::Flag::Parallel, windowStart_,
                                 "system.parallel.engine", "window");
                trace::emitEnd(trace::Flag::Parallel, windowEnd_ - 1,
                               "system.parallel.engine");
            }
        }
#endif
        applyMailboxes();
#if PCIESIM_PROFILING
        ++windows_;
#endif
        computeWindow(max_tick);
    };

    if (threads_ == 1) {
        // Serial fast path: same window loop, same domain order,
        // same keyed heap — so the output matches any thread count
        // — but with no barrier and no thread spawn. This is what
        // keeps the one-thread engine within a few percent of the
        // legacy single-queue run.
        while (!stop_.load(std::memory_order_relaxed)) {
            const Tick horizon = windowEnd_ - 1;
            for (unsigned d = 0; d < nq; ++d)
                runDomainWindow(d, horizon);
            on_completion();
        }
    } else {
        std::barrier barrier(threads_, on_completion);

        auto work = [&](unsigned w) {
#if PCIESIM_PROFILING
            std::uint64_t seen = 0;
#endif
            while (!stop_.load(std::memory_order_relaxed)) {
                const Tick horizon = windowEnd_ - 1;
                for (unsigned d = w; d < nq; d += threads_)
                    runDomainWindow(d, horizon);
#if PCIESIM_PROFILING
                // pciesim-analyze: ignore[wall-clock]: sanctioned
                // 1-in-N barrier-wait subsample (DESIGN.md §14),
                // taken only under --profile with times reported.
                const bool timed =
                    prof::enabled() && prof::reportTimes() &&
                    (seen++ & (wallSamplePeriod - 1)) == 0;
                if (timed) [[unlikely]] {
                    // pciesim-analyze: ignore[wall-clock]: same
                    // sanctioned barrier-wait subsample gate as
                    // above.
                    using clock = std::chrono::steady_clock;
                    const clock::time_point t0 = clock::now();
                    barrier.arrive_and_wait();
                    barrierNs_[w] += static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(clock::now() -
                                                      t0)
                            .count());
                    ++barrierSampled_[w];
                } else {
                    barrier.arrive_and_wait();
                }
#else
                barrier.arrive_and_wait();
#endif
            }
#if PCIESIM_PROFILING
            barrierSeen_[w] += seen;
#endif
        };

        std::vector<std::thread> workers;
        workers.reserve(threads_ - 1);
        for (unsigned w = 1; w < threads_; ++w)
            workers.emplace_back(work, w);
        work(0);
        for (std::thread &t : workers)
            t.join();
    }

    par::activeEngine = nullptr;
    par::engineActive = false;
#if PCIESIM_TRACING
    if (tracing_)
        trace::endParallel();
#endif

    Tick result = 0;
    for (EventQueue *q : queues_)
        result = std::max(result, q->curTick());
    if (max_tick != maxTick)
        result = max_tick; // mirror EventQueue::run()'s horizon rule
    // Clamp every domain to the common end time so single-threaded
    // phases between runs see one consistent clock. Run-to-drain
    // only stops with every queue empty and a bounded run only with
    // every next event past the horizon, so nothing is skipped.
    for (EventQueue *q : queues_)
        q->advanceTo(result);
    return result;
}

//
// Telemetry (DESIGN.md §14)
//

double
ParallelEngine::estExecNs() const
{
#if PCIESIM_PROFILING
    double total = 0.0;
    for (std::size_t d = 0; d < execNs_.size(); ++d) {
        if (execSampled_[d] == 0)
            continue;
        total += static_cast<double>(execNs_[d]) *
                 static_cast<double>(windowsRun_[d]) /
                 static_cast<double>(execSampled_[d]);
    }
    return total;
#else
    return 0.0;
#endif
}

double
ParallelEngine::estSyncNs() const
{
#if PCIESIM_PROFILING
    double total = 0.0;
    for (std::size_t w = 0; w < barrierNs_.size(); ++w) {
        if (barrierSampled_[w] == 0)
            continue;
        total += static_cast<double>(barrierNs_[w]) *
                 static_cast<double>(barrierSeen_[w]) /
                 static_cast<double>(barrierSampled_[w]);
    }
    return total;
#else
    return 0.0;
#endif
}

void
ParallelEngine::registerStats(stats::Registry &reg,
                              const std::vector<std::string> &labels)
{
#if PCIESIM_PROFILING
    using stats::Unit;
    const std::size_t n = queues_.size();
    for (std::size_t d = 0; d < n && d < labels.size(); ++d) {
        if (labels[d].empty())
            continue;
        labels_[d] = labels[d];
        domainEvents_.subname(d, labels[d]);
        domainActiveWindows_.subname(d, labels[d]);
        domainStallWindows_.subname(d, labels[d]);
        mailboxSent_.subname(d, labels[d]);
        mailboxReceived_.subname(d, labels[d]);
    }

    reg.add("system.parallel.windows", &windows_,
            "quantum windows completed by the engine", Unit::Count);
    reg.add("system.parallel.domainEvents", &domainEvents_,
            "events executed per domain inside engine windows",
            Unit::Count);
    reg.add("system.parallel.domainActiveWindows",
            &domainActiveWindows_,
            "windows in which the domain executed >= 1 event",
            Unit::Count);
    reg.add("system.parallel.domainStallWindows",
            &domainStallWindows_,
            "lookahead-limited windows: pending work beyond the "
            "horizon, nothing executable",
            Unit::Count);
    reg.add("system.parallel.mailboxSent", &mailboxSent_,
            "cross-domain mailbox operations posted by each domain",
            Unit::Count);
    reg.add("system.parallel.mailboxReceived", &mailboxReceived_,
            "cross-domain mailbox operations delivered to each "
            "domain",
            Unit::Count);

    domainsStat_ = [this] {
        return static_cast<double>(queues_.size());
    };
    reg.add("system.parallel.domains", &domainsStat_,
            "link domains driven by the engine", Unit::Count);
    quantumStat_ = [this] {
        return static_cast<double>(quantum_);
    };
    reg.add("system.parallel.quantumTicks", &quantumStat_,
            "synchronization quantum (minimum cross-domain "
            "lookahead)",
            Unit::Tick);
    loadImbalanceStat_ = [this] { return loadImbalance(); };
    reg.add("system.parallel.loadImbalance", &loadImbalanceStat_,
            "max/mean events per domain (1.0 == perfectly "
            "balanced)",
            Unit::Ratio);
    mailboxIntensityStat_ = [this] {
        const std::uint64_t events = domainEvents_.total();
        return events == 0
                   ? 0.0
                   : static_cast<double>(mailboxSent_.total()) /
                         static_cast<double>(events);
    };
    reg.add("system.parallel.mailboxIntensity",
            &mailboxIntensityStat_,
            "cross-domain mailbox operations per executed event",
            Unit::Ratio);

    // Wall-clock-derived formulas: read 0 whenever time reporting
    // is suppressed (--no-timing), which keeps 1-vs-N stats dumps
    // byte-identical — the same contract as the profiler's estMs.
    syncOverheadStat_ = [this] { return syncOverheadFraction(); };
    reg.add("system.parallel.syncOverheadFraction",
            &syncOverheadStat_,
            "estimated barrier-wait wall time over total engine "
            "wall time; reads 0 under --no-timing",
            Unit::Ratio);
    execMsEstStat_ = [this] {
        return prof::enabled() && prof::reportTimes()
                   ? estExecNs() / 1e6
                   : 0.0;
    };
    reg.add("system.parallel.execMsEst", &execMsEstStat_,
            "estimated wall ms executing domain windows (0 under "
            "--no-timing)");
    syncWaitMsEstStat_ = [this] {
        return prof::enabled() && prof::reportTimes()
                   ? estSyncNs() / 1e6
                   : 0.0;
    };
    reg.add("system.parallel.syncWaitMsEst", &syncWaitMsEstStat_,
            "estimated wall ms waiting at window barriers (0 under "
            "--no-timing)");
#else
    (void)reg;
    (void)labels;
#endif
}

std::uint64_t
ParallelEngine::windowsSynced() const
{
    return windows_.value();
}

std::uint64_t
ParallelEngine::domainEvents(unsigned d) const
{
    return d < domainEvents_.size() ? domainEvents_[d].value() : 0;
}

std::uint64_t
ParallelEngine::stallWindows(unsigned d) const
{
    return d < domainStallWindows_.size()
               ? domainStallWindows_[d].value()
               : 0;
}

std::uint64_t
ParallelEngine::mailboxSent(unsigned d) const
{
    return d < mailboxSent_.size() ? mailboxSent_[d].value() : 0;
}

std::uint64_t
ParallelEngine::mailboxReceived(unsigned d) const
{
    return d < mailboxReceived_.size() ? mailboxReceived_[d].value()
                                       : 0;
}

std::uint64_t
ParallelEngine::mailboxPair(unsigned src, unsigned dst) const
{
    const std::size_t n = queues_.size();
    const std::size_t i =
        static_cast<std::size_t>(src) * n + dst;
    return i < pairOps_.size() ? pairOps_[i] : 0;
}

std::pair<unsigned, std::uint64_t>
ParallelEngine::hottestPeerOf(unsigned d) const
{
    const std::size_t n = queues_.size();
    unsigned best = d;
    std::uint64_t best_ops = 0;
    for (unsigned src = 0; src < n; ++src) {
        const std::uint64_t ops = mailboxPair(src, d);
        if (ops > best_ops) {
            best = src;
            best_ops = ops;
        }
    }
    return {best, best_ops};
}

double
ParallelEngine::loadImbalance() const
{
    if (domainEvents_.size() == 0)
        return 0.0;
    std::uint64_t max = 0;
    const std::uint64_t total = domainEvents_.total();
    for (std::size_t d = 0; d < domainEvents_.size(); ++d)
        max = std::max(max, domainEvents_[d].value());
    if (total == 0)
        return 0.0;
    const double mean = static_cast<double>(total) /
                        static_cast<double>(domainEvents_.size());
    return static_cast<double>(max) / mean;
}

double
ParallelEngine::syncOverheadFraction() const
{
#if PCIESIM_PROFILING
    if (!prof::enabled() || !prof::reportTimes())
        return 0.0;
    const double sync = estSyncNs();
    const double exec = estExecNs();
    return sync + exec > 0.0 ? sync / (sync + exec) : 0.0;
#else
    return 0.0;
#endif
}

const std::string &
ParallelEngine::domainLabel(unsigned d) const
{
    static const std::string empty;
    return d < labels_.size() ? labels_[d] : empty;
}

} // namespace pciesim
