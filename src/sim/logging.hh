/**
 * @file
 * Error and status reporting, modelled on gem5's base/logging.hh.
 *
 * panic()  - a simulator bug; something that must never happen.
 * fatal()  - a user error (bad configuration); simulation cannot go on.
 * warn()   - suspicious but survivable condition.
 * inform() - normal status output.
 *
 * Messages are built with ostream insertion so any streamable type can
 * be passed: panic("bad seq ", seq, " at tick ", tick).
 */

#ifndef PCIESIM_SIM_LOGGING_HH
#define PCIESIM_SIM_LOGGING_HH

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pciesim
{

namespace logging_detail
{

/** Concatenate all arguments using ostream insertion. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

/** Abort: an internal simulator invariant was violated. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    logging_detail::panicImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

/** Exit: the user's configuration made continuing impossible. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    logging_detail::fatalImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

/** Print a warning about questionable behaviour and continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    logging_detail::warnImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    logging_detail::informImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

/**
 * Panic if a condition does not hold; used for internal invariants
 * that must survive release builds (unlike assert).
 *
 * A macro rather than a function so the message arguments — which
 * often build std::strings (pkt->toString() and friends) — are only
 * evaluated when the condition actually fires. These guards sit on
 * the per-packet hot path, where eager message construction costs
 * more than the guarded work itself.
 */
#define panicIf(cond, ...)                                          \
    do {                                                            \
        if (static_cast<bool>(cond)) [[unlikely]]                   \
            ::pciesim::panic(__VA_ARGS__);                          \
    } while (0)

/** Fatal if a condition holds; for configuration validation. */
#define fatalIf(cond, ...)                                          \
    do {                                                            \
        if (static_cast<bool>(cond)) [[unlikely]]                   \
            ::pciesim::fatal(__VA_ARGS__);                          \
    } while (0)

/**
 * Whether panic()/fatal() throw exceptions instead of aborting the
 * process. Tests enable this to assert on error paths.
 */
void setLoggingThrows(bool throws);

/**
 * Register a cleanup hook that runs once, in registration order,
 * before a non-throwing panic()/fatal() terminates the process.
 * The trace layer uses this to flush the Chrome sink's closing
 * bracket so a trace file from a crashed run still parses.
 * Reentry-guarded: a hook that itself panics cannot recurse, and
 * hooks do not run again from a subsequent atexit pass.
 */
void registerCrashHook(std::function<void()> hook);

/** Suppress inform() output (benches with formatted tables). */
void setInformEnabled(bool enabled);

/** Exception type thrown by panic() when setLoggingThrows(true). */
struct PanicError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Exception type thrown by fatal() when setLoggingThrows(true). */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

} // namespace pciesim

#endif // PCIESIM_SIM_LOGGING_HH
