/**
 * @file
 * Base class for all named simulation components.
 */

#ifndef PCIESIM_SIM_SIM_OBJECT_HH
#define PCIESIM_SIM_SIM_OBJECT_HH

#include <string>

#include "ticks.hh"

namespace pciesim
{

class Simulation;
class EventQueue;
class Event;
namespace stats { class Registry; }

/**
 * A named component registered with a Simulation.
 *
 * Life cycle: construct (wire ports) -> init() on every object
 * (register stats, sanity-check wiring) -> startup() on every object
 * (schedule initial events) -> event loop.
 *
 * Every object binds to a link domain at construction (whatever
 * domain the owning Simulation's DomainScope selects; domain 0 when
 * unpartitioned): curTick()/schedule()/eventq() all operate on the
 * home domain's queue. Cross-domain interactions go through the
 * link layer or Simulation::callAt(), never by scheduling directly
 * on a foreign queue.
 */
class SimObject
{
  public:
    /**
     * @param sim  The owning simulation; the object registers itself.
     * @param name Hierarchical instance name, e.g. "system.rc".
     */
    SimObject(Simulation &sim, std::string name);

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    /** Register statistics, validate wiring. Called once. */
    virtual void init() {}

    /** Schedule initial events. Called once, after every init(). */
    virtual void startup() {}

    Simulation &sim() { return sim_; }

    /** Shorthand accessors used throughout component code. */
    Tick curTick() const;
    EventQueue &eventq();
    stats::Registry &statsRegistry();

    /** Schedule @p event @p delay ticks from now. */
    void schedule(Event &event, Tick delay);

    /** Schedule @p event at absolute tick @p when. */
    void scheduleAbs(Event &event, Tick when);

  private:
    Simulation &sim_;
    std::string name_;
    /** The home domain's queue; set once by the constructor. */
    EventQueue *homeQueue_ = nullptr;
};

} // namespace pciesim

#endif // PCIESIM_SIM_SIM_OBJECT_HH
