#include "simulation.hh"

#include "logging.hh"
#include "sim_object.hh"

namespace pciesim
{

Simulation::Simulation() = default;

Simulation::~Simulation() = default;

void
Simulation::registerObject(SimObject *obj)
{
    panicIf(initialized_,
            "object '", obj->name(), "' created after initialize()");
    objects_.push_back(obj);
}

void
Simulation::initialize()
{
    if (initialized_)
        return;
    initialized_ = true;
    for (SimObject *obj : objects_)
        obj->init();
    for (SimObject *obj : objects_)
        obj->startup();
}

Tick
Simulation::run(Tick max_tick)
{
    initialize();
    return eventq_.run(max_tick);
}

Tick
Simulation::runFor(Tick duration)
{
    initialize();
    return eventq_.run(eventq_.curTick() + duration);
}

SimObject::SimObject(Simulation &sim, std::string name)
    : sim_(sim), name_(std::move(name))
{
    sim.registerObject(this);
}

Tick
SimObject::curTick() const
{
    return sim_.curTick();
}

EventQueue &
SimObject::eventq()
{
    return sim_.eventq();
}

stats::Registry &
SimObject::statsRegistry()
{
    return sim_.statsRegistry();
}

void
SimObject::schedule(Event &event, Tick delay)
{
    sim_.eventq().schedule(&event, sim_.curTick() + delay);
}

void
SimObject::scheduleAbs(Event &event, Tick when)
{
    sim_.eventq().schedule(&event, when);
}

} // namespace pciesim
