#include "simulation.hh"

#include <utility>

#include "event.hh"
#include "logging.hh"
#include "parallel.hh"
#include "sim_object.hh"

namespace pciesim
{

Simulation::Simulation() = default;

Simulation::~Simulation() = default;

void
Simulation::registerObject(SimObject *obj)
{
    panicIf(initialized_,
            "object '", obj->name(), "' created after initialize()");
    objects_.push_back(obj);
}

unsigned
Simulation::addDomain(const std::string &label)
{
    panicIf(initialized_, "domain added after initialize()");
    if (extraQueues_.empty()) {
        eventq_.configureParallelKeys(0);
        domainLabels_.assign(1, "host");
    }
    const unsigned id = numDomains();
    extraQueues_.push_back(std::make_unique<EventQueue>());
    extraQueues_.back()->configureParallelKeys(id);
    domainLabels_.push_back(
        label.empty() ? "domain" + std::to_string(id) : label);
    return id;
}

const std::string &
Simulation::domainLabel(unsigned d) const
{
    static const std::string fallback;
    return d < domainLabels_.size() ? domainLabels_[d] : fallback;
}

EventQueue &
Simulation::domainQueue(unsigned d)
{
    panicIf(d >= numDomains(), "no such domain ", d);
    return d == 0 ? eventq_ : *extraQueues_[d - 1];
}

void
Simulation::setupParallel(unsigned threads, Tick quantum)
{
    panicIf(engine_ != nullptr, "parallel engine already attached");
    panicIf(numDomains() < 2,
            "setupParallel() needs a partitioned topology");
    std::vector<EventQueue *> queues;
    queues.reserve(numDomains());
    for (unsigned d = 0; d < numDomains(); ++d)
        queues.push_back(&domainQueue(d));
    engine_ = std::make_unique<ParallelEngine>(std::move(queues),
                                               quantum, threads);
    // The telemetry block (DESIGN.md §14) registers here rather
    // than in the engine constructor so direct engine construction
    // (unit tests) stays registry-free; every partitioned topology
    // comes through this path.
    engine_->registerStats(stats_, domainLabels_);
}

void
Simulation::callAt(unsigned d, Tick when, std::function<void()> fn)
{
    EventQueue &q = domainQueue(d);
    if (par::engineActive && par::currentQueue() != &q) {
        engine_->postCall(q, when, std::move(fn));
        return;
    }
    q.schedule(new OneShotEvent(std::move(fn)), when);
}

std::uint64_t
Simulation::eventsProcessed() const
{
    std::uint64_t total = eventq_.numProcessed();
    for (const auto &q : extraQueues_)
        total += q->numProcessed();
    return total;
}

void
Simulation::initialize()
{
    if (initialized_)
        return;
    initialized_ = true;
    for (SimObject *obj : objects_)
        obj->init();
    for (SimObject *obj : objects_)
        obj->startup();
}

Tick
Simulation::run(Tick max_tick)
{
    initialize();
    if (engine_)
        return engine_->run(max_tick);
    return eventq_.run(max_tick);
}

Tick
Simulation::runFor(Tick duration)
{
    initialize();
    return run(curTick() + duration);
}

SimObject::SimObject(Simulation &sim, std::string name)
    : sim_(sim), name_(std::move(name))
{
    sim.registerObject(this);
    homeQueue_ = &sim.domainQueue(sim.buildDomain());
}

Tick
SimObject::curTick() const
{
    return homeQueue_->curTick();
}

EventQueue &
SimObject::eventq()
{
    return *homeQueue_;
}

stats::Registry &
SimObject::statsRegistry()
{
    return sim_.statsRegistry();
}

void
SimObject::schedule(Event &event, Tick delay)
{
    homeQueue_->schedule(&event, homeQueue_->curTick() + delay);
}

void
SimObject::scheduleAbs(Event &event, Tick when)
{
    homeQueue_->schedule(&event, when);
}

} // namespace pciesim
