/**
 * @file
 * A flag-gated tracing subsystem modeled on gem5's DPRINTF.
 *
 * Each trace point belongs to a named Flag; at run time a bitmask
 * selects which flags are live, and with PCIESIM_TRACING compiled
 * to 0 every trace macro disappears entirely. Records are fanned
 * out to the installed sinks (sim/trace_sink.hh): a text sink for
 * grep-style debugging and a Chrome trace-event sink that renders
 * link occupancy, replay/retrain episodes, and DMA spans on a
 * timeline in Perfetto.
 *
 * The emitting object passes its own name as the track, so the
 * viewer shows one row per SimObject — the same shape as gem5's
 * per-object DPRINTF name prefix.
 *
 * Usage:
 *   TRACE_MSG(Flag::Replay, curTick(), name(),
 *             "NAK scheduled for seq ", seq);
 *   TRACE_SPAN_BEGIN(Flag::Dma, curTick(), name(), "dma read");
 *   TRACE_SPAN_END(Flag::Dma, curTick(), name());
 */

#ifndef PCIESIM_SIM_TRACE_HH
#define PCIESIM_SIM_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "logging.hh"
#include "ticks.hh"
#include "trace_sink.hh"

// Compile-time master switch: 0 removes every trace macro and its
// argument evaluation from the build (CMake option PCIESIM_TRACING).
#ifndef PCIESIM_TRACING
#define PCIESIM_TRACING 1
#endif

namespace pciesim::trace
{

/** Named trace categories, one bit each in the runtime mask. */
enum class Flag : std::uint32_t
{
    Link,     ///< wire occupancy, TLP/DLLP transmission
    Replay,   ///< LCRC errors, NAKs, replay-buffer activity
    Retrain,  ///< link retraining episodes
    Tlp,      ///< per-TLP lifecycle (injection, delivery)
    Dma,      ///< DMA engine transfer spans
    Mmio,     ///< kernel MMIO request spans
    Switch,   ///< switch forwarding decisions
    Rc,       ///< root-complex forwarding
    Workload, ///< workload-level phases (dd blocks)
    Stats,    ///< periodic stats-sampler time series
    Parallel, ///< parallel-engine window/barrier schedule
    NumFlags
};

constexpr std::size_t numFlags =
    static_cast<std::size_t>(Flag::NumFlags);

/** The runtime enable mask; read on every trace-point hit. */
extern std::uint32_t enabledMask;

/** Whether any sink is installed (checked with the mask). */
extern bool sinksActive;

inline bool
enabled(Flag f)
{
#if PCIESIM_TRACING
    return sinksActive &&
           (enabledMask & (1u << static_cast<std::uint32_t>(f)));
#else
    (void)f;
    return false;
#endif
}

/** The flag's canonical name ("Link", "Replay", ...). */
const char *flagName(Flag f);

/**
 * Parse a comma-separated flag list ("Link,Dma", case-sensitive)
 * into a mask. "All" (or "all") selects every flag. Unknown names
 * are a fatal configuration error.
 */
std::uint32_t parseFlags(const std::string &spec);

/** Replace the runtime enable mask. */
void setEnabledFlags(std::uint32_t mask);

/** Parse @p spec and install it as the enable mask. */
void setEnabledFlags(const std::string &spec);

/** Install a text sink writing to @p path ("-" for stdout). */
void openTextSink(const std::string &path);

/** Install a Chrome trace-event sink writing to @p path. */
void openChromeSink(const std::string &path);

/** The Chrome sink, if one is installed (for tests). */
ChromeTraceSink *chromeSink();

/** Flush and close all sinks; trace points become no-ops. */
void closeSinks();

/**
 * Apply topology-level trace configuration: @p flags_spec selects
 * flags (empty keeps the current mask, defaulting to All when a
 * sink is opened here), @p chrome_path opens a Chrome sink when
 * non-empty. Called from system constructors with the SystemConfig
 * knobs.
 */
void applyConfig(const std::string &flags_spec,
                 const std::string &chrome_path);

// Record emission: these fan out to every installed sink. Call
// through the macros below so disabled flags cost one mask test.
void emitMessage(Flag f, Tick tick, const std::string &track,
                 const std::string &text);
void emitBegin(Flag f, Tick tick, const std::string &track,
               const std::string &name);
void emitEnd(Flag f, Tick tick, const std::string &track);
void emitComplete(Flag f, Tick start, Tick duration,
                  const std::string &track,
                  const std::string &name);
void emitCounter(Flag f, Tick tick, const std::string &track,
                 const std::string &series, double value);

/** @{
 * Shard-aware emission for parallel runs (DESIGN.md §10): while
 * the engine runs, each domain appends records to a private buffer
 * (bound to the worker thread while its window executes) and the
 * barrier completion step merges them into the sinks sorted by
 * (tick, domain id, sequence) — so trace output is byte-identical
 * for any thread count. All hooks are no-ops (and emission stays
 * direct) when no sink is installed.
 */

/** Engage buffering for @p n domains; false if no sink is open. */
bool beginParallel(unsigned n);

/** Bind domain @p d's buffer to this thread. */
void enterDomain(unsigned d);

/** Unbind this thread's buffer. */
void leaveDomain();

/** Merge and emit all buffered records (barrier completion). */
void flushParallel();

/** Final flush and return to direct emission. */
void endParallel();
/** @} */

} // namespace pciesim::trace

#if PCIESIM_TRACING

/** Free-form trace message; args use ostream insertion. */
#define TRACE_MSG(flag, tick, track, ...)                           \
    do {                                                            \
        if (::pciesim::trace::enabled(flag)) [[unlikely]] {         \
            ::pciesim::trace::emitMessage(                          \
                flag, tick, track,                                  \
                ::pciesim::logging_detail::concat(__VA_ARGS__));    \
        }                                                           \
    } while (0)

/** Open a duration span on the object's track. */
#define TRACE_SPAN_BEGIN(flag, tick, track, ...)                    \
    do {                                                            \
        if (::pciesim::trace::enabled(flag)) [[unlikely]] {         \
            ::pciesim::trace::emitBegin(                            \
                flag, tick, track,                                  \
                ::pciesim::logging_detail::concat(__VA_ARGS__));    \
        }                                                           \
    } while (0)

/** Close the innermost open span on the object's track. */
#define TRACE_SPAN_END(flag, tick, track)                           \
    do {                                                            \
        if (::pciesim::trace::enabled(flag)) [[unlikely]]           \
            ::pciesim::trace::emitEnd(flag, tick, track);           \
    } while (0)

/** A span with a known duration (e.g. wire occupancy). */
#define TRACE_COMPLETE(flag, start, dur, track, ...)                \
    do {                                                            \
        if (::pciesim::trace::enabled(flag)) [[unlikely]] {         \
            ::pciesim::trace::emitComplete(                         \
                flag, start, dur, track,                            \
                ::pciesim::logging_detail::concat(__VA_ARGS__));    \
        }                                                           \
    } while (0)

/** A time-series sample (Chrome counter track). */
#define TRACE_COUNTER(flag, tick, track, series, value)             \
    do {                                                            \
        if (::pciesim::trace::enabled(flag)) [[unlikely]] {         \
            ::pciesim::trace::emitCounter(flag, tick, track,        \
                                          series, value);           \
        }                                                           \
    } while (0)

#else // !PCIESIM_TRACING

#define TRACE_MSG(flag, tick, track, ...) do {} while (0)
#define TRACE_SPAN_BEGIN(flag, tick, track, ...) do {} while (0)
#define TRACE_SPAN_END(flag, tick, track) do {} while (0)
#define TRACE_COMPLETE(flag, start, dur, track, ...) do {} while (0)
#define TRACE_COUNTER(flag, tick, track, series, value)             \
    do {} while (0)

#endif // PCIESIM_TRACING

#endif // PCIESIM_SIM_TRACE_HH
