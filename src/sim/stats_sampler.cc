#include "stats_sampler.hh"

#include "event_queue.hh"
#include "logging.hh"
#include "simulation.hh"
#include "trace.hh"

namespace pciesim
{

StatsSampler::StatsSampler(Simulation &sim, const std::string &name,
                           Tick interval)
    : SimObject(sim, name), interval_(interval),
      sampleEvent_(this, name + ".sampleEvent")
{
    fatalIf(interval_ == 0,
            "stats sampler '", name, "' needs a nonzero interval");
}

void
StatsSampler::addGauge(const std::string &series,
                       std::function<double()> probe)
{
    names_.push_back(series);
    probes_.push_back(Probe{std::move(probe), false, 0.0});
}

void
StatsSampler::addRate(const std::string &series,
                      std::function<double()> probe)
{
    names_.push_back(series);
    probes_.push_back(Probe{std::move(probe), true, 0.0});
}

void
StatsSampler::init()
{
    statsRegistry().add(name() + ".samplesTaken", &samplesTaken_,
                        "periodic stats samples emitted",
                        stats::Unit::Count);
}

void
StatsSampler::startup()
{
    if (!probes_.empty())
        schedule(sampleEvent_, interval_);
}

void
StatsSampler::sampleNow()
{
    Row row;
    row.tick = curTick();
    row.values.reserve(probes_.size());
    double secs = ticksToSeconds(interval_);
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        Probe &p = probes_[i];
        double raw = p.fn();
        double v = raw;
        if (p.isRate) {
            v = (raw - p.lastValue) / secs;
            p.lastValue = raw;
        }
        row.values.push_back(v);
        TRACE_COUNTER(trace::Flag::Stats, row.tick, name(),
                      names_[i], v);
    }
    rows_.push_back(std::move(row));
    ++samplesTaken_;

    // Only reschedule while the simulation still has work: a
    // self-perpetuating timer would otherwise keep run() from
    // ever draining the queue.
    if (!eventq().empty())
        schedule(sampleEvent_, interval_);
}

} // namespace pciesim
