/**
 * @file
 * Debug-gated structural self-checks (audits) for the simulator.
 *
 * An audit is an internal-consistency sweep that is too expensive
 * for the per-event hot path of a release build but invaluable when
 * chasing a divergence in a week-long run: event-queue heap order,
 * packet-pool double frees, replay-buffer sequence monotonicity,
 * link credit accounting.
 *
 * Audits compile to nothing unless the build defines
 * PCIESIM_ENABLE_AUDIT (the `audit` CMake preset, or
 * -DPCIESIM_AUDIT=ON). The macro contract:
 *
 *  - PCIESIM_AUDIT(cond, msg...) panics with "audit failed: " and
 *    the message when @p cond is false. In non-audit builds the
 *    condition and message arguments are NOT evaluated, so they may
 *    be arbitrarily expensive (full container scans, toString()).
 *
 *  - PCIESIM_AUDIT_ONLY(code) expands @p code only in audit builds;
 *    use it for audit-only members, counters, and statements.
 *
 *  - pciesim::auditEnabled is a constexpr bool for runtime branches
 *    and test gating.
 *
 * The enable flag must be globally consistent within one build
 * (audit-only members change class layouts); CMake applies it with
 * add_compile_definitions so every translation unit agrees.
 */

#ifndef PCIESIM_SIM_INVARIANT_HH
#define PCIESIM_SIM_INVARIANT_HH

#include "sim/logging.hh"

#ifdef PCIESIM_ENABLE_AUDIT

#define PCIESIM_AUDIT(cond, ...)                                    \
    do {                                                            \
        if (!static_cast<bool>(cond)) [[unlikely]]                  \
            ::pciesim::panic("audit failed: ", __VA_ARGS__);        \
    } while (0)

#define PCIESIM_AUDIT_ONLY(...) __VA_ARGS__

#else

#define PCIESIM_AUDIT(cond, ...)                                    \
    do {                                                            \
    } while (0)

#define PCIESIM_AUDIT_ONLY(...)

#endif // PCIESIM_ENABLE_AUDIT

namespace pciesim
{

/** Whether this build was compiled with invariant audits enabled. */
#ifdef PCIESIM_ENABLE_AUDIT
inline constexpr bool auditEnabled = true;
#else
inline constexpr bool auditEnabled = false;
#endif

} // namespace pciesim

#endif // PCIESIM_SIM_INVARIANT_HH
