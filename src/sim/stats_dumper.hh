/**
 * @file
 * Periodic dump/reset statistics epochs, modeled on gem5's m5out
 * stats.txt: a SimObject that wakes every statsDumpInterval ticks,
 * writes every registered statistic inside a Begin/End banner pair,
 * then resets the registry so each epoch covers only its own
 * interval. A consumer concatenating epochs recovers cumulative
 * totals; a consumer diffing epochs sees phase behaviour (warm-up
 * vs. steady state) that a single end-of-run dump averages away.
 *
 * Like StatsSampler, the dumper reschedules itself only while other
 * events remain in the queue, so it never keeps a finished
 * simulation alive — and the partial final epoch is emitted by the
 * owning system after run() returns, via dumpEpoch().
 */

#ifndef PCIESIM_SIM_STATS_DUMPER_HH
#define PCIESIM_SIM_STATS_DUMPER_HH

#include <fstream>
#include <memory>
#include <string>

#include "event.hh"
#include "sim_object.hh"

namespace pciesim
{

/** Emits m5out-style Begin/End stats epochs on a fixed period. */
class StatsDumper : public SimObject
{
  public:
    /**
     * Dump every @p interval ticks to @p path ("-" or empty for
     * stdout; otherwise a file truncated on the first epoch).
     */
    StatsDumper(Simulation &sim, const std::string &name,
                Tick interval, const std::string &path = "-");

    /** Epochs written so far (including any final partial one). */
    unsigned epochsDumped() const { return epoch_; }

    /**
     * Write one epoch now — banner, stats dump, profiler table when
     * profiling is live — then reset the registry so the next epoch
     * covers only its own interval. The owning system calls this
     * once after run() with @p reset_after false to flush the final
     * partial epoch while leaving end-of-run readouts intact.
     */
    void dumpEpoch(bool reset_after = true);

    void startup() override;

  private:
    void dumpNow();
    std::ostream &out();

    Tick interval_;
    std::string path_;
    std::unique_ptr<std::ofstream> file_;
    unsigned epoch_ = 0;
    MemberEventWrapper<StatsDumper, &StatsDumper::dumpNow>
        dumpEvent_;
};

} // namespace pciesim

#endif // PCIESIM_SIM_STATS_DUMPER_HH
