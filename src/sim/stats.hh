/**
 * @file
 * A statistics package modeled on gem5 v20's stats framework:
 * named scalar, vector, distribution, histogram, and formula
 * statistics registered in a per-simulation registry, each carrying
 * a description and a unit. Dumpable as text (with units) and as a
 * versioned machine-readable JSON document (see dumpJson).
 * Components hold the stat objects; the registry holds non-owning
 * pointers for enumeration.
 */

#ifndef PCIESIM_SIM_STATS_HH
#define PCIESIM_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace pciesim::stats
{

/**
 * Measurement unit of a statistic, printed in dumps and exported in
 * stats.json. The small fixed set covers everything the simulator
 * reports; None suppresses the unit annotation entirely.
 */
enum class Unit
{
    None,          ///< dimensionless / unspecified
    Count,         ///< plain event count
    Tick,          ///< simulated picoseconds
    Nanosecond,    ///< reported nanoseconds
    Second,        ///< reported seconds
    Byte,          ///< payload bytes
    Bit,           ///< payload bits
    BytePerSecond, ///< throughput
    BitPerSecond,  ///< throughput (the paper's Gbit/s axis)
    Ratio,         ///< unitless fraction in [0, 1]
    Percent,       ///< unitless fraction scaled to 100
};

/** Canonical short name of a unit ("count", "tick", ...). */
const char *unitName(Unit u);

/** A monotonically increasing event count. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** An arbitrary scalar quantity. */
class Scalar
{
  public:
    Scalar &operator=(double v) { value_ = v; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * A fixed-size array of counters with per-element subnames — the
 * gem5 Vector stat. Used for per-port and per-direction counts
 * where the elements share one description and unit. Elements
 * without an explicit subname dump as their index.
 */
class Vector
{
  public:
    /** Size the vector; resets all elements. Call once. */
    void init(std::size_t n);

    /** Name element @p i ("port0", "up", ...) in dumps/JSON. */
    void subname(std::size_t i, const std::string &name);

    Counter &operator[](std::size_t i) { return elems_.at(i); }
    const Counter &operator[](std::size_t i) const
    {
        return elems_.at(i);
    }

    std::size_t size() const { return elems_.size(); }
    const std::string &subnameOf(std::size_t i) const;

    /** Sum over all elements. */
    std::uint64_t total() const;

    void reset();

  private:
    std::vector<Counter> elems_;
    std::vector<std::string> subnames_;
};

/**
 * A derived statistic evaluated lazily at dump time — the gem5
 * Formula. Holds a callable over other stats (goodput, replay
 * fraction, link utilization); the callable must guard its own
 * denominators. An unbound formula reads as 0.
 */
class Formula
{
  public:
    Formula() = default;
    explicit Formula(std::function<double()> fn) : fn_(std::move(fn))
    {}

    Formula &
    operator=(std::function<double()> fn)
    {
        fn_ = std::move(fn);
        return *this;
    }

    bool bound() const { return static_cast<bool>(fn_); }
    double value() const { return fn_ ? fn_() : 0.0; }

  private:
    std::function<double()> fn_;
};

/** A running sample distribution (mean/min/max, fixed buckets). */
class Distribution
{
  public:
    /** Configure bucketing: [min, max) split into @p buckets. */
    void init(double min, double max, std::size_t buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    void reset();

  private:
    double bucketMin_ = 0.0;
    double bucketMax_ = 1.0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A latency histogram over non-negative integer samples (ticks).
 *
 * Buckets are logarithmic with 8 linear sub-buckets per power of
 * two (HdrHistogram-style), so relative error is bounded at ~12%
 * across the full 64-bit range while the footprint stays at a
 * fixed 4 KiB. Quantiles are answered from the bucket midpoints,
 * which keeps them deterministic across runs — a requirement for
 * the golden-stats suite.
 */
class Histogram
{
  public:
    void sample(std::uint64_t v, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t min() const { return samples_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /** Value at quantile @p q in [0, 1]; 0 when empty. */
    std::uint64_t quantile(double q) const;

    void reset();

  private:
    static constexpr unsigned subBucketBits_ = 3;
    static constexpr std::size_t numBuckets_ =
        (64 - subBucketBits_ + 1) << subBucketBits_;

    static std::size_t bucketIndex(std::uint64_t v);
    static std::uint64_t bucketMidpoint(std::size_t idx);

    std::array<std::uint64_t, numBuckets_> buckets_{};
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A registry of named statistics.
 *
 * Registration stores non-owning pointers; the registering component
 * must outlive the registry's use (short-lived components such as a
 * workload remove their stats on destruction — see remove()). Names
 * are hierarchical by convention:
 * "system.rootComplex.port0.fwdPackets".
 */
class Registry
{
  public:
    void add(const std::string &name, Counter *stat,
             const std::string &desc = "", Unit unit = Unit::Count);
    void add(const std::string &name, Scalar *stat,
             const std::string &desc = "", Unit unit = Unit::None);
    void add(const std::string &name, Distribution *stat,
             const std::string &desc = "", Unit unit = Unit::None);
    void add(const std::string &name, Histogram *stat,
             const std::string &desc = "", Unit unit = Unit::Tick);
    void add(const std::string &name, Vector *stat,
             const std::string &desc = "", Unit unit = Unit::Count);
    void add(const std::string &name, Formula *stat,
             const std::string &desc = "", Unit unit = Unit::None);

    /**
     * Drop the entry named @p name (a component being destroyed
     * before the registry). @return whether an entry was removed.
     */
    bool remove(const std::string &name);

    /**
     * Look up a counter value by full name. A lookup that misses
     * (absent name or non-counter entry) returns 0 after warning
     * once per name — and panics outright in audit builds — so a
     * typo in a bench or golden query cannot pass silently.
     */
    std::uint64_t counterValue(const std::string &name) const;

    /** Look up a scalar value; same miss semantics as above. */
    double scalarValue(const std::string &name) const;

    /** Look up a formula value; same miss semantics as above. */
    double formulaValue(const std::string &name) const;

    /** Counter lookup that reports absence instead of warning. */
    std::optional<std::uint64_t>
    tryCounter(const std::string &name) const;

    /** Scalar lookup that reports absence instead of warning. */
    std::optional<double> tryScalar(const std::string &name) const;

    /** Look up a histogram by full name; nullptr when absent. */
    const Histogram *histogram(const std::string &name) const;

    /** Look up a vector by full name; nullptr when absent. */
    const Vector *vector(const std::string &name) const;

    /** Whether a stat with this name exists. */
    bool has(const std::string &name) const;

    /** Dump all statistics in name order, with units. */
    void dump(std::ostream &os) const;

    /**
     * Export every statistic as one machine-readable JSON document
     * (schema "pciesim-stats" version 1): name, type, unit,
     * description, and the value(s). @p cur_tick and @p epoch tag
     * the dump for multi-epoch consumers (pciesim-report diff).
     * When the host-side profiler is enabled, a "profiler" array of
     * hot spots is appended.
     */
    void dumpJson(std::ostream &os, std::uint64_t cur_tick = 0,
                  unsigned epoch = 0) const;

    /** Reset every registered statistic to zero. */
    void resetAll();

  private:
    struct Entry
    {
        Counter *counter = nullptr;
        Scalar *scalar = nullptr;
        Distribution *dist = nullptr;
        Histogram *hist = nullptr;
        Vector *vec = nullptr;
        Formula *formula = nullptr;
        std::string desc;
        Unit unit = Unit::None;
    };

    void checkNew(const std::string &name) const;

    /** Record a miss: warn once per name; panic in audit builds. */
    void noteMiss(const std::string &name, const char *kind) const;

    std::map<std::string, Entry> entries_;
    mutable std::set<std::string> warnedMisses_;
};

} // namespace pciesim::stats

#endif // PCIESIM_SIM_STATS_HH
