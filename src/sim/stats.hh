/**
 * @file
 * A small statistics package: named scalar and distribution
 * statistics registered in a per-simulation registry, dumpable as
 * text. Components hold the stat objects; the registry holds
 * non-owning pointers for enumeration.
 */

#ifndef PCIESIM_SIM_STATS_HH
#define PCIESIM_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pciesim::stats
{

/** A monotonically increasing event count. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** An arbitrary scalar quantity. */
class Scalar
{
  public:
    Scalar &operator=(double v) { value_ = v; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** A running sample distribution (mean/min/max, fixed buckets). */
class Distribution
{
  public:
    /** Configure bucketing: [min, max) split into @p buckets. */
    void init(double min, double max, std::size_t buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    void reset();

  private:
    double bucketMin_ = 0.0;
    double bucketMax_ = 1.0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A latency histogram over non-negative integer samples (ticks).
 *
 * Buckets are logarithmic with 8 linear sub-buckets per power of
 * two (HdrHistogram-style), so relative error is bounded at ~12%
 * across the full 64-bit range while the footprint stays at a
 * fixed 4 KiB. Quantiles are answered from the bucket midpoints,
 * which keeps them deterministic across runs — a requirement for
 * the golden-stats suite.
 */
class Histogram
{
  public:
    void sample(std::uint64_t v, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t min() const { return samples_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /** Value at quantile @p q in [0, 1]; 0 when empty. */
    std::uint64_t quantile(double q) const;

    void reset();

  private:
    static constexpr unsigned subBucketBits_ = 3;
    static constexpr std::size_t numBuckets_ =
        (64 - subBucketBits_ + 1) << subBucketBits_;

    static std::size_t bucketIndex(std::uint64_t v);
    static std::uint64_t bucketMidpoint(std::size_t idx);

    std::array<std::uint64_t, numBuckets_> buckets_{};
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A registry of named statistics.
 *
 * Registration stores non-owning pointers; the registering component
 * must outlive the registry's use. Names are hierarchical by
 * convention: "system.rootComplex.port0.fwdPackets".
 */
class Registry
{
  public:
    void add(const std::string &name, Counter *stat,
             const std::string &desc = "");
    void add(const std::string &name, Scalar *stat,
             const std::string &desc = "");
    void add(const std::string &name, Distribution *stat,
             const std::string &desc = "");
    void add(const std::string &name, Histogram *stat,
             const std::string &desc = "");

    /** Look up a counter value by full name; 0 when absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Look up a histogram by full name; nullptr when absent. */
    const Histogram *histogram(const std::string &name) const;

    /** Look up a scalar value by full name; 0.0 when absent. */
    double scalarValue(const std::string &name) const;

    /** Whether a stat with this name exists. */
    bool has(const std::string &name) const;

    /** Dump all statistics in name order. */
    void dump(std::ostream &os) const;

    /** Reset every registered statistic to zero. */
    void resetAll();

  private:
    struct Entry
    {
        Counter *counter = nullptr;
        Scalar *scalar = nullptr;
        Distribution *dist = nullptr;
        Histogram *hist = nullptr;
        std::string desc;
    };

    std::map<std::string, Entry> entries_;
};

} // namespace pciesim::stats

#endif // PCIESIM_SIM_STATS_HH
