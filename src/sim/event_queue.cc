#include "event_queue.hh"

#include "logging.hh"

namespace pciesim
{

Event::~Event() = default;

void
EventQueue::schedule(Event *event, Tick when)
{
    panicIf(event == nullptr, "scheduling null event");
    panicIf(event->scheduled_,
            "event '", event->name(), "' scheduled twice");
    panicIf(when < curTick_,
            "event '", event->name(), "' scheduled in the past (",
            when, " < ", curTick_, ")");

    event->when_ = when;
    event->scheduled_ = true;
    ++event->generation_;
    heap_.push({when, nextOrder_++, event->generation_, event});
    ++numLive_;
}

void
EventQueue::deschedule(Event *event)
{
    panicIf(event == nullptr, "descheduling null event");
    panicIf(!event->scheduled_,
            "event '", event->name(), "' descheduled while not scheduled");
    // Lazy removal: bump the generation so the heap entry is stale.
    event->scheduled_ = false;
    ++event->generation_;
    --numLive_;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->scheduled_)
        deschedule(event);
    schedule(event, when);
}

bool
EventQueue::isStale(const HeapEntry &e) const
{
    return !e.event->scheduled_ || e.generation != e.event->generation_;
}

void
EventQueue::skim() const
{
    while (!heap_.empty() && isStale(heap_.top()))
        heap_.pop();
}

Tick
EventQueue::nextTick() const
{
    skim();
    return heap_.empty() ? maxTick : heap_.top().when;
}

bool
EventQueue::step(Tick max_tick)
{
    skim();
    if (heap_.empty() || heap_.top().when > max_tick)
        return false;

    HeapEntry top = heap_.top();
    heap_.pop();

    curTick_ = top.when;
    top.event->scheduled_ = false;
    --numLive_;
    ++numProcessed_;
    top.event->process();
    return true;
}

Tick
EventQueue::run(Tick max_tick)
{
    while (step(max_tick)) {
    }
    // Time advances to max_tick if the caller gave a horizon and
    // events remain beyond it; otherwise stay at the last event.
    if (max_tick != maxTick && curTick_ < max_tick)
        curTick_ = max_tick;
    return curTick_;
}

} // namespace pciesim
