#include "event_queue.hh"

#include <mutex>
#include <unordered_set>

#include "logging.hh"
#include "profiler.hh"

namespace pciesim
{

Event::~Event() = default;

const char *
internEventName(const std::string &name)
{
    // Node-based set: element addresses are stable across rehash.
    // Interned names live for the process; events are constructed
    // once per component, so the table stays small. Guarded by a
    // mutex: components may be built (and events named) by worker
    // threads once the parallel engine exists, and interning is
    // nowhere near any hot path.
    static std::mutex mutex;
    static std::unordered_set<std::string> names;
    std::lock_guard<std::mutex> lock(mutex);
    return names.insert(name).first->c_str();
}

void
EventQueue::siftUp(std::size_t i)
{
    Slot s = heap_[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / arity;
        if (!before(s, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heap_[i].event->heapIndex_ = i;
        i = parent;
    }
    heap_[i] = s;
    s.event->heapIndex_ = i;
}

void
EventQueue::siftDown(std::size_t i)
{
    Slot s = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t first = i * arity + 1;
        if (first >= n)
            break;
        std::size_t last = first + arity < n ? first + arity : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], s))
            break;
        heap_[i] = heap_[best];
        heap_[i].event->heapIndex_ = i;
        i = best;
    }
    heap_[i] = s;
    s.event->heapIndex_ = i;
}

void
EventQueue::siftAny(std::size_t i)
{
    if (i > 0 && before(heap_[i], heap_[(i - 1) / arity]))
        siftUp(i);
    else
        siftDown(i);
}

void
EventQueue::removeAt(std::size_t i)
{
    heap_[i].event->heapIndex_ = Event::invalidHeapIndex;
    Slot last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
        heap_[i] = last;
        last.event->heapIndex_ = i;
        siftAny(i);
    }
}

void
EventQueue::auditHeap() const
{
#ifdef PCIESIM_ENABLE_AUDIT
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        const Slot &s = heap_[i];
        PCIESIM_AUDIT(s.event != nullptr,
                      "heap slot ", i, " holds no event");
        PCIESIM_AUDIT(s.event->heapIndex_ == i,
                      "event '", s.event->name(), "' slot index ",
                      s.event->heapIndex_, " != heap position ", i);
        PCIESIM_AUDIT(s.when == s.event->when_,
                      "event '", s.event->name(), "' slot key tick ",
                      s.when, " != event tick ", s.event->when_);
        PCIESIM_AUDIT(s.when >= curTick_,
                      "event '", s.event->name(),
                      "' scheduled in the past (", s.when, " < ",
                      curTick_, ")");
        if (i > 0) {
            const Slot &parent = heap_[(i - 1) / arity];
            PCIESIM_AUDIT(!before(s, parent),
                          "heap order violated between slot ", i,
                          " ('", s.event->name(), "') and its parent");
        }
    }
#endif
}

void
EventQueue::schedule(Event *event, Tick when)
{
    panicIf(event == nullptr, "scheduling null event");
    panicIf(event->scheduled(),
            "event '", event->name(), "' scheduled twice");
    panicIf(when < curTick_,
            "event '", event->name(), "' scheduled in the past (",
            when, " < ", curTick_, ")");

    event->when_ = when;
    event->heapIndex_ = heap_.size();
    if (parallelKeys_)
        heap_.push_back({when, curTick_, nextTie(), event});
    else
        heap_.push_back({when, nextOrder_++, 0, event});
    siftUp(event->heapIndex_);
    maybeAuditHeap();
}

void
EventQueue::scheduleKeyed(Event *event, Tick when, Tick key_order,
                          std::uint64_t key_tie)
{
    panicIf(event == nullptr, "scheduling null event");
    panicIf(event->scheduled(),
            "event '", event->name(), "' scheduled twice");
    panicIf(when < curTick_,
            "event '", event->name(), "' scheduled in the past (",
            when, " < ", curTick_, ")");

    event->when_ = when;
    event->heapIndex_ = heap_.size();
    heap_.push_back({when, key_order, key_tie, event});
    siftUp(event->heapIndex_);
    maybeAuditHeap();
}

void
EventQueue::scheduleEarliestKeyed(Event *event, Tick when,
                                  Tick key_order, std::uint64_t key_tie)
{
    panicIf(event == nullptr, "scheduling null event");
    if (!event->scheduled()) {
        scheduleKeyed(event, when, key_order, key_tie);
        return;
    }
    if (when >= event->when_)
        return;
    panicIf(when < curTick_,
            "event '", event->name(), "' pulled into the past (",
            when, " < ", curTick_, ")");
    panicIf(heap_[event->heapIndex_].event != event,
            "event '", event->name(), "' heap slot out of sync");

    event->when_ = when;
    Slot &s = heap_[event->heapIndex_];
    s.when = when;
    s.order = key_order;
    s.tie = key_tie;
    siftAny(event->heapIndex_);
    maybeAuditHeap();
}

void
EventQueue::deschedule(Event *event)
{
    panicIf(event == nullptr, "descheduling null event");
    panicIf(!event->scheduled(),
            "event '", event->name(), "' descheduled while not scheduled");
    panicIf(event->heapIndex_ >= heap_.size() ||
                heap_[event->heapIndex_].event != event,
            "event '", event->name(), "' heap slot out of sync");
    removeAt(event->heapIndex_);
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    panicIf(event == nullptr, "rescheduling null event");
    if (!event->scheduled()) {
        schedule(event, when);
        return;
    }
    panicIf(when < curTick_,
            "event '", event->name(), "' rescheduled into the past (",
            when, " < ", curTick_, ")");
    panicIf(heap_[event->heapIndex_].event != event,
            "event '", event->name(), "' heap slot out of sync");

    // One in-place sift; a fresh order keeps deschedule+schedule's
    // FIFO position among same-tick events.
    event->when_ = when;
    Slot &s = heap_[event->heapIndex_];
    s.when = when;
    if (parallelKeys_) {
        s.order = curTick_;
        s.tie = nextTie();
    } else {
        s.order = nextOrder_++;
        s.tie = 0;
    }
    siftAny(event->heapIndex_);
}

bool
EventQueue::step(Tick max_tick)
{
    if (heap_.empty() || heap_[0].when > max_tick)
        return false;

    Event *event = heap_[0].event;
    curTick_ = heap_[0].when;
    removeAt(0);
    maybeAuditHeap();

    ++numProcessed_;
#if PCIESIM_PROFILING
    if (prof::enabledFlag) [[unlikely]] {
        prof::profileProcess(event);
        return true;
    }
#endif
    event->process();
    return true;
}

Tick
EventQueue::run(Tick max_tick)
{
    while (step(max_tick)) {
    }
    // Time advances to max_tick if the caller gave a horizon and
    // events remain beyond it; otherwise stay at the last event.
    if (max_tick != maxTick && curTick_ < max_tick)
        curTick_ = max_tick;
    return curTick_;
}

} // namespace pciesim
