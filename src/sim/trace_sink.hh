/**
 * @file
 * Output sinks for the tracing subsystem (sim/trace.hh). A sink
 * receives fully-formed trace records (tick, track, category,
 * payload) and renders them; the trace front end decides *whether*
 * a record is emitted, sinks only decide *how* it looks.
 *
 * Two concrete sinks are provided: a gem5-DPRINTF-style text sink
 * and a Chrome trace-event JSON sink whose output loads directly
 * into Perfetto / chrome://tracing.
 */

#ifndef PCIESIM_SIM_TRACE_SINK_HH
#define PCIESIM_SIM_TRACE_SINK_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "ticks.hh"

namespace pciesim::trace
{

/**
 * Abstract trace sink. The @p track argument names the timeline a
 * record belongs to (typically a SimObject name); @p cat is the
 * trace-flag name that produced the record.
 */
class Sink
{
  public:
    virtual ~Sink();

    /** Free-form message (maps to an instant event in Chrome). */
    virtual void message(Tick tick, const std::string &track,
                         const char *cat,
                         const std::string &text) = 0;

    /** Open a duration span on @p track. */
    virtual void begin(Tick tick, const std::string &track,
                      const char *cat, const std::string &name) = 0;

    /** Close the innermost open span on @p track. */
    virtual void end(Tick tick, const std::string &track,
                     const char *cat) = 0;

    /** A span whose duration is already known at emission time. */
    virtual void complete(Tick start, Tick duration,
                          const std::string &track, const char *cat,
                          const std::string &name) = 0;

    /** A named time-series sample (Chrome counter event). */
    virtual void counter(Tick tick, const std::string &track,
                         const char *cat, const std::string &series,
                         double value) = 0;

    virtual void flush() = 0;
};

/**
 * Human-readable text sink: one "tick: track: payload" line per
 * record, mirroring gem5's DPRINTF output format.
 */
class TextSink : public Sink
{
  public:
    /** Write to @p os (not owned); must outlive the sink. */
    explicit TextSink(std::ostream &os);

    /** Write to @p path, owning the stream. */
    explicit TextSink(const std::string &path);

    void message(Tick tick, const std::string &track,
                 const char *cat, const std::string &text) override;
    void begin(Tick tick, const std::string &track, const char *cat,
               const std::string &name) override;
    void end(Tick tick, const std::string &track,
             const char *cat) override;
    void complete(Tick start, Tick duration,
                  const std::string &track, const char *cat,
                  const std::string &name) override;
    void counter(Tick tick, const std::string &track,
                 const char *cat, const std::string &series,
                 double value) override;
    void flush() override;

  private:
    void line(Tick tick, const std::string &track,
              const std::string &text);

    std::ofstream owned_;
    std::ostream *os_;
};

/**
 * Chrome trace-event JSON sink.
 *
 * Emits the object form {"traceEvents": [...]} so the file is a
 * single valid JSON document once close() runs. Each distinct
 * track is mapped to a tid (in deterministic first-use order) and
 * announced with a thread_name metadata event, so Perfetto shows
 * one named row per SimObject. Timestamps are microseconds
 * (fractional), converted from ticks.
 */
class ChromeTraceSink : public Sink
{
  public:
    explicit ChromeTraceSink(const std::string &path);
    ~ChromeTraceSink() override;

    void message(Tick tick, const std::string &track,
                 const char *cat, const std::string &text) override;
    void begin(Tick tick, const std::string &track, const char *cat,
               const std::string &name) override;
    void end(Tick tick, const std::string &track,
             const char *cat) override;
    void complete(Tick start, Tick duration,
                  const std::string &track, const char *cat,
                  const std::string &name) override;
    void counter(Tick tick, const std::string &track,
                 const char *cat, const std::string &series,
                 double value) override;
    void flush() override;

    /** Emit the closing bracket; further records are dropped. */
    void close();

    std::uint64_t eventsWritten() const { return eventsWritten_; }

  private:
    int tidFor(const std::string &track);
    void emit(const std::string &json);
    static std::string escape(const std::string &s);
    static std::string tsField(Tick tick);

    std::ofstream os_;
    std::map<std::string, int> tids_;
    int nextTid_ = 1;
    std::uint64_t eventsWritten_ = 0;
    bool closed_ = false;
};

} // namespace pciesim::trace

#endif // PCIESIM_SIM_TRACE_SINK_HH
