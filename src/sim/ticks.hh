/**
 * @file
 * Simulation time base.
 *
 * One Tick is one picosecond, matching gem5's default tick frequency.
 * All latencies, link serialization times, and timer periods in the
 * simulator are expressed in Ticks.
 */

#ifndef PCIESIM_SIM_TICKS_HH
#define PCIESIM_SIM_TICKS_HH

#include <cstdint>

namespace pciesim
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A tick value that never occurs; used as "not scheduled". */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per common time unit. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000 * tickPerPs;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerS = 1000 * tickPerMs;

/** Convert a duration to ticks. */
constexpr Tick
picoseconds(std::uint64_t v)
{
    return v * tickPerPs;
}

constexpr Tick
nanoseconds(std::uint64_t v)
{
    return v * tickPerNs;
}

constexpr Tick
microseconds(std::uint64_t v)
{
    return v * tickPerUs;
}

constexpr Tick
milliseconds(std::uint64_t v)
{
    return v * tickPerMs;
}

constexpr Tick
seconds(std::uint64_t v)
{
    return v * tickPerS;
}

/** Convert ticks to floating-point seconds (for reporting). */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerS);
}

/** Convert ticks to floating-point nanoseconds (for reporting). */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerNs);
}

namespace literals
{

constexpr Tick operator""_ps(unsigned long long v) { return picoseconds(v); }
constexpr Tick operator""_ns(unsigned long long v) { return nanoseconds(v); }
constexpr Tick operator""_us(unsigned long long v) { return microseconds(v); }
constexpr Tick operator""_ms(unsigned long long v) { return milliseconds(v); }
constexpr Tick operator""_s(unsigned long long v) { return seconds(v); }

} // namespace literals

} // namespace pciesim

#endif // PCIESIM_SIM_TICKS_HH
