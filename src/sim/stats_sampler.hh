/**
 * @file
 * A periodic stats sampler: a SimObject that wakes every
 * statsSampleInterval ticks, evaluates a set of registered probes
 * (goodput, replay-buffer depth, ...), and emits each value both
 * as an in-memory time-series row (for tests) and as a Chrome
 * counter event on the trace Stats flag.
 *
 * The sampler reschedules itself only while other events remain in
 * the queue, so it never keeps a finished simulation alive.
 */

#ifndef PCIESIM_SIM_STATS_SAMPLER_HH
#define PCIESIM_SIM_STATS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "event.hh"
#include "sim_object.hh"
#include "stats.hh"

namespace pciesim
{

/** Periodically samples registered probes into time-series rows. */
class StatsSampler : public SimObject
{
  public:
    /** One sampled point in time across every probe. */
    struct Row
    {
        Tick tick = 0;
        std::vector<double> values;
    };

    StatsSampler(Simulation &sim, const std::string &name,
                 Tick interval);

    /** Sample the probe's instantaneous value at each tick. */
    void addGauge(const std::string &series,
                  std::function<double()> probe);

    /**
     * Sample the probe's rate of change per second: the probe
     * returns a monotone cumulative value (e.g. bytes transferred)
     * and the sampler differentiates it across the interval.
     */
    void addRate(const std::string &series,
                 std::function<double()> probe);

    const std::vector<std::string> &seriesNames() const
    {
        return names_;
    }
    const std::vector<Row> &rows() const { return rows_; }

    void init() override;
    void startup() override;

  private:
    struct Probe
    {
        std::function<double()> fn;
        bool isRate = false;
        double lastValue = 0.0;
    };

    void sampleNow();

    Tick interval_;
    std::vector<std::string> names_;
    std::vector<Probe> probes_;
    std::vector<Row> rows_;
    stats::Counter samplesTaken_;
    MemberEventWrapper<StatsSampler, &StatsSampler::sampleNow>
        sampleEvent_;
};

} // namespace pciesim

#endif // PCIESIM_SIM_STATS_SAMPLER_HH
