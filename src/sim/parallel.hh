/**
 * @file
 * Conservative quantum-synchronized parallel engine (DESIGN.md §10).
 *
 * The engine drives one EventQueue per link domain in lockstep
 * windows: every window spans [global minimum next tick, minimum +
 * quantum), where the quantum is the smallest link flight latency
 * crossing any domain boundary. Because a packet posted at tick t
 * arrives no earlier than t + quantum >= window end, cross-domain
 * events always land in a later window — domains never need to see
 * each other's state mid-window, so each one runs lock-free on its
 * own worker thread.
 *
 * Cross-domain scheduling goes through per-(source, destination)
 * mailboxes: the source worker appends operations during its window
 * (it is the only writer of that vector) and a single thread drains
 * all mailboxes inside the barrier's completion step, in (dest,
 * source, FIFO) order, before the next window is computed. The
 * composite ordering key for each operation is computed at post
 * time on the sending domain, so heap order on the destination is a
 * pure function of simulated history — identical for any thread
 * count (the determinism contract enforced by the tier-2 parallel
 * gate).
 */

#ifndef PCIESIM_SIM_PARALLEL_HH
#define PCIESIM_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "event_queue.hh"
#include "parallel_mode.hh"
#include "stats.hh"
#include "ticks.hh"

namespace pciesim
{

/**
 * Thread pool + barrier driving a set of domain event queues under
 * conservative quantum synchronization. Constructed once per
 * Simulation (setupParallel); run() may be invoked repeatedly —
 * workers are spawned and joined per call, so single-threaded
 * phases (construction, enumeration, MMIO programming) between runs
 * need no synchronization at all.
 */
class ParallelEngine
{
  public:
    /**
     * @param queues One entry per domain; index == domain id.
     * @param quantum Minimum cross-domain link flight latency;
     *        must be > 0.
     * @param threads Requested worker count; clamped to the number
     *        of domains. Domain d runs on worker d % threads.
     */
    ParallelEngine(std::vector<EventQueue *> queues, Tick quantum,
                   unsigned threads);

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /**
     * Run windows until every queue drains or the global minimum
     * next tick passes @p max_tick. With an explicit horizon all
     * queues are clamped forward to it afterwards, mirroring the
     * single-queue EventQueue::run() contract.
     * @return the final simulated tick (max over domains).
     */
    Tick run(Tick max_tick = maxTick);

    Tick quantum() const { return quantum_; }
    unsigned threads() const { return threads_; }
    unsigned numDomains() const
    {
        return static_cast<unsigned>(queues_.size());
    }

    /** @{
     * Per-domain flight recorder (DESIGN.md §14). Everything here
     * is a pure function of simulated history — events executed,
     * window classification, mailbox traffic — so the counters are
     * byte-identical for any thread count. Wall-clock quantities
     * (window execution time, barrier wait) are estimated from a
     * 1-in-N steady_clock subsample taken only while the profiler
     * is on (--profile) with times reported, and exposed only
     * through dump-time Formulas that read 0 otherwise — the same
     * contract as the profiler's estMs, so unprofiled and
     * --no-timing dumps never contain a wall-derived value. The
     * whole block compiles out under PCIESIM_PROFILING=0.
     */

    /**
     * Register the telemetry block with @p reg under
     * "system.parallel.*". @p labels names each domain (index ==
     * domain id; short names become Vector subnames and Perfetto
     * track names). A no-op in PCIESIM_PROFILING=0 builds.
     */
    void registerStats(stats::Registry &reg,
                       const std::vector<std::string> &labels);

    /** Quantum windows completed (== barrier passes). */
    std::uint64_t windowsSynced() const;
    /** Events domain @p d executed inside engine windows. */
    std::uint64_t domainEvents(unsigned d) const;
    /** Windows where @p d had pending work beyond the horizon but
     *  executed nothing (lookahead-limited). */
    std::uint64_t stallWindows(unsigned d) const;
    /** Cross-domain mailbox operations sent by / delivered to
     *  domain @p d. */
    std::uint64_t mailboxSent(unsigned d) const;
    std::uint64_t mailboxReceived(unsigned d) const;
    /** Mailbox operations from @p src to @p dst (the peer matrix). */
    std::uint64_t mailboxPair(unsigned src, unsigned dst) const;
    /** Busiest incoming peer of @p d: (src domain, op count);
     *  (d, 0) when nothing arrived. */
    std::pair<unsigned, std::uint64_t> hottestPeerOf(unsigned d) const;
    /** Max/mean events per domain; 0 with no events. */
    double loadImbalance() const;
    /** Estimated barrier+idle wall time over total wall time; 0
     *  unless the profiler is on with times reported (--profile
     *  without --no-timing). */
    double syncOverheadFraction() const;
    /** The label registered for domain @p d ("domain<d>" default). */
    const std::string &domainLabel(unsigned d) const;
    /** @} */

    /** @{
     * Cross-domain posts. Callable only from a worker inside its
     * window (the source domain is the calling thread's current
     * queue); applied at the next barrier. The ordering key is
     * captured here, on the sending domain.
     */
    void postSchedule(EventQueue &dst, Event &event, Tick when);
    /** Schedule-if-earlier with a caller-computed key: the sink may
     *  also arm @p event for the same occurrence (a wire rearming
     *  after a delivery), so the key must be fixed once, at send
     *  time, and shared by both paths. */
    void postScheduleEarliest(EventQueue &dst, Event &event,
                              Tick when, Tick key_order,
                              std::uint64_t key_tie);
    void postDeschedule(EventQueue &dst, Event &event);
    void postCall(EventQueue &dst, Tick when,
                  std::function<void()> fn);
    /** @} */

  private:
    /** One mailboxed cross-domain operation. */
    struct Op
    {
        enum class Kind : std::uint8_t
        {
            schedule,
            scheduleEarliest,
            deschedule,
            call,
        };

        Kind kind;
        Event *event;
        Tick when;
        Tick keyOrder;
        std::uint64_t keyTie;
        std::function<void()> fn;
    };

    std::vector<Op> &outbox(EventQueue &dst);
    void applyMailboxes();
    void computeWindow(Tick max_tick);
    void enterDomain(unsigned d);
    void leaveDomain();

    /** One window of domain @p d: enter, run, classify, leave. */
    void runDomainWindow(unsigned d, Tick horizon);

    /** Estimated wall ns executing windows / waiting at barriers
     *  (1-in-N subsample scaled to all windows; 0 when times are
     *  suppressed or nothing was sampled). */
    double estExecNs() const;
    double estSyncNs() const;

    std::vector<EventQueue *> queues_;
    const Tick quantum_;
    const unsigned threads_;

    /** mail_[src * numDomains + dst]; src's worker is the only
     *  writer during a window, the barrier completion the only
     *  reader — the barrier itself provides the ordering. */
    std::vector<std::vector<Op>> mail_;

    Tick windowStart_ = 0;
    Tick windowEnd_ = 0;
    std::atomic<bool> stop_{false};
    bool tracing_ = false;

    /** @{ Telemetry state (DESIGN.md §14). The registered stats
     *  are written only from sanctioned single-writer contexts:
     *  per-domain slots from the worker owning that domain's
     *  window, totals from the barrier completion step. */
    /** Time 1 in this many windows (and barrier waits). */
    static constexpr std::uint64_t wallSamplePeriod = 16;

    std::vector<std::string> labels_;
    stats::Vector domainEvents_;
    stats::Vector domainActiveWindows_;
    stats::Vector domainStallWindows_;
    stats::Vector mailboxSent_;
    stats::Vector mailboxReceived_;
    stats::Counter windows_;
    stats::Formula domainsStat_;
    stats::Formula quantumStat_;
    stats::Formula loadImbalanceStat_;
    stats::Formula mailboxIntensityStat_;
    stats::Formula syncOverheadStat_;
    stats::Formula execMsEstStat_;
    stats::Formula syncWaitMsEstStat_;

    /** Raw accumulators behind the wall-time estimates. Windows
     *  run / sampled / sampled-ns per domain; barrier waits per
     *  worker (a worker's wait is sync overhead, not any single
     *  domain's). Cumulative across stats epochs by design. */
    std::vector<std::uint64_t> windowsRun_;
    std::vector<std::uint64_t> execSampled_;
    std::vector<std::uint64_t> execNs_;
    std::vector<std::uint64_t> barrierSeen_;
    std::vector<std::uint64_t> barrierSampled_;
    std::vector<std::uint64_t> barrierNs_;

    /** Per-(src, dst) mailbox op counts; sized n^2 alongside
     *  mail_. Updated only in applyMailboxes (single-threaded). */
    std::vector<std::uint64_t> pairOps_;

    /** Perfetto track names, built lazily when tracing engages. */
    std::vector<std::string> trackNames_;
    /** @} */
};

namespace par
{

/** The engine whose run() is currently executing, else null.
 *  Same write discipline as engineActive. */
extern ParallelEngine *activeEngine;

} // namespace par

} // namespace pciesim

#endif // PCIESIM_SIM_PARALLEL_HH
