/**
 * @file
 * Conservative quantum-synchronized parallel engine (DESIGN.md §10).
 *
 * The engine drives one EventQueue per link domain in lockstep
 * windows: every window spans [global minimum next tick, minimum +
 * quantum), where the quantum is the smallest link flight latency
 * crossing any domain boundary. Because a packet posted at tick t
 * arrives no earlier than t + quantum >= window end, cross-domain
 * events always land in a later window — domains never need to see
 * each other's state mid-window, so each one runs lock-free on its
 * own worker thread.
 *
 * Cross-domain scheduling goes through per-(source, destination)
 * mailboxes: the source worker appends operations during its window
 * (it is the only writer of that vector) and a single thread drains
 * all mailboxes inside the barrier's completion step, in (dest,
 * source, FIFO) order, before the next window is computed. The
 * composite ordering key for each operation is computed at post
 * time on the sending domain, so heap order on the destination is a
 * pure function of simulated history — identical for any thread
 * count (the determinism contract enforced by the tier-2 parallel
 * gate).
 */

#ifndef PCIESIM_SIM_PARALLEL_HH
#define PCIESIM_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "event_queue.hh"
#include "parallel_mode.hh"
#include "ticks.hh"

namespace pciesim
{

/**
 * Thread pool + barrier driving a set of domain event queues under
 * conservative quantum synchronization. Constructed once per
 * Simulation (setupParallel); run() may be invoked repeatedly —
 * workers are spawned and joined per call, so single-threaded
 * phases (construction, enumeration, MMIO programming) between runs
 * need no synchronization at all.
 */
class ParallelEngine
{
  public:
    /**
     * @param queues One entry per domain; index == domain id.
     * @param quantum Minimum cross-domain link flight latency;
     *        must be > 0.
     * @param threads Requested worker count; clamped to the number
     *        of domains. Domain d runs on worker d % threads.
     */
    ParallelEngine(std::vector<EventQueue *> queues, Tick quantum,
                   unsigned threads);

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /**
     * Run windows until every queue drains or the global minimum
     * next tick passes @p max_tick. With an explicit horizon all
     * queues are clamped forward to it afterwards, mirroring the
     * single-queue EventQueue::run() contract.
     * @return the final simulated tick (max over domains).
     */
    Tick run(Tick max_tick = maxTick);

    Tick quantum() const { return quantum_; }
    unsigned threads() const { return threads_; }

    /** @{
     * Cross-domain posts. Callable only from a worker inside its
     * window (the source domain is the calling thread's current
     * queue); applied at the next barrier. The ordering key is
     * captured here, on the sending domain.
     */
    void postSchedule(EventQueue &dst, Event &event, Tick when);
    /** Schedule-if-earlier with a caller-computed key: the sink may
     *  also arm @p event for the same occurrence (a wire rearming
     *  after a delivery), so the key must be fixed once, at send
     *  time, and shared by both paths. */
    void postScheduleEarliest(EventQueue &dst, Event &event,
                              Tick when, Tick key_order,
                              std::uint64_t key_tie);
    void postDeschedule(EventQueue &dst, Event &event);
    void postCall(EventQueue &dst, Tick when,
                  std::function<void()> fn);
    /** @} */

  private:
    /** One mailboxed cross-domain operation. */
    struct Op
    {
        enum class Kind : std::uint8_t
        {
            schedule,
            scheduleEarliest,
            deschedule,
            call,
        };

        Kind kind;
        Event *event;
        Tick when;
        Tick keyOrder;
        std::uint64_t keyTie;
        std::function<void()> fn;
    };

    std::vector<Op> &outbox(EventQueue &dst);
    void applyMailboxes();
    void computeWindow(Tick max_tick);
    void enterDomain(unsigned d);
    void leaveDomain();

    std::vector<EventQueue *> queues_;
    const Tick quantum_;
    const unsigned threads_;

    /** mail_[src * numDomains + dst]; src's worker is the only
     *  writer during a window, the barrier completion the only
     *  reader — the barrier itself provides the ordering. */
    std::vector<std::vector<Op>> mail_;

    Tick windowEnd_ = 0;
    std::atomic<bool> stop_{false};
    bool tracing_ = false;
};

namespace par
{

/** The engine whose run() is currently executing, else null.
 *  Same write discipline as engineActive. */
extern ParallelEngine *activeEngine;

} // namespace par

} // namespace pciesim

#endif // PCIESIM_SIM_PARALLEL_HH
