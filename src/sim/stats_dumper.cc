#include "stats_dumper.hh"

#include <iostream>

#include "event_queue.hh"
#include "logging.hh"
#include "profiler.hh"
#include "simulation.hh"
#include "stats.hh"

namespace pciesim
{

StatsDumper::StatsDumper(Simulation &sim, const std::string &name,
                         Tick interval, const std::string &path)
    : SimObject(sim, name), interval_(interval), path_(path),
      dumpEvent_(this, name + ".dumpEvent")
{
    fatalIf(interval_ == 0,
            "stats dumper '", name, "' needs a nonzero interval");
}

std::ostream &
StatsDumper::out()
{
    if (path_.empty() || path_ == "-")
        return std::cout;
    if (!file_) {
        file_ = std::make_unique<std::ofstream>(path_);
        fatalIf(!*file_, "stats dumper '", name(),
                "' cannot open '", path_, "'");
    }
    return *file_;
}

void
StatsDumper::dumpEpoch(bool reset_after)
{
    std::ostream &os = out();
    os << "\n---------- Begin Simulation Statistics ----------\n";
    os << "# epoch " << epoch_ << " curTick " << curTick() << "\n";
    sim().statsRegistry().dump(os);
    if (prof::enabled())
        prof::dumpTable(os);
    os << "---------- End Simulation Statistics   ----------\n";
    os.flush();
    ++epoch_;
    if (reset_after)
        sim().statsRegistry().resetAll();
}

void
StatsDumper::dumpNow()
{
    dumpEpoch();
    if (!eventq().empty())
        schedule(dumpEvent_, interval_);
}

void
StatsDumper::startup()
{
    schedule(dumpEvent_, interval_);
}

} // namespace pciesim
