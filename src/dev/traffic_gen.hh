/**
 * @file
 * A synthetic DMA traffic generator endpoint: a PCI-Express device
 * that reads or writes host memory at a programmed request rate,
 * for fabric stress tests and multi-device contention studies (the
 * paper's motivation: PCI-Express "enables the processor to
 * simultaneously communicate with multiple devices").
 *
 * Register interface (BAR0, memory space):
 *   0x00  CTRL      bit0 start (write 1), bit1 stop
 *   0x08  ADDR_LO   target DMA address low 32 bits
 *   0x0c  ADDR_HI   target DMA address high 32 bits
 *   0x10  LENGTH    bytes per burst
 *   0x14  COUNT     bursts to issue (0 = run until stopped)
 *   0x18  MODE      0 = DMA write, 1 = DMA read
 *   0x20  DONE      completed bursts (read only)
 */

#ifndef PCIESIM_DEV_TRAFFIC_GEN_HH
#define PCIESIM_DEV_TRAFFIC_GEN_HH

#include <memory>

#include "dev/dma_engine.hh"
#include "pci/pci_device.hh"

namespace pciesim
{

namespace tgen
{

constexpr Addr regCtrl = 0x00;
constexpr Addr regAddrLo = 0x08;
constexpr Addr regAddrHi = 0x0c;
constexpr Addr regLength = 0x10;
constexpr Addr regCount = 0x14;
constexpr Addr regMode = 0x18;
constexpr Addr regDone = 0x20;

constexpr std::uint32_t ctrlStart = 1u << 0;
constexpr std::uint32_t ctrlStop = 1u << 1;

/** Device ID of the generator (fictional, test vendor space). */
constexpr std::uint16_t deviceId = 0x7e57;

} // namespace tgen

/** Configuration for a TrafficGen. */
struct TrafficGenParams
{
    /** Gap between burst completion and the next burst's start. */
    Tick interBurstGap = 0;
    Tick pioLatency = nanoseconds(30);
    bool postedWrites = false;
};

/**
 * The generator device. Raises INTx when the programmed burst
 * count completes.
 */
class TrafficGen : public PciDevice
{
  public:
    TrafficGen(Simulation &sim, const std::string &name,
               const TrafficGenParams &params = {});
    ~TrafficGen() override;

    void init() override;

    /**
     * Program and start a run directly, without kernel MMIO: the
     * builder's driving path for fabrics too large to enumerate
     * (no BAR assignment, no bus numbers). Enables memory decode
     * and bus mastering itself — exactly the command-register bits
     * enumeration would have set — then starts like a CTRL write.
     */
    void directStart(Addr target, std::uint32_t burst_bytes,
                     std::uint32_t bursts, bool read_mode = false);

    /** @{ Introspection. */
    std::uint64_t burstsCompleted() const { return done_; }
    std::uint64_t bytesMoved() const { return bytes_.value(); }
    bool running() const { return running_; }
    /** Bytes per second of DMA goodput while running. */
    double
    achievedGbps() const
    {
        Tick t = lastDoneTick_ - startTick_;
        return t == 0 ? 0.0
                      : static_cast<double>(bytes_.value()) * 8.0 /
                            ticksToSeconds(t) / 1e9;
    }
    /** @} */

  protected:
    std::uint64_t readReg(unsigned bar, Addr offset,
                          unsigned size) override;
    void writeReg(unsigned bar, Addr offset, unsigned size,
                  std::uint64_t value) override;

    bool recvDmaResp(PacketPtr pkt) override;
    void recvDmaRetry() override;

  private:
    void startRun();
    void nextBurst();
    void burstDone();

    TrafficGenParams genParams_;
    std::unique_ptr<DmaEngine> engine_;

    std::uint32_t addrLo_ = 0;
    std::uint32_t addrHi_ = 0;
    std::uint32_t length_ = 4096;
    std::uint32_t count_ = 0;
    std::uint32_t mode_ = 0;
    std::uint64_t done_ = 0;

    bool running_ = false;
    bool stopRequested_ = false;
    Tick startTick_ = 0;
    Tick lastDoneTick_ = 0;

    MemberEventWrapper<TrafficGen, &TrafficGen::nextBurst> gapEvent_;
    stats::Counter bytes_;
    stats::Counter bursts_;
};

} // namespace pciesim

#endif // PCIESIM_DEV_TRAFFIC_GEN_HH
