#include "traffic_gen.hh"

#include "pci/config_regs.hh"

namespace pciesim
{

namespace
{

PciDeviceParams
makeDeviceParams(const TrafficGenParams &params)
{
    PciDeviceParams p;
    p.vendorId = cfg::vendorIntel;
    p.deviceId = tgen::deviceId;
    p.classCode = 0x0b4000; // co-processor
    p.interruptPin = 1;
    p.pioLatency = params.pioLatency;
    p.bars = {BarSpec{4096, false}};
    return p;
}

} // namespace

TrafficGen::TrafficGen(Simulation &sim, const std::string &name,
                       const TrafficGenParams &params)
    : PciDevice(sim, name, makeDeviceParams(params)),
      genParams_(params),
      gapEvent_(this, name + ".gapEvent")
{
    DmaEngineParams ep;
    ep.postedWrites = params.postedWrites;
    engine_ = std::make_unique<DmaEngine>(*this, dmaPort(),
                                          name + ".dma", ep);
}

TrafficGen::~TrafficGen() = default;

void
TrafficGen::init()
{
    PciDevice::init();
    statsRegistry().add(name() + ".bytes", &bytes_,
                        "DMA payload bytes moved");
    statsRegistry().add(name() + ".bursts", &bursts_,
                        "bursts completed");
    fatalIf(!dmaPort().isBound(),
            "traffic generator '", name(), "' DMA port unbound");
}

std::uint64_t
TrafficGen::readReg(unsigned bar, Addr offset, unsigned size)
{
    (void)bar;
    (void)size;
    switch (offset) {
      case tgen::regCtrl:
        return running_ ? tgen::ctrlStart : 0;
      case tgen::regAddrLo:
        return addrLo_;
      case tgen::regAddrHi:
        return addrHi_;
      case tgen::regLength:
        return length_;
      case tgen::regCount:
        return count_;
      case tgen::regMode:
        return mode_;
      case tgen::regDone:
        lowerIntx();
        return done_ & 0xffffffff;
      default:
        return 0;
    }
}

void
TrafficGen::writeReg(unsigned bar, Addr offset, unsigned size,
                     std::uint64_t value)
{
    (void)bar;
    (void)size;
    std::uint32_t v = static_cast<std::uint32_t>(value);
    switch (offset) {
      case tgen::regCtrl:
        if (v & tgen::ctrlStop)
            stopRequested_ = true;
        if ((v & tgen::ctrlStart) && !running_)
            startRun();
        break;
      case tgen::regAddrLo:
        addrLo_ = v;
        break;
      case tgen::regAddrHi:
        addrHi_ = v;
        break;
      case tgen::regLength:
        length_ = v;
        break;
      case tgen::regCount:
        count_ = v;
        break;
      case tgen::regMode:
        mode_ = v;
        break;
      default:
        break;
    }
}

void
TrafficGen::directStart(Addr target, std::uint32_t burst_bytes,
                        std::uint32_t bursts, bool read_mode)
{
    configWrite(cfg::command, 2,
                cfg::cmdMemEnable | cfg::cmdBusMaster);
    addrLo_ = static_cast<std::uint32_t>(target & 0xffffffff);
    addrHi_ = static_cast<std::uint32_t>(target >> 32);
    length_ = burst_bytes;
    count_ = bursts;
    mode_ = read_mode ? 1 : 0;
    if (!running_)
        startRun();
}

void
TrafficGen::startRun()
{
    panicIf(length_ == 0, "traffic generator '", name(),
            "' started with zero burst length");
    panicIf(!busMaster(), "traffic generator '", name(),
            "' started without bus mastering enabled");
    running_ = true;
    stopRequested_ = false;
    done_ = 0;
    startTick_ = curTick();
    nextBurst();
}

void
TrafficGen::nextBurst()
{
    if (stopRequested_ || (count_ != 0 && done_ >= count_)) {
        running_ = false;
        lastDoneTick_ = curTick();
        raiseIntx();
        return;
    }
    Addr target = (static_cast<Addr>(addrHi_) << 32) | addrLo_;
    if (mode_ == 0)
        engine_->startWrite(target, length_, [this] { burstDone(); });
    else
        engine_->startRead(target, length_, [this] { burstDone(); });
}

void
TrafficGen::burstDone()
{
    ++done_;
    ++bursts_;
    bytes_ += length_;
    lastDoneTick_ = curTick();
    if (genParams_.interBurstGap == 0) {
        nextBurst();
    } else if (!gapEvent_.scheduled()) {
        schedule(gapEvent_, genParams_.interBurstGap);
    }
}

bool
TrafficGen::recvDmaResp(PacketPtr pkt)
{
    return engine_->recvResp(pkt);
}

void
TrafficGen::recvDmaRetry()
{
    engine_->recvRetry();
}

} // namespace pciesim
