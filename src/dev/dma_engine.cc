#include "dma_engine.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace pciesim
{

DmaEngine::DmaEngine(SimObject &owner, MasterPort &port,
                     const std::string &name,
                     const DmaEngineParams &params)
    : owner_(owner), port_(port), name_(name), params_(params),
      issueEvent_(this, name + ".issueEvent"),
      watchdogEvent_(this, name + ".watchdogEvent")
{
    panicIf(params_.packetSize == 0, "DMA packet size must be > 0");
    owner_.statsRegistry().add(
        name_ + ".e2eLatency", &e2eLatency_,
        "DMA request-to-response latency (ticks)",
        stats::Unit::Tick);
}

void
DmaEngine::startWrite(Addr addr, std::uint64_t len,
                      std::function<void()> on_complete)
{
    onData_ = nullptr;
    writePayload_.clear();
    start(params_.postedWrites ? MemCmd::PostedWriteReq
                               : MemCmd::WriteReq,
          addr, len, std::move(on_complete));
}

void
DmaEngine::startWriteData(Addr addr, const std::uint8_t *data,
                          unsigned len,
                          std::function<void()> on_complete)
{
    panicIf(len > params_.packetSize,
            "payload write larger than one packet");
    onData_ = nullptr;
    writePayload_.assign(data, data + len);
    start(MemCmd::WriteReq, addr, len, std::move(on_complete));
}

void
DmaEngine::startMessage(Addr addr, std::uint16_t data,
                        std::function<void()> on_complete)
{
    onData_ = nullptr;
    writePayload_ = {static_cast<std::uint8_t>(data & 0xff),
                     static_cast<std::uint8_t>((data >> 8) & 0xff)};
    start(MemCmd::MessageReq, addr, 2, std::move(on_complete));
}

void
DmaEngine::startRead(Addr addr, std::uint64_t len,
                     std::function<void()> on_complete,
                     std::function<void(const PacketPtr &)> on_data)
{
    onData_ = std::move(on_data);
    writePayload_.clear();
    start(MemCmd::ReadReq, addr, len, std::move(on_complete));
}

void
DmaEngine::start(MemCmd cmd, Addr addr, std::uint64_t len,
                 std::function<void()> on_complete)
{
    panicIf(busy_, "DMA engine '", name_,
            "' started while a transfer is in flight");
    panicIf(len == 0, "zero-length DMA transfer");

    busy_ = true;
    cmd_ = cmd;
    nextAddr_ = addr;
    remaining_ = len;
    outstanding_ = 0;
    waitingRetry_ = false;
    onComplete_ = std::move(on_complete);

    TRACE_SPAN_BEGIN(trace::Flag::Dma, owner_.curTick(), name_,
                     cmd == MemCmd::ReadReq ? "dma read " : "dma write ",
                     len, "B @", addr);

    armWatchdog();
    if (!issueEvent_.scheduled())
        owner_.schedule(issueEvent_, 0);
}

void
DmaEngine::armWatchdog()
{
    if (params_.completionTimeout == 0)
        return;
    if (watchdogEvent_.scheduled())
        owner_.eventq().deschedule(&watchdogEvent_);
    owner_.schedule(watchdogEvent_, params_.completionTimeout);
}

void
DmaEngine::completionTimedOut()
{
    if (!busy_)
        return;
    ++completionTimeouts_;
    if (timeoutHook_)
        timeoutHook_();
    TRACE_MSG(trace::Flag::Dma, owner_.curTick(), name_,
              "completion timeout, aborting transfer");
    inform("dma engine '", name_, "': transfer timed out with ",
           outstanding_, " responses outstanding; aborting");
    // Abort: forget what is still owed (recvResp drops the
    // stragglers) and complete so the owning device's state
    // machine can report the error and move on.
    staleResponses_ += outstanding_;
    outstanding_ = 0;
    remaining_ = 0;
    waitingRetry_ = false;
    maybeComplete();
}

void
DmaEngine::cancel()
{
    if (watchdogEvent_.scheduled())
        owner_.eventq().deschedule(&watchdogEvent_);
    if (issueEvent_.scheduled())
        owner_.eventq().deschedule(&issueEvent_);
    if (!busy_)
        return;
    TRACE_SPAN_END(trace::Flag::Dma, owner_.curTick(), name_);
    busy_ = false;
    outstanding_ = 0;
    remaining_ = 0;
    waitingRetry_ = false;
    staleResponses_ = 0;
    onComplete_ = nullptr;
    onData_ = nullptr;
}

void
DmaEngine::issue()
{
    while (remaining_ > 0 && outstanding_ < params_.maxOutstanding) {
        unsigned size = static_cast<unsigned>(
            std::min<std::uint64_t>(params_.packetSize, remaining_));
        PacketPtr pkt = Packet::makeRequest(cmd_, nextAddr_, size);
        pkt->setCreationTick(owner_.curTick());
        if (!writePayload_.empty() &&
            (cmd_ == MemCmd::WriteReq ||
             cmd_ == MemCmd::MessageReq)) {
            pkt->setData(writePayload_.data(), size);
        }

        // Account before sending: a peer may respond synchronously
        // from within sendTimingReq (which also flips the packet to
        // a response in place - snapshot its posted-ness first).
        bool posted = !pkt->needsResponse();
        nextAddr_ += size;
        remaining_ -= size;
        ++outstanding_;
        ++totalPackets_;

        if (!port_.sendTimingReq(pkt)) {
            // Refused: rewind and wait for the retry.
            nextAddr_ -= size;
            remaining_ += size;
            --outstanding_;
            --totalPackets_;
            waitingRetry_ = true;
            return;
        }
        if (posted) {
            // Posted: completes at issue (the data link layer
            // guarantees delivery hop by hop).
            --outstanding_;
            totalBytes_ += size;
        }
    }
    maybeComplete();
}

void
DmaEngine::maybeComplete()
{
    if (busy_ && remaining_ == 0 && outstanding_ == 0) {
        busy_ = false;
        TRACE_SPAN_END(trace::Flag::Dma, owner_.curTick(), name_);
        if (watchdogEvent_.scheduled())
            owner_.eventq().deschedule(&watchdogEvent_);
        if (onComplete_) {
            auto cb = std::move(onComplete_);
            onComplete_ = nullptr;
            cb();
        }
    }
}

bool
DmaEngine::recvResp(const PacketPtr &pkt)
{
    if (staleResponses_ > 0) {
        // A completion owed by a transfer the watchdog aborted.
        --staleResponses_;
        return true;
    }
    panicIf(!busy_, "DMA engine '", name_, "' got stray response");
    panicIf(outstanding_ == 0,
            "DMA engine '", name_, "' response underflow");
    --outstanding_;
    totalBytes_ += pkt->size();
    e2eLatency_.sample(owner_.curTick() - pkt->creationTick());
    armWatchdog();

    if (onData_ && pkt->isRead())
        onData_(pkt);

    if (remaining_ > 0 && !waitingRetry_ &&
        !issueEvent_.scheduled()) {
        owner_.schedule(issueEvent_, 0);
    }

    maybeComplete();
    return true;
}

void
DmaEngine::recvRetry()
{
    if (!waitingRetry_)
        return;
    waitingRetry_ = false;
    if (!issueEvent_.scheduled())
        owner_.schedule(issueEvent_, 0);
}

} // namespace pciesim
