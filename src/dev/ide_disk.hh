/**
 * @file
 * An IDE disk with bus-master DMA, modelled after the gem5 IDE disk
 * the paper evaluates with (Sec. VI-A): constant media access
 * latency (1 us) and no internal bandwidth bottleneck, transferring
 * data in 4 KB chunks where "responses for all gem5 write packets
 * need to be obtained before the next sector can be transmitted"
 * (Sec. VI-B).
 */

#ifndef PCIESIM_DEV_IDE_DISK_HH
#define PCIESIM_DEV_IDE_DISK_HH

#include <memory>

#include "dev/dma_engine.hh"
#include "pci/pci_device.hh"

namespace pciesim
{

/** IDE register-level constants shared with the driver model. */
namespace ide
{

/** BAR indices. */
constexpr unsigned barCmd = 0;   //!< command block (I/O)
constexpr unsigned barCtrl = 1;  //!< control block (I/O)
constexpr unsigned barBmdma = 4; //!< bus-master DMA (I/O)

/** Command block register offsets (BAR0). */
constexpr Addr regData = 0x0;
constexpr Addr regError = 0x1;
constexpr Addr regSectorCount = 0x2;
constexpr Addr regLbaLow = 0x3;
constexpr Addr regLbaMid = 0x4;
constexpr Addr regLbaHigh = 0x5;
constexpr Addr regDevice = 0x6;
constexpr Addr regCommand = 0x7; //!< status on read

/** Control block register offsets (BAR1). */
constexpr Addr regAltStatus = 0x2; //!< devControl on write

/** Bus-master DMA register offsets (BAR4). */
constexpr Addr regBmCommand = 0x0;
constexpr Addr regBmStatus = 0x2;
constexpr Addr regBmPrdAddr = 0x4;

/** Status bits. */
constexpr std::uint8_t statusBsy = 0x80;
constexpr std::uint8_t statusDrdy = 0x40;
constexpr std::uint8_t statusDrq = 0x08;
constexpr std::uint8_t statusErr = 0x01;

/** Bus-master command/status bits. */
constexpr std::uint8_t bmStart = 0x01;
constexpr std::uint8_t bmWriteToMemory = 0x08; //!< direction
constexpr std::uint8_t bmStatusActive = 0x01;
constexpr std::uint8_t bmStatusErr = 0x02;
constexpr std::uint8_t bmStatusIntr = 0x04;

/** ATA commands. */
constexpr std::uint8_t cmdReadDma = 0xc8;
constexpr std::uint8_t cmdWriteDma = 0xca;

constexpr unsigned sectorSize = 512;
/** sector count register: 0 encodes 256. */
constexpr unsigned maxSectorsPerCommand = 256;

} // namespace ide

/** Configuration for an IdeDisk. */
struct IdeDiskParams
{
    /** Constant media access latency per command (gem5: 1 us). */
    Tick mediaLatency = microseconds(1);
    /** DMA chunk size with a response barrier (the paper's 4 KB
     *  "sector"). */
    unsigned chunkSize = 4096;
    /**
     * Fixed per-chunk processing gap between the barrier completing
     * and the next chunk's first packet: DMA engine restart, PRD
     * bookkeeping, and the (overlapped) media prefetch.
     */
    Tick chunkOverhead = nanoseconds(400);
    Tick pioLatency = nanoseconds(30);
    /** Use posted writes for DMA data (real PCI-Express
     *  semantics; the paper's model is non-posted). */
    bool postedWrites = false;
    /** Completion timeout for the DMA engine's non-posted requests
     *  (see DmaEngineParams::completionTimeout). 0 disables. */
    Tick dmaCompletionTimeout = 0;
    /**
     * Scripted surprise hot-unplug (DESIGN.md §12): the disk
     * vanishes mid-DMA, one media latency into its Nth 4 KB chunk
     * (1-based ordinal; 0 disables). While gone it is absent from
     * configuration space, its registers read all-ones, and its DMA
     * engine abandons the in-flight transfer.
     */
    std::uint64_t unplugAtChunk = 0;
    /** Time until the scripted device returns (power-on reset). */
    Tick replugDelay = microseconds(50);
};

/**
 * The disk device.
 */
class IdeDisk : public PciDevice
{
  public:
    IdeDisk(Simulation &sim, const std::string &name,
            const IdeDiskParams &params = {});
    ~IdeDisk() override;

    void init() override;

    /** @{ Introspection for tests/benches. */
    std::uint64_t commandsCompleted() const
    {
        return commands_.value();
    }
    std::uint64_t bytesTransferred() const
    {
        return dmaBytes_.value();
    }
    /** Sum of ticks spent actively transferring data (device-level
     *  throughput = bytesTransferred / activeTransferTicks). */
    Tick activeTransferTicks() const
    {
        return static_cast<Tick>(activeTicks_.value());
    }
    /** DMA transfers aborted by the completion timeout. */
    std::uint64_t dmaCompletionTimeouts() const
    {
        return engine_->completionTimeouts();
    }
    /** Scripted surprise removals performed. */
    std::uint64_t unplugs() const { return unplugs_.value(); }
    /** Whether the device is currently surprise-removed. */
    bool unplugged() const { return dead_; }
    /** @} */

    /**
     * Platform notification fired at the instant of a surprise
     * removal (wired by the system builder toward the AER path of
     * the upstream switch port).
     */
    void
    setUnplugHook(std::function<void()> hook)
    {
        unplugHook_ = std::move(hook);
    }

    /** Forwarded to the DMA engine's completion-timeout hook. */
    void
    setDmaTimeoutHook(std::function<void()> hook)
    {
        engine_->setTimeoutHook(std::move(hook));
    }

    /** Config-level FLR: back to power-on register state. */
    void functionLevelReset() override;

  protected:
    std::uint64_t readReg(unsigned bar, Addr offset,
                          unsigned size) override;
    void writeReg(unsigned bar, Addr offset, unsigned size,
                  std::uint64_t value) override;

    bool recvDmaResp(PacketPtr pkt) override;
    void recvDmaRetry() override;

  private:
    enum class State
    {
        Idle,
        MediaAccess,
        ReadPrd,
        Transfer,
    };

    /** READ_DMA moves data from the disk into host memory. */
    bool
    pendingCommandIsRead() const
    {
        return pendingCommand_ == ide::cmdReadDma;
    }

    void maybeStartCommand();
    void mediaAccessDone();
    void prdReadDone();
    void startNextChunk();
    void chunkDone();
    void commandComplete();
    void surpriseUnplug();
    void replugged();
    void resetRegisterFile();

    IdeDiskParams diskParams_;
    std::unique_ptr<DmaEngine> engine_;

    /** @{ Register file. */
    std::uint8_t status_ = ide::statusDrdy;
    std::uint8_t error_ = 0;
    std::uint8_t sectorCount_ = 0;
    std::uint32_t lba_ = 0;
    std::uint8_t device_ = 0;
    std::uint8_t bmCommand_ = 0;
    std::uint8_t bmStatus_ = 0;
    std::uint32_t prdAddr_ = 0;
    /** @} */

    State state_ = State::Idle;
    /** Surprise-removed: registers read all-ones, writes drop. */
    bool dead_ = false;
    /** The scripted unplug fires at most once per run. */
    bool unplugFired_ = false;
    std::function<void()> unplugHook_;
    bool commandPending_ = false;
    std::uint8_t pendingCommand_ = 0;
    /** Decoded from the PRD entry. */
    Addr bufferAddr_ = 0;
    std::uint32_t prdByteCount_ = 0;
    std::uint64_t bytesRemaining_ = 0;
    Addr nextBufferAddr_ = 0;
    Tick transferStart_ = 0;

    MemberEventWrapper<IdeDisk, &IdeDisk::mediaAccessDone> mediaEvent_;
    MemberEventWrapper<IdeDisk, &IdeDisk::startNextChunk> chunkGapEvent_;
    MemberEventWrapper<IdeDisk, &IdeDisk::surpriseUnplug> unplugEvent_;
    MemberEventWrapper<IdeDisk, &IdeDisk::replugged> replugEvent_;

    stats::Counter commands_;
    stats::Counter dmaBytes_;
    stats::Counter chunks_;
    stats::Scalar activeTicks_;
    /** Registered only when the unplug script is armed. */
    stats::Counter unplugs_;
};

} // namespace pciesim

#endif // PCIESIM_DEV_IDE_DISK_HH
