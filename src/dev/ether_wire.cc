#include "ether_wire.hh"

#include <cmath>

#include "sim/logging.hh"

namespace pciesim
{

EtherWire::EtherWire(Simulation &sim, const std::string &name,
                     const EtherWireParams &params)
    : SimObject(sim, name), params_(params)
{
    for (unsigned i = 0; i < 2; ++i) {
        dirs_[i].deliverEvent = std::make_unique<EventFunctionWrapper>(
            [this, i] { deliver(i ^ 1); },
            name + ".deliver" + std::to_string(i));
    }
}

EtherWire::~EtherWire() = default;

void
EtherWire::init()
{
    statsRegistry().add(name() + ".framesDelivered", &framesDelivered_,
                        "frames delivered");
    statsRegistry().add(name() + ".framesDropped", &framesDropped_,
                        "frames dropped by the receiver");
}

void
EtherWire::attach(unsigned end, EtherSink &sink)
{
    panicIf(end > 1, "wire has two ends");
    panicIf(sinks_[end] != nullptr, "wire end already attached");
    sinks_[end] = &sink;
}

Tick
EtherWire::freeAt(unsigned end) const
{
    return dirs_[end].busyUntil;
}

bool
EtherWire::transmit(unsigned end, const EtherFrame &frame)
{
    panicIf(end > 1, "wire has two ends");
    Direction &d = dirs_[end];
    Tick now = curTick();
    if (d.busyUntil > now)
        return false;

    Tick wire = static_cast<Tick>(
        std::ceil(static_cast<double>(frame.size) * 8.0 /
                  params_.rateGbps * 1000.0));
    d.busyUntil = now + wire;
    Tick arrive = d.busyUntil + params_.latency;
    d.inFlight.push_back({arrive, frame});
    if (!d.deliverEvent->scheduled())
        eventq().schedule(d.deliverEvent.get(), arrive);
    return true;
}

void
EtherWire::deliver(unsigned to_end)
{
    unsigned from = to_end ^ 1;
    Direction &d = dirs_[from];
    panicIf(d.inFlight.empty(), "wire delivery with nothing queued");
    EtherFrame frame = d.inFlight.front().second;
    d.inFlight.pop_front();
    if (!d.inFlight.empty()) {
        eventq().schedule(d.deliverEvent.get(),
                          d.inFlight.front().first);
    }

    // Loopback plug: with no sink on the far end, reflect.
    EtherSink *sink = sinks_[to_end] ? sinks_[to_end] : sinks_[from];
    if (sink != nullptr && sink->recvFrame(frame))
        ++framesDelivered_;
    else
        ++framesDropped_;
}

} // namespace pciesim
