/**
 * @file
 * A device-side DMA engine issuing cache-line-sized packets through
 * a device's DMA master port.
 *
 * Writes are non-posted, matching the paper's model (Sec. VI-B):
 * every write packet receives a response, and a transfer only
 * completes when all responses have returned. The engine obeys the
 * gem5 timing protocol (it waits for a retry after a refusal, which
 * the PCI-Express link interface issues when replay-buffer space
 * frees).
 */

#ifndef PCIESIM_DEV_DMA_ENGINE_HH
#define PCIESIM_DEV_DMA_ENGINE_HH

#include <functional>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace pciesim
{

/** Configuration for a DmaEngine. */
struct DmaEngineParams
{
    /** Bytes per DMA packet (the platform cache-line size). */
    unsigned packetSize = 64;
    /** Maximum outstanding packets the engine itself allows; the
     *  link's replay buffer usually throttles first. */
    unsigned maxOutstanding = 256;
    /**
     * Issue writes as posted TLPs (no completions), the real
     * PCI-Express write semantics. The paper's model is
     * non-posted (Sec. VI-B); this is the extension it names.
     */
    bool postedWrites = false;
    /**
     * Completion timeout: fail the transfer when no response (nor
     * initial acceptance) arrives for this long, so a dead
     * endpoint or link degrades to a counted error instead of a
     * hung simulation. 0 disables. Responses still owed by an
     * aborted transfer are dropped on arrival.
     */
    Tick completionTimeout = 0;
};

/**
 * One in-flight transfer at a time; the owning device sequences
 * chunks (and their barriers) by issuing one transfer per chunk.
 */
class DmaEngine
{
  public:
    /**
     * @param owner Owning device (for event scheduling and names).
     * @param port The device's DMA master port to issue through.
     */
    DmaEngine(SimObject &owner, MasterPort &port,
              const std::string &name,
              const DmaEngineParams &params = {});

    /**
     * Start a DMA transfer. @p on_complete fires when every packet
     * of the transfer has been responded to.
     */
    void startWrite(Addr addr, std::uint64_t len,
                    std::function<void()> on_complete);

    /**
     * Write with a functional payload (descriptor writebacks);
     * @p len must not exceed one packet.
     */
    void startWriteData(Addr addr, const std::uint8_t *data,
                        unsigned len,
                        std::function<void()> on_complete);

    /**
     * Send a posted MSI message TLP: a 2-byte write whose payload
     * selects the interrupt vector (paper Sec. II-B: "A message is
     * a posted request that is mainly used for implementing MSI").
     */
    void startMessage(Addr addr, std::uint16_t data,
                      std::function<void()> on_complete);

    /**
     * @param on_data Optional per-response-packet callback; read
     *                responses carry functional payloads when the
     *                memory stores them (descriptor/PRD fetches).
     */
    void startRead(Addr addr, std::uint64_t len,
                   std::function<void()> on_complete,
                   std::function<void(const PacketPtr &)> on_data =
                       nullptr);

    bool busy() const { return busy_; }

    /**
     * Surprise-removal support: abandon the in-flight transfer
     * without firing its completion callback. Unlike the watchdog
     * abort, nothing further is owed — the owning device must drop
     * any straggler responses itself (it is no longer present, so
     * the fabric drops most of them anyway).
     */
    void cancel();

    /** @{ Hooks the owning device forwards its port callbacks to. */
    bool recvResp(const PacketPtr &pkt);
    void recvRetry();
    /** @} */

    std::uint64_t bytesTransferred() const { return totalBytes_; }
    std::uint64_t packetsIssued() const { return totalPackets_; }

    /** Transfers aborted by the completion timeout. */
    std::uint64_t
    completionTimeouts() const
    {
        return completionTimeouts_;
    }

    /** Platform hook fired on each completion timeout (wired by
     *  AER-enabled topologies toward the device's error latch). */
    void
    setTimeoutHook(std::function<void()> hook)
    {
        timeoutHook_ = std::move(hook);
    }

    /** Request-to-response latency of non-posted packets (ticks). */
    const stats::Histogram &e2eLatency() const { return e2eLatency_; }

  private:
    void start(MemCmd cmd, Addr addr, std::uint64_t len,
               std::function<void()> on_complete);
    void issue();
    void maybeComplete();
    void armWatchdog();
    void completionTimedOut();

    SimObject &owner_;
    MasterPort &port_;
    std::string name_;
    DmaEngineParams params_;

    bool busy_ = false;
    MemCmd cmd_ = MemCmd::WriteReq;
    Addr nextAddr_ = 0;
    std::uint64_t remaining_ = 0;
    unsigned outstanding_ = 0;
    bool waitingRetry_ = false;
    std::function<void()> onComplete_;
    std::function<void(const PacketPtr &)> onData_;
    std::function<void()> timeoutHook_;
    std::vector<std::uint8_t> writePayload_;

    MemberEventWrapper<DmaEngine, &DmaEngine::issue> issueEvent_;
    MemberEventWrapper<DmaEngine,
                       &DmaEngine::completionTimedOut> watchdogEvent_;

    std::uint64_t totalBytes_ = 0;
    std::uint64_t totalPackets_ = 0;
    std::uint64_t completionTimeouts_ = 0;
    stats::Histogram e2eLatency_;
    /** Responses owed by timed-out transfers, dropped on arrival
     *  (the ordered fabric delivers them before any successor's). */
    std::uint64_t staleResponses_ = 0;
};

} // namespace pciesim

#endif // PCIESIM_DEV_DMA_ENGINE_HH
