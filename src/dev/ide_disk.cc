#include "ide_disk.hh"

#include "pci/config_regs.hh"
#include "sim/trace.hh"

namespace pciesim
{

namespace
{

PciDeviceParams
makeDeviceParams(const IdeDiskParams &params)
{
    PciDeviceParams p;
    p.vendorId = cfg::vendorIntel;
    p.deviceId = cfg::deviceIdeCtrl;
    p.classCode = cfg::classStorageIde;
    p.interruptPin = 1;
    p.pioLatency = params.pioLatency;
    // BAR0 command block, BAR1 control block, BAR4 bus-master DMA;
    // BAR2/3 (secondary channel) unimplemented.
    p.bars = {BarSpec{16, true}, BarSpec{16, true}, BarSpec{},
              BarSpec{}, BarSpec{16, true}, BarSpec{}};
    return p;
}

} // namespace

IdeDisk::IdeDisk(Simulation &sim, const std::string &name,
                 const IdeDiskParams &params)
    : PciDevice(sim, name, makeDeviceParams(params)),
      diskParams_(params),
      mediaEvent_(this, name + ".mediaEvent"),
      chunkGapEvent_(this, name + ".chunkGapEvent"),
      unplugEvent_(this, name + ".unplugEvent"),
      replugEvent_(this, name + ".replugEvent")
{
    DmaEngineParams ep;
    ep.postedWrites = params.postedWrites;
    ep.completionTimeout = params.dmaCompletionTimeout;
    engine_ = std::make_unique<DmaEngine>(*this, dmaPort(),
                                          name + ".dma", ep);
}

IdeDisk::~IdeDisk() = default;

void
IdeDisk::init()
{
    PciDevice::init();
    auto &reg = statsRegistry();
    reg.add(name() + ".commands", &commands_, "DMA commands completed");
    reg.add(name() + ".dmaBytes", &dmaBytes_, "payload bytes moved");
    reg.add(name() + ".chunks", &chunks_, "4KB chunks transferred");
    reg.add(name() + ".activeTicks", &activeTicks_,
            "ticks spent actively transferring");
    // Registered only when the unplug script is armed so fault-free
    // stats dumps stay bit-identical.
    if (diskParams_.unplugAtChunk > 0) {
        reg.add(name() + ".unplugs", &unplugs_,
                "scripted surprise removals");
    }
    fatalIf(!dmaPort().isBound(),
            "disk '", name(), "' DMA port unbound");
}

std::uint64_t
IdeDisk::readReg(unsigned bar, Addr offset, unsigned size)
{
    (void)size;
    // A surprise-removed device terminates reads with all-ones
    // (master abort), the pattern drivers use to detect removal.
    if (dead_)
        return ~0ULL;
    if (bar == ide::barCmd) {
        switch (offset) {
          case ide::regError:
            return error_;
          case ide::regSectorCount:
            return sectorCount_;
          case ide::regLbaLow:
            return lba_ & 0xff;
          case ide::regLbaMid:
            return (lba_ >> 8) & 0xff;
          case ide::regLbaHigh:
            return (lba_ >> 16) & 0xff;
          case ide::regDevice:
            return device_;
          case ide::regCommand:
            // Reading the status register clears the interrupt.
            lowerIntx();
            return status_;
          default:
            return 0;
        }
    }
    if (bar == ide::barCtrl) {
        if (offset == ide::regAltStatus)
            return status_; // without clearing the interrupt
        return 0;
    }
    if (bar == ide::barBmdma) {
        switch (offset) {
          case ide::regBmCommand:
            return bmCommand_;
          case ide::regBmStatus:
            return bmStatus_;
          case ide::regBmPrdAddr:
            return prdAddr_;
          default:
            return 0;
        }
    }
    return 0;
}

void
IdeDisk::writeReg(unsigned bar, Addr offset, unsigned size,
                  std::uint64_t value)
{
    (void)size;
    if (dead_)
        return;
    if (bar == ide::barCmd) {
        switch (offset) {
          case ide::regSectorCount:
            sectorCount_ = value & 0xff;
            break;
          case ide::regLbaLow:
            lba_ = (lba_ & 0xffff00) | (value & 0xff);
            break;
          case ide::regLbaMid:
            lba_ = (lba_ & 0xff00ff) | ((value & 0xff) << 8);
            break;
          case ide::regLbaHigh:
            lba_ = (lba_ & 0x00ffff) | ((value & 0xff) << 16);
            break;
          case ide::regDevice:
            device_ = value & 0xff;
            break;
          case ide::regCommand:
            panicIf(state_ != State::Idle,
                    "disk '", name(), "' command while busy");
            pendingCommand_ = value & 0xff;
            panicIf(pendingCommand_ != ide::cmdReadDma &&
                    pendingCommand_ != ide::cmdWriteDma,
                    "disk '", name(), "' unsupported ATA command 0x",
                    pendingCommand_);
            commandPending_ = true;
            status_ |= ide::statusBsy;
            maybeStartCommand();
            break;
          default:
            break;
        }
        return;
    }
    if (bar == ide::barBmdma) {
        switch (offset) {
          case ide::regBmCommand:
            bmCommand_ = value & 0xff;
            if (bmCommand_ & ide::bmStart) {
                bmStatus_ |= ide::bmStatusActive;
                maybeStartCommand();
            }
            break;
          case ide::regBmStatus:
            // Write-one-to-clear interrupt / error bits.
            bmStatus_ &= ~(value &
                           (ide::bmStatusIntr | ide::bmStatusErr));
            break;
          case ide::regBmPrdAddr:
            prdAddr_ = value & 0xffffffff;
            break;
          default:
            break;
        }
    }
}

void
IdeDisk::maybeStartCommand()
{
    if (state_ != State::Idle || !commandPending_ ||
        !(bmCommand_ & ide::bmStart)) {
        return;
    }
    panicIf(!busMaster(), "disk '", name(),
            "' DMA started without bus mastering enabled");

    commandPending_ = false;
    state_ = State::MediaAccess;
    // Constant media access latency, as in the gem5 IDE disk.
    schedule(mediaEvent_, diskParams_.mediaLatency);
}

void
IdeDisk::mediaAccessDone()
{
    // Fetch the PRD entry describing the host buffer (8 bytes:
    // 32-bit address, 16-bit byte count, 16-bit flags).
    state_ = State::ReadPrd;
    engine_->startRead(
        prdAddr_, 8, [this] { prdReadDone(); },
        [this](const PacketPtr &pkt) {
            if (pkt->hasData()) {
                std::uint64_t v = pkt->get<std::uint64_t>();
                bufferAddr_ = v & 0xffffffff;
                std::uint32_t count = (v >> 32) & 0xffff;
                prdByteCount_ = count == 0 ? 0x10000 : count;
            }
        });
}

void
IdeDisk::prdReadDone()
{
    unsigned sectors = sectorCount_ == 0 ? ide::maxSectorsPerCommand
                                         : sectorCount_;
    bytesRemaining_ = static_cast<std::uint64_t>(sectors) *
                      ide::sectorSize;
    panicIf(bufferAddr_ == 0,
            "disk '", name(), "' PRD entry has null buffer address");
    panicIf(prdByteCount_ < bytesRemaining_,
            "disk '", name(), "' PRD smaller than the command (",
            prdByteCount_, " < ", bytesRemaining_, ")");

    nextBufferAddr_ = bufferAddr_;
    state_ = State::Transfer;
    transferStart_ = curTick();
    startNextChunk();
}

void
IdeDisk::startNextChunk()
{
    std::uint64_t len = std::min<std::uint64_t>(
        diskParams_.chunkSize, bytesRemaining_);
    panicIf(len == 0, "disk '", name(), "' zero-length chunk");

    bool to_memory = pendingCommandIsRead();
    if (to_memory) {
        engine_->startWrite(nextBufferAddr_, len,
                            [this] { chunkDone(); });
    } else {
        engine_->startRead(nextBufferAddr_, len,
                           [this] { chunkDone(); });
    }
    nextBufferAddr_ += len;
    bytesRemaining_ -= len;
    dmaBytes_ += len;

    // Scripted surprise hot-unplug: one media latency into the Nth
    // chunk, i.e. with DMA packets genuinely in flight.
    if (diskParams_.unplugAtChunk > 0 && !unplugFired_ &&
        chunks_.value() + 1 == diskParams_.unplugAtChunk) {
        unplugFired_ = true;
        schedule(unplugEvent_, diskParams_.mediaLatency);
    }
}

void
IdeDisk::surpriseUnplug()
{
    ++unplugs_;
    TRACE_MSG(trace::Flag::Dma, curTick(), name(),
              "surprise hot-unplug mid-DMA");
    inform("disk '", name(), "': surprise hot-unplug at tick ",
           curTick());
    dead_ = true;
    engine_->cancel();
    if (mediaEvent_.scheduled())
        eventq().deschedule(&mediaEvent_);
    if (chunkGapEvent_.scheduled())
        eventq().deschedule(&chunkGapEvent_);
    if (intxAsserted())
        lowerIntx();
    state_ = State::Idle;
    commandPending_ = false;
    bytesRemaining_ = 0;
    setPresent(false);
    if (unplugHook_)
        unplugHook_();
    schedule(replugEvent_, diskParams_.replugDelay);
}

void
IdeDisk::replugged()
{
    TRACE_MSG(trace::Flag::Dma, curTick(), name(),
              "device re-seated, power-on reset");
    inform("disk '", name(), "': re-seated at tick ", curTick());
    dead_ = false;
    setPresent(true);
    resetRegisterFile();
}

void
IdeDisk::resetRegisterFile()
{
    status_ = ide::statusDrdy;
    error_ = 0;
    sectorCount_ = 0;
    lba_ = 0;
    device_ = 0;
    bmCommand_ = 0;
    bmStatus_ = 0;
    prdAddr_ = 0;
    state_ = State::Idle;
    commandPending_ = false;
    pendingCommand_ = 0;
    bufferAddr_ = 0;
    prdByteCount_ = 0;
    bytesRemaining_ = 0;
    nextBufferAddr_ = 0;
}

void
IdeDisk::functionLevelReset()
{
    PciDevice::functionLevelReset();
    engine_->cancel();
    if (mediaEvent_.scheduled())
        eventq().deschedule(&mediaEvent_);
    if (chunkGapEvent_.scheduled())
        eventq().deschedule(&chunkGapEvent_);
    if (intxAsserted())
        lowerIntx();
    resetRegisterFile();
}

void
IdeDisk::chunkDone()
{
    ++chunks_;
    if (bytesRemaining_ > 0) {
        // The response barrier has completed; the next chunk starts
        // after the fixed per-chunk processing gap.
        schedule(chunkGapEvent_, diskParams_.chunkOverhead);
    } else {
        commandComplete();
    }
}

void
IdeDisk::commandComplete()
{
    activeTicks_ += static_cast<double>(curTick() - transferStart_);
    ++commands_;
    state_ = State::Idle;
    status_ &= ~ide::statusBsy;
    bmStatus_ &= ~ide::bmStatusActive;
    bmStatus_ |= ide::bmStatusIntr;
    raiseIntx();
}

bool
IdeDisk::recvDmaResp(PacketPtr pkt)
{
    // Straggler completions owed by a transfer a surprise removal
    // abandoned; the device is gone, so they fall on the floor.
    if (dead_)
        return true;
    return engine_->recvResp(pkt);
}

void
IdeDisk::recvDmaRetry()
{
    if (dead_)
        return;
    engine_->recvRetry();
}

} // namespace pciesim
