/**
 * @file
 * A point-to-point Ethernet wire connecting two NIC models (or one
 * NIC in loopback): per-direction serialization at the line rate
 * plus a propagation latency.
 */

#ifndef PCIESIM_DEV_ETHER_WIRE_HH
#define PCIESIM_DEV_ETHER_WIRE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/** An Ethernet frame; payload content is optional. */
struct EtherFrame
{
    unsigned size = 0;
    std::vector<std::uint8_t> data;
};

/** Receiver interface implemented by NIC models. */
class EtherSink
{
  public:
    virtual ~EtherSink() = default;

    /** @return false to drop the frame (no RX resources). */
    virtual bool recvFrame(const EtherFrame &frame) = 0;
};

/** Configuration for an EtherWire. */
struct EtherWireParams
{
    double rateGbps = 1.0;
    Tick latency = nanoseconds(500);
};

/**
 * The wire. attach() both ends; with a single end attached the wire
 * acts as a loopback plug.
 */
class EtherWire : public SimObject
{
  public:
    EtherWire(Simulation &sim, const std::string &name,
              const EtherWireParams &params = {});
    ~EtherWire() override;

    /** @param end 0 or 1. */
    void attach(unsigned end, EtherSink &sink);

    /**
     * Transmit a frame from @p end.
     * @return false when that direction is still serializing a
     *         previous frame; retry at freeAt().
     */
    bool transmit(unsigned end, const EtherFrame &frame);

    /** When the @p end transmit direction becomes free. */
    Tick freeAt(unsigned end) const;

    std::uint64_t framesDelivered() const
    {
        return framesDelivered_.value();
    }
    std::uint64_t framesDropped() const
    {
        return framesDropped_.value();
    }

    void init() override;

  private:
    struct Direction
    {
        Tick busyUntil = 0;
        std::deque<std::pair<Tick, EtherFrame>> inFlight;
        std::unique_ptr<EventFunctionWrapper> deliverEvent;
    };

    void deliver(unsigned to_end);

    EtherWireParams params_;
    EtherSink *sinks_[2] = {nullptr, nullptr};
    Direction dirs_[2]; //!< indexed by source end

    stats::Counter framesDelivered_;
    stats::Counter framesDropped_;
};

} // namespace pciesim

#endif // PCIESIM_DEV_ETHER_WIRE_HH
