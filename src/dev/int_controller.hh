/**
 * @file
 * A GIC-like interrupt controller delivering level-triggered legacy
 * INTx lines to the kernel model's registered handlers.
 */

#ifndef PCIESIM_DEV_INT_CONTROLLER_HH
#define PCIESIM_DEV_INT_CONTROLLER_HH

#include <functional>
#include <map>

#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/** Configuration for an IntController. */
struct IntControllerParams
{
    /** Delivery latency from line assertion to handler dispatch. */
    Tick deliveryLatency = nanoseconds(200);
    /** Address window accepting MSI message writes (in-band
     *  interrupts arriving through the fabric). */
    AddrRange msiRange{0x10000000, 0x10001000};
};

/**
 * Level-triggered interrupt controller.
 *
 * A handler registered for a line is invoked (after the delivery
 * latency) whenever the line goes high, and again if the line is
 * still / again high after the handler completes and re-enables -
 * approximated by re-dispatching while the level stays asserted
 * after each handler return.
 */
class IntController : public SimObject
{
  public:
    IntController(Simulation &sim, const std::string &name,
                  const IntControllerParams &params = {});
    ~IntController() override;

    /** Device side: drive the level of @p line. */
    void setLevel(unsigned line, bool asserted);

    /** Kernel side: install the handler for @p line. */
    void registerHandler(unsigned line, std::function<void()> handler);

    /**
     * Slave port accepting MSI message TLPs; bind behind a MemBus
     * master port. A message's data payload selects the handler
     * line; MSIs are edge triggered (one dispatch per message).
     */
    SlavePort &msiPort();

    /** MSI messages received. */
    std::uint64_t msisReceived() const { return msis_.value(); }

    void init() override;

    bool level(unsigned line) const;

    std::uint64_t dispatched() const { return dispatched_.value(); }

  private:
    class MsiPort;

    bool handleMsi(const PacketPtr &pkt);

    struct Line
    {
        bool asserted = false;
        bool dispatchPending = false;
        std::function<void()> handler;
        std::unique_ptr<EventFunctionWrapper> dispatchEvent;
    };

    void dispatch(unsigned line);
    Line &getLine(unsigned line);

    IntControllerParams params_;
    std::unique_ptr<MsiPort> msiPort_;
    std::map<unsigned, Line> lines_;
    stats::Counter dispatched_;
    stats::Counter msis_;
};

} // namespace pciesim

#endif // PCIESIM_DEV_INT_CONTROLLER_HH
