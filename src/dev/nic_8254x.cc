#include "nic_8254x.hh"

#include "pci/capability.hh"
#include "pci/config_regs.hh"

namespace pciesim
{

namespace
{

PciDeviceParams
makeDeviceParams(const NicParams &params)
{
    PciDeviceParams p;
    p.vendorId = cfg::vendorIntel;
    // Device ID 0x10d3 invokes the e1000e driver's probe function
    // (paper Sec. IV).
    p.deviceId = cfg::device8254xPcie;
    p.classCode = cfg::classNetworkEthernet;
    p.interruptPin = 1;
    p.pioLatency = params.pioLatency;
    // BAR0: 128 KB memory-mapped register space; BAR2: 32 B of
    // I/O-mapped registers (unused by the driver model, exercised
    // by tests).
    p.bars = {BarSpec{128 * 1024, false}, BarSpec{},
              BarSpec{32, true}};
    return p;
}

} // namespace

Nic8254xPcie::Nic8254xPcie(Simulation &sim, const std::string &name,
                           const NicParams &params)
    : PciDevice(sim, name, makeDeviceParams(params)),
      nicParams_(params),
      txKickEvent_(this, name + ".txKickEvent"),
      txRetryEvent_(this, name + ".txRetryEvent")
{
    engine_ = std::make_unique<DmaEngine>(*this, dmaPort(),
                                          name + ".dma");

    // Capability chain per the Intel 82574 datasheet and paper
    // Sec. IV: Cap Ptr -> PM -> MSI -> PCIe -> MSI-X, with PM, MSI
    // and MSI-X disabled so the driver falls back to INTx.
    CapabilityChain chain(config_);
    chain.addPowerManagement(0xc8);
    chain.addMsi(0xd0, params.allowMsi);
    PcieCapParams pcie_cap;
    pcie_cap.portType = cfg::PciePortType::Endpoint;
    pcie_cap.linkWidth = 1;
    pcie_cap.linkGen = 2;
    chain.addPcie(0xe0, pcie_cap);
    chain.addMsix(0xa0, 5);
    chain.finalize();

    // EEPROM: MAC address in words 0-2, checksum convention in 0x3f.
    eeprom_[0] = 0x1200;
    eeprom_[1] = 0x5634;
    eeprom_[2] = 0x9a78;
    eeprom_[0x3f] = 0xbaba;
}

Nic8254xPcie::~Nic8254xPcie() = default;

void
Nic8254xPcie::init()
{
    PciDevice::init();
    auto &reg = statsRegistry();
    reg.add(name() + ".txFrames", &txFrames_, "frames transmitted");
    reg.add(name() + ".rxFrames", &rxFrames_, "frames received");
    reg.add(name() + ".rxMissed", &rxMissed_,
            "frames dropped for lack of RX descriptors");
}

void
Nic8254xPcie::attachWire(EtherWire &wire, unsigned end)
{
    wire_ = &wire;
    wireEnd_ = end;
    wire.attach(end, *this);
}

//
// DMA job sequencing: TX and RX share the single DMA engine.
//

void
Nic8254xPcie::enqueueDma(DmaJob job)
{
    dmaJobs_.push_back(std::move(job));
    if (!dmaBusy_)
        startNextDma();
}

void
Nic8254xPcie::startNextDma()
{
    if (dmaJobs_.empty()) {
        dmaBusy_ = false;
        return;
    }
    dmaBusy_ = true;
    DmaJob job = std::move(dmaJobs_.front());
    dmaJobs_.pop_front();

    auto complete = [this, cb = std::move(job.onComplete)] {
        if (cb)
            cb();
        startNextDma();
    };
    if (job.isMessage)
        engine_->startMessage(job.addr,
                              static_cast<std::uint16_t>(
                                  job.payload[0] |
                                  (job.payload[1] << 8)),
                              std::move(complete));
    else if (job.isWrite && !job.payload.empty())
        engine_->startWriteData(job.addr, job.payload.data(),
                                static_cast<unsigned>(job.len),
                                std::move(complete));
    else if (job.isWrite)
        engine_->startWrite(job.addr, job.len, std::move(complete));
    else
        engine_->startRead(job.addr, job.len, std::move(complete),
                           std::move(job.onData));
}

bool
Nic8254xPcie::recvDmaResp(PacketPtr pkt)
{
    return engine_->recvResp(pkt);
}

void
Nic8254xPcie::recvDmaRetry()
{
    engine_->recvRetry();
}

//
// Register file
//

std::uint64_t
Nic8254xPcie::readReg(unsigned bar, Addr offset, unsigned size)
{
    (void)size;
    if (bar != 0)
        return 0; // BAR2 I/O window: scratch

    switch (offset) {
      case nicreg::ctrl:
        return ctrl_;
      case nicreg::status:
        return status_;
      case nicreg::eerd:
        return eerd_;
      case nicreg::icr: {
        // Reading ICR clears it and deasserts INTx.
        std::uint32_t v = icr_;
        icr_ = 0;
        updateInterrupts();
        return v;
      }
      case nicreg::ims:
        return ims_;
      case nicreg::rctl:
        return rctl_;
      case nicreg::tctl:
        return tctl_;
      case nicreg::rdbal: return rdbal_;
      case nicreg::rdbah: return rdbah_;
      case nicreg::rdlen: return rdlen_;
      case nicreg::rdh: return rdh_;
      case nicreg::rdt: return rdt_;
      case nicreg::tdbal: return tdbal_;
      case nicreg::tdbah: return tdbah_;
      case nicreg::tdlen: return tdlen_;
      case nicreg::tdh: return tdh_;
      case nicreg::tdt: return tdt_;
      case nicreg::ral0: return ral0_;
      case nicreg::rah0: return rah0_;
      default:
        return 0;
    }
}

void
Nic8254xPcie::writeReg(unsigned bar, Addr offset, unsigned size,
                       std::uint64_t value)
{
    (void)size;
    if (bar != 0)
        return;

    std::uint32_t v = static_cast<std::uint32_t>(value);
    switch (offset) {
      case nicreg::ctrl:
        ctrl_ = v;
        if (ctrl_ & nicreg::ctrlRst)
            performReset();
        break;
      case nicreg::eerd:
        if (v & nicreg::eerdStart) {
            unsigned addr = (v >> 8) & 0xff;
            std::uint16_t word =
                addr < eeprom_.size() ? eeprom_[addr] : 0xffff;
            eerd_ = (static_cast<std::uint32_t>(word) << 16) |
                    ((addr & 0xff) << 8) | nicreg::eerdDone;
        }
        break;
      case nicreg::icr:
        icr_ &= ~v; // write-1-to-clear
        updateInterrupts();
        break;
      case nicreg::ims:
        ims_ |= v;
        updateInterrupts();
        break;
      case nicreg::imc:
        ims_ &= ~v;
        updateInterrupts();
        break;
      case nicreg::rctl:
        rctl_ = v;
        if ((rctl_ & nicreg::ctlEn) && !rxPending_.empty())
            rxProcess();
        break;
      case nicreg::tctl:
        tctl_ = v;
        if (tctl_ & nicreg::ctlEn)
            schedule(txKickEvent_, 0);
        break;
      case nicreg::rdbal: rdbal_ = v; break;
      case nicreg::rdbah: rdbah_ = v; break;
      case nicreg::rdlen: rdlen_ = v; break;
      case nicreg::rdh: rdh_ = v; break;
      case nicreg::rdt:
        rdt_ = v;
        if ((rctl_ & nicreg::ctlEn) && !rxPending_.empty())
            rxProcess();
        break;
      case nicreg::tdbal: tdbal_ = v; break;
      case nicreg::tdbah: tdbah_ = v; break;
      case nicreg::tdlen: tdlen_ = v; break;
      case nicreg::tdh: tdh_ = v; break;
      case nicreg::tdt:
        tdt_ = v;
        if ((tctl_ & nicreg::ctlEn) && !txKickEvent_.scheduled())
            schedule(txKickEvent_, 0);
        break;
      case nicreg::ral0: ral0_ = v; break;
      case nicreg::rah0: rah0_ = v; break;
      default:
        break;
    }
}

void
Nic8254xPcie::performReset()
{
    ctrl_ &= ~nicreg::ctrlRst;
    icr_ = 0;
    ims_ = 0;
    rctl_ = 0;
    tctl_ = 0;
    tdh_ = tdt_ = rdh_ = rdt_ = 0;
    updateInterrupts();
}

bool
Nic8254xPcie::msiEnabled() const
{
    return (config_.raw16(0xd0 + 2) & 0x0001) != 0;
}

void
Nic8254xPcie::sendMsi()
{
    Addr addr = config_.raw32(0xd0 + 4) |
                (static_cast<Addr>(config_.raw32(0xd0 + 8)) << 32);
    std::uint16_t data = config_.raw16(0xd0 + 12);
    DmaJob job;
    job.isWrite = true;
    job.isMessage = true;
    job.addr = addr;
    job.len = 2;
    job.payload = {static_cast<std::uint8_t>(data & 0xff),
                   static_cast<std::uint8_t>((data >> 8) & 0xff)};
    enqueueDma(std::move(job));
}

void
Nic8254xPcie::updateInterrupts()
{
    bool active = (icr_ & ims_) != 0;
    if (msiEnabled()) {
        // Edge: one message per assertion of the cause summary.
        if (active && !msiLevel_) {
            msiLevel_ = true;
            sendMsi();
        } else if (!active) {
            msiLevel_ = false;
        }
        lowerIntx();
        return;
    }
    if (active)
        raiseIntx();
    else
        lowerIntx();
}

void
Nic8254xPcie::setCause(std::uint32_t bits)
{
    icr_ |= bits;
    updateInterrupts();
}

//
// TX path
//

Addr
Nic8254xPcie::txDescAddr(std::uint32_t index) const
{
    Addr base = (static_cast<Addr>(tdbah_) << 32) | tdbal_;
    return base + static_cast<Addr>(index) * nicreg::descSize;
}

Addr
Nic8254xPcie::rxDescAddr(std::uint32_t index) const
{
    Addr base = (static_cast<Addr>(rdbah_) << 32) | rdbal_;
    return base + static_cast<Addr>(index) * nicreg::descSize;
}

void
Nic8254xPcie::txKick()
{
    if (txBusy_ || !(tctl_ & nicreg::ctlEn) || tdh_ == tdt_)
        return;
    txBusy_ = true;
    txFetchDescriptor();
}

void
Nic8254xPcie::txFetchDescriptor()
{
    txDescRaw_[0] = txDescRaw_[1] = 0;
    DmaJob job;
    job.isWrite = false;
    job.addr = txDescAddr(tdh_);
    job.len = nicreg::descSize;
    job.onData = [this](const PacketPtr &pkt) {
        if (pkt->hasData() && pkt->dataSize() >= 16) {
            std::memcpy(&txDescRaw_[0], pkt->data(), 8);
            std::memcpy(&txDescRaw_[1], pkt->data() + 8, 8);
        }
    };
    job.onComplete = [this] { txFetchData(); };
    enqueueDma(std::move(job));
}

void
Nic8254xPcie::txFetchData()
{
    Addr buf = txDescRaw_[0];
    unsigned len = txDescRaw_[1] & 0xffff;
    if (len == 0) {
        // Null descriptor: skip it.
        txWriteback();
        return;
    }
    txFrame_.size = len;
    txFrame_.data.clear();

    DmaJob job;
    job.isWrite = false;
    job.addr = buf;
    job.len = len;
    job.onComplete = [this] { txTransmit(); };
    enqueueDma(std::move(job));
}

void
Nic8254xPcie::txTransmit()
{
    panicIf(wire_ == nullptr,
            "NIC '", name(), "' transmits with no wire attached");
    if (!wire_->transmit(wireEnd_, txFrame_)) {
        // Wire busy: retry when it frees.
        eventq().schedule(&txRetryEvent_,
                          std::max(curTick(), wire_->freeAt(wireEnd_)));
        return;
    }
    ++txFrames_;
    txWriteback();
}

void
Nic8254xPcie::txWriteback()
{
    std::uint8_t cmd = (txDescRaw_[1] >> 24) & 0xff;
    auto advance = [this] {
        std::uint32_t count = tdlen_ / nicreg::descSize;
        tdh_ = count ? (tdh_ + 1) % count : tdh_ + 1;
        setCause(nicreg::icrTxdw);
        txBusy_ = false;
        if (!txKickEvent_.scheduled())
            schedule(txKickEvent_, nicParams_.descProcessing);
    };

    if (cmd & nicreg::txCmdRs) {
        // Report status: write DD back into the descriptor.
        DmaJob job;
        job.isWrite = true;
        job.addr = txDescAddr(tdh_) + 12;
        job.len = 4;
        job.payload = {nicreg::staDd, 0, 0, 0};
        job.onComplete = advance;
        enqueueDma(std::move(job));
    } else {
        advance();
    }
}

//
// RX path
//

bool
Nic8254xPcie::recvFrame(const EtherFrame &frame)
{
    if (!(rctl_ & nicreg::ctlEn))
        return false;
    rxPending_.push_back(frame);
    rxProcess();
    return true;
}

void
Nic8254xPcie::rxProcess()
{
    if (rxBusy_ || rxPending_.empty())
        return;
    if (!(rctl_ & nicreg::ctlEn))
        return;

    std::uint32_t count = rdlen_ / nicreg::descSize;
    if (count == 0 || rdh_ == rdt_) {
        // No RX descriptors available: the frame is missed.
        ++rxMissed_;
        rxPending_.pop_front();
        return;
    }

    rxBusy_ = true;
    EtherFrame frame = rxPending_.front();
    rxPending_.pop_front();

    rxDescRaw_[0] = rxDescRaw_[1] = 0;
    DmaJob fetch;
    fetch.isWrite = false;
    fetch.addr = rxDescAddr(rdh_);
    fetch.len = nicreg::descSize;
    fetch.onData = [this](const PacketPtr &pkt) {
        if (pkt->hasData() && pkt->dataSize() >= 8)
            std::memcpy(&rxDescRaw_[0], pkt->data(), 8);
    };
    fetch.onComplete = [this, frame] {
        Addr buf = rxDescRaw_[0];
        // Write the frame data into the host buffer.
        DmaJob data;
        data.isWrite = true;
        data.addr = buf;
        data.len = frame.size;
        data.onComplete = [this, size = frame.size] {
            // Write back length + DD|EOP status.
            DmaJob wb;
            wb.isWrite = true;
            wb.addr = rxDescAddr(rdh_) + 8;
            wb.len = 8;
            wb.payload = {static_cast<std::uint8_t>(size & 0xff),
                          static_cast<std::uint8_t>((size >> 8) &
                                                    0xff),
                          0, 0,
                          static_cast<std::uint8_t>(nicreg::staDd |
                                                    nicreg::rxStaEop),
                          0, 0, 0};
            wb.onComplete = [this] {
                std::uint32_t cnt = rdlen_ / nicreg::descSize;
                rdh_ = cnt ? (rdh_ + 1) % cnt : rdh_ + 1;
                ++rxFrames_;
                setCause(nicreg::icrRxt0);
                rxBusy_ = false;
                rxProcess();
            };
            enqueueDma(std::move(wb));
            (void)size;
        };
        enqueueDma(std::move(data));
    };
    enqueueDma(std::move(fetch));
}

} // namespace pciesim
