/**
 * @file
 * The 8254x-pcie NIC model (paper Sec. IV): an Intel 8254x-family
 * register interface with the Device ID set to 0x10d3 so the e1000e
 * driver's module device table matches, and the capability chain
 * the paper describes - PM -> MSI -> PCI-Express -> MSI-X, with PM,
 * MSI and MSI-X encoded disabled so the driver registers a legacy
 * interrupt handler.
 *
 * The data path implements legacy 16-byte TX/RX descriptor rings
 * fetched and written back over the DMA port.
 */

#ifndef PCIESIM_DEV_NIC_8254X_HH
#define PCIESIM_DEV_NIC_8254X_HH

#include <array>
#include <deque>
#include <memory>

#include "dev/dma_engine.hh"
#include "dev/ether_wire.hh"
#include "pci/pci_device.hh"

namespace pciesim
{

/** Register offsets of the model (subset of the 8254x map). */
namespace nicreg
{

constexpr Addr ctrl = 0x0000;
constexpr Addr status = 0x0008;
constexpr Addr eerd = 0x0014;
constexpr Addr icr = 0x00c0;
constexpr Addr ims = 0x00d0;
constexpr Addr imc = 0x00d8;
constexpr Addr rctl = 0x0100;
constexpr Addr tctl = 0x0400;
constexpr Addr rdbal = 0x2800;
constexpr Addr rdbah = 0x2804;
constexpr Addr rdlen = 0x2808;
constexpr Addr rdh = 0x2810;
constexpr Addr rdt = 0x2818;
constexpr Addr tdbal = 0x3800;
constexpr Addr tdbah = 0x3804;
constexpr Addr tdlen = 0x3808;
constexpr Addr tdh = 0x3810;
constexpr Addr tdt = 0x3818;
constexpr Addr ral0 = 0x5400;
constexpr Addr rah0 = 0x5404;

/** CTRL bits. */
constexpr std::uint32_t ctrlRst = 1u << 26;
/** STATUS bits. */
constexpr std::uint32_t statusLu = 1u << 1;
/** RCTL/TCTL enable. */
constexpr std::uint32_t ctlEn = 1u << 1;
/** Interrupt cause bits. */
constexpr std::uint32_t icrTxdw = 1u << 0;
constexpr std::uint32_t icrRxt0 = 1u << 7;
/** EERD fields. */
constexpr std::uint32_t eerdStart = 1u << 0;
constexpr std::uint32_t eerdDone = 1u << 4;

/** Descriptor status bits. */
constexpr std::uint8_t txCmdEop = 1u << 0;
constexpr std::uint8_t txCmdRs = 1u << 3;
constexpr std::uint8_t staDd = 1u << 0;
constexpr std::uint8_t rxStaEop = 1u << 1;

constexpr unsigned descSize = 16;

} // namespace nicreg

/** Configuration for a Nic8254xPcie. */
struct NicParams
{
    Tick pioLatency = nanoseconds(30);
    /** Per-descriptor processing time in the MAC. */
    Tick descProcessing = nanoseconds(100);
    /**
     * Make the MSI capability's enable bit writable. The paper's
     * template hard-wires it to zero (forcing legacy INTx); with
     * this set, a driver can enable real message-signaled
     * interrupts, delivered as posted message TLPs through the
     * fabric.
     */
    bool allowMsi = false;
};

/**
 * The NIC device.
 */
class Nic8254xPcie : public PciDevice, public EtherSink
{
  public:
    Nic8254xPcie(Simulation &sim, const std::string &name,
                 const NicParams &params = {});
    ~Nic8254xPcie() override;

    void init() override;

    /** Connect to a wire end (0 or 1). */
    void attachWire(EtherWire &wire, unsigned end);

    /** EtherSink: a frame arrived from the wire. */
    bool recvFrame(const EtherFrame &frame) override;

    /** @{ Introspection. */
    std::uint64_t framesTransmitted() const { return txFrames_.value(); }
    std::uint64_t framesReceived() const { return rxFrames_.value(); }
    std::uint64_t framesMissed() const { return rxMissed_.value(); }
    /** @} */

  protected:
    std::uint64_t readReg(unsigned bar, Addr offset,
                          unsigned size) override;
    void writeReg(unsigned bar, Addr offset, unsigned size,
                  std::uint64_t value) override;

    bool recvDmaResp(PacketPtr pkt) override;
    void recvDmaRetry() override;

  private:
    /** One queued DMA operation (TX and RX share the engine). */
    struct DmaJob
    {
        bool isWrite = false;
        Addr addr = 0;
        std::uint64_t len = 0;
        std::function<void()> onComplete;
        std::function<void(const PacketPtr &)> onData;
        /** Functional payload for small writes (writebacks). */
        std::vector<std::uint8_t> payload;
        /** Posted MSI message (payload = 2-byte vector). */
        bool isMessage = false;
    };

    void enqueueDma(DmaJob job);
    void startNextDma();

    void performReset();
    void updateInterrupts();
    void setCause(std::uint32_t bits);

    /** Whether software enabled MSI in the capability. */
    bool msiEnabled() const;
    void sendMsi();

    /** @{ TX path. */
    void txKick();
    void txFetchDescriptor();
    void txFetchData();
    void txTransmit();
    void txWriteback();
    /** @} */

    /** @{ RX path. */
    void rxProcess();
    /** @} */

    Addr txDescAddr(std::uint32_t index) const;
    Addr rxDescAddr(std::uint32_t index) const;

    NicParams nicParams_;
    std::unique_ptr<DmaEngine> engine_;
    std::deque<DmaJob> dmaJobs_;
    bool dmaBusy_ = false;

    EtherWire *wire_ = nullptr;
    unsigned wireEnd_ = 0;
    /** Rising-edge tracker for MSI generation. */
    bool msiLevel_ = false;

    /** @{ Register file. */
    std::uint32_t ctrl_ = 0;
    std::uint32_t status_ = nicreg::statusLu;
    std::uint32_t eerd_ = 0;
    std::uint32_t icr_ = 0;
    std::uint32_t ims_ = 0;
    std::uint32_t rctl_ = 0;
    std::uint32_t tctl_ = 0;
    std::uint32_t rdbal_ = 0, rdbah_ = 0, rdlen_ = 0;
    std::uint32_t rdh_ = 0, rdt_ = 0;
    std::uint32_t tdbal_ = 0, tdbah_ = 0, tdlen_ = 0;
    std::uint32_t tdh_ = 0, tdt_ = 0;
    std::uint32_t ral0_ = 0x12345678;
    std::uint32_t rah0_ = 0x80009abc; // AV bit set
    /** @} */

    std::array<std::uint16_t, 64> eeprom_{};

    /** TX state. */
    bool txBusy_ = false;
    std::uint64_t txDescRaw_[2] = {0, 0};
    EtherFrame txFrame_;
    MemberEventWrapper<Nic8254xPcie, &Nic8254xPcie::txKick> txKickEvent_;
    MemberEventWrapper<Nic8254xPcie, &Nic8254xPcie::txTransmit> txRetryEvent_;

    /** RX state. */
    std::deque<EtherFrame> rxPending_;
    bool rxBusy_ = false;
    std::uint64_t rxDescRaw_[2] = {0, 0};

    stats::Counter txFrames_;
    stats::Counter rxFrames_;
    stats::Counter rxMissed_;
};

} // namespace pciesim

#endif // PCIESIM_DEV_NIC_8254X_HH
