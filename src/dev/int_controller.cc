#include "int_controller.hh"

#include "sim/logging.hh"

namespace pciesim
{

/**
 * Accepts posted message TLPs in the MSI window; the message data
 * selects the interrupt line.
 */
class IntController::MsiPort : public SlavePort
{
  public:
    MsiPort(IntController &gic, const std::string &name)
        : SlavePort(name), gic_(gic)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return gic_.handleMsi(pkt);
    }

    void recvRespRetry() override {}

    AddrRangeList
    getAddrRanges() const override
    {
        return {gic_.params_.msiRange};
    }

  private:
    IntController &gic_;
};

IntController::IntController(Simulation &sim, const std::string &name,
                             const IntControllerParams &params)
    : SimObject(sim, name), params_(params)
{
    msiPort_ = std::make_unique<MsiPort>(*this, name + ".msiPort");
}

IntController::~IntController() = default;

SlavePort &
IntController::msiPort()
{
    return *msiPort_;
}

bool
IntController::handleMsi(const PacketPtr &pkt)
{
    panicIf(!pkt->isWrite(), "non-write TLP in the MSI window");
    ++msis_;
    unsigned line = 0;
    if (pkt->hasData())
        line = pkt->get<std::uint16_t>();
    // Edge triggered: one dispatch per message.
    Line &l = getLine(line);
    if (l.handler && !l.dispatchPending) {
        l.dispatchPending = true;
        schedule(*l.dispatchEvent, params_.deliveryLatency);
    }
    if (pkt->needsResponse()) {
        pkt->makeResponse();
        // The response retraces the fabric; refusals are recovered
        // by the sender's link layer, so a failed send is dropped.
        (void)msiPort_->sendTimingResp(pkt);
    }
    return true;
}

void
IntController::init()
{
    statsRegistry().add(name() + ".dispatched", &dispatched_,
                        "interrupt handler dispatches");
    statsRegistry().add(name() + ".msis", &msis_,
                        "MSI messages received");
}

IntController::Line &
IntController::getLine(unsigned line)
{
    auto it = lines_.find(line);
    if (it == lines_.end()) {
        Line l;
        l.dispatchEvent = std::make_unique<EventFunctionWrapper>(
            [this, line] { dispatch(line); },
            name() + ".line" + std::to_string(line) + ".dispatch");
        it = lines_.emplace(line, std::move(l)).first;
    }
    return it->second;
}

void
IntController::setLevel(unsigned line, bool asserted)
{
    Line &l = getLine(line);
    bool was = l.asserted;
    l.asserted = asserted;
    if (asserted && !was && l.handler && !l.dispatchPending) {
        l.dispatchPending = true;
        schedule(*l.dispatchEvent, params_.deliveryLatency);
    }
}

void
IntController::registerHandler(unsigned line,
                               std::function<void()> handler)
{
    Line &l = getLine(line);
    l.handler = std::move(handler);
    if (l.asserted && !l.dispatchPending) {
        l.dispatchPending = true;
        schedule(*l.dispatchEvent, params_.deliveryLatency);
    }
}

void
IntController::dispatch(unsigned line)
{
    Line &l = getLine(line);
    l.dispatchPending = false;
    if (!l.handler)
        return;
    ++dispatched_;
    l.handler();
    // Level triggered: if the device still asserts the line after
    // the handler ran, dispatch again.
    if (l.asserted && !l.dispatchPending) {
        l.dispatchPending = true;
        schedule(*l.dispatchEvent, params_.deliveryLatency);
    }
}

bool
IntController::level(unsigned line) const
{
    auto it = lines_.find(line);
    return it != lines_.end() && it->second.asserted;
}

} // namespace pciesim
