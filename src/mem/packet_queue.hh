/**
 * @file
 * A bounded, time-ordered outbound packet queue.
 *
 * Components enqueue packets with a "ready" tick (when the packet
 * has finished traversing the component); the queue emits them in
 * order through a user-supplied send functor, honouring the timing
 * protocol: a refused send parks the queue until retryNotify().
 *
 * Optionally enforces a minimum gap between consecutive sends
 * (serviceInterval), which models a per-packet service occupancy —
 * this is how the IOCache drain rate and crossbar layer occupancy
 * are expressed.
 */

#ifndef PCIESIM_MEM_PACKET_QUEUE_HH
#define PCIESIM_MEM_PACKET_QUEUE_HH

#include <deque>
#include <functional>
#include <limits>
#include <string>

#include "mem/packet.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace pciesim
{

/**
 * An ordered queue of deferred packets with a retry-aware drain:
 * packets wait here until the downstream port accepts them, each
 * released at or after its ready tick.
 */
class PacketQueue
{
  public:
    using SendFunc = std::function<bool(const PacketPtr &)>;

    /**
     * @param eventq Event queue to schedule emissions on.
     * @param name Diagnostic name.
     * @param send Called to emit the head packet; returns false to
     *             refuse, after which the queue waits for
     *             retryNotify().
     * @param capacity Maximum queued packets (0 = unbounded).
     * @param service_interval Minimum gap between emissions.
     */
    PacketQueue(EventQueue &eventq, std::string name, SendFunc send,
                std::size_t capacity = 0, Tick service_interval = 0)
        : eventq_(eventq), name_(std::move(name)), send_(std::move(send)),
          capacity_(capacity), serviceInterval_(service_interval),
          sendEvent_(this, name_ + ".sendEvent")
    {}

    ~PacketQueue()
    {
        if (sendEvent_.scheduled())
            eventq_.deschedule(&sendEvent_);
    }

    /** Whether another packet can be accepted. */
    bool
    full() const
    {
        return capacity_ != 0 && queue_.size() >= capacity_;
    }

    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }

    /**
     * Enqueue @p pkt to be emitted no earlier than @p ready.
     * It is a panic to push into a full queue; callers must check
     * full() and refuse upstream instead.
     */
    void
    push(const PacketPtr &pkt, Tick ready)
    {
        panicIf(full(), "push into full queue '", name_, "'");
        queue_.push_back({pkt, ready});
        scheduleSend();
    }

    /**
     * Containment / reset support: drop every queued packet without
     * emitting it and cancel the pending send.
     * @return the number of packets dropped.
     */
    std::size_t
    clear()
    {
        if (sendEvent_.scheduled())
            eventq_.deschedule(&sendEvent_);
        std::size_t n = queue_.size();
        queue_.clear();
        blocked_ = false;
        return n;
    }

    /** The peer that refused a send can now accept; try again. */
    void
    retryNotify()
    {
        if (blocked_) {
            blocked_ = false;
            scheduleSend();
        }
    }

    const std::string &name() const { return name_; }

    /**
     * Install a callback invoked after each successful emission
     * (i.e. whenever a slot frees up); used by owners to issue
     * protocol retries to refused senders.
     */
    void
    setOnSpaceFreed(std::function<void()> cb)
    {
        onSpaceFreed_ = std::move(cb);
    }

  private:
    struct Entry
    {
        PacketPtr pkt;
        Tick ready;
    };

    void
    scheduleSend()
    {
        if (blocked_ || queue_.empty() || sendEvent_.scheduled())
            return;
        Tick when = std::max({queue_.front().ready, nextSendAllowed_,
                              eventq_.curTick()});
        eventq_.schedule(&sendEvent_, when);
    }

    void
    processSend()
    {
        panicIf(queue_.empty(), "send event with empty queue '",
                name_, "'");
        if (send_(queue_.front().pkt)) {
            queue_.pop_front();
            nextSendAllowed_ = eventq_.curTick() + serviceInterval_;
            scheduleSend();
            if (onSpaceFreed_)
                onSpaceFreed_();
        } else {
            blocked_ = true;
        }
    }

    EventQueue &eventq_;
    std::string name_;
    SendFunc send_;
    std::size_t capacity_;
    Tick serviceInterval_;
    MemberEventWrapper<PacketQueue, &PacketQueue::processSend> sendEvent_;
    std::function<void()> onSpaceFreed_;
    std::deque<Entry> queue_;
    Tick nextSendAllowed_ = 0;
    bool blocked_ = false;
};

} // namespace pciesim

#endif // PCIESIM_MEM_PACKET_QUEUE_HH
