/**
 * @file
 * A crossbar interconnect, loosely modelled on the gem5 non-coherent
 * crossbar (which is itself loosely modelled on ARM AXI, paper
 * Sec. III). Used both as the MemBus (on-chip) and the IOBus
 * (off-chip, the paper's baseline device attachment).
 *
 * Requests are routed to the master port whose peer slave claims the
 * packet address; responses are routed back to the slave port the
 * request arrived on. Each egress direction has a bounded queue with
 * a per-packet occupancy derived from the crossbar width, plus a
 * fixed forwarding (header) latency.
 */

#ifndef PCIESIM_MEM_XBAR_HH
#define PCIESIM_MEM_XBAR_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/** Configuration for an XBar. */
struct XBarParams
{
    /** Forwarding-decision latency applied to every packet. */
    Tick frontendLatency = nanoseconds(5);
    /** Latency applied to responses. */
    Tick responseLatency = nanoseconds(5);
    /** Data path width; occupancy = size / width * bytePeriod. */
    unsigned widthBytes = 16;
    /** Time to move widthBytes across the crossbar. */
    Tick bytePeriod = nanoseconds(1);
    /** Egress queue capacity per port. */
    std::size_t queueCapacity = 16;
};

/**
 * A crossbar with any number of slave ports (facing requestors) and
 * master ports (facing responders).
 */
class XBar : public SimObject
{
  public:
    XBar(Simulation &sim, const std::string &name,
         const XBarParams &params = {});
    ~XBar() override;

    /** Create a port facing a requestor (CPU, DMA, bridge master). */
    SlavePort &addSlavePort(const std::string &port_name);

    /** Create a port facing a responder (memory, device PIO). */
    MasterPort &addMasterPort(const std::string &port_name);

    /**
     * Designate an already-added master port as the default route
     * for addresses no other port claims (gem5 xbar default port).
     */
    void setDefaultPort(MasterPort &port);

    void init() override;

    /** Union of ranges claimed by all connected responders. */
    AddrRangeList routedRanges() const;

  private:
    class XBarSlavePort;
    class XBarMasterPort;

    /** Route a request to a master port index; -1 with no match. */
    int route(Addr addr) const;

    /** Per-packet data-path occupancy for egress queues. */
    Tick occupancy() const;

    bool forwardRequest(const PacketPtr &pkt, XBarSlavePort *src);
    bool forwardResponse(const PacketPtr &pkt, XBarMasterPort *from);

    XBarParams params_;
    std::vector<std::unique_ptr<XBarSlavePort>> slavePorts_;
    std::vector<std::unique_ptr<XBarMasterPort>> masterPorts_;
    int defaultPortIdx_ = -1;
    /** Outstanding request id -> originating slave port. */
    std::unordered_map<std::uint64_t, XBarSlavePort *> routeBack_;

    stats::Counter reqPackets_;
    stats::Counter respPackets_;
    stats::Counter reqRetries_;
};

} // namespace pciesim

#endif // PCIESIM_MEM_XBAR_HH
