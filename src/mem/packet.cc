#include "packet.hh"

#include <sstream>

namespace pciesim
{

std::atomic<std::uint64_t> Packet::liveCount_{0};
std::uint64_t Packet::nextId_ = 0;

PacketPool &
Packet::pool()
{
    // pciesim-analyze: ignore[shared-state]: pool locks internally
    static PacketPool pool(sizeof(Packet));
    return pool;
}

void *
Packet::operator new(std::size_t size)
{
    // Packet is final, so every allocation is exactly one block.
    panicIf(size != pool().blockSize(), "packet allocation size mismatch");
    return pool().allocate();
}

void
Packet::operator delete(void *p) noexcept
{
    if (p != nullptr)
        pool().deallocate(p);
}

MemCmd
responseCommand(MemCmd c)
{
    switch (c) {
      case MemCmd::ReadReq:
        return MemCmd::ReadResp;
      case MemCmd::WriteReq:
        return MemCmd::WriteResp;
      case MemCmd::ConfigReadReq:
        return MemCmd::ConfigReadResp;
      case MemCmd::ConfigWriteReq:
        return MemCmd::ConfigWriteResp;
      default:
        panic("command has no response form");
    }
}

Packet::Packet(MemCmd cmd, Addr addr, unsigned size, RequestorId requestor)
    : cmd_(cmd), addr_(addr), size_(size), requestorId_(requestor),
      id_(par::engineActive ? par::domainPacketId() : nextId_++)
{
    liveCount_.fetch_add(1, std::memory_order_relaxed);
}

Packet::~Packet()
{
    liveCount_.fetch_sub(1, std::memory_order_relaxed);
}

PacketPtr
Packet::makeRequest(MemCmd cmd, Addr addr, unsigned size,
                    RequestorId requestor)
{
    panicIf(!cmdIsRequest(cmd), "makeRequest with a response command");
    return PacketPtr(new Packet(cmd, addr, size, requestor));
}

void
Packet::makeResponse()
{
    panicIf(!needsResponse(), "makeResponse on a non-request packet");
    cmd_ = responseCommand(cmd_);
}

std::string
Packet::toString() const
{
    static const char *names[] = {
        "ReadReq", "ReadResp", "WriteReq", "WriteResp",
        "ConfigReadReq", "ConfigReadResp", "ConfigWriteReq",
        "ConfigWriteResp", "MessageReq", "PostedWriteReq",
    };
    std::ostringstream os;
    os << names[static_cast<unsigned>(cmd_)] << " [0x" << std::hex
       << addr_ << std::dec << " +" << size_ << "] id=" << id_
       << " bus=" << pciBusNumber_;
    return os.str();
}

} // namespace pciesim
