/**
 * @file
 * The IOCache: a small cache between the DMA path and the MemBus
 * that ensures coherency of DMA accesses and acts as a bandwidth
 * buffer between connections of different widths (paper Sec. III).
 *
 * We model it as a bounded-rate forwarding stage: a fixed hit/lookup
 * latency plus a per-packet service occupancy. The occupancy is the
 * drain-rate parameter behind the paper's x8 congestion findings
 * (Fig. 9b-9d): an x8 Gen 2 link delivers a cache line every ~21 ns,
 * which exceeds the default 30 ns service rate, so upstream buffers
 * fill and the link layer starts timing out; x4 (42 ns) does not.
 */

#ifndef PCIESIM_MEM_IO_CACHE_HH
#define PCIESIM_MEM_IO_CACHE_HH

#include "mem/bridge.hh"

namespace pciesim
{

/** Configuration for an IOCache. */
struct IOCacheParams
{
    /** Tag + data lookup latency. */
    Tick latency = nanoseconds(20);
    /** Per-packet service occupancy (the DMA drain rate). The
     *  calibrated 65 ns default sits between the x8 Gen 2
     *  cache-line arrival interval (21 ns) and twice the x4 one,
     *  so per-chunk backlog overflows 16-deep port buffers at x8
     *  but is absorbed at x4 and below (Fig. 9b-9d dynamics). */
    Tick serviceInterval = nanoseconds(65);
    /** MSHR-like capacity. */
    std::size_t queueCapacity = 4;
    /** Ranges claimed on the slave side (needed when the IOCache
     *  sits on a crossbar, e.g. the baseline IOBus topology). */
    AddrRangeList ranges;
};

/**
 * The DMA-side cache. Structurally a bridge: the slave port faces
 * the root complex upstream master (or the IOBus in the baseline
 * topology), the master port faces the MemBus.
 */
class IOCache : public Bridge
{
  public:
    IOCache(Simulation &sim, const std::string &name,
            const IOCacheParams &params = {})
        : Bridge(sim, name,
                 BridgeParams{params.latency, params.queueCapacity,
                              params.queueCapacity,
                              params.serviceInterval,
                              params.ranges})
    {}
};

} // namespace pciesim

#endif // PCIESIM_MEM_IO_CACHE_HH
