#include "bridge.hh"

namespace pciesim
{

class Bridge::BridgeSlavePort : public SlavePort
{
  public:
    BridgeSlavePort(Bridge &bridge, const std::string &name)
        : SlavePort(name), bridge_(bridge)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return bridge_.acceptRequest(pkt);
    }

    void
    recvRespRetry() override
    {
        bridge_.respQueue_->retryNotify();
    }

    AddrRangeList getAddrRanges() const override;

  private:
    Bridge &bridge_;
};

class Bridge::BridgeMasterPort : public MasterPort
{
  public:
    BridgeMasterPort(Bridge &bridge, const std::string &name)
        : MasterPort(name), bridge_(bridge)
    {}

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        return bridge_.acceptResponse(pkt);
    }

    void
    recvReqRetry() override
    {
        bridge_.reqQueue_->retryNotify();
    }

  private:
    Bridge &bridge_;
};

AddrRangeList
Bridge::BridgeSlavePort::getAddrRanges() const
{
    if (!bridge_.params_.ranges.empty())
        return bridge_.params_.ranges;
    return bridge_.masterPort_->peer().getAddrRanges();
}

SlavePort &
Bridge::slavePort()
{
    return *slavePort_;
}

MasterPort &
Bridge::masterPort()
{
    return *masterPort_;
}

Bridge::Bridge(Simulation &sim, const std::string &name,
               const BridgeParams &params)
    : SimObject(sim, name), params_(params)
{
    slavePort_ = std::make_unique<BridgeSlavePort>(*this,
                                                   name + ".slavePort");
    masterPort_ = std::make_unique<BridgeMasterPort>(*this,
                                                     name + ".masterPort");
    reqQueue_ = std::make_unique<PacketQueue>(
        eventq(), name + ".reqQueue",
        [this](const PacketPtr &p) {
            return masterPort_->sendTimingReq(p);
        },
        params_.reqQueueCapacity, params_.serviceInterval);
    respQueue_ = std::make_unique<PacketQueue>(
        eventq(), name + ".respQueue",
        [this](const PacketPtr &p) {
            return slavePort_->sendTimingResp(p);
        },
        params_.respQueueCapacity, params_.serviceInterval);

    reqQueue_->setOnSpaceFreed([this] {
        if (wantReqRetry_ && !reqQueue_->full()) {
            wantReqRetry_ = false;
            slavePort_->sendRetryReq();
        }
    });
    respQueue_->setOnSpaceFreed([this] {
        if (wantRespRetry_ && !respQueue_->full()) {
            wantRespRetry_ = false;
            masterPort_->sendRetryResp();
        }
    });
}

Bridge::~Bridge() = default;

void
Bridge::init()
{
    statsRegistry().add(name() + ".fwdRequests", &fwdRequests_,
                        "requests forwarded");
    statsRegistry().add(name() + ".fwdResponses", &fwdResponses_,
                        "responses forwarded");
    statsRegistry().add(name() + ".reqRefusals", &reqRefusals_,
                        "requests refused (queue full)");
    statsRegistry().add(name() + ".respRefusals", &respRefusals_,
                        "responses refused (queue full)");
    fatalIf(!slavePort_->isBound(),
            "bridge '", name(), "' slave port unbound");
    fatalIf(!masterPort_->isBound(),
            "bridge '", name(), "' master port unbound");
}

bool
Bridge::acceptRequest(const PacketPtr &pkt)
{
    if (reqQueue_->full()) {
        ++reqRefusals_;
        wantReqRetry_ = true;
        return false;
    }
    ++fwdRequests_;
    reqQueue_->push(pkt, curTick() + params_.delay);
    return true;
}

bool
Bridge::acceptResponse(const PacketPtr &pkt)
{
    if (respQueue_->full()) {
        ++respRefusals_;
        wantRespRetry_ = true;
        return false;
    }
    ++fwdResponses_;
    respQueue_->push(pkt, curTick() + params_.delay);
    return true;
}

} // namespace pciesim
