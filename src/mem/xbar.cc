#include "xbar.hh"

#include <algorithm>

namespace pciesim
{

/**
 * A crossbar port facing a requestor. Owns the response egress
 * queue back toward that requestor.
 */
class XBar::XBarSlavePort : public SlavePort
{
  public:
    XBarSlavePort(XBar &xbar, const std::string &name)
        : SlavePort(name), xbar_(xbar),
          respQueue_(xbar.eventq(), name + ".respQueue",
                     [this](const PacketPtr &p) {
                         return sendTimingResp(p);
                     },
                     xbar.params_.queueCapacity,
                     xbar.occupancy())
    {
        respQueue_.setOnSpaceFreed([this] { notifyRespWaiters(); });
    }

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return xbar_.forwardRequest(pkt, this);
    }

    void recvRespRetry() override { respQueue_.retryNotify(); }

    AddrRangeList
    getAddrRanges() const override
    {
        return xbar_.routedRanges();
    }

    bool respFull() const { return respQueue_.full(); }

    void
    queueResp(const PacketPtr &pkt, Tick ready)
    {
        respQueue_.push(pkt, ready);
    }

    void
    addRespWaiter(XBarMasterPort *port)
    {
        if (std::find(respWaiters_.begin(), respWaiters_.end(), port) ==
            respWaiters_.end()) {
            respWaiters_.push_back(port);
        }
    }

  private:
    void notifyRespWaiters();

    XBar &xbar_;
    PacketQueue respQueue_;
    std::deque<XBarMasterPort *> respWaiters_;
};

/**
 * A crossbar port facing a responder. Owns the request egress queue
 * toward that responder.
 */
class XBar::XBarMasterPort : public MasterPort
{
  public:
    XBarMasterPort(XBar &xbar, const std::string &name)
        : MasterPort(name), xbar_(xbar),
          reqQueue_(xbar.eventq(), name + ".reqQueue",
                    [this](const PacketPtr &p) {
                        return sendTimingReq(p);
                    },
                    xbar.params_.queueCapacity,
                    xbar.occupancy())
    {
        reqQueue_.setOnSpaceFreed([this] { notifyReqWaiters(); });
    }

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        return xbar_.forwardResponse(pkt, this);
    }

    void recvReqRetry() override { reqQueue_.retryNotify(); }

    bool reqFull() const { return reqQueue_.full(); }

    void
    queueReq(const PacketPtr &pkt, Tick ready)
    {
        reqQueue_.push(pkt, ready);
    }

    void
    addReqWaiter(XBarSlavePort *port)
    {
        if (std::find(reqWaiters_.begin(), reqWaiters_.end(), port) ==
            reqWaiters_.end()) {
            reqWaiters_.push_back(port);
        }
    }

    void retryRespLater() { sendRetryResp(); }

  private:
    void notifyReqWaiters();

    XBar &xbar_;
    PacketQueue reqQueue_;
    std::deque<XBarSlavePort *> reqWaiters_;
};

void
XBar::XBarSlavePort::notifyRespWaiters()
{
    while (!respWaiters_.empty() && !respQueue_.full()) {
        XBarMasterPort *w = respWaiters_.front();
        respWaiters_.pop_front();
        w->retryRespLater();
    }
}

void
XBar::XBarMasterPort::notifyReqWaiters()
{
    while (!reqWaiters_.empty() && !reqQueue_.full()) {
        XBarSlavePort *w = reqWaiters_.front();
        reqWaiters_.pop_front();
        w->sendRetryReq();
    }
}

XBar::XBar(Simulation &sim, const std::string &name,
           const XBarParams &params)
    : SimObject(sim, name), params_(params)
{}

XBar::~XBar() = default;

Tick
XBar::occupancy() const
{
    // Approximate per-packet data-path occupancy using a cache-line
    // transfer; most bulk traffic is cache-line sized.
    return 64 / params_.widthBytes * params_.bytePeriod;
}

SlavePort &
XBar::addSlavePort(const std::string &port_name)
{
    slavePorts_.emplace_back(
        std::make_unique<XBarSlavePort>(*this, name() + "." + port_name));
    return *slavePorts_.back();
}

MasterPort &
XBar::addMasterPort(const std::string &port_name)
{
    masterPorts_.emplace_back(
        std::make_unique<XBarMasterPort>(*this, name() + "." + port_name));
    return *masterPorts_.back();
}

void
XBar::setDefaultPort(MasterPort &port)
{
    for (std::size_t i = 0; i < masterPorts_.size(); ++i) {
        if (masterPorts_[i].get() == &port) {
            defaultPortIdx_ = static_cast<int>(i);
            return;
        }
    }
    panic("setDefaultPort: port '", port.name(),
          "' does not belong to xbar '", name(), "'");
}

void
XBar::init()
{
    statsRegistry().add(name() + ".reqPackets", &reqPackets_,
                        "requests forwarded");
    statsRegistry().add(name() + ".respPackets", &respPackets_,
                        "responses forwarded");
    statsRegistry().add(name() + ".reqRetries", &reqRetries_,
                        "requests refused due to full egress queue");
    for (const auto &mp : masterPorts_) {
        fatalIf(!mp->isBound(),
                "xbar master port '", mp->name(), "' is unbound");
    }
    for (const auto &sp : slavePorts_) {
        fatalIf(!sp->isBound(),
                "xbar slave port '", sp->name(), "' is unbound");
    }
}

AddrRangeList
XBar::routedRanges() const
{
    AddrRangeList all;
    for (const auto &mp : masterPorts_) {
        if (!mp->isBound())
            continue;
        for (const auto &r : mp->peer().getAddrRanges())
            all.push_back(r);
    }
    return all;
}

int
XBar::route(Addr addr) const
{
    for (std::size_t i = 0; i < masterPorts_.size(); ++i) {
        for (const auto &r : masterPorts_[i]->peer().getAddrRanges()) {
            if (r.contains(addr))
                return static_cast<int>(i);
        }
    }
    return defaultPortIdx_;
}

bool
XBar::forwardRequest(const PacketPtr &pkt, XBarSlavePort *src)
{
    int idx = route(pkt->addr());
    panicIf(idx < 0, "xbar '", name(), "': no route for ",
            pkt->toString());
    XBarMasterPort *dst = masterPorts_[static_cast<std::size_t>(idx)].get();

    if (dst->reqFull()) {
        ++reqRetries_;
        dst->addReqWaiter(src);
        return false;
    }

    ++reqPackets_;
    if (pkt->needsResponse())
        routeBack_[pkt->id()] = src;
    dst->queueReq(pkt, curTick() + params_.frontendLatency);
    return true;
}

bool
XBar::forwardResponse(const PacketPtr &pkt, XBarMasterPort *from)
{
    auto it = routeBack_.find(pkt->id());
    panicIf(it == routeBack_.end(),
            "xbar '", name(), "': response for unknown request ",
            pkt->toString());
    XBarSlavePort *dst = it->second;

    if (dst->respFull()) {
        dst->addRespWaiter(from);
        return false;
    }

    routeBack_.erase(it);
    ++respPackets_;
    dst->queueResp(pkt, curTick() + params_.responseLatency);
    return true;
}

} // namespace pciesim
