/**
 * @file
 * Master/slave port pairs implementing the gem5 timing protocol.
 *
 * A master port sends requests and receives responses; a slave port
 * receives requests and sends responses (paper Sec. III). Either
 * receiver may refuse a packet by returning false from its recv
 * hook; the refused sender must hold the packet and wait for the
 * corresponding retry callback before trying again.
 *
 * Components that deliberately break the wait-for-retry rule (the
 * PCI-Express link interface relies on replay timeouts instead,
 * paper Sec. V-C) must tolerate spurious retry callbacks.
 */

#ifndef PCIESIM_MEM_PORT_HH
#define PCIESIM_MEM_PORT_HH

#include <string>

#include "mem/addr_range.hh"
#include "mem/packet.hh"
#include "sim/logging.hh"

namespace pciesim
{

class SlavePort;
class MasterPort;

/** Common port state: a name and a peer. */
class Port
{
  public:
    explicit Port(std::string name) : name_(std::move(name)) {}
    virtual ~Port() = default;

    Port(const Port &) = delete;
    Port &operator=(const Port &) = delete;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * The request-sending side of a connection.
 */
class MasterPort : public Port
{
  public:
    using Port::Port;

    /** Connect this master port to @p peer (and vice versa). */
    void bind(SlavePort &peer);

    bool isBound() const { return peer_ != nullptr; }
    SlavePort &peer() const;

    /**
     * Send a request to the peer slave port.
     * @return false if the peer refused; the caller keeps ownership
     *         and must wait for recvReqRetry() (unless it uses an
     *         out-of-band recovery mechanism such as link replay).
     */
    bool sendTimingReq(const PacketPtr &pkt);

    /** Signal the peer slave port to retry a refused response. */
    void sendRetryResp();

    /** Response delivery from the peer. @return false to refuse. */
    virtual bool recvTimingResp(PacketPtr pkt) = 0;

    /** The peer can now accept a previously refused request. */
    virtual void recvReqRetry() = 0;

  private:
    SlavePort *peer_ = nullptr;

    friend class SlavePort;
};

/**
 * The request-receiving side of a connection.
 */
class SlavePort : public Port
{
  public:
    using Port::Port;

    bool isBound() const { return peer_ != nullptr; }
    MasterPort &peer() const;

    /**
     * Send a response to the peer master port.
     * @return false if the peer refused; wait for recvRespRetry().
     */
    bool sendTimingResp(const PacketPtr &pkt);

    /** Signal the peer master port to retry a refused request. */
    void sendRetryReq();

    /** Request delivery from the peer. @return false to refuse. */
    virtual bool recvTimingReq(PacketPtr pkt) = 0;

    /** The peer can now accept a previously refused response. */
    virtual void recvRespRetry() = 0;

    /**
     * Address ranges this slave port responds to; used by crossbars
     * and routing components to build their routing tables.
     */
    virtual AddrRangeList getAddrRanges() const = 0;

  private:
    MasterPort *peer_ = nullptr;

    friend class MasterPort;
};

} // namespace pciesim

#endif // PCIESIM_MEM_PORT_HH
