#include "simple_memory.hh"

#include <cmath>

namespace pciesim
{

class SimpleMemory::MemoryPort : public SlavePort
{
  public:
    MemoryPort(SimpleMemory &mem, const std::string &name)
        : SlavePort(name), mem_(mem)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return mem_.access(pkt);
    }

    void
    recvRespRetry() override
    {
        mem_.respQueue_->retryNotify();
    }

    AddrRangeList
    getAddrRanges() const override
    {
        return {mem_.params_.range};
    }

  private:
    SimpleMemory &mem_;
};

SimpleMemory::SimpleMemory(Simulation &sim, const std::string &name,
                           const SimpleMemoryParams &params)
    : SimObject(sim, name), params_(params)
{
    port_ = std::make_unique<MemoryPort>(*this, name + ".port");
    respQueue_ = std::make_unique<PacketQueue>(
        eventq(), name + ".respQueue",
        [this](const PacketPtr &p) {
            return port_->sendTimingResp(p);
        },
        params_.queueCapacity);
    respQueue_->setOnSpaceFreed([this] {
        if (wantRetry_ && !respQueue_->full()) {
            wantRetry_ = false;
            port_->sendRetryReq();
        }
    });
}

SimpleMemory::~SimpleMemory() = default;

SlavePort &
SimpleMemory::port()
{
    return *port_;
}

void
SimpleMemory::init()
{
    statsRegistry().add(name() + ".reads", &reads_, "read requests");
    statsRegistry().add(name() + ".writes", &writes_, "write requests");
    statsRegistry().add(name() + ".refusals", &refusals_,
                        "requests refused (queue full)");
    fatalIf(!port_->isBound(), "memory '", name(), "' port unbound");
    fatalIf(params_.bytesPerTick <= 0.0,
            "memory '", name(), "' needs positive bandwidth");
}

bool
SimpleMemory::access(const PacketPtr &pkt)
{
    panicIf(!params_.range.contains(pkt->addr()),
            "memory '", name(), "' got out-of-range ", pkt->toString());

    if (respQueue_->full()) {
        ++refusals_;
        wantRetry_ = true;
        return false;
    }

    if (pkt->isRead())
        ++reads_;
    else
        ++writes_;

    // Functional data handling: store write payloads when carried.
    if (params_.functional && pkt->isWrite() && pkt->hasData()) {
        for (std::size_t i = 0; i < pkt->dataSize(); ++i)
            store_[pkt->addr() + i] = pkt->data()[i];
    }

    // Bandwidth regulation: the data bus is occupied for
    // size / bytesPerTick ticks.
    Tick occupancy = static_cast<Tick>(
        std::ceil(static_cast<double>(pkt->size()) /
                  params_.bytesPerTick));
    Tick start = std::max(curTick(), bankFreeAt_);
    bankFreeAt_ = start + occupancy;

    Tick ready = start + occupancy + params_.latency;

    if (pkt->needsResponse()) {
        // Serve reads with functional data when available.
        if (params_.functional && pkt->isRead()) {
            std::vector<std::uint8_t> bytes(pkt->size(), 0);
            bool any = false;
            for (unsigned i = 0; i < pkt->size(); ++i) {
                auto it = store_.find(pkt->addr() + i);
                if (it != store_.end()) {
                    bytes[i] = it->second;
                    any = true;
                }
            }
            pkt->makeResponse();
            if (any)
                pkt->setData(bytes.data(), pkt->size());
        } else {
            pkt->makeResponse();
        }
        respQueue_->push(pkt, ready);
    }
    return true;
}

std::uint8_t
SimpleMemory::readByte(Addr a) const
{
    auto it = store_.find(a);
    return it == store_.end() ? 0 : it->second;
}

void
SimpleMemory::writeByte(Addr a, std::uint8_t v)
{
    store_[a] = v;
}

} // namespace pciesim
