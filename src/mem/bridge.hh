/**
 * @file
 * A gem5-style bridge: a slave port on one interconnect and a master
 * port on another, with bounded request/response queues and a fixed
 * forwarding delay (paper Sec. III). The paper builds its root
 * complex and switch models "upon the gem5 bridge model"; here the
 * bridge also serves as the IOCache's structural skeleton and as the
 * baseline (non-PCIe) device attachment.
 */

#ifndef PCIESIM_MEM_BRIDGE_HH
#define PCIESIM_MEM_BRIDGE_HH

#include <memory>

#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/** Configuration for a Bridge. */
struct BridgeParams
{
    /** Forwarding latency applied to every packet, each direction. */
    Tick delay = nanoseconds(50);
    /** Request queue capacity (slave -> master direction). */
    std::size_t reqQueueCapacity = 16;
    /** Response queue capacity (master -> slave direction). */
    std::size_t respQueueCapacity = 16;
    /**
     * Minimum gap between forwarded packets, each direction
     * (0 = fully pipelined). Models a bounded service rate.
     */
    Tick serviceInterval = 0;
    /**
     * Address ranges the bridge claims on its slave side. When
     * empty, the ranges of the component behind the master port are
     * passed through.
     */
    AddrRangeList ranges;
};

/**
 * Forwards requests from its slave port to its master port and
 * responses the other way.
 */
class Bridge : public SimObject
{
  public:
    Bridge(Simulation &sim, const std::string &name,
           const BridgeParams &params = {});
    ~Bridge() override;

    SlavePort &slavePort();
    MasterPort &masterPort();

    void init() override;

    /** Requests refused because the request queue was full. */
    std::uint64_t reqRefusals() const { return reqRefusals_.value(); }

  private:
    class BridgeSlavePort;
    class BridgeMasterPort;

    bool acceptRequest(const PacketPtr &pkt);
    bool acceptResponse(const PacketPtr &pkt);

    BridgeParams params_;
    std::unique_ptr<BridgeSlavePort> slavePort_;
    std::unique_ptr<BridgeMasterPort> masterPort_;
    std::unique_ptr<PacketQueue> reqQueue_;
    std::unique_ptr<PacketQueue> respQueue_;
    bool wantReqRetry_ = false;
    bool wantRespRetry_ = false;

    stats::Counter fwdRequests_;
    stats::Counter fwdResponses_;
    stats::Counter reqRefusals_;
    stats::Counter respRefusals_;
};

} // namespace pciesim

#endif // PCIESIM_MEM_BRIDGE_HH
