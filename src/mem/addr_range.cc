#include "addr_range.hh"

#include <iomanip>
#include <sstream>

namespace pciesim
{

std::string
AddrRange::toString() const
{
    std::ostringstream os;
    os << "[0x" << std::hex << start_ << ", 0x" << end_ << ")";
    return os.str();
}

bool
listContains(const AddrRangeList &l, Addr a)
{
    for (const auto &r : l) {
        if (r.contains(a))
            return true;
    }
    return false;
}

bool
listHasOverlap(const AddrRangeList &l)
{
    for (auto it = l.begin(); it != l.end(); ++it) {
        auto jt = it;
        for (++jt; jt != l.end(); ++jt) {
            if (it->intersects(*jt))
                return true;
        }
    }
    return false;
}

} // namespace pciesim
