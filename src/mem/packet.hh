/**
 * @file
 * The memory packet: the unit of communication in the memory and I/O
 * systems, used directly as the PCI-Express TLP (paper Sec. V-C:
 * "we use gem5 memory packets as our PCI-Express TLPs").
 *
 * One Packet object represents one transaction for its whole life:
 * the completer turns the request into a response in place with
 * makeResponse() and sends the same object back (gem5 convention).
 *
 * Packets are reference counted (PacketPtr) because the PCI-Express
 * link layer keeps a handle in its replay buffer until the TLP is
 * acknowledged, which can outlive the transaction's completion.
 *
 * Packet storage is recycled through a freelist PacketPool: a dd
 * run creates and destroys millions of TLP objects, and the pool
 * turns each new/delete pair after warm-up into two pointer moves.
 * The live-count leak check is unaffected (the constructor and
 * destructor still run for every packet).
 */

#ifndef PCIESIM_MEM_PACKET_HH
#define PCIESIM_MEM_PACKET_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "mem/addr_range.hh"
#include "sim/invariant.hh"
#include "sim/logging.hh"
#include "sim/parallel_mode.hh"
#include "sim/ticks.hh"

/*
 * AddressSanitizer awareness. A freelist hides use-after-free from
 * ASan: pooled operator delete keeps the storage alive, so a stale
 * PacketPtr reads a recycled object instead of faulting. Under ASan
 * the pool therefore poisons every block parked on the freelist and
 * unpoisons it on allocation, which restores byte-exact
 * use-after-free ("use-after-poison") reports while keeping the
 * recycling fast path.
 *
 * GCC advertises ASan with __SANITIZE_ADDRESS__, Clang with
 * __has_feature(address_sanitizer). If the poisoning interface
 * header is unavailable the pool falls back to pass-through
 * ::operator new/delete so ASan's own quarantine catches the bug
 * (recycling is lost; PacketPool::passThrough tells tests).
 */
#if defined(__SANITIZE_ADDRESS__)
#define PCIESIM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PCIESIM_ASAN 1
#endif
#endif
#ifndef PCIESIM_ASAN
#define PCIESIM_ASAN 0
#endif

#if PCIESIM_ASAN && __has_include(<sanitizer/asan_interface.h>)
#include <sanitizer/asan_interface.h>
#define PCIESIM_POOL_POISONING 1
#else
#define PCIESIM_POOL_POISONING 0
#endif

#define PCIESIM_POOL_PASSTHROUGH (PCIESIM_ASAN && !PCIESIM_POOL_POISONING)

namespace pciesim
{

/** Identifies the component that originated a request. */
using RequestorId = std::uint16_t;

constexpr RequestorId invalidRequestorId = 0xffff;

/** Memory command carried by a packet. */
enum class MemCmd : std::uint8_t
{
    ReadReq,
    ReadResp,
    WriteReq,
    WriteResp,
    /** Configuration space accesses (ECAM window). */
    ConfigReadReq,
    ConfigReadResp,
    ConfigWriteReq,
    ConfigWriteResp,
    /** Message request (posted); used for MSI writes. */
    MessageReq,
    /** Posted memory write: carries data, needs no response
     *  (real PCI-Express write semantics, paper Sec. VI-B). */
    PostedWriteReq,
};

/** Command classification helpers. */
constexpr bool
cmdIsRead(MemCmd c)
{
    return c == MemCmd::ReadReq || c == MemCmd::ReadResp ||
           c == MemCmd::ConfigReadReq || c == MemCmd::ConfigReadResp;
}

constexpr bool
cmdIsWrite(MemCmd c)
{
    return c == MemCmd::WriteReq || c == MemCmd::WriteResp ||
           c == MemCmd::ConfigWriteReq || c == MemCmd::ConfigWriteResp ||
           c == MemCmd::MessageReq || c == MemCmd::PostedWriteReq;
}

constexpr bool
cmdIsRequest(MemCmd c)
{
    return c == MemCmd::ReadReq || c == MemCmd::WriteReq ||
           c == MemCmd::ConfigReadReq || c == MemCmd::ConfigWriteReq ||
           c == MemCmd::MessageReq || c == MemCmd::PostedWriteReq;
}

constexpr bool
cmdIsResponse(MemCmd c)
{
    return !cmdIsRequest(c);
}

/** Response command corresponding to a request command. */
MemCmd responseCommand(MemCmd c);

/**
 * A freelist of fixed-size storage blocks.
 *
 * Freed blocks are threaded into an intrusive singly-linked list
 * (the link lives in the dead block's own storage), so a hot
 * allocate/deallocate pair costs two pointer moves instead of a
 * trip through the global allocator. Packet routes its operator
 * new/delete through a pool, and PciePkt reuses the same class for
 * its own storage (see pcie_pkt.hh).
 *
 * Under AddressSanitizer freelist blocks are poisoned while parked
 * (see the PCIESIM_POOL_POISONING block above), so a stale pointer
 * into recycled storage still produces a precise ASan report. In
 * audit builds (sim/invariant.hh) the pool additionally tracks the
 * outstanding-block set to catch double frees and foreign pointers.
 *
 * Single-threaded runs take no locks; while the parallel engine is
 * active (par::engineActive) the pool serializes on a mutex, since
 * TLPs from any domain can be freed by any other after crossing a
 * link. The flag-gated lock keeps the legacy fast path at one
 * predictable branch.
 */
class PacketPool
{
  public:
    /**
     * True when ASan is active without the poisoning interface:
     * the pool degrades to plain ::operator new/delete (no
     * recycling), so tests must not assert pointer reuse.
     */
    static constexpr bool passThrough = PCIESIM_POOL_PASSTHROUGH;

    /** True when freelist blocks are ASan-poisoned while parked. */
    static constexpr bool poisoning = PCIESIM_POOL_POISONING;

    /** @param block_size Size of each block; at least a pointer. */
    explicit PacketPool(std::size_t block_size)
        : blockSize_(block_size < sizeof(void *) ? sizeof(void *)
                                                 : block_size)
    {}

    ~PacketPool() { shrink(); }

    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;

    /** Grab a block: freelist head, or fresh storage when dry. */
    void *
    allocate()
    {
        std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
        if (par::engineActive) [[unlikely]]
            lock.lock();
        ++allocs_;
        void *p = nullptr;
#if PCIESIM_POOL_PASSTHROUGH
        p = ::operator new(blockSize_);
#else
        if (freeList_ != nullptr) {
            ++recycled_;
            p = freeList_;
            // Unpoison before reading the intrusive link stored in
            // the dead block's own bytes.
            unpoisonBlock(p);
            freeList_ = *static_cast<void **>(p);
            --freeBlocks_;
        } else {
            p = ::operator new(blockSize_);
        }
#endif
        PCIESIM_AUDIT_ONLY(auditLive_.insert(p);)
        return p;
    }

    /** Return a block to the freelist. */
    void
    deallocate(void *p) noexcept
    {
        std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
        if (par::engineActive) [[unlikely]]
            lock.lock();
        PCIESIM_AUDIT(auditLive_.erase(p) == 1,
                      "pool deallocate of ", p,
                      ": double free or foreign pointer");
#if PCIESIM_POOL_PASSTHROUGH
        ::operator delete(p);
#else
        *static_cast<void **>(p) = freeList_;
        freeList_ = p;
        ++freeBlocks_;
        // Park poisoned: any touch before reallocation is a
        // use-after-poison report with this exact address.
        poisonBlock(p);
#endif
    }

    /** Release every pooled free block back to the system. */
    void
    shrink()
    {
        while (freeList_ != nullptr) {
            void *p = freeList_;
            unpoisonBlock(p);
            freeList_ = *static_cast<void **>(p);
            ::operator delete(p);
        }
        freeBlocks_ = 0;
    }

    /** @{ Pool statistics. */
    std::size_t blockSize() const { return blockSize_; }
    std::size_t freeBlocks() const { return freeBlocks_; }
    std::uint64_t totalAllocs() const { return allocs_; }
    std::uint64_t recycledAllocs() const { return recycled_; }
    /** @} */

  private:
    void
    poisonBlock(const void *p) const
    {
#if PCIESIM_POOL_POISONING
        ASAN_POISON_MEMORY_REGION(p, blockSize_);
#else
        (void)p;
#endif
    }

    void
    unpoisonBlock(const void *p) const
    {
#if PCIESIM_POOL_POISONING
        ASAN_UNPOISON_MEMORY_REGION(p, blockSize_);
#else
        (void)p;
#endif
    }

    std::size_t blockSize_;
    void *freeList_ = nullptr;
    std::size_t freeBlocks_ = 0;
    std::uint64_t allocs_ = 0;
    std::uint64_t recycled_ = 0;
    /** Taken only while the parallel engine is active. */
    std::mutex mutex_;
    /** Audit builds: every block handed out and not yet returned. */
    PCIESIM_AUDIT_ONLY(std::unordered_set<void *> auditLive_;)
};

class Packet;

/**
 * Intrusive reference-counted handle to a Packet. Single-threaded
 * runs use plain (non-atomic) counting; while the parallel engine
 * is active the count is manipulated through std::atomic_ref, since
 * a TLP's replay-buffer handle and its delivered handle can sit on
 * opposite sides of a link (and so in different domains).
 */
class PacketPtr
{
  public:
    PacketPtr() = default;
    PacketPtr(std::nullptr_t) {}
    explicit PacketPtr(Packet *pkt);
    PacketPtr(const PacketPtr &other);
    PacketPtr(PacketPtr &&other) noexcept;
    PacketPtr &operator=(const PacketPtr &other);
    PacketPtr &operator=(PacketPtr &&other) noexcept;
    ~PacketPtr();

    Packet *get() const { return pkt_; }
    Packet *operator->() const { return pkt_; }
    Packet &operator*() const { return *pkt_; }
    explicit operator bool() const { return pkt_ != nullptr; }

    bool operator==(const PacketPtr &o) const { return pkt_ == o.pkt_; }

    void reset();

  private:
    Packet *pkt_ = nullptr;
};

/**
 * A memory transaction packet.
 */
class Packet final
{
  public:
    /**
     * Create a request packet.
     *
     * @param cmd Request command.
     * @param addr Target physical address.
     * @param size Transaction size in bytes.
     * @param requestor Originating component id (for tracing).
     */
    static PacketPtr
    makeRequest(MemCmd cmd, Addr addr, unsigned size,
                RequestorId requestor = invalidRequestorId);

    ~Packet();

    Packet(const Packet &) = delete;
    Packet &operator=(const Packet &) = delete;

    MemCmd cmd() const { return cmd_; }
    Addr addr() const { return addr_; }
    unsigned size() const { return size_; }
    RequestorId requestorId() const { return requestorId_; }
    std::uint64_t id() const { return id_; }

    bool isRead() const { return cmdIsRead(cmd_); }
    bool isWrite() const { return cmdIsWrite(cmd_); }
    bool isRequest() const { return cmdIsRequest(cmd_); }
    bool isResponse() const { return cmdIsResponse(cmd_); }
    bool isConfig() const
    {
        return cmd_ == MemCmd::ConfigReadReq ||
               cmd_ == MemCmd::ConfigReadResp ||
               cmd_ == MemCmd::ConfigWriteReq ||
               cmd_ == MemCmd::ConfigWriteResp;
    }

    /** Posted requests need no response (paper Sec. II-B). */
    bool needsResponse() const
    {
        return isRequest() && cmd_ != MemCmd::MessageReq &&
               cmd_ != MemCmd::PostedWriteReq;
    }

    /**
     * PCI bus number used to route responses back through the
     * PCI-Express fabric. -1 until a root complex or switch slave
     * port tags the request (paper Sec. V-A, "Routing of Requests
     * and Responses").
     */
    int pciBusNumber() const { return pciBusNumber_; }
    void setPciBusNumber(int bus) { pciBusNumber_ = bus; }

    /** Turn this request into the corresponding response in place. */
    void makeResponse();

    /**
     * Size of the TLP payload this packet carries on a PCI-Express
     * link: data-bearing packets (write requests, read responses)
     * carry size() bytes, others carry none (paper Sec. V-C).
     */
    unsigned
    tlpPayloadSize() const
    {
        bool has_data = (isWrite() && isRequest()) ||
                        (isRead() && isResponse());
        return has_data ? size_ : 0;
    }

    /** @{ Payload accessors (lazily allocated). */
    bool hasData() const { return !data_.empty(); }

    /** Raw payload bytes (may be shorter than size()). */
    const std::uint8_t *data() const { return data_.data(); }
    std::size_t dataSize() const { return data_.size(); }

    void
    setData(const std::uint8_t *data, unsigned len)
    {
        panicIf(len > size_, "packet data larger than packet");
        data_.assign(data, data + len);
    }

    template <typename T>
    void
    set(T v)
    {
        panicIf(sizeof(T) > size_, "packet value larger than packet");
        data_.resize(sizeof(T));
        std::memcpy(data_.data(), &v, sizeof(T));
    }

    template <typename T>
    T
    get() const
    {
        T v{};
        panicIf(data_.size() < sizeof(T),
                "reading ", sizeof(T), " bytes from packet with ",
                data_.size());
        std::memcpy(&v, data_.data(), sizeof(T));
        return v;
    }
    /** @} */

    Tick creationTick() const { return creationTick_; }
    void setCreationTick(Tick t) { creationTick_ = t; }

    /** Number of Packet objects currently alive (leak checking). */
    static std::uint64_t
    liveCount()
    {
        return liveCount_.load(std::memory_order_relaxed);
    }

    /**
     * Restart debug packet numbering from 0. Topology constructors
     * call this so two identically-configured systems built in one
     * process produce bit-identical traces (ids appear in
     * toString() and trace labels, never in simulation logic).
     */
    static void resetIds() { nextId_ = 0; }

    /** The freelist recycling Packet storage. */
    static PacketPool &pool();

    /** @{ Pooled storage; see PacketPool. */
    static void *operator new(std::size_t size);
    static void operator delete(void *p) noexcept;
    /** @} */

    std::string toString() const;

  private:
    friend class PacketPtr;

    Packet(MemCmd cmd, Addr addr, unsigned size, RequestorId requestor);

    void
    incRef()
    {
        if (par::engineActive) [[unlikely]] {
            std::atomic_ref<int>(refCount_).fetch_add(
                1, std::memory_order_relaxed);
        } else {
            ++refCount_;
        }
    }

    /** Drop one reference; true when this was the last one. */
    bool
    decRef()
    {
        if (par::engineActive) [[unlikely]] {
            return std::atomic_ref<int>(refCount_).fetch_sub(
                       1, std::memory_order_acq_rel) == 1;
        }
        return --refCount_ == 0;
    }

    MemCmd cmd_;
    Addr addr_;
    unsigned size_;
    RequestorId requestorId_;
    int pciBusNumber_ = -1;
    std::uint64_t id_;
    Tick creationTick_ = 0;
    std::vector<std::uint8_t> data_;
    /** Plain int, promoted to std::atomic_ref by incRef/decRef
     *  while the parallel engine runs. */
    int refCount_ = 0;

    static std::atomic<std::uint64_t> liveCount_;
    static std::uint64_t nextId_;
};

inline
PacketPtr::PacketPtr(Packet *pkt)
    : pkt_(pkt)
{
    if (pkt_)
        pkt_->incRef();
}

inline
PacketPtr::PacketPtr(const PacketPtr &other)
    : pkt_(other.pkt_)
{
    if (pkt_)
        pkt_->incRef();
}

inline
PacketPtr::PacketPtr(PacketPtr &&other) noexcept
    : pkt_(other.pkt_)
{
    other.pkt_ = nullptr;
}

inline PacketPtr &
PacketPtr::operator=(const PacketPtr &other)
{
    if (this == &other)
        return *this;
    reset();
    pkt_ = other.pkt_;
    if (pkt_)
        pkt_->incRef();
    return *this;
}

inline PacketPtr &
PacketPtr::operator=(PacketPtr &&other) noexcept
{
    if (this == &other)
        return *this;
    reset();
    pkt_ = other.pkt_;
    other.pkt_ = nullptr;
    return *this;
}

inline void
PacketPtr::reset()
{
    if (pkt_ && pkt_->decRef())
        delete pkt_;
    pkt_ = nullptr;
}

inline
PacketPtr::~PacketPtr()
{
    reset();
}

} // namespace pciesim

#endif // PCIESIM_MEM_PACKET_HH
