#include "port.hh"

namespace pciesim
{

void
MasterPort::bind(SlavePort &peer)
{
    panicIf(peer_ != nullptr, "master port '", name(), "' already bound");
    panicIf(peer.peer_ != nullptr,
            "slave port '", peer.name(), "' already bound");
    peer_ = &peer;
    peer.peer_ = this;
}

SlavePort &
MasterPort::peer() const
{
    panicIf(peer_ == nullptr, "master port '", name(), "' is unbound");
    return *peer_;
}

bool
MasterPort::sendTimingReq(const PacketPtr &pkt)
{
    panicIf(!pkt->isRequest(),
            "sendTimingReq with non-request ", pkt->toString());
    return peer().recvTimingReq(pkt);
}

void
MasterPort::sendRetryResp()
{
    peer().recvRespRetry();
}

MasterPort &
SlavePort::peer() const
{
    panicIf(peer_ == nullptr, "slave port '", name(), "' is unbound");
    return *peer_;
}

bool
SlavePort::sendTimingResp(const PacketPtr &pkt)
{
    panicIf(!pkt->isResponse(),
            "sendTimingResp with non-response ", pkt->toString());
    return peer().recvTimingResp(pkt);
}

void
SlavePort::sendRetryReq()
{
    peer().recvReqRetry();
}

} // namespace pciesim
