/**
 * @file
 * A DRAM model with fixed access latency and bandwidth regulation,
 * comparable to gem5's SimpleMemory.
 */

#ifndef PCIESIM_MEM_SIMPLE_MEMORY_HH
#define PCIESIM_MEM_SIMPLE_MEMORY_HH

#include <memory>
#include <unordered_map>

#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/** Configuration for a SimpleMemory. */
struct SimpleMemoryParams
{
    /** Range of physical addresses backed by this memory. */
    AddrRange range{0x80000000ULL, 0x8080000000ULL};
    /** Access latency. */
    Tick latency = nanoseconds(50);
    /** Bytes per tick of sustainable bandwidth regulation. */
    double bytesPerTick = 12.8e9 / 1e12; // 12.8 GB/s
    /** Outstanding-response queue capacity. */
    std::size_t queueCapacity = 64;
    /** Whether the memory stores written data (functional backing).
     *  Disabled for pure bandwidth experiments to save space; reads
     *  of unwritten locations return zero either way. */
    bool functional = true;
};

/**
 * Memory controller + DRAM. Single slave port; responds to reads and
 * writes after latency, regulating throughput to bytesPerTick.
 */
class SimpleMemory : public SimObject
{
  public:
    SimpleMemory(Simulation &sim, const std::string &name,
                 const SimpleMemoryParams &params = {});
    ~SimpleMemory() override;

    SlavePort &port();

    void init() override;

    /** Functional backdoor read (tests, driver models). */
    std::uint8_t readByte(Addr a) const;

    /** Functional backdoor write. */
    void writeByte(Addr a, std::uint8_t v);

  private:
    class MemoryPort;

    bool access(const PacketPtr &pkt);

    SimpleMemoryParams params_;
    std::unique_ptr<MemoryPort> port_;
    std::unique_ptr<PacketQueue> respQueue_;
    bool wantRetry_ = false;
    /** Earliest tick the data bus is free (bandwidth regulation). */
    Tick bankFreeAt_ = 0;
    /** Sparse functional backing store. */
    std::unordered_map<Addr, std::uint8_t> store_;

    stats::Counter reads_;
    stats::Counter writes_;
    stats::Counter refusals_;
};

} // namespace pciesim

#endif // PCIESIM_MEM_SIMPLE_MEMORY_HH
