/**
 * @file
 * Physical address ranges used for routing.
 */

#ifndef PCIESIM_MEM_ADDR_RANGE_HH
#define PCIESIM_MEM_ADDR_RANGE_HH

#include <cstdint>
#include <list>
#include <string>

namespace pciesim
{

/** A physical address. */
using Addr = std::uint64_t;

/**
 * A half-open address interval [start, end).
 *
 * An empty range (start == end) contains nothing and intersects
 * nothing; routing components use it as "window disabled", matching
 * how a PCI bridge with base > limit forwards nothing.
 */
class AddrRange
{
  public:
    constexpr AddrRange() = default;

    /** @param start First byte. @param end One past the last byte. */
    constexpr AddrRange(Addr start, Addr end)
        : start_(start), end_(end)
    {}

    constexpr Addr start() const { return start_; }
    constexpr Addr end() const { return end_; }
    constexpr Addr size() const { return end_ - start_; }
    constexpr bool empty() const { return start_ >= end_; }

    constexpr bool
    contains(Addr a) const
    {
        return a >= start_ && a < end_;
    }

    /** Whether @p other lies fully inside this range. */
    constexpr bool
    covers(const AddrRange &other) const
    {
        return !other.empty() && other.start_ >= start_ &&
               other.end_ <= end_;
    }

    constexpr bool
    intersects(const AddrRange &other) const
    {
        return !empty() && !other.empty() &&
               start_ < other.end_ && other.start_ < end_;
    }

    bool
    operator==(const AddrRange &other) const
    {
        return start_ == other.start_ && end_ == other.end_;
    }

    std::string toString() const;

  private:
    Addr start_ = 0;
    Addr end_ = 0;
};

using AddrRangeList = std::list<AddrRange>;

/** Whether @p a is covered by any range in @p l. */
bool listContains(const AddrRangeList &l, Addr a);

/** Whether any two ranges in @p l overlap. */
bool listHasOverlap(const AddrRangeList &l);

} // namespace pciesim

#endif // PCIESIM_MEM_ADDR_RANGE_HH
