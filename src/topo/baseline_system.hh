/**
 * @file
 * The baseline topology: mainline gem5's off-chip attachment that
 * the paper improves upon (Sec. I / III) - devices hang off a
 * non-coherent IOBus crossbar behind a plain bridge, with no link
 * serialization and no data link layer:
 *
 *   Kernel(CPU) -- MemBus -- Bridge -- IOBus -- Disk (PIO)
 *                     |                  |
 *                   DRAM  <- IOCache <---+     (DMA path)
 *
 * Used by the ablation bench to quantify what the PCIe model adds.
 */

#ifndef PCIESIM_TOPO_BASELINE_SYSTEM_HH
#define PCIESIM_TOPO_BASELINE_SYSTEM_HH

#include <memory>

#include "mem/bridge.hh"
#include "pci/pci_host.hh"
#include "topo/system_config.hh"

namespace pciesim
{

/**
 * The paper's baseline topology (Sec. VI-A): one root complex, one
 * PCI-Express link, one traffic-generator endpoint, main memory
 * behind a host bridge.
 */
class BaselineSystem
{
  public:
    BaselineSystem(Simulation &sim, const SystemConfig &config);
    ~BaselineSystem();

    void boot();

    Kernel &kernel() { return *kernel_; }
    IdeDriver &ideDriver() { return *ideDriver_; }
    IdeDisk &disk() { return *disk_; }

    /** Run a dd workload; @return reported throughput in Gbit/s. */
    double runDd(const DdWorkloadParams &dd);

  private:
    Simulation &sim_;
    SystemConfig config_;

    std::unique_ptr<XBar> membus_;
    std::unique_ptr<XBar> iobus_;
    std::unique_ptr<Bridge> bridge_;
    std::unique_ptr<SimpleMemory> dram_;
    std::unique_ptr<PciHost> pciHost_;
    std::unique_ptr<IntController> gic_;
    std::unique_ptr<IOCache> ioCache_;
    std::unique_ptr<IdeDisk> disk_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<IdeDriver> ideDriver_;
};

} // namespace pciesim

#endif // PCIESIM_TOPO_BASELINE_SYSTEM_HH
