/**
 * @file
 * The baseline topology: mainline gem5's off-chip attachment that
 * the paper improves upon (Sec. I / III) - devices hang off a
 * non-coherent IOBus crossbar behind a plain bridge, with no link
 * serialization and no data link layer:
 *
 *   Kernel(CPU) -- MemBus -- Bridge -- IOBus -- Disk (PIO)
 *                     |                  |
 *                   DRAM  <- IOCache <---+     (DMA path)
 *
 * Used by the ablation bench to quantify what the PCIe model adds.
 * A thin wrapper over the "legacy-io" style of the declarative
 * fabric builder (see examples/topologies/baseline.json).
 */

#ifndef PCIESIM_TOPO_BASELINE_SYSTEM_HH
#define PCIESIM_TOPO_BASELINE_SYSTEM_HH

#include "topo/fabric_builder.hh"

namespace pciesim
{

/**
 * The paper's baseline topology (Sec. VI-A): the disk on a flat
 * IOBus behind a host bridge, with no PCIe fabric in between.
 */
class BaselineSystem
{
  public:
    BaselineSystem(Simulation &sim, const SystemConfig &config);
    ~BaselineSystem();

    void boot() { fabric_.boot(); }

    Kernel &kernel() { return fabric_.kernel(); }
    IdeDriver &ideDriver() { return fabric_.ideDriver(0); }
    IdeDisk &disk() { return fabric_.disk(0); }
    /** The underlying declarative fabric. */
    Fabric &fabric() { return fabric_; }

    /** Run a dd workload; @return reported throughput in Gbit/s. */
    double
    runDd(const DdWorkloadParams &dd)
    {
        return fabric_.runDd(dd);
    }

    /** The description this class instantiates; also the reference
     *  for examples/topologies/baseline.json. */
    static FabricDesc makeDesc(const SystemConfig &config);

  private:
    Fabric fabric_;
};

} // namespace pciesim

#endif // PCIESIM_TOPO_BASELINE_SYSTEM_HH
