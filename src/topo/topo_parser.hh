/**
 * @file
 * Self-contained JSON reader for declarative topology files, in the
 * style of tools/pciesim_report.cc but with two additions the
 * builder needs: every value remembers the 1-based source line it
 * started on (so semantic errors can cite file:line), and every
 * syntax error is a fatal() carrying the same context. No external
 * dependencies.
 */

#ifndef PCIESIM_TOPO_TOPO_PARSER_HH
#define PCIESIM_TOPO_TOPO_PARSER_HH

#include <string>
#include <utility>
#include <vector>

namespace pciesim
{

namespace topo
{

/**
 * One parsed JSON value. Objects keep insertion order so the
 * builder can walk nodes in declaration order; duplicate keys
 * within one object are a parse error.
 */
struct Json
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;
    /** 1-based line of the value's first character (0: synthetic). */
    unsigned line = 0;

    /** Key lookup on an object; null when absent. */
    const Json *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : obj) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    const char *typeName() const;
};

/**
 * Parse @p text as one JSON document. @p source names the input in
 * error messages ("topology <source>:<line>: ..."); every syntax
 * error is a fatal().
 */
Json parseJson(const std::string &text, const std::string &source);

/** Read @p path and parse it; fatal() if unreadable. */
Json loadJsonFile(const std::string &path);

} // namespace topo

} // namespace pciesim

#endif // PCIESIM_TOPO_TOPO_PARSER_HH
