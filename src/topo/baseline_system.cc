#include "baseline_system.hh"

namespace pciesim
{

FabricDesc
BaselineSystem::makeDesc(const SystemConfig &config)
{
    FabricDesc desc;
    desc.source = "<baseline>";
    desc.style = "legacy-io";
    desc.config = config;

    FabricNodeDesc disk;
    disk.name = "disk";
    disk.kind = "ide_disk";
    desc.nodes.push_back(disk);
    return desc;
}

BaselineSystem::BaselineSystem(Simulation &sim,
                               const SystemConfig &config)
    : fabric_(sim, makeDesc(config))
{}

BaselineSystem::~BaselineSystem() = default;

} // namespace pciesim
