#include "baseline_system.hh"

#include "pci/config_regs.hh"
#include "pci/platform.hh"

namespace pciesim
{

BaselineSystem::BaselineSystem(Simulation &sim,
                               const SystemConfig &config)
    : sim_(sim), config_(config)
{
    // The flat baseline has no point-to-point links, so there is no
    // lookahead to cut domains on; parallel mode degenerates to the
    // single-queue core.
    if (config.threads > 1) {
        warn("baseline system: no links to partition into domains; "
             "running single-queue");
    }

    membus_ = std::make_unique<XBar>(sim, "system.membus",
                                     config.membus);
    iobus_ = std::make_unique<XBar>(sim, "system.iobus",
                                    config.membus);
    dram_ = std::make_unique<SimpleMemory>(sim, "system.dram",
                                           config.dram);
    pciHost_ = std::make_unique<PciHost>(sim, "system.pciHost");
    gic_ = std::make_unique<IntController>(sim, "system.gic",
                                           config.gic);

    // The MemBus -> IOBus bridge claims the whole off-chip range.
    BridgeParams bp;
    bp.delay = nanoseconds(50);
    bp.ranges = {platform::offChipRange};
    bridge_ = std::make_unique<Bridge>(sim, "system.bridge", bp);

    IOCacheParams ioc = config.ioCache;
    if (ioc.ranges.empty())
        ioc.ranges = {platform::dramRange};
    ioCache_ = std::make_unique<IOCache>(sim, "system.ioCache", ioc);

    disk_ = std::make_unique<IdeDisk>(sim, "system.disk",
                                      config.disk);
    kernel_ = std::make_unique<Kernel>(sim, "system.kernel",
                                       *pciHost_, *gic_, *dram_,
                                       config.kernel);
    ideDriver_ = std::make_unique<IdeDriver>(config.ideDriver);

    // MemBus wiring.
    kernel_->cpuPort().bind(membus_->addSlavePort("cpuSlave"));
    ioCache_->masterPort().bind(membus_->addSlavePort("iocSlave"));
    membus_->addMasterPort("dramMaster").bind(dram_->port());
    membus_->addMasterPort("bridgeMaster")
        .bind(bridge_->slavePort());

    // IOBus wiring: PIO in from the bridge, DMA out via IOCache.
    bridge_->masterPort().bind(iobus_->addSlavePort("bridgeSlave"));
    disk_->dmaPort().bind(iobus_->addSlavePort("diskDma"));
    iobus_->addMasterPort("diskPio").bind(disk_->pioPort());
    iobus_->addMasterPort("iocMaster").bind(ioCache_->slavePort());

    if (config.intxLatency > 0) {
        Tick intx_latency = config.intxLatency;
        disk_->setIntxSink([this, intx_latency](bool asserted) {
            unsigned line =
                disk_->config().raw8(cfg::interruptLine);
            sim_.callAt(0, sim_.curTick() + intx_latency,
                        [this, line, asserted] {
                            gic_->setLevel(line, asserted);
                        });
        });
    } else {
        disk_->setIntxSink([this](bool asserted) {
            gic_->setLevel(disk_->config().raw8(cfg::interruptLine),
                           asserted);
        });
    }

    // Flat topology: the disk is the only device on bus 0.
    pciHost_->registerFunction(*disk_, Bdf{0, 0, 0});
    kernel_->registerDriver(*ideDriver_);
}

BaselineSystem::~BaselineSystem() = default;

void
BaselineSystem::boot()
{
    sim_.initialize();
    kernel_->enumerate();
    kernel_->probeDrivers();
    fatalIf(!ideDriver_->probed(),
            "boot failed: the IDE driver did not probe the disk");
}

double
BaselineSystem::runDd(const DdWorkloadParams &dd)
{
    boot();
    DdWorkload workload(*kernel_, *ideDriver_, dd);
    bool done = false;
    workload.run([&done] { done = true; });
    sim_.run();
    fatalIf(!done, "dd did not complete (deadlock?)");
    return workload.throughputGbps();
}

} // namespace pciesim
