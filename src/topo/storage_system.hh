/**
 * @file
 * The paper's validation topology (Sec. VI-A):
 *
 *   Kernel(CPU) -- MemBus -- RootComplex ==x4== Switch ==x1== Disk
 *                     |          |
 *                   DRAM      IOCache (DMA path back to MemBus)
 *
 * plus the PCI Host, interrupt controller, IDE driver, and a dd
 * workload harness. Since the declarative fabric builder landed
 * (DESIGN.md Sec. 13) this class is a thin wrapper over Fabric:
 * it builds the equivalent FabricDesc — the same description that
 * examples/topologies/storage.json expresses in JSON — and
 * delegates everything. This is the topology every dd figure
 * (Fig. 9a-d) runs on.
 */

#ifndef PCIESIM_TOPO_STORAGE_SYSTEM_HH
#define PCIESIM_TOPO_STORAGE_SYSTEM_HH

#include <memory>
#include <vector>

#include "topo/fabric_builder.hh"

namespace pciesim
{

/**
 * The storage topology (paper Sec. VI-B): an IDE disk endpoint
 * driven by the dd workload through the IDE driver, reproducing the
 * paper's storage dd experiments.
 */
class StorageSystem
{
  public:
    StorageSystem(Simulation &sim, const SystemConfig &config);
    ~StorageSystem();

    /** Run enumeration and driver probing (functional). */
    void boot() { fabric_.boot(); }

    /** @{ Component access. */
    Simulation &sim() { return fabric_.sim(); }
    Kernel &kernel() { return fabric_.kernel(); }
    IdeDriver &ideDriver() { return fabric_.ideDriver(0); }
    IdeDisk &disk() { return fabric_.disk(0); }
    PciHost &pciHost() { return fabric_.pciHost(); }
    RootComplex &rootComplex() { return fabric_.rootComplex(); }
    PcieSwitch &pcieSwitch() { return fabric_.pcieSwitch(0); }
    PcieLink &upstreamLink() { return fabric_.link(0); }
    PcieLink &downstreamLink() { return fabric_.link(1); }
    /** All links of the fabric, for generic per-link stats. */
    std::vector<PcieLink *> links() { return fabric_.links(); }
    IOCache &ioCache() { return fabric_.ioCache(); }
    SimpleMemory &dram() { return fabric_.dram(); }
    IntController &gic() { return fabric_.gic(); }
    /** The periodic sampler; null unless statsSampleInterval > 0. */
    StatsSampler *sampler() { return fabric_.sampler(); }
    /** The epoch dumper; null unless statsDumpInterval > 0. */
    StatsDumper *dumper() { return fabric_.dumper(); }
    /** The error reporter; null unless aerEnabled. */
    ErrReporter *errReporter() { return fabric_.errReporter(); }
    /** The kernel AER service; null unless aerEnabled. */
    AerHandler *aerHandler() { return fabric_.aerHandler(); }
    /** The underlying declarative fabric. */
    Fabric &fabric() { return fabric_; }
    /** @} */

    /** Write the full registry as stats.json to @p path. */
    void
    exportStatsJson(const std::string &path)
    {
        fabric_.exportStatsJson(path);
    }

    /**
     * Run a dd workload to completion.
     * @return the reported throughput in Gbit/s.
     */
    double runDd(const DdWorkloadParams &dd)
    {
        return fabric_.runDd(dd);
    }

    /** Fraction of transmitted TLPs that were replayed on the
     *  disk -> switch upstream direction (paper Sec. VI-B). */
    double
    diskUplinkReplayFraction()
    {
        return fabric_.diskUplinkReplayFraction();
    }

    /** Timeout count on the disk -> switch upstream direction. */
    std::uint64_t
    diskUplinkTimeouts()
    {
        return fabric_.diskUplinkTimeouts();
    }

    /** The description this class instantiates; also the reference
     *  for examples/topologies/storage.json. */
    static FabricDesc makeDesc(const SystemConfig &config);

  private:
    Fabric fabric_;
};

} // namespace pciesim

#endif // PCIESIM_TOPO_STORAGE_SYSTEM_HH
