/**
 * @file
 * The paper's validation topology (Sec. VI-A):
 *
 *   Kernel(CPU) -- MemBus -- RootComplex ==x4== Switch ==x1== Disk
 *                     |          |
 *                   DRAM      IOCache (DMA path back to MemBus)
 *
 * plus the PCI Host, interrupt controller, IDE driver, and a dd
 * workload harness. One object owns and wires everything; this is
 * the topology every dd figure (Fig. 9a-d) runs on.
 */

#ifndef PCIESIM_TOPO_STORAGE_SYSTEM_HH
#define PCIESIM_TOPO_STORAGE_SYSTEM_HH

#include <memory>
#include <vector>

#include "os/aer_handler.hh"
#include "pci/pci_host.hh"
#include "pcie/err_reporter.hh"
#include "sim/stats_dumper.hh"
#include "sim/stats_sampler.hh"
#include "topo/system_config.hh"

namespace pciesim
{

/**
 * The storage topology (paper Sec. VI-B): an IDE disk endpoint
 * driven by the dd workload through the IDE driver, reproducing the
 * paper's storage dd experiments.
 */
class StorageSystem
{
  public:
    StorageSystem(Simulation &sim, const SystemConfig &config);
    ~StorageSystem();

    /** Run enumeration and driver probing (functional). */
    void boot();

    /** @{ Component access. */
    Simulation &sim() { return sim_; }
    Kernel &kernel() { return *kernel_; }
    IdeDriver &ideDriver() { return *ideDriver_; }
    IdeDisk &disk() { return *disk_; }
    PciHost &pciHost() { return *pciHost_; }
    RootComplex &rootComplex() { return *rootComplex_; }
    PcieSwitch &pcieSwitch() { return *switch_; }
    PcieLink &upstreamLink() { return *upLink_; }
    PcieLink &downstreamLink() { return *downLink_; }
    /** All links of the fabric, for generic per-link stats. */
    std::vector<PcieLink *>
    links()
    {
        return {upLink_.get(), downLink_.get()};
    }
    IOCache &ioCache() { return *ioCache_; }
    SimpleMemory &dram() { return *dram_; }
    IntController &gic() { return *gic_; }
    /** The periodic sampler; null unless statsSampleInterval > 0. */
    StatsSampler *sampler() { return sampler_.get(); }
    /** The epoch dumper; null unless statsDumpInterval > 0. */
    StatsDumper *dumper() { return dumper_.get(); }
    /** The error reporter; null unless aerEnabled. */
    ErrReporter *errReporter() { return errReporter_.get(); }
    /** The kernel AER service; null unless aerEnabled. */
    AerHandler *aerHandler() { return aerHandler_.get(); }
    /** @} */

    /** Write the full registry as stats.json to @p path. */
    void exportStatsJson(const std::string &path);

    /**
     * Run a dd workload to completion.
     * @return the reported throughput in Gbit/s.
     */
    double runDd(const DdWorkloadParams &dd);

    /** Fraction of transmitted TLPs that were replayed on the
     *  disk -> switch upstream direction (paper Sec. VI-B). */
    double diskUplinkReplayFraction();

    /** Timeout count on the disk -> switch upstream direction. */
    std::uint64_t diskUplinkTimeouts();

  private:
    Simulation &sim_;
    SystemConfig config_;

    std::unique_ptr<XBar> membus_;
    std::unique_ptr<SimpleMemory> dram_;
    std::unique_ptr<PciHost> pciHost_;
    std::unique_ptr<IntController> gic_;
    std::unique_ptr<IOCache> ioCache_;
    std::unique_ptr<RootComplex> rootComplex_;
    std::unique_ptr<PcieSwitch> switch_;
    std::unique_ptr<PcieLink> upLink_;
    std::unique_ptr<PcieLink> downLink_;
    std::unique_ptr<IdeDisk> disk_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<IdeDriver> ideDriver_;
    std::unique_ptr<StatsSampler> sampler_;
    std::unique_ptr<StatsDumper> dumper_;
    std::unique_ptr<ErrReporter> errReporter_;
    std::unique_ptr<AerHandler> aerHandler_;
    /** @{ System-level dump-time formulas (stats v2). */
    stats::Formula replayFraction_;
    stats::Formula timeoutFraction_;
    /** @} */
};

} // namespace pciesim

#endif // PCIESIM_TOPO_STORAGE_SYSTEM_HH
