/**
 * @file
 * Multi-device exploration topology: N synthetic DMA generators
 * behind one switch share a single upstream link to the root
 * complex - the fabric-sharing scenario the paper's introduction
 * motivates (a processor simultaneously communicating with several
 * off-chip devices over point-to-point links).
 *
 *   Kernel ── MemBus ── RC ═upstream═ Switch ═x1═ TrafficGen 0
 *                │        │              ═x1═ TrafficGen 1
 *              DRAM    IOCache           ═x1═ ...
 *
 * A thin wrapper over the declarative fabric builder (see
 * examples/topologies/multi_device.json).
 */

#ifndef PCIESIM_TOPO_MULTI_DEVICE_SYSTEM_HH
#define PCIESIM_TOPO_MULTI_DEVICE_SYSTEM_HH

#include <vector>

#include "topo/fabric_builder.hh"

namespace pciesim
{

/** Configuration for a MultiDeviceSystem. */
struct MultiDeviceConfig
{
    SystemConfig base;
    unsigned numDevices = 4;
    /** Width of each generator's link. */
    unsigned deviceLinkWidth = 1;
    TrafficGenParams gen;
};

/**
 * A fan-out topology: several traffic-generator endpoints behind a
 * switch share one upstream link, exposing congestion and credit
 * contention (paper Sec. VI-D).
 */
class MultiDeviceSystem
{
  public:
    MultiDeviceSystem(Simulation &sim,
                      const MultiDeviceConfig &config);
    ~MultiDeviceSystem();

    void boot() { fabric_.boot(); }

    Kernel &kernel() { return fabric_.kernel(); }
    TrafficGen &device(unsigned i) { return fabric_.trafficGen(i); }
    unsigned numDevices() const { return fabric_.numTrafficGens(); }
    RootComplex &rootComplex() { return fabric_.rootComplex(); }
    PcieSwitch &pcieSwitch() { return fabric_.pcieSwitch(0); }
    PcieLink &upstreamLink() { return fabric_.link(0); }
    /** All links of the fabric, for generic per-link stats. */
    std::vector<PcieLink *> links() { return fabric_.links(); }
    /** The underlying declarative fabric. */
    Fabric &fabric() { return fabric_; }

    /** BAR0 base of generator @p i (valid after boot). */
    Addr genMmioBase(unsigned i)
    {
        return fabric_.genMmioBase(i);
    }

    /**
     * Program and start @p active generators, each DMA-writing
     * @p bursts bursts of @p burst_bytes into its own DRAM region,
     * run to completion, and return the aggregate goodput in Gbps.
     */
    double
    runConcurrentWrites(unsigned active, unsigned bursts,
                        std::uint32_t burst_bytes)
    {
        return fabric_.runConcurrentWrites(active, bursts,
                                           burst_bytes);
    }

    /** The description this class instantiates; also the reference
     *  for examples/topologies/multi_device.json. */
    static FabricDesc makeDesc(const MultiDeviceConfig &config);

  private:
    Fabric fabric_;
};

} // namespace pciesim

#endif // PCIESIM_TOPO_MULTI_DEVICE_SYSTEM_HH
