/**
 * @file
 * Multi-device exploration topology: N synthetic DMA generators
 * behind one switch share a single upstream link to the root
 * complex - the fabric-sharing scenario the paper's introduction
 * motivates (a processor simultaneously communicating with several
 * off-chip devices over point-to-point links).
 *
 *   Kernel ── MemBus ── RC ═upstream═ Switch ═x1═ TrafficGen 0
 *                │        │              ═x1═ TrafficGen 1
 *              DRAM    IOCache           ═x1═ ...
 */

#ifndef PCIESIM_TOPO_MULTI_DEVICE_SYSTEM_HH
#define PCIESIM_TOPO_MULTI_DEVICE_SYSTEM_HH

#include <memory>
#include <vector>

#include "dev/traffic_gen.hh"
#include "pci/pci_host.hh"
#include "pcie/pcie_link.hh"
#include "pcie/pcie_switch.hh"
#include "pcie/root_complex.hh"
#include "topo/system_config.hh"

namespace pciesim
{

/** Configuration for a MultiDeviceSystem. */
struct MultiDeviceConfig
{
    SystemConfig base;
    unsigned numDevices = 4;
    /** Width of each generator's link. */
    unsigned deviceLinkWidth = 1;
    TrafficGenParams gen;
};

/**
 * A fan-out topology: several traffic-generator endpoints behind a
 * switch share one upstream link, exposing congestion and credit
 * contention (paper Sec. VI-D).
 */
class MultiDeviceSystem
{
  public:
    MultiDeviceSystem(Simulation &sim,
                      const MultiDeviceConfig &config);
    ~MultiDeviceSystem();

    void boot();

    Kernel &kernel() { return *kernel_; }
    TrafficGen &device(unsigned i) { return *gens_.at(i); }
    unsigned numDevices() const { return config_.numDevices; }
    RootComplex &rootComplex() { return *rootComplex_; }
    PcieSwitch &pcieSwitch() { return *switch_; }
    PcieLink &upstreamLink() { return *upLink_; }
    /** All links of the fabric, for generic per-link stats. */
    std::vector<PcieLink *>
    links()
    {
        std::vector<PcieLink *> out = {upLink_.get()};
        for (const auto &link : devLinks_)
            out.push_back(link.get());
        return out;
    }

    /** BAR0 base of generator @p i (valid after boot). */
    Addr genMmioBase(unsigned i);

    /**
     * Program and start @p active generators, each DMA-writing
     * @p bursts bursts of @p burst_bytes into its own DRAM region,
     * run to completion, and return the aggregate goodput in Gbps.
     */
    double runConcurrentWrites(unsigned active, unsigned bursts,
                               std::uint32_t burst_bytes);

  private:
    Simulation &sim_;
    MultiDeviceConfig config_;

    std::unique_ptr<XBar> membus_;
    std::unique_ptr<SimpleMemory> dram_;
    std::unique_ptr<PciHost> pciHost_;
    std::unique_ptr<IntController> gic_;
    std::unique_ptr<IOCache> ioCache_;
    std::unique_ptr<RootComplex> rootComplex_;
    std::unique_ptr<PcieSwitch> switch_;
    std::unique_ptr<PcieLink> upLink_;
    std::vector<std::unique_ptr<PcieLink>> devLinks_;
    std::vector<std::unique_ptr<TrafficGen>> gens_;
    std::unique_ptr<Kernel> kernel_;
    bool booted_ = false;
};

} // namespace pciesim

#endif // PCIESIM_TOPO_MULTI_DEVICE_SYSTEM_HH
