#include "multi_device_system.hh"

#include <string>

namespace pciesim
{

FabricDesc
MultiDeviceSystem::makeDesc(const MultiDeviceConfig &config)
{
    fatalIf(config.numDevices == 0 || config.numDevices > 16,
            "multi-device system supports 1..16 devices");

    FabricDesc desc;
    desc.source = "<multi-device>";
    desc.config = config.base;
    desc.gen = config.gen;

    FabricNodeDesc sw;
    sw.name = "switch";
    sw.kind = "switch";
    sw.ports = config.numDevices;
    sw.link.name = "upLink";
    desc.nodes.push_back(sw);

    for (unsigned i = 0; i < config.numDevices; ++i) {
        FabricNodeDesc gen;
        gen.name = "tgen" + std::to_string(i);
        gen.kind = "traffic_gen";
        gen.parent = "switch";
        gen.link.name = "devLink" + std::to_string(i);
        gen.link.width = config.deviceLinkWidth;
        desc.nodes.push_back(gen);
    }
    return desc;
}

MultiDeviceSystem::MultiDeviceSystem(Simulation &sim,
                                     const MultiDeviceConfig &config)
    : fabric_(sim, makeDesc(config))
{}

MultiDeviceSystem::~MultiDeviceSystem() = default;

} // namespace pciesim
