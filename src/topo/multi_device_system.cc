#include "multi_device_system.hh"

#include "pci/config_regs.hh"
#include "pci/platform.hh"

namespace pciesim
{

MultiDeviceSystem::MultiDeviceSystem(Simulation &sim,
                                     const MultiDeviceConfig &config)
    : sim_(sim), config_(config)
{
    const SystemConfig &base = config.base;
    fatalIf(config_.numDevices == 0 || config_.numDevices > 16,
            "multi-device system supports 1..16 devices");

    membus_ = std::make_unique<XBar>(sim, "system.membus",
                                     base.membus);
    dram_ = std::make_unique<SimpleMemory>(sim, "system.dram",
                                           base.dram);
    pciHost_ = std::make_unique<PciHost>(sim, "system.pciHost");
    gic_ = std::make_unique<IntController>(sim, "system.gic",
                                           base.gic);

    IOCacheParams ioc = base.ioCache;
    if (ioc.ranges.empty())
        ioc.ranges = {platform::dramRange};
    ioCache_ = std::make_unique<IOCache>(sim, "system.ioCache", ioc);

    RootComplexParams rcp;
    rcp.latency = base.rcLatency;
    rcp.portBufferSize = base.portBufferSize;
    rcp.linkWidth = base.upstreamLinkWidth;
    rcp.linkGen = static_cast<unsigned>(base.gen);
    rootComplex_ = std::make_unique<RootComplex>(sim, "system.rc",
                                                 *pciHost_, rcp);

    PcieSwitchParams swp;
    swp.numDownstreamPorts = config_.numDevices;
    swp.latency = base.switchLatency;
    swp.portBufferSize = base.portBufferSize;
    swp.linkWidth = config_.deviceLinkWidth;
    swp.linkGen = static_cast<unsigned>(base.gen);
    switch_ = std::make_unique<PcieSwitch>(sim, "system.switch", swp);

    upLink_ = std::make_unique<PcieLink>(
        sim, "system.upLink",
        base.makeLinkParams(base.upstreamLinkWidth, 0));

    kernel_ = std::make_unique<Kernel>(sim, "system.kernel",
                                       *pciHost_, *gic_, *dram_,
                                       base.kernel);

    kernel_->cpuPort().bind(membus_->addSlavePort("cpuSlave"));
    ioCache_->masterPort().bind(membus_->addSlavePort("iocSlave"));
    membus_->addMasterPort("dramMaster").bind(dram_->port());
    membus_->addMasterPort("rcMaster")
        .bind(rootComplex_->upstreamSlavePort());
    rootComplex_->upstreamMasterPort().bind(ioCache_->slavePort());

    rootComplex_->rootPortMaster(0).bind(upLink_->upSlave());
    upLink_->upMaster().bind(rootComplex_->rootPortSlave(0));
    upLink_->downMaster().bind(switch_->upstreamSlavePort());
    switch_->upstreamMasterPort().bind(upLink_->downSlave());

    // Registry: bus 1 = switch upstream VP2P, bus 2 = internal bus
    // (downstream VP2Ps), bus 3+i = device i.
    pciHost_->registerFunction(switch_->upstreamVp2p(), Bdf{1, 0, 0});
    for (unsigned i = 0; i < config_.numDevices; ++i) {
        pciHost_->registerFunction(
            switch_->downstreamVp2p(i),
            Bdf{2, static_cast<std::uint8_t>(i), 0});

        devLinks_.push_back(std::make_unique<PcieLink>(
            sim, "system.devLink" + std::to_string(i),
            base.makeLinkParams(config_.deviceLinkWidth, 1 + i)));
        gens_.push_back(std::make_unique<TrafficGen>(
            sim, "system.tgen" + std::to_string(i), config_.gen));

        switch_->downstreamMaster(i).bind(devLinks_[i]->upSlave());
        devLinks_[i]->upMaster().bind(switch_->downstreamSlave(i));
        devLinks_[i]->downMaster().bind(gens_[i]->pioPort());
        gens_[i]->dmaPort().bind(devLinks_[i]->downSlave());

        TrafficGen *gen = gens_[i].get();
        gens_[i]->setIntxSink([this, gen](bool asserted) {
            gic_->setLevel(gen->config().raw8(cfg::interruptLine),
                           asserted);
        });
        pciHost_->registerFunction(
            *gens_[i], Bdf{static_cast<std::uint8_t>(3 + i), 0, 0});
    }
}

MultiDeviceSystem::~MultiDeviceSystem() = default;

void
MultiDeviceSystem::boot()
{
    if (booted_)
        return;
    booted_ = true;
    sim_.initialize();
    kernel_->enumerate();
}

Addr
MultiDeviceSystem::genMmioBase(unsigned i)
{
    boot();
    const EnumeratedFunction *fn =
        kernel_->enumerate().find(gens_.at(i)->bdf());
    panicIf(fn == nullptr || fn->bars.empty(),
            "traffic generator was not enumerated");
    return fn->bars[0].start();
}

double
MultiDeviceSystem::runConcurrentWrites(unsigned active,
                                       unsigned bursts,
                                       std::uint32_t burst_bytes)
{
    boot();
    panicIf(active == 0 || active > config_.numDevices,
            "bad active device count");

    // The level-triggered line may re-dispatch the handler while
    // the asynchronous DONE read is still deasserting it; use
    // per-device idempotent completion flags.
    std::vector<bool> done_flags(active, false);
    Tick start = sim_.curTick();
    for (unsigned i = 0; i < active; ++i) {
        Addr mmio = genMmioBase(i);
        Addr target = kernel_->allocDma(burst_bytes, 4096);
        Kernel &k = *kernel_;
        k.mmioWrite(mmio + tgen::regAddrLo, 4,
                    target & 0xffffffff, [] {});
        k.mmioWrite(mmio + tgen::regAddrHi, 4, target >> 32, [] {});
        k.mmioWrite(mmio + tgen::regLength, 4, burst_bytes, [] {});
        k.mmioWrite(mmio + tgen::regCount, 4, bursts, [] {});
        k.mmioWrite(mmio + tgen::regMode, 4, 0, [] {});
        unsigned line = kernel_->enumerate()
                            .find(gens_[i]->bdf())->irqLine;
        k.registerIrqHandler(line, [this, i, mmio, &done_flags] {
            // ISR: read DONE (deasserts INTx), flag completion.
            kernel_->mmioRead(mmio + tgen::regDone, 4,
                              [i, &done_flags](std::uint64_t) {
                done_flags[i] = true;
            });
        });
        k.mmioWrite(mmio + tgen::regCtrl, 4, tgen::ctrlStart, [] {});
    }
    sim_.run();
    unsigned completed = 0;
    for (bool f : done_flags)
        completed += f ? 1 : 0;
    fatalIf(completed != active,
            "concurrent run did not complete (", completed, " of ",
            active, ")");

    Tick elapsed = sim_.curTick() - start;
    double bytes = static_cast<double>(active) * bursts * burst_bytes;
    return bytes * 8.0 / ticksToSeconds(elapsed) / 1e9;
}

} // namespace pciesim
