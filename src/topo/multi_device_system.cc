#include "multi_device_system.hh"

#include <algorithm>
#include <string>

#include "pci/config_regs.hh"
#include "pci/platform.hh"

namespace pciesim
{

MultiDeviceSystem::MultiDeviceSystem(Simulation &sim,
                                     const MultiDeviceConfig &config)
    : sim_(sim), config_(config)
{
    const SystemConfig &base = config.base;
    fatalIf(config_.numDevices == 0 || config_.numDevices > 16,
            "multi-device system supports 1..16 devices");

    // Parallel partitioning (DESIGN.md Sec. 10): the switch and
    // every generator get their own domain; the kernel side of the
    // fabric stays in domain 0.
    const bool want_parallel = base.threads >= 1;
    const bool parallel = want_parallel && linksCuttable(base);
    if (want_parallel && !parallel) {
        warn("multi-device system: parallel mode requested but "
             "faulty/NAK links cannot span domains; running "
             "single-queue");
    }
    const Tick quantum =
        std::min(linkLookahead(base, base.upstreamLinkWidth),
                 linkLookahead(base, config.deviceLinkWidth));
    const Tick intx_latency =
        parallel ? std::max(base.intxLatency, quantum)
                 : base.intxLatency;
    // threads == 1 still partitions and runs the engine on one
    // worker: the keyed heap order is then shared with every
    // thread count, which is what makes 1-vs-N output
    // byte-identical (the tier-2 parallel determinism gate).
    const bool partition = parallel;
    const unsigned dom_switch = partition ? sim.addDomain() : 0;
    std::vector<unsigned> dom_gen(config_.numDevices, 0);
    if (partition) {
        for (unsigned i = 0; i < config_.numDevices; ++i)
            dom_gen[i] = sim.addDomain();
    }

    membus_ = std::make_unique<XBar>(sim, "system.membus",
                                     base.membus);
    dram_ = std::make_unique<SimpleMemory>(sim, "system.dram",
                                           base.dram);
    pciHost_ = std::make_unique<PciHost>(sim, "system.pciHost");
    gic_ = std::make_unique<IntController>(sim, "system.gic",
                                           base.gic);

    IOCacheParams ioc = base.ioCache;
    if (ioc.ranges.empty())
        ioc.ranges = {platform::dramRange};
    ioCache_ = std::make_unique<IOCache>(sim, "system.ioCache", ioc);

    RootComplexParams rcp;
    rcp.latency = base.rcLatency;
    rcp.portBufferSize = base.portBufferSize;
    rcp.linkWidth = base.upstreamLinkWidth;
    rcp.linkGen = static_cast<unsigned>(base.gen);
    rootComplex_ = std::make_unique<RootComplex>(sim, "system.rc",
                                                 *pciHost_, rcp);

    PcieSwitchParams swp;
    swp.numDownstreamPorts = config_.numDevices;
    swp.latency = base.switchLatency;
    swp.portBufferSize = base.portBufferSize;
    swp.linkWidth = config_.deviceLinkWidth;
    swp.linkGen = static_cast<unsigned>(base.gen);
    {
        Simulation::DomainScope scope(sim, dom_switch);
        switch_ = std::make_unique<PcieSwitch>(sim, "system.switch",
                                               swp);
    }

    upLink_ = std::make_unique<PcieLink>(
        sim, "system.upLink",
        base.makeLinkParams(base.upstreamLinkWidth, 0));

    kernel_ = std::make_unique<Kernel>(sim, "system.kernel",
                                       *pciHost_, *gic_, *dram_,
                                       base.kernel);

    kernel_->cpuPort().bind(membus_->addSlavePort("cpuSlave"));
    ioCache_->masterPort().bind(membus_->addSlavePort("iocSlave"));
    membus_->addMasterPort("dramMaster").bind(dram_->port());
    membus_->addMasterPort("rcMaster")
        .bind(rootComplex_->upstreamSlavePort());
    rootComplex_->upstreamMasterPort().bind(ioCache_->slavePort());

    rootComplex_->rootPortMaster(0).bind(upLink_->upSlave());
    upLink_->upMaster().bind(rootComplex_->rootPortSlave(0));
    upLink_->downMaster().bind(switch_->upstreamSlavePort());
    switch_->upstreamMasterPort().bind(upLink_->downSlave());

    // Registry: bus 1 = switch upstream VP2P, bus 2 = internal bus
    // (downstream VP2Ps), bus 3+i = device i.
    pciHost_->registerFunction(switch_->upstreamVp2p(), Bdf{1, 0, 0});
    for (unsigned i = 0; i < config_.numDevices; ++i) {
        pciHost_->registerFunction(
            switch_->downstreamVp2p(i),
            Bdf{2, static_cast<std::uint8_t>(i), 0});

        devLinks_.push_back(std::make_unique<PcieLink>(
            sim, "system.devLink" + std::to_string(i),
            base.makeLinkParams(config_.deviceLinkWidth, 1 + i)));
        {
            Simulation::DomainScope scope(sim, dom_gen[i]);
            gens_.push_back(std::make_unique<TrafficGen>(
                sim, "system.tgen" + std::to_string(i),
                config_.gen));
        }

        switch_->downstreamMaster(i).bind(devLinks_[i]->upSlave());
        devLinks_[i]->upMaster().bind(switch_->downstreamSlave(i));
        devLinks_[i]->downMaster().bind(gens_[i]->pioPort());
        gens_[i]->dmaPort().bind(devLinks_[i]->downSlave());

        TrafficGen *gen = gens_[i].get();
        if (intx_latency > 0) {
            gens_[i]->setIntxSink(
                [this, gen, intx_latency](bool asserted) {
                    unsigned line =
                        gen->config().raw8(cfg::interruptLine);
                    sim_.callAt(0, sim_.curTick() + intx_latency,
                                [this, line, asserted] {
                                    gic_->setLevel(line, asserted);
                                });
                });
        } else {
            gens_[i]->setIntxSink([this, gen](bool asserted) {
                gic_->setLevel(
                    gen->config().raw8(cfg::interruptLine),
                    asserted);
            });
        }
        pciHost_->registerFunction(
            *gens_[i], Bdf{static_cast<std::uint8_t>(3 + i), 0, 0});
    }

    // Hand each link interface to its domain's queue and attach the
    // quantum-synchronized engine.
    if (partition) {
        upLink_->setDomains(sim.domainQueue(0),
                            sim.domainQueue(dom_switch));
        for (unsigned i = 0; i < config_.numDevices; ++i) {
            devLinks_[i]->setDomains(sim.domainQueue(dom_switch),
                                     sim.domainQueue(dom_gen[i]));
        }
        sim.setupParallel(base.threads, quantum);
    }
}

MultiDeviceSystem::~MultiDeviceSystem() = default;

void
MultiDeviceSystem::boot()
{
    if (booted_)
        return;
    booted_ = true;
    sim_.initialize();
    kernel_->enumerate();
}

Addr
MultiDeviceSystem::genMmioBase(unsigned i)
{
    boot();
    const EnumeratedFunction *fn =
        kernel_->enumerate().find(gens_.at(i)->bdf());
    panicIf(fn == nullptr || fn->bars.empty(),
            "traffic generator was not enumerated");
    return fn->bars[0].start();
}

double
MultiDeviceSystem::runConcurrentWrites(unsigned active,
                                       unsigned bursts,
                                       std::uint32_t burst_bytes)
{
    boot();
    panicIf(active == 0 || active > config_.numDevices,
            "bad active device count");

    // The level-triggered line re-dispatches the handler every
    // delivery period while the asynchronous DONE read is still in
    // flight; without a pending-read guard the ISR queues a fresh
    // read per dispatch behind the kernel's serialized MMIO queue,
    // which diverges whenever the read round-trip exceeds a few
    // dispatch periods. Guard it the way a real ISR would: at most
    // one outstanding DONE read per device.
    std::vector<bool> done_flags(active, false);
    std::vector<bool> read_pending(active, false);
    Tick start = sim_.curTick();
    for (unsigned i = 0; i < active; ++i) {
        Addr mmio = genMmioBase(i);
        Addr target = kernel_->allocDma(burst_bytes, 4096);
        Kernel &k = *kernel_;
        k.mmioWrite(mmio + tgen::regAddrLo, 4,
                    target & 0xffffffff, [] {});
        k.mmioWrite(mmio + tgen::regAddrHi, 4, target >> 32, [] {});
        k.mmioWrite(mmio + tgen::regLength, 4, burst_bytes, [] {});
        k.mmioWrite(mmio + tgen::regCount, 4, bursts, [] {});
        k.mmioWrite(mmio + tgen::regMode, 4, 0, [] {});
        unsigned line = kernel_->enumerate()
                            .find(gens_[i]->bdf())->irqLine;
        k.registerIrqHandler(line, [this, i, mmio, &done_flags,
                                    &read_pending] {
            // ISR: read DONE (deasserts INTx), flag completion.
            if (read_pending[i] || done_flags[i])
                return;
            read_pending[i] = true;
            kernel_->mmioRead(mmio + tgen::regDone, 4,
                              [i, &done_flags,
                               &read_pending](std::uint64_t) {
                read_pending[i] = false;
                done_flags[i] = true;
            });
        });
        k.mmioWrite(mmio + tgen::regCtrl, 4, tgen::ctrlStart, [] {});
    }
    sim_.run();
    unsigned completed = 0;
    for (bool f : done_flags)
        completed += f ? 1 : 0;
    fatalIf(completed != active,
            "concurrent run did not complete (", completed, " of ",
            active, ")");

    Tick elapsed = sim_.curTick() - start;
    double bytes = static_cast<double>(active) * bursts * burst_bytes;
    return bytes * 8.0 / ticksToSeconds(elapsed) / 1e9;
}

} // namespace pciesim
