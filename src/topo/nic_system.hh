/**
 * @file
 * The Table II topology: a gem5-style NIC model connected directly
 * to a root complex root port ("we connect a gem5 NIC model to a
 * root port and sweep the root complex latency", paper Sec. VI-B),
 * plus an Ethernet wire so two NICs (or a loopback) can exchange
 * frames for the networking examples.
 */

#ifndef PCIESIM_TOPO_NIC_SYSTEM_HH
#define PCIESIM_TOPO_NIC_SYSTEM_HH

#include <memory>
#include <vector>

#include "dev/ether_wire.hh"
#include "dev/nic_8254x.hh"
#include "os/e1000e_driver.hh"
#include "os/mmio_probe.hh"
#include "pci/pci_host.hh"
#include "topo/system_config.hh"

namespace pciesim
{

/** Configuration for a NicSystem on top of the common knobs. */
struct NicSystemConfig
{
    SystemConfig base;
    NicParams nic;
    E1000eDriverParams driver;
    EtherWireParams wire;
    /** Attach a second NIC on root port 1 (else loopback wire). */
    bool twoNics = false;
    /** Link width for the NIC links. */
    unsigned nicLinkWidth = 1;
};

/**
 * The networking topology (paper Sec. VI-C): an 8254x NIC endpoint
 * with its driver, an Ethernet wire (loopback or NIC-to-NIC), and
 * DMA traffic through the root complex.
 */
class NicSystem
{
  public:
    NicSystem(Simulation &sim, const NicSystemConfig &config);
    ~NicSystem();

    /** Run enumeration and driver probing, then let the timed
     *  probe/config sequence finish. */
    void boot();

    Simulation &sim() { return sim_; }
    Kernel &kernel() { return *kernel_; }
    Nic8254xPcie &nic(unsigned i = 0);
    E1000eDriver &driver(unsigned i = 0);
    RootComplex &rootComplex() { return *rootComplex_; }
    EtherWire &wire() { return *wire_; }
    PciHost &pciHost() { return *pciHost_; }
    IntController &gic() { return *gic_; }

    /** All instantiated links, for generic per-link stats. */
    std::vector<PcieLink *>
    links()
    {
        std::vector<PcieLink *> out;
        for (const auto &link : links_) {
            if (link)
                out.push_back(link.get());
        }
        return out;
    }

    /** BAR0 base of NIC @p i (valid after boot). */
    Addr nicMmioBase(unsigned i = 0);

    /** Run the Table II measurement: mean 4-byte MMIO read latency
     *  of a NIC register over @p iterations reads. */
    Tick measureMmioReadLatency(unsigned iterations = 100);

  private:
    Simulation &sim_;
    NicSystemConfig config_;

    std::unique_ptr<XBar> membus_;
    std::unique_ptr<SimpleMemory> dram_;
    std::unique_ptr<PciHost> pciHost_;
    std::unique_ptr<IntController> gic_;
    std::unique_ptr<IOCache> ioCache_;
    std::unique_ptr<RootComplex> rootComplex_;
    std::unique_ptr<PcieLink> links_[2];
    std::unique_ptr<Nic8254xPcie> nics_[2];
    std::unique_ptr<E1000eDriver> drivers_[2];
    std::unique_ptr<EtherWire> wire_;
    std::unique_ptr<Kernel> kernel_;
    bool booted_ = false;
};

} // namespace pciesim

#endif // PCIESIM_TOPO_NIC_SYSTEM_HH
