/**
 * @file
 * The Table II topology: a gem5-style NIC model connected directly
 * to a root complex root port ("we connect a gem5 NIC model to a
 * root port and sweep the root complex latency", paper Sec. VI-B),
 * plus an Ethernet wire so two NICs (or a loopback) can exchange
 * frames for the networking examples. A thin wrapper over the
 * declarative fabric builder (see examples/topologies/nic.json).
 */

#ifndef PCIESIM_TOPO_NIC_SYSTEM_HH
#define PCIESIM_TOPO_NIC_SYSTEM_HH

#include <vector>

#include "topo/fabric_builder.hh"

namespace pciesim
{

/** Configuration for a NicSystem on top of the common knobs. */
struct NicSystemConfig
{
    SystemConfig base;
    NicParams nic;
    E1000eDriverParams driver;
    EtherWireParams wire;
    /** Attach a second NIC on root port 1 (else loopback wire). */
    bool twoNics = false;
    /** Link width for the NIC links. */
    unsigned nicLinkWidth = 1;
};

/**
 * The networking topology (paper Sec. VI-C): an 8254x NIC endpoint
 * with its driver, an Ethernet wire (loopback or NIC-to-NIC), and
 * DMA traffic through the root complex.
 */
class NicSystem
{
  public:
    NicSystem(Simulation &sim, const NicSystemConfig &config);
    ~NicSystem();

    /** Run enumeration and driver probing, then let the timed
     *  probe/config sequence finish. */
    void boot() { fabric_.boot(); }

    Simulation &sim() { return fabric_.sim(); }
    Kernel &kernel() { return fabric_.kernel(); }
    Nic8254xPcie &nic(unsigned i = 0) { return fabric_.nic(i); }
    E1000eDriver &
    driver(unsigned i = 0)
    {
        return fabric_.nicDriver(i);
    }
    RootComplex &rootComplex() { return fabric_.rootComplex(); }
    EtherWire &wire() { return fabric_.wire(0); }
    PciHost &pciHost() { return fabric_.pciHost(); }
    IntController &gic() { return fabric_.gic(); }
    /** The underlying declarative fabric. */
    Fabric &fabric() { return fabric_; }

    /** All instantiated links, for generic per-link stats. */
    std::vector<PcieLink *> links() { return fabric_.links(); }

    /** BAR0 base of NIC @p i (valid after boot). */
    Addr nicMmioBase(unsigned i = 0)
    {
        return fabric_.nicMmioBase(i);
    }

    /** Run the Table II measurement: mean 4-byte MMIO read latency
     *  of a NIC register over @p iterations reads. */
    Tick
    measureMmioReadLatency(unsigned iterations = 100)
    {
        return fabric_.measureMmioReadLatency(iterations);
    }

    /** The description this class instantiates; also the reference
     *  for examples/topologies/nic.json. */
    static FabricDesc makeDesc(const NicSystemConfig &config);

  private:
    Fabric fabric_;
};

} // namespace pciesim

#endif // PCIESIM_TOPO_NIC_SYSTEM_HH
