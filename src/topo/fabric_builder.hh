/**
 * @file
 * Declarative topology layer (DESIGN.md Sec. 13): a FabricDesc
 * describes a whole system — root complex, switch tree, endpoints,
 * per-link gen/width/BER/buffer overrides, per-device knobs — and
 * Fabric instantiates it from the existing device, switch, and link
 * objects, wiring one event-queue domain per link so `--threads N`
 * partitioning applies to any shape automatically.
 *
 * Descriptions come from C++ (the four legacy system classes are
 * thin wrappers that build one) or from JSON files under
 * examples/topologies/ (see parseFabricDesc / loadFabricDesc and
 * the schema reference in examples/topologies/SCHEMA.md).
 *
 * This header is the sanctioned registration surface between the
 * topo layer and the dev layer: topo code reaches device types
 * through it rather than including dev/ headers directly (enforced
 * by pciesim_analyze's topo-dev-include rule).
 */

#ifndef PCIESIM_TOPO_FABRIC_BUILDER_HH
#define PCIESIM_TOPO_FABRIC_BUILDER_HH

#include <memory>
#include <string>
#include <vector>

#include "dev/ether_wire.hh"
#include "dev/nic_8254x.hh"
#include "dev/traffic_gen.hh"
#include "mem/bridge.hh"
#include "os/aer_handler.hh"
#include "os/e1000e_driver.hh"
#include "pci/pci_host.hh"
#include "pcie/err_reporter.hh"
#include "sim/stats_dumper.hh"
#include "sim/stats_sampler.hh"
#include "topo/system_config.hh"
#include "topo/topo_parser.hh"

namespace pciesim
{

/**
 * Per-link overrides of one node's upstream link. Zero /
 * negative values inherit the SystemConfig defaults.
 */
struct FabricLinkDesc
{
    /** Instance name ("" -> "<node>Link"); "system." prefixed. */
    std::string name;
    /** Lane count (0: role default — upstreamLinkWidth for switch
     *  links, downstreamLinkWidth for endpoint links). */
    unsigned width = 0;
    /** Generation 1..5 (0: SystemConfig::gen). */
    int gen = 0;
    /** Per-link bit error rate (< 0: SystemConfig value). */
    double bitErrorRate = -1.0;
    /** Replay buffer entries (0: SystemConfig value). */
    std::size_t replayBufferSize = 0;
};

/** One device or switch of the fabric tree. */
struct FabricNodeDesc
{
    /** Instance name, unique; "system." prefixed; "rc" reserved. */
    std::string name;
    /** "switch", "ide_disk", "traffic_gen", or "nic". */
    std::string kind;
    /** Name of the parent switch, or "rc" for a root port. Parents
     *  must be declared before their children. */
    std::string parent = "rc";
    /** The link from the parent port down to this node. */
    FabricLinkDesc link;
    /** switch: downstream port count (0: switchDownstreamPorts). */
    unsigned ports = 0;
    /** switch: forwarding latency in ticks (0: switchLatency). */
    Tick latency = 0;
    /** switch: per-port buffer depth (0: portBufferSize). */
    std::size_t portBufferSize = 0;
    /** nic: Ethernet wire group; NICs sharing a group share one
     *  wire (at most two) and one event-queue domain. */
    std::string wire = "wire";
    /** @{ Per-device knob overrides (negative: inherit). */
    /** ide_disk: DMA chunk size in bytes. */
    long chunkSize = -1;
    /** ide_disk: media access latency in nanoseconds. */
    double mediaLatencyNs = -1.0;
    /** traffic_gen: gap between bursts in nanoseconds. */
    double interBurstGapNs = -1.0;
    /** traffic_gen: posted (response-less) DMA writes (0/1). */
    int postedWrites = -1;
    /** nic: per-descriptor processing time in nanoseconds. */
    double descProcessingNs = -1.0;
    /** nic: writable MSI enable (0/1). */
    int allowMsi = -1;
    /** @} */
    /** Source line for error context (0: built from C++). */
    unsigned sourceLine = 0;
};

/** A complete declarative system description. */
struct FabricDesc
{
    /** Input name cited by error messages. */
    std::string source = "<desc>";
    /** "pcie" (root complex + links) or "legacy-io" (the flat
     *  IOBus baseline the paper improves on). */
    std::string style = "pcie";
    /** Register functions with the PCI host and allow boot().
     *  False skips registration for fabrics beyond the 256-bus
     *  enumeration ceiling; such fabrics hold only switches and
     *  posted-write traffic generators and are driven through
     *  runDirectWrites(). */
    bool enumerate = true;
    /** Register the system.replayFraction / timeoutFraction
     *  dump-time formulas over all link device-side interfaces. */
    bool systemStats = false;
    /** Common knobs; per-node fields override selectively. */
    SystemConfig config;
    /** @{ Defaults for device kinds instantiated by nodes. */
    TrafficGenParams gen;
    NicParams nic;
    E1000eDriverParams nicDriver;
    EtherWireParams wire;
    /** @} */
    /** The tree, in declaration order (parents first). */
    std::vector<FabricNodeDesc> nodes;
};

/**
 * Validate and convert a parsed topology document into a
 * FabricDesc. Unknown keys, bad types, out-of-range values,
 * duplicate names, and unresolvable parents are fatal() errors
 * citing @p source and the offending line.
 */
FabricDesc parseFabricDesc(const topo::Json &root,
                           const std::string &source);

/** Load a topology JSON file into a FabricDesc. */
FabricDesc loadFabricDesc(const std::string &path);

/**
 * A constructed system: owns every object the description named,
 * plus the substrate (memory bus, DRAM, PCI host, interrupt
 * controller, IO cache, kernel, and — in pcie style — the root
 * complex). Stats, golden dumps, and parallel partitioning behave
 * exactly as the legacy hand-coded topologies did; the four legacy
 * classes are wrappers over this builder.
 */
class Fabric
{
  public:
    Fabric(Simulation &sim, const FabricDesc &desc);
    ~Fabric();

    /** Run enumeration and driver probing (enumerable only). */
    void boot();

    /** @{ Substrate access. */
    Simulation &sim() { return sim_; }
    Kernel &kernel() { return *kernel_; }
    PciHost &pciHost() { return *pciHost_; }
    IntController &gic() { return *gic_; }
    SimpleMemory &dram() { return *dram_; }
    IOCache &ioCache() { return *ioCache_; }
    /** The root complex; pcie style only. */
    RootComplex &rootComplex();
    /** @} */

    /** @{ Fabric objects, in declaration order per kind. */
    unsigned numSwitches() const;
    PcieSwitch &pcieSwitch(unsigned i = 0);
    std::vector<PcieLink *> links() const;
    PcieLink &link(unsigned i);
    /** Link lookup by instance name (without "system." prefix);
     *  null when absent. */
    PcieLink *findLink(const std::string &name);
    unsigned numDisks() const;
    IdeDisk &disk(unsigned i = 0);
    IdeDriver &ideDriver(unsigned i = 0);
    unsigned numTrafficGens() const;
    TrafficGen &trafficGen(unsigned i = 0);
    unsigned numNics() const;
    Nic8254xPcie &nic(unsigned i = 0);
    E1000eDriver &nicDriver(unsigned i = 0);
    EtherWire &wire(unsigned i = 0);
    /** @} */

    /** @{ Observability objects (null unless configured). */
    StatsSampler *sampler() { return sampler_.get(); }
    StatsDumper *dumper() { return dumper_.get(); }
    ErrReporter *errReporter() { return errReporter_.get(); }
    AerHandler *aerHandler() { return aerHandler_.get(); }
    /** @} */

    /** Write the full registry as stats.json to @p path. */
    void exportStatsJson(const std::string &path);

    /** @{ Canonical workloads (see the legacy system classes). */
    /** dd through the first IDE disk; returns goodput in Gbit/s. */
    double runDd(const DdWorkloadParams &dd);
    /** Program and start @p active traffic generators over kernel
     *  MMIO; returns aggregate goodput in Gbit/s. */
    double runConcurrentWrites(unsigned active, unsigned bursts,
                               std::uint32_t burst_bytes);
    /** Mean 4-byte MMIO read latency of NIC 0's STATUS register. */
    Tick measureMmioReadLatency(unsigned iterations = 100);
    /**
     * Drive every traffic generator directly (no enumeration, no
     * kernel MMIO): each DMA-writes @p bursts bursts of
     * @p burst_bytes into its own DRAM region. The only workload
     * available beyond the 256-bus enumeration ceiling.
     * @return aggregate goodput in Gbit/s.
     */
    double runDirectWrites(std::uint32_t bursts,
                           std::uint32_t burst_bytes);
    /** @} */

    /** Whether buildPcie() cut the fabric into link domains
     *  (--threads honored; see sim().numDomains() / engine() for
     *  the partition itself). */
    bool partitioned() const { return partitioned_; }

    /** BAR0 base of traffic generator @p i (valid after boot). */
    Addr genMmioBase(unsigned i);
    /** BAR0 base of NIC @p i (valid after boot). */
    Addr nicMmioBase(unsigned i);

    /** @{ Paper Sec. VI-B readouts on disk 0's uplink. */
    double diskUplinkReplayFraction();
    std::uint64_t diskUplinkTimeouts();
    /** @} */

  private:
    /** Constructed state of one description node. */
    struct Node
    {
        FabricNodeDesc desc;
        int parentIndex = -1;    //!< -1: attached to the rc
        unsigned portOnParent = 0;
        unsigned depth = 1;      //!< 1 = below a root port
        unsigned domain = 0;
        PcieLink *link = nullptr;
        PcieSwitch *sw = nullptr;
        PciDevice *dev = nullptr;
        unsigned ports = 0;      //!< switch: resolved port count
        Bdf bdf{0, 0, 0};        //!< endpoint / switch upstream
        unsigned internalBus = 0; //!< switch: downstream VP2P bus
    };

    [[noreturn]] void failNode(const FabricNodeDesc &n,
                               const std::string &what);
    void validate();
    void buildPcie();
    void buildLegacyIo();
    void buildObservability();
    void wireAer();
    void registerTree();
    void auditConfig();
    void installIntxSink(PciDevice &dev, Tick intx_latency);
    unsigned effLinkWidth(const FabricNodeDesc &n) const;
    PcieGen effLinkGen(const FabricNodeDesc &n) const;
    double effLinkBer(const FabricNodeDesc &n) const;
    /** Deepest switch owning a downstream port routing @p bus. */
    PcieSwitch *containingSwitch(unsigned bus, int &port);

    Simulation &sim_;
    FabricDesc desc_;

    std::vector<Node> nodes_;
    std::vector<int> rootChildren_;  //!< node index per root port
    std::vector<unsigned> switchIdx_; //!< node idx of switch i
    std::vector<unsigned> diskIdx_;
    std::vector<unsigned> genIdx_;
    std::vector<unsigned> nicIdx_;
    bool partitioned_ = false;
    bool booted_ = false;
    /** @{ Knob-audit state (see auditConfig). */
    bool usedUpstreamWidth_ = false;
    bool usedDownstreamWidth_ = false;
    bool usedSwitchPorts_ = false;
    /** @} */

    std::unique_ptr<XBar> membus_;
    std::unique_ptr<XBar> iobus_;    //!< legacy-io only
    std::unique_ptr<Bridge> bridge_; //!< legacy-io only
    std::unique_ptr<SimpleMemory> dram_;
    std::unique_ptr<PciHost> pciHost_;
    std::unique_ptr<IntController> gic_;
    std::unique_ptr<IOCache> ioCache_;
    std::unique_ptr<RootComplex> rootComplex_;
    std::unique_ptr<Kernel> kernel_;
    std::vector<std::unique_ptr<EtherWire>> wires_;
    std::vector<std::unique_ptr<PcieLink>> links_;
    std::vector<std::unique_ptr<PcieSwitch>> switches_;
    std::vector<std::unique_ptr<IdeDisk>> disks_;
    std::vector<std::unique_ptr<TrafficGen>> gens_;
    std::vector<std::unique_ptr<Nic8254xPcie>> nics_;
    std::vector<std::unique_ptr<IdeDriver>> ideDrivers_;
    std::vector<std::unique_ptr<E1000eDriver>> nicDrivers_;
    std::unique_ptr<StatsSampler> sampler_;
    std::unique_ptr<StatsDumper> dumper_;
    std::unique_ptr<ErrReporter> errReporter_;
    std::unique_ptr<AerHandler> aerHandler_;
    /** @{ System-level dump-time formulas (stats v2). */
    stats::Formula replayFraction_;
    stats::Formula timeoutFraction_;
    /** @} */
    /** @{ Fabric roll-up over every link (DESIGN.md §14):
     *  utilization spread and credit-stall pressure, feeding
     *  pciesim-report's scaling diagnosis. */
    stats::Formula fabricLinks_;
    stats::Formula fabricMeanWireUtil_;
    stats::Formula fabricMaxWireUtil_;
    stats::Formula fabricCreditStallTicks_;
    stats::Formula fabricStalledIfs_;
    /** @} */
};

} // namespace pciesim

#endif // PCIESIM_TOPO_FABRIC_BUILDER_HH
