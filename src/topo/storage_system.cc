#include "storage_system.hh"

#include <algorithm>
#include <array>
#include <fstream>

#include "pci/config_regs.hh"
#include "pci/platform.hh"
#include "sim/trace.hh"

namespace pciesim
{

StorageSystem::StorageSystem(Simulation &sim,
                             const SystemConfig &config)
    : sim_(sim), config_(config)
{
    trace::applyConfig(config.traceFlags, config.traceOut);
    Packet::resetIds();

    // Parallel partitioning (DESIGN.md Sec. 10): cut the fabric at
    // its two links when requested and safe. threads == 1 keeps the
    // single legacy queue (the degenerate partition); the knob then
    // only selects the parallel-mode INTx wire model, which is the
    // same for every thread count.
    const bool want_parallel = config.threads >= 1;
    const bool parallel = want_parallel && linksCuttable(config) &&
                          config.statsSampleInterval == 0 &&
                          config.statsDumpInterval == 0;
    if (want_parallel && !parallel) {
        const char *reason =
            config.linkBitErrorRate > 0.0
                ? "link fault injection (BER > 0)"
            : config.enableNak ? "NAK protocol emulation"
            : config.aerEnabled ? "AER error reporting"
            : config.degradeThreshold > 0 ? "link degradation"
            : config.unplugAtChunk > 0
                ? "scripted surprise hot-unplug"
            : config.statsSampleInterval > 0
                ? "periodic stats sampling"
                : "periodic stats dump epochs";
        // pciesim-analyze: single-threaded: construction runs
        // before any worker threads exist
        static bool warnedFallback = false;
        if (!warnedFallback) {
            warnedFallback = true;
            warn("storage system: --threads requested but ", reason,
                 " pins the fabric to one event-queue domain; "
                 "running single-queue");
        }
    }
    const Tick quantum =
        std::min(linkLookahead(config, config.upstreamLinkWidth),
                 linkLookahead(config, config.downstreamLinkWidth));
    const Tick intx_latency =
        parallel ? std::max(config.intxLatency, quantum)
                 : config.intxLatency;
    // threads == 1 still partitions and runs the engine on one
    // worker: the keyed heap order is then shared with every
    // thread count, which is what makes 1-vs-N output
    // byte-identical (the tier-2 parallel determinism gate).
    const bool partition = parallel;
    const unsigned dom_switch = partition ? sim.addDomain() : 0;
    const unsigned dom_disk = partition ? sim.addDomain() : 0;

    membus_ = std::make_unique<XBar>(sim, "system.membus",
                                     config.membus);
    dram_ = std::make_unique<SimpleMemory>(sim, "system.dram",
                                           config.dram);
    pciHost_ = std::make_unique<PciHost>(sim, "system.pciHost");
    gic_ = std::make_unique<IntController>(sim, "system.gic",
                                           config.gic);

    IOCacheParams ioc = config.ioCache;
    if (ioc.ranges.empty())
        ioc.ranges = {platform::dramRange};
    ioCache_ = std::make_unique<IOCache>(sim, "system.ioCache", ioc);

    RootComplexParams rcp;
    rcp.latency = config.rcLatency;
    rcp.portBufferSize = config.portBufferSize;
    rcp.linkWidth = config.upstreamLinkWidth;
    rcp.linkGen = static_cast<unsigned>(config.gen);
    rootComplex_ = std::make_unique<RootComplex>(sim, "system.rc",
                                                 *pciHost_, rcp);

    PcieSwitchParams swp;
    swp.numDownstreamPorts = config.switchDownstreamPorts;
    swp.latency = config.switchLatency;
    swp.portBufferSize = config.portBufferSize;
    swp.linkWidth = config.downstreamLinkWidth;
    swp.linkGen = static_cast<unsigned>(config.gen);
    swp.enableContainment = config.aerEnabled;
    {
        Simulation::DomainScope scope(sim, dom_switch);
        switch_ = std::make_unique<PcieSwitch>(sim, "system.switch",
                                               swp);
    }

    upLink_ = std::make_unique<PcieLink>(
        sim, "system.upLink",
        config.makeLinkParams(config.upstreamLinkWidth, 0));
    downLink_ = std::make_unique<PcieLink>(
        sim, "system.downLink",
        config.makeLinkParams(config.downstreamLinkWidth, 1));

    IdeDiskParams dkp = config.disk;
    if (config.completionTimeout > 0)
        dkp.dmaCompletionTimeout = config.completionTimeout;
    if (config.unplugAtChunk > 0)
        dkp.unplugAtChunk = config.unplugAtChunk;
    dkp.replugDelay = config.replugDelay;
    {
        Simulation::DomainScope scope(sim, dom_disk);
        disk_ = std::make_unique<IdeDisk>(sim, "system.disk", dkp);
    }
    KernelParams kp = config.kernel;
    if (config.completionTimeout > 0)
        kp.completionTimeout = config.completionTimeout;
    kernel_ = std::make_unique<Kernel>(sim, "system.kernel",
                                       *pciHost_, *gic_, *dram_,
                                       kp);
    IdeDriverParams drvp = config.ideDriver;
    if (config.aerEnabled)
        drvp.trackRecovery = true;
    ideDriver_ = std::make_unique<IdeDriver>(drvp);

    //
    // Wiring (paper Fig. 6 + Sec. VI-A).
    //

    // MemBus: CPU and IOCache in, DRAM and root complex out.
    kernel_->cpuPort().bind(membus_->addSlavePort("cpuSlave"));
    ioCache_->masterPort().bind(membus_->addSlavePort("iocSlave"));
    membus_->addMasterPort("dramMaster").bind(dram_->port());
    membus_->addMasterPort("rcMaster")
        .bind(rootComplex_->upstreamSlavePort());

    // DMA path: root complex -> IOCache -> MemBus.
    rootComplex_->upstreamMasterPort().bind(ioCache_->slavePort());

    // Root port 0 <-> x4 link <-> switch upstream port.
    rootComplex_->rootPortMaster(0).bind(upLink_->upSlave());
    upLink_->upMaster().bind(rootComplex_->rootPortSlave(0));
    upLink_->downMaster().bind(switch_->upstreamSlavePort());
    switch_->upstreamMasterPort().bind(upLink_->downSlave());

    // Switch downstream port 0 <-> x1 link <-> disk.
    switch_->downstreamMaster(0).bind(downLink_->upSlave());
    downLink_->upMaster().bind(switch_->downstreamSlave(0));
    downLink_->downMaster().bind(disk_->pioPort());
    disk_->dmaPort().bind(downLink_->downSlave());

    // Hand each link interface to its domain's queue and attach the
    // quantum-synchronized engine.
    if (partition) {
        upLink_->setDomains(sim.domainQueue(0),
                            sim.domainQueue(dom_switch));
        downLink_->setDomains(sim.domainQueue(dom_switch),
                              sim.domainQueue(dom_disk));
        sim.setupParallel(config.threads, quantum);
    }

    // Legacy interrupt: the disk asserts whatever line enumeration
    // programmed into its Interrupt Line register. With a modeled
    // INTx wire latency the level change is posted onto the host
    // domain's queue; the line number is read at assert time in the
    // disk's own domain, as in the direct path.
    if (intx_latency > 0) {
        disk_->setIntxSink([this, intx_latency](bool asserted) {
            unsigned line =
                disk_->config().raw8(cfg::interruptLine);
            sim_.callAt(0, sim_.curTick() + intx_latency,
                        [this, line, asserted] {
                            gic_->setLevel(line, asserted);
                        });
        });
    } else {
        disk_->setIntxSink([this](bool asserted) {
            gic_->setLevel(disk_->config().raw8(cfg::interruptLine),
                           asserted);
        });
    }

    //
    // PCI registry. The root complex registered its VP2Ps on bus 0
    // (devices 0..2). The depth-first enumeration then assigns:
    // bus 1 = below root port 0 (the switch upstream VP2P), bus 2 =
    // the switch internal bus (downstream VP2Ps), bus 3 = below
    // switch downstream port 0 (the disk), bus 4.. = the remaining
    // empty downstream ports / root ports.
    //
    pciHost_->registerFunction(switch_->upstreamVp2p(), Bdf{1, 0, 0});
    for (unsigned i = 0; i < switch_->numDownstreamPorts(); ++i) {
        pciHost_->registerFunction(
            switch_->downstreamVp2p(i),
            Bdf{2, static_cast<std::uint8_t>(i), 0});
    }
    pciHost_->registerFunction(*disk_, Bdf{3, 0, 0});

    kernel_->registerDriver(*ideDriver_);

    //
    // Error containment and recovery (DESIGN.md §12). Constructed
    // only when enabled: every object, stat, and hook below is
    // absent on fault-free configurations, keeping them
    // bit-identical.
    //
    if (config.aerEnabled) {
        errReporter_ = std::make_unique<ErrReporter>(
            sim, "system.errReporter", config.aerMsgLatency);

        // Detecting agents: each link end latches errors into the
        // AER capability of the function fronting it, and unmasked
        // errors ride the reporter to the root as ERR_* messages.
        auto latch = [this](PciFunction &fn, std::uint16_t source,
                            ErrSeverity sev, std::uint32_t bit) {
            if (sev == ErrSeverity::Correctable) {
                if (fn.aer().recordCorrectable(bit)) {
                    errReporter_->report(
                        {ErrSeverity::Correctable, bit, source});
                }
                return;
            }
            std::array<std::uint32_t, 4> hdr{};
            bool is_fatal = false;
            if (fn.aer().recordUncorrectable(bit, hdr, is_fatal)) {
                errReporter_->report({is_fatal ? ErrSeverity::Fatal
                                               : ErrSeverity::NonFatal,
                                      bit, source});
            }
        };
        upLink_->setErrorSink(
            [this, latch](ErrSeverity sev, std::uint32_t bit,
                          bool at_up) {
                if (at_up) {
                    latch(rootComplex_->vp2p(0),
                          static_cast<std::uint16_t>(
                              Bdf{0, 0, 0}.key()), sev, bit);
                } else {
                    latch(switch_->upstreamVp2p(),
                          static_cast<std::uint16_t>(
                              Bdf{1, 0, 0}.key()), sev, bit);
                }
            });
        downLink_->setErrorSink(
            [this, latch](ErrSeverity sev, std::uint32_t bit,
                          bool at_up) {
                if (at_up) {
                    latch(switch_->downstreamVp2p(0),
                          static_cast<std::uint16_t>(
                              Bdf{2, 0, 0}.key()), sev, bit);
                } else {
                    latch(*disk_,
                          static_cast<std::uint16_t>(
                              Bdf{3, 0, 0}.key()), sev, bit);
                }
            });

        // Surprise hot-unplug: the downstream port detects the
        // surprise down; the reported source is the vanished device
        // so containment and recovery target its subtree.
        disk_->setUnplugHook([this, latch] {
            latch(switch_->downstreamVp2p(0),
                  static_cast<std::uint16_t>(Bdf{3, 0, 0}.key()),
                  ErrSeverity::Fatal, cfg::aerUncSurpriseDown);
        });

        // Requester-side completion timeouts become ERR_NONFATAL
        // from the requester's function.
        kernel_->setMmioTimeoutHook([this, latch](bool) {
            latch(rootComplex_->vp2p(0),
                  static_cast<std::uint16_t>(Bdf{0, 0, 0}.key()),
                  ErrSeverity::NonFatal, cfg::aerUncCompletionTimeout);
        });
        disk_->setDmaTimeoutHook([this, latch] {
            latch(*disk_,
                  static_cast<std::uint16_t>(Bdf{3, 0, 0}.key()),
                  ErrSeverity::NonFatal, cfg::aerUncCompletionTimeout);
        });

        // Root-side consumer: latch into the root port's root error
        // status block, contain the failed subtree on FATAL, and
        // interrupt the kernel.
        errReporter_->setSink([this](const ErrMsg &msg) {
            bool irq = rootComplex_->vp2p(0).aer().recordRootError(
                msg.sev, msg.sourceId);
            if (msg.sev == ErrSeverity::Fatal) {
                int port = switch_->downstreamPortForBus(
                    (msg.sourceId >> 8) & 0xff);
                if (port >= 0) {
                    switch_->containDownstreamPort(
                        static_cast<unsigned>(port));
                }
            }
            if (irq)
                gic_->setLevel(config_.aerIrqLine, true);
        });

        // The kernel's AER service: reads and clears the root error
        // status through config cycles, resets the function behind
        // a FATAL error, and coordinates driver recovery.
        AerHandlerParams ahp;
        ahp.irqLine = config.aerIrqLine;
        aerHandler_ = std::make_unique<AerHandler>(
            *kernel_, Bdf{0, 0, 0}, ahp);
        aerHandler_->setIrqAck([this] {
            gic_->setLevel(config_.aerIrqLine, false);
        });
        aerHandler_->setReleaseHook([this](Bdf bdf) {
            int port = switch_->downstreamPortForBus(bdf.bus);
            if (port >= 0) {
                switch_->releaseDownstreamPort(
                    static_cast<unsigned>(port));
            }
        });
        aerHandler_->addClient(ideDriver_.get());
    }

    // Periodic goodput / replay-depth sampler (off by default).
    if (config.statsSampleInterval > 0) {
        sampler_ = std::make_unique<StatsSampler>(
            sim, "system.sampler", config.statsSampleInterval);
        IdeDisk *disk = disk_.get();
        sampler_->addRate("goodputBytesPerSec", [disk] {
            return static_cast<double>(disk->bytesTransferred());
        });
        for (PcieLink *link : links()) {
            LinkInterface *down = &link->downstreamIf();
            LinkInterface *up = &link->upstreamIf();
            sampler_->addGauge(
                link->name() + ".up.replayDepth", [down] {
                    return static_cast<double>(down->replayDepth());
                });
            sampler_->addGauge(
                link->name() + ".down.replayDepth", [up] {
                    return static_cast<double>(up->replayDepth());
                });
        }
    }

    // m5out-style dump/reset stats epochs (off by default; epochs
    // reset counters, see SystemConfig::statsDumpInterval).
    if (config.statsDumpInterval > 0) {
        dumper_ = std::make_unique<StatsDumper>(
            sim, "system.dumper", config.statsDumpInterval,
            config.statsDumpPath);
    }

    // System-level derived stats, replacing the ad-hoc arithmetic
    // the benches used to carry. Same counters, same summation
    // order, so bench output stays bit-identical.
    replayFraction_ = [this] {
        std::uint64_t tx = downLink_->downstreamIf().txTlps() +
                           upLink_->downstreamIf().txTlps();
        std::uint64_t replays =
            downLink_->downstreamIf().replayedTlps() +
            upLink_->downstreamIf().replayedTlps();
        return tx == 0 ? 0.0
                       : static_cast<double>(replays) /
                             static_cast<double>(tx);
    };
    sim.statsRegistry().add(
        "system.replayFraction", &replayFraction_,
        "replayed / transmitted TLPs, device-side interfaces of "
        "both links", stats::Unit::Ratio);
    timeoutFraction_ = [this] {
        std::uint64_t tx = downLink_->downstreamIf().txTlps() +
                           upLink_->downstreamIf().txTlps();
        std::uint64_t timeouts =
            downLink_->downstreamIf().timeouts() +
            upLink_->downstreamIf().timeouts();
        return tx == 0 ? 0.0
                       : static_cast<double>(timeouts) /
                             static_cast<double>(tx);
    };
    sim.statsRegistry().add(
        "system.timeoutFraction", &timeoutFraction_,
        "replay-timer timeouts / transmitted TLPs, device-side "
        "interfaces of both links", stats::Unit::Ratio);
}

StorageSystem::~StorageSystem() = default;

void
StorageSystem::boot()
{
    sim_.initialize();
    kernel_->enumerate();
    kernel_->probeDrivers();
    fatalIf(!ideDriver_->probed(),
            "boot failed: the IDE driver did not probe the disk");
}

double
StorageSystem::runDd(const DdWorkloadParams &dd)
{
    boot();
    DdWorkload workload(*kernel_, *ideDriver_, dd);
    bool done = false;
    workload.run([&done] { done = true; });
    sim_.run();
    fatalIf(!done, "dd did not complete (deadlock?)");
    // Flush the final partial epoch (without resetting, so the
    // caller's end-of-run readouts survive), then export
    // machine-readable stats while the workload is still alive.
    if (dumper_)
        dumper_->dumpEpoch(false);
    if (!config_.statsJsonOut.empty())
        exportStatsJson(config_.statsJsonOut);
    return workload.throughputGbps();
}

void
StorageSystem::exportStatsJson(const std::string &path)
{
    std::ofstream os(path);
    fatalIf(!os, "cannot open stats.json output '", path, "'");
    sim_.statsRegistry().dumpJson(
        os, sim_.curTick(), dumper_ ? dumper_->epochsDumped() : 0);
}

double
StorageSystem::diskUplinkReplayFraction()
{
    const auto &iface = downLink_->downstreamIf();
    std::uint64_t tx = iface.txTlps();
    return tx == 0 ? 0.0
                   : static_cast<double>(iface.replayedTlps()) /
                         static_cast<double>(tx);
}

std::uint64_t
StorageSystem::diskUplinkTimeouts()
{
    return downLink_->downstreamIf().timeouts();
}

} // namespace pciesim
