#include "storage_system.hh"

#include <fstream>

#include "pci/config_regs.hh"
#include "pci/platform.hh"
#include "sim/trace.hh"

namespace pciesim
{

StorageSystem::StorageSystem(Simulation &sim,
                             const SystemConfig &config)
    : sim_(sim), config_(config)
{
    trace::applyConfig(config.traceFlags, config.traceOut);
    Packet::resetIds();

    membus_ = std::make_unique<XBar>(sim, "system.membus",
                                     config.membus);
    dram_ = std::make_unique<SimpleMemory>(sim, "system.dram",
                                           config.dram);
    pciHost_ = std::make_unique<PciHost>(sim, "system.pciHost");
    gic_ = std::make_unique<IntController>(sim, "system.gic",
                                           config.gic);

    IOCacheParams ioc = config.ioCache;
    if (ioc.ranges.empty())
        ioc.ranges = {platform::dramRange};
    ioCache_ = std::make_unique<IOCache>(sim, "system.ioCache", ioc);

    RootComplexParams rcp;
    rcp.latency = config.rcLatency;
    rcp.portBufferSize = config.portBufferSize;
    rcp.linkWidth = config.upstreamLinkWidth;
    rcp.linkGen = static_cast<unsigned>(config.gen);
    rootComplex_ = std::make_unique<RootComplex>(sim, "system.rc",
                                                 *pciHost_, rcp);

    PcieSwitchParams swp;
    swp.numDownstreamPorts = config.switchDownstreamPorts;
    swp.latency = config.switchLatency;
    swp.portBufferSize = config.portBufferSize;
    swp.linkWidth = config.downstreamLinkWidth;
    swp.linkGen = static_cast<unsigned>(config.gen);
    switch_ = std::make_unique<PcieSwitch>(sim, "system.switch", swp);

    upLink_ = std::make_unique<PcieLink>(
        sim, "system.upLink",
        config.makeLinkParams(config.upstreamLinkWidth, 0));
    downLink_ = std::make_unique<PcieLink>(
        sim, "system.downLink",
        config.makeLinkParams(config.downstreamLinkWidth, 1));

    IdeDiskParams dkp = config.disk;
    if (config.completionTimeout > 0)
        dkp.dmaCompletionTimeout = config.completionTimeout;
    disk_ = std::make_unique<IdeDisk>(sim, "system.disk", dkp);
    KernelParams kp = config.kernel;
    if (config.completionTimeout > 0)
        kp.completionTimeout = config.completionTimeout;
    kernel_ = std::make_unique<Kernel>(sim, "system.kernel",
                                       *pciHost_, *gic_, *dram_,
                                       kp);
    ideDriver_ = std::make_unique<IdeDriver>(config.ideDriver);

    //
    // Wiring (paper Fig. 6 + Sec. VI-A).
    //

    // MemBus: CPU and IOCache in, DRAM and root complex out.
    kernel_->cpuPort().bind(membus_->addSlavePort("cpuSlave"));
    ioCache_->masterPort().bind(membus_->addSlavePort("iocSlave"));
    membus_->addMasterPort("dramMaster").bind(dram_->port());
    membus_->addMasterPort("rcMaster")
        .bind(rootComplex_->upstreamSlavePort());

    // DMA path: root complex -> IOCache -> MemBus.
    rootComplex_->upstreamMasterPort().bind(ioCache_->slavePort());

    // Root port 0 <-> x4 link <-> switch upstream port.
    rootComplex_->rootPortMaster(0).bind(upLink_->upSlave());
    upLink_->upMaster().bind(rootComplex_->rootPortSlave(0));
    upLink_->downMaster().bind(switch_->upstreamSlavePort());
    switch_->upstreamMasterPort().bind(upLink_->downSlave());

    // Switch downstream port 0 <-> x1 link <-> disk.
    switch_->downstreamMaster(0).bind(downLink_->upSlave());
    downLink_->upMaster().bind(switch_->downstreamSlave(0));
    downLink_->downMaster().bind(disk_->pioPort());
    disk_->dmaPort().bind(downLink_->downSlave());

    // Legacy interrupt: the disk asserts whatever line enumeration
    // programmed into its Interrupt Line register.
    disk_->setIntxSink([this](bool asserted) {
        gic_->setLevel(disk_->config().raw8(cfg::interruptLine),
                       asserted);
    });

    //
    // PCI registry. The root complex registered its VP2Ps on bus 0
    // (devices 0..2). The depth-first enumeration then assigns:
    // bus 1 = below root port 0 (the switch upstream VP2P), bus 2 =
    // the switch internal bus (downstream VP2Ps), bus 3 = below
    // switch downstream port 0 (the disk), bus 4.. = the remaining
    // empty downstream ports / root ports.
    //
    pciHost_->registerFunction(switch_->upstreamVp2p(), Bdf{1, 0, 0});
    for (unsigned i = 0; i < switch_->numDownstreamPorts(); ++i) {
        pciHost_->registerFunction(
            switch_->downstreamVp2p(i),
            Bdf{2, static_cast<std::uint8_t>(i), 0});
    }
    pciHost_->registerFunction(*disk_, Bdf{3, 0, 0});

    kernel_->registerDriver(*ideDriver_);

    // Periodic goodput / replay-depth sampler (off by default).
    if (config.statsSampleInterval > 0) {
        sampler_ = std::make_unique<StatsSampler>(
            sim, "system.sampler", config.statsSampleInterval);
        IdeDisk *disk = disk_.get();
        sampler_->addRate("goodputBytesPerSec", [disk] {
            return static_cast<double>(disk->bytesTransferred());
        });
        for (PcieLink *link : links()) {
            LinkInterface *down = &link->downstreamIf();
            LinkInterface *up = &link->upstreamIf();
            sampler_->addGauge(
                link->name() + ".up.replayDepth", [down] {
                    return static_cast<double>(down->replayDepth());
                });
            sampler_->addGauge(
                link->name() + ".down.replayDepth", [up] {
                    return static_cast<double>(up->replayDepth());
                });
        }
    }

    // m5out-style dump/reset stats epochs (off by default; epochs
    // reset counters, see SystemConfig::statsDumpInterval).
    if (config.statsDumpInterval > 0) {
        dumper_ = std::make_unique<StatsDumper>(
            sim, "system.dumper", config.statsDumpInterval,
            config.statsDumpPath);
    }

    // System-level derived stats, replacing the ad-hoc arithmetic
    // the benches used to carry. Same counters, same summation
    // order, so bench output stays bit-identical.
    replayFraction_ = [this] {
        std::uint64_t tx = downLink_->downstreamIf().txTlps() +
                           upLink_->downstreamIf().txTlps();
        std::uint64_t replays =
            downLink_->downstreamIf().replayedTlps() +
            upLink_->downstreamIf().replayedTlps();
        return tx == 0 ? 0.0
                       : static_cast<double>(replays) /
                             static_cast<double>(tx);
    };
    sim.statsRegistry().add(
        "system.replayFraction", &replayFraction_,
        "replayed / transmitted TLPs, device-side interfaces of "
        "both links", stats::Unit::Ratio);
    timeoutFraction_ = [this] {
        std::uint64_t tx = downLink_->downstreamIf().txTlps() +
                           upLink_->downstreamIf().txTlps();
        std::uint64_t timeouts =
            downLink_->downstreamIf().timeouts() +
            upLink_->downstreamIf().timeouts();
        return tx == 0 ? 0.0
                       : static_cast<double>(timeouts) /
                             static_cast<double>(tx);
    };
    sim.statsRegistry().add(
        "system.timeoutFraction", &timeoutFraction_,
        "replay-timer timeouts / transmitted TLPs, device-side "
        "interfaces of both links", stats::Unit::Ratio);
}

StorageSystem::~StorageSystem() = default;

void
StorageSystem::boot()
{
    sim_.initialize();
    kernel_->enumerate();
    kernel_->probeDrivers();
    fatalIf(!ideDriver_->probed(),
            "boot failed: the IDE driver did not probe the disk");
}

double
StorageSystem::runDd(const DdWorkloadParams &dd)
{
    boot();
    DdWorkload workload(*kernel_, *ideDriver_, dd);
    bool done = false;
    workload.run([&done] { done = true; });
    sim_.run();
    fatalIf(!done, "dd did not complete (deadlock?)");
    // Flush the final partial epoch (without resetting, so the
    // caller's end-of-run readouts survive), then export
    // machine-readable stats while the workload is still alive.
    if (dumper_)
        dumper_->dumpEpoch(false);
    if (!config_.statsJsonOut.empty())
        exportStatsJson(config_.statsJsonOut);
    return workload.throughputGbps();
}

void
StorageSystem::exportStatsJson(const std::string &path)
{
    std::ofstream os(path);
    fatalIf(!os, "cannot open stats.json output '", path, "'");
    sim_.statsRegistry().dumpJson(
        os, sim_.curTick(), dumper_ ? dumper_->epochsDumped() : 0);
}

double
StorageSystem::diskUplinkReplayFraction()
{
    const auto &iface = downLink_->downstreamIf();
    std::uint64_t tx = iface.txTlps();
    return tx == 0 ? 0.0
                   : static_cast<double>(iface.replayedTlps()) /
                         static_cast<double>(tx);
}

std::uint64_t
StorageSystem::diskUplinkTimeouts()
{
    return downLink_->downstreamIf().timeouts();
}

} // namespace pciesim
