#include "storage_system.hh"

namespace pciesim
{

FabricDesc
StorageSystem::makeDesc(const SystemConfig &config)
{
    FabricDesc desc;
    desc.source = "<storage>";
    desc.systemStats = true;
    desc.config = config;

    FabricNodeDesc sw;
    sw.name = "switch";
    sw.kind = "switch";
    sw.link.name = "upLink";
    desc.nodes.push_back(sw);

    FabricNodeDesc disk;
    disk.name = "disk";
    disk.kind = "ide_disk";
    disk.parent = "switch";
    disk.link.name = "downLink";
    desc.nodes.push_back(disk);
    return desc;
}

StorageSystem::StorageSystem(Simulation &sim,
                             const SystemConfig &config)
    : fabric_(sim, makeDesc(config))
{}

StorageSystem::~StorageSystem() = default;

} // namespace pciesim
