#include "topo_parser.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace pciesim
{

namespace topo
{

const char *
Json::typeName() const
{
    switch (type) {
      case Type::Null:
        return "null";
      case Type::Bool:
        return "bool";
      case Type::Number:
        return "number";
      case Type::String:
        return "string";
      case Type::Array:
        return "array";
      case Type::Object:
      default:
        return "object";
    }
}

namespace
{

/**
 * Recursive-descent reader over one topology document. Tracks the
 * current line so both syntax errors (here) and semantic errors
 * (in the fabric builder, via Json::line) carry file:line context.
 */
class Parser
{
  public:
    Parser(const std::string &text, const std::string &source)
        : text_(text), source_(source)
    {}

    Json
    parse()
    {
        Json root = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return root;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        fatal("topology ", source_, ":", line_, ": ", what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n')
                ++line_;
            if (!std::isspace(static_cast<unsigned char>(c)))
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c, const char *what)
    {
        if (peek() != c)
            fail(what);
        ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parseValue()
    {
        char c = peek();
        Json v;
        v.line = line_;
        if (c == '{')
            parseObject(v);
        else if (c == '[')
            parseArray(v);
        else if (c == '"') {
            v.type = Json::Type::String;
            v.str = parseString();
        } else if (c == '-' ||
                   std::isdigit(static_cast<unsigned char>(c))) {
            parseNumber(v);
        } else if (literal("true")) {
            v.type = Json::Type::Bool;
            v.boolean = true;
        } else if (literal("false")) {
            v.type = Json::Type::Bool;
            v.boolean = false;
        } else if (literal("null")) {
            v.type = Json::Type::Null;
        } else {
            fail("unexpected character");
        }
        return v;
    }

    void
    parseObject(Json &out)
    {
        out.type = Json::Type::Object;
        expect('{', "expected '{'");
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            if (peek() != '"')
                fail("expected object key");
            unsigned key_line = line_;
            std::string key = parseString();
            if (out.find(key) != nullptr) {
                line_ = key_line;
                fail("duplicate key '" + key + "'");
            }
            expect(':', "expected ':' after object key");
            out.obj.emplace_back(std::move(key), parseValue());
            char c = peek();
            ++pos_;
            if (c == '}')
                return;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    void
    parseArray(Json &out)
    {
        out.type = Json::Type::Array;
        expect('[', "expected '['");
        if (peek() == ']') {
            ++pos_;
            return;
        }
        while (true) {
            out.arr.push_back(parseValue());
            char c = peek();
            ++pos_;
            if (c == ']')
                return;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"', "expected '\"'");
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\n')
                fail("unterminated string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated string escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              default:
                fail("unsupported string escape (topology files "
                     "are plain ASCII)");
            }
        }
        fail("unterminated string");
    }

    void
    parseNumber(Json &out)
    {
        std::size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        std::size_t digits = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == digits)
            fail("bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            std::size_t frac = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ == frac)
                fail("bad number fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            std::size_t exp = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ == exp)
                fail("bad number exponent");
        }
        out.type = Json::Type::Number;
        out.number = std::strtod(text_.c_str() + start, nullptr);
    }

    const std::string &text_;
    std::string source_;
    std::size_t pos_ = 0;
    unsigned line_ = 1;
};

} // namespace

Json
parseJson(const std::string &text, const std::string &source)
{
    return Parser(text, source).parse();
}

Json
loadJsonFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in.good(), "topology ", path, ": cannot open file");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseJson(ss.str(), path);
}

} // namespace topo

} // namespace pciesim
