#include "nic_system.hh"

#include <string>

namespace pciesim
{

FabricDesc
NicSystem::makeDesc(const NicSystemConfig &config)
{
    FabricDesc desc;
    desc.source = "<nic>";
    desc.config = config.base;
    desc.nic = config.nic;
    desc.nicDriver = config.driver;
    desc.wire = config.wire;

    unsigned num_nics = config.twoNics ? 2 : 1;
    for (unsigned i = 0; i < num_nics; ++i) {
        FabricNodeDesc nic;
        nic.name = "nic" + std::to_string(i);
        nic.kind = "nic";
        nic.link.name = "nicLink" + std::to_string(i);
        nic.link.width = config.nicLinkWidth;
        desc.nodes.push_back(nic);
    }
    return desc;
}

NicSystem::NicSystem(Simulation &sim, const NicSystemConfig &config)
    : fabric_(sim, makeDesc(config))
{}

NicSystem::~NicSystem() = default;

} // namespace pciesim
