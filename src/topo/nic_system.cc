#include "nic_system.hh"

#include <algorithm>
#include <string>

#include "pci/config_regs.hh"
#include "pci/platform.hh"
#include "sim/trace.hh"

namespace pciesim
{

NicSystem::NicSystem(Simulation &sim, const NicSystemConfig &config)
    : sim_(sim), config_(config)
{
    const SystemConfig &base = config.base;
    trace::applyConfig(base.traceFlags, base.traceOut);
    Packet::resetIds();

    // Parallel partitioning (DESIGN.md Sec. 10): both NICs and the
    // Ethernet wire between them form one device domain (the wire
    // models no latency, so the NICs cannot be cut apart); the
    // kernel side stays in domain 0 and the NIC links are the cut.
    const bool want_parallel = base.threads >= 1;
    const bool parallel = want_parallel && linksCuttable(base) &&
                          base.statsSampleInterval == 0 &&
                          base.statsDumpInterval == 0;
    if (want_parallel && !parallel) {
        warn("nic system: parallel mode requested but the "
             "configuration pins the fabric to one domain (faults, "
             "NAK, or periodic stats); running single-queue");
    }
    const Tick quantum = linkLookahead(base, config.nicLinkWidth);
    const Tick intx_latency =
        parallel ? std::max(base.intxLatency, quantum)
                 : base.intxLatency;
    // threads == 1 still partitions and runs the engine on one
    // worker: the keyed heap order is then shared with every
    // thread count, which is what makes 1-vs-N output
    // byte-identical (the tier-2 parallel determinism gate).
    const bool partition = parallel;
    const unsigned dom_dev = partition ? sim.addDomain() : 0;

    membus_ = std::make_unique<XBar>(sim, "system.membus",
                                     base.membus);
    dram_ = std::make_unique<SimpleMemory>(sim, "system.dram",
                                           base.dram);
    pciHost_ = std::make_unique<PciHost>(sim, "system.pciHost");
    gic_ = std::make_unique<IntController>(sim, "system.gic",
                                           base.gic);

    IOCacheParams ioc = base.ioCache;
    if (ioc.ranges.empty())
        ioc.ranges = {platform::dramRange};
    ioCache_ = std::make_unique<IOCache>(sim, "system.ioCache", ioc);

    RootComplexParams rcp;
    rcp.latency = base.rcLatency;
    rcp.portBufferSize = base.portBufferSize;
    rcp.linkWidth = config.nicLinkWidth;
    rcp.linkGen = static_cast<unsigned>(base.gen);
    rootComplex_ = std::make_unique<RootComplex>(sim, "system.rc",
                                                 *pciHost_, rcp);

    kernel_ = std::make_unique<Kernel>(sim, "system.kernel",
                                       *pciHost_, *gic_, *dram_,
                                       base.kernel);

    {
        Simulation::DomainScope scope(sim, dom_dev);
        wire_ = std::make_unique<EtherWire>(sim, "system.wire",
                                            config.wire);
    }

    kernel_->cpuPort().bind(membus_->addSlavePort("cpuSlave"));
    ioCache_->masterPort().bind(membus_->addSlavePort("iocSlave"));
    membus_->addMasterPort("dramMaster").bind(dram_->port());
    membus_->addMasterPort("rcMaster")
        .bind(rootComplex_->upstreamSlavePort());
    membus_->addMasterPort("msiMaster").bind(gic_->msiPort());
    rootComplex_->upstreamMasterPort().bind(ioCache_->slavePort());

    unsigned num_nics = config.twoNics ? 2 : 1;
    for (unsigned i = 0; i < num_nics; ++i) {
        std::string idx = std::to_string(i);
        links_[i] = std::make_unique<PcieLink>(
            sim, "system.nicLink" + idx,
            base.makeLinkParams(config.nicLinkWidth, i));
        {
            Simulation::DomainScope scope(sim, dom_dev);
            nics_[i] = std::make_unique<Nic8254xPcie>(
                sim, "system.nic" + idx, config.nic);
        }
        drivers_[i] = std::make_unique<E1000eDriver>(config.driver);

        rootComplex_->rootPortMaster(i).bind(links_[i]->upSlave());
        links_[i]->upMaster().bind(rootComplex_->rootPortSlave(i));
        links_[i]->downMaster().bind(nics_[i]->pioPort());
        nics_[i]->dmaPort().bind(links_[i]->downSlave());

        nics_[i]->attachWire(*wire_, i);
        Nic8254xPcie *nic = nics_[i].get();
        if (intx_latency > 0) {
            nics_[i]->setIntxSink(
                [this, nic, intx_latency](bool asserted) {
                    unsigned line =
                        nic->config().raw8(cfg::interruptLine);
                    sim_.callAt(0, sim_.curTick() + intx_latency,
                                [this, line, asserted] {
                                    gic_->setLevel(line, asserted);
                                });
                });
        } else {
            nics_[i]->setIntxSink([this, nic](bool asserted) {
                gic_->setLevel(
                    nic->config().raw8(cfg::interruptLine),
                    asserted);
            });
        }

        // Bus numbering: root port i's subtree is bus i+1 (each
        // NIC is the only device below its root port and DFS visits
        // root ports in device order: root port 0 -> bus 1, root
        // port 1 -> bus 2).
        pciHost_->registerFunction(
            *nics_[i], Bdf{static_cast<std::uint8_t>(i + 1), 0, 0});
        kernel_->registerDriver(*drivers_[i]);
    }

    // Hand each link interface to its domain's queue and attach the
    // quantum-synchronized engine.
    if (partition) {
        for (unsigned i = 0; i < num_nics; ++i) {
            links_[i]->setDomains(sim.domainQueue(0),
                                  sim.domainQueue(dom_dev));
        }
        sim.setupParallel(base.threads, quantum);
    }
}

NicSystem::~NicSystem() = default;

Nic8254xPcie &
NicSystem::nic(unsigned i)
{
    panicIf(nics_[i] == nullptr, "NIC ", i, " not instantiated");
    return *nics_[i];
}

E1000eDriver &
NicSystem::driver(unsigned i)
{
    panicIf(drivers_[i] == nullptr, "driver ", i, " not instantiated");
    return *drivers_[i];
}

void
NicSystem::boot()
{
    if (booted_)
        return;
    booted_ = true;
    sim_.initialize();
    kernel_->enumerate();
    kernel_->probeDrivers();
    // Let the timed probe sequence (reset, EEPROM, rings) finish.
    sim_.run();
    fatalIf(!drivers_[0]->probed(),
            "boot failed: e1000e driver did not finish probing");
}

Addr
NicSystem::nicMmioBase(unsigned i)
{
    const auto &result = kernel_->enumerate();
    const EnumeratedFunction *fn = result.find(nics_[i]->bdf());
    panicIf(fn == nullptr || fn->bars.empty(),
            "NIC was not enumerated");
    return fn->bars[0].start();
}

Tick
NicSystem::measureMmioReadLatency(unsigned iterations)
{
    boot();
    // Read the STATUS register, as a kernel module would.
    MmioProbe probe(*kernel_, nicMmioBase(0) + nicreg::status);
    bool done = false;
    probe.run(iterations, [&done] { done = true; });
    sim_.run();
    fatalIf(!done, "MMIO probe did not complete");
    return probe.meanLatency();
}

} // namespace pciesim
