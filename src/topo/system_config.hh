/**
 * @file
 * Every knob of the modelled systems in one place. The defaults
 * reproduce the paper's validation configuration (Sec. VI-A): a Gen
 * 2 interconnect, root complex latency 150 ns, switch latency
 * 150 ns, 16-packet port buffers, 4-entry replay buffers, root
 * port -> switch x4 and switch -> disk x1 links.
 */

#ifndef PCIESIM_TOPO_SYSTEM_CONFIG_HH
#define PCIESIM_TOPO_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "dev/ide_disk.hh"
#include "dev/int_controller.hh"
#include "mem/io_cache.hh"
#include "mem/simple_memory.hh"
#include "mem/xbar.hh"
#include "os/dd_workload.hh"
#include "os/ide_driver.hh"
#include "os/kernel.hh"
#include "pcie/pcie_link.hh"
#include "pcie/pcie_switch.hh"
#include "pcie/pcie_timing.hh"
#include "pcie/root_complex.hh"

namespace pciesim
{

/** Configuration of a full system. */
struct SystemConfig
{
    /** @{ PCI-Express fabric. */
    PcieGen gen = PcieGen::Gen2;
    /** Width of the root port -> switch link. */
    unsigned upstreamLinkWidth = 4;
    /** Width of the switch -> device link. */
    unsigned downstreamLinkWidth = 1;
    Tick rcLatency = nanoseconds(150);
    Tick switchLatency = nanoseconds(150);
    std::size_t portBufferSize = 16;
    std::size_t replayBufferSize = 4;
    Tick linkPropagation = nanoseconds(1);
    bool ackImmediate = false;
    /**
     * Replay-timeout scale (see PcieLinkParams): the calibrated
     * default of 10 brings the paper's simplified formula
     * (InternalDelay = 0) up to the magnitude of the spec's
     * REPLAY_TIMER limit table, which includes receiver internal
     * delay; this is what makes timeouts costly enough to produce
     * the Fig. 9b-9d throughput effects.
     */
    double replayTimeoutScale = 10.0;
    unsigned switchDownstreamPorts = 2;
    /** @} */

    /** @{ Fault injection and recovery (DESIGN.md Sec. 7).
     *  All defaults leave the fault-free fast path bit-identical
     *  to a build without the fault layer. */
    /** Bit error rate applied per wire symbol on every link. */
    double linkBitErrorRate = 0.0;
    /** Master fault seed; each link derives its own stream. */
    std::uint64_t faultSeed = 1;
    /** Run the NAK protocol even with no faults configured. */
    bool enableNak = false;
    /** Link-down time for a retrain (REPLAY_NUM rollover). */
    Tick retrainLatency = microseconds(1);
    /** Completion timeout for non-posted requesters (kernel MMIO
     *  and device DMA). 0 disables. */
    Tick completionTimeout = 0;
    /** @} */

    /** @{ Error containment and recovery (DESIGN.md §12).
     *  All defaults keep the error path quiescent and the fault-free
     *  stats dump bit-identical to earlier builds. */
    /**
     * Advanced Error Reporting: links signal ERR_COR / ERR_NONFATAL
     * / ERR_FATAL upstream, the root complex latches them and
     * interrupts the kernel, the switch contains failed downstream
     * ports, and the kernel drives reset + driver recovery.
     */
    bool aerEnabled = false;
    /** Platform interrupt line of the root error block (below the
     *  enumerator's INTx range, which starts at 32). */
    unsigned aerIrqLine = 30;
    /** In-band flight time of an error message to the root. */
    Tick aerMsgLatency = nanoseconds(400);
    /** Link degradation: errors per degradeWindow that trigger a
     *  retrain one speed Gen (then width) down. 0 disables. */
    unsigned degradeThreshold = 0;
    Tick degradeWindow = microseconds(100);
    /** Base back-off before a degraded link tries to upconfigure;
     *  doubles per consecutive degrade, with seeded jitter. */
    Tick upconfigureDelay = milliseconds(1);
    /** Scripted surprise hot-unplug of the disk, one media latency
     *  into its Nth 4 KB chunk (1-based; 0 disables). */
    std::uint64_t unplugAtChunk = 0;
    /** Time until the unplugged disk is re-seated. */
    Tick replugDelay = microseconds(50);
    /** @} */

    /** @{ Parallel execution (DESIGN.md Sec. 10). */
    /**
     * Number of worker threads for parallel discrete-event
     * execution. 0 (the default) keeps today's single-queue core
     * bit-for-bit. Any value >= 1 switches the topology into
     * deterministic parallel mode: link endpoints are partitioned
     * into domains, out-of-band interrupt wires take on a modeled
     * latency of at least one quantum (see intxLatency), and the
     * run produces identical stats for every thread count.
     */
    unsigned threads = 0;
    /**
     * Modeled latency of the out-of-band INTx wire from a device's
     * interrupt pin to the interrupt controller. In parallel mode
     * the effective value is clamped up to the synchronization
     * quantum so the hop never undercuts the lookahead; the clamp
     * depends only on the configuration, so every thread count
     * models the same wire.
     */
    Tick intxLatency = 0;
    /** @} */

    /** @{ Observability (DESIGN.md Sec. 8). */
    /**
     * Comma-separated trace flags to enable ("Link,Dma", "All");
     * empty leaves tracing off unless traceOut defaults it to All.
     */
    std::string traceFlags;
    /** Chrome trace-event output path; empty disables the sink. */
    std::string traceOut;
    /** Period of the goodput/replay-depth sampler; 0 disables. */
    Tick statsSampleInterval = 0;
    /** Period of m5out-style dump/reset stats epochs; 0 disables.
     *  Note epochs *reset* counters, so end-of-run readouts cover
     *  only the final partial epoch (gem5 semantics). */
    Tick statsDumpInterval = 0;
    /** Epoch dump destination; "-" (default) is stdout. */
    std::string statsDumpPath = "-";
    /** Write a stats.json document here after a run; empty off. */
    std::string statsJsonOut;
    /** @} */

    /** @{ Substrates. */
    XBarParams membus;
    IOCacheParams ioCache;
    SimpleMemoryParams dram;
    IntControllerParams gic;
    /** @} */

    /** @{ Software + devices. */
    KernelParams kernel;
    IdeDiskParams disk;
    IdeDriverParams ideDriver;
    DdWorkloadParams dd;
    /** @} */

    /**
     * Build the link parameters every topology uses, including the
     * fault layer. @p link_index keys this link's fault stream off
     * the master seed so each link draws independent errors while
     * the whole system stays reproducible from one seed.
     */
    PcieLinkParams
    makeLinkParams(unsigned width, unsigned link_index) const
    {
        PcieLinkParams lp;
        lp.gen = gen;
        lp.width = width;
        lp.propagationDelay = linkPropagation;
        lp.replayBufferSize = replayBufferSize;
        lp.ackImmediate = ackImmediate;
        lp.replayTimeoutScale = replayTimeoutScale;
        lp.enableNak = enableNak;
        lp.retrainLatency = retrainLatency;
        lp.degradeThreshold = degradeThreshold;
        lp.degradeWindow = degradeWindow;
        lp.upconfigureDelay = upconfigureDelay;
        lp.faults.bitErrorRate = linkBitErrorRate;
        lp.faults.seed = faultSeed + 0x1000003ULL * link_index;
        return lp;
    }
};

/**
 * Conservative lookahead of one link of @p width lanes under
 * configuration @p c: the smallest possible flight time of anything
 * the wire carries. The shortest transfer is a DLLP (8 symbols), so
 * no event can cross the link in less than its serialization time
 * plus the propagation delay. The synchronization quantum of a
 * partitioned topology is the minimum lookahead over its
 * domain-crossing links.
 */
inline Tick
linkLookahead(const SystemConfig &c, unsigned width)
{
    return serializationTime(c.gen, width, overhead::dllpTotal) +
           c.linkPropagation;
}

/**
 * Whether the configured links may be cut into separate event-queue
 * domains. Fault injection and NAK recovery retrain the link, which
 * manipulates both interfaces atomically, so those configurations
 * must keep each link inside one domain (and the topologies fall
 * back to the single-queue core). The error-containment features
 * pin the fabric too: AER error sinks, degradation retrains, and
 * the unplug script all reach across link endpoints.
 */
inline bool
linksCuttable(const SystemConfig &c)
{
    return c.linkBitErrorRate == 0.0 && !c.enableNak &&
           !c.aerEnabled && c.degradeThreshold == 0 &&
           c.unplugAtChunk == 0;
}

} // namespace pciesim

#endif // PCIESIM_TOPO_SYSTEM_CONFIG_HH
