#include "fabric_builder.hh"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <string>

#include "os/mmio_probe.hh"
#include "pci/config_regs.hh"
#include "pci/platform.hh"
#include "sim/trace.hh"

namespace pciesim
{

namespace
{

using topo::Json;

[[noreturn]] void
jfail(const std::string &src, unsigned line, const std::string &what)
{
    if (line > 0)
        fatal("topology ", src, ":", line, ": ", what);
    fatal("topology ", src, ": ", what);
}

double
needNum(const std::string &src, const std::string &key,
        const Json &v)
{
    if (v.type != Json::Type::Number)
        jfail(src, v.line, "key '" + key + "' must be a number");
    return v.number;
}

std::uint64_t
needUInt(const std::string &src, const std::string &key,
         const Json &v)
{
    double d = needNum(src, key, v);
    if (d < 0 || d != static_cast<double>(
                          static_cast<std::uint64_t>(d))) {
        jfail(src, v.line,
              "key '" + key + "' must be a non-negative integer");
    }
    return static_cast<std::uint64_t>(d);
}

Tick
needNsTick(const std::string &src, const std::string &key,
           const Json &v)
{
    double d = needNum(src, key, v);
    if (d < 0)
        jfail(src, v.line, "key '" + key + "' must be >= 0");
    return static_cast<Tick>(d * static_cast<double>(tickPerNs));
}

bool
needBool(const std::string &src, const std::string &key,
         const Json &v)
{
    if (v.type != Json::Type::Bool)
        jfail(src, v.line, "key '" + key + "' must be a bool");
    return v.boolean;
}

std::string
needStr(const std::string &src, const std::string &key,
        const Json &v)
{
    if (v.type != Json::Type::String)
        jfail(src, v.line, "key '" + key + "' must be a string");
    return v.str;
}

void
applyConfigKey(SystemConfig &c, const std::string &src,
               const std::string &key, const Json &v)
{
    if (key == "gen") {
        std::uint64_t g = needUInt(src, key, v);
        if (g < 1 || g > 5)
            jfail(src, v.line, "config gen must be 1..5");
        c.gen = static_cast<PcieGen>(g);
    } else if (key == "upstream_link_width") {
        c.upstreamLinkWidth =
            static_cast<unsigned>(needUInt(src, key, v));
    } else if (key == "downstream_link_width") {
        c.downstreamLinkWidth =
            static_cast<unsigned>(needUInt(src, key, v));
    } else if (key == "rc_latency_ns") {
        c.rcLatency = needNsTick(src, key, v);
    } else if (key == "switch_latency_ns") {
        c.switchLatency = needNsTick(src, key, v);
    } else if (key == "port_buffer_size") {
        c.portBufferSize =
            static_cast<std::size_t>(needUInt(src, key, v));
    } else if (key == "replay_buffer_size") {
        c.replayBufferSize =
            static_cast<std::size_t>(needUInt(src, key, v));
    } else if (key == "link_propagation_ns") {
        c.linkPropagation = needNsTick(src, key, v);
    } else if (key == "ack_immediate") {
        c.ackImmediate = needBool(src, key, v);
    } else if (key == "replay_timeout_scale") {
        c.replayTimeoutScale = needNum(src, key, v);
    } else if (key == "switch_downstream_ports") {
        c.switchDownstreamPorts =
            static_cast<unsigned>(needUInt(src, key, v));
    } else if (key == "link_bit_error_rate") {
        c.linkBitErrorRate = needNum(src, key, v);
    } else if (key == "fault_seed") {
        c.faultSeed = needUInt(src, key, v);
    } else if (key == "enable_nak") {
        c.enableNak = needBool(src, key, v);
    } else if (key == "retrain_latency_ns") {
        c.retrainLatency = needNsTick(src, key, v);
    } else if (key == "completion_timeout_ns") {
        c.completionTimeout = needNsTick(src, key, v);
    } else if (key == "aer_enabled") {
        c.aerEnabled = needBool(src, key, v);
    } else if (key == "aer_irq_line") {
        c.aerIrqLine = static_cast<unsigned>(needUInt(src, key, v));
    } else if (key == "aer_msg_latency_ns") {
        c.aerMsgLatency = needNsTick(src, key, v);
    } else if (key == "degrade_threshold") {
        c.degradeThreshold =
            static_cast<unsigned>(needUInt(src, key, v));
    } else if (key == "degrade_window_ns") {
        c.degradeWindow = needNsTick(src, key, v);
    } else if (key == "upconfigure_delay_ns") {
        c.upconfigureDelay = needNsTick(src, key, v);
    } else if (key == "unplug_at_chunk") {
        c.unplugAtChunk = needUInt(src, key, v);
    } else if (key == "replug_delay_ns") {
        c.replugDelay = needNsTick(src, key, v);
    } else if (key == "threads") {
        c.threads = static_cast<unsigned>(needUInt(src, key, v));
    } else if (key == "intx_latency_ns") {
        c.intxLatency = needNsTick(src, key, v);
    } else if (key == "stats_sample_interval_ns") {
        c.statsSampleInterval = needNsTick(src, key, v);
    } else if (key == "stats_dump_interval_ns") {
        c.statsDumpInterval = needNsTick(src, key, v);
    } else if (key == "stats_dump_path") {
        c.statsDumpPath = needStr(src, key, v);
    } else if (key == "stats_json_out") {
        c.statsJsonOut = needStr(src, key, v);
    } else if (key == "trace_flags") {
        c.traceFlags = needStr(src, key, v);
    } else if (key == "trace_out") {
        c.traceOut = needStr(src, key, v);
    } else {
        jfail(src, v.line, "unknown config key '" + key + "'");
    }
}

FabricLinkDesc
parseLinkDesc(const std::string &src, const Json &v)
{
    if (v.type != Json::Type::Object)
        jfail(src, v.line, "key 'link' must be an object");
    FabricLinkDesc link;
    for (const auto &[key, lv] : v.obj) {
        if (key == "name") {
            link.name = needStr(src, key, lv);
        } else if (key == "width") {
            link.width = static_cast<unsigned>(needUInt(src, key, lv));
        } else if (key == "gen") {
            link.gen = static_cast<int>(needUInt(src, key, lv));
        } else if (key == "bit_error_rate") {
            link.bitErrorRate = needNum(src, key, lv);
        } else if (key == "replay_buffer_size") {
            link.replayBufferSize =
                static_cast<std::size_t>(needUInt(src, key, lv));
        } else {
            jfail(src, lv.line, "unknown link key '" + key + "'");
        }
    }
    return link;
}

/** One description entry, before count expansion. */
struct RawNode
{
    FabricNodeDesc node;
    unsigned count = 1;
};

RawNode
parseNodeDesc(const std::string &src, const Json &v)
{
    if (v.type != Json::Type::Object)
        jfail(src, v.line, "each node must be an object");
    RawNode raw;
    FabricNodeDesc &n = raw.node;
    n.sourceLine = v.line;
    for (const auto &[key, nv] : v.obj) {
        if (key == "name") {
            n.name = needStr(src, key, nv);
        } else if (key == "kind") {
            n.kind = needStr(src, key, nv);
        } else if (key == "parent") {
            n.parent = needStr(src, key, nv);
        } else if (key == "count") {
            raw.count =
                static_cast<unsigned>(needUInt(src, key, nv));
            if (raw.count == 0)
                jfail(src, nv.line, "node count must be >= 1");
        } else if (key == "link") {
            n.link = parseLinkDesc(src, nv);
        } else if (key == "ports") {
            n.ports = static_cast<unsigned>(needUInt(src, key, nv));
        } else if (key == "latency_ns") {
            n.latency = needNsTick(src, key, nv);
        } else if (key == "port_buffer_size") {
            n.portBufferSize =
                static_cast<std::size_t>(needUInt(src, key, nv));
        } else if (key == "wire") {
            n.wire = needStr(src, key, nv);
        } else if (key == "chunk_size") {
            n.chunkSize =
                static_cast<long>(needUInt(src, key, nv));
        } else if (key == "media_latency_ns") {
            n.mediaLatencyNs = needNum(src, key, nv);
        } else if (key == "inter_burst_gap_ns") {
            n.interBurstGapNs = needNum(src, key, nv);
        } else if (key == "posted_writes") {
            n.postedWrites = needBool(src, key, nv) ? 1 : 0;
        } else if (key == "desc_processing_ns") {
            n.descProcessingNs = needNum(src, key, nv);
        } else if (key == "allow_msi") {
            n.allowMsi = needBool(src, key, nv) ? 1 : 0;
        } else {
            jfail(src, nv.line, "unknown node key '" + key + "'");
        }
    }
    if (n.name.empty())
        jfail(src, v.line, "node is missing a 'name'");
    if (n.kind.empty())
        jfail(src, v.line, "node is missing a 'kind'");
    return raw;
}

} // namespace

FabricDesc
parseFabricDesc(const Json &root, const std::string &source)
{
    FabricDesc desc;
    desc.source = source;
    if (root.type != Json::Type::Object)
        jfail(source, root.line, "document must be an object");

    std::vector<RawNode> raw;
    for (const auto &[key, v] : root.obj) {
        if (key == "style") {
            desc.style = needStr(source, key, v);
            if (desc.style != "pcie" && desc.style != "legacy-io") {
                jfail(source, v.line,
                      "style must be \"pcie\" or \"legacy-io\"");
            }
        } else if (key == "enumerate") {
            desc.enumerate = needBool(source, key, v);
        } else if (key == "system_stats") {
            desc.systemStats = needBool(source, key, v);
        } else if (key == "config") {
            if (v.type != Json::Type::Object) {
                jfail(source, v.line,
                      "key 'config' must be an object");
            }
            for (const auto &[ck, cv] : v.obj)
                applyConfigKey(desc.config, source, ck, cv);
        } else if (key == "traffic_gen") {
            if (v.type != Json::Type::Object) {
                jfail(source, v.line,
                      "key 'traffic_gen' must be an object");
            }
            for (const auto &[tk, tv] : v.obj) {
                if (tk == "inter_burst_gap_ns") {
                    desc.gen.interBurstGap =
                        needNsTick(source, tk, tv);
                } else if (tk == "pio_latency_ns") {
                    desc.gen.pioLatency = needNsTick(source, tk, tv);
                } else if (tk == "posted_writes") {
                    desc.gen.postedWrites = needBool(source, tk, tv);
                } else {
                    jfail(source, tv.line,
                          "unknown traffic_gen key '" + tk + "'");
                }
            }
        } else if (key == "nodes") {
            if (v.type != Json::Type::Array)
                jfail(source, v.line, "key 'nodes' must be an array");
            for (const Json &nv : v.arr)
                raw.push_back(parseNodeDesc(source, nv));
        } else {
            jfail(source, v.line, "unknown key '" + key + "'");
        }
    }

    // Count expansion: a node with "count": N becomes N instances
    // name0..nameN-1; children naming an expanded group as their
    // parent are distributed round-robin across it.
    std::map<std::string, unsigned> groups;
    for (const RawNode &r : raw) {
        if (r.count == 1) {
            desc.nodes.push_back(r.node);
            continue;
        }
        groups[r.node.name] = r.count;
        for (unsigned i = 0; i < r.count; ++i) {
            FabricNodeDesc n = r.node;
            n.name += std::to_string(i);
            if (!n.link.name.empty())
                n.link.name += std::to_string(i);
            auto g = groups.find(n.parent);
            if (g != groups.end())
                n.parent += std::to_string(i % g->second);
            desc.nodes.push_back(std::move(n));
        }
    }
    // Round-robin parents for singleton children of a group too.
    for (FabricNodeDesc &n : desc.nodes) {
        auto g = groups.find(n.parent);
        if (g != groups.end())
            n.parent += "0";
    }
    return desc;
}

FabricDesc
loadFabricDesc(const std::string &path)
{
    return parseFabricDesc(topo::loadJsonFile(path), path);
}

//
// Construction.
//

Fabric::Fabric(Simulation &sim, const FabricDesc &desc)
    : sim_(sim), desc_(desc)
{
    validate();
    if (desc_.style == "legacy-io")
        buildLegacyIo();
    else
        buildPcie();
    buildObservability();
    auditConfig();
}

Fabric::~Fabric() = default;

void
Fabric::failNode(const FabricNodeDesc &n, const std::string &what)
{
    if (n.sourceLine > 0)
        fatal("topology ", desc_.source, ":", n.sourceLine, ": ",
              what);
    fatal("topology ", desc_.source, ": ", what);
}

void
Fabric::validate()
{
    const SystemConfig &config = desc_.config;
    fatalIf(desc_.style != "pcie" && desc_.style != "legacy-io",
            "topology ", desc_.source,
            ": style must be \"pcie\" or \"legacy-io\"");
    fatalIf(desc_.style == "legacy-io" && !desc_.enumerate,
            "topology ", desc_.source,
            ": legacy-io fabrics are always enumerable; remove "
            "\"enumerate\": false");
    fatalIf(config.linkBitErrorRate < 0.0 ||
                config.linkBitErrorRate >= 1.0,
            "topology ", desc_.source,
            ": config link_bit_error_rate must be in [0, 1)");
    fatalIf(static_cast<unsigned>(config.gen) < 1 ||
                static_cast<unsigned>(config.gen) > 5,
            "topology ", desc_.source, ": config gen must be 1..5");
    fatalIf(config.upstreamLinkWidth == 0 ||
                config.upstreamLinkWidth > 32 ||
                config.downstreamLinkWidth == 0 ||
                config.downstreamLinkWidth > 32,
            "topology ", desc_.source,
            ": config link widths must be 1..32 lanes");

    std::map<std::string, int> by_name;
    std::map<std::string, unsigned> link_names;
    std::map<std::string, unsigned> wire_nics;
    std::map<int, unsigned> child_count;
    for (const FabricNodeDesc &d : desc_.nodes) {
        Node n;
        n.desc = d;
        if (d.name.empty())
            failNode(d, "node is missing a 'name'");
        if (d.name == "rc") {
            failNode(d, "device name 'rc' is reserved for the root "
                        "complex");
        }
        if (by_name.count(d.name))
            failNode(d, "duplicate device name '" + d.name + "'");
        if (d.kind != "switch" && d.kind != "ide_disk" &&
            d.kind != "traffic_gen" && d.kind != "nic") {
            failNode(d, "unknown device kind '" + d.kind +
                            "' (expected switch, ide_disk, "
                            "traffic_gen, or nic)");
        }
        if (d.link.gen != 0 && (d.link.gen < 1 || d.link.gen > 5))
            failNode(d, "link gen must be 1..5");
        if (d.link.width > 32)
            failNode(d, "link width must be 1..32 lanes");
        if (d.link.bitErrorRate >= 1.0)
            failNode(d, "link bit error rate must be in [0, 1)");
        if (d.kind == "switch") {
            n.ports = d.ports ? d.ports
                              : config.switchDownstreamPorts;
            if (d.ports == 0)
                usedSwitchPorts_ = true;
            if (n.ports == 0 || n.ports > 16) {
                failNode(d, "switch ports must be 1..16");
            }
        }
        if (d.link.width == 0) {
            if (d.kind == "switch")
                usedUpstreamWidth_ = true;
            else
                usedDownstreamWidth_ = true;
        }
        if (d.parent == "rc") {
            n.parentIndex = -1;
            n.portOnParent =
                static_cast<unsigned>(rootChildren_.size());
            n.depth = 1;
            rootChildren_.push_back(
                static_cast<int>(nodes_.size()));
        } else {
            auto it = by_name.find(d.parent);
            if (it == by_name.end()) {
                failNode(d, "unknown parent '" + d.parent +
                                "' (parents must be switches "
                                "declared before their children)");
            }
            Node &p = nodes_[it->second];
            if (p.desc.kind != "switch") {
                failNode(d, "parent '" + d.parent +
                                "' is not a switch");
            }
            n.parentIndex = it->second;
            n.portOnParent = child_count[it->second]++;
            if (n.portOnParent >= p.ports) {
                failNode(d, "switch '" + d.parent + "' has more "
                            "children than its " +
                            std::to_string(p.ports) +
                            " downstream ports");
            }
            n.depth = p.depth + 1;
        }
        if (d.kind == "nic") {
            if (++wire_nics[d.wire] > 2) {
                failNode(d, "Ethernet wire '" + d.wire +
                                "' connects more than two NICs");
            }
        }
        std::string lname = d.link.name.empty() ? d.name + "Link"
                                                : d.link.name;
        if (link_names.count(lname))
            failNode(d, "duplicate link name '" + lname + "'");
        link_names[lname] = 1;
        by_name[d.name] = static_cast<int>(nodes_.size());
        unsigned idx = static_cast<unsigned>(nodes_.size());
        if (d.kind == "switch")
            switchIdx_.push_back(idx);
        else if (d.kind == "ide_disk")
            diskIdx_.push_back(idx);
        else if (d.kind == "traffic_gen")
            genIdx_.push_back(idx);
        else
            nicIdx_.push_back(idx);
        nodes_.push_back(std::move(n));
    }

    if (desc_.style == "legacy-io") {
        fatalIf(nodes_.size() != 1 ||
                    nodes_[0].desc.kind != "ide_disk",
                "topology ", desc_.source,
                ": legacy-io style supports exactly one ide_disk "
                "node");
        nodes_[0].bdf = Bdf{0, 0, 0};
        return;
    }

    fatalIf(rootChildren_.size() > 8, "topology ", desc_.source,
            ": ", rootChildren_.size(), " devices attached to the "
            "root complex, which supports at most 8 root ports; "
            "put a switch level in between");

    if (!desc_.enumerate) {
        fatalIf(config.aerEnabled, "topology ", desc_.source,
                ": AER requires an enumerable fabric");
        for (const Node &n : nodes_) {
            if (n.desc.kind == "ide_disk" || n.desc.kind == "nic") {
                failNode(n.desc, "non-enumerated fabrics support "
                                 "only switch and traffic_gen "
                                 "nodes");
            }
            if (n.desc.kind == "traffic_gen") {
                bool posted =
                    n.desc.postedWrites == 1 ||
                    (n.desc.postedWrites < 0 &&
                     desc_.gen.postedWrites);
                if (!posted) {
                    failNode(n.desc,
                             "non-enumerated fabrics require "
                             "posted_writes on every traffic "
                             "generator (completions cannot route "
                             "without bus numbers)");
                }
            }
        }
        return;
    }

    // Emulate the enumerator's depth-first bus numbering (see
    // pci/enumerator.cc): every bridge — root port, switch
    // upstream, and each switch downstream port, occupied or not —
    // consumes one secondary bus, in device-slot order.
    std::vector<std::vector<int>> kids(nodes_.size());
    for (unsigned i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].parentIndex >= 0)
            kids[nodes_[i].parentIndex].push_back(
                static_cast<int>(i));
    }
    unsigned counter = 0;
    auto next_bus = [&]() {
        ++counter;
        fatalIf(counter > 255, "topology ", desc_.source,
                ": the tree needs more than 255 buses; set "
                "\"enumerate\": false to build it without "
                "configuration-space enumeration");
        return counter;
    };
    std::function<void(int, unsigned)> assign =
        [&](int idx, unsigned bus) {
            Node &n = nodes_[idx];
            n.bdf = Bdf{static_cast<std::uint8_t>(bus), 0, 0};
            if (n.desc.kind != "switch")
                return;
            n.internalBus = next_bus();
            std::vector<int> at_port(n.ports, -1);
            for (int k : kids[idx])
                at_port[nodes_[k].portOnParent] = k;
            for (unsigned j = 0; j < n.ports; ++j) {
                unsigned child_bus = next_bus();
                if (at_port[j] >= 0)
                    assign(at_port[j], child_bus);
            }
        };
    unsigned num_root_ports = std::max<unsigned>(
        3, static_cast<unsigned>(rootChildren_.size()));
    for (unsigned i = 0; i < num_root_ports; ++i) {
        unsigned bus = next_bus();
        if (i < rootChildren_.size())
            assign(rootChildren_[i], bus);
    }
}

unsigned
Fabric::effLinkWidth(const FabricNodeDesc &n) const
{
    if (n.link.width > 0)
        return n.link.width;
    return n.kind == "switch" ? desc_.config.upstreamLinkWidth
                              : desc_.config.downstreamLinkWidth;
}

PcieGen
Fabric::effLinkGen(const FabricNodeDesc &n) const
{
    return n.link.gen > 0 ? static_cast<PcieGen>(n.link.gen)
                          : desc_.config.gen;
}

double
Fabric::effLinkBer(const FabricNodeDesc &n) const
{
    return n.link.bitErrorRate >= 0.0
               ? n.link.bitErrorRate
               : desc_.config.linkBitErrorRate;
}

void
Fabric::installIntxSink(PciDevice &dev, Tick intx_latency)
{
    PciDevice *d = &dev;
    if (intx_latency > 0) {
        dev.setIntxSink([this, d, intx_latency](bool asserted) {
            unsigned line = d->config().raw8(cfg::interruptLine);
            sim_.callAt(0, sim_.curTick() + intx_latency,
                        [this, line, asserted] {
                            gic_->setLevel(line, asserted);
                        });
        });
    } else {
        dev.setIntxSink([this, d](bool asserted) {
            gic_->setLevel(d->config().raw8(cfg::interruptLine),
                           asserted);
        });
    }
}

void
Fabric::buildPcie()
{
    const SystemConfig &config = desc_.config;
    trace::applyConfig(config.traceFlags, config.traceOut);
    Packet::resetIds();

    // Parallel partitioning (DESIGN.md Sec. 10): cut the fabric at
    // its links when requested and safe. threads == 1 keeps the
    // degenerate one-worker partition whose keyed heap order is
    // shared with every thread count (1-vs-N byte identity).
    bool link_faults = false;
    for (const Node &n : nodes_) {
        if (effLinkBer(n.desc) > 0.0)
            link_faults = true;
    }
    const bool want_parallel = config.threads >= 1;
    const bool parallel = want_parallel && !nodes_.empty() &&
                          linksCuttable(config) && !link_faults &&
                          config.statsSampleInterval == 0 &&
                          config.statsDumpInterval == 0;
    if (want_parallel && !parallel) {
        const char *reason =
            nodes_.empty() ? "an empty fabric (no links to cut)"
            : link_faults ? "link fault injection (BER > 0)"
            : config.enableNak ? "NAK protocol emulation"
            : config.aerEnabled ? "AER error reporting"
            : config.degradeThreshold > 0 ? "link degradation"
            : config.unplugAtChunk > 0
                ? "scripted surprise hot-unplug"
            : config.statsSampleInterval > 0
                ? "periodic stats sampling"
                : "periodic stats dump epochs";
        warn("fabric: --threads requested but ", reason,
             " pins the fabric to one event-queue domain; "
             "running single-queue");
    }

    // Quantum: the minimum lookahead over every (per-link
    // configured) link of the fabric.
    Tick quantum = maxTick;
    for (const Node &n : nodes_) {
        Tick la = serializationTime(effLinkGen(n.desc),
                                    effLinkWidth(n.desc),
                                    overhead::dllpTotal) +
                  config.linkPropagation;
        quantum = std::min(quantum, la);
    }
    if (nodes_.empty())
        quantum = 0;
    const Tick intx_latency =
        parallel ? std::max(config.intxLatency, quantum)
                 : config.intxLatency;

    // Domain assignment, in declaration order: one domain per
    // switch or endpoint; NICs sharing an Ethernet wire share one
    // domain (the wire models no latency, so they cannot be cut
    // apart). Domain 0 is the host side.
    partitioned_ = parallel;
    std::map<std::string, unsigned> wire_domains;
    for (Node &n : nodes_) {
        if (!partitioned_) {
            n.domain = 0;
        } else if (n.desc.kind == "nic") {
            auto it = wire_domains.find(n.desc.wire);
            if (it == wire_domains.end()) {
                // Shared wire domains are named after the wire
                // group, not the first NIC that happened to open it.
                n.domain = sim_.addDomain(n.desc.wire);
                wire_domains.emplace(n.desc.wire, n.domain);
            } else {
                n.domain = it->second;
            }
        } else {
            n.domain = sim_.addDomain(n.desc.name);
        }
    }

    membus_ = std::make_unique<XBar>(sim_, "system.membus",
                                     config.membus);
    dram_ = std::make_unique<SimpleMemory>(sim_, "system.dram",
                                           config.dram);
    pciHost_ = std::make_unique<PciHost>(sim_, "system.pciHost");
    gic_ = std::make_unique<IntController>(sim_, "system.gic",
                                           config.gic);

    IOCacheParams ioc = config.ioCache;
    if (ioc.ranges.empty())
        ioc.ranges = {platform::dramRange};
    ioCache_ = std::make_unique<IOCache>(sim_, "system.ioCache",
                                         ioc);

    RootComplexParams rcp;
    rcp.numRootPorts = std::max<unsigned>(
        3, static_cast<unsigned>(rootChildren_.size()));
    rcp.latency = config.rcLatency;
    rcp.portBufferSize = config.portBufferSize;
    if (!rootChildren_.empty()) {
        const Node &first = nodes_[rootChildren_[0]];
        rcp.linkWidth = effLinkWidth(first.desc);
        rcp.linkGen =
            static_cast<unsigned>(effLinkGen(first.desc));
    }
    rootComplex_ = std::make_unique<RootComplex>(sim_, "system.rc",
                                                 *pciHost_, rcp);

    KernelParams kp = config.kernel;
    if (config.completionTimeout > 0)
        kp.completionTimeout = config.completionTimeout;
    kernel_ = std::make_unique<Kernel>(sim_, "system.kernel",
                                       *pciHost_, *gic_, *dram_,
                                       kp);

    // Ethernet wires, one per group, in first-use order, living in
    // the group's device domain.
    std::map<std::string, unsigned> wire_index;
    for (const Node &n : nodes_) {
        if (n.desc.kind != "nic" || wire_index.count(n.desc.wire))
            continue;
        Simulation::DomainScope scope(sim_, n.domain);
        wires_.push_back(std::make_unique<EtherWire>(
            sim_, "system." + n.desc.wire, desc_.wire));
        wire_index.emplace(
            n.desc.wire,
            static_cast<unsigned>(wires_.size() - 1));
    }

    // MemBus: CPU and IOCache in, DRAM and root complex out; the
    // MSI path exists only on fabrics with NICs (keeps NIC-less
    // stats dumps byte-identical to the legacy classes).
    kernel_->cpuPort().bind(membus_->addSlavePort("cpuSlave"));
    ioCache_->masterPort().bind(membus_->addSlavePort("iocSlave"));
    membus_->addMasterPort("dramMaster").bind(dram_->port());
    membus_->addMasterPort("rcMaster")
        .bind(rootComplex_->upstreamSlavePort());
    if (!nicIdx_.empty())
        membus_->addMasterPort("msiMaster").bind(gic_->msiPort());
    rootComplex_->upstreamMasterPort().bind(ioCache_->slavePort());

    // The tree, in declaration order: each node's upstream link,
    // then the object itself inside its domain, its driver, the
    // port bindings, and the INTx wire.
    std::map<std::string, unsigned> wire_ports;
    for (unsigned i = 0; i < nodes_.size(); ++i) {
        Node &n = nodes_[i];
        std::string link_name = n.desc.link.name.empty()
                                    ? n.desc.name + "Link"
                                    : n.desc.link.name;
        PcieLinkParams lp =
            config.makeLinkParams(effLinkWidth(n.desc), i);
        lp.gen = effLinkGen(n.desc);
        lp.faults.bitErrorRate = effLinkBer(n.desc);
        if (n.desc.link.replayBufferSize > 0)
            lp.replayBufferSize = n.desc.link.replayBufferSize;
        links_.push_back(std::make_unique<PcieLink>(
            sim_, "system." + link_name, lp));
        n.link = links_.back().get();

        {
            Simulation::DomainScope scope(sim_, n.domain);
            if (n.desc.kind == "switch") {
                PcieSwitchParams swp;
                swp.numDownstreamPorts = n.ports;
                swp.latency = n.desc.latency
                                  ? n.desc.latency
                                  : config.switchLatency;
                swp.portBufferSize = n.desc.portBufferSize
                                         ? n.desc.portBufferSize
                                         : config.portBufferSize;
                swp.linkWidth = config.downstreamLinkWidth;
                swp.linkGen = static_cast<unsigned>(config.gen);
                for (unsigned j = i + 1; j < nodes_.size(); ++j) {
                    if (nodes_[j].parentIndex ==
                        static_cast<int>(i)) {
                        swp.linkWidth = effLinkWidth(nodes_[j].desc);
                        swp.linkGen = static_cast<unsigned>(
                            effLinkGen(nodes_[j].desc));
                        break;
                    }
                }
                swp.enableContainment = config.aerEnabled;
                switches_.push_back(std::make_unique<PcieSwitch>(
                    sim_, "system." + n.desc.name, swp));
                n.sw = switches_.back().get();
            } else if (n.desc.kind == "ide_disk") {
                IdeDiskParams dkp = config.disk;
                if (config.completionTimeout > 0)
                    dkp.dmaCompletionTimeout =
                        config.completionTimeout;
                if (config.unplugAtChunk > 0)
                    dkp.unplugAtChunk = config.unplugAtChunk;
                dkp.replugDelay = config.replugDelay;
                if (n.desc.chunkSize >= 0) {
                    dkp.chunkSize =
                        static_cast<unsigned>(n.desc.chunkSize);
                }
                if (n.desc.mediaLatencyNs >= 0) {
                    dkp.mediaLatency = static_cast<Tick>(
                        n.desc.mediaLatencyNs *
                        static_cast<double>(tickPerNs));
                }
                disks_.push_back(std::make_unique<IdeDisk>(
                    sim_, "system." + n.desc.name, dkp));
                n.dev = disks_.back().get();
            } else if (n.desc.kind == "traffic_gen") {
                TrafficGenParams tp = desc_.gen;
                if (n.desc.interBurstGapNs >= 0) {
                    tp.interBurstGap = static_cast<Tick>(
                        n.desc.interBurstGapNs *
                        static_cast<double>(tickPerNs));
                }
                if (n.desc.postedWrites >= 0)
                    tp.postedWrites = n.desc.postedWrites == 1;
                gens_.push_back(std::make_unique<TrafficGen>(
                    sim_, "system." + n.desc.name, tp));
                n.dev = gens_.back().get();
            } else {
                NicParams np = desc_.nic;
                if (n.desc.descProcessingNs >= 0) {
                    np.descProcessing = static_cast<Tick>(
                        n.desc.descProcessingNs *
                        static_cast<double>(tickPerNs));
                }
                if (n.desc.allowMsi >= 0)
                    np.allowMsi = n.desc.allowMsi == 1;
                nics_.push_back(std::make_unique<Nic8254xPcie>(
                    sim_, "system." + n.desc.name, np));
                n.dev = nics_.back().get();
            }
        }

        if (n.desc.kind == "ide_disk") {
            IdeDriverParams drvp = config.ideDriver;
            if (config.aerEnabled)
                drvp.trackRecovery = true;
            ideDrivers_.push_back(
                std::make_unique<IdeDriver>(drvp));
        } else if (n.desc.kind == "nic") {
            nicDrivers_.push_back(
                std::make_unique<E1000eDriver>(desc_.nicDriver));
        }

        // Parent port <-> link <-> node.
        if (n.parentIndex < 0) {
            rootComplex_->rootPortMaster(n.portOnParent)
                .bind(n.link->upSlave());
            n.link->upMaster().bind(
                rootComplex_->rootPortSlave(n.portOnParent));
        } else {
            PcieSwitch *psw = nodes_[n.parentIndex].sw;
            psw->downstreamMaster(n.portOnParent)
                .bind(n.link->upSlave());
            n.link->upMaster().bind(
                psw->downstreamSlave(n.portOnParent));
        }
        if (n.sw != nullptr) {
            n.link->downMaster().bind(n.sw->upstreamSlavePort());
            n.sw->upstreamMasterPort().bind(n.link->downSlave());
        } else {
            n.link->downMaster().bind(n.dev->pioPort());
            n.dev->dmaPort().bind(n.link->downSlave());
        }
        if (n.desc.kind == "nic") {
            nics_.back()->attachWire(
                *wires_[wire_index[n.desc.wire]],
                wire_ports[n.desc.wire]++);
        }
        if (desc_.enumerate && n.dev != nullptr)
            installIntxSink(*n.dev, intx_latency);
    }

    registerTree();

    // Hand each link interface to its domain's queue and attach
    // the quantum-synchronized engine.
    if (partitioned_) {
        for (Node &n : nodes_) {
            unsigned up_dom = n.parentIndex < 0
                                  ? 0
                                  : nodes_[n.parentIndex].domain;
            n.link->setDomains(sim_.domainQueue(up_dom),
                               sim_.domainQueue(n.domain));
        }
        sim_.setupParallel(config.threads, quantum);
    }

    if (config.aerEnabled)
        wireAer();
}

void
Fabric::registerTree()
{
    if (!desc_.enumerate)
        return;
    for (Node &n : nodes_) {
        if (n.sw != nullptr) {
            pciHost_->registerFunction(n.sw->upstreamVp2p(),
                                       n.bdf);
            for (unsigned j = 0; j < n.ports; ++j) {
                pciHost_->registerFunction(
                    n.sw->downstreamVp2p(j),
                    Bdf{static_cast<std::uint8_t>(n.internalBus),
                        static_cast<std::uint8_t>(j), 0});
            }
        } else {
            pciHost_->registerFunction(*n.dev, n.bdf);
        }
    }
    for (auto &drv : ideDrivers_)
        kernel_->registerDriver(*drv);
    for (auto &drv : nicDrivers_)
        kernel_->registerDriver(*drv);
}

PcieSwitch *
Fabric::containingSwitch(unsigned bus, int &port)
{
    // Ancestors' bridge windows cover every descendant bus, so the
    // switch owning the *deepest* claiming downstream port is the
    // one fronting the failed subtree.
    PcieSwitch *best = nullptr;
    unsigned best_depth = 0;
    port = -1;
    for (unsigned idx : switchIdx_) {
        Node &n = nodes_[idx];
        int p = n.sw->downstreamPortForBus(bus);
        if (p >= 0 && (best == nullptr || n.depth > best_depth)) {
            best = n.sw;
            best_depth = n.depth;
            port = p;
        }
    }
    return best;
}

void
Fabric::wireAer()
{
    const SystemConfig &config = desc_.config;
    errReporter_ = std::make_unique<ErrReporter>(
        sim_, "system.errReporter", config.aerMsgLatency);

    // Detecting agents: each link end latches errors into the AER
    // capability of the function fronting it, and unmasked errors
    // ride the reporter to the root as ERR_* messages.
    auto latch = [this](PciFunction &fn, std::uint16_t source,
                        ErrSeverity sev, std::uint32_t bit) {
        if (sev == ErrSeverity::Correctable) {
            if (fn.aer().recordCorrectable(bit)) {
                errReporter_->report(
                    {ErrSeverity::Correctable, bit, source});
            }
            return;
        }
        std::array<std::uint32_t, 4> hdr{};
        bool is_fatal = false;
        if (fn.aer().recordUncorrectable(bit, hdr, is_fatal)) {
            errReporter_->report({is_fatal ? ErrSeverity::Fatal
                                           : ErrSeverity::NonFatal,
                                  bit, source});
        }
    };

    for (Node &n : nodes_) {
        PciFunction *up_fn;
        std::uint16_t up_key;
        if (n.parentIndex < 0) {
            up_fn = &rootComplex_->vp2p(n.portOnParent);
            up_key = static_cast<std::uint16_t>(
                Bdf{0, static_cast<std::uint8_t>(n.portOnParent),
                    0}
                    .key());
        } else {
            Node &p = nodes_[n.parentIndex];
            up_fn = &p.sw->downstreamVp2p(n.portOnParent);
            up_key = static_cast<std::uint16_t>(
                Bdf{static_cast<std::uint8_t>(p.internalBus),
                    static_cast<std::uint8_t>(n.portOnParent), 0}
                    .key());
        }
        PciFunction *down_fn =
            n.sw != nullptr
                ? static_cast<PciFunction *>(&n.sw->upstreamVp2p())
                : static_cast<PciFunction *>(n.dev);
        std::uint16_t down_key =
            static_cast<std::uint16_t>(n.bdf.key());
        n.link->setErrorSink(
            [latch, up_fn, up_key, down_fn, down_key](
                ErrSeverity sev, std::uint32_t bit, bool at_up) {
                if (at_up)
                    latch(*up_fn, up_key, sev, bit);
                else
                    latch(*down_fn, down_key, sev, bit);
            });

        // Surprise hot-unplug: the downstream port above the disk
        // detects the surprise down; the reported source is the
        // vanished device so containment targets its subtree.
        if (n.desc.kind == "ide_disk") {
            IdeDisk *disk = static_cast<IdeDisk *>(n.dev);
            std::uint16_t dev_key =
                static_cast<std::uint16_t>(n.bdf.key());
            disk->setUnplugHook([latch, up_fn, dev_key] {
                latch(*up_fn, dev_key, ErrSeverity::Fatal,
                      cfg::aerUncSurpriseDown);
            });
            disk->setDmaTimeoutHook([latch, down_fn, dev_key] {
                latch(*down_fn, dev_key, ErrSeverity::NonFatal,
                      cfg::aerUncCompletionTimeout);
            });
        }
    }

    // Requester-side completion timeouts become ERR_NONFATAL from
    // the requester's function.
    kernel_->setMmioTimeoutHook([this, latch](bool) {
        latch(rootComplex_->vp2p(0),
              static_cast<std::uint16_t>(Bdf{0, 0, 0}.key()),
              ErrSeverity::NonFatal, cfg::aerUncCompletionTimeout);
    });

    // Root-side consumer: latch into the root port's root error
    // status block, contain the failed subtree on FATAL, and
    // interrupt the kernel.
    errReporter_->setSink([this](const ErrMsg &msg) {
        bool irq = rootComplex_->vp2p(0).aer().recordRootError(
            msg.sev, msg.sourceId);
        if (msg.sev == ErrSeverity::Fatal) {
            int port = -1;
            PcieSwitch *sw =
                containingSwitch((msg.sourceId >> 8) & 0xff, port);
            if (sw != nullptr)
                sw->containDownstreamPort(
                    static_cast<unsigned>(port));
        }
        if (irq)
            gic_->setLevel(desc_.config.aerIrqLine, true);
    });

    // The kernel's AER service: reads and clears the root error
    // status through config cycles, resets the function behind a
    // FATAL error, and coordinates driver recovery.
    AerHandlerParams ahp;
    ahp.irqLine = config.aerIrqLine;
    aerHandler_ = std::make_unique<AerHandler>(*kernel_,
                                               Bdf{0, 0, 0}, ahp);
    aerHandler_->setIrqAck([this] {
        gic_->setLevel(desc_.config.aerIrqLine, false);
    });
    aerHandler_->setReleaseHook([this](Bdf bdf) {
        int port = -1;
        PcieSwitch *sw = containingSwitch(bdf.bus, port);
        if (sw != nullptr)
            sw->releaseDownstreamPort(static_cast<unsigned>(port));
    });
    for (auto &drv : ideDrivers_)
        aerHandler_->addClient(drv.get());
}

void
Fabric::buildLegacyIo()
{
    const SystemConfig &config = desc_.config;
    trace::applyConfig(config.traceFlags, config.traceOut);
    Packet::resetIds();

    // The flat baseline has no point-to-point links, so there is
    // no lookahead to cut domains on; parallel mode degenerates to
    // the single-queue core.
    if (config.threads > 1) {
        warn("fabric: no links to partition into domains; "
             "running single-queue");
    }

    Node &n = nodes_[0];

    membus_ = std::make_unique<XBar>(sim_, "system.membus",
                                     config.membus);
    iobus_ = std::make_unique<XBar>(sim_, "system.iobus",
                                    config.membus);
    dram_ = std::make_unique<SimpleMemory>(sim_, "system.dram",
                                           config.dram);
    pciHost_ = std::make_unique<PciHost>(sim_, "system.pciHost");
    gic_ = std::make_unique<IntController>(sim_, "system.gic",
                                           config.gic);

    // The MemBus -> IOBus bridge claims the whole off-chip range.
    BridgeParams bp;
    bp.delay = nanoseconds(50);
    bp.ranges = {platform::offChipRange};
    bridge_ = std::make_unique<Bridge>(sim_, "system.bridge", bp);

    IOCacheParams ioc = config.ioCache;
    if (ioc.ranges.empty())
        ioc.ranges = {platform::dramRange};
    ioCache_ = std::make_unique<IOCache>(sim_, "system.ioCache",
                                         ioc);

    IdeDiskParams dkp = config.disk;
    if (config.completionTimeout > 0)
        dkp.dmaCompletionTimeout = config.completionTimeout;
    if (n.desc.chunkSize >= 0)
        dkp.chunkSize = static_cast<unsigned>(n.desc.chunkSize);
    if (n.desc.mediaLatencyNs >= 0) {
        dkp.mediaLatency = static_cast<Tick>(
            n.desc.mediaLatencyNs * static_cast<double>(tickPerNs));
    }
    disks_.push_back(std::make_unique<IdeDisk>(
        sim_, "system." + n.desc.name, dkp));
    n.dev = disks_.back().get();

    KernelParams kp = config.kernel;
    if (config.completionTimeout > 0)
        kp.completionTimeout = config.completionTimeout;
    kernel_ = std::make_unique<Kernel>(sim_, "system.kernel",
                                       *pciHost_, *gic_, *dram_,
                                       kp);
    ideDrivers_.push_back(
        std::make_unique<IdeDriver>(config.ideDriver));

    // MemBus wiring.
    kernel_->cpuPort().bind(membus_->addSlavePort("cpuSlave"));
    ioCache_->masterPort().bind(membus_->addSlavePort("iocSlave"));
    membus_->addMasterPort("dramMaster").bind(dram_->port());
    membus_->addMasterPort("bridgeMaster")
        .bind(bridge_->slavePort());

    // IOBus wiring: PIO in from the bridge, DMA out via IOCache.
    bridge_->masterPort().bind(iobus_->addSlavePort("bridgeSlave"));
    n.dev->dmaPort().bind(iobus_->addSlavePort("diskDma"));
    iobus_->addMasterPort("diskPio").bind(n.dev->pioPort());
    iobus_->addMasterPort("iocMaster").bind(ioCache_->slavePort());

    installIntxSink(*n.dev, config.intxLatency);

    // Flat topology: the disk is the only device on bus 0.
    pciHost_->registerFunction(*n.dev, n.bdf);
    kernel_->registerDriver(*ideDrivers_[0]);
}

void
Fabric::buildObservability()
{
    const SystemConfig &config = desc_.config;

    // Periodic goodput / replay-depth sampler (off by default).
    if (config.statsSampleInterval > 0) {
        sampler_ = std::make_unique<StatsSampler>(
            sim_, "system.sampler", config.statsSampleInterval);
        std::vector<IdeDisk *> ds;
        for (auto &d : disks_)
            ds.push_back(d.get());
        std::vector<TrafficGen *> gs;
        for (auto &g : gens_)
            gs.push_back(g.get());
        sampler_->addRate("goodputBytesPerSec", [ds, gs] {
            double total = 0.0;
            for (IdeDisk *d : ds)
                total += static_cast<double>(d->bytesTransferred());
            for (TrafficGen *g : gs)
                total += static_cast<double>(g->bytesMoved());
            return total;
        });
        for (auto &l : links_) {
            PcieLink *link = l.get();
            LinkInterface *down = &link->downstreamIf();
            LinkInterface *up = &link->upstreamIf();
            sampler_->addGauge(
                link->name() + ".up.replayDepth", [down] {
                    return static_cast<double>(down->replayDepth());
                });
            sampler_->addGauge(
                link->name() + ".down.replayDepth", [up] {
                    return static_cast<double>(up->replayDepth());
                });
        }
    }

    // m5out-style dump/reset stats epochs (off by default).
    if (config.statsDumpInterval > 0) {
        dumper_ = std::make_unique<StatsDumper>(
            sim_, "system.dumper", config.statsDumpInterval,
            config.statsDumpPath);
    }

    // Fabric roll-up (DESIGN.md §14): wire-occupancy spread and
    // credit-stall pressure across every link, the link-level
    // complement of the engine's per-domain flight recorder.
    // Registered for every fabric with links; all values derive
    // from simulated time only, so dumps stay thread-count
    // independent.
    if (!links_.empty()) {
        auto &reg = sim_.statsRegistry();
        fabricLinks_ = [this] {
            return static_cast<double>(links_.size());
        };
        reg.add("system.fabric.links", &fabricLinks_,
                "PCIe links instantiated by the topology",
                stats::Unit::Count);
        // Per-direction occupancy fraction of one wire at dump time.
        auto util = [](Tick busy, Tick now) {
            return now == 0 ? 0.0
                            : static_cast<double>(busy) /
                                  static_cast<double>(now);
        };
        fabricMeanWireUtil_ = [this, util] {
            Tick now = sim_.curTick();
            double sum = 0.0;
            for (auto &l : links_) {
                sum += util(l->wireUpBusyTicks(), now);
                sum += util(l->wireDownBusyTicks(), now);
            }
            return sum / (2.0 * static_cast<double>(links_.size()));
        };
        reg.add("system.fabric.meanWireUtilization",
                &fabricMeanWireUtil_,
                "mean wire occupancy over every link direction",
                stats::Unit::Ratio);
        fabricMaxWireUtil_ = [this, util] {
            Tick now = sim_.curTick();
            double top = 0.0;
            for (auto &l : links_) {
                top = std::max(top, util(l->wireUpBusyTicks(), now));
                top = std::max(top,
                               util(l->wireDownBusyTicks(), now));
            }
            return top;
        };
        reg.add("system.fabric.maxWireUtilization",
                &fabricMaxWireUtil_,
                "hottest single wire direction's occupancy",
                stats::Unit::Ratio);
        fabricCreditStallTicks_ = [this] {
            Tick total = 0;
            for (auto &l : links_)
                total += l->creditStallTicks();
            return static_cast<double>(total);
        };
        reg.add("system.fabric.creditStallTicks",
                &fabricCreditStallTicks_,
                "ticks any interface spent refusing TLPs for "
                "replay-buffer credit, summed over the fabric",
                stats::Unit::Tick);
        fabricStalledIfs_ = [this] {
            unsigned n = 0;
            for (auto &l : links_)
                n += l->acceptRefusals() > 0 ? 1 : 0;
            return static_cast<double>(n);
        };
        reg.add("system.fabric.stalledLinks", &fabricStalledIfs_,
                "links that refused at least one TLP for credit",
                stats::Unit::Count);
    }

    // System-level derived stats over every link's device-side
    // interface. Opt-in per description so fabrics without them
    // (NIC, multi-device) stay byte-identical to their legacy
    // classes, which never registered these formulas.
    if (!desc_.systemStats || links_.empty())
        return;
    const bool two = links_.size() == 2;
    replayFraction_ = [this] {
        std::uint64_t tx = 0;
        std::uint64_t replays = 0;
        for (auto &l : links_) {
            tx += l->downstreamIf().txTlps();
            replays += l->downstreamIf().replayedTlps();
        }
        return tx == 0 ? 0.0
                       : static_cast<double>(replays) /
                             static_cast<double>(tx);
    };
    sim_.statsRegistry().add(
        "system.replayFraction", &replayFraction_,
        two ? "replayed / transmitted TLPs, device-side interfaces "
              "of both links"
            : "replayed / transmitted TLPs, device-side interfaces "
              "of all links",
        stats::Unit::Ratio);
    timeoutFraction_ = [this] {
        std::uint64_t tx = 0;
        std::uint64_t timeouts = 0;
        for (auto &l : links_) {
            tx += l->downstreamIf().txTlps();
            timeouts += l->downstreamIf().timeouts();
        }
        return tx == 0 ? 0.0
                       : static_cast<double>(timeouts) /
                             static_cast<double>(tx);
    };
    sim_.statsRegistry().add(
        "system.timeoutFraction", &timeoutFraction_,
        two ? "replay-timer timeouts / transmitted TLPs, "
              "device-side interfaces of both links"
            : "replay-timer timeouts / transmitted TLPs, "
              "device-side interfaces of all links",
        stats::Unit::Ratio);
}

void
Fabric::auditConfig()
{
    const SystemConfig &c = desc_.config;
    const SystemConfig def;
    const bool legacy_io = desc_.style == "legacy-io";
    const bool have_links = !links_.empty();
    const bool have_disk = !disks_.empty();
    bool have_endpoint = false;
    for (const Node &n : nodes_)
        have_endpoint = have_endpoint || n.dev != nullptr;

    // One entry per knob that some topology shapes ignore: a knob
    // explicitly set away from its default but never consumed by
    // this fabric is almost certainly a configuration mistake, so
    // say so instead of silently simulating something else.
    struct Knob
    {
        const char *name;
        bool set;
        bool used;
    };
    const Knob knobs[] = {
        {"gen", c.gen != def.gen, have_links},
        {"upstream_link_width",
         c.upstreamLinkWidth != def.upstreamLinkWidth,
         usedUpstreamWidth_},
        {"downstream_link_width",
         c.downstreamLinkWidth != def.downstreamLinkWidth,
         usedDownstreamWidth_},
        {"rc_latency_ns", c.rcLatency != def.rcLatency, !legacy_io},
        {"switch_latency_ns", c.switchLatency != def.switchLatency,
         !switchIdx_.empty()},
        {"port_buffer_size",
         c.portBufferSize != def.portBufferSize, !legacy_io},
        {"replay_buffer_size",
         c.replayBufferSize != def.replayBufferSize, have_links},
        {"link_propagation_ns",
         c.linkPropagation != def.linkPropagation, have_links},
        {"ack_immediate", c.ackImmediate != def.ackImmediate,
         have_links},
        {"replay_timeout_scale",
         c.replayTimeoutScale != def.replayTimeoutScale,
         have_links},
        {"switch_downstream_ports",
         c.switchDownstreamPorts != def.switchDownstreamPorts,
         usedSwitchPorts_},
        {"link_bit_error_rate",
         c.linkBitErrorRate != def.linkBitErrorRate, have_links},
        {"fault_seed", c.faultSeed != def.faultSeed, have_links},
        {"enable_nak", c.enableNak != def.enableNak, have_links},
        {"retrain_latency_ns",
         c.retrainLatency != def.retrainLatency, have_links},
        {"aer_enabled", c.aerEnabled != def.aerEnabled, !legacy_io},
        {"degrade_threshold",
         c.degradeThreshold != def.degradeThreshold, have_links},
        {"unplug_at_chunk", c.unplugAtChunk != def.unplugAtChunk,
         have_disk},
        {"replug_delay_ns", c.replugDelay != def.replugDelay,
         have_disk},
        {"intx_latency_ns", c.intxLatency != def.intxLatency,
         desc_.enumerate && have_endpoint},
    };
    for (const Knob &k : knobs) {
        if (k.set && !k.used) {
            warn("fabric: config knob '", k.name,
                 "' is set but unused by this topology");
        }
    }
}

void
Fabric::boot()
{
    if (booted_)
        return;
    fatalIf(!desc_.enumerate,
            "fabric '", desc_.source, "' was built with "
            "\"enumerate\": false and cannot boot; drive it with "
            "runDirectWrites()");
    booted_ = true;
    sim_.initialize();
    kernel_->enumerate();
    if (!ideDrivers_.empty() || !nicDrivers_.empty())
        kernel_->probeDrivers();
    if (!nicDrivers_.empty()) {
        // Let the timed probe sequence (reset, EEPROM, rings)
        // finish.
        sim_.run();
        fatalIf(!nicDrivers_[0]->probed(),
                "boot failed: e1000e driver did not finish probing");
    }
    for (auto &drv : ideDrivers_) {
        fatalIf(!drv->probed(),
                "boot failed: the IDE driver did not probe the disk");
    }
}

double
Fabric::runDd(const DdWorkloadParams &dd)
{
    fatalIf(disks_.empty(),
            "fabric '", desc_.source, "' has no IDE disk to dd");
    boot();
    DdWorkload workload(*kernel_, *ideDrivers_[0], dd);
    bool done = false;
    workload.run([&done] { done = true; });
    sim_.run();
    fatalIf(!done, "dd did not complete (deadlock?)");
    // Flush the final partial epoch (without resetting, so the
    // caller's end-of-run readouts survive), then export
    // machine-readable stats while the workload is still alive.
    if (dumper_)
        dumper_->dumpEpoch(false);
    if (!desc_.config.statsJsonOut.empty())
        exportStatsJson(desc_.config.statsJsonOut);
    return workload.throughputGbps();
}

Addr
Fabric::genMmioBase(unsigned i)
{
    boot();
    const EnumeratedFunction *fn =
        kernel_->enumerate().find(gens_.at(i)->bdf());
    panicIf(fn == nullptr || fn->bars.empty(),
            "traffic generator was not enumerated");
    return fn->bars[0].start();
}

Addr
Fabric::nicMmioBase(unsigned i)
{
    const EnumeratedFunction *fn =
        kernel_->enumerate().find(nics_.at(i)->bdf());
    panicIf(fn == nullptr || fn->bars.empty(),
            "NIC was not enumerated");
    return fn->bars[0].start();
}

double
Fabric::runConcurrentWrites(unsigned active, unsigned bursts,
                            std::uint32_t burst_bytes)
{
    boot();
    panicIf(active == 0 || active > gens_.size(),
            "bad active device count");

    // The level-triggered line re-dispatches the handler every
    // delivery period while the asynchronous DONE read is still in
    // flight; without a pending-read guard the ISR queues a fresh
    // read per dispatch behind the kernel's serialized MMIO queue,
    // which diverges whenever the read round-trip exceeds a few
    // dispatch periods. Guard it the way a real ISR would: at most
    // one outstanding DONE read per device.
    std::vector<bool> done_flags(active, false);
    std::vector<bool> read_pending(active, false);
    Tick start = sim_.curTick();
    for (unsigned i = 0; i < active; ++i) {
        Addr mmio = genMmioBase(i);
        Addr target = kernel_->allocDma(burst_bytes, 4096);
        Kernel &k = *kernel_;
        k.mmioWrite(mmio + tgen::regAddrLo, 4,
                    target & 0xffffffff, [] {});
        k.mmioWrite(mmio + tgen::regAddrHi, 4, target >> 32, [] {});
        k.mmioWrite(mmio + tgen::regLength, 4, burst_bytes, [] {});
        k.mmioWrite(mmio + tgen::regCount, 4, bursts, [] {});
        k.mmioWrite(mmio + tgen::regMode, 4, 0, [] {});
        unsigned line = kernel_->enumerate()
                            .find(gens_[i]->bdf())->irqLine;
        k.registerIrqHandler(line, [this, i, mmio, &done_flags,
                                    &read_pending] {
            // ISR: read DONE (deasserts INTx), flag completion.
            if (read_pending[i] || done_flags[i])
                return;
            read_pending[i] = true;
            kernel_->mmioRead(mmio + tgen::regDone, 4,
                              [i, &done_flags,
                               &read_pending](std::uint64_t) {
                read_pending[i] = false;
                done_flags[i] = true;
            });
        });
        k.mmioWrite(mmio + tgen::regCtrl, 4, tgen::ctrlStart, [] {});
    }
    sim_.run();
    unsigned completed = 0;
    for (bool f : done_flags)
        completed += f ? 1 : 0;
    fatalIf(completed != active,
            "concurrent run did not complete (", completed, " of ",
            active, ")");

    Tick elapsed = sim_.curTick() - start;
    double bytes = static_cast<double>(active) * bursts * burst_bytes;
    return bytes * 8.0 / ticksToSeconds(elapsed) / 1e9;
}

Tick
Fabric::measureMmioReadLatency(unsigned iterations)
{
    boot();
    // Read the STATUS register, as a kernel module would.
    MmioProbe probe(*kernel_, nicMmioBase(0) + nicreg::status);
    bool done = false;
    probe.run(iterations, [&done] { done = true; });
    sim_.run();
    fatalIf(!done, "MMIO probe did not complete");
    return probe.meanLatency();
}

double
Fabric::runDirectWrites(std::uint32_t bursts,
                        std::uint32_t burst_bytes)
{
    fatalIf(gens_.empty(),
            "fabric '", desc_.source,
            "' has no traffic generators to drive");
    sim_.initialize();
    Tick start = sim_.curTick();
    for (auto &g : gens_) {
        Addr target = kernel_->allocDma(burst_bytes, 4096);
        g->directStart(target, burst_bytes, bursts);
    }
    sim_.run();
    for (auto &g : gens_) {
        fatalIf(g->burstsCompleted() < bursts,
                "direct run did not complete on '", g->name(), "' (",
                g->burstsCompleted(), " of ", bursts, " bursts)");
    }
    Tick elapsed = sim_.curTick() - start;
    double bytes = static_cast<double>(gens_.size()) * bursts *
                   burst_bytes;
    return elapsed == 0
               ? 0.0
               : bytes * 8.0 / ticksToSeconds(elapsed) / 1e9;
}

void
Fabric::exportStatsJson(const std::string &path)
{
    std::ofstream os(path);
    fatalIf(!os, "cannot open stats.json output '", path, "'");
    sim_.statsRegistry().dumpJson(
        os, sim_.curTick(), dumper_ ? dumper_->epochsDumped() : 0);
}

double
Fabric::diskUplinkReplayFraction()
{
    panicIf(diskIdx_.empty(), "fabric has no disk");
    const auto &iface =
        nodes_[diskIdx_[0]].link->downstreamIf();
    std::uint64_t tx = iface.txTlps();
    return tx == 0 ? 0.0
                   : static_cast<double>(iface.replayedTlps()) /
                         static_cast<double>(tx);
}

std::uint64_t
Fabric::diskUplinkTimeouts()
{
    panicIf(diskIdx_.empty(), "fabric has no disk");
    return nodes_[diskIdx_[0]].link->downstreamIf().timeouts();
}

RootComplex &
Fabric::rootComplex()
{
    panicIf(rootComplex_ == nullptr,
            "legacy-io fabrics have no root complex");
    return *rootComplex_;
}

unsigned
Fabric::numSwitches() const
{
    return static_cast<unsigned>(switches_.size());
}

PcieSwitch &
Fabric::pcieSwitch(unsigned i)
{
    panicIf(i >= switches_.size(), "switch ", i, " does not exist");
    return *switches_[i];
}

std::vector<PcieLink *>
Fabric::links() const
{
    std::vector<PcieLink *> out;
    for (auto &l : links_)
        out.push_back(l.get());
    return out;
}

PcieLink &
Fabric::link(unsigned i)
{
    panicIf(i >= links_.size(), "link ", i, " does not exist");
    return *links_[i];
}

PcieLink *
Fabric::findLink(const std::string &name)
{
    std::string full = "system." + name;
    for (auto &l : links_) {
        if (l->name() == full)
            return l.get();
    }
    return nullptr;
}

unsigned
Fabric::numDisks() const
{
    return static_cast<unsigned>(disks_.size());
}

IdeDisk &
Fabric::disk(unsigned i)
{
    panicIf(i >= disks_.size(), "disk ", i, " does not exist");
    return *disks_[i];
}

IdeDriver &
Fabric::ideDriver(unsigned i)
{
    panicIf(i >= ideDrivers_.size(),
            "IDE driver ", i, " does not exist");
    return *ideDrivers_[i];
}

unsigned
Fabric::numTrafficGens() const
{
    return static_cast<unsigned>(gens_.size());
}

TrafficGen &
Fabric::trafficGen(unsigned i)
{
    panicIf(i >= gens_.size(),
            "traffic generator ", i, " does not exist");
    return *gens_[i];
}

unsigned
Fabric::numNics() const
{
    return static_cast<unsigned>(nics_.size());
}

Nic8254xPcie &
Fabric::nic(unsigned i)
{
    panicIf(i >= nics_.size(), "NIC ", i, " not instantiated");
    return *nics_[i];
}

E1000eDriver &
Fabric::nicDriver(unsigned i)
{
    panicIf(i >= nicDrivers_.size(),
            "driver ", i, " not instantiated");
    return *nicDrivers_[i];
}

EtherWire &
Fabric::wire(unsigned i)
{
    panicIf(i >= wires_.size(), "wire ", i, " does not exist");
    return *wires_[i];
}

} // namespace pciesim
