/**
 * @file
 * PCI-Express timing parameters: generation rates and encodings,
 * the Table I packet overheads, wire-time computation, and the
 * replay-timer timeout formula from the PCI-Express specification
 * (paper Sec. V-C):
 *
 *   ((MaxPayloadSize + TLPOverhead) / Width * AckFactor
 *     + InternalDelay) * 3 + RxL0sAdjustment     [symbol times]
 *
 * with InternalDelay = RxL0sAdjustment = 0 in the paper's model,
 * and the ACK timer period set to 1/3 of the replay timeout.
 */

#ifndef PCIESIM_PCIE_PCIE_TIMING_HH
#define PCIESIM_PCIE_PCIE_TIMING_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace pciesim
{

/** PCI-Express generation. */
enum class PcieGen : std::uint8_t
{
    Gen1 = 1, //!< 2.5 Gbps/lane, 8b/10b
    Gen2 = 2, //!< 5 Gbps/lane, 8b/10b
    Gen3 = 3, //!< 8 Gbps/lane, 128b/130b
    Gen4 = 4, //!< 16 Gbps/lane, 128b/130b
    Gen5 = 5, //!< 32 Gbps/lane, 128b/130b
};

/** Table I: TLP and DLLP overheads, in bytes (symbols). */
namespace overhead
{

constexpr unsigned tlpHeader = 12;  //!< TLP header
constexpr unsigned tlpSeqNum = 2;   //!< data link layer seq number
constexpr unsigned tlpLcrc = 4;     //!< data link layer CRC
constexpr unsigned framing = 2;     //!< STP/END physical framing
/** Total non-payload symbols of a TLP on the wire. */
constexpr unsigned tlpTotal = tlpHeader + tlpSeqNum + tlpLcrc + framing;
/** DLLP: 6-byte body (type + seq + CRC16) + framing. */
constexpr unsigned dllpBody = 6;
constexpr unsigned dllpTotal = dllpBody + framing;

/**
 * TLPOverhead constant of the spec replay-timer formula; the spec
 * uses 28 symbols (header + seq + LCRC + framing + max prefix
 * allowance).
 */
constexpr unsigned replayFormulaTlpOverhead = 28;

} // namespace overhead

/** Static description of one generation's physical layer. */
struct PcieGenInfo
{
    /** Per-lane line rate in gigatransfers (bits on wire) per s. */
    double lineRateGbps;
    /** Wire bits per payload byte (encoding expansion). */
    double bitsPerByte;
};

/** Look up generation parameters. */
constexpr PcieGenInfo
genInfo(PcieGen gen)
{
    switch (gen) {
      case PcieGen::Gen1:
        return {2.5, 10.0};            // 8b/10b
      case PcieGen::Gen2:
        return {5.0, 10.0};            // 8b/10b
      case PcieGen::Gen4:
        return {16.0, 8.0 * 130 / 128}; // 128b/130b
      case PcieGen::Gen5:
        return {32.0, 8.0 * 130 / 128}; // 128b/130b
      case PcieGen::Gen3:
      default:
        return {8.0, 8.0 * 130 / 128}; // 128b/130b
    }
}

/**
 * Time to move one byte (symbol) across one lane, in ticks (ps).
 * Gen 2: 10 bits at 5 Gbps = 2 ns.
 */
constexpr Tick
symbolTime(PcieGen gen)
{
    PcieGenInfo info = genInfo(gen);
    return static_cast<Tick>(info.bitsPerByte / info.lineRateGbps *
                             1000.0);
}

/**
 * Serialization time of @p symbols bytes on a link of @p width
 * lanes. Bytes are striped across lanes (paper Sec. II-B).
 */
constexpr Tick
serializationTime(PcieGen gen, unsigned width, unsigned symbols)
{
    // Round the per-lane symbol count up: a partial stripe still
    // occupies a full symbol time.
    unsigned per_lane = (symbols + width - 1) / width;
    return static_cast<Tick>(per_lane) * symbolTime(gen);
}

/**
 * AckFactor table from the PCI-Express specification, indexed by
 * max payload size and link width. The factor balances ACK traffic
 * against replay-buffer occupancy.
 */
double ackFactor(unsigned max_payload, unsigned width);

/**
 * Replay timer timeout in ticks for the given link configuration
 * (spec formula; InternalDelay and RxL0sAdjustment are zero,
 * paper Sec. V-C).
 *
 * @param max_payload MaxPayloadSize in bytes (the paper uses the
 *                    cache-line size, 64 B).
 */
Tick replayTimeout(PcieGen gen, unsigned width, unsigned max_payload);

/** ACK timer period: 1/3 of the replay timeout (paper Sec. V-C). */
Tick ackTimerPeriod(PcieGen gen, unsigned width, unsigned max_payload);

} // namespace pciesim

#endif // PCIESIM_PCIE_PCIE_TIMING_HH
