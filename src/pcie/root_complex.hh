/**
 * @file
 * The root complex model (paper Sec. V-A, Fig. 6): connects the
 * PCI-Express hierarchy to the MemBus (upstream slave port) and the
 * IOCache (upstream master port, for DMA), with three root ports
 * each fronted by a virtual PCI-to-PCI bridge.
 *
 * Requests are routed downstream by matching the packet address
 * against each VP2P's software-programmed memory / I/O windows;
 * responses are routed by the PCI bus number field that slave ports
 * stamp into request packets (upstream slave stamps 0, each root
 * port slave stamps its VP2P's secondary bus number).
 */

#ifndef PCIESIM_PCIE_ROOT_COMPLEX_HH
#define PCIESIM_PCIE_ROOT_COMPLEX_HH

#include <memory>
#include <vector>

#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "pci/pci_host.hh"
#include "pcie/vp2p.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/** Configuration for a RootComplex. */
struct RootComplexParams
{
    /** Number of root ports (the paper implements three). */
    unsigned numRootPorts = 3;
    /** Request/response processing (switching) latency. */
    Tick latency = nanoseconds(150);
    /** Egress buffer capacity per master or slave port. */
    std::size_t portBufferSize = 16;
    /** Link width/gen advertised in each VP2P's PCIe capability. */
    unsigned linkWidth = 4;
    unsigned linkGen = 2;
};

/**
 * The root complex.
 *
 * Wiring: upstreamSlavePort() <- MemBus master port;
 * upstreamMasterPort() -> IOCache slave port;
 * rootPortMaster(i) -> link upSlave; rootPortSlave(i) <- link
 * upMaster.
 */
class RootComplex : public SimObject
{
  public:
    RootComplex(Simulation &sim, const std::string &name,
                PciHost &host, const RootComplexParams &params = {});
    ~RootComplex() override;

    SlavePort &upstreamSlavePort();
    MasterPort &upstreamMasterPort();
    MasterPort &rootPortMaster(unsigned i);
    SlavePort &rootPortSlave(unsigned i);

    /** The VP2P fronting root port @p i. */
    Vp2p &vp2p(unsigned i);

    unsigned numRootPorts() const { return params_.numRootPorts; }

    void init() override;

    /** Requests dropped/refused due to full port buffers. */
    std::uint64_t bufferRefusals() const
    {
        return bufferRefusals_.value();
    }

  private:
    class UpSlavePort;
    class UpMasterPort;
    class RootMasterPort;
    class RootSlavePort;

    /** CPU-originated request from the MemBus. */
    bool handleUpstreamRequest(const PacketPtr &pkt);
    /** DMA request arriving at root port @p i. */
    bool handleDownstreamRequest(const PacketPtr &pkt, unsigned i);
    /** DMA response returning from the IOCache. */
    bool handleUpstreamResponse(const PacketPtr &pkt);
    /** PIO (or peer-to-peer) response from root port @p i. */
    bool handleDownstreamResponse(const PacketPtr &pkt, unsigned i);

    /** Root port whose VP2P claims @p addr; -1 when none. */
    int routeByAddress(Addr addr) const;

    /** Root port whose VP2P bus range covers @p bus; -1 when none. */
    int routeByBus(int bus) const;

    RootComplexParams params_;
    PciHost &host_;

    std::unique_ptr<UpSlavePort> upSlave_;
    std::unique_ptr<UpMasterPort> upMaster_;
    std::vector<std::unique_ptr<RootMasterPort>> rootMasters_;
    std::vector<std::unique_ptr<RootSlavePort>> rootSlaves_;
    std::vector<std::unique_ptr<Vp2p>> vp2ps_;

    /** Egress queues. */
    std::unique_ptr<PacketQueue> upReqQueue_;   //!< to IOCache
    std::unique_ptr<PacketQueue> upRespQueue_;  //!< to MemBus
    std::vector<std::unique_ptr<PacketQueue>> downReqQueues_;
    std::vector<std::unique_ptr<PacketQueue>> downRespQueues_;

    /** Refused-sender bookkeeping for protocol retries. */
    bool memBusWantsRetry_ = false;
    bool ioCacheWantsRetryResp_ = false;
    std::vector<bool> linkWantsReqRetry_;
    std::vector<bool> linkWantsRespRetry_;

    stats::Counter fwdDownRequests_;
    stats::Counter fwdUpRequests_;
    stats::Counter fwdDownResponses_;
    stats::Counter fwdUpResponses_;
    stats::Counter bufferRefusals_;
    /** @{ Per-root-port forwarding breakdown. */
    stats::Vector portRequests_;
    stats::Vector portResponses_;
    /** @} */
};

} // namespace pciesim

#endif // PCIESIM_PCIE_ROOT_COMPLEX_HH
