/**
 * @file
 * The PCI-Express link model (paper Sec. V-C, Fig. 8): two
 * unidirectional serializing links plus a link interface at each
 * end implementing a simplified data link layer - sequence numbers,
 * a bounded replay buffer, ACK DLLPs, a replay timer with the
 * spec timeout formula, and an ACK timer at 1/3 of it.
 *
 * Transmission priority (paper Sec. V-C):
 *   1. ACK DLLPs   2. retransmitted TLPs   3. new TLPs.
 *
 * Backpressure semantics: an interface accepts a TLP from its
 * external ports only while its replay buffer has room (source
 * throttling); a TLP whose delivery is refused by the far end's
 * connected port is dropped there and recovered by the sender's
 * replay timeout - exactly the mechanism behind the paper's x8
 * congestion results.
 *
 * Fault recovery (DESIGN.md §7): with fault injection (or
 * enableNak) configured, the interfaces additionally run the spec
 * ACK/NAK machinery - LCRC-failed and out-of-sequence TLPs are
 * NAKed (one outstanding NAK per loss window), a NAK triggers an
 * immediate replay, and REPLAY_NUM replays of the same TLP bring
 * the link down for a retrain. With faults disabled the legacy
 * replay-timeout-only model above is bit-identical.
 */

#ifndef PCIESIM_PCIE_PCIE_LINK_HH
#define PCIESIM_PCIE_PCIE_LINK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "pci/aer.hh"
#include "pcie/fault_injector.hh"
#include "pcie/pcie_pkt.hh"
#include "pcie/pcie_timing.hh"
#include "pcie/replay_buffer.hh"
#include "sim/invariant.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/** Configuration for a PcieLink. */
struct PcieLinkParams
{
    PcieGen gen = PcieGen::Gen2;
    /** Number of lanes (1..32). */
    unsigned width = 1;
    /** Signal propagation delay per direction. */
    Tick propagationDelay = nanoseconds(1);
    /** MaxPayloadSize used in the replay-timer formula; the paper
     *  sets it to the cache-line size. */
    unsigned maxPayload = 64;
    /** Replay buffer capacity per interface (paper default 4). */
    std::size_t replayBufferSize = 4;
    /** Send ACKs immediately instead of on the ACK timer. */
    bool ackImmediate = false;
    /**
     * Multiplier on the spec replay-timeout formula. The formula's
     * InternalDelay term (receiver/transmitter internal processing)
     * is zero in the paper's model; real devices add hundreds of
     * symbol times. A scale > 1 approximates that without a
     * separate InternalDelay parameter.
     */
    double replayTimeoutScale = 1.0;
    /** Fault injection applied to both directions of the link. */
    FaultInjectorParams faults;
    /**
     * Run the NAK/retrain recovery machinery even with no faults
     * configured. It is forced on whenever faults are enabled; off
     * by default so the fault-free model recovers by replay
     * timeout alone, unchanged.
     */
    bool enableNak = false;
    /** Replays of the same TLP that trigger a link retrain. */
    unsigned replayNumThreshold = 4;
    /** Time the link stays down during a retrain. */
    Tick retrainLatency = microseconds(1);
    /**
     * Link errors within degradeWindow that trigger a downtrain —
     * one speed Gen at a time, then width halving — so a noisy link
     * degrades gracefully instead of livelocking in replay.
     * 0 disables link degradation (the default; bit-identical to
     * the pre-degradation model).
     */
    unsigned degradeThreshold = 0;
    /** Window over which errors count toward degradation. */
    Tick degradeWindow = microseconds(100);
    /**
     * Base back-off before an upconfigure attempt restores one
     * ladder step; doubled per consecutive degradation and jittered
     * by a seeded RNG so repeated attempts desynchronise.
     */
    Tick upconfigureDelay = milliseconds(1);
};

/**
 * Error/recovery counters of one link interface, or (summed) of a
 * whole link - the uniform accessor integration tests and benches
 * use to query any link of a topology.
 */
struct LinkErrorStats
{
    std::uint64_t txTlps = 0;
    std::uint64_t replayedTlps = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t deliveryRefusals = 0;
    std::uint64_t acceptRefusals = 0;
    std::uint64_t duplicateTlps = 0;
    std::uint64_t outOfOrderDrops = 0;
    std::uint64_t crcErrorsTlp = 0;
    std::uint64_t crcErrorsDllp = 0;
    std::uint64_t naksSent = 0;
    std::uint64_t naksReceived = 0;
    std::uint64_t retrains = 0;
    std::uint64_t degradations = 0;
    std::uint64_t upconfigures = 0;

    LinkErrorStats &
    operator+=(const LinkErrorStats &o)
    {
        txTlps += o.txTlps;
        replayedTlps += o.replayedTlps;
        timeouts += o.timeouts;
        deliveryRefusals += o.deliveryRefusals;
        acceptRefusals += o.acceptRefusals;
        duplicateTlps += o.duplicateTlps;
        outOfOrderDrops += o.outOfOrderDrops;
        crcErrorsTlp += o.crcErrorsTlp;
        crcErrorsDllp += o.crcErrorsDllp;
        naksSent += o.naksSent;
        naksReceived += o.naksReceived;
        retrains += o.retrains;
        degradations += o.degradations;
        upconfigures += o.upconfigures;
        return *this;
    }
};

class PcieLink;

/**
 * One direction of the link: serializes a PciePkt for its wire time
 * and delivers it to the sink interface after propagation.
 *
 * In a partitioned simulation the two ends can live in different
 * link domains (PcieLink::setDomains): send() then runs on the
 * source domain and delivery on the sink domain, with the in-flight
 * queue as the only shared state (guarded by a mutex on cut wires
 * only) and the delivery event posted through the engine's mailbox.
 */
class UnidirectionalLink
{
  public:
    UnidirectionalLink(PcieLink &link, const std::string &name,
                       bool toward_upstream);

    const std::string &name() const { return name_; }

    /** Bind the source (sender) and sink (receiver) domains. */
    void
    setQueues(EventQueue *src, EventQueue *sink)
    {
        srcQueue_ = src;
        sinkQueue_ = sink;
        cross_ = src != sink;
    }

    /** Earliest tick a new packet may start serializing. */
    Tick freeAt() const { return busyUntil_; }
    bool busy(Tick now) const { return busyUntil_ > now; }

    /** Accumulated wire-occupied ticks (utilization numerator). */
    Tick busyTicks() const { return busyTicks_; }

    /** Begin transmitting; panics when busy. */
    void send(const PciePkt &pkt);

    /** Attach the fault state for this direction. */
    void setFaultInjector(FaultInjector *f) { faults_ = f; }

    /** Retrain: every packet on the wire is lost. */
    void dropInFlight();

  private:
    void deliver();

    PcieLink &link_;
    std::string name_;
    bool towardUpstream_;
    FaultInjector *faults_ = nullptr;
    /** Sender domain (send() runs here); busyUntil_ is its state. */
    EventQueue *srcQueue_ = nullptr;
    /** Sink domain; deliverEvent_ lives in this queue. */
    EventQueue *sinkQueue_ = nullptr;
    /** The two ends live in different domains. */
    bool cross_ = false;
    Tick busyUntil_ = 0;
    Tick busyTicks_ = 0;

    /** One packet on the wire. On a cut wire the delivery event can
     *  be armed for this arrival either by the sender's mailboxed
     *  schedule-if-earlier or by the sink rearming after the
     *  previous delivery — whichever the wall clock happens to order
     *  first — so the arming key is fixed at send time and carried
     *  here, keeping the heap order a pure function of simulated
     *  history. */
    struct InFlight
    {
        Tick arrive;
        Tick keyOrder;
        std::uint64_t keyTie;
        PciePkt pkt;
    };
    std::deque<InFlight> inFlight_;
    /** Guards inFlight_; taken on cut wires only. */
    std::mutex inFlightMu_;
    MemberEventWrapper<UnidirectionalLink,
                       &UnidirectionalLink::deliver> deliverEvent_;
};

/**
 * The TX + RX logic at one end of the link (Fig. 8).
 *
 * External connection points: extMaster() delivers requests into
 * the adjacent component and receives its responses; extSlave()
 * accepts requests from it and delivers responses to it.
 */
class LinkInterface
{
  public:
    LinkInterface(PcieLink &link, const std::string &name,
                  bool is_upstream);

    MasterPort &extMaster();
    SlavePort &extSlave();

    /** @{ Hooks called by the owning PcieLink. */
    void setTxLink(UnidirectionalLink *tx) { txLink_ = tx; }
    void setPeer(LinkInterface *peer) { peer_ = peer; }
    void recvFromWire(const PciePkt &pkt);
    void registerStats();
    /** @} */

    /** @{ Introspection for tests and benches. */
    std::uint64_t txTlps() const { return txTlps_.value(); }
    std::uint64_t replayedTlps() const { return replayedTlps_.value(); }
    std::uint64_t timeouts() const { return timeouts_.value(); }
    std::uint64_t deliveryRefusals() const
    {
        return deliveryRefusals_.value();
    }
    std::uint64_t crcErrorsTlp() const { return crcErrorsTlp_.value(); }
    std::uint64_t
    crcErrorsDllp() const
    {
        return crcErrorsDllp_.value();
    }
    std::uint64_t naksSent() const { return naksSent_.value(); }
    std::uint64_t naksReceived() const { return naksReceived_.value(); }
    std::uint64_t retrains() const { return retrains_.value(); }
    std::uint64_t acceptRefusals() const
    {
        return acceptRefusals_.value();
    }

    /**
     * Simulated ticks this interface spent refusing new TLPs for
     * lack of replay-buffer credit (closed intervals: first refusal
     * to the retry notification that reopened acceptance). The
     * fabric roll-up (DESIGN.md §14) sums this across links.
     */
    Tick creditStallTicks() const
    {
        return static_cast<Tick>(creditStallTicks_.value());
    }

    /** TLPs currently resident in the replay buffer (sampler). */
    std::size_t replayDepth() const { return replayBuffer_.size(); }

    /** Per-hop TLP latency (inject to delivery), in ticks. */
    const stats::Histogram &hopLatency() const { return hopLatency_; }

    /** TLP inject-to-ACK-purge latency, in ticks. */
    const stats::Histogram &ackLatency() const { return ackLatency_; }

    /** Every counter of this interface in one struct. */
    LinkErrorStats errorStats() const;
    /** @} */

    PCIESIM_AUDIT_ONLY(
    /** @{
     * Test hooks (audit builds only): force an illegal NAK
     * bookkeeping state and re-run the audit, so the audit death
     * tests can prove the invariants fire.
     */
    void
    corruptNakStateForAuditTest()
    {
        nakPending_ = true;
        nakScheduled_ = false;
        auditNakState();
    }

    void
    corruptReplayNumForAuditTest()
    {
        replayNum_ = 1000;
        auditNakState();
    }
    /** @} */)

  private:
    class ExtMasterPort;
    class ExtSlavePort;

    /** Accept a TLP from an external port. */
    bool acceptTlp(const PacketPtr &pkt);

    /** Whether a new TLP can be accepted right now. */
    bool canAcceptTlp() const;

    /** Try to start a transmission if the wire is free. */
    void tryTransmit();
    void scheduleTx();

    void processAck(SeqNum seq);
    void processNak(SeqNum seq);
    void processTlp(const PciePkt &pkt);

    void scheduleAckDllp(bool immediate);
    void ackTimerFired();
    void replayTimerFired();
    void startReplayTimer();

    /** Issue protocol retries after replay-buffer space frees. */
    void notifyExternalRetry();

    /** Whether the NAK/retrain machinery is active on this link. */
    bool nakEnabled() const { return nakEnabled_; }

    /** RX: queue a NAK for a loss (one per loss window). */
    void scheduleNak();

    /** TX: count a replay of the head TLP; may start a retrain. */
    void noteReplayInitiated();

    /** @{ Retrain hooks called by the owning PcieLink. */
    void prepareForRetrain();
    void resumeAfterRetrain();
    /** @} */

    /** Audit builds: NAK bookkeeping and REPLAY_NUM invariants. */
    void auditNakState() const;

    PcieLink &link_;
    std::string name_;
    bool isUpstream_;
    /** The domain queue this interface's events and clock live on
     *  (the owning link's queue until setDomains() splits them). */
    EventQueue *homeQueue_ = nullptr;
    UnidirectionalLink *txLink_ = nullptr;
    LinkInterface *peer_ = nullptr;

    std::unique_ptr<ExtMasterPort> extMaster_;
    std::unique_ptr<ExtSlavePort> extSlave_;

    ReplayBuffer replayBuffer_;
    /** Next sequence number to assign (TX). */
    SeqNum sendSeq_ = 0;
    /** Next sequence number expected (RX). */
    SeqNum recvSeq_ = 0;

    /** Accepted TLPs waiting for first transmission. */
    std::deque<PciePkt> newQueue_;
    /** TLPs queued for retransmission after a timeout. */
    std::deque<PciePkt> replayQueue_;
    /** Coalesced pending ACK. */
    bool ackPending_ = false;
    SeqNum ackSeq_ = 0;

    /** NAK machinery active (faults configured or enableNak). */
    bool nakEnabled_ = false;
    /** NAK DLLP queued for transmission. */
    bool nakPending_ = false;
    SeqNum nakSeq_ = 0;
    /** NAK_SCHEDULED: a loss window is open; at most one NAK is
     *  sent per window (cleared when the expected TLP arrives). */
    bool nakScheduled_ = false;
    /** REPLAY_NUM: consecutive replays of the same head TLP. */
    unsigned replayNum_ = 0;
    SeqNum replayHeadSeq_ = 0;
    bool replayHeadValid_ = false;

    bool wantReqRetry_ = false;
    bool wantRespRetry_ = false;

    /** A credit-stall interval is open: the first refusal has been
     *  seen and acceptance has not resumed since. */
    bool creditStalled_ = false;
    Tick creditStallStart_ = 0;

    MemberEventWrapper<LinkInterface,
                       &LinkInterface::tryTransmit> txEvent_;
    MemberEventWrapper<LinkInterface,
                       &LinkInterface::ackTimerFired> ackTimerEvent_;
    MemberEventWrapper<LinkInterface,
                       &LinkInterface::replayTimerFired> replayTimerEvent_;

    stats::Counter txTlps_;
    stats::Counter txDllps_;
    stats::Counter rxTlps_;
    stats::Counter rxDllps_;
    stats::Counter replayedTlps_;
    stats::Counter timeouts_;
    stats::Counter duplicateTlps_;
    stats::Counter outOfOrderDrops_;
    stats::Counter deliveryRefusals_;
    stats::Counter acceptRefusals_;
    stats::Counter creditStallTicks_;
    stats::Counter crcErrorsTlp_;
    stats::Counter crcErrorsDllp_;
    stats::Counter naksSent_;
    stats::Counter naksReceived_;
    stats::Counter retrains_;
    stats::Histogram hopLatency_;
    stats::Histogram ackLatency_;
    /** @{ Dump-time formulas (stats v2). */
    stats::Formula replayFraction_;
    stats::Formula replayHighWater_;
    /** @} */

    friend class PcieLink;
};

/**
 * A full PCI-Express link: upstream interface + downstream
 * interface + two unidirectional links.
 *
 * Wiring convention: the upstream interface faces the root complex
 * or a switch downstream port; the downstream interface faces a
 * device or a switch upstream port.
 */
class PcieLink : public SimObject
{
  public:
    PcieLink(Simulation &sim, const std::string &name,
             const PcieLinkParams &params = {});
    ~PcieLink() override;

    /** @{ Upstream-side connection points (toward the RC). */
    MasterPort &upMaster();
    SlavePort &upSlave();
    /** @} */

    /** @{ Downstream-side connection points (toward the device). */
    MasterPort &downMaster();
    SlavePort &downSlave();
    /** @} */

    void init() override;

    const PcieLinkParams &params() const { return params_; }

    /** The replay timeout for this link's configuration. */
    Tick replayTimeoutTicks() const { return replayTimeout_; }

    /** The ACK timer period for this link's configuration. */
    Tick ackPeriodTicks() const { return ackPeriod_; }

    LinkInterface &upstreamIf() { return *upstreamIf_; }
    LinkInterface &downstreamIf() { return *downstreamIf_; }

    /**
     * Split the link across two link domains (DESIGN.md §10): the
     * upstream interface (and packets delivered toward the RC) runs
     * on @p up_q, the downstream interface on @p down_q. The link's
     * flight latency becomes the conservative lookahead between the
     * two domains, so it must be at least the engine's quantum.
     * Fatal when the link has fault injection or NAK recovery
     * enabled — retraining touches both ends atomically, so faulty
     * links must stay within one domain.
     */
    void setDomains(EventQueue &up_q, EventQueue &down_q);

    /** Whether the link is down, retraining. */
    bool training() const { return training_; }

    /** @{ Current operating point — params() values until the
     *  degradation ladder (DESIGN.md §12) steps them down. */
    PcieGen currentGen() const { return curGen_; }
    unsigned currentWidth() const { return curWidth_; }
    bool degraded() const;
    /** @} */

    /**
     * Upward error signalling: the sink receives every ERR_COR /
     * ERR_NONFATAL / ERR_FATAL message this link generates, tagged
     * with the AER status bit and the detecting end. Wired by the
     * system builder toward the root complex; unset, errors stay
     * local to the link counters (the pre-AER behaviour).
     */
    using ErrorSink = std::function<void(
        ErrSeverity sev, std::uint32_t aer_bit, bool at_upstream_end)>;
    void setErrorSink(ErrorSink sink) { errorSink_ = std::move(sink); }

    /** Summed error/recovery counters of both interfaces. */
    LinkErrorStats errorStats() const;

    /** @{
     * Fabric roll-up hooks (DESIGN.md §14): raw occupancy and
     * credit-stall totals the topology builder aggregates into
     * "system.fabric.*" formulas.
     */
    /** Busy ticks per wire direction ("up" carries device -> RC). */
    Tick wireUpBusyTicks() const;
    Tick wireDownBusyTicks() const;
    /** Credit-stall ticks summed over both interfaces. */
    Tick creditStallTicks() const;
    /** Accept refusals summed over both interfaces. */
    std::uint64_t acceptRefusals() const;
    /** @} */

    /** @{ Per-direction fault state (tests, benches). The
     *  "toward upstream" wire carries device -> RC traffic. */
    FaultInjector &faultsTowardUpstream() { return *faultsToUp_; }
    FaultInjector &faultsTowardDownstream() { return *faultsToDown_; }
    /** @} */

  private:
    friend class UnidirectionalLink;
    friend class LinkInterface;

    /** Take the link down after REPLAY_NUM exhaustion: in-flight
     *  packets are lost, timers stop, and the link comes back after
     *  retrainLatency with a full replay. */
    void startRetrain(LinkInterface &initiator);
    void retrainDone();

    /** Escalate one detected error: sink + degradation ladder. */
    void reportLinkError(ErrSeverity sev, std::uint32_t bit,
                         bool at_upstream_end);
    /** @{ Degradation ladder (DESIGN.md §12). */
    void noteErrorForDegradation();
    bool canDegrade() const;
    void recomputeTimers();
    void degradeRetrain();
    void upconfigureTimerFired();
    void scheduleUpconfigure();
    /** @} */

    PcieLinkParams params_;
    Tick replayTimeout_;
    Tick ackPeriod_;
    bool training_ = false;
    /** @{ Current operating point and degradation state. */
    PcieGen curGen_;
    unsigned curWidth_;
    ErrorSink errorSink_;
    Tick errWindowStart_ = 0;
    unsigned errInWindow_ = 0;
    bool degradePending_ = false;
    bool upconfigurePending_ = false;
    /** Consecutive degradations since the last full restore; feeds
     *  the exponential upconfigure back-off. */
    unsigned consecutiveDegrades_ = 0;
    Rng degradeRng_;
    stats::Counter degradations_;
    stats::Counter upconfigures_;
    stats::Formula currentGenStat_;
    stats::Formula currentWidthStat_;
    MemberEventWrapper<PcieLink,
                       &PcieLink::degradeRetrain> degradeEvent_;
    MemberEventWrapper<PcieLink,
                       &PcieLink::upconfigureTimerFired>
        upconfigureEvent_;
    /** @} */
    std::unique_ptr<FaultInjector> faultsToUp_;
    std::unique_ptr<FaultInjector> faultsToDown_;
    std::unique_ptr<LinkInterface> upstreamIf_;
    std::unique_ptr<LinkInterface> downstreamIf_;
    std::unique_ptr<UnidirectionalLink> toUpstream_;
    std::unique_ptr<UnidirectionalLink> toDownstream_;
    /** Wire-occupancy fraction per direction, evaluated at dump. */
    stats::Formula wireUpUtilization_;
    stats::Formula wireDownUtilization_;
    MemberEventWrapper<PcieLink,
                       &PcieLink::retrainDone> retrainDoneEvent_;
};

} // namespace pciesim

#endif // PCIESIM_PCIE_PCIE_LINK_HH
