/**
 * @file
 * The PCI-Express switch model (paper Sec. V-B): one upstream port
 * and one or more downstream ports, every port fronted by a VP2P
 * (in contrast to the root complex, where only root ports have
 * VP2Ps). The model is store-and-forward with a configurable switch
 * latency; a typical market part is ~150 ns cut-through, which the
 * paper sweeps 50-150 ns.
 *
 * Unlike the root complex, the upstream slave port accepts the
 * address range programmed into the *upstream* VP2P's base/limit
 * registers (paper Sec. V-B).
 */

#ifndef PCIESIM_PCIE_PCIE_SWITCH_HH
#define PCIESIM_PCIE_PCIE_SWITCH_HH

#include <memory>
#include <vector>

#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "pcie/vp2p.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/** Configuration for a PcieSwitch. */
struct PcieSwitchParams
{
    unsigned numDownstreamPorts = 2;
    /** Store-and-forward switching latency. */
    Tick latency = nanoseconds(150);
    /** Egress buffer capacity per master or slave port. */
    std::size_t portBufferSize = 16;
    unsigned linkWidth = 1;
    unsigned linkGen = 2;
    /**
     * Per-downstream-port error containment (DESIGN.md §12): on a
     * FATAL error the port goes down, queued TLPs are dropped, and
     * subsequent requests complete as unsupported requests
     * (all-ones). Off by default; when off the containment stats
     * are not registered either, keeping dumps identical.
     */
    bool enableContainment = false;
};

/**
 * A PCI-Express switch.
 *
 * Wiring: upstreamSlavePort() <- upstream link downMaster;
 * upstreamMasterPort() -> upstream link downSlave;
 * downstreamMaster(i) -> downstream link i upSlave;
 * downstreamSlave(i) <- downstream link i upMaster.
 *
 * The caller (system builder) registers upstreamVp2p() and each
 * downstreamVp2p(i) with the PciHost at BDFs matching the
 * enumeration DFS order.
 */
class PcieSwitch : public SimObject
{
  public:
    PcieSwitch(Simulation &sim, const std::string &name,
               const PcieSwitchParams &params = {});
    ~PcieSwitch() override;

    SlavePort &upstreamSlavePort();
    MasterPort &upstreamMasterPort();
    MasterPort &downstreamMaster(unsigned i);
    SlavePort &downstreamSlave(unsigned i);

    Vp2p &upstreamVp2p();
    Vp2p &downstreamVp2p(unsigned i);

    unsigned numDownstreamPorts() const
    {
        return params_.numDownstreamPorts;
    }

    void init() override;

    std::uint64_t bufferRefusals() const
    {
        return bufferRefusals_.value();
    }

    /** @{ Per-downstream-port error containment (DESIGN.md §12).
     *  Containing a port drops its queued TLPs; while contained,
     *  downward reads complete all-ones (UR), everything else is
     *  dropped. Release re-opens the port (after the device behind
     *  it has been reset). */
    void containDownstreamPort(unsigned i);
    void releaseDownstreamPort(unsigned i);
    bool portContained(unsigned i) const;
    /** Downstream port whose bus range covers @p bus; -1 if none. */
    int downstreamPortForBus(unsigned bus) const;
    std::uint64_t containedDrops() const
    {
        return containedDrops_.value();
    }
    std::uint64_t urCompletions() const
    {
        return urCompletions_.value();
    }
    /** @} */

  private:
    class UpSlavePort;
    class UpMasterPort;
    class DownMasterPort;
    class DownSlavePort;

    bool handleDownwardRequest(const PacketPtr &pkt);
    bool handleUpwardRequest(const PacketPtr &pkt, unsigned i);
    bool handleDownwardResponse(const PacketPtr &pkt);
    bool handleUpwardResponse(const PacketPtr &pkt, unsigned i);

    int routeByAddress(Addr addr) const;
    int routeByBus(int bus) const;

    PcieSwitchParams params_;

    std::unique_ptr<UpSlavePort> upSlave_;
    std::unique_ptr<UpMasterPort> upMaster_;
    std::vector<std::unique_ptr<DownMasterPort>> downMasters_;
    std::vector<std::unique_ptr<DownSlavePort>> downSlaves_;
    std::unique_ptr<Vp2p> upVp2p_;
    std::vector<std::unique_ptr<Vp2p>> downVp2ps_;

    std::unique_ptr<PacketQueue> upReqQueue_;
    std::unique_ptr<PacketQueue> upRespQueue_;
    std::vector<std::unique_ptr<PacketQueue>> downReqQueues_;
    std::vector<std::unique_ptr<PacketQueue>> downRespQueues_;

    /** Containment flags, one per downstream port. */
    std::vector<bool> contained_;

    stats::Counter fwdDownRequests_;
    stats::Counter fwdUpRequests_;
    stats::Counter fwdDownResponses_;
    stats::Counter fwdUpResponses_;
    stats::Counter bufferRefusals_;
    /** @{ Per-downstream-port forwarding breakdown. */
    stats::Vector portRequests_;
    stats::Vector portResponses_;
    /** @} */
    /** @{ Containment stats (registered only when enabled). */
    stats::Counter containments_;
    stats::Counter containedDrops_;
    stats::Counter urCompletions_;
    /** @} */
};

} // namespace pciesim

#endif // PCIESIM_PCIE_PCIE_SWITCH_HH
