#include "pcie_timing.hh"

#include <cmath>

#include "sim/logging.hh"

namespace pciesim
{

double
ackFactor(unsigned max_payload, unsigned width)
{
    // PCI-Express Base Specification Ack transmission latency
    // table. Values for widths between table columns use the next
    // larger width's factor. Payloads of 128 B or less share the
    // first row; the paper's 64 B MaxPayloadSize uses it.
    struct Row
    {
        unsigned payload;
        double x1, x2, x4, x8, x12plus;
    };
    static constexpr Row rows[] = {
        {128, 1.4, 1.4, 1.4, 2.5, 3.0},
        {256, 1.4, 1.4, 1.4, 2.5, 3.0},
        {512, 1.4, 1.4, 1.4, 2.5, 3.0},
        {1024, 2.4, 2.4, 1.4, 2.5, 3.0},
        {2048, 1.4, 1.4, 1.4, 2.5, 3.0},
        {4096, 1.4, 1.4, 1.4, 2.5, 3.0},
    };

    const Row *row = &rows[0];
    for (const Row &r : rows) {
        row = &r;
        if (max_payload <= r.payload)
            break;
    }

    if (width <= 1)
        return row->x1;
    if (width <= 2)
        return row->x2;
    if (width <= 4)
        return row->x4;
    if (width <= 8)
        return row->x8;
    return row->x12plus;
}

Tick
replayTimeout(PcieGen gen, unsigned width, unsigned max_payload)
{
    panicIf(width == 0 || width > 32,
            "PCI-Express link width must be 1..32, got ", width);
    double symbols =
        (static_cast<double>(max_payload) +
         overhead::replayFormulaTlpOverhead) /
            static_cast<double>(width) *
            ackFactor(max_payload, width) * 3.0;
    Tick t = static_cast<Tick>(
        std::ceil(symbols * static_cast<double>(symbolTime(gen))));
    return t == 0 ? 1 : t;
}

Tick
ackTimerPeriod(PcieGen gen, unsigned width, unsigned max_payload)
{
    Tick t = replayTimeout(gen, width, max_payload) / 3;
    return t == 0 ? 1 : t;
}

} // namespace pciesim
