/**
 * @file
 * Deterministic fault injection for one direction of a PCI-Express
 * link. Two fault sources compose:
 *
 *  - A per-lane bit-error rate, converted to an LCRC-failure
 *    probability per packet from its wire size in encoded bits
 *    (p = 1 - (1 - BER)^bits), drawn from a seeded per-object PRNG
 *    (sim/rng.hh) so runs are bit-reproducible.
 *  - Scripted faults for unit tests: "corrupt the Nth TLP of this
 *    direction" and "corrupt everything inside tick window [a, b)".
 *
 * A corrupted packet is not dropped on the wire: it arrives, fails
 * the receiver's LCRC check, and is discarded there, which is what
 * drives the NAK / replay-timer recovery paths (pcie_link.cc).
 */

#ifndef PCIESIM_PCIE_FAULT_INJECTOR_HH
#define PCIESIM_PCIE_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "pcie/pcie_pkt.hh"
#include "pcie/pcie_timing.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace pciesim
{

/** Fault configuration for one link (both directions share it). */
struct FaultInjectorParams
{
    /** Per-lane bit-error rate; 0 disables random corruption. */
    double bitErrorRate = 0.0;
    /** PRNG seed; each direction derives its own stream from it. */
    std::uint64_t seed = 1;
    /** Scripted: corrupt these TLPs of a direction (1 = first). */
    std::vector<std::uint64_t> corruptTlpNumbers;
    /** Scripted: corrupt these DLLPs of a direction (1 = first). */
    std::vector<std::uint64_t> corruptDllpNumbers;
    /** @{ Scripted: corrupt every packet sent in [begin, end). */
    Tick corruptWindowBegin = 0;
    Tick corruptWindowEnd = 0;
    /** @} */

    /** Whether any fault source is configured. */
    bool
    enabled() const
    {
        return bitErrorRate > 0.0 || !corruptTlpNumbers.empty() ||
               !corruptDllpNumbers.empty() ||
               corruptWindowEnd > corruptWindowBegin;
    }
};

/**
 * The fault state of one wire direction: counts the packets that
 * enter it and decides, deterministically, which ones to corrupt.
 */
class FaultInjector
{
  public:
    /**
     * @param salt Mixed into the seed so the two directions of a
     *             link draw independent streams.
     */
    FaultInjector(const FaultInjectorParams &params, PcieGen gen,
                  std::uint64_t salt);

    bool enabled() const { return params_.enabled(); }

    /**
     * Account for @p pkt entering the wire at @p now and decide
     * whether its LCRC is corrupted in transit. Advances the TLP /
     * DLLP ordinals and (when a bit-error rate is set) the PRNG.
     */
    bool corruptsNext(const PciePkt &pkt, Tick now);

    /** @{ Introspection for tests and benches. */
    std::uint64_t tlpsSeen() const { return tlpsSeen_; }
    std::uint64_t dllpsSeen() const { return dllpsSeen_; }
    std::uint64_t faultsInjected() const { return injected_; }
    /** @} */

    /** LCRC-failure probability of a packet of @p symbols bytes. */
    double corruptProbability(unsigned symbols) const;

  private:
    FaultInjectorParams params_;
    /** Encoded wire bits per symbol for the BER conversion. */
    double bitsPerSymbol_;
    Rng rng_;
    std::uint64_t tlpsSeen_ = 0;
    std::uint64_t dllpsSeen_ = 0;
    std::uint64_t injected_ = 0;
};

} // namespace pciesim

#endif // PCIESIM_PCIE_FAULT_INJECTOR_HH
