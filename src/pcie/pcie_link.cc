#include "pcie_link.hh"

#include <algorithm>

#include "pci/config_regs.hh"
#include "sim/invariant.hh"
#include "sim/parallel.hh"
#include "sim/trace.hh"

namespace pciesim
{

using trace::Flag;

namespace
{

/** Wire-occupancy span label: packet kind plus sequence number. */
std::string
pktLabel(const PciePkt &pkt)
{
    if (pkt.isTlp())
        return "TLP " + std::to_string(pkt.seq());
    return (pkt.dllpType() == DllpType::Ack ? "Ack " : "Nak ") +
           std::to_string(pkt.seq());
}

} // namespace

//
// UnidirectionalLink
//

UnidirectionalLink::UnidirectionalLink(PcieLink &link,
                                       const std::string &name,
                                       bool toward_upstream)
    : link_(link), name_(name), towardUpstream_(toward_upstream),
      srcQueue_(&link.eventq()), sinkQueue_(&link.eventq()),
      deliverEvent_(this, name + ".deliverEvent")
{}

void
UnidirectionalLink::send(const PciePkt &pkt)
{
    Tick now = srcQueue_->curTick();
    panicIf(busy(now), "unidirectional link transmit while busy");

    // Serialize at the current operating point: after a degradation
    // the same packet occupies the wire longer.
    Tick wire = pkt.wireTime(link_.currentGen(), link_.currentWidth());
    busyUntil_ = now + wire;
    busyTicks_ += wire;
    Tick arrive = busyUntil_ + link_.params().propagationDelay;

    // Fault injection corrupts the wire copy only: the sender's
    // replay-buffer copy stays intact for the retransmission.
    PciePkt wire_pkt = pkt;
    if (faults_ != nullptr && faults_->enabled() &&
        faults_->corruptsNext(wire_pkt, now)) {
        wire_pkt.markCorrupted();
    }

    // Wire occupancy as a known-duration span: one Perfetto row
    // per direction shows the link's serialization schedule.
    TRACE_COMPLETE(Flag::Link, now, wire, name_, pktLabel(wire_pkt),
                   wire_pkt.corrupted() ? " (corrupted)" : "");

    // On a cut wire the delivery key is fixed now, on the sending
    // domain, and travels with the packet: both arming paths (the
    // mailboxed schedule-if-earlier below and the sink's rearm in
    // deliver()) must use the same key or the heap order would
    // depend on which path the wall clock ran first.
    const bool keyed = cross_ && par::engineActive;
    Tick key_order = 0;
    std::uint64_t key_tie = 0;
    if (keyed) {
        key_order = srcQueue_->curTick();
        key_tie = srcQueue_->nextTie();
    }
    {
        std::unique_lock<std::mutex> lock(inFlightMu_,
                                          std::defer_lock);
        if (cross_)
            lock.lock();
        inFlight_.push_back({arrive, key_order, key_tie, wire_pkt});
    }
    if (keyed) {
        // Mid-window cross-domain arrival: the sender must not read
        // the delivery event's state (the sink domain owns it), so
        // post a keyed schedule-if-earlier through the mailbox —
        // idempotent under monotone per-wire arrival times.
        par::activeEngine->postScheduleEarliest(*sinkQueue_,
                                                deliverEvent_,
                                                arrive, key_order,
                                                key_tie);
    } else if (!deliverEvent_.scheduled()) {
        sinkQueue_->schedule(&deliverEvent_, arrive);
    }
}

void
UnidirectionalLink::dropInFlight()
{
    // Only a retrain drops the wire, and links with the retrain
    // machinery enabled are never split across domains.
    panicIf(cross_, "dropInFlight() on a cross-domain wire");
    inFlight_.clear();
    if (deliverEvent_.scheduled())
        sinkQueue_->deschedule(&deliverEvent_);
    busyUntil_ = srcQueue_->curTick();
}

void
UnidirectionalLink::deliver()
{
    PciePkt pkt = [this] {
        std::unique_lock<std::mutex> lock(inFlightMu_,
                                          std::defer_lock);
        if (cross_)
            lock.lock();
        panicIf(inFlight_.empty(),
                "link delivery with nothing in flight");
        PciePkt front = inFlight_.front().pkt;
        inFlight_.pop_front();
        if (!inFlight_.empty()) {
            // Rearm for the next arrival with the key assigned at
            // its send; a pending mailboxed schedule-if-earlier for
            // the same packet carries the same key and degrades to
            // a no-op.
            const InFlight &next = inFlight_.front();
            if (cross_ && par::engineActive) {
                sinkQueue_->scheduleEarliestKeyed(&deliverEvent_,
                                                  next.arrive,
                                                  next.keyOrder,
                                                  next.keyTie);
            } else {
                sinkQueue_->schedule(&deliverEvent_, next.arrive);
            }
        }
        return front;
    }();

    LinkInterface &sink = towardUpstream_ ? link_.upstreamIf()
                                          : link_.downstreamIf();
    sink.recvFromWire(pkt);
}

//
// LinkInterface ports
//

class LinkInterface::ExtMasterPort : public MasterPort
{
  public:
    ExtMasterPort(LinkInterface &iface, const std::string &name)
        : MasterPort(name), iface_(iface)
    {}

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        // A response entering the link is just another TLP.
        return iface_.acceptTlp(pkt);
    }

    void
    recvReqRetry() override
    {
        // The link does not hold refused deliveries; recovery is by
        // replay timeout (paper Sec. V-C). Ignore.
    }

  private:
    LinkInterface &iface_;
};

class LinkInterface::ExtSlavePort : public SlavePort
{
  public:
    ExtSlavePort(LinkInterface &iface, const std::string &name)
        : SlavePort(name), iface_(iface)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return iface_.acceptTlp(pkt);
    }

    void
    recvRespRetry() override
    {
        // See ExtMasterPort::recvReqRetry.
    }

    AddrRangeList
    getAddrRanges() const override
    {
        // The link is transparent: it reaches whatever sits behind
        // the far interface's master port.
        return iface_.peer_->extMaster().peer().getAddrRanges();
    }

  private:
    LinkInterface &iface_;
};

//
// LinkInterface
//

LinkInterface::LinkInterface(PcieLink &link, const std::string &name,
                             bool is_upstream)
    : link_(link), name_(name), isUpstream_(is_upstream),
      homeQueue_(&link.eventq()),
      replayBuffer_(link.params().replayBufferSize),
      nakEnabled_(link.params().enableNak ||
                  link.params().faults.enabled()),
      txEvent_(this, name + ".txEvent"),
      ackTimerEvent_(this, name + ".ackTimer"),
      replayTimerEvent_(this, name + ".replayTimer")
{
    extMaster_ = std::make_unique<ExtMasterPort>(*this,
                                                 name + ".extMaster");
    extSlave_ = std::make_unique<ExtSlavePort>(*this,
                                               name + ".extSlave");
}

MasterPort &
LinkInterface::extMaster()
{
    return *extMaster_;
}

SlavePort &
LinkInterface::extSlave()
{
    return *extSlave_;
}

void
LinkInterface::registerStats()
{
    auto &reg = link_.statsRegistry();
    using stats::Unit;
    reg.add(name_ + ".txTlps", &txTlps_,
            "TLPs transmitted (including replays)", Unit::Count);
    reg.add(name_ + ".txDllps", &txDllps_, "DLLPs transmitted",
            Unit::Count);
    reg.add(name_ + ".rxTlps", &rxTlps_, "TLPs received",
            Unit::Count);
    reg.add(name_ + ".rxDllps", &rxDllps_, "DLLPs received",
            Unit::Count);
    reg.add(name_ + ".replayedTlps", &replayedTlps_,
            "TLP retransmissions", Unit::Count);
    reg.add(name_ + ".timeouts", &timeouts_, "replay timer timeouts",
            Unit::Count);
    reg.add(name_ + ".duplicateTlps", &duplicateTlps_,
            "received duplicate TLPs discarded", Unit::Count);
    reg.add(name_ + ".outOfOrderDrops", &outOfOrderDrops_,
            "TLPs dropped behind a refused delivery", Unit::Count);
    reg.add(name_ + ".deliveryRefusals", &deliveryRefusals_,
            "TLPs refused by the connected port (dropped, replayed)",
            Unit::Count);
    reg.add(name_ + ".acceptRefusals", &acceptRefusals_,
            "TLPs refused from external ports (replay buffer full)",
            Unit::Count);
    reg.add(name_ + ".creditStallTicks", &creditStallTicks_,
            "ticks spent refusing TLPs for lack of replay-buffer "
            "credit (closed stall intervals)",
            Unit::Tick);
    reg.add(name_ + ".crcErrorsTlp", &crcErrorsTlp_,
            "received TLPs discarded for LCRC failure", Unit::Count);
    reg.add(name_ + ".crcErrorsDllp", &crcErrorsDllp_,
            "received DLLPs discarded for CRC failure", Unit::Count);
    reg.add(name_ + ".naksSent", &naksSent_, "NAK DLLPs sent",
            Unit::Count);
    reg.add(name_ + ".naksReceived", &naksReceived_,
            "NAK DLLPs received", Unit::Count);
    reg.add(name_ + ".retrains", &retrains_,
            "link retrains initiated by this interface", Unit::Count);
    reg.add(name_ + ".hopLatency", &hopLatency_,
            "TLP inject-to-delivery latency across this hop (ticks)",
            Unit::Tick);
    reg.add(name_ + ".ackLatency", &ackLatency_,
            "TLP inject-to-ACK-purge latency (ticks)", Unit::Tick);

    // Dump-time formulas over the counters above (stats v2).
    replayFraction_ = [this] {
        std::uint64_t tx = txTlps_.value();
        return tx == 0 ? 0.0
                       : static_cast<double>(replayedTlps_.value()) /
                             static_cast<double>(tx);
    };
    reg.add(name_ + ".replayFraction", &replayFraction_,
            "replayed / transmitted TLPs on this interface",
            Unit::Ratio);
    replayHighWater_ = [this] {
        return static_cast<double>(replayBuffer_.highWater());
    };
    reg.add(name_ + ".replayHighWater", &replayHighWater_,
            "deepest replay-buffer occupancy reached", Unit::Count);
}

LinkErrorStats
LinkInterface::errorStats() const
{
    LinkErrorStats s;
    s.txTlps = txTlps_.value();
    s.replayedTlps = replayedTlps_.value();
    s.timeouts = timeouts_.value();
    s.deliveryRefusals = deliveryRefusals_.value();
    s.acceptRefusals = acceptRefusals_.value();
    s.duplicateTlps = duplicateTlps_.value();
    s.outOfOrderDrops = outOfOrderDrops_.value();
    s.crcErrorsTlp = crcErrorsTlp_.value();
    s.crcErrorsDllp = crcErrorsDllp_.value();
    s.naksSent = naksSent_.value();
    s.naksReceived = naksReceived_.value();
    s.retrains = retrains_.value();
    return s;
}

bool
LinkInterface::canAcceptTlp() const
{
    // Source throttling: the replay buffer bounds the TLPs that may
    // be in flight; retransmission pauses new acceptance
    // (paper Sec. V-C).
    return replayQueue_.empty() &&
           replayBuffer_.size() + newQueue_.size() <
               replayBuffer_.capacity();
}

bool
LinkInterface::acceptTlp(const PacketPtr &pkt)
{
    if (!canAcceptTlp()) {
        ++acceptRefusals_;
        if (!creditStalled_) {
            creditStalled_ = true;
            creditStallStart_ = homeQueue_->curTick();
        }
        if (pkt->isRequest())
            wantReqRetry_ = true;
        else
            wantRespRetry_ = true;
        return false;
    }
    newQueue_.push_back(PciePkt::makeTlp(pkt, sendSeq_));
    newQueue_.back().setInjectTick(homeQueue_->curTick());
    TRACE_MSG(Flag::Tlp, homeQueue_->curTick(), name_, "inject seq ",
              sendSeq_, " ", pkt->toString());
    sendSeq_ = seqInc(sendSeq_);
    // Credit accounting: replay-buffer residents plus queued-new
    // TLPs may never exceed the replay buffer's capacity, or source
    // throttling (paper Sec. V-C) has been bypassed.
    PCIESIM_AUDIT(replayBuffer_.size() + newQueue_.size() <=
                      replayBuffer_.capacity(),
                  "link '", name_, "' over credit: ",
                  replayBuffer_.size(), " unacked + ",
                  newQueue_.size(), " queued > capacity ",
                  replayBuffer_.capacity());
    PCIESIM_AUDIT(seqInc(newQueue_.back().seq()) == sendSeq_,
                  "link '", name_, "' send sequence out of step");
    scheduleTx();
    return true;
}

void
LinkInterface::scheduleTx()
{
    if (link_.training() || txEvent_.scheduled())
        return;
    if (!ackPending_ && !nakPending_ && replayQueue_.empty() &&
        newQueue_.empty()) {
        return;
    }
    Tick when = std::max(homeQueue_->curTick(), txLink_->freeAt());
    homeQueue_->schedule(&txEvent_, when);
}

void
LinkInterface::tryTransmit()
{
    Tick now = homeQueue_->curTick();
    if (txLink_->busy(now)) {
        scheduleTx();
        return;
    }

    // Priority: DLLPs (NAK ahead of ACK - it carries the same
    // acknowledgement plus the replay demand), then
    // retransmissions, then new TLPs (paper Sec. V-C).
    if (nakPending_) {
        auditNakState();
        nakPending_ = false;
        ++txDllps_;
        ++naksSent_;
        txLink_->send(PciePkt::makeDllp(DllpType::Nak, nakSeq_));
    } else if (ackPending_) {
        ackPending_ = false;
        ++txDllps_;
        txLink_->send(PciePkt::makeDllp(DllpType::Ack, ackSeq_));
    } else if (!replayQueue_.empty()) {
        PciePkt pkt = replayQueue_.front();
        replayQueue_.pop_front();
        // A retransmitted TLP must still be resident in the replay
        // buffer: only an ACK may retire it, and ACK processing
        // purges the replay queue in lockstep.
        PCIESIM_AUDIT(!replayBuffer_.empty() &&
                          seqLe(replayBuffer_.entries().front().seq(),
                                pkt.seq()) &&
                          seqLe(pkt.seq(),
                                replayBuffer_.entries().back().seq()),
                      "link '", name_, "' replaying TLP ", pkt.seq(),
                      " that is no longer in the replay buffer");
        ++txTlps_;
        ++replayedTlps_;
        txLink_->send(pkt);
        startReplayTimer();
        if (replayQueue_.empty())
            notifyExternalRetry(); // acceptance may resume
    } else if (!newQueue_.empty()) {
        PciePkt pkt = newQueue_.front();
        newQueue_.pop_front();
        replayBuffer_.push(pkt);
        ++txTlps_;
        txLink_->send(pkt);
        startReplayTimer();
    } else {
        return;
    }
    scheduleTx();
}

void
LinkInterface::startReplayTimer()
{
    if (!replayTimerEvent_.scheduled()) {
        homeQueue_->schedule(&replayTimerEvent_,
                                homeQueue_->curTick() +
                                    link_.replayTimeoutTicks());
    }
}

void
LinkInterface::replayTimerFired()
{
    if (replayBuffer_.empty())
        return;

    ++timeouts_;
    TRACE_MSG(Flag::Replay, homeQueue_->curTick(), name_,
              "replay timeout; replaying ", replayBuffer_.size(),
              " TLPs from seq ",
              replayBuffer_.entries().front().seq());
    link_.reportLinkError(ErrSeverity::Correctable,
                          cfg::aerCorReplayTimerTimeout, isUpstream_);
    if (nakEnabled()) {
        noteReplayInitiated();
        if (link_.training())
            return;
    }
    // Retransmit every unacknowledged TLP in sequence order; new
    // TLP acceptance halts until the replay drains (paper Sec. V-C).
    replayQueue_.assign(replayBuffer_.entries().begin(),
                        replayBuffer_.entries().end());
    startReplayTimer();
    scheduleTx();
}

void
LinkInterface::recvFromWire(const PciePkt &pkt)
{
    if (pkt.corrupted()) {
        // LCRC/CRC check failed: discard. A corrupted TLP opens a
        // loss window and is NAKed; a corrupted DLLP has no
        // recovery DLLP of its own - the sender's replay timer
        // covers the lost acknowledgement (spec; DESIGN.md §7).
        TRACE_MSG(Flag::Replay, homeQueue_->curTick(), name_,
                  "CRC error, dropping ", pktLabel(pkt));
        if (pkt.isTlp()) {
            ++crcErrorsTlp_;
            link_.reportLinkError(ErrSeverity::Correctable,
                                  cfg::aerCorBadTlp, isUpstream_);
            if (nakEnabled())
                scheduleNak();
        } else {
            ++crcErrorsDllp_;
            link_.reportLinkError(ErrSeverity::Correctable,
                                  cfg::aerCorBadDllp, isUpstream_);
        }
        return;
    }
    if (pkt.isDllp()) {
        ++rxDllps_;
        if (pkt.dllpType() == DllpType::Ack)
            processAck(pkt.seq());
        else
            processNak(pkt.seq());
    } else {
        ++rxTlps_;
        processTlp(pkt);
    }
}

void
LinkInterface::processAck(SeqNum seq)
{
    Tick now = homeQueue_->curTick();
    std::size_t purged = replayBuffer_.ack(
        seq, [&](const PciePkt &p) {
            ackLatency_.sample(now - p.injectTick());
        });
    if (purged > 0) {
        // Forward progress: REPLAY_NUM restarts (spec).
        replayNum_ = 0;
        replayHeadValid_ = false;
    }
    // Drop now-acknowledged entries from a retransmission in
    // progress as well (spec: purge before replaying).
    while (!replayQueue_.empty() &&
           seqLe(replayQueue_.front().seq(), seq)) {
        replayQueue_.pop_front();
    }

    // An ACK must purge everything at or below its sequence number;
    // anything acknowledged left resident would be replayed as a
    // duplicate after the next timeout.
    PCIESIM_AUDIT(replayBuffer_.empty() ||
                      !seqLe(replayBuffer_.entries().front().seq(),
                             seq),
                  "link '", name_, "' ack ", seq,
                  " left acknowledged TLP ",
                  replayBuffer_.entries().front().seq(), " resident");
    PCIESIM_AUDIT(replayQueue_.empty() ||
                      !seqLe(replayQueue_.front().seq(), seq),
                  "link '", name_, "' ack ", seq,
                  " left acknowledged TLP in the replay queue");

    // Reset the replay timer; restart only while TLPs remain
    // unacknowledged (paper Sec. V-C).
    if (replayTimerEvent_.scheduled())
        homeQueue_->deschedule(&replayTimerEvent_);
    if (!replayBuffer_.empty()) {
        homeQueue_->schedule(&replayTimerEvent_,
                                homeQueue_->curTick() +
                                    link_.replayTimeoutTicks());
    }

    notifyExternalRetry();
    scheduleTx();
}

void
LinkInterface::processNak(SeqNum seq)
{
    ++naksReceived_;
    TRACE_MSG(Flag::Replay, homeQueue_->curTick(), name_,
              "NAK received for seq ", seq, ", replaying");
    // A NAK acknowledges every TLP through its sequence number and
    // demands an immediate replay of the rest (spec; this is the
    // fast path that beats the replay timer).
    Tick now = homeQueue_->curTick();
    std::size_t purged = replayBuffer_.ack(
        seq, [&](const PciePkt &p) {
            ackLatency_.sample(now - p.injectTick());
        });
    if (purged > 0) {
        replayNum_ = 0;
        replayHeadValid_ = false;
    }
    while (!replayQueue_.empty() &&
           seqLe(replayQueue_.front().seq(), seq)) {
        replayQueue_.pop_front();
    }
    if (replayTimerEvent_.scheduled())
        homeQueue_->deschedule(&replayTimerEvent_);

    if (!replayBuffer_.empty()) {
        noteReplayInitiated();
        if (link_.training())
            return;
        replayQueue_.assign(replayBuffer_.entries().begin(),
                            replayBuffer_.entries().end());
        startReplayTimer();
    }
    notifyExternalRetry();
    scheduleTx();
}

void
LinkInterface::processTlp(const PciePkt &pkt)
{
    if (pkt.seq() == recvSeq_) {
        // The expected TLP closes any open loss window: a later
        // loss may schedule a fresh NAK (NAK_SCHEDULED semantics).
        nakScheduled_ = false;
        const PacketPtr &tlp = pkt.tlp();
        bool delivered = tlp->isRequest()
            ? extMaster_->sendTimingReq(tlp)
            : extSlave_->sendTimingResp(tlp);
        if (delivered) {
            hopLatency_.sample(homeQueue_->curTick() - pkt.injectTick());
            TRACE_MSG(Flag::Tlp, homeQueue_->curTick(), name_,
                      "deliver seq ", pkt.seq());
            ackSeq_ = recvSeq_;
            recvSeq_ = seqInc(recvSeq_);
            scheduleAckDllp(link_.params().ackImmediate);
        } else {
            // The connected port refused; no ACK is generated and
            // the sender's replay timeout recovers the TLP
            // (paper Sec. V-C).
            ++deliveryRefusals_;
        }
    } else if (seqLt(pkt.seq(), recvSeq_)) {
        // Duplicate from a spurious replay: discard and re-ACK
        // immediately so the sender purges its replay buffer.
        ++duplicateTlps_;
        ackSeq_ = seqDec(recvSeq_);
        scheduleAckDllp(true);
    } else {
        // A gap: an earlier TLP was lost on the wire or its
        // delivery was refused (no ACK was generated), and this
        // later TLP was already in flight. Drop it; with the NAK
        // machinery a NAK requests the replay immediately,
        // otherwise the sender's replay timeout resends everything
        // from the missing sequence number in order.
        ++outOfOrderDrops_;
        if (nakEnabled())
            scheduleNak();
    }
}

void
LinkInterface::scheduleNak()
{
    if (nakScheduled_)
        return; // one outstanding NAK per loss window
    nakScheduled_ = true;
    nakPending_ = true;
    nakSeq_ = seqDec(recvSeq_);
    TRACE_MSG(Flag::Replay, homeQueue_->curTick(), name_,
              "loss window opened; NAK scheduled for seq ", nakSeq_);
    // The NAK acknowledges everything before the loss; a pending
    // ACK carrying the same information is subsumed by it.
    if (ackPending_ && seqLe(ackSeq_, nakSeq_))
        ackPending_ = false;
    auditNakState();
    scheduleTx();
}

void
LinkInterface::noteReplayInitiated()
{
    // REPLAY_NUM: count consecutive replays of the same
    // head-of-buffer TLP; when the threshold is hit the link
    // itself is suspect and goes down for a retrain (spec).
    SeqNum head = replayBuffer_.entries().front().seq();
    if (replayHeadValid_ && head == replayHeadSeq_) {
        ++replayNum_;
    } else {
        replayHeadValid_ = true;
        replayHeadSeq_ = head;
        replayNum_ = 1;
    }
    auditNakState();
    if (replayNum_ >= link_.params().replayNumThreshold) {
        // REPLAY_NUM rollover: the link itself is suspect. The spec
        // reports this as a correctable rollover plus an
        // uncorrectable (non-fatal) DLL protocol error when the
        // retrain it forces keeps failing; the model reports both
        // on the rollover.
        link_.reportLinkError(ErrSeverity::Correctable,
                              cfg::aerCorReplayRollover, isUpstream_);
        link_.reportLinkError(ErrSeverity::NonFatal,
                              cfg::aerUncDlpError, isUpstream_);
        link_.startRetrain(*this);
    }
}

void
LinkInterface::prepareForRetrain()
{
    // The link is down: timers stop, queued DLLPs and
    // retransmissions are lost. Unacknowledged TLPs stay in the
    // replay buffer and accepted TLPs stay queued; both go out
    // again when the link comes back up.
    if (txEvent_.scheduled())
        homeQueue_->deschedule(&txEvent_);
    if (ackTimerEvent_.scheduled())
        homeQueue_->deschedule(&ackTimerEvent_);
    if (replayTimerEvent_.scheduled())
        homeQueue_->deschedule(&replayTimerEvent_);
    replayQueue_.clear();
    ackPending_ = false;
    nakPending_ = false;
    nakScheduled_ = false;
    replayNum_ = 0;
    replayHeadValid_ = false;
}

void
LinkInterface::resumeAfterRetrain()
{
    if (!replayBuffer_.empty()) {
        replayQueue_.assign(replayBuffer_.entries().begin(),
                            replayBuffer_.entries().end());
        startReplayTimer();
    }
    notifyExternalRetry();
    scheduleTx();
}

void
LinkInterface::auditNakState() const
{
#ifdef PCIESIM_ENABLE_AUDIT
    PCIESIM_AUDIT(!nakPending_ || nakScheduled_,
                  "link '", name_, "' has a NAK queued outside a "
                  "loss window (more than one NAK per window)");
    PCIESIM_AUDIT(replayNum_ <= link_.params().replayNumThreshold,
                  "link '", name_, "' REPLAY_NUM ", replayNum_,
                  " exceeds the retrain threshold ",
                  link_.params().replayNumThreshold);
#endif
}

void
LinkInterface::scheduleAckDllp(bool immediate)
{
    if (immediate) {
        if (ackTimerEvent_.scheduled())
            homeQueue_->deschedule(&ackTimerEvent_);
        ackPending_ = true;
        scheduleTx();
    } else if (!ackTimerEvent_.scheduled() && !ackPending_) {
        homeQueue_->schedule(&ackTimerEvent_,
                                homeQueue_->curTick() +
                                    link_.ackPeriodTicks());
    }
}

void
LinkInterface::ackTimerFired()
{
    ackPending_ = true;
    scheduleTx();
}

void
LinkInterface::notifyExternalRetry()
{
    if (!canAcceptTlp())
        return;
    if (creditStalled_) {
        creditStalled_ = false;
        creditStallTicks_ +=
            homeQueue_->curTick() - creditStallStart_;
    }
    if (wantReqRetry_) {
        wantReqRetry_ = false;
        extSlave_->sendRetryReq();
    }
    if (wantRespRetry_ && canAcceptTlp()) {
        wantRespRetry_ = false;
        extMaster_->sendRetryResp();
    }
}

//
// PcieLink
//

PcieLink::PcieLink(Simulation &sim, const std::string &name,
                   const PcieLinkParams &params)
    : SimObject(sim, name), params_(params),
      replayTimeout_(static_cast<Tick>(
          static_cast<double>(replayTimeout(params.gen, params.width,
                                            params.maxPayload)) *
          params.replayTimeoutScale)),
      ackPeriod_(ackTimerPeriod(params.gen, params.width,
                                params.maxPayload)),
      curGen_(params.gen), curWidth_(params.width),
      degradeRng_(params.faults.seed ^ 0x64656772616465ULL),
      degradeEvent_(this, name + ".degradeRetrain"),
      upconfigureEvent_(this, name + ".upconfigureTimer"),
      retrainDoneEvent_(this, name + ".retrainDone")
{
    fatalIf(params_.width == 0 || params_.width > 32,
            "link '", name, "': width must be 1..32");
    fatalIf(params_.replayBufferSize == 0,
            "link '", name, "': replay buffer needs >= 1 entry");
    fatalIf(params_.replayNumThreshold == 0,
            "link '", name, "': REPLAY_NUM threshold must be >= 1");

    // Distinct salts give the two directions independent fault
    // streams from the one configured seed.
    faultsToUp_ = std::make_unique<FaultInjector>(params_.faults,
                                                  params_.gen, 0);
    faultsToDown_ = std::make_unique<FaultInjector>(params_.faults,
                                                    params_.gen, 1);

    upstreamIf_ = std::make_unique<LinkInterface>(*this, name + ".up",
                                                  true);
    downstreamIf_ = std::make_unique<LinkInterface>(*this,
                                                    name + ".down",
                                                    false);
    toUpstream_ = std::make_unique<UnidirectionalLink>(
        *this, name + ".wireUp", true);
    toDownstream_ = std::make_unique<UnidirectionalLink>(
        *this, name + ".wireDown", false);
    toUpstream_->setFaultInjector(faultsToUp_.get());
    toDownstream_->setFaultInjector(faultsToDown_.get());

    upstreamIf_->setTxLink(toDownstream_.get());
    downstreamIf_->setTxLink(toUpstream_.get());
    upstreamIf_->setPeer(downstreamIf_.get());
    downstreamIf_->setPeer(upstreamIf_.get());
}

PcieLink::~PcieLink() = default;

MasterPort &
PcieLink::upMaster()
{
    return upstreamIf_->extMaster();
}

SlavePort &
PcieLink::upSlave()
{
    return upstreamIf_->extSlave();
}

MasterPort &
PcieLink::downMaster()
{
    return downstreamIf_->extMaster();
}

SlavePort &
PcieLink::downSlave()
{
    return downstreamIf_->extSlave();
}

void
PcieLink::init()
{
    upstreamIf_->registerStats();
    downstreamIf_->registerStats();

    // Wire utilization: occupied ticks over elapsed ticks, per
    // direction, evaluated when the registry dumps.
    wireUpUtilization_ = [this] {
        Tick now = curTick();
        return now == 0 ? 0.0
                        : static_cast<double>(
                              toUpstream_->busyTicks()) /
                              static_cast<double>(now);
    };
    wireDownUtilization_ = [this] {
        Tick now = curTick();
        return now == 0 ? 0.0
                        : static_cast<double>(
                              toDownstream_->busyTicks()) /
                              static_cast<double>(now);
    };
    statsRegistry().add(name() + ".wireUp.utilization",
                        &wireUpUtilization_,
                        "device->RC wire occupancy fraction",
                        stats::Unit::Ratio);
    statsRegistry().add(name() + ".wireDown.utilization",
                        &wireDownUtilization_,
                        "RC->device wire occupancy fraction",
                        stats::Unit::Ratio);

    // Degradation-ladder stats exist only when the ladder is armed,
    // keeping fault-free stats dumps bit-identical to the
    // pre-degradation goldens.
    if (params_.degradeThreshold > 0) {
        statsRegistry().add(name() + ".degradations", &degradations_,
                            "downtrain steps taken (Gen, then width)",
                            stats::Unit::Count);
        statsRegistry().add(name() + ".upconfigures", &upconfigures_,
                            "ladder steps restored after back-off",
                            stats::Unit::Count);
        currentGenStat_ = [this] {
            return static_cast<double>(
                static_cast<unsigned>(curGen_));
        };
        statsRegistry().add(name() + ".currentGen", &currentGenStat_,
                            "operating speed generation at dump time",
                            stats::Unit::Count);
        currentWidthStat_ = [this] {
            return static_cast<double>(curWidth_);
        };
        statsRegistry().add(name() + ".currentWidth",
                            &currentWidthStat_,
                            "operating lane width at dump time",
                            stats::Unit::Count);
    }

    fatalIf(!upMaster().isBound() || !upSlave().isBound() ||
            !downMaster().isBound() || !downSlave().isBound(),
            "link '", name(), "' has unbound ports");
}

void
PcieLink::setDomains(EventQueue &up_q, EventQueue &down_q)
{
    fatalIf(&up_q != &down_q &&
                (params_.faults.enabled() || params_.enableNak ||
                 params_.degradeThreshold > 0),
            "link '", name(), "': fault injection / NAK recovery / "
            "degradation retrains the link, which touches both ends "
            "atomically; such links cannot span two domains");
    upstreamIf_->homeQueue_ = &up_q;
    downstreamIf_->homeQueue_ = &down_q;
    // Each wire's sender is the interface at the opposite end of
    // its direction: wireUp carries downstream->upstream traffic.
    toUpstream_->setQueues(&down_q, &up_q);
    toDownstream_->setQueues(&up_q, &down_q);
}

LinkErrorStats
PcieLink::errorStats() const
{
    LinkErrorStats s = upstreamIf_->errorStats();
    s += downstreamIf_->errorStats();
    s.degradations = degradations_.value();
    s.upconfigures = upconfigures_.value();
    return s;
}

bool
PcieLink::degraded() const
{
    return curGen_ != params_.gen || curWidth_ != params_.width;
}

Tick
PcieLink::wireUpBusyTicks() const
{
    return toUpstream_->busyTicks();
}

Tick
PcieLink::wireDownBusyTicks() const
{
    return toDownstream_->busyTicks();
}

Tick
PcieLink::creditStallTicks() const
{
    return upstreamIf_->creditStallTicks() +
           downstreamIf_->creditStallTicks();
}

std::uint64_t
PcieLink::acceptRefusals() const
{
    return upstreamIf_->acceptRefusals() +
           downstreamIf_->acceptRefusals();
}

void
PcieLink::reportLinkError(ErrSeverity sev, std::uint32_t bit,
                          bool at_upstream_end)
{
    TRACE_MSG(Flag::Link, curTick(), name(), errSeverityName(sev),
              " detected at the ",
              at_upstream_end ? "upstream" : "downstream",
              " end (AER bit 0x", bit, ")");
    noteErrorForDegradation();
    if (errorSink_)
        errorSink_(sev, bit, at_upstream_end);
}

void
PcieLink::noteErrorForDegradation()
{
    if (params_.degradeThreshold == 0)
        return;
    Tick now = curTick();
    if (now - errWindowStart_ > params_.degradeWindow) {
        errWindowStart_ = now;
        errInWindow_ = 0;
    }
    if (++errInWindow_ < params_.degradeThreshold)
        return;
    // Sustained error rate: step the ladder down. The window
    // restarts so the degraded link gets a fresh chance before the
    // next step.
    errWindowStart_ = now;
    errInWindow_ = 0;
    if (!canDegrade() || degradePending_)
        return;
    degradePending_ = true;
    // The step is applied at the end of a retrain; piggy-back on a
    // retrain already in progress, otherwise force one. The forcing
    // event keeps the downtrain off this call stack - errors are
    // detected deep inside TLP processing.
    if (!training_ && !degradeEvent_.scheduled())
        eventq().schedule(&degradeEvent_, now);
}

bool
PcieLink::canDegrade() const
{
    return curGen_ != PcieGen::Gen1 || curWidth_ > 1;
}

void
PcieLink::recomputeTimers()
{
    replayTimeout_ = static_cast<Tick>(
        static_cast<double>(replayTimeout(curGen_, curWidth_,
                                          params_.maxPayload)) *
        params_.replayTimeoutScale);
    ackPeriod_ = ackTimerPeriod(curGen_, curWidth_,
                                params_.maxPayload);
}

void
PcieLink::degradeRetrain()
{
    if (training_)
        return; // retrainDone() applies the pending step
    startRetrain(*upstreamIf_);
}

void
PcieLink::scheduleUpconfigure()
{
    if (upconfigureEvent_.scheduled())
        eventq().deschedule(&upconfigureEvent_);
    // Exponential back-off per consecutive degradation, jittered by
    // the seeded RNG so repeated attempts don't phase-lock with the
    // workload; fully deterministic for a fixed seed.
    unsigned shift = std::min(consecutiveDegrades_ - 1, 4u);
    Tick backoff = params_.upconfigureDelay << shift;
    Tick jitter = params_.upconfigureDelay == 0
        ? 0
        : degradeRng_.next() % (params_.upconfigureDelay / 4 + 1);
    eventq().schedule(&upconfigureEvent_,
                      curTick() + backoff + jitter);
}

void
PcieLink::upconfigureTimerFired()
{
    if (!degraded() || degradePending_ || upconfigurePending_)
        return;
    if (errInWindow_ > 0 &&
        curTick() - errWindowStart_ <= params_.degradeWindow) {
        // The window is not clean yet; back off again without
        // deepening the ladder.
        scheduleUpconfigure();
        return;
    }
    upconfigurePending_ = true;
    if (!training_)
        startRetrain(*upstreamIf_);
}

void
PcieLink::startRetrain(LinkInterface &initiator)
{
    if (training_)
        return;
    training_ = true;
    ++initiator.retrains_;
    TRACE_SPAN_BEGIN(Flag::Retrain, curTick(), name(),
                     "retrain (initiated by ", initiator.name_, ")");
    // The link is down: whatever is on the wire is lost. The replay
    // buffers recover the TLPs; lost DLLP state is rebuilt from the
    // duplicate re-ACK path after the replay.
    toUpstream_->dropInFlight();
    toDownstream_->dropInFlight();
    upstreamIf_->prepareForRetrain();
    downstreamIf_->prepareForRetrain();
    eventq().schedule(&retrainDoneEvent_,
                      curTick() + params_.retrainLatency);
}

void
PcieLink::retrainDone()
{
    training_ = false;
    TRACE_SPAN_END(Flag::Retrain, curTick(), name());
    // The ladder moves only across a retrain: the link comes back
    // up at the new operating point (DESIGN.md §12).
    if (degradePending_) {
        degradePending_ = false;
        if (curGen_ != PcieGen::Gen1) {
            curGen_ = static_cast<PcieGen>(
                static_cast<unsigned>(curGen_) - 1);
        } else if (curWidth_ > 1) {
            curWidth_ /= 2;
        }
        ++degradations_;
        ++consecutiveDegrades_;
        recomputeTimers();
        TRACE_MSG(Flag::Retrain, curTick(), name(),
                  "degraded to Gen",
                  static_cast<unsigned>(curGen_), " x", curWidth_);
        inform("link '", name(), "': degraded to Gen",
               static_cast<unsigned>(curGen_), " x", curWidth_,
               " after sustained errors");
        scheduleUpconfigure();
    } else if (upconfigurePending_) {
        upconfigurePending_ = false;
        if (curWidth_ < params_.width) {
            curWidth_ *= 2;
        } else if (curGen_ != params_.gen) {
            curGen_ = static_cast<PcieGen>(
                static_cast<unsigned>(curGen_) + 1);
        }
        ++upconfigures_;
        recomputeTimers();
        TRACE_MSG(Flag::Retrain, curTick(), name(),
                  "upconfigured to Gen",
                  static_cast<unsigned>(curGen_), " x", curWidth_);
        if (degraded())
            scheduleUpconfigure();
        else
            consecutiveDegrades_ = 0;
    }
    upstreamIf_->resumeAfterRetrain();
    downstreamIf_->resumeAfterRetrain();
}

} // namespace pciesim
