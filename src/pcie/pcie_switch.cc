#include "pcie_switch.hh"

#include "pci/config_regs.hh"
#include "pci/platform.hh"
#include "sim/trace.hh"

namespace pciesim
{

class PcieSwitch::UpSlavePort : public SlavePort
{
  public:
    UpSlavePort(PcieSwitch &sw, const std::string &name)
        : SlavePort(name), sw_(sw)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return sw_.handleDownwardRequest(pkt);
    }

    void
    recvRespRetry() override
    {
        sw_.upRespQueue_->retryNotify();
    }

    AddrRangeList
    getAddrRanges() const override
    {
        // The upstream slave port accepts the window programmed
        // into the upstream VP2P (paper Sec. V-B).
        AddrRangeList ranges;
        AddrRange mem = sw_.upVp2p_->memWindow();
        AddrRange io = sw_.upVp2p_->ioWindow();
        if (!mem.empty())
            ranges.push_back(mem);
        if (!io.empty())
            ranges.push_back(io);
        return ranges;
    }

  private:
    PcieSwitch &sw_;
};

class PcieSwitch::UpMasterPort : public MasterPort
{
  public:
    UpMasterPort(PcieSwitch &sw, const std::string &name)
        : MasterPort(name), sw_(sw)
    {}

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        return sw_.handleDownwardResponse(pkt);
    }

    void
    recvReqRetry() override
    {
        sw_.upReqQueue_->retryNotify();
    }

  private:
    PcieSwitch &sw_;
};

class PcieSwitch::DownMasterPort : public MasterPort
{
  public:
    DownMasterPort(PcieSwitch &sw, unsigned index,
                   const std::string &name)
        : MasterPort(name), sw_(sw), index_(index)
    {}

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        return sw_.handleUpwardResponse(pkt, index_);
    }

    void
    recvReqRetry() override
    {
        sw_.downReqQueues_[index_]->retryNotify();
    }

  private:
    PcieSwitch &sw_;
    unsigned index_;
};

class PcieSwitch::DownSlavePort : public SlavePort
{
  public:
    DownSlavePort(PcieSwitch &sw, unsigned index,
                  const std::string &name)
        : SlavePort(name), sw_(sw), index_(index)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return sw_.handleUpwardRequest(pkt, index_);
    }

    void
    recvRespRetry() override
    {
        sw_.downRespQueues_[index_]->retryNotify();
    }

    AddrRangeList
    getAddrRanges() const override
    {
        // DMA from below the switch reaches memory above it.
        return {platform::dramRange};
    }

  private:
    PcieSwitch &sw_;
    unsigned index_;
};

PcieSwitch::PcieSwitch(Simulation &sim, const std::string &name,
                       const PcieSwitchParams &params)
    : SimObject(sim, name), params_(params),
      contained_(params.numDownstreamPorts, false)
{
    fatalIf(params_.numDownstreamPorts == 0 ||
            params_.numDownstreamPorts > 16,
            "switch '", name, "': 1..16 downstream ports supported");

    upSlave_ = std::make_unique<UpSlavePort>(*this, name + ".upSlave");
    upMaster_ = std::make_unique<UpMasterPort>(*this,
                                               name + ".upMaster");

    Vp2pParams up_vp;
    up_vp.deviceId = cfg::deviceSwitchPort;
    up_vp.portType = cfg::PciePortType::SwitchUpstream;
    up_vp.linkWidth = params_.linkWidth;
    up_vp.linkGen = params_.linkGen;
    up_vp.slotImplemented = false;
    upVp2p_ = std::make_unique<Vp2p>(name + ".upVp2p", up_vp);

    upReqQueue_ = std::make_unique<PacketQueue>(
        eventq(), name + ".upReqQueue",
        [this](const PacketPtr &p) {
            return upMaster_->sendTimingReq(p);
        },
        params_.portBufferSize);
    upRespQueue_ = std::make_unique<PacketQueue>(
        eventq(), name + ".upRespQueue",
        [this](const PacketPtr &p) {
            return upSlave_->sendTimingResp(p);
        },
        params_.portBufferSize);

    for (unsigned i = 0; i < params_.numDownstreamPorts; ++i) {
        std::string pname = name + ".downPort" + std::to_string(i);
        downMasters_.push_back(std::make_unique<DownMasterPort>(
            *this, i, pname + ".master"));
        downSlaves_.push_back(std::make_unique<DownSlavePort>(
            *this, i, pname + ".slave"));

        Vp2pParams vp;
        vp.deviceId = cfg::deviceSwitchPort;
        vp.portType = cfg::PciePortType::SwitchDownstream;
        vp.linkWidth = params_.linkWidth;
        vp.linkGen = params_.linkGen;
        downVp2ps_.push_back(
            std::make_unique<Vp2p>(pname + ".vp2p", vp));

        downReqQueues_.push_back(std::make_unique<PacketQueue>(
            eventq(), pname + ".reqQueue",
            [this, i](const PacketPtr &p) {
                return downMasters_[i]->sendTimingReq(p);
            },
            params_.portBufferSize));
        downRespQueues_.push_back(std::make_unique<PacketQueue>(
            eventq(), pname + ".respQueue",
            [this, i](const PacketPtr &p) {
                return downSlaves_[i]->sendTimingResp(p);
            },
            params_.portBufferSize));
    }
}

PcieSwitch::~PcieSwitch() = default;

SlavePort &
PcieSwitch::upstreamSlavePort()
{
    return *upSlave_;
}

MasterPort &
PcieSwitch::upstreamMasterPort()
{
    return *upMaster_;
}

MasterPort &
PcieSwitch::downstreamMaster(unsigned i)
{
    return *downMasters_.at(i);
}

SlavePort &
PcieSwitch::downstreamSlave(unsigned i)
{
    return *downSlaves_.at(i);
}

Vp2p &
PcieSwitch::upstreamVp2p()
{
    return *upVp2p_;
}

Vp2p &
PcieSwitch::downstreamVp2p(unsigned i)
{
    return *downVp2ps_.at(i);
}

void
PcieSwitch::init()
{
    auto &reg = statsRegistry();
    using stats::Unit;
    reg.add(name() + ".fwdDownRequests", &fwdDownRequests_,
            "requests forwarded to downstream ports", Unit::Count);
    reg.add(name() + ".fwdUpRequests", &fwdUpRequests_,
            "requests forwarded upstream", Unit::Count);
    reg.add(name() + ".fwdDownResponses", &fwdDownResponses_,
            "responses forwarded to downstream ports", Unit::Count);
    reg.add(name() + ".fwdUpResponses", &fwdUpResponses_,
            "responses forwarded upstream", Unit::Count);
    reg.add(name() + ".bufferRefusals", &bufferRefusals_,
            "packets refused due to full port buffers", Unit::Count);

    portRequests_.init(params_.numDownstreamPorts);
    portResponses_.init(params_.numDownstreamPorts);
    for (unsigned i = 0; i < params_.numDownstreamPorts; ++i) {
        portRequests_.subname(i, "port" + std::to_string(i));
        portResponses_.subname(i, "port" + std::to_string(i));
    }
    reg.add(name() + ".portRequests", &portRequests_,
            "requests forwarded per downstream port", Unit::Count);
    reg.add(name() + ".portResponses", &portResponses_,
            "responses forwarded per downstream port", Unit::Count);

    if (params_.enableContainment) {
        reg.add(name() + ".containments", &containments_,
                "downstream ports taken down after a FATAL error",
                Unit::Count);
        reg.add(name() + ".containedDrops", &containedDrops_,
                "TLPs dropped at contained downstream ports",
                Unit::Count);
        reg.add(name() + ".urCompletions", &urCompletions_,
                "all-ones UR completions for reads to contained "
                "ports", Unit::Count);
    }

    fatalIf(!upSlave_->isBound() || !upMaster_->isBound(),
            "switch '", name(), "' upstream port unbound");
}

void
PcieSwitch::containDownstreamPort(unsigned i)
{
    panicIf(!params_.enableContainment, "switch '", name(),
            "': containment requested but not enabled");
    panicIf(i >= params_.numDownstreamPorts, "switch '", name(),
            "': containing nonexistent port ", i);
    if (contained_[i])
        return;
    contained_[i] = true;
    ++containments_;
    // The port is down: whatever was queued toward (or from) the
    // dead device is lost with it.
    std::size_t dropped = downReqQueues_[i]->clear() +
                          downRespQueues_[i]->clear();
    containedDrops_ += dropped;
    TRACE_MSG(trace::Flag::Switch, curTick(), name(),
              "contained downstream port ", i, "; dropped ", dropped,
              " queued TLPs");
    inform("switch '", name(), "': downstream port ", i,
           " contained after FATAL error (", dropped,
           " TLPs dropped)");
}

void
PcieSwitch::releaseDownstreamPort(unsigned i)
{
    panicIf(i >= params_.numDownstreamPorts, "switch '", name(),
            "': releasing nonexistent port ", i);
    if (!contained_[i])
        return;
    contained_[i] = false;
    TRACE_MSG(trace::Flag::Switch, curTick(), name(),
              "released downstream port ", i);
}

bool
PcieSwitch::portContained(unsigned i) const
{
    return i < contained_.size() && contained_[i];
}

int
PcieSwitch::downstreamPortForBus(unsigned bus) const
{
    return routeByBus(static_cast<int>(bus));
}

int
PcieSwitch::routeByAddress(Addr addr) const
{
    for (unsigned i = 0; i < params_.numDownstreamPorts; ++i) {
        if (downVp2ps_[i]->claims(addr))
            return static_cast<int>(i);
    }
    return -1;
}

int
PcieSwitch::routeByBus(int bus) const
{
    if (bus < 0)
        return -1;
    for (unsigned i = 0; i < params_.numDownstreamPorts; ++i) {
        if (downVp2ps_[i]->busInRange(static_cast<unsigned>(bus)))
            return static_cast<int>(i);
    }
    return -1;
}

bool
PcieSwitch::handleDownwardRequest(const PacketPtr &pkt)
{
    if (pkt->pciBusNumber() < 0) {
        pkt->setPciBusNumber(
            static_cast<int>(upVp2p_->secondaryBus()));
    }

    int port = routeByAddress(pkt->addr());
    panicIf(port < 0, "switch '", name(),
            "': no downstream VP2P window claims ", pkt->toString());

    if (contained_[static_cast<unsigned>(port)]) {
        // Port is error-contained: non-posted requests complete as
        // unsupported requests (all-ones data), posted ones vanish.
        if (pkt->needsResponse()) {
            if (upRespQueue_->full()) {
                ++bufferRefusals_;
                return false;
            }
            pkt->makeResponse();
            if (pkt->isRead()) {
                switch (pkt->size()) {
                  case 1:
                    pkt->set<std::uint8_t>(0xff);
                    break;
                  case 2:
                    pkt->set<std::uint16_t>(0xffff);
                    break;
                  case 4:
                    pkt->set<std::uint32_t>(0xffffffffu);
                    break;
                  default:
                    pkt->set<std::uint64_t>(~0ULL);
                    break;
                }
            }
            ++urCompletions_;
            TRACE_MSG(trace::Flag::Switch, curTick(), name(),
                      "UR completion for contained port ", port, ": ",
                      pkt->toString());
            upRespQueue_->push(pkt, curTick() + params_.latency);
        } else {
            ++containedDrops_;
        }
        return true;
    }

    auto &q = downReqQueues_[static_cast<unsigned>(port)];
    if (q->full()) {
        ++bufferRefusals_;
        return false;
    }
    ++fwdDownRequests_;
    ++portRequests_[static_cast<unsigned>(port)];
    TRACE_MSG(trace::Flag::Switch, curTick(), name(),
              "route down to port ", port, ": ", pkt->toString());
    q->push(pkt, curTick() + params_.latency);
    return true;
}

bool
PcieSwitch::handleUpwardRequest(const PacketPtr &pkt, unsigned i)
{
    if (contained_[i]) {
        // Stale traffic from a contained (removed) device: drop it.
        ++containedDrops_;
        return true;
    }

    if (pkt->pciBusNumber() < 0) {
        pkt->setPciBusNumber(
            static_cast<int>(downVp2ps_[i]->secondaryBus()));
    }

    // Peer-to-peer between downstream ports.
    int port = routeByAddress(pkt->addr());
    if (port >= 0) {
        auto &q = downReqQueues_[static_cast<unsigned>(port)];
        if (q->full()) {
            ++bufferRefusals_;
            return false;
        }
        ++fwdDownRequests_;
        ++portRequests_[static_cast<unsigned>(port)];
        q->push(pkt, curTick() + params_.latency);
        return true;
    }

    if (upReqQueue_->full()) {
        ++bufferRefusals_;
        return false;
    }
    ++fwdUpRequests_;
    TRACE_MSG(trace::Flag::Switch, curTick(), name(),
              "route up from port ", i, ": ", pkt->toString());
    upReqQueue_->push(pkt, curTick() + params_.latency);
    return true;
}

bool
PcieSwitch::handleDownwardResponse(const PacketPtr &pkt)
{
    int port = routeByBus(pkt->pciBusNumber());
    panicIf(port < 0, "switch '", name(),
            "': no downstream VP2P bus range matches response ",
            pkt->toString());

    if (contained_[static_cast<unsigned>(port)]) {
        ++containedDrops_;
        return true;
    }

    auto &q = downRespQueues_[static_cast<unsigned>(port)];
    if (q->full()) {
        ++bufferRefusals_;
        return false;
    }
    ++fwdDownResponses_;
    ++portResponses_[static_cast<unsigned>(port)];
    q->push(pkt, curTick() + params_.latency);
    return true;
}

bool
PcieSwitch::handleUpwardResponse(const PacketPtr &pkt, unsigned i)
{
    (void)i;
    int port = routeByBus(pkt->pciBusNumber());
    if (port >= 0) {
        auto &q = downRespQueues_[static_cast<unsigned>(port)];
        if (q->full()) {
            ++bufferRefusals_;
            return false;
        }
        ++fwdDownResponses_;
        ++portResponses_[static_cast<unsigned>(port)];
        q->push(pkt, curTick() + params_.latency);
        return true;
    }

    if (upRespQueue_->full()) {
        ++bufferRefusals_;
        return false;
    }
    ++fwdUpResponses_;
    upRespQueue_->push(pkt, curTick() + params_.latency);
    return true;
}

} // namespace pciesim
