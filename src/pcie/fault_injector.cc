#include "fault_injector.hh"

#include <algorithm>
#include <cmath>

namespace pciesim
{

FaultInjector::FaultInjector(const FaultInjectorParams &params,
                             PcieGen gen, std::uint64_t salt)
    : params_(params), bitsPerSymbol_(genInfo(gen).bitsPerByte),
      // A multiplicative salt keeps nearby seeds' streams apart;
      // splitmix64 inside Rng scrambles the rest.
      rng_(params.seed + salt * 0x9e3779b97f4a7c15ULL)
{}

double
FaultInjector::corruptProbability(unsigned symbols) const
{
    if (params_.bitErrorRate <= 0.0)
        return 0.0;
    if (params_.bitErrorRate >= 1.0)
        return 1.0;
    // p = 1 - (1 - BER)^bits, computed in log space so tiny rates
    // (1e-12 and below) do not round to zero.
    double bits = static_cast<double>(symbols) * bitsPerSymbol_;
    return -std::expm1(bits * std::log1p(-params_.bitErrorRate));
}

bool
FaultInjector::corruptsNext(const PciePkt &pkt, Tick now)
{
    std::uint64_t ordinal;
    const std::vector<std::uint64_t> *scripted;
    if (pkt.isTlp()) {
        ordinal = ++tlpsSeen_;
        scripted = &params_.corruptTlpNumbers;
    } else {
        ordinal = ++dllpsSeen_;
        scripted = &params_.corruptDllpNumbers;
    }

    bool corrupt = std::find(scripted->begin(), scripted->end(),
                             ordinal) != scripted->end();
    if (now >= params_.corruptWindowBegin &&
        now < params_.corruptWindowEnd) {
        corrupt = true;
    }
    // Draw for every packet whenever a bit-error rate is set: the
    // stream position then depends only on the packet count, not on
    // which packets the scripted faults already hit.
    if (params_.bitErrorRate > 0.0 &&
        rng_.bernoulli(corruptProbability(pkt.wireSymbols()))) {
        corrupt = true;
    }

    if (corrupt)
        ++injected_;
    return corrupt;
}

} // namespace pciesim
