#include "vp2p.hh"

namespace pciesim
{

Vp2p::Vp2p(const std::string &name, const Vp2pParams &params)
    : PciFunction(name)
{
    BridgeHeader::initialize(config_, params.vendorId,
                             params.deviceId);

    // PCI-Express capability structure at 0xd8 (paper Sec. V-A:
    // "Capability Pointer. Set to 0xD8").
    CapabilityChain chain(config_);
    PcieCapParams cap;
    cap.portType = params.portType;
    cap.linkWidth = params.linkWidth;
    cap.linkGen = params.linkGen;
    cap.slotImplemented = params.slotImplemented;
    cap.rootPort = params.portType == cfg::PciePortType::RootPort;
    chain.addPcie(pcieCapOffset, cap);
    chain.finalize();

    installAer(cap.rootPort);
}

unsigned
Vp2p::primaryBus() const
{
    return BridgeHeader::primaryBus(config_);
}

unsigned
Vp2p::secondaryBus() const
{
    return BridgeHeader::secondaryBus(config_);
}

unsigned
Vp2p::subordinateBus() const
{
    return BridgeHeader::subordinateBus(config_);
}

AddrRange
Vp2p::memWindow() const
{
    return BridgeHeader::memWindow(config_);
}

AddrRange
Vp2p::ioWindow() const
{
    return BridgeHeader::ioWindow(config_);
}

AddrRange
Vp2p::prefWindow() const
{
    return BridgeHeader::prefWindow(config_);
}

bool
Vp2p::claims(Addr addr) const
{
    return forwardingEnabled() &&
           BridgeHeader::windowsContain(config_, addr);
}

bool
Vp2p::busInRange(unsigned bus) const
{
    // An unconfigured bridge (secondary bus still 0) must not
    // capture traffic: bus 0 is the root bus and is never
    // downstream of a VP2P.
    if (secondaryBus() == 0)
        return false;
    return BridgeHeader::busInRange(config_, bus);
}

bool
Vp2p::forwardingEnabled() const
{
    std::uint16_t cmd = config_.raw16(cfg::command);
    return (cmd & (cfg::cmdMemEnable | cfg::cmdIoEnable)) != 0;
}

bool
Vp2p::busMasterEnabled() const
{
    return (config_.raw16(cfg::command) & cfg::cmdBusMaster) != 0;
}

} // namespace pciesim
