#include "root_complex.hh"

#include "pci/config_regs.hh"
#include "pci/platform.hh"
#include "sim/trace.hh"

namespace pciesim
{

class RootComplex::UpSlavePort : public SlavePort
{
  public:
    UpSlavePort(RootComplex &rc, const std::string &name)
        : SlavePort(name), rc_(rc)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return rc_.handleUpstreamRequest(pkt);
    }

    void
    recvRespRetry() override
    {
        rc_.upRespQueue_->retryNotify();
    }

    AddrRangeList
    getAddrRanges() const override
    {
        // The root complex claims the whole off-chip PCI region on
        // the MemBus; fine-grained routing happens inside using the
        // VP2P windows.
        return {platform::offChipRange};
    }

  private:
    RootComplex &rc_;
};

class RootComplex::UpMasterPort : public MasterPort
{
  public:
    UpMasterPort(RootComplex &rc, const std::string &name)
        : MasterPort(name), rc_(rc)
    {}

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        return rc_.handleUpstreamResponse(pkt);
    }

    void
    recvReqRetry() override
    {
        rc_.upReqQueue_->retryNotify();
    }

  private:
    RootComplex &rc_;
};

class RootComplex::RootMasterPort : public MasterPort
{
  public:
    RootMasterPort(RootComplex &rc, unsigned index,
                   const std::string &name)
        : MasterPort(name), rc_(rc), index_(index)
    {}

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        return rc_.handleDownstreamResponse(pkt, index_);
    }

    void
    recvReqRetry() override
    {
        rc_.downReqQueues_[index_]->retryNotify();
    }

  private:
    RootComplex &rc_;
    unsigned index_;
};

class RootComplex::RootSlavePort : public SlavePort
{
  public:
    RootSlavePort(RootComplex &rc, unsigned index,
                  const std::string &name)
        : SlavePort(name), rc_(rc), index_(index)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return rc_.handleDownstreamRequest(pkt, index_);
    }

    void
    recvRespRetry() override
    {
        rc_.downRespQueues_[index_]->retryNotify();
    }

    AddrRangeList
    getAddrRanges() const override
    {
        // DMA from downstream reaches anything upstream (DRAM).
        return {platform::dramRange};
    }

  private:
    RootComplex &rc_;
    unsigned index_;
};

RootComplex::RootComplex(Simulation &sim, const std::string &name,
                         PciHost &host,
                         const RootComplexParams &params)
    : SimObject(sim, name), params_(params), host_(host)
{
    fatalIf(params_.numRootPorts == 0 || params_.numRootPorts > 8,
            "root complex '", name, "': 1..8 root ports supported");

    upSlave_ = std::make_unique<UpSlavePort>(*this,
                                             name + ".upSlave");
    upMaster_ = std::make_unique<UpMasterPort>(*this,
                                               name + ".upMaster");

    upReqQueue_ = std::make_unique<PacketQueue>(
        eventq(), name + ".upReqQueue",
        [this](const PacketPtr &p) {
            return upMaster_->sendTimingReq(p);
        },
        params_.portBufferSize);
    upRespQueue_ = std::make_unique<PacketQueue>(
        eventq(), name + ".upRespQueue",
        [this](const PacketPtr &p) {
            return upSlave_->sendTimingResp(p);
        },
        params_.portBufferSize);

    upReqQueue_->setOnSpaceFreed([this] {
        if (!upReqQueue_->full()) {
            for (unsigned i = 0; i < params_.numRootPorts; ++i) {
                if (linkWantsReqRetry_[i]) {
                    linkWantsReqRetry_[i] = false;
                    rootSlaves_[i]->sendRetryReq();
                }
            }
        }
    });
    upRespQueue_->setOnSpaceFreed([this] {
        if (!upRespQueue_->full()) {
            for (unsigned i = 0; i < params_.numRootPorts; ++i) {
                if (linkWantsRespRetry_[i]) {
                    linkWantsRespRetry_[i] = false;
                    rootMasters_[i]->sendRetryResp();
                }
            }
        }
    });

    // Device IDs follow the Intel Wildcat Point root ports the
    // paper uses: 0x9c90, 0x9c92, 0x9c94 (Sec. V-A).
    static constexpr std::uint16_t wildcat_ids[] = {
        cfg::deviceWildcatRp0, cfg::deviceWildcatRp1,
        cfg::deviceWildcatRp2, 0x9c96, 0x9c98, 0x9c9a, 0x9c9c, 0x9c9e,
    };

    linkWantsReqRetry_.assign(params_.numRootPorts, false);
    linkWantsRespRetry_.assign(params_.numRootPorts, false);

    for (unsigned i = 0; i < params_.numRootPorts; ++i) {
        std::string pname = name + ".rootPort" + std::to_string(i);
        rootMasters_.push_back(std::make_unique<RootMasterPort>(
            *this, i, pname + ".master"));
        rootSlaves_.push_back(std::make_unique<RootSlavePort>(
            *this, i, pname + ".slave"));

        Vp2pParams vp;
        vp.deviceId = wildcat_ids[i];
        vp.portType = cfg::PciePortType::RootPort;
        vp.linkWidth = params_.linkWidth;
        vp.linkGen = params_.linkGen;
        vp2ps_.push_back(
            std::make_unique<Vp2p>(pname + ".vp2p", vp));

        downReqQueues_.push_back(std::make_unique<PacketQueue>(
            eventq(), pname + ".reqQueue",
            [this, i](const PacketPtr &p) {
                return rootMasters_[i]->sendTimingReq(p);
            },
            params_.portBufferSize));
        downRespQueues_.push_back(std::make_unique<PacketQueue>(
            eventq(), pname + ".respQueue",
            [this, i](const PacketPtr &p) {
                return rootSlaves_[i]->sendTimingResp(p);
            },
            params_.portBufferSize));

        downReqQueues_[i]->setOnSpaceFreed([this, i] {
            if (memBusWantsRetry_ && !downReqQueues_[i]->full()) {
                memBusWantsRetry_ = false;
                upSlave_->sendRetryReq();
            }
        });
        downRespQueues_[i]->setOnSpaceFreed([this, i] {
            if (ioCacheWantsRetryResp_ &&
                !downRespQueues_[i]->full()) {
                ioCacheWantsRetryResp_ = false;
                upMaster_->sendRetryResp();
            }
        });

        // VP2Ps register with the PCI Host like endpoints
        // (paper Sec. V-A): bus 0, device number = port index.
        host.registerFunction(*vp2ps_[i],
                              Bdf{0, static_cast<std::uint8_t>(i), 0});
    }
}

RootComplex::~RootComplex() = default;

SlavePort &
RootComplex::upstreamSlavePort()
{
    return *upSlave_;
}

MasterPort &
RootComplex::upstreamMasterPort()
{
    return *upMaster_;
}

MasterPort &
RootComplex::rootPortMaster(unsigned i)
{
    return *rootMasters_.at(i);
}

SlavePort &
RootComplex::rootPortSlave(unsigned i)
{
    return *rootSlaves_.at(i);
}

Vp2p &
RootComplex::vp2p(unsigned i)
{
    return *vp2ps_.at(i);
}

void
RootComplex::init()
{
    auto &reg = statsRegistry();
    using stats::Unit;
    reg.add(name() + ".fwdDownRequests", &fwdDownRequests_,
            "requests forwarded to root ports", Unit::Count);
    reg.add(name() + ".fwdUpRequests", &fwdUpRequests_,
            "DMA requests forwarded to the IOCache", Unit::Count);
    reg.add(name() + ".fwdDownResponses", &fwdDownResponses_,
            "responses forwarded to root ports", Unit::Count);
    reg.add(name() + ".fwdUpResponses", &fwdUpResponses_,
            "responses forwarded to the MemBus", Unit::Count);
    reg.add(name() + ".bufferRefusals", &bufferRefusals_,
            "packets refused due to full port buffers", Unit::Count);

    portRequests_.init(params_.numRootPorts);
    portResponses_.init(params_.numRootPorts);
    for (unsigned i = 0; i < params_.numRootPorts; ++i) {
        portRequests_.subname(i, "rootPort" + std::to_string(i));
        portResponses_.subname(i, "rootPort" + std::to_string(i));
    }
    reg.add(name() + ".portRequests", &portRequests_,
            "requests forwarded per root port", Unit::Count);
    reg.add(name() + ".portResponses", &portResponses_,
            "responses forwarded per root port", Unit::Count);

    fatalIf(!upSlave_->isBound(),
            "root complex '", name(), "' upstream slave unbound");
    fatalIf(!upMaster_->isBound(),
            "root complex '", name(), "' upstream master unbound");
    // Root ports may legitimately be left unconnected (the paper's
    // validation topology uses one of three); unbound ports just
    // never see traffic.
}

int
RootComplex::routeByAddress(Addr addr) const
{
    for (unsigned i = 0; i < params_.numRootPorts; ++i) {
        if (vp2ps_[i]->claims(addr))
            return static_cast<int>(i);
    }
    return -1;
}

int
RootComplex::routeByBus(int bus) const
{
    if (bus < 0)
        return -1;
    for (unsigned i = 0; i < params_.numRootPorts; ++i) {
        if (vp2ps_[i]->busInRange(static_cast<unsigned>(bus)))
            return static_cast<int>(i);
    }
    return -1;
}

bool
RootComplex::handleUpstreamRequest(const PacketPtr &pkt)
{
    // The upstream slave port stamps bus number 0 (paper Sec. V-A).
    if (pkt->pciBusNumber() < 0)
        pkt->setPciBusNumber(0);

    int port = routeByAddress(pkt->addr());
    panicIf(port < 0, "root complex '", name(),
            "': no VP2P window claims ", pkt->toString());

    auto &q = downReqQueues_[static_cast<unsigned>(port)];
    if (q->full()) {
        ++bufferRefusals_;
        memBusWantsRetry_ = true;
        return false;
    }
    ++fwdDownRequests_;
    ++portRequests_[static_cast<unsigned>(port)];
    TRACE_MSG(trace::Flag::Rc, curTick(), name(),
              "route down to root port ", port, ": ",
              pkt->toString());
    q->push(pkt, curTick() + params_.latency);
    return true;
}

bool
RootComplex::handleDownstreamRequest(const PacketPtr &pkt, unsigned i)
{
    // Stamp the ingress secondary bus number into the request so
    // the response can be routed back (paper Sec. V-A).
    if (pkt->pciBusNumber() < 0) {
        pkt->setPciBusNumber(
            static_cast<int>(vp2ps_[i]->secondaryBus()));
    }

    // Peer-to-peer: another VP2P window may claim the address.
    int port = routeByAddress(pkt->addr());
    if (port >= 0) {
        auto &q = downReqQueues_[static_cast<unsigned>(port)];
        if (q->full()) {
            ++bufferRefusals_;
            return false;
        }
        ++fwdDownRequests_;
        ++portRequests_[static_cast<unsigned>(port)];
        q->push(pkt, curTick() + params_.latency);
        return true;
    }

    // Otherwise the DMA request heads for memory through the
    // IOCache.
    if (upReqQueue_->full()) {
        ++bufferRefusals_;
        linkWantsReqRetry_[i] = true;
        return false;
    }
    ++fwdUpRequests_;
    TRACE_MSG(trace::Flag::Rc, curTick(), name(),
              "DMA up from root port ", i, ": ", pkt->toString());
    upReqQueue_->push(pkt, curTick() + params_.latency);
    return true;
}

bool
RootComplex::handleUpstreamResponse(const PacketPtr &pkt)
{
    int port = routeByBus(pkt->pciBusNumber());
    panicIf(port < 0, "root complex '", name(),
            "': no VP2P bus range matches response ",
            pkt->toString());

    auto &q = downRespQueues_[static_cast<unsigned>(port)];
    if (q->full()) {
        ++bufferRefusals_;
        ioCacheWantsRetryResp_ = true;
        return false;
    }
    ++fwdDownResponses_;
    ++portResponses_[static_cast<unsigned>(port)];
    q->push(pkt, curTick() + params_.latency);
    return true;
}

bool
RootComplex::handleDownstreamResponse(const PacketPtr &pkt, unsigned i)
{
    // Responses whose bus number falls in a VP2P's range go back
    // down that root port; everything else exits the upstream
    // slave port (paper Sec. V-A).
    int port = routeByBus(pkt->pciBusNumber());
    if (port >= 0) {
        auto &q = downRespQueues_[static_cast<unsigned>(port)];
        if (q->full()) {
            ++bufferRefusals_;
            linkWantsRespRetry_[i] = true;
            return false;
        }
        ++fwdDownResponses_;
        ++portResponses_[static_cast<unsigned>(port)];
        q->push(pkt, curTick() + params_.latency);
        return true;
    }

    if (upRespQueue_->full()) {
        ++bufferRefusals_;
        linkWantsRespRetry_[i] = true;
        return false;
    }
    ++fwdUpResponses_;
    upRespQueue_->push(pkt, curTick() + params_.latency);
    return true;
}

} // namespace pciesim
