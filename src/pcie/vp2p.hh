/**
 * @file
 * The virtual PCI-to-PCI bridge (paper Sec. V-A): a type-1
 * configuration header plus a PCI-Express capability structure,
 * registered with the PCI Host like an endpoint. One VP2P fronts
 * each root complex root port and each switch port; the routing
 * logic of those components consults the VP2P's software-programmed
 * windows and bus numbers on every packet.
 */

#ifndef PCIESIM_PCIE_VP2P_HH
#define PCIESIM_PCIE_VP2P_HH

#include "mem/addr_range.hh"
#include "pci/bridge_header.hh"
#include "pci/capability.hh"
#include "pci/config_regs.hh"
#include "pci/pci_function.hh"

namespace pciesim
{

/** Configuration for a Vp2p. */
struct Vp2pParams
{
    std::uint16_t vendorId = cfg::vendorIntel;
    std::uint16_t deviceId = cfg::deviceWildcatRp0;
    cfg::PciePortType portType = cfg::PciePortType::RootPort;
    unsigned linkWidth = 1;
    unsigned linkGen = 2;
    /** Ports connected to a slot expose the C2 slot registers. */
    bool slotImplemented = true;
};

/**
 * A virtual PCI-to-PCI bridge function.
 */
class Vp2p : public PciFunction
{
  public:
    Vp2p(const std::string &name, const Vp2pParams &params);

    /** @{ Decoded software-programmed state. */
    unsigned primaryBus() const;
    unsigned secondaryBus() const;
    unsigned subordinateBus() const;
    AddrRange memWindow() const;
    AddrRange ioWindow() const;
    AddrRange prefWindow() const;
    /** @} */

    /** Whether @p addr falls inside any forwarding window. */
    bool claims(Addr addr) const;

    /** Whether @p bus is within [secondary, subordinate]. */
    bool busInRange(unsigned bus) const;

    /** Whether the bridge forwards memory/I/O transactions
     *  (Command register enables, paper Sec. V-A). */
    bool forwardingEnabled() const;

    /** Whether downstream devices may master DMA transactions. */
    bool busMasterEnabled() const;

    /**
     * Offset of the PCI-Express capability structure; the paper
     * places it at 0xd8.
     */
    static constexpr unsigned pcieCapOffset = 0xd8;
};

} // namespace pciesim

#endif // PCIESIM_PCIE_VP2P_HH
