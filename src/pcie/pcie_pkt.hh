/**
 * @file
 * The pcie-pkt wrapper class (paper Sec. V-C): encapsulates either a
 * TLP (a gem5-style memory Packet) or a DLLP, and reports its wire
 * size including the Table I overheads. Since both DLLPs and TLPs
 * travel over the same unidirectional link, the link deals only in
 * PciePkt objects.
 */

#ifndef PCIESIM_PCIE_PCIE_PKT_HH
#define PCIESIM_PCIE_PCIE_PKT_HH

#include <cstdint>

#include "mem/packet.hh"
#include "pcie/pcie_timing.hh"

namespace pciesim
{

/** Sequence number carried by TLPs and acknowledged by DLLPs. */
using SeqNum = std::uint32_t;

/** @{
 * The data link layer sequence space is 12 bits wide (spec; the
 * TLP framing carries the sequence number in 1.5 bytes of the
 * Table I overhead), so sequence arithmetic and ordering are modulo
 * 4096. Ordering is defined over the half-window: @c a precedes
 * @c b when @c b is at most 2047 increments ahead of @c a - valid
 * because a replay buffer holds far fewer than 2048 in-flight TLPs.
 */
constexpr SeqNum seqMask = 0xfff;
constexpr SeqNum seqModulus = seqMask + 1;

/** Canonicalize into the 12-bit sequence space. */
constexpr SeqNum
seqClamp(SeqNum s)
{
    return s & seqMask;
}

constexpr SeqNum
seqInc(SeqNum s)
{
    return (s + 1) & seqMask;
}

constexpr SeqNum
seqDec(SeqNum s)
{
    return (s + seqMask) & seqMask;
}

/** Modular distance from @p a forward to @p b. */
constexpr SeqNum
seqDistance(SeqNum a, SeqNum b)
{
    return (b - a) & seqMask;
}

/** Whether @p a precedes or equals @p b in the half-window order. */
constexpr bool
seqLe(SeqNum a, SeqNum b)
{
    return seqDistance(a, b) < seqModulus / 2;
}

/** Whether @p a strictly precedes @p b. */
constexpr bool
seqLt(SeqNum a, SeqNum b)
{
    return seqClamp(a) != seqClamp(b) && seqLe(a, b);
}
/** @} */

/** Kind of data-link-layer packet. */
enum class DllpType : std::uint8_t
{
    Ack,
    Nak,
};

/**
 * A packet on a PCI-Express link: a TLP or a DLLP.
 *
 * The TLP wire size is snapshotted at construction because the
 * underlying Packet may be turned into a response (in place) by the
 * completer while a copy still sits in the sender's replay buffer.
 */
class PciePkt final
{
  public:
    /** Wrap a TLP with its assigned sequence number. */
    static PciePkt
    makeTlp(const PacketPtr &tlp, SeqNum seq)
    {
        PciePkt p;
        p.isTlp_ = true;
        p.tlp_ = tlp;
        p.seq_ = seqClamp(seq);
        p.payloadSize_ = tlp->tlpPayloadSize();
        return p;
    }

    /** Create an ACK/NAK DLLP acknowledging up to @p seq. */
    static PciePkt
    makeDllp(DllpType type, SeqNum seq)
    {
        PciePkt p;
        p.isTlp_ = false;
        p.dllpType_ = type;
        p.seq_ = seqClamp(seq);
        return p;
    }

    PciePkt() = default;

    bool isTlp() const { return isTlp_; }
    bool isDllp() const { return !isTlp_; }

    /** @{
     * Tick at which the TLP was accepted by the transmitting link
     * interface. Survives replays (the replay-buffer copy keeps
     * the original stamp), so hop latency measured at delivery and
     * ACK latency measured at purge both include recovery time.
     */
    void setInjectTick(Tick t) { injectTick_ = t; }
    Tick injectTick() const { return injectTick_; }
    /** @} */

    const PacketPtr &tlp() const { return tlp_; }
    DllpType dllpType() const { return dllpType_; }
    SeqNum seq() const { return seq_; }

    /** @{
     * LCRC corruption marker, set by the fault injector as the
     * packet enters the wire. A corrupted packet still occupies its
     * full wire time; the receiving interface fails its LCRC check
     * and discards it (pcie_link.cc).
     */
    void markCorrupted() { corrupted_ = true; }
    bool corrupted() const { return corrupted_; }
    /** @} */

    /**
     * Size on the wire in symbols (bytes before line encoding),
     * per Table I: a TLP carries its payload plus 20 B of header,
     * sequence number, LCRC and framing; a DLLP is 8 B.
     */
    unsigned
    wireSymbols() const
    {
        return isTlp_ ? payloadSize_ + overhead::tlpTotal
                      : overhead::dllpTotal;
    }

    /** Serialization delay of this packet on a given link. */
    Tick
    wireTime(PcieGen gen, unsigned width) const
    {
        return serializationTime(gen, width, wireSymbols());
    }

    /** Freelist recycling heap-allocated PciePkt storage (the same
     *  PacketPool machinery Packet uses; see packet.hh). */
    static PacketPool &
    pool()
    {
        static PacketPool pool(sizeof(PciePkt));
        return pool;
    }

    /** @{ Pooled storage; PciePkt is final, one block each. */
    static void *
    operator new(std::size_t size)
    {
        panicIf(size != pool().blockSize(),
                "pcie-pkt allocation size mismatch");
        return pool().allocate();
    }

    static void
    operator delete(void *p) noexcept
    {
        if (p != nullptr)
            pool().deallocate(p);
    }
    /** @} */

  private:
    bool isTlp_ = false;
    bool corrupted_ = false;
    PacketPtr tlp_;
    DllpType dllpType_ = DllpType::Ack;
    SeqNum seq_ = 0;
    unsigned payloadSize_ = 0;
    Tick injectTick_ = 0;
};

} // namespace pciesim

#endif // PCIESIM_PCIE_PCIE_PKT_HH
