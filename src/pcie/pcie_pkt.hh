/**
 * @file
 * The pcie-pkt wrapper class (paper Sec. V-C): encapsulates either a
 * TLP (a gem5-style memory Packet) or a DLLP, and reports its wire
 * size including the Table I overheads. Since both DLLPs and TLPs
 * travel over the same unidirectional link, the link deals only in
 * PciePkt objects.
 */

#ifndef PCIESIM_PCIE_PCIE_PKT_HH
#define PCIESIM_PCIE_PCIE_PKT_HH

#include <cstdint>

#include "mem/packet.hh"
#include "pcie/pcie_timing.hh"

namespace pciesim
{

/** Sequence number carried by TLPs and acknowledged by DLLPs. */
using SeqNum = std::uint32_t;

/** Kind of data-link-layer packet. */
enum class DllpType : std::uint8_t
{
    Ack,
    Nak,
};

/**
 * A packet on a PCI-Express link: a TLP or a DLLP.
 *
 * The TLP wire size is snapshotted at construction because the
 * underlying Packet may be turned into a response (in place) by the
 * completer while a copy still sits in the sender's replay buffer.
 */
class PciePkt final
{
  public:
    /** Wrap a TLP with its assigned sequence number. */
    static PciePkt
    makeTlp(const PacketPtr &tlp, SeqNum seq)
    {
        PciePkt p;
        p.isTlp_ = true;
        p.tlp_ = tlp;
        p.seq_ = seq;
        p.payloadSize_ = tlp->tlpPayloadSize();
        return p;
    }

    /** Create an ACK/NAK DLLP acknowledging up to @p seq. */
    static PciePkt
    makeDllp(DllpType type, SeqNum seq)
    {
        PciePkt p;
        p.isTlp_ = false;
        p.dllpType_ = type;
        p.seq_ = seq;
        return p;
    }

    PciePkt() = default;

    bool isTlp() const { return isTlp_; }
    bool isDllp() const { return !isTlp_; }

    const PacketPtr &tlp() const { return tlp_; }
    DllpType dllpType() const { return dllpType_; }
    SeqNum seq() const { return seq_; }

    /**
     * Size on the wire in symbols (bytes before line encoding),
     * per Table I: a TLP carries its payload plus 20 B of header,
     * sequence number, LCRC and framing; a DLLP is 8 B.
     */
    unsigned
    wireSymbols() const
    {
        return isTlp_ ? payloadSize_ + overhead::tlpTotal
                      : overhead::dllpTotal;
    }

    /** Serialization delay of this packet on a given link. */
    Tick
    wireTime(PcieGen gen, unsigned width) const
    {
        return serializationTime(gen, width, wireSymbols());
    }

    /** Freelist recycling heap-allocated PciePkt storage (the same
     *  PacketPool machinery Packet uses; see packet.hh). */
    static PacketPool &
    pool()
    {
        static PacketPool pool(sizeof(PciePkt));
        return pool;
    }

    /** @{ Pooled storage; PciePkt is final, one block each. */
    static void *
    operator new(std::size_t size)
    {
        panicIf(size != pool().blockSize(),
                "pcie-pkt allocation size mismatch");
        return pool().allocate();
    }

    static void
    operator delete(void *p) noexcept
    {
        if (p != nullptr)
            pool().deallocate(p);
    }
    /** @} */

  private:
    bool isTlp_ = false;
    PacketPtr tlp_;
    DllpType dllpType_ = DllpType::Ack;
    SeqNum seq_ = 0;
    unsigned payloadSize_ = 0;
};

} // namespace pciesim

#endif // PCIESIM_PCIE_PCIE_PKT_HH
