#include "err_reporter.hh"

#include "sim/parallel.hh"
#include "sim/trace.hh"

namespace pciesim
{

using trace::Flag;

ErrReporter::ErrReporter(Simulation &sim, const std::string &name,
                         Tick delivery_latency)
    : SimObject(sim, name), deliveryLatency_(delivery_latency),
      deliverEvent_(this, name + ".deliverEvent")
{
    deliveredBySev_.init(3);
    deliveredBySev_.subname(0, "cor");
    deliveredBySev_.subname(1, "nonfatal");
    deliveredBySev_.subname(2, "fatal");
}

void
ErrReporter::init()
{
    statsRegistry().add(name() + ".delivered", &deliveredBySev_,
                        "error messages delivered to the root, "
                        "by severity", stats::Unit::Count);
}

void
ErrReporter::report(const ErrMsg &msg)
{
    // The message rides upstream out-of-band: it is queued here and
    // handed to the root-side sink after the reporting latency, in
    // report order.
    const bool cross = par::engineActive &&
                       par::currentQueue() != &eventq();
    Tick now = cross ? par::currentQueue()->curTick() : curTick();
    Tick when = now + deliveryLatency_;
    {
        std::lock_guard<std::mutex> lock(pendingMu_);
        pending_.push_back(msg);
    }
    TRACE_MSG(Flag::Rc, now, name(), "queue ",
              errSeverityName(msg.sev), " from source 0x",
              msg.sourceId);
    if (cross) {
        // A detector on another link domain must not touch the
        // root queue's heap; route the wake-up through the engine
        // mailbox. (Error-generating configurations pin the fabric
        // to one domain today, but the reporter stays safe if that
        // ever changes.)
        par::activeEngine->postCall(eventq(), when,
                                    [this] { deliver(); });
        return;
    }
    // Deliveries ride the root (domain 0) queue. The named receiver
    // keeps this schedule visible to the domain-safety analyzer:
    // err_reporter.cc is a sanctioned cross-domain file.
    EventQueue *root_queue = &eventq();
    if (!deliverEvent_.scheduled())
        root_queue->schedule(&deliverEvent_, when);
}

std::uint64_t
ErrReporter::delivered(ErrSeverity sev) const
{
    return deliveredBySev_[static_cast<std::size_t>(sev)].value();
}

void
ErrReporter::deliver()
{
    ErrMsg msg;
    bool more = false;
    {
        std::lock_guard<std::mutex> lock(pendingMu_);
        if (pending_.empty())
            return; // drained by an earlier mailboxed wake-up
        msg = pending_.front();
        pending_.pop_front();
        more = !pending_.empty();
    }
    ++deliveredBySev_[static_cast<std::size_t>(msg.sev)];
    TRACE_MSG(Flag::Rc, curTick(), name(), "deliver ",
              errSeverityName(msg.sev), " (AER bit 0x", msg.aerBit,
              ") from source 0x", msg.sourceId);
    if (sink_)
        sink_(msg);
    if (more && !deliverEvent_.scheduled()) {
        EventQueue *root_queue = &eventq();
        root_queue->schedule(&deliverEvent_,
                             curTick() + deliveryLatency_);
    }
}

} // namespace pciesim
