/**
 * @file
 * The replay buffer of a PCI-Express link interface (paper
 * Sec. V-C): a bounded FIFO of transmitted-but-unacknowledged TLPs
 * in sequence-number order. A full replay buffer halts TLP
 * transmission (source throttling); an ACK purges every entry with
 * a sequence number at or below the acknowledged one.
 */

#ifndef PCIESIM_PCIE_REPLAY_BUFFER_HH
#define PCIESIM_PCIE_REPLAY_BUFFER_HH

#include <deque>

#include "pcie/pcie_pkt.hh"
#include "sim/invariant.hh"
#include "sim/logging.hh"

namespace pciesim
{

/**
 * Bounded FIFO of transmitted-but-unacknowledged TLPs. In audit
 * builds every mutation re-verifies strict sequence-number
 * monotonicity and the capacity bound (sim/invariant.hh).
 */
class ReplayBuffer
{
  public:
    /** @param capacity Maximum resident TLPs (paper sweeps 1..4). */
    explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity)
    {
        panicIf(capacity == 0, "replay buffer needs capacity >= 1");
    }

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Deepest occupancy ever reached (a congestion fingerprint:
     *  high water at capacity means source throttling engaged). */
    std::size_t highWater() const { return highWater_; }

    /** Record a transmitted TLP; entries stay in seq order. */
    void
    push(const PciePkt &pkt)
    {
        panicIf(!pkt.isTlp(), "only TLPs enter the replay buffer");
        panicIf(full(), "replay buffer overflow");
        panicIf(!entries_.empty() &&
                !seqLt(entries_.back().seq(), pkt.seq()),
                "replay buffer sequence numbers must increase");
        entries_.push_back(pkt);
        if (entries_.size() > highWater_)
            highWater_ = entries_.size();
        auditSeqOrder();
    }

    /**
     * Process an ACK: drop all TLPs at or (modularly) before
     * @p acked in the 12-bit sequence order.
     * @return number of purged entries.
     */
    std::size_t
    ack(SeqNum acked)
    {
        std::size_t purged = 0;
        while (!entries_.empty() &&
               seqLe(entries_.front().seq(), acked)) {
            entries_.pop_front();
            ++purged;
        }
        auditSeqOrder();
        return purged;
    }

    /**
     * ack() variant invoking @p on_purge with each purged entry
     * before it is dropped — the link interface samples its
     * ACK-latency histogram from the entries' inject ticks.
     */
    template <typename Fn>
    std::size_t
    ack(SeqNum acked, Fn &&on_purge)
    {
        std::size_t purged = 0;
        while (!entries_.empty() &&
               seqLe(entries_.front().seq(), acked)) {
            on_purge(entries_.front());
            entries_.pop_front();
            ++purged;
        }
        auditSeqOrder();
        return purged;
    }

    /** Iterate resident TLPs in sequence order (for replay). */
    const std::deque<PciePkt> &entries() const { return entries_; }

    PCIESIM_AUDIT_ONLY(
    /**
     * Test hook (audit builds only): rewrite entry @p i with
     * sequence number @p seq and re-run the monotonicity audit, so
     * invariant_test can prove the audit fires on corrupted state.
     */
    void
    corruptSeqForAuditTest(std::size_t i, SeqNum seq)
    {
        entries_.at(i) = PciePkt::makeTlp(entries_.at(i).tlp(), seq);
        auditSeqOrder();
    })

  private:
    /** Audit builds: full monotonicity and capacity sweep. */
    void
    auditSeqOrder() const
    {
#ifdef PCIESIM_ENABLE_AUDIT
        PCIESIM_AUDIT(entries_.size() <= capacity_,
                      "replay buffer holds ", entries_.size(),
                      " TLPs, capacity ", capacity_);
        for (std::size_t i = 1; i < entries_.size(); ++i) {
            PCIESIM_AUDIT(seqLt(entries_[i - 1].seq(),
                                entries_[i].seq()),
                          "replay buffer seq order broken at entry ",
                          i, " (", entries_[i - 1].seq(), " then ",
                          entries_[i].seq(), ")");
        }
#endif
    }

    std::size_t capacity_;
    std::deque<PciePkt> entries_;
    std::size_t highWater_ = 0;
};

} // namespace pciesim

#endif // PCIESIM_PCIE_REPLAY_BUFFER_HH
