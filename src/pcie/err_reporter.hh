/**
 * @file
 * The PCIe error-message reporter: routes ERR_COR / ERR_NONFATAL /
 * ERR_FATAL messages from detecting agents toward the root complex
 * with a modelled propagation latency (DESIGN.md §12).
 *
 * Error messages are posted TLPs travelling upstream out-of-band of
 * the data path; the model delivers them as deferred callbacks on
 * the root's (domain 0) event queue, so a detector running on any
 * link domain may report without touching root-side state directly.
 */

#ifndef PCIESIM_PCIE_ERR_REPORTER_HH
#define PCIESIM_PCIE_ERR_REPORTER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "pci/aer.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace pciesim
{

/** One PCIe error message on its way to the root complex. */
struct ErrMsg
{
    ErrSeverity sev = ErrSeverity::Correctable;
    /** The AER status bit the detector latched. */
    std::uint32_t aerBit = 0;
    /** Requester id (Bdf::key()) of the detecting agent. */
    std::uint16_t sourceId = 0;
};

/**
 * Collects error messages and delivers them to the root-side sink
 * after a fixed reporting latency, in arrival order.
 */
class ErrReporter : public SimObject
{
  public:
    ErrReporter(Simulation &sim, const std::string &name,
                Tick delivery_latency);

    void init() override;

    /** The root-side consumer; runs on the reporter's home queue. */
    void
    setSink(std::function<void(const ErrMsg &)> sink)
    {
        sink_ = std::move(sink);
    }

    /** Post one error message toward the root. Safe to call from
     *  any link domain. */
    void report(const ErrMsg &msg);

    /** Messages delivered so far, by severity (tests/benches). */
    std::uint64_t delivered(ErrSeverity sev) const;

  private:
    void deliver();

    Tick deliveryLatency_;
    std::function<void(const ErrMsg &)> sink_;
    /** Messages in flight; guarded for cross-domain report(). */
    std::deque<ErrMsg> pending_;
    std::mutex pendingMu_;
    stats::Vector deliveredBySev_;
    MemberEventWrapper<ErrReporter, &ErrReporter::deliver>
        deliverEvent_;
};

} // namespace pciesim

#endif // PCIESIM_PCIE_ERR_REPORTER_HH
