#include "pci_host.hh"

#include "pci/config_regs.hh"
#include "sim/logging.hh"

namespace pciesim
{

PciHost::PciHost(Simulation &sim, const std::string &name)
    : SimObject(sim, name)
{}

void
PciHost::registerFunction(PciFunction &fn, Bdf bdf)
{
    auto it = functions_.find(bdf.key());
    if (it != functions_.end()) {
        fatal("PCI function '", fn.pciName(), "' at ",
              bdf.toString(), " collides with '",
              it->second->pciName(), "'");
    }
    fn.setBdf(bdf);
    functions_[bdf.key()] = &fn;
}

PciFunction *
PciHost::lookup(Bdf bdf) const
{
    auto it = functions_.find(bdf.key());
    return it == functions_.end() ? nullptr : it->second;
}

std::uint32_t
PciHost::configRead(Bdf bdf, unsigned offset, unsigned size)
{
    PciFunction *fn = lookup(bdf);
    if (fn == nullptr) {
        // Absent device: data field all ones (paper Sec. III).
        return cfg::allOnes >> (8 * (4 - size));
    }
    return fn->configRead(offset, size);
}

void
PciHost::configWrite(Bdf bdf, unsigned offset, unsigned size,
                     std::uint32_t value)
{
    PciFunction *fn = lookup(bdf);
    if (fn != nullptr)
        fn->configWrite(offset, size, value);
}

Addr
PciHost::ecamAddr(Bdf bdf, unsigned offset)
{
    return platform::confBase |
           (static_cast<Addr>(bdf.bus) << 20) |
           (static_cast<Addr>(bdf.dev) << 15) |
           (static_cast<Addr>(bdf.fn) << 12) | (offset & 0xfff);
}

bool
PciHost::decodeEcam(Addr addr, Bdf &bdf, unsigned &offset)
{
    if (!platform::confRange.contains(addr))
        return false;
    Addr rel = addr - platform::confBase;
    bdf.bus = (rel >> 20) & 0xff;
    bdf.dev = (rel >> 15) & 0x1f;
    bdf.fn = (rel >> 12) & 0x7;
    offset = rel & 0xfff;
    return true;
}

std::uint32_t
PciHost::configReadAddr(Addr addr, unsigned size)
{
    Bdf bdf;
    unsigned offset = 0;
    panicIf(!decodeEcam(addr, bdf, offset),
            "config read outside the ECAM window");
    return configRead(bdf, offset, size);
}

void
PciHost::configWriteAddr(Addr addr, unsigned size, std::uint32_t value)
{
    Bdf bdf;
    unsigned offset = 0;
    panicIf(!decodeEcam(addr, bdf, offset),
            "config write outside the ECAM window");
    configWrite(bdf, offset, size, value);
}

} // namespace pciesim
