/**
 * @file
 * The PCI Host: gem5's functional host-to-PCI bridge (paper
 * Sec. III). It claims the whole ECAM configuration window,
 * maintains the registry of PCI functions keyed by bus/device/
 * function, forwards configuration accesses to them, and completes
 * accesses to absent devices with all-ones.
 */

#ifndef PCIESIM_PCI_PCI_HOST_HH
#define PCIESIM_PCI_PCI_HOST_HH

#include <map>

#include "mem/addr_range.hh"
#include "pci/pci_function.hh"
#include "pci/platform.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/**
 * Registry + Enhanced Configuration Access Mechanism decoding.
 *
 * All PCI functions (endpoints and virtual PCI-to-PCI bridges)
 * register themselves here; the enumeration software and drivers
 * perform configuration accesses through this object.
 */
class PciHost : public SimObject
{
  public:
    PciHost(Simulation &sim, const std::string &name);

    /** Register @p fn at @p bdf; duplicate registration is fatal. */
    void registerFunction(PciFunction &fn, Bdf bdf);

    /** @return the function at @p bdf, or nullptr when absent. */
    PciFunction *lookup(Bdf bdf) const;

    /**
     * Configuration read. Absent devices complete with all-ones
     * (the PCI-Express "unsupported request" convention).
     */
    std::uint32_t configRead(Bdf bdf, unsigned offset, unsigned size);

    /** Configuration write; silently dropped for absent devices. */
    void configWrite(Bdf bdf, unsigned offset, unsigned size,
                     std::uint32_t value);

    /** ECAM address of a register: base + bus<<20|dev<<15|fn<<12. */
    static Addr ecamAddr(Bdf bdf, unsigned offset);

    /**
     * Decode an ECAM address.
     * @return false when outside the configuration window.
     */
    static bool decodeEcam(Addr addr, Bdf &bdf, unsigned &offset);

    /** Configuration read through an ECAM address. */
    std::uint32_t configReadAddr(Addr addr, unsigned size);

    /** Configuration write through an ECAM address. */
    void configWriteAddr(Addr addr, unsigned size, std::uint32_t value);

    /** All registered functions, keyed by Bdf::key(). */
    const std::map<std::uint32_t, PciFunction *> &
    functions() const
    {
        return functions_;
    }

  private:
    std::map<std::uint32_t, PciFunction *> functions_;
};

} // namespace pciesim

#endif // PCIESIM_PCI_PCI_HOST_HH
