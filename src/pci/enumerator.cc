#include "enumerator.hh"

#include "pci/bridge_header.hh"
#include "pci/config_regs.hh"
#include "sim/logging.hh"

namespace pciesim
{

const EnumeratedFunction *
Enumerator::Result::find(std::uint16_t vendor,
                         std::uint16_t device) const
{
    for (const auto &f : functions) {
        if (f.vendorId == vendor && f.deviceId == device)
            return &f;
    }
    return nullptr;
}

const EnumeratedFunction *
Enumerator::Result::find(Bdf bdf) const
{
    for (const auto &f : functions) {
        if (f.bdf == bdf)
            return &f;
    }
    return nullptr;
}

Addr
Enumerator::Allocator::alloc(Addr size, Addr align)
{
    Addr base = (cur + align - 1) & ~(align - 1);
    fatalIf(base + size > end,
            "PCI resource window exhausted (need ", size, " at 0x",
            base, ", window ends at 0x", end, ")");
    cur = base + size;
    return base;
}

void
Enumerator::Allocator::alignTo(Addr align)
{
    cur = (cur + align - 1) & ~(align - 1);
}

Enumerator::Enumerator(PciHost &host, AddrRange mem_window,
                       AddrRange io_window, std::uint8_t first_irq)
    : host_(host), mem_{mem_window.start(), mem_window.end()},
      io_{io_window.start(), io_window.end()}, nextIrq_(first_irq)
{
    // Never hand out address 0: a zero BAR reads as "unassigned".
    if (mem_.cur == 0)
        mem_.cur = 0x1000;
    if (io_.cur == 0)
        io_.cur = 0x1000;
}

std::uint32_t
Enumerator::read32(Bdf b, unsigned off)
{
    return host_.configRead(b, off, 4);
}

std::uint16_t
Enumerator::read16(Bdf b, unsigned off)
{
    return static_cast<std::uint16_t>(host_.configRead(b, off, 2));
}

std::uint8_t
Enumerator::read8(Bdf b, unsigned off)
{
    return static_cast<std::uint8_t>(host_.configRead(b, off, 1));
}

void
Enumerator::write32(Bdf b, unsigned off, std::uint32_t v)
{
    host_.configWrite(b, off, 4, v);
}

void
Enumerator::write16(Bdf b, unsigned off, std::uint16_t v)
{
    host_.configWrite(b, off, 2, v);
}

void
Enumerator::write8(Bdf b, unsigned off, std::uint8_t v)
{
    host_.configWrite(b, off, 1, v);
}

Enumerator::Result
Enumerator::enumerate()
{
    Result result;
    busCounter_ = 0;
    scanBus(0, result);
    result.numBuses = busCounter_ + 1;

    // Sanity: every function registered with the host must have
    // been discovered; anything else means the static bus/device
    // assignment of the topology disagrees with the DFS order.
    for (const auto &[key, fn] : host_.functions()) {
        (void)key;
        fatalIf(result.find(fn->bdf()) == nullptr,
                "function '", fn->pciName(), "' at ",
                fn->bdf().toString(),
                " was never discovered by enumeration; its assigned "
                "bus number does not match the DFS order");
    }
    return result;
}

void
Enumerator::scanBus(unsigned bus, Result &result)
{
    for (unsigned dev = 0; dev < 32; ++dev) {
        Bdf bdf{static_cast<std::uint8_t>(bus),
                static_cast<std::uint8_t>(dev), 0};
        std::uint16_t vendor = read16(bdf, cfg::vendorId);
        if (vendor == 0xffff)
            continue; // no device in this slot

        EnumeratedFunction rec;
        rec.bdf = bdf;
        rec.vendorId = vendor;
        rec.deviceId = read16(bdf, cfg::deviceId);

        std::uint8_t header = read8(bdf, cfg::headerType) & 0x7f;
        if (header == cfg::headerTypeBridge) {
            rec.isBridge = true;
            configureBridge(bdf, rec, result);
        } else {
            configureEndpoint(bdf, rec);
        }
        result.functions.push_back(rec);
    }
}

void
Enumerator::configureBridge(Bdf bdf, EnumeratedFunction &rec,
                            Result &result)
{
    // Assign bus numbers: primary = our bus, secondary = next free,
    // subordinate temporarily maxed out so configuration cycles can
    // reach everything below during the recursive scan.
    unsigned secondary = ++busCounter_;
    write8(bdf, cfg::primaryBus, static_cast<std::uint8_t>(bdf.bus));
    write8(bdf, cfg::secondaryBus,
           static_cast<std::uint8_t>(secondary));
    write8(bdf, cfg::subordinateBus, 0xff);

    // Record the window start positions; everything allocated while
    // scanning the subtree lands inside the bridge windows.
    mem_.alignTo(0x100000); // memory windows have 1 MB granularity
    io_.alignTo(0x1000);    // I/O windows have 4 KB granularity
    Addr mem_start = mem_.cur;
    Addr io_start = io_.cur;

    scanBus(secondary, result);

    // Close the windows.
    mem_.alignTo(0x100000);
    io_.alignTo(0x1000);
    Addr mem_end = mem_.cur;
    Addr io_end = io_.cur;

    PciFunction *fn = host_.lookup(bdf);
    panicIf(fn == nullptr, "bridge vanished during enumeration");
    if (mem_end > mem_start) {
        BridgeHeader::programMemWindow(fn->config(), mem_start,
                                       mem_end - 1);
    }
    if (io_end > io_start) {
        BridgeHeader::programIoWindow(fn->config(), io_start,
                                      io_end - 1);
    }

    write8(bdf, cfg::subordinateBus,
           static_cast<std::uint8_t>(busCounter_));
    rec.secondaryBus = secondary;
    rec.subordinateBus = busCounter_;

    // Enable forwarding and downstream bus mastering
    // (paper Sec. V-A, Command Register).
    write16(bdf, cfg::command,
            cfg::cmdIoEnable | cfg::cmdMemEnable | cfg::cmdBusMaster);
}

void
Enumerator::configureEndpoint(Bdf bdf, EnumeratedFunction &rec)
{
    rec.bars.assign(cfg::numBars, AddrRange{});
    rec.barIsIo.assign(cfg::numBars, false);

    for (unsigned bar = 0; bar < cfg::numBars; ++bar) {
        unsigned off = cfg::bar0 + 4 * bar;
        write32(bdf, off, 0xffffffffU);
        std::uint32_t mask = read32(bdf, off);
        if (mask == 0)
            continue; // BAR not implemented

        bool is_io = mask & cfg::barIoSpace;
        std::uint32_t size_mask = is_io ? (mask & ~0x3U)
                                        : (mask & ~0xfU);
        Addr size = (~size_mask + 1) & 0xffffffffULL;
        fatalIf(size == 0, "BAR ", bar, " of ", bdf.toString(),
                " reports zero size mask 0x", mask);

        Addr base = is_io ? io_.alloc(size, size)
                          : mem_.alloc(size, size);
        write32(bdf, off, static_cast<std::uint32_t>(base));

        rec.bars[bar] = AddrRange{base, base + size};
        rec.barIsIo[bar] = is_io;
    }

    // Interrupt assignment: devices with an interrupt pin get the
    // next platform interrupt line.
    std::uint8_t pin = read8(bdf, cfg::interruptPin);
    if (pin != 0) {
        rec.irqLine = nextIrq_++;
        write8(bdf, cfg::interruptLine, rec.irqLine);
    }

    write16(bdf, cfg::command,
            cfg::cmdIoEnable | cfg::cmdMemEnable | cfg::cmdBusMaster);
}

} // namespace pciesim
