/**
 * @file
 * PCI / PCI-Express configuration register offsets and encodings.
 *
 * Covers the type-0 endpoint header (paper Fig. 4, region R1), the
 * type-1 PCI bridge header (paper Fig. 7), the capability space
 * (region R2) and the capability-structure layouts (paper Fig. 5).
 */

#ifndef PCIESIM_PCI_CONFIG_REGS_HH
#define PCIESIM_PCI_CONFIG_REGS_HH

#include <cstdint>

namespace pciesim::cfg
{

/** Sizes of the configuration regions (paper Fig. 4). */
constexpr unsigned headerSize = 64;         //!< R1
constexpr unsigned pciConfigSize = 256;     //!< R1 + R2 (PCI device)
constexpr unsigned pcieConfigSize = 4096;   //!< R1 + R2 + R3 (PCIe)
constexpr unsigned extendedCapBase = 0x100; //!< start of R3

/** @{ Common header registers (type 0 and type 1). */
constexpr unsigned vendorId = 0x00;     // 16 bit
constexpr unsigned deviceId = 0x02;     // 16 bit
constexpr unsigned command = 0x04;      // 16 bit
constexpr unsigned status = 0x06;       // 16 bit
constexpr unsigned revisionId = 0x08;   // 8 bit
constexpr unsigned classCode = 0x09;    // 24 bit
constexpr unsigned cacheLineSize = 0x0c; // 8 bit
constexpr unsigned latencyTimer = 0x0d; // 8 bit
constexpr unsigned headerType = 0x0e;   // 8 bit
constexpr unsigned bist = 0x0f;         // 8 bit
constexpr unsigned capPtr = 0x34;       // 8 bit
constexpr unsigned interruptLine = 0x3c; // 8 bit
constexpr unsigned interruptPin = 0x3d; // 8 bit
/** @} */

/** @{ Type-0 (endpoint) header registers. */
constexpr unsigned bar0 = 0x10;
constexpr unsigned bar1 = 0x14;
constexpr unsigned bar2 = 0x18;
constexpr unsigned bar3 = 0x1c;
constexpr unsigned bar4 = 0x20;
constexpr unsigned bar5 = 0x24;
constexpr unsigned subsystemVendorId = 0x2c;
constexpr unsigned subsystemId = 0x2e;
constexpr unsigned expansionRom = 0x30;
constexpr unsigned minGrant = 0x3e;
constexpr unsigned maxLatency = 0x3f;
constexpr unsigned numBars = 6;
/** @} */

/** @{ Type-1 (PCI-to-PCI bridge) header registers (paper Fig. 7). */
constexpr unsigned briBar0 = 0x10;
constexpr unsigned briBar1 = 0x14;
constexpr unsigned primaryBus = 0x18;     // 8 bit
constexpr unsigned secondaryBus = 0x19;   // 8 bit
constexpr unsigned subordinateBus = 0x1a; // 8 bit
constexpr unsigned secLatencyTimer = 0x1b;
constexpr unsigned ioBase = 0x1c;        // 8 bit
constexpr unsigned ioLimit = 0x1d;       // 8 bit
constexpr unsigned secondaryStatus = 0x1e; // 16 bit
constexpr unsigned memoryBase = 0x20;    // 16 bit
constexpr unsigned memoryLimit = 0x22;   // 16 bit
constexpr unsigned prefMemBase = 0x24;   // 16 bit
constexpr unsigned prefMemLimit = 0x26;  // 16 bit
constexpr unsigned prefBaseUpper32 = 0x28;
constexpr unsigned prefLimitUpper32 = 0x2c;
constexpr unsigned ioBaseUpper16 = 0x30;  // 16 bit
constexpr unsigned ioLimitUpper16 = 0x32; // 16 bit
constexpr unsigned briCapPtr = 0x34;
constexpr unsigned briExpansionRom = 0x38;
constexpr unsigned bridgeControl = 0x3e; // 16 bit
/** @} */

/** Command register bits. */
constexpr std::uint16_t cmdIoEnable = 1 << 0;
constexpr std::uint16_t cmdMemEnable = 1 << 1;
constexpr std::uint16_t cmdBusMaster = 1 << 2;
constexpr std::uint16_t cmdIntxDisable = 1 << 10;

/** Status register bits. */
constexpr std::uint16_t statusCapList = 1 << 4;
constexpr std::uint16_t statusIntx = 1 << 3;

/** Header type encodings (bit 7 = multi-function). */
constexpr std::uint8_t headerTypeEndpoint = 0x00;
constexpr std::uint8_t headerTypeBridge = 0x01;

/** BAR encodings. */
constexpr std::uint32_t barIoSpace = 0x1;
constexpr std::uint32_t barMem32 = 0x0 << 1;
constexpr std::uint32_t barMem64 = 0x2 << 1;
constexpr std::uint32_t barPrefetchable = 1 << 3;

/** Capability IDs (in R2). */
constexpr std::uint8_t capIdPm = 0x01;
constexpr std::uint8_t capIdMsi = 0x05;
constexpr std::uint8_t capIdPcie = 0x10;
constexpr std::uint8_t capIdMsix = 0x11;

/** @{ PCI-Express capability structure offsets (paper Fig. 5),
 *     relative to the capability base. */
constexpr unsigned pcieCapReg = 0x02;     // 16 bit
constexpr unsigned pcieDevCap = 0x04;     // 32 bit
constexpr unsigned pcieDevCtrl = 0x08;    // 16 bit
constexpr unsigned pcieDevStatus = 0x0a;  // 16 bit
constexpr unsigned pcieLinkCap = 0x0c;    // 32 bit
constexpr unsigned pcieLinkCtrl = 0x10;   // 16 bit
constexpr unsigned pcieLinkStatus = 0x12; // 16 bit
constexpr unsigned pcieSlotCap = 0x14;    // 32 bit
constexpr unsigned pcieSlotCtrl = 0x18;   // 16 bit
constexpr unsigned pcieSlotStatus = 0x1a; // 16 bit
constexpr unsigned pcieRootCtrl = 0x1c;   // 16 bit
constexpr unsigned pcieRootStatus = 0x20; // 32 bit
constexpr unsigned pcieCapLength = 0x24;
/** @} */

/** Device/port type field of the PCIe capabilities register
 *  (bits 7:4). */
enum class PciePortType : std::uint8_t
{
    Endpoint = 0x0,
    LegacyEndpoint = 0x1,
    RootPort = 0x4,
    SwitchUpstream = 0x5,
    SwitchDownstream = 0x6,
    PcieToPciBridge = 0x7,
    RootComplexIntegrated = 0x9,
};

/** Class codes used by the models. */
constexpr std::uint32_t classNetworkEthernet = 0x020000;
constexpr std::uint32_t classStorageIde = 0x010185;
constexpr std::uint32_t classBridgeP2p = 0x060400;

/** Vendor / device IDs (paper Sec. IV & V-A). */
constexpr std::uint16_t vendorIntel = 0x8086;
constexpr std::uint16_t device8254xPcie = 0x10d3; //!< triggers e1000e
constexpr std::uint16_t deviceWildcatRp0 = 0x9c90;
constexpr std::uint16_t deviceWildcatRp1 = 0x9c92;
constexpr std::uint16_t deviceWildcatRp2 = 0x9c94;
constexpr std::uint16_t deviceIdeCtrl = 0x7111;
constexpr std::uint16_t deviceSwitchPort = 0x8796; //!< PEX8796-like

/** @{ Advanced Error Reporting extended capability (region R3).
 *     Offsets are relative to the capability base (extendedCapBase
 *     on every function in this model). */
constexpr std::uint16_t extCapIdAer = 0x0001;
constexpr unsigned aerCapHeader = 0x00;     // 32 bit: id/ver/next
constexpr unsigned aerUncorrStatus = 0x04;  // 32 bit, W1C
constexpr unsigned aerUncorrMask = 0x08;    // 32 bit, RW
constexpr unsigned aerUncorrSeverity = 0x0c; // 32 bit, RW
constexpr unsigned aerCorrStatus = 0x10;    // 32 bit, W1C
constexpr unsigned aerCorrMask = 0x14;      // 32 bit, RW
constexpr unsigned aerCapControl = 0x18;    // 32 bit: first err ptr
constexpr unsigned aerHeaderLog = 0x1c;     // 4 x 32 bit, RO
constexpr unsigned aerRootErrCommand = 0x2c; // 32 bit, RW (root only)
constexpr unsigned aerRootErrStatus = 0x30; // 32 bit, W1C (root only)
constexpr unsigned aerErrSourceId = 0x34;   // 32 bit, RO (root only)
constexpr unsigned aerCapSize = 0x38;
/** @} */

/** Uncorrectable error status / mask / severity bits. */
constexpr std::uint32_t aerUncDlpError = 1 << 4;
constexpr std::uint32_t aerUncSurpriseDown = 1 << 5;
constexpr std::uint32_t aerUncCompletionTimeout = 1 << 14;
constexpr std::uint32_t aerUncUnsupportedRequest = 1 << 20;

/** Correctable error status / mask bits. */
constexpr std::uint32_t aerCorReceiverError = 1 << 0;
constexpr std::uint32_t aerCorBadTlp = 1 << 6;
constexpr std::uint32_t aerCorBadDllp = 1 << 7;
constexpr std::uint32_t aerCorReplayRollover = 1 << 8;
constexpr std::uint32_t aerCorReplayTimerTimeout = 1 << 12;

/** Root error status bits. */
constexpr std::uint32_t aerRootCorReceived = 1 << 0;
constexpr std::uint32_t aerRootUncorReceived = 1 << 2;
constexpr std::uint32_t aerRootNonFatalReceived = 1 << 5;
constexpr std::uint32_t aerRootFatalReceived = 1 << 6;

/** Root error command bits (interrupt enables per severity). */
constexpr std::uint32_t aerRootCmdCorEnable = 1 << 0;
constexpr std::uint32_t aerRootCmdNonFatalEnable = 1 << 1;
constexpr std::uint32_t aerRootCmdFatalEnable = 1 << 2;

/** Value returned for accesses to non-existent devices. */
constexpr std::uint32_t allOnes = 0xffffffffU;

} // namespace pciesim::cfg

#endif // PCIESIM_PCI_CONFIG_REGS_HH
