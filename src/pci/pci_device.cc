#include "pci_device.hh"

#include "pci/config_regs.hh"

namespace pciesim
{

std::string
Bdf::toString() const
{
    return std::to_string(bus) + ":" + std::to_string(dev) + "." +
           std::to_string(fn);
}

class PciDevice::PioPort : public SlavePort
{
  public:
    PioPort(PciDevice &dev, const std::string &name)
        : SlavePort(name), dev_(dev)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        return dev_.handlePio(pkt);
    }

    void
    recvRespRetry() override
    {
        dev_.pioRespQueue_->retryNotify();
    }

    AddrRangeList
    getAddrRanges() const override
    {
        AddrRangeList ranges;
        for (unsigned i = 0; i < dev_.params_.bars.size(); ++i) {
            AddrRange r = dev_.barRange(i);
            if (!r.empty())
                ranges.push_back(r);
        }
        return ranges;
    }

  private:
    PciDevice &dev_;
};

class PciDevice::DevDmaPort : public MasterPort
{
  public:
    DevDmaPort(PciDevice &dev, const std::string &name)
        : MasterPort(name), dev_(dev)
    {}

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        return dev_.recvDmaResp(pkt);
    }

    void recvReqRetry() override { dev_.recvDmaRetry(); }

  private:
    PciDevice &dev_;
};

PciDevice::PciDevice(Simulation &sim, const std::string &name,
                     const PciDeviceParams &params)
    : SimObject(sim, name), PciFunction(name), params_(params),
      barRaw_(params.bars.size(), 0)
{
    fatalIf(params_.bars.size() > cfg::numBars,
            "device '", name, "' has more than ", cfg::numBars, " BARs");
    for (const auto &b : params_.bars) {
        fatalIf(b.size != 0 &&
                (b.size < 16 || (b.size & (b.size - 1)) != 0),
                "device '", name,
                "' BAR size must be a power of two >= 16");
    }

    pioPort_ = std::make_unique<PioPort>(*this, name + ".pioPort");
    dmaPort_ = std::make_unique<DevDmaPort>(*this, name + ".dmaPort");
    pioRespQueue_ = std::make_unique<PacketQueue>(
        eventq(), name + ".pioRespQueue",
        [this](const PacketPtr &p) {
            return pioPort_->sendTimingResp(p);
        },
        params_.pioQueueCapacity);
    pioRespQueue_->setOnSpaceFreed([this] {
        if (wantPioRetry_ && !pioRespQueue_->full()) {
            wantPioRetry_ = false;
            pioPort_->sendRetryReq();
        }
    });

    // Type-0 configuration header (paper Fig. 4, R1).
    config_.init16(cfg::vendorId, params_.vendorId);
    config_.init16(cfg::deviceId, params_.deviceId);
    config_.init24(cfg::classCode, params_.classCode);
    config_.init8(cfg::revisionId, params_.revision);
    config_.init8(cfg::headerType, cfg::headerTypeEndpoint);
    config_.init8(cfg::interruptPin, params_.interruptPin);
    config_.mask16(cfg::command,
                   cfg::cmdIoEnable | cfg::cmdMemEnable |
                   cfg::cmdBusMaster | cfg::cmdIntxDisable);
    config_.mask8(cfg::interruptLine, 0xff);
    config_.mask8(cfg::cacheLineSize, 0xff);
    config_.mask8(cfg::latencyTimer, 0xff);
    // BAR registers: fully software writable; the read intercept
    // applies the size mask, giving standard sizing semantics.
    for (unsigned i = 0; i < params_.bars.size(); ++i)
        config_.mask32(cfg::bar0 + 4 * i, 0xffffffff);
    installAer(false);
}

PciDevice::~PciDevice() = default;

SlavePort &
PciDevice::pioPort()
{
    return *pioPort_;
}

MasterPort &
PciDevice::dmaPort()
{
    return *dmaPort_;
}

void
PciDevice::init()
{
    statsRegistry().add(name() + ".pioReads", &pioReads_,
                        "MMIO/PMIO read requests");
    statsRegistry().add(name() + ".pioWrites", &pioWrites_,
                        "MMIO/PMIO write requests");
    fatalIf(!pioPort_->isBound(),
            "device '", name(), "' PIO port unbound");
}

std::uint32_t
PciDevice::configRead(unsigned offset, unsigned size)
{
    // An absent (surprise-removed) device terminates configuration
    // reads with the all-ones master-abort pattern.
    if (!present_) {
        return size == 4 ? 0xffffffffU
                         : ((1U << (size * 8)) - 1);
    }

    // Intercept BAR reads to apply the size mask to the raw
    // software-written value.
    for (unsigned i = 0; i < params_.bars.size(); ++i) {
        unsigned bar_off = cfg::bar0 + 4 * i;
        if (offset >= bar_off && offset < bar_off + 4) {
            const BarSpec &spec = params_.bars[i];
            std::uint32_t flags = spec.isIo ? cfg::barIoSpace : 0;
            std::uint32_t value = spec.size == 0
                ? 0
                : (barRaw_[i] & ~(spec.size - 1)) | flags;
            unsigned shift = (offset - bar_off) * 8;
            return (value >> shift) &
                   (size == 4 ? 0xffffffffU
                              : ((1U << (size * 8)) - 1));
        }
    }
    return config_.read(offset, size);
}

void
PciDevice::configWrite(unsigned offset, unsigned size,
                       std::uint32_t value)
{
    if (!present_)
        return;

    for (unsigned i = 0; i < params_.bars.size(); ++i) {
        unsigned bar_off = cfg::bar0 + 4 * i;
        if (offset == bar_off && size == 4) {
            barRaw_[i] = value;
            return;
        }
    }
    PciFunction::configWrite(offset, size, value);
}

Addr
PciDevice::barAddr(unsigned bar) const
{
    const BarSpec &spec = params_.bars[bar];
    if (spec.size == 0)
        return 0;
    return barRaw_[bar] & ~(static_cast<Addr>(spec.size) - 1) &
           0xffffffffULL;
}

AddrRange
PciDevice::barRange(unsigned bar) const
{
    const BarSpec &spec = params_.bars[bar];
    Addr base = barAddr(bar);
    bool enabled = spec.isIo ? ioEnabled() : memEnabled();
    if (spec.size == 0 || base == 0 || !enabled)
        return {};
    return {base, base + spec.size};
}

bool
PciDevice::memEnabled() const
{
    return config_.raw16(cfg::command) & cfg::cmdMemEnable;
}

bool
PciDevice::ioEnabled() const
{
    return config_.raw16(cfg::command) & cfg::cmdIoEnable;
}

bool
PciDevice::busMaster() const
{
    return config_.raw16(cfg::command) & cfg::cmdBusMaster;
}

int
PciDevice::decode(Addr addr, Addr &offset) const
{
    for (unsigned i = 0; i < params_.bars.size(); ++i) {
        AddrRange r = barRange(i);
        if (!r.empty() && r.contains(addr)) {
            offset = addr - r.start();
            return static_cast<int>(i);
        }
    }
    return -1;
}

bool
PciDevice::handlePio(const PacketPtr &pkt)
{
    if (pioRespQueue_->full()) {
        wantPioRetry_ = true;
        return false;
    }

    Addr offset = 0;
    int bar = decode(pkt->addr(), offset);
    panicIf(bar < 0, "device '", name(), "' got PIO ",
            pkt->toString(), " outside its BARs");

    if (pkt->isRead()) {
        ++pioReads_;
        std::uint64_t v = readReg(static_cast<unsigned>(bar), offset,
                                  pkt->size());
        pkt->makeResponse();
        switch (pkt->size()) {
          case 1: pkt->set<std::uint8_t>(v & 0xff); break;
          case 2: pkt->set<std::uint16_t>(v & 0xffff); break;
          case 4: pkt->set<std::uint32_t>(v & 0xffffffff); break;
          case 8: pkt->set<std::uint64_t>(v); break;
          default:
            panic("device '", name(), "' unsupported PIO size ",
                  pkt->size());
        }
    } else {
        ++pioWrites_;
        std::uint64_t v = 0;
        if (pkt->hasData()) {
            switch (pkt->size()) {
              case 1: v = pkt->get<std::uint8_t>(); break;
              case 2: v = pkt->get<std::uint16_t>(); break;
              case 4: v = pkt->get<std::uint32_t>(); break;
              case 8: v = pkt->get<std::uint64_t>(); break;
              default:
                panic("device '", name(), "' unsupported PIO size ",
                      pkt->size());
            }
        }
        writeReg(static_cast<unsigned>(bar), offset, pkt->size(), v);
        pkt->makeResponse();
    }

    pioRespQueue_->push(pkt, curTick() + params_.pioLatency);
    return true;
}

void
PciDevice::raiseIntx()
{
    if (intxAsserted_)
        return;
    if (config_.raw16(cfg::command) & cfg::cmdIntxDisable)
        return;
    intxAsserted_ = true;
    config_.update16(cfg::status,
                     config_.raw16(cfg::status) | cfg::statusIntx);
    if (intxSink_)
        intxSink_(true);
}

void
PciDevice::lowerIntx()
{
    if (!intxAsserted_)
        return;
    intxAsserted_ = false;
    config_.update16(
        cfg::status,
        config_.raw16(cfg::status) & ~cfg::statusIntx);
    if (intxSink_)
        intxSink_(false);
}

} // namespace pciesim
