/**
 * @file
 * Advanced Error Reporting extended capability (region R3).
 *
 * Every function carries the correctable / uncorrectable status,
 * mask and severity registers plus the header log; root ports add
 * the root-error-status block that latches received error messages
 * and gates the AER interrupt. The capability is pure register
 * state: a quiescent fabric never touches it, so installing it is
 * free at simulation time.
 */

#ifndef PCIESIM_PCI_AER_HH
#define PCIESIM_PCI_AER_HH

#include <array>
#include <cstdint>

#include "pci/config_space.hh"

namespace pciesim
{

/** Severity of a PCIe error message (ERR_COR / ERR_NONFATAL /
 *  ERR_FATAL). */
enum class ErrSeverity : std::uint8_t
{
    Correctable,
    NonFatal,
    Fatal,
};

/** Human-readable severity name for logs and traces. */
const char *errSeverityName(ErrSeverity sev);

/**
 * The AER register block of one function.
 *
 * Owns no storage of its own: all state lives in the function's
 * ConfigSpace so software sees it through ordinary configuration
 * cycles. The owning PciFunction routes configuration writes in the
 * AER window through handleConfigWrite() for W1C semantics.
 */
class AerCapability
{
  public:
    /**
     * Install the capability at cfg::extendedCapBase. Root ports
     * additionally expose the root error command/status block.
     */
    void install(ConfigSpace &space, bool root_port);

    bool installed() const { return space_ != nullptr; }
    bool rootPort() const { return rootPort_; }

    /**
     * Configuration-write intercept for the AER window.
     * @return true when the write was inside the window (handled).
     */
    bool handleConfigWrite(unsigned offset, unsigned size,
                           std::uint32_t value);

    /**
     * Latch a correctable error.
     * @return true when reporting is enabled (bit unmasked).
     */
    bool recordCorrectable(std::uint32_t bit);

    /**
     * Latch an uncorrectable error and log the offending TLP header.
     * @param[out] fatal severity of the error per the severity
     *             register.
     * @return true when reporting is enabled (bit unmasked).
     */
    bool recordUncorrectable(std::uint32_t bit,
                             const std::array<std::uint32_t, 4> &hdr,
                             bool &fatal);

    /**
     * Root-port side: latch a received error message.
     * @return true when the root error command register enables an
     *         interrupt for this severity.
     */
    bool recordRootError(ErrSeverity sev, std::uint16_t source_id);

    /** Reset all latched status (function-level reset). */
    void clearStatus();

    /** @{ Register readback helpers for software and tests. */
    std::uint32_t uncorrStatus() const;
    std::uint32_t corrStatus() const;
    std::uint32_t rootErrStatus() const;
    std::uint32_t headerLog(unsigned dw) const;
    /** @} */

  private:
    std::uint32_t reg(unsigned rel) const;
    void setReg(unsigned rel, std::uint32_t v);

    ConfigSpace *space_ = nullptr;
    bool rootPort_ = false;
};

} // namespace pciesim

#endif // PCIESIM_PCI_AER_HH
