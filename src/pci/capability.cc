#include "capability.hh"

#include "sim/logging.hh"

namespace pciesim
{

void
CapabilityChain::link(unsigned offset, std::uint8_t cap_id)
{
    panicIf(offset < cfg::headerSize ||
            offset >= cfg::pciConfigSize,
            "capability offset 0x", offset,
            " outside the R2 capability space");
    space_.init8(offset, cap_id);
    space_.init8(offset + 1, 0); // end of chain until another add
    if (first_ == 0)
        first_ = offset;
    else
        space_.init8(last_ + 1, static_cast<std::uint8_t>(offset));
    last_ = offset;
}

unsigned
CapabilityChain::addPowerManagement(unsigned offset)
{
    link(offset, cfg::capIdPm);
    // PMC: version 3, no PME support => driver cannot use PM events.
    space_.init16(offset + 2, 0x0003);
    // PMCSR: power state D0; read-only (mask 0) so the device cannot
    // be moved out of D0 -- PM is effectively disabled.
    space_.init16(offset + 4, 0x0000);
    space_.mask16(offset + 4, 0x0000);
    return offset;
}

unsigned
CapabilityChain::addMsi(unsigned offset, bool enable_writable)
{
    link(offset, cfg::capIdMsi);
    // Message control: 64-bit capable. With the enable bit (bit 0)
    // read-only zero, pci_enable_msi() fails and drivers fall back
    // to INTx (the paper's template); writable enables real MSI.
    space_.init16(offset + 2, 0x0080);
    space_.mask16(offset + 2, enable_writable ? 0x0001 : 0x0000);
    // Message address / upper address / data are writable scratch.
    space_.mask32(offset + 4, 0xffffffff);
    space_.mask32(offset + 8, 0xffffffff);
    space_.mask16(offset + 12, 0xffff);
    return offset;
}

unsigned
CapabilityChain::addMsix(unsigned offset, std::uint16_t table_size)
{
    link(offset, cfg::capIdMsix);
    // Message control: table size in bits 10:0 (N-1 encoding);
    // MSI-X Enable (bit 15) and Function Mask (bit 14) read-only 0.
    std::uint16_t ctrl = table_size == 0
        ? 0
        : static_cast<std::uint16_t>((table_size - 1) & 0x7ff);
    space_.init16(offset + 2, ctrl);
    space_.mask16(offset + 2, 0x0000);
    // Table offset/BIR and PBA offset/BIR: zero (unimplemented).
    space_.init32(offset + 4, 0);
    space_.init32(offset + 8, 0);
    return offset;
}

unsigned
CapabilityChain::addPcie(unsigned offset, const PcieCapParams &params)
{
    link(offset, cfg::capIdPcie);

    // PCIe Capabilities Register: capability version 2 (bits 3:0),
    // device/port type (bits 7:4), slot implemented (bit 8).
    std::uint16_t cap = 0x0002;
    cap |= static_cast<std::uint16_t>(params.portType) << 4;
    if (params.slotImplemented)
        cap |= 1 << 8;
    space_.init16(offset + cfg::pcieCapReg, cap);

    // Device Capabilities: max payload size supported (bits 2:0).
    space_.init32(offset + cfg::pcieDevCap,
                  params.maxPayloadEncoding & 0x7);

    // Device Control: MPS field (bits 7:5) writable; defaults 128 B.
    space_.init16(offset + cfg::pcieDevCtrl, 0x0000);
    space_.mask16(offset + cfg::pcieDevCtrl, 0x00e0);
    space_.init16(offset + cfg::pcieDevStatus, 0x0000);

    // Link Capabilities: max link speed (bits 3:0, 1=2.5G 2=5G
    // 3=8G), max link width (bits 9:4), port number (bits 31:24).
    std::uint32_t link_cap = (params.linkGen & 0xf) |
                             ((params.linkWidth & 0x3f) << 4);
    space_.init32(offset + cfg::pcieLinkCap, link_cap);

    // Link Control: writable scratch (ASPM etc. ignored).
    space_.init16(offset + cfg::pcieLinkCtrl, 0x0000);
    space_.mask16(offset + cfg::pcieLinkCtrl, 0x0fff);

    // Link Status: current (negotiated) speed and width.
    std::uint16_t link_status =
        static_cast<std::uint16_t>((params.linkGen & 0xf) |
                                   ((params.linkWidth & 0x3f) << 4));
    space_.init16(offset + cfg::pcieLinkStatus, link_status);

    if (params.slotImplemented) {
        // C2: slot registers, all features absent.
        space_.init32(offset + cfg::pcieSlotCap, 0);
        space_.init16(offset + cfg::pcieSlotCtrl, 0);
        space_.mask16(offset + cfg::pcieSlotCtrl, 0x1fff);
        space_.init16(offset + cfg::pcieSlotStatus, 0);
    }

    if (params.rootPort) {
        // C3: root control/status, PME reporting disabled.
        space_.init16(offset + cfg::pcieRootCtrl, 0);
        space_.mask16(offset + cfg::pcieRootCtrl, 0x001f);
        space_.init32(offset + cfg::pcieRootStatus, 0);
    }

    return offset;
}

void
CapabilityChain::finalize()
{
    if (first_ == 0)
        return;
    space_.init8(cfg::capPtr, static_cast<std::uint8_t>(first_));
    space_.update16(cfg::status,
                    space_.raw16(cfg::status) | cfg::statusCapList);
}

unsigned
CapabilityWalker::find(const ConfigSpace &space, std::uint8_t cap_id)
{
    if ((space.raw16(cfg::status) & cfg::statusCapList) == 0)
        return 0;
    unsigned offset = space.raw8(cfg::capPtr);
    unsigned guard = 0;
    while (offset != 0 && guard++ < 64) {
        if (space.raw8(offset) == cap_id)
            return offset;
        offset = space.raw8(offset + 1);
    }
    return 0;
}

unsigned
CapabilityWalker::count(const ConfigSpace &space)
{
    if ((space.raw16(cfg::status) & cfg::statusCapList) == 0)
        return 0;
    unsigned offset = space.raw8(cfg::capPtr);
    unsigned n = 0;
    while (offset != 0 && n < 64) {
        ++n;
        offset = space.raw8(offset + 1);
    }
    return n;
}

} // namespace pciesim
