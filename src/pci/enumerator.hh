/**
 * @file
 * The enumeration software: the part of BIOS / kernel that
 * discovers devices with a depth-first configuration-space walk,
 * sizes their BARs, allocates memory / I/O windows, programs bridge
 * bus numbers and windows, and assigns interrupt resources
 * (paper Sec. II-A and V-A).
 */

#ifndef PCIESIM_PCI_ENUMERATOR_HH
#define PCIESIM_PCI_ENUMERATOR_HH

#include <cstdint>
#include <vector>

#include "mem/addr_range.hh"
#include "pci/pci_host.hh"
#include "pci/platform.hh"

namespace pciesim
{

/** One discovered function and the resources assigned to it. */
struct EnumeratedFunction
{
    Bdf bdf;
    std::uint16_t vendorId = 0;
    std::uint16_t deviceId = 0;
    bool isBridge = false;
    /** Assigned BAR ranges (empty ranges for absent BARs). */
    std::vector<AddrRange> bars;
    /** Which BARs are I/O space. */
    std::vector<bool> barIsIo;
    /** Assigned legacy interrupt line (0 = none). */
    std::uint8_t irqLine = 0;
    /** Bridge only: programmed secondary/subordinate bus numbers. */
    unsigned secondaryBus = 0;
    unsigned subordinateBus = 0;
};

/**
 * Depth-first PCI bus enumerator.
 */
class Enumerator
{
  public:
    /** Result of an enumeration pass. */
    struct Result
    {
        std::vector<EnumeratedFunction> functions;
        /** Total number of buses discovered (highest + 1). */
        unsigned numBuses = 0;

        /** Find a function by vendor/device id (first match). */
        const EnumeratedFunction *find(std::uint16_t vendor,
                                       std::uint16_t device) const;

        /** Find the record for @p bdf. */
        const EnumeratedFunction *find(Bdf bdf) const;
    };

    /**
     * @param host Configuration access mechanism.
     * @param mem_window Memory-space allocation pool.
     * @param io_window I/O-space allocation pool.
     * @param first_irq First legacy interrupt line to hand out.
     */
    explicit Enumerator(PciHost &host,
                        AddrRange mem_window = platform::memRange,
                        AddrRange io_window = platform::ioRange,
                        std::uint8_t first_irq = 32);

    /** Run the full enumeration starting from bus 0. */
    Result enumerate();

  private:
    /** A bump allocator over an address window. */
    struct Allocator
    {
        Addr cur;
        Addr end;

        Addr alloc(Addr size, Addr align);
        void alignTo(Addr align);
    };

    void scanBus(unsigned bus, Result &result);
    void configureEndpoint(Bdf bdf, EnumeratedFunction &rec);
    void configureBridge(Bdf bdf, EnumeratedFunction &rec,
                         Result &result);

    std::uint32_t read32(Bdf b, unsigned off);
    std::uint16_t read16(Bdf b, unsigned off);
    std::uint8_t read8(Bdf b, unsigned off);
    void write32(Bdf b, unsigned off, std::uint32_t v);
    void write16(Bdf b, unsigned off, std::uint16_t v);
    void write8(Bdf b, unsigned off, std::uint8_t v);

    PciHost &host_;
    Allocator mem_;
    Allocator io_;
    unsigned busCounter_ = 0;
    std::uint8_t nextIrq_;
};

} // namespace pciesim

#endif // PCIESIM_PCI_ENUMERATOR_HH
