#include "config_space.hh"

#include "sim/logging.hh"

namespace pciesim
{

ConfigSpace::ConfigSpace() = default;

void
ConfigSpace::checkAccess(unsigned offset, unsigned size) const
{
    panicIf(size != 1 && size != 2 && size != 4,
            "config access size must be 1, 2, or 4 (got ", size, ")");
    panicIf(offset + size > data_.size(),
            "config access beyond 4KB at offset ", offset);
    panicIf(offset % size != 0,
            "unaligned config access at offset ", offset);
}

std::uint32_t
ConfigSpace::read(unsigned offset, unsigned size) const
{
    checkAccess(offset, size);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint32_t>(data_[offset + i]) << (8 * i);
    return v;
}

void
ConfigSpace::write(unsigned offset, unsigned size, std::uint32_t value)
{
    checkAccess(offset, size);
    for (unsigned i = 0; i < size; ++i) {
        std::uint8_t byte = (value >> (8 * i)) & 0xff;
        std::uint8_t mask = wmask_[offset + i];
        data_[offset + i] =
            (data_[offset + i] & ~mask) | (byte & mask);
    }
}

void
ConfigSpace::init8(unsigned offset, std::uint8_t v)
{
    data_[offset] = v;
}

void
ConfigSpace::init16(unsigned offset, std::uint16_t v)
{
    data_[offset] = v & 0xff;
    data_[offset + 1] = (v >> 8) & 0xff;
}

void
ConfigSpace::init32(unsigned offset, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        data_[offset + i] = (v >> (8 * i)) & 0xff;
}

void
ConfigSpace::init24(unsigned offset, std::uint32_t v)
{
    for (unsigned i = 0; i < 3; ++i)
        data_[offset + i] = (v >> (8 * i)) & 0xff;
}

void
ConfigSpace::mask8(unsigned offset, std::uint8_t writable)
{
    wmask_[offset] = writable;
}

void
ConfigSpace::mask16(unsigned offset, std::uint16_t writable)
{
    wmask_[offset] = writable & 0xff;
    wmask_[offset + 1] = (writable >> 8) & 0xff;
}

void
ConfigSpace::mask32(unsigned offset, std::uint32_t writable)
{
    for (unsigned i = 0; i < 4; ++i)
        wmask_[offset + i] = (writable >> (8 * i)) & 0xff;
}

std::uint16_t
ConfigSpace::raw16(unsigned offset) const
{
    return static_cast<std::uint16_t>(read(offset, 2));
}

std::uint32_t
ConfigSpace::raw32(unsigned offset) const
{
    return read(offset, 4);
}

} // namespace pciesim
