/**
 * @file
 * Type-1 (PCI-to-PCI bridge) configuration header logic
 * (paper Fig. 7): initialisation, write masks, and decoding of the
 * bus-number and I/O / memory window registers that routing
 * components consult.
 */

#ifndef PCIESIM_PCI_BRIDGE_HEADER_HH
#define PCIESIM_PCI_BRIDGE_HEADER_HH

#include <cstdint>

#include "mem/addr_range.hh"
#include "pci/config_space.hh"

namespace pciesim
{

/**
 * Static helpers for type-1 headers. The bridge's windows exist only
 * in its configuration space; the root complex and switch read them
 * through these decoders on every routing decision, so software
 * reprogramming takes effect immediately (paper Sec. V-A).
 */
struct BridgeHeader
{
    /**
     * Initialise a type-1 header: ids, class code 0x060400, header
     * type 1, BARs hard-wired to zero ("requires no memory or I/O
     * space"), all software-configured registers writable, and
     * 32-bit I/O addressing capability advertised so the 16 MB I/O
     * window at 0x2f000000 is reachable (paper Sec. V-A).
     */
    static void initialize(ConfigSpace &space, std::uint16_t vendor,
                           std::uint16_t device);

    /** @{ Bus number registers (software configured). */
    static unsigned primaryBus(const ConfigSpace &space);
    static unsigned secondaryBus(const ConfigSpace &space);
    static unsigned subordinateBus(const ConfigSpace &space);
    /** @} */

    /**
     * Decoded I/O window [base, limit]; empty when base > limit
     * (the power-on state: forwards nothing).
     */
    static AddrRange ioWindow(const ConfigSpace &space);

    /** Decoded non-prefetchable memory window. */
    static AddrRange memWindow(const ConfigSpace &space);

    /** Decoded prefetchable memory window. */
    static AddrRange prefWindow(const ConfigSpace &space);

    /** Whether @p bus lies in [secondary, subordinate]. */
    static bool busInRange(const ConfigSpace &space, unsigned bus);

    /** Whether @p addr falls in any of the bridge's windows. */
    static bool windowsContain(const ConfigSpace &space, Addr addr);

    /** @{ Software-style window programming helpers (used by the
     *     enumerator; equivalent to the register writes a kernel
     *     performs). */
    static void programBusNumbers(ConfigSpace &space, unsigned pri,
                                  unsigned sec, unsigned sub);
    static void programIoWindow(ConfigSpace &space, Addr base,
                                Addr limit);
    static void programMemWindow(ConfigSpace &space, Addr base,
                                 Addr limit);
    /** @} */
};

} // namespace pciesim

#endif // PCIESIM_PCI_BRIDGE_HEADER_HH
