/**
 * @file
 * A PCI function: the unit that owns a configuration space and is
 * addressable by bus/device/function numbers. Endpoints and virtual
 * PCI-to-PCI bridges are both functions.
 */

#ifndef PCIESIM_PCI_PCI_FUNCTION_HH
#define PCIESIM_PCI_PCI_FUNCTION_HH

#include <compare>
#include <cstdint>
#include <string>

#include "pci/aer.hh"
#include "pci/config_space.hh"

namespace pciesim
{

/** A bus/device/function address. */
struct Bdf
{
    std::uint8_t bus = 0;
    std::uint8_t dev = 0;
    std::uint8_t fn = 0;

    auto operator<=>(const Bdf &) const = default;

    std::string toString() const;

    /** Flatten to a registry key. */
    std::uint32_t
    key() const
    {
        return (static_cast<std::uint32_t>(bus) << 8) |
               (static_cast<std::uint32_t>(dev) << 3) | fn;
    }
};

/**
 * Base class for anything with a configuration space.
 *
 * The default configRead/configWrite operate directly on the
 * ConfigSpace; devices override them to intercept registers with
 * side effects (BAR sizing, command register).
 */
class PciFunction
{
  public:
    explicit PciFunction(std::string pci_name)
        : pciName_(std::move(pci_name))
    {}

    virtual ~PciFunction() = default;

    PciFunction(const PciFunction &) = delete;
    PciFunction &operator=(const PciFunction &) = delete;

    /** Software (enumeration/driver) configuration read. */
    virtual std::uint32_t
    configRead(unsigned offset, unsigned size)
    {
        return config_.read(offset, size);
    }

    /** Software configuration write. */
    virtual void
    configWrite(unsigned offset, unsigned size, std::uint32_t value)
    {
        if (aer_.handleConfigWrite(offset, size, value))
            return;
        config_.write(offset, size, value);
    }

    /**
     * Function-level reset: device models override to return their
     * register file and DMA machinery to power-on state. The AER
     * status latches are cleared by the base implementation.
     */
    virtual void
    functionLevelReset()
    {
        aer_.clearStatus();
    }

    /** Install the AER extended capability (done by subclasses). */
    void
    installAer(bool root_port)
    {
        aer_.install(config_, root_port);
    }

    AerCapability &aer() { return aer_; }
    const AerCapability &aer() const { return aer_; }

    ConfigSpace &config() { return config_; }
    const ConfigSpace &config() const { return config_; }

    const std::string &pciName() const { return pciName_; }

    /** Assigned by PciHost at registration time. */
    Bdf bdf() const { return bdf_; }
    void setBdf(Bdf bdf) { bdf_ = bdf; }

  protected:
    ConfigSpace config_;
    AerCapability aer_;

  private:
    std::string pciName_;
    Bdf bdf_;
};

} // namespace pciesim

#endif // PCIESIM_PCI_PCI_FUNCTION_HH
