#include "bridge_header.hh"

#include "pci/config_regs.hh"
#include "sim/logging.hh"

namespace pciesim
{

void
BridgeHeader::initialize(ConfigSpace &space, std::uint16_t vendor,
                         std::uint16_t device)
{
    space.init16(cfg::vendorId, vendor);
    space.init16(cfg::deviceId, device);
    space.init24(cfg::classCode, cfg::classBridgeP2p);
    space.init8(cfg::headerType, cfg::headerTypeBridge);

    // Command register: forwarding from secondary to primary and
    // bus mastering for downstream DMA are software controlled
    // (paper Sec. V-A describes setting these bits).
    space.mask16(cfg::command,
                 cfg::cmdIoEnable | cfg::cmdMemEnable |
                 cfg::cmdBusMaster);

    // BARs hard-wired to zero: no mask32, reads return 0.

    // Bus numbers: software configured, initialised to 0.
    space.mask8(cfg::primaryBus, 0xff);
    space.mask8(cfg::secondaryBus, 0xff);
    space.mask8(cfg::subordinateBus, 0xff);
    space.mask8(cfg::secLatencyTimer, 0xff);

    // I/O base/limit: low nibble reads 0x1 = 32-bit I/O addressing
    // supported (needed to reach 0x2f000000, paper Sec. V-A);
    // the upper nibble (A[15:12]) is software writable.
    space.init8(cfg::ioBase, 0x01);
    space.init8(cfg::ioLimit, 0x01);
    space.mask8(cfg::ioBase, 0xf0);
    space.mask8(cfg::ioLimit, 0xf0);
    space.mask16(cfg::ioBaseUpper16, 0xffff);
    space.mask16(cfg::ioLimitUpper16, 0xffff);
    // Power-on: base > limit (forwards nothing). With base and
    // limit both zero the window would cover [0, 0xfff]; set
    // limit's writable bits so software decides, but initialise
    // base above limit.
    space.init8(cfg::ioBase, 0xf1);
    space.init8(cfg::ioLimit, 0x01);

    // Memory base/limit: bits 15:4 = A[31:20], software writable.
    space.mask16(cfg::memoryBase, 0xfff0);
    space.mask16(cfg::memoryLimit, 0xfff0);
    space.init16(cfg::memoryBase, 0xfff0);
    space.init16(cfg::memoryLimit, 0x0000);

    // Prefetchable window: supported (64-bit capable), disabled.
    space.mask16(cfg::prefMemBase, 0xfff0);
    space.mask16(cfg::prefMemLimit, 0xfff0);
    space.init16(cfg::prefMemBase, 0xfff1);
    space.init16(cfg::prefMemLimit, 0x0001);
    space.mask32(cfg::prefBaseUpper32, 0xffffffff);
    space.mask32(cfg::prefLimitUpper32, 0xffffffff);

    space.mask16(cfg::bridgeControl, 0x0fff);
    space.mask8(cfg::interruptLine, 0xff);
}

unsigned
BridgeHeader::primaryBus(const ConfigSpace &space)
{
    return space.raw8(cfg::primaryBus);
}

unsigned
BridgeHeader::secondaryBus(const ConfigSpace &space)
{
    return space.raw8(cfg::secondaryBus);
}

unsigned
BridgeHeader::subordinateBus(const ConfigSpace &space)
{
    return space.raw8(cfg::subordinateBus);
}

AddrRange
BridgeHeader::ioWindow(const ConfigSpace &space)
{
    Addr base =
        (static_cast<Addr>(space.raw16(cfg::ioBaseUpper16)) << 16) |
        (static_cast<Addr>(space.raw8(cfg::ioBase) & 0xf0) << 8);
    Addr limit =
        (static_cast<Addr>(space.raw16(cfg::ioLimitUpper16)) << 16) |
        (static_cast<Addr>(space.raw8(cfg::ioLimit) & 0xf0) << 8) |
        0xfff;
    if (base > limit)
        return {};
    return {base, limit + 1};
}

AddrRange
BridgeHeader::memWindow(const ConfigSpace &space)
{
    Addr base = static_cast<Addr>(space.raw16(cfg::memoryBase) &
                                  0xfff0) << 16;
    Addr limit = (static_cast<Addr>(space.raw16(cfg::memoryLimit) &
                                    0xfff0) << 16) | 0xfffff;
    if (base > limit)
        return {};
    return {base, limit + 1};
}

AddrRange
BridgeHeader::prefWindow(const ConfigSpace &space)
{
    Addr base =
        (static_cast<Addr>(space.raw32(cfg::prefBaseUpper32)) << 32) |
        (static_cast<Addr>(space.raw16(cfg::prefMemBase) & 0xfff0)
         << 16);
    Addr limit =
        (static_cast<Addr>(space.raw32(cfg::prefLimitUpper32)) << 32) |
        (static_cast<Addr>(space.raw16(cfg::prefMemLimit) & 0xfff0)
         << 16) | 0xfffff;
    if (base > limit)
        return {};
    return {base, limit + 1};
}

bool
BridgeHeader::busInRange(const ConfigSpace &space, unsigned bus)
{
    return bus >= secondaryBus(space) && bus <= subordinateBus(space);
}

bool
BridgeHeader::windowsContain(const ConfigSpace &space, Addr addr)
{
    return ioWindow(space).contains(addr) ||
           memWindow(space).contains(addr) ||
           prefWindow(space).contains(addr);
}

void
BridgeHeader::programBusNumbers(ConfigSpace &space, unsigned pri,
                                unsigned sec, unsigned sub)
{
    space.write(cfg::primaryBus, 1, pri);
    space.write(cfg::secondaryBus, 1, sec);
    space.write(cfg::subordinateBus, 1, sub);
}

void
BridgeHeader::programIoWindow(ConfigSpace &space, Addr base,
                              Addr limit)
{
    panicIf((base & 0xfff) != 0, "I/O window base not 4K aligned");
    panicIf((limit & 0xfff) != 0xfff, "I/O window limit not 4K-1");
    space.write(cfg::ioBase, 1, (base >> 8) & 0xf0);
    space.write(cfg::ioLimit, 1, (limit >> 8) & 0xf0);
    space.write(cfg::ioBaseUpper16, 2, (base >> 16) & 0xffff);
    space.write(cfg::ioLimitUpper16, 2, (limit >> 16) & 0xffff);
}

void
BridgeHeader::programMemWindow(ConfigSpace &space, Addr base,
                               Addr limit)
{
    panicIf((base & 0xfffff) != 0, "mem window base not 1M aligned");
    panicIf((limit & 0xfffff) != 0xfffff, "mem window limit not 1M-1");
    space.write(cfg::memoryBase, 2, (base >> 16) & 0xfff0);
    space.write(cfg::memoryLimit, 2, (limit >> 16) & 0xfff0);
}

} // namespace pciesim
