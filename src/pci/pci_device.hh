/**
 * @file
 * Base class for PCI / PCI-Express endpoint devices: type-0 header,
 * BARs with standard sizing semantics, a PIO slave port for MMIO
 * accesses, a DMA master port, and legacy INTx signalling
 * (paper Sec. III & IV).
 */

#ifndef PCIESIM_PCI_PCI_DEVICE_HH
#define PCIESIM_PCI_PCI_DEVICE_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "pci/pci_function.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

namespace pciesim
{

/** Static description of one BAR. */
struct BarSpec
{
    /** Size in bytes; must be a power of two >= 16 (or 0: absent). */
    std::uint32_t size = 0;
    /** I/O space instead of memory space. */
    bool isIo = false;
};

/** Configuration for a PciDevice. */
struct PciDeviceParams
{
    std::uint16_t vendorId = 0x8086;
    std::uint16_t deviceId = 0x0000;
    std::uint32_t classCode = 0;
    std::uint8_t revision = 0;
    /** 1 = INTA ... 4 = INTD; 0 = no interrupt pin. */
    std::uint8_t interruptPin = 1;
    std::vector<BarSpec> bars;
    /** Register-file access latency for MMIO/PMIO requests. */
    Tick pioLatency = nanoseconds(30);
    /** PIO response queue capacity. */
    std::size_t pioQueueCapacity = 8;
};

/**
 * An endpoint device model.
 *
 * Subclasses implement readReg/writeReg for their register file and
 * may use the DMA port (through DmaEngine) for bus mastering.
 */
class PciDevice : public SimObject, public PciFunction
{
  public:
    PciDevice(Simulation &sim, const std::string &name,
              const PciDeviceParams &params);
    ~PciDevice() override;

    SlavePort &pioPort();
    MasterPort &dmaPort();

    void init() override;

    /** @{ Configuration space with BAR/command intercepts. */
    std::uint32_t configRead(unsigned offset, unsigned size) override;
    void configWrite(unsigned offset, unsigned size,
                     std::uint32_t value) override;
    /** @} */

    /** Current decoded address of a BAR (0 when unassigned). */
    Addr barAddr(unsigned bar) const;

    /** Address range decoded by a BAR (empty when disabled). */
    AddrRange barRange(unsigned bar) const;

    /** Command register helpers. */
    bool memEnabled() const;
    bool ioEnabled() const;
    bool busMaster() const;

    /** @{ Hot-plug presence: while absent, configuration reads
     *  return all-ones and writes are dropped, which is what the
     *  root complex observes from an empty slot (DESIGN.md §12). */
    void setPresent(bool present) { present_ = present; }
    bool present() const { return present_; }
    /** @} */

    /**
     * Install the platform interrupt sink for legacy INTx
     * (wired by the system builder to the interrupt controller).
     */
    void
    setIntxSink(std::function<void(bool asserted)> sink)
    {
        intxSink_ = std::move(sink);
    }

  protected:
    /** Register-file read at @p offset within @p bar. */
    virtual std::uint64_t readReg(unsigned bar, Addr offset,
                                  unsigned size) = 0;

    /** Register-file write at @p offset within @p bar. */
    virtual void writeReg(unsigned bar, Addr offset, unsigned size,
                          std::uint64_t value) = 0;

    /** DMA response delivery; devices with DMA engines override. */
    virtual bool
    recvDmaResp(PacketPtr /*pkt*/)
    {
        panic("device '", name(), "' got unexpected DMA response");
    }

    /** The DMA peer can accept again after a refusal. */
    virtual void recvDmaRetry() {}

    /** Assert / deassert the legacy interrupt line. */
    void raiseIntx();
    void lowerIntx();
    bool intxAsserted() const { return intxAsserted_; }

    const PciDeviceParams &params() const { return params_; }

  private:
    class PioPort;
    class DevDmaPort;

    bool handlePio(const PacketPtr &pkt);

    /** Map an address to (bar, offset); -1 when unclaimed. */
    int decode(Addr addr, Addr &offset) const;

    PciDeviceParams params_;
    std::unique_ptr<PioPort> pioPort_;
    std::unique_ptr<DevDmaPort> dmaPort_;
    std::unique_ptr<PacketQueue> pioRespQueue_;
    bool wantPioRetry_ = false;
    /** Raw software-written BAR values (before masking). */
    std::vector<std::uint32_t> barRaw_;
    bool present_ = true;
    bool intxAsserted_ = false;
    std::function<void(bool)> intxSink_;

    stats::Counter pioReads_;
    stats::Counter pioWrites_;
};

} // namespace pciesim

#endif // PCIESIM_PCI_PCI_DEVICE_HH
