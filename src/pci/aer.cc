#include "aer.hh"

#include "sim/logging.hh"

namespace pciesim
{

namespace
{

/** Registers with W1C semantics (status latches). */
bool
isW1c(unsigned rel)
{
    return rel == cfg::aerUncorrStatus || rel == cfg::aerCorrStatus ||
           rel == cfg::aerRootErrStatus;
}

/** Registers software may rewrite freely. */
bool
isRw(unsigned rel)
{
    return rel == cfg::aerUncorrMask ||
           rel == cfg::aerUncorrSeverity || rel == cfg::aerCorrMask ||
           rel == cfg::aerRootErrCommand;
}

} // namespace

const char *
errSeverityName(ErrSeverity sev)
{
    switch (sev) {
      case ErrSeverity::Correctable: return "ERR_COR";
      case ErrSeverity::NonFatal: return "ERR_NONFATAL";
      case ErrSeverity::Fatal: return "ERR_FATAL";
    }
    return "ERR_?";
}

void
AerCapability::install(ConfigSpace &space, bool root_port)
{
    panicIf(space_ != nullptr, "AER capability installed twice");
    space_ = &space;
    rootPort_ = root_port;

    // Extended capability header: id 0x0001, version 1, no next.
    setReg(cfg::aerCapHeader,
           cfg::extCapIdAer | (1u << 16));
    // Default severities: only surprise-down is fatal (it takes the
    // subtree out and needs containment + reset); DLL protocol
    // errors, completion timeouts, and unsupported requests are
    // non-fatal — the link recovers them with a retrain or the
    // requester degrades the failed op locally.
    setReg(cfg::aerUncorrSeverity, cfg::aerUncSurpriseDown);
    if (rootPort_) {
        // Report every severity; matches what an AER-aware kernel
        // programs at boot (spec reset value is 0).
        setReg(cfg::aerRootErrCommand,
               cfg::aerRootCmdCorEnable | cfg::aerRootCmdNonFatalEnable |
               cfg::aerRootCmdFatalEnable);
    }
}

bool
AerCapability::handleConfigWrite(unsigned offset, unsigned size,
                                 std::uint32_t value)
{
    if (offset < cfg::extendedCapBase ||
        offset >= cfg::extendedCapBase + cfg::aerCapSize)
        return false;

    unsigned rel = offset - cfg::extendedCapBase;
    unsigned reg_rel = rel & ~3u;
    unsigned shift = (rel & 3u) * 8;
    std::uint32_t mask = size == 4 ? 0xffffffffU
                                   : ((1U << (size * 8)) - 1);
    std::uint32_t bits = (value & mask) << shift;

    if (isW1c(reg_rel)) {
        if (reg_rel == cfg::aerRootErrStatus && !rootPort_)
            return true;
        setReg(reg_rel, reg(reg_rel) & ~bits);
    } else if (isRw(reg_rel)) {
        if (reg_rel == cfg::aerRootErrCommand && !rootPort_)
            return true;
        std::uint32_t cur = reg(reg_rel);
        setReg(reg_rel, (cur & ~(mask << shift)) | bits);
    }
    // Header, capability control, header log and source id are
    // read-only: writes inside the window are silently dropped.
    return true;
}

bool
AerCapability::recordCorrectable(std::uint32_t bit)
{
    panicIf(!installed(), "AER correctable error before install()");
    setReg(cfg::aerCorrStatus, reg(cfg::aerCorrStatus) | bit);
    return (reg(cfg::aerCorrMask) & bit) == 0;
}

bool
AerCapability::recordUncorrectable(
    std::uint32_t bit, const std::array<std::uint32_t, 4> &hdr,
    bool &fatal)
{
    panicIf(!installed(), "AER uncorrectable error before install()");
    std::uint32_t status = reg(cfg::aerUncorrStatus);
    if ((status & bit) == 0) {
        // First-error pointer and header log capture the first
        // occurrence only (spec sec. 6.2.4.2).
        if (status == 0) {
            unsigned ptr = 0;
            for (std::uint32_t b = bit; (b & 1) == 0; b >>= 1)
                ++ptr;
            setReg(cfg::aerCapControl, ptr & 0x1f);
            for (unsigned dw = 0; dw < 4; ++dw)
                setReg(cfg::aerHeaderLog + 4 * dw, hdr[dw]);
        }
        setReg(cfg::aerUncorrStatus, status | bit);
    }
    fatal = (reg(cfg::aerUncorrSeverity) & bit) != 0;
    return (reg(cfg::aerUncorrMask) & bit) == 0;
}

bool
AerCapability::recordRootError(ErrSeverity sev, std::uint16_t source_id)
{
    panicIf(!rootPort_, "root error latched on a non-root function");
    std::uint32_t status = reg(cfg::aerRootErrStatus);
    std::uint32_t cmd = reg(cfg::aerRootErrCommand);
    bool irq = false;
    switch (sev) {
      case ErrSeverity::Correctable:
        status |= cfg::aerRootCorReceived;
        setReg(cfg::aerErrSourceId,
               (reg(cfg::aerErrSourceId) & 0xffff0000U) | source_id);
        irq = cmd & cfg::aerRootCmdCorEnable;
        break;
      case ErrSeverity::NonFatal:
        status |= cfg::aerRootUncorReceived | cfg::aerRootNonFatalReceived;
        setReg(cfg::aerErrSourceId,
               (reg(cfg::aerErrSourceId) & 0x0000ffffU) |
               (static_cast<std::uint32_t>(source_id) << 16));
        irq = cmd & cfg::aerRootCmdNonFatalEnable;
        break;
      case ErrSeverity::Fatal:
        status |= cfg::aerRootUncorReceived | cfg::aerRootFatalReceived;
        setReg(cfg::aerErrSourceId,
               (reg(cfg::aerErrSourceId) & 0x0000ffffU) |
               (static_cast<std::uint32_t>(source_id) << 16));
        irq = cmd & cfg::aerRootCmdFatalEnable;
        break;
    }
    setReg(cfg::aerRootErrStatus, status);
    return irq;
}

void
AerCapability::clearStatus()
{
    if (!installed())
        return;
    setReg(cfg::aerUncorrStatus, 0);
    setReg(cfg::aerCorrStatus, 0);
    setReg(cfg::aerCapControl, 0);
    for (unsigned dw = 0; dw < 4; ++dw)
        setReg(cfg::aerHeaderLog + 4 * dw, 0);
    if (rootPort_) {
        setReg(cfg::aerRootErrStatus, 0);
        setReg(cfg::aerErrSourceId, 0);
    }
}

std::uint32_t
AerCapability::uncorrStatus() const
{
    return reg(cfg::aerUncorrStatus);
}

std::uint32_t
AerCapability::corrStatus() const
{
    return reg(cfg::aerCorrStatus);
}

std::uint32_t
AerCapability::rootErrStatus() const
{
    return reg(cfg::aerRootErrStatus);
}

std::uint32_t
AerCapability::headerLog(unsigned dw) const
{
    return reg(cfg::aerHeaderLog + 4 * dw);
}

std::uint32_t
AerCapability::reg(unsigned rel) const
{
    return space_->raw32(cfg::extendedCapBase + rel);
}

void
AerCapability::setReg(unsigned rel, std::uint32_t v)
{
    space_->init32(cfg::extendedCapBase + rel, v);
}

} // namespace pciesim
