/**
 * @file
 * Backing store for a function's 4 KB configuration space with
 * per-bit write masks.
 */

#ifndef PCIESIM_PCI_CONFIG_SPACE_HH
#define PCIESIM_PCI_CONFIG_SPACE_HH

#include <array>
#include <cstdint>

#include "pci/config_regs.hh"

namespace pciesim
{

/**
 * A 4 KB configuration space (paper Fig. 4: R1 + R2 + R3).
 *
 * Software accesses go through read()/write(); write() honours the
 * per-bit write mask so read-only registers keep their hardware
 * values. The owning device initialises registers and masks with the
 * raw init*()/mask*() methods.
 */
class ConfigSpace
{
  public:
    ConfigSpace();

    /** Software read of 1, 2, or 4 bytes. */
    std::uint32_t read(unsigned offset, unsigned size) const;

    /** Software write of 1, 2, or 4 bytes, honouring write masks. */
    void write(unsigned offset, unsigned size, std::uint32_t value);

    /** @{ Raw hardware-side initialisation (ignores write masks). */
    void init8(unsigned offset, std::uint8_t v);
    void init16(unsigned offset, std::uint16_t v);
    void init32(unsigned offset, std::uint32_t v);
    /** Initialise a 24-bit field (class code). */
    void init24(unsigned offset, std::uint32_t v);
    /** @} */

    /** @{ Declare bits software may write (default: none). */
    void mask8(unsigned offset, std::uint8_t writable);
    void mask16(unsigned offset, std::uint16_t writable);
    void mask32(unsigned offset, std::uint32_t writable);
    /** @} */

    /** Hardware-side raw readback. */
    std::uint8_t raw8(unsigned offset) const { return data_[offset]; }
    std::uint16_t raw16(unsigned offset) const;
    std::uint32_t raw32(unsigned offset) const;

    /** Hardware-side update of a register (e.g. status bits). */
    void update16(unsigned offset, std::uint16_t v) { init16(offset, v); }

  private:
    void checkAccess(unsigned offset, unsigned size) const;

    std::array<std::uint8_t, cfg::pcieConfigSize> data_{};
    std::array<std::uint8_t, cfg::pcieConfigSize> wmask_{};
};

} // namespace pciesim

#endif // PCIESIM_PCI_CONFIG_SPACE_HH
