/**
 * @file
 * Builders for PCI capability structures in the R2 capability space
 * (paper Fig. 4/Fig. 5): Power Management, MSI, MSI-X and the
 * PCI-Express capability structure.
 *
 * The paper's device template disables PM, MSI and MSI-X "by
 * appropriately setting register values" so the driver falls back to
 * legacy interrupts; the builders encode exactly that (the enable
 * bits are read-only zero).
 */

#ifndef PCIESIM_PCI_CAPABILITY_HH
#define PCIESIM_PCI_CAPABILITY_HH

#include <cstdint>

#include "pci/config_regs.hh"
#include "pci/config_space.hh"

namespace pciesim
{

/** Parameters of a PCI-Express capability structure. */
struct PcieCapParams
{
    cfg::PciePortType portType = cfg::PciePortType::Endpoint;
    /** Link width advertised in Link Capabilities/Status. */
    unsigned linkWidth = 1;
    /** Link generation (1, 2, 3) => max link speed encoding. */
    unsigned linkGen = 2;
    /** Whether the port is connected to a slot (C2 registers). */
    bool slotImplemented = false;
    /** Whether the function is a root port (C3 registers). */
    bool rootPort = false;
    /** Max payload size supported, as spec encoding (0 = 128 B). */
    unsigned maxPayloadEncoding = 0;
};

/**
 * Builds a chain of capability structures inside a ConfigSpace.
 *
 * Capabilities are appended in call order; finalize() writes the
 * header capability pointer and the Status CapList bit.
 */
class CapabilityChain
{
  public:
    explicit CapabilityChain(ConfigSpace &space) : space_(space) {}

    /** Power Management capability (8 B), hard-wired to D0. */
    unsigned addPowerManagement(unsigned offset);

    /**
     * MSI capability (14 B). With @p enable_writable false (the
     * paper's template) the MSI Enable bit is hard-wired zero so
     * drivers fall back to INTx; with true the function supports
     * real message-signaled interrupts.
     */
    unsigned addMsi(unsigned offset, bool enable_writable = false);

    /** MSI-X capability (12 B), enable bit read-only zero. */
    unsigned addMsix(unsigned offset, std::uint16_t table_size = 0);

    /** PCI-Express capability structure (0x24 B, paper Fig. 5). */
    unsigned addPcie(unsigned offset, const PcieCapParams &params);

    /**
     * Link the chain: writes the previous capability's next pointer
     * on each add; finalize() sets the header Cap Ptr and the
     * Status register CapList bit.
     */
    void finalize();

    /** Offset of the first capability (0 when empty). */
    unsigned first() const { return first_; }

  private:
    void link(unsigned offset, std::uint8_t cap_id);

    ConfigSpace &space_;
    unsigned first_ = 0;
    unsigned last_ = 0;
};

/**
 * Read-side helpers for walking a capability chain the way a driver
 * does (used by the e1000e driver model and by tests).
 */
struct CapabilityWalker
{
    /**
     * Find a capability by ID.
     * @return its offset, or 0 when absent.
     */
    static unsigned find(const ConfigSpace &space, std::uint8_t cap_id);

    /** Number of capabilities in the chain. */
    static unsigned count(const ConfigSpace &space);
};

} // namespace pciesim

#endif // PCIESIM_PCI_CAPABILITY_HH
