/**
 * @file
 * Address map of the modelled platform, following the ARM
 * VExpress_GEM5_V1 machine type used by the paper (Sec. III):
 *
 *   PCI configuration space  0x30000000 - 0x3fffffff (256 MB, ECAM)
 *   PCI I/O space            0x2f000000 - 0x2fffffff (16 MB)
 *   PCI memory space         0x40000000 - 0x7fffffff (1 GB)
 *   DRAM                     0x80000000 -            (>= 2 GB)
 *
 * Because all PCI spaces sit below 2 GB, devices can use 32-bit BARs.
 */

#ifndef PCIESIM_PCI_PLATFORM_HH
#define PCIESIM_PCI_PLATFORM_HH

#include "mem/addr_range.hh"

namespace pciesim::platform
{

/** ECAM configuration-space window. */
constexpr Addr confBase = 0x30000000ULL;
constexpr Addr confEnd = 0x40000000ULL;

/** Port-mapped I/O window. */
constexpr Addr ioBase = 0x2f000000ULL;
constexpr Addr ioEnd = 0x30000000ULL;

/** Memory-mapped I/O window. */
constexpr Addr memBase = 0x40000000ULL;
constexpr Addr memEnd = 0x80000000ULL;

/** DRAM. */
constexpr Addr dramBase = 0x80000000ULL;
constexpr Addr dramEnd = 0x8080000000ULL; // 512 GB ceiling

constexpr AddrRange confRange{confBase, confEnd};
constexpr AddrRange ioRange{ioBase, ioEnd};
constexpr AddrRange memRange{memBase, memEnd};
constexpr AddrRange dramRange{dramBase, dramEnd};

/** The whole off-chip (PCI) region routed from the MemBus. */
constexpr AddrRange offChipRange{ioBase, memEnd};

} // namespace pciesim::platform

#endif // PCIESIM_PCI_PLATFORM_HH
