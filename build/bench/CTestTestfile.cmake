# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_bench_fig9a "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_fig9a" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_fig9a.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_fig9a PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_fig9b "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_fig9b" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_fig9b.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_fig9b PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_fig9c "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_fig9c" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_fig9c.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_fig9c PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_fig9d "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_fig9d" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_fig9d.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_fig9d PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_table2 "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_table2" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_table2.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_table2 PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_baseline "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_baseline" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_baseline.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_baseline PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_posted "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_posted" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_posted.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_posted PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_contention "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_contention" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_contention.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_contention PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_gensweep "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_gensweep" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_gensweep.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_gensweep PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_kernel "/usr/bin/cmake" "-DBENCH_BIN=/root/repo/build/bench/bench_kernel" "-DVALIDATOR=/root/repo/build/bench/json_validate" "-DOUT=/root/repo/build/bench/smoke_bench_kernel.json" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke_bench_kernel PROPERTIES  LABELS "tier2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
