# Empty dependencies file for bench_posted.
# This may be replaced when dependencies are built.
