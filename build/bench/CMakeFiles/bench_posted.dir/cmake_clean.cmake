file(REMOVE_RECURSE
  "CMakeFiles/bench_posted.dir/bench_posted.cc.o"
  "CMakeFiles/bench_posted.dir/bench_posted.cc.o.d"
  "bench_posted"
  "bench_posted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_posted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
