# Empty dependencies file for json_validate.
# This may be replaced when dependencies are built.
