file(REMOVE_RECURSE
  "CMakeFiles/json_validate.dir/json_validate.cc.o"
  "CMakeFiles/json_validate.dir/json_validate.cc.o.d"
  "json_validate"
  "json_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
