file(REMOVE_RECURSE
  "CMakeFiles/bench_gensweep.dir/bench_gensweep.cc.o"
  "CMakeFiles/bench_gensweep.dir/bench_gensweep.cc.o.d"
  "bench_gensweep"
  "bench_gensweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gensweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
