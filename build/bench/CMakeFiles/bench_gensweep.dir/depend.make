# Empty dependencies file for bench_gensweep.
# This may be replaced when dependencies are built.
