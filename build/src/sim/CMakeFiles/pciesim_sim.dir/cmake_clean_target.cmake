file(REMOVE_RECURSE
  "libpciesim_sim.a"
)
