# Empty dependencies file for pciesim_sim.
# This may be replaced when dependencies are built.
