file(REMOVE_RECURSE
  "CMakeFiles/pciesim_sim.dir/event_queue.cc.o"
  "CMakeFiles/pciesim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/pciesim_sim.dir/logging.cc.o"
  "CMakeFiles/pciesim_sim.dir/logging.cc.o.d"
  "CMakeFiles/pciesim_sim.dir/simulation.cc.o"
  "CMakeFiles/pciesim_sim.dir/simulation.cc.o.d"
  "CMakeFiles/pciesim_sim.dir/stats.cc.o"
  "CMakeFiles/pciesim_sim.dir/stats.cc.o.d"
  "libpciesim_sim.a"
  "libpciesim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pciesim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
