
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dev/dma_engine.cc" "src/dev/CMakeFiles/pciesim_dev.dir/dma_engine.cc.o" "gcc" "src/dev/CMakeFiles/pciesim_dev.dir/dma_engine.cc.o.d"
  "/root/repo/src/dev/ether_wire.cc" "src/dev/CMakeFiles/pciesim_dev.dir/ether_wire.cc.o" "gcc" "src/dev/CMakeFiles/pciesim_dev.dir/ether_wire.cc.o.d"
  "/root/repo/src/dev/ide_disk.cc" "src/dev/CMakeFiles/pciesim_dev.dir/ide_disk.cc.o" "gcc" "src/dev/CMakeFiles/pciesim_dev.dir/ide_disk.cc.o.d"
  "/root/repo/src/dev/int_controller.cc" "src/dev/CMakeFiles/pciesim_dev.dir/int_controller.cc.o" "gcc" "src/dev/CMakeFiles/pciesim_dev.dir/int_controller.cc.o.d"
  "/root/repo/src/dev/nic_8254x.cc" "src/dev/CMakeFiles/pciesim_dev.dir/nic_8254x.cc.o" "gcc" "src/dev/CMakeFiles/pciesim_dev.dir/nic_8254x.cc.o.d"
  "/root/repo/src/dev/traffic_gen.cc" "src/dev/CMakeFiles/pciesim_dev.dir/traffic_gen.cc.o" "gcc" "src/dev/CMakeFiles/pciesim_dev.dir/traffic_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pci/CMakeFiles/pciesim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pciesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pciesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
