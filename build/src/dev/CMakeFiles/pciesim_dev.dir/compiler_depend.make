# Empty compiler generated dependencies file for pciesim_dev.
# This may be replaced when dependencies are built.
