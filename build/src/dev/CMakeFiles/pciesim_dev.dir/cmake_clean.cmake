file(REMOVE_RECURSE
  "CMakeFiles/pciesim_dev.dir/dma_engine.cc.o"
  "CMakeFiles/pciesim_dev.dir/dma_engine.cc.o.d"
  "CMakeFiles/pciesim_dev.dir/ether_wire.cc.o"
  "CMakeFiles/pciesim_dev.dir/ether_wire.cc.o.d"
  "CMakeFiles/pciesim_dev.dir/ide_disk.cc.o"
  "CMakeFiles/pciesim_dev.dir/ide_disk.cc.o.d"
  "CMakeFiles/pciesim_dev.dir/int_controller.cc.o"
  "CMakeFiles/pciesim_dev.dir/int_controller.cc.o.d"
  "CMakeFiles/pciesim_dev.dir/nic_8254x.cc.o"
  "CMakeFiles/pciesim_dev.dir/nic_8254x.cc.o.d"
  "CMakeFiles/pciesim_dev.dir/traffic_gen.cc.o"
  "CMakeFiles/pciesim_dev.dir/traffic_gen.cc.o.d"
  "libpciesim_dev.a"
  "libpciesim_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pciesim_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
