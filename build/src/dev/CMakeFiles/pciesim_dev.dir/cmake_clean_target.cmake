file(REMOVE_RECURSE
  "libpciesim_dev.a"
)
