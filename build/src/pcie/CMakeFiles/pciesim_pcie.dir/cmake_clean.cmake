file(REMOVE_RECURSE
  "CMakeFiles/pciesim_pcie.dir/pcie_link.cc.o"
  "CMakeFiles/pciesim_pcie.dir/pcie_link.cc.o.d"
  "CMakeFiles/pciesim_pcie.dir/pcie_switch.cc.o"
  "CMakeFiles/pciesim_pcie.dir/pcie_switch.cc.o.d"
  "CMakeFiles/pciesim_pcie.dir/pcie_timing.cc.o"
  "CMakeFiles/pciesim_pcie.dir/pcie_timing.cc.o.d"
  "CMakeFiles/pciesim_pcie.dir/root_complex.cc.o"
  "CMakeFiles/pciesim_pcie.dir/root_complex.cc.o.d"
  "CMakeFiles/pciesim_pcie.dir/vp2p.cc.o"
  "CMakeFiles/pciesim_pcie.dir/vp2p.cc.o.d"
  "libpciesim_pcie.a"
  "libpciesim_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pciesim_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
