
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/pcie_link.cc" "src/pcie/CMakeFiles/pciesim_pcie.dir/pcie_link.cc.o" "gcc" "src/pcie/CMakeFiles/pciesim_pcie.dir/pcie_link.cc.o.d"
  "/root/repo/src/pcie/pcie_switch.cc" "src/pcie/CMakeFiles/pciesim_pcie.dir/pcie_switch.cc.o" "gcc" "src/pcie/CMakeFiles/pciesim_pcie.dir/pcie_switch.cc.o.d"
  "/root/repo/src/pcie/pcie_timing.cc" "src/pcie/CMakeFiles/pciesim_pcie.dir/pcie_timing.cc.o" "gcc" "src/pcie/CMakeFiles/pciesim_pcie.dir/pcie_timing.cc.o.d"
  "/root/repo/src/pcie/root_complex.cc" "src/pcie/CMakeFiles/pciesim_pcie.dir/root_complex.cc.o" "gcc" "src/pcie/CMakeFiles/pciesim_pcie.dir/root_complex.cc.o.d"
  "/root/repo/src/pcie/vp2p.cc" "src/pcie/CMakeFiles/pciesim_pcie.dir/vp2p.cc.o" "gcc" "src/pcie/CMakeFiles/pciesim_pcie.dir/vp2p.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pci/CMakeFiles/pciesim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pciesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pciesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
