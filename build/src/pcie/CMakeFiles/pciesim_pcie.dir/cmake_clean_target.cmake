file(REMOVE_RECURSE
  "libpciesim_pcie.a"
)
