# Empty compiler generated dependencies file for pciesim_pcie.
# This may be replaced when dependencies are built.
