file(REMOVE_RECURSE
  "libpciesim_os.a"
)
