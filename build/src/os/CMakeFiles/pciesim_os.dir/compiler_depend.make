# Empty compiler generated dependencies file for pciesim_os.
# This may be replaced when dependencies are built.
