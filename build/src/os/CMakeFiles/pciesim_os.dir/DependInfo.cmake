
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/dd_workload.cc" "src/os/CMakeFiles/pciesim_os.dir/dd_workload.cc.o" "gcc" "src/os/CMakeFiles/pciesim_os.dir/dd_workload.cc.o.d"
  "/root/repo/src/os/e1000e_driver.cc" "src/os/CMakeFiles/pciesim_os.dir/e1000e_driver.cc.o" "gcc" "src/os/CMakeFiles/pciesim_os.dir/e1000e_driver.cc.o.d"
  "/root/repo/src/os/ide_driver.cc" "src/os/CMakeFiles/pciesim_os.dir/ide_driver.cc.o" "gcc" "src/os/CMakeFiles/pciesim_os.dir/ide_driver.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/pciesim_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/pciesim_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/mmio_probe.cc" "src/os/CMakeFiles/pciesim_os.dir/mmio_probe.cc.o" "gcc" "src/os/CMakeFiles/pciesim_os.dir/mmio_probe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dev/CMakeFiles/pciesim_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/pci/CMakeFiles/pciesim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pciesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pciesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
