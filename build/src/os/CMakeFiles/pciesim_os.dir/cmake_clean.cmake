file(REMOVE_RECURSE
  "CMakeFiles/pciesim_os.dir/dd_workload.cc.o"
  "CMakeFiles/pciesim_os.dir/dd_workload.cc.o.d"
  "CMakeFiles/pciesim_os.dir/e1000e_driver.cc.o"
  "CMakeFiles/pciesim_os.dir/e1000e_driver.cc.o.d"
  "CMakeFiles/pciesim_os.dir/ide_driver.cc.o"
  "CMakeFiles/pciesim_os.dir/ide_driver.cc.o.d"
  "CMakeFiles/pciesim_os.dir/kernel.cc.o"
  "CMakeFiles/pciesim_os.dir/kernel.cc.o.d"
  "CMakeFiles/pciesim_os.dir/mmio_probe.cc.o"
  "CMakeFiles/pciesim_os.dir/mmio_probe.cc.o.d"
  "libpciesim_os.a"
  "libpciesim_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pciesim_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
