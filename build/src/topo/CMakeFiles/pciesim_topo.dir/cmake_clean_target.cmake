file(REMOVE_RECURSE
  "libpciesim_topo.a"
)
