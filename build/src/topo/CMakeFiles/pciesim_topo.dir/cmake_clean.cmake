file(REMOVE_RECURSE
  "CMakeFiles/pciesim_topo.dir/baseline_system.cc.o"
  "CMakeFiles/pciesim_topo.dir/baseline_system.cc.o.d"
  "CMakeFiles/pciesim_topo.dir/multi_device_system.cc.o"
  "CMakeFiles/pciesim_topo.dir/multi_device_system.cc.o.d"
  "CMakeFiles/pciesim_topo.dir/nic_system.cc.o"
  "CMakeFiles/pciesim_topo.dir/nic_system.cc.o.d"
  "CMakeFiles/pciesim_topo.dir/storage_system.cc.o"
  "CMakeFiles/pciesim_topo.dir/storage_system.cc.o.d"
  "libpciesim_topo.a"
  "libpciesim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pciesim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
