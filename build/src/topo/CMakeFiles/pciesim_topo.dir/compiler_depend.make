# Empty compiler generated dependencies file for pciesim_topo.
# This may be replaced when dependencies are built.
