file(REMOVE_RECURSE
  "CMakeFiles/pciesim_mem.dir/addr_range.cc.o"
  "CMakeFiles/pciesim_mem.dir/addr_range.cc.o.d"
  "CMakeFiles/pciesim_mem.dir/bridge.cc.o"
  "CMakeFiles/pciesim_mem.dir/bridge.cc.o.d"
  "CMakeFiles/pciesim_mem.dir/packet.cc.o"
  "CMakeFiles/pciesim_mem.dir/packet.cc.o.d"
  "CMakeFiles/pciesim_mem.dir/port.cc.o"
  "CMakeFiles/pciesim_mem.dir/port.cc.o.d"
  "CMakeFiles/pciesim_mem.dir/simple_memory.cc.o"
  "CMakeFiles/pciesim_mem.dir/simple_memory.cc.o.d"
  "CMakeFiles/pciesim_mem.dir/xbar.cc.o"
  "CMakeFiles/pciesim_mem.dir/xbar.cc.o.d"
  "libpciesim_mem.a"
  "libpciesim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pciesim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
