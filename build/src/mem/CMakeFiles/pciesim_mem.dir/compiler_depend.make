# Empty compiler generated dependencies file for pciesim_mem.
# This may be replaced when dependencies are built.
