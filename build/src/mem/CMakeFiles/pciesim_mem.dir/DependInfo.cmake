
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/addr_range.cc" "src/mem/CMakeFiles/pciesim_mem.dir/addr_range.cc.o" "gcc" "src/mem/CMakeFiles/pciesim_mem.dir/addr_range.cc.o.d"
  "/root/repo/src/mem/bridge.cc" "src/mem/CMakeFiles/pciesim_mem.dir/bridge.cc.o" "gcc" "src/mem/CMakeFiles/pciesim_mem.dir/bridge.cc.o.d"
  "/root/repo/src/mem/packet.cc" "src/mem/CMakeFiles/pciesim_mem.dir/packet.cc.o" "gcc" "src/mem/CMakeFiles/pciesim_mem.dir/packet.cc.o.d"
  "/root/repo/src/mem/port.cc" "src/mem/CMakeFiles/pciesim_mem.dir/port.cc.o" "gcc" "src/mem/CMakeFiles/pciesim_mem.dir/port.cc.o.d"
  "/root/repo/src/mem/simple_memory.cc" "src/mem/CMakeFiles/pciesim_mem.dir/simple_memory.cc.o" "gcc" "src/mem/CMakeFiles/pciesim_mem.dir/simple_memory.cc.o.d"
  "/root/repo/src/mem/xbar.cc" "src/mem/CMakeFiles/pciesim_mem.dir/xbar.cc.o" "gcc" "src/mem/CMakeFiles/pciesim_mem.dir/xbar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pciesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
