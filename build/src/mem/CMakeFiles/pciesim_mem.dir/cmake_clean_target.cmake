file(REMOVE_RECURSE
  "libpciesim_mem.a"
)
