# Empty compiler generated dependencies file for pciesim_pci.
# This may be replaced when dependencies are built.
