file(REMOVE_RECURSE
  "libpciesim_pci.a"
)
