file(REMOVE_RECURSE
  "CMakeFiles/pciesim_pci.dir/bridge_header.cc.o"
  "CMakeFiles/pciesim_pci.dir/bridge_header.cc.o.d"
  "CMakeFiles/pciesim_pci.dir/capability.cc.o"
  "CMakeFiles/pciesim_pci.dir/capability.cc.o.d"
  "CMakeFiles/pciesim_pci.dir/config_space.cc.o"
  "CMakeFiles/pciesim_pci.dir/config_space.cc.o.d"
  "CMakeFiles/pciesim_pci.dir/enumerator.cc.o"
  "CMakeFiles/pciesim_pci.dir/enumerator.cc.o.d"
  "CMakeFiles/pciesim_pci.dir/pci_device.cc.o"
  "CMakeFiles/pciesim_pci.dir/pci_device.cc.o.d"
  "CMakeFiles/pciesim_pci.dir/pci_host.cc.o"
  "CMakeFiles/pciesim_pci.dir/pci_host.cc.o.d"
  "libpciesim_pci.a"
  "libpciesim_pci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pciesim_pci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
