
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pci/bridge_header.cc" "src/pci/CMakeFiles/pciesim_pci.dir/bridge_header.cc.o" "gcc" "src/pci/CMakeFiles/pciesim_pci.dir/bridge_header.cc.o.d"
  "/root/repo/src/pci/capability.cc" "src/pci/CMakeFiles/pciesim_pci.dir/capability.cc.o" "gcc" "src/pci/CMakeFiles/pciesim_pci.dir/capability.cc.o.d"
  "/root/repo/src/pci/config_space.cc" "src/pci/CMakeFiles/pciesim_pci.dir/config_space.cc.o" "gcc" "src/pci/CMakeFiles/pciesim_pci.dir/config_space.cc.o.d"
  "/root/repo/src/pci/enumerator.cc" "src/pci/CMakeFiles/pciesim_pci.dir/enumerator.cc.o" "gcc" "src/pci/CMakeFiles/pciesim_pci.dir/enumerator.cc.o.d"
  "/root/repo/src/pci/pci_device.cc" "src/pci/CMakeFiles/pciesim_pci.dir/pci_device.cc.o" "gcc" "src/pci/CMakeFiles/pciesim_pci.dir/pci_device.cc.o.d"
  "/root/repo/src/pci/pci_host.cc" "src/pci/CMakeFiles/pciesim_pci.dir/pci_host.cc.o" "gcc" "src/pci/CMakeFiles/pciesim_pci.dir/pci_host.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/pciesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pciesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
