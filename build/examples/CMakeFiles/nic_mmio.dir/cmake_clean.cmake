file(REMOVE_RECURSE
  "CMakeFiles/nic_mmio.dir/nic_mmio.cpp.o"
  "CMakeFiles/nic_mmio.dir/nic_mmio.cpp.o.d"
  "nic_mmio"
  "nic_mmio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_mmio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
