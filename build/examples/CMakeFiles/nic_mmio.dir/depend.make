# Empty dependencies file for nic_mmio.
# This may be replaced when dependencies are built.
