# Empty dependencies file for storage_dd.
# This may be replaced when dependencies are built.
