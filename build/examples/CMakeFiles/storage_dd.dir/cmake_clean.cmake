file(REMOVE_RECURSE
  "CMakeFiles/storage_dd.dir/storage_dd.cpp.o"
  "CMakeFiles/storage_dd.dir/storage_dd.cpp.o.d"
  "storage_dd"
  "storage_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
