file(REMOVE_RECURSE
  "CMakeFiles/pci_device_test.dir/pci/pci_device_test.cc.o"
  "CMakeFiles/pci_device_test.dir/pci/pci_device_test.cc.o.d"
  "pci_device_test"
  "pci_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pci_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
