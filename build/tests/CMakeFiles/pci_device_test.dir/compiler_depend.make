# Empty compiler generated dependencies file for pci_device_test.
# This may be replaced when dependencies are built.
