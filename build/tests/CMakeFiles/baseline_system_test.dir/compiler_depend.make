# Empty compiler generated dependencies file for baseline_system_test.
# This may be replaced when dependencies are built.
